# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/log_test[1]_include.cmake")
include("/root/repo/build/tests/view_test[1]_include.cmake")
include("/root/repo/build/tests/checker_test[1]_include.cmake")
include("/root/repo/build/tests/instrument_test[1]_include.cmake")
include("/root/repo/build/tests/multiset_test[1]_include.cmake")
include("/root/repo/build/tests/bst_test[1]_include.cmake")
include("/root/repo/build/tests/javalib_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/blinktree_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/nonlinearizable_scan_test[1]_include.cmake")
include("/root/repo/build/tests/scanfs_test[1]_include.cmake")
include("/root/repo/build/tests/diagnosis_test[1]_include.cmake")
include("/root/repo/build/tests/hashtable_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/log_surgery_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/names_test[1]_include.cmake")
include("/root/repo/build/tests/tools_test[1]_include.cmake")
