//===- AutoInstrumentTest.cpp - The auto layer vs hand-written hooks -------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The auto-instrumentation layer (vyrd/Auto.h) claims to emit the same
/// action stream a careful hand instrumentation would. This file pins the
/// claim down: a tiny slot store is written twice — once with
/// MethodScope/CommitBlock/Hooks by hand, once through Instrumented<T>,
/// the Mutex shim, Tracked fields and a TrackedMap — and fuzzed with
/// identical operation sequences; the two logs must match record for
/// record. Alongside: a four-producer stress run with four checker
/// threads (the configuration the TSan CI job executes), the chaos
/// scheduler's per-seed determinism, and thread-id recycling.
///
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"
#include "multiset/MultisetSpec.h"
#include "queue/BoundedQueue.h"
#include "queue/QueueSpec.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

using namespace vyrd;

namespace {

//===----------------------------------------------------------------------===//
// The structure under comparison, written twice
//===----------------------------------------------------------------------===//

constexpr size_t NumSlots = 4;

struct SlotVocab {
  Name Set, Bump, KvSet, KvDel, Get;
  Name Last;
  Name Slot[NumSlots];
  Name KvSetOp, KvDelOp;

  static const SlotVocab &get() {
    static SlotVocab V = [] {
      SlotVocab N;
      N.Set = internName("Set");
      N.Bump = internName("Bump");
      N.KvSet = internName("KvSet");
      N.KvDel = internName("KvDel");
      N.Get = internName("Get");
      N.Last = internName("last");
      for (size_t I = 0; I < NumSlots; ++I)
        N.Slot[I] = internName("s[" + std::to_string(I) + "]");
      N.KvSetOp = internName("kv.set");
      N.KvDelOp = internName("kv.del");
      return N;
    }();
    return V;
  }
};

/// The hand-instrumented version: every record placed explicitly, the way
/// the workloads were written before the auto layer existed.
class HandSlotStore {
public:
  explicit HandSlotStore(Hooks H) : H(H) {}

  bool set(int64_t I, int64_t V) {
    const SlotVocab &N = SlotVocab::get();
    MethodScope Scope(H, N.Set, {Value(I), Value(V)});
    bool Ok = false;
    {
      std::lock_guard Lock(M);
      if (I >= 0 && static_cast<size_t>(I) < NumSlots) {
        CommitBlock Block(H);
        Store[I] = V;
        H.write(N.Slot[I], Value(V));
        Last = V;
        H.write(N.Last, Value(V));
        H.commit();
        Ok = true;
      }
    }
    if (!Ok)
      H.commit(); // failure leaves no trace; commit the no-op return
    Scope.setReturn(Value(Ok));
    return Ok;
  }

  void bump(int64_t D) {
    const SlotVocab &N = SlotVocab::get();
    MethodScope Scope(H, N.Bump, {Value(D)});
    {
      std::lock_guard Lock(M);
      CommitBlock Block(H);
      Last += D;
      H.write(N.Last, Value(Last));
    }
    // The update is view-neutral until committed; the commit lands after
    // the critical section (matching the auto layer's auto-commit slot).
    H.commit();
  }

  bool kvSet(int64_t K, int64_t V) {
    const SlotVocab &N = SlotVocab::get();
    MethodScope Scope(H, N.KvSet, {Value(K), Value(V)});
    {
      std::lock_guard Lock(M);
      CommitBlock Block(H);
      Kv[K] = V;
      H.replayOp(N.KvSetOp, {Value(K), Value(V)});
      H.commit();
    }
    Scope.setReturn(Value(true));
    return true;
  }

  bool kvDel(int64_t K) {
    const SlotVocab &N = SlotVocab::get();
    MethodScope Scope(H, N.KvDel, {Value(K)});
    bool Ok = false;
    {
      std::lock_guard Lock(M);
      auto It = Kv.find(K);
      if (It != Kv.end()) {
        CommitBlock Block(H);
        Kv.erase(It);
        H.replayOp(N.KvDelOp, {Value(K)});
        H.commit();
        Ok = true;
      }
    }
    if (!Ok)
      H.commit();
    Scope.setReturn(Value(Ok));
    return Ok;
  }

  int64_t get(int64_t I) {
    const SlotVocab &N = SlotVocab::get();
    MethodScope Scope(H, N.Get, {Value(I)});
    int64_t R;
    {
      std::lock_guard Lock(M);
      R = (I >= 0 && static_cast<size_t>(I) < NumSlots) ? Store[I] : -1;
    }
    Scope.setReturn(Value(R));
    return R;
  }

private:
  Hooks H;
  std::mutex M;
  int64_t Store[NumSlots] = {};
  int64_t Last = 0;
  std::map<int64_t, int64_t> Kv;
};

/// The same structure through the auto layer: no hook call anywhere in
/// the method bodies beyond the commit-point annotations.
class AutoSlotStoreImpl {
public:
  explicit AutoSlotStoreImpl(AutoContext &C)
      : Ctx(C), M(C), Last(C, SlotVocab::get().Last, 0), KvLog(C, "kv") {}

  bool set(int64_t I, int64_t V) {
    LockGuard Lock(M);
    if (I < 0 || static_cast<size_t>(I) >= NumSlots)
      return false; // permissive failure: the auto layer commits it
    Store[I] = V;
    Ctx.write(SlotVocab::get().Slot[I], Value(V));
    Last = V;
    Ctx.commit();
    return true;
  }

  void bump(int64_t D) {
    LockGuard Lock(M);
    Last = Last.get() + D;
    // No explicit commit: the dispatch auto-commits after the body.
  }

  bool kvSet(int64_t K, int64_t V) {
    LockGuard Lock(M);
    Kv[K] = V;
    KvLog.set(Value(K), Value(V));
    Ctx.commit();
    return true;
  }

  bool kvDel(int64_t K) {
    LockGuard Lock(M);
    auto It = Kv.find(K);
    if (It == Kv.end())
      return false;
    Kv.erase(It);
    KvLog.del(Value(K));
    Ctx.commit();
    return true;
  }

  int64_t get(int64_t I) {
    LockGuard Lock(M);
    return (I >= 0 && static_cast<size_t>(I) < NumSlots) ? Store[I] : -1;
  }

private:
  AutoContext &Ctx;
  Mutex M;
  int64_t Store[NumSlots] = {};
  Tracked<int64_t> Last;
  TrackedMap KvLog;
  std::map<int64_t, int64_t> Kv;
};

} // namespace

namespace vyrd {
template <> struct AutoMethods<AutoSlotStoreImpl> {
  using T = AutoSlotStoreImpl;
  static constexpr auto desc(MethodTag<&T::set>) { return method("Set"); }
  static constexpr auto desc(MethodTag<&T::bump>) { return method("Bump"); }
  static constexpr auto desc(MethodTag<&T::kvSet>) {
    return method("KvSet");
  }
  static constexpr auto desc(MethodTag<&T::kvDel>) {
    return method("KvDel");
  }
  static constexpr auto desc(MethodTag<&T::get>) { return observer("Get"); }
};
} // namespace vyrd

namespace {

class AutoSlotStore : public Instrumented<AutoSlotStoreImpl> {
public:
  explicit AutoSlotStore(Hooks H) : Instrumented(H) {}
  bool set(int64_t I, int64_t V) {
    return invoke<&AutoSlotStoreImpl::set>(I, V);
  }
  void bump(int64_t D) { invoke<&AutoSlotStoreImpl::bump>(D); }
  bool kvSet(int64_t K, int64_t V) {
    return invoke<&AutoSlotStoreImpl::kvSet>(K, V);
  }
  bool kvDel(int64_t K) { return invoke<&AutoSlotStoreImpl::kvDel>(K); }
  int64_t get(int64_t I) { return invoke<&AutoSlotStoreImpl::get>(I); }
};

//===----------------------------------------------------------------------===//
// Fuzzed log equivalence
//===----------------------------------------------------------------------===//

/// Splitmix-style step, enough to diversify the op mix per seed.
uint64_t nextRand(uint64_t &S) {
  S += 0x9e3779b97f4a7c15ull;
  uint64_t Z = S;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// Runs the seeded op sequence against \p S (either twin has this shape).
template <typename StoreT> void drive(StoreT &S, uint64_t Seed, int Ops) {
  uint64_t R = Seed;
  for (int I = 0; I < Ops; ++I) {
    uint64_t Dice = nextRand(R) % 100;
    int64_t K = static_cast<int64_t>(nextRand(R) % 6);
    int64_t V = static_cast<int64_t>(nextRand(R) % 50);
    if (Dice < 25)
      S.set(K, V); // K in 0..5: out-of-range failures included
    else if (Dice < 40)
      S.bump(V % 5);
    else if (Dice < 60)
      S.kvSet(K, V);
    else if (Dice < 75)
      S.kvDel(K);
    else
      S.get(K);
  }
}

std::vector<Action> drain(MemoryLog &L) {
  L.close();
  std::vector<Action> Out;
  Action A;
  while (L.next(A))
    Out.push_back(A);
  return Out;
}

std::string describe(const Action &A) {
  std::string S = "kind=" + std::to_string(static_cast<int>(A.Kind));
  if (A.Method.valid())
    S += " method=" + std::string(A.Method.str());
  if (A.Var.valid())
    S += " var=" + std::string(A.Var.str());
  return S;
}

/// The equivalence oracle: identical single-threaded inputs must yield
/// identical logs, field for field (sequence numbers excluded — they are
/// assigned by the backend, not the instrumentation).
void expectSameStream(const std::vector<Action> &Hand,
                      const std::vector<Action> &Auto, uint64_t Seed) {
  ASSERT_EQ(Hand.size(), Auto.size()) << "seed " << Seed;
  for (size_t I = 0; I < Hand.size(); ++I) {
    const Action &H = Hand[I], &A = Auto[I];
    EXPECT_EQ(H.Kind, A.Kind) << "seed " << Seed << " record " << I << ": "
                              << describe(H) << " vs " << describe(A);
    EXPECT_EQ(H.Method, A.Method) << "seed " << Seed << " record " << I;
    EXPECT_EQ(H.Var, A.Var) << "seed " << Seed << " record " << I;
    EXPECT_EQ(H.Tid, A.Tid) << "seed " << Seed << " record " << I;
    ASSERT_EQ(H.Args.size(), A.Args.size())
        << "seed " << Seed << " record " << I;
    for (size_t J = 0; J < H.Args.size(); ++J)
      EXPECT_TRUE(H.Args[J] == A.Args[J])
          << "seed " << Seed << " record " << I << " arg " << J;
    EXPECT_TRUE(H.Ret == A.Ret)
        << "seed " << Seed << " record " << I << ": " << describe(H);
  }
}

std::vector<Action> runHand(uint64_t Seed, int Ops, LogLevel Level) {
  MemoryLog L;
  HandSlotStore S(Hooks(&L, Level));
  drive(S, Seed, Ops);
  return drain(L);
}

std::vector<Action> runAuto(uint64_t Seed, int Ops, LogLevel Level) {
  MemoryLog L;
  AutoSlotStore S(Hooks(&L, Level));
  drive(S, Seed, Ops);
  return drain(L);
}

TEST(AutoVsHandTest, FuzzedViewLevelStreamsMatch) {
  for (uint64_t Seed = 1; Seed <= 25; ++Seed)
    expectSameStream(runHand(Seed, 400, LogLevel::LL_View),
                     runAuto(Seed, 400, LogLevel::LL_View), Seed);
}

TEST(AutoVsHandTest, FuzzedIOLevelStreamsMatch) {
  // At I/O level the brackets and writes vanish on both sides; the
  // call/commit/return skeletons must still coincide.
  for (uint64_t Seed = 100; Seed <= 110; ++Seed)
    expectSameStream(runHand(Seed, 400, LogLevel::LL_IO),
                     runAuto(Seed, 400, LogLevel::LL_IO), Seed);
}

TEST(AutoVsHandTest, AutoStreamPassesTheChecker) {
  // The auto-emitted log is not just identical to the hand one — the
  // KeyValueReplayer consumes its kv records directly.
  MemoryLog L;
  {
    AutoSlotStore S(Hooks(&L, LogLevel::LL_View));
    S.kvSet(1, 10);
    S.kvSet(2, 20);
    S.kvDel(1);
    S.kvDel(7); // absent: permissive failure, auto-committed
  }
  auto Replay = KeyValueReplayer::map("kv");
  View ViewI;
  for (const Action &A : drain(L))
    if (A.Kind == ActionKind::AK_ReplayOp)
      Replay->applyUpdate(A, ViewI);
  View Out;
  Replay->buildView(Out);
  EXPECT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out.countKey(Value(2)), 1u);
}

//===----------------------------------------------------------------------===//
// Auto-layer bracket semantics
//===----------------------------------------------------------------------===//

TEST(AutoSemanticsTest, ObserverEmitsNoCommitAndNoBracket) {
  MemoryLog L;
  AutoSlotStore S(Hooks(&L, LogLevel::LL_View));
  S.get(0);
  std::vector<Action> Log = drain(L);
  ASSERT_EQ(Log.size(), 2u);
  EXPECT_EQ(Log[0].Kind, ActionKind::AK_Call);
  EXPECT_EQ(Log[1].Kind, ActionKind::AK_Return);
  EXPECT_EQ(Log[1].Ret.asInt(), 0);
}

TEST(AutoSemanticsTest, AutoCommitLandsAfterBracketBeforeReturn) {
  MemoryLog L;
  AutoSlotStore S(Hooks(&L, LogLevel::LL_View));
  S.bump(3);
  std::vector<Action> Log = drain(L);
  // call, blockBegin, write(last), blockEnd, commit, ret.
  ASSERT_EQ(Log.size(), 6u);
  EXPECT_EQ(Log[0].Kind, ActionKind::AK_Call);
  EXPECT_EQ(Log[1].Kind, ActionKind::AK_BlockBegin);
  EXPECT_EQ(Log[2].Kind, ActionKind::AK_Write);
  EXPECT_EQ(Log[2].Var, SlotVocab::get().Last);
  EXPECT_EQ(Log[3].Kind, ActionKind::AK_BlockEnd);
  EXPECT_EQ(Log[4].Kind, ActionKind::AK_Commit);
  EXPECT_EQ(Log[5].Kind, ActionKind::AK_Return);
}

TEST(AutoSemanticsTest, SilentLockOutsideDispatchFrame) {
  // A shim lock taken with no dispatch frame open (constructors, direct
  // raw() access) must not emit brackets.
  MemoryLog L;
  AutoSlotStore S(Hooks(&L, LogLevel::LL_View));
  S.context(); // facade is live; now lock outside any invoke<>
  {
    Mutex Standalone(S.context());
    LockGuard Lock(Standalone);
  }
  EXPECT_TRUE(drain(L).empty());
}

TEST(AutoSemanticsTest, DisabledHooksRunUninstrumented) {
  AutoSlotStore S(Hooks{}); // LL_None: dispatch runs the bare method
  EXPECT_TRUE(S.set(1, 5));
  S.bump(2);
  EXPECT_FALSE(S.kvDel(9));
  EXPECT_EQ(S.get(1), 5);
}

//===----------------------------------------------------------------------===//
// Four producers, four checker threads (the TSan CI configuration)
//===----------------------------------------------------------------------===//

TEST(AutoStressTest, FourProducersFourCheckersClean) {
  for (uint64_t Seed = 1; Seed <= 3; ++Seed) {
    VerifierConfig VC;
    VC.Backend = LogBackend::LB_Buffered;
    VC.CheckerThreads = 4;
    Verifier V(VC);
    Hooks HM = V.registerObject(
        "multiset", std::make_unique<multiset::MultisetSpec>(),
        KeyValueReplayer::guardedBag("A"));
    Hooks HQ = V.registerObject("queue",
                                std::make_unique<queue::QueueSpec>(32),
                                KeyValueReplayer::map("q"));
    V.start();

    multiset::ArrayMultiset::Options MO;
    MO.Capacity = 64;
    multiset::ArrayMultiset M(MO, HM);
    queue::BoundedQueue::Options QO;
    QO.Capacity = 32;
    queue::BoundedQueue Q(QO, HQ);

    Chaos::enable(/*Inverse=*/8, Seed);
    std::vector<std::thread> Ts;
    for (int T = 0; T < 4; ++T)
      Ts.emplace_back([&M, &Q, T, Seed] {
        uint64_t R = Seed * 977 + T;
        for (int I = 0; I < 300; ++I) {
          uint64_t Dice = nextRand(R) % 100;
          int64_t K = static_cast<int64_t>(nextRand(R) % 12);
          if (Dice < 25)
            M.insert(K);
          else if (Dice < 40)
            M.remove(K);
          else if (Dice < 55)
            M.lookUp(K);
          else if (Dice < 80)
            Q.offer(K);
          else
            Q.poll();
        }
      });
    for (std::thread &T : Ts)
      T.join();
    Chaos::disable();

    VerifierReport R = V.finish();
    EXPECT_TRUE(R.ok()) << "seed " << Seed << ": " << R.str();
    EXPECT_GT(R.LogRecords, 0u);
  }
}

//===----------------------------------------------------------------------===//
// Chaos determinism (regression: enable() must reset the session)
//===----------------------------------------------------------------------===//

std::vector<bool> chaosDecisions(uint64_t Seed, int N) {
  Chaos::enable(/*Inverse=*/3, Seed);
  std::vector<bool> Bits;
  Bits.reserve(N);
  for (int I = 0; I < N; ++I)
    Bits.push_back(Chaos::point());
  Chaos::disable();
  return Bits;
}

TEST(ChaosDeterminismTest, SameSeedSameDecisionStream) {
  // Two sessions with one seed: the per-thread decision stream restarts
  // identically (the regression was stale per-thread state leaking from
  // the previous session into the next one).
  std::vector<bool> First = chaosDecisions(42, 512);
  std::vector<bool> Second = chaosDecisions(42, 512);
  EXPECT_EQ(First, Second);
  // Sanity: with Inverse=3 the stream is neither all-yield nor no-yield.
  EXPECT_NE(std::count(First.begin(), First.end(), true), 0);
  EXPECT_NE(std::count(First.begin(), First.end(), false), 0);
}

TEST(ChaosDeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(chaosDecisions(1, 512), chaosDecisions(2, 512));
}

TEST(ChaosDeterminismTest, InterveningSessionDoesNotShiftTheStream) {
  // The regression scenario: a session runs some points, then a new
  // enable() with the original seed must reproduce the original stream
  // even though this thread consumed part of another session's stream.
  std::vector<bool> Reference = chaosDecisions(7, 256);
  chaosDecisions(1234, 99); // consume an odd number of other decisions
  EXPECT_EQ(chaosDecisions(7, 256), Reference);
}

//===----------------------------------------------------------------------===//
// Thread-id recycling
//===----------------------------------------------------------------------===//

TEST(TidRecyclingTest, ExitedThreadIdIsReused) {
  ThreadId First = 0, Second = 0;
  std::thread A([&] { First = currentTid(); });
  A.join();
  std::thread B([&] { Second = currentTid(); });
  B.join();
  EXPECT_EQ(First, Second);
}

TEST(TidRecyclingTest, SequentialChurnStaysBounded) {
  // One live helper thread at a time: every new thread must adopt the
  // id the previous one released, so the id space never grows.
  ThreadId Baseline = 0;
  std::thread Probe([&] { Baseline = currentTid(); });
  Probe.join();
  for (int I = 0; I < 64; ++I) {
    ThreadId Got = 0;
    std::thread T([&] { Got = currentTid(); });
    T.join();
    EXPECT_EQ(Got, Baseline) << "iteration " << I;
  }
}

TEST(TidRecyclingTest, LiveThreadsGetDistinctIds) {
  constexpr int N = 6;
  std::vector<ThreadId> Ids(N);
  {
    std::vector<std::thread> Ts;
    std::atomic<int> Ready{0};
    for (int I = 0; I < N; ++I)
      Ts.emplace_back([&, I] {
        Ids[I] = currentTid();
        Ready.fetch_add(1);
        // Hold the id until everyone has one, so none is recycled early.
        while (Ready.load() < N)
          std::this_thread::yield();
      });
    for (std::thread &T : Ts)
      T.join();
  }
  std::sort(Ids.begin(), Ids.end());
  EXPECT_EQ(std::unique(Ids.begin(), Ids.end()), Ids.end())
      << "concurrently live threads must never share an id";
}

} // namespace
