//===- AllocCountTest.cpp - Heap traffic of the record pipeline ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the allocation-lean record pipeline (ValueList small-buffer
/// storage, Action move paths, Exec pooling, batch-vector recycling) with
/// a global operator-new hook: after a warm-up pass, pushing a record
/// through append -> batch -> check must stay under a small allocation
/// budget per record. A regression that reintroduces per-record heap
/// churn (e.g. copying Actions somewhere, or losing a recycled buffer)
/// fails this test rather than only showing up in bench numbers.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vyrd/Checker.h"
#include "vyrd/Log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

using namespace vyrd;
using namespace vyrd::test;

//===----------------------------------------------------------------------===//
// Global allocation counting hook
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocCount{0};
std::atomic<bool> GCountAllocs{false};
} // namespace

void *operator new(size_t Size) {
  if (GCountAllocs.load(std::memory_order_relaxed))
    GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  throw std::bad_alloc();
}

void *operator new[](size_t Size) { return operator new(Size); }

void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, size_t) noexcept { std::free(P); }

namespace {

/// Minimal register spec: Set(x) -> true mutates, Get() -> x observes.
/// Integer-only values so the spec itself allocates nothing per record.
class AllocRegisterSpec : public Spec {
public:
  AllocRegisterSpec()
      : SetM(name("alloc.Set")), GetM(name("alloc.Get")), State(Value(0)) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &) override {
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() ||
        !Ret.asBool())
      return false;
    State = Args[0];
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override { Out.clear(); }

  Name SetM, GetM;
  Value State;
};

/// One epoch of app-side traffic: an observer window spanning a mutator,
/// all values correct (violations allocate report strings and are not
/// part of the steady-state budget).
size_t appendEpoch(LogWriter &W, AllocRegisterSpec &S, int64_t X) {
  W.append(Action::call(1, S.GetM, {}));
  W.append(Action::call(0, S.SetM, {Value(X)}));
  W.append(Action::commit(0));
  W.append(Action::ret(0, S.SetM, Value(true)));
  W.append(Action::ret(1, S.GetM, Value(X)));
  return 5;
}

} // namespace

TEST(AllocCountTest, SteadyStatePipelineAllocBudget) {
  AllocRegisterSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  RefinementChecker C(S, nullptr, CC);

  MemoryLog Log;
  std::vector<Action> Batch;

  // Drain helper mirroring the verifier pump: batch out of the log and
  // feed in order, reusing the same batch vector throughout.
  auto Pump = [&] {
    bool End = false;
    Batch.clear();
    Action A;
    while (Log.tryNext(A, End))
      Batch.push_back(std::move(A));
    for (Action &B : Batch)
      C.feed(B);
  };

  // Warm-up: grows the log's deque blocks, the batch vector, the
  // checker's event queue, exec pool and memo table to steady state.
  constexpr int WarmupEpochs = 200;
  for (int E = 0; E < WarmupEpochs; ++E) {
    appendEpoch(Log, S, E % 7);
    if (E % 4 == 0)
      Pump();
  }
  Pump();

  // Measured phase: identical traffic, counted.
  constexpr int MeasuredEpochs = 400;
  size_t Records = 0;
  GAllocCount.store(0);
  GCountAllocs.store(true);
  for (int E = 0; E < MeasuredEpochs; ++E) {
    Records += appendEpoch(Log, S, E % 7);
    if (E % 4 == 0)
      Pump();
  }
  Pump();
  GCountAllocs.store(false);
  uint64_t Allocs = GAllocCount.load();

  EXPECT_FALSE(C.hasViolation())
      << "traffic must be clean: " << C.violations().front().str();
  EXPECT_EQ(C.stats().ActionsFed, uint64_t(Records + WarmupEpochs * 5));

  // Budget: pre-overhaul this pipeline sat at ~2 allocations per record
  // (deque block churn in the log queue, event queue and context ring,
  // plus open-exec map nodes); the lean pipeline — RingQueue slot
  // recycling, dense open-exec slots, pooled Execs, ValueList SBO — runs
  // at zero in steady state. The bound leaves headroom for
  // allocator/libstdc++ differences while still failing if any
  // per-record allocation sneaks back in.
  double PerRecord = double(Allocs) / double(Records);
  EXPECT_LT(PerRecord, 0.5) << Allocs << " allocations over " << Records
                            << " records";
}
