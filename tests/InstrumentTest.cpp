//===- InstrumentTest.cpp - Unit tests for hooks and chaos -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Instrument.h"

#include <gtest/gtest.h>

#include <thread>

using namespace vyrd;

TEST(InstrumentTest, CurrentTidStablePerThread) {
  ThreadId A = currentTid();
  EXPECT_EQ(A, currentTid());
}

TEST(InstrumentTest, CurrentTidDiffersAcrossThreads) {
  ThreadId Main = currentTid();
  ThreadId Other = Main;
  std::thread T([&] { Other = currentTid(); });
  T.join();
  EXPECT_NE(Main, Other);
}

TEST(InstrumentTest, DisabledHooksLogNothing) {
  Hooks H; // no log
  EXPECT_FALSE(H.enabled());
  EXPECT_FALSE(H.viewLevel());
  // None of these may crash or log.
  H.call(internName("m"), {});
  H.commit();
  H.write(internName("v"), Value(1));
  H.ret(internName("m"), Value(true));
}

TEST(InstrumentTest, IOLevelSkipsWritesAndBlocks) {
  MemoryLog L;
  Hooks H(&L, LogLevel::LL_IO);
  Name M = internName("m");
  H.call(M, {Value(1)});
  H.blockBegin();
  H.write(internName("v"), Value(2));
  H.replayOp(internName("op"), {});
  H.commit();
  H.blockEnd();
  H.ret(M, Value(true));
  L.close();
  std::vector<ActionKind> Kinds;
  Action A;
  while (L.next(A))
    Kinds.push_back(A.Kind);
  EXPECT_EQ(Kinds, (std::vector<ActionKind>{ActionKind::AK_Call,
                                            ActionKind::AK_Commit,
                                            ActionKind::AK_Return}));
}

TEST(InstrumentTest, ViewLevelLogsEverything) {
  MemoryLog L;
  Hooks H(&L, LogLevel::LL_View);
  Name M = internName("m");
  H.call(M, {});
  H.blockBegin();
  H.write(internName("v"), Value(2));
  H.commit();
  H.blockEnd();
  H.ret(M, Value(true));
  L.close();
  EXPECT_EQ(L.appendCount(), 6u);
}

TEST(InstrumentTest, MethodScopeLogsCallAndReturn) {
  MemoryLog L;
  Hooks H(&L, LogLevel::LL_IO);
  Name M = internName("scoped");
  {
    MethodScope S(H, M, {Value(7)});
    S.setReturn(Value("done"));
  }
  L.close();
  Action A;
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_Call);
  EXPECT_EQ(A.Args[0], Value(7));
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_Return);
  EXPECT_EQ(A.Ret, Value("done"));
  EXPECT_EQ(A.Method, M);
}

TEST(InstrumentTest, MethodScopeDefaultReturnIsNull) {
  MemoryLog L;
  Hooks H(&L, LogLevel::LL_IO);
  { MethodScope S(H, internName("noret"), {}); }
  L.close();
  Action A;
  ASSERT_TRUE(L.next(A));
  ASSERT_TRUE(L.next(A));
  EXPECT_TRUE(A.Ret.isNull());
}

TEST(InstrumentTest, CommitBlockBrackets) {
  MemoryLog L;
  Hooks H(&L, LogLevel::LL_View);
  { CommitBlock B(H); }
  L.close();
  Action A;
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_BlockBegin);
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_BlockEnd);
}

TEST(InstrumentTest, ChaosDisabledIsCheap) {
  Chaos::disable();
  for (int I = 0; I < 1000; ++I)
    Chaos::point(); // must not yield or crash
}

TEST(InstrumentTest, ChaosEnableDisable) {
  Chaos::enable(2, 42);
  for (int I = 0; I < 100; ++I)
    Chaos::point();
  Chaos::disable();
}
