//===- CheckerMemoTest.cpp - Observer memoization semantics ----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observer memo table (spec-state versioning, signature-keyed caching
/// of `returnAllowed`, docs/ARCHITECTURE.md "The checker hot path") must be
/// semantically invisible: every script here runs with memoization on and
/// off and demands identical verdicts. The individual tests pin down the
/// places where a caching bug would hide — Fig. 7 windows satisfied only
/// by a later state, duplicate signatures collapsing to one spec call,
/// diagnosis recoveries (Sec. 4.1) changing the spec state mid-commit, and
/// randomized scripts — plus the swap-and-pop bookkeeping of the open
/// observer and failed mutator sets.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vyrd/Checker.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Register spec with a conditional mutator and a call-counting observer:
/// Set(x) -> true unconditionally sets the state, Cas(a, b) -> true sets
/// it to b iff it is a, Get() -> x observes it. `Calls` counts the real
/// returnAllowed evaluations, which is what memoization is meant to save.
class CountingRegisterSpec : public Spec {
public:
  CountingRegisterSpec()
      : SetM(name("memo.Set")), CasM(name("memo.Cas")),
        GetM(name("memo.Get")), State(Value(0)) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override {
    if (!Ret.isBool() || !Ret.asBool())
      return false;
    if (Method == SetM && Args.size() == 1) {
      ViewS.remove(Value("reg"), State);
      State = Args[0];
      ViewS.add(Value("reg"), State);
      return true;
    }
    if (Method == CasM && Args.size() == 2) {
      if (State != Args[0])
        return false;
      ViewS.remove(Value("reg"), State);
      State = Args[1];
      ViewS.add(Value("reg"), State);
      return true;
    }
    return false;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    ++Calls;
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override {
    Out.clear();
    Out.add(Value("reg"), State);
  }

  Name SetM, CasM, GetM;
  Value State;
  mutable uint64_t Calls = 0;
};

struct CheckRun {
  std::vector<Violation> Violations;
  CheckerStats Stats;
  uint64_t SpecCalls = 0;
};

CheckRun runWith(const std::vector<Action> &Script, bool Memoize,
            CheckMode Mode = CheckMode::CM_IORefinement) {
  CountingRegisterSpec S;
  CheckerConfig CC;
  CC.Mode = Mode;
  CC.MemoizeObservers = Memoize;
  RefinementChecker C(S, nullptr, CC);
  uint64_t Seq = 0;
  for (Action A : Script) {
    A.Seq = Seq++;
    C.feed(A);
  }
  C.finish();
  return {C.violations(), C.stats(), S.Calls};
}

/// Renders a violation list into a comparable signature (kind + seq +
/// method; messages may legitimately differ in diagnosis annotations'
/// wording but these fields must not).
std::string violationKey(const std::vector<Violation> &Vs) {
  std::string Out;
  for (const Violation &V : Vs)
    Out += std::string(violationKindName(V.Kind)) + "@" +
           std::to_string(V.Seq) + ":" + std::string(V.Method.str()) + ";";
  return Out;
}

/// Asserts memo-on and memo-off agree on \p Script and returns the pair.
std::pair<CheckRun, CheckRun> bothAgree(const std::vector<Action> &Script) {
  CheckRun On = runWith(Script, true);
  CheckRun Off = runWith(Script, false);
  EXPECT_EQ(violationKey(On.Violations), violationKey(Off.Violations));
  return {On, Off};
}

Name setM() { return name("memo.Set"); }
Name casM() { return name("memo.Cas"); }
Name getM() { return name("memo.Get"); }

std::vector<Action> fullSet(ThreadId T, int64_t X) {
  return {Action::call(T, setM(), {Value(X)}), Action::commit(T),
          Action::ret(T, setM(), Value(true))};
}

std::vector<Action> concat(std::initializer_list<std::vector<Action>> Ls) {
  std::vector<Action> Out;
  for (const auto &L : Ls)
    Out.insert(Out.end(), L.begin(), L.end());
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fig. 7 semantics under caching
//===----------------------------------------------------------------------===//

TEST(CheckerMemoTest, ObserverSatisfiedOnlyByLaterState) {
  // Fig. 7: the observer's return value is wrong at call time and only
  // becomes right after a commit inside its window. A memo that failed to
  // re-evaluate on version change would report a false violation.
  std::vector<Action> S = concat({
      {Action::call(1, getM(), {})}, // Get() -> 7 opens at state 0
      fullSet(0, 7),                 // state becomes 7 inside the window
      {Action::ret(1, getM(), Value(7))},
  });
  auto [On, Off] = bothAgree(S);
  EXPECT_TRUE(On.Violations.empty())
      << On.Violations[0].str() << " (memo must not freeze the verdict)";
  EXPECT_TRUE(Off.Violations.empty());
}

TEST(CheckerMemoTest, ObserverNeverSatisfiedStillReported) {
  std::vector<Action> S = concat({
      {Action::call(1, getM(), {})}, // Get() -> 9: no window state has 9
      fullSet(0, 7),
      {Action::ret(1, getM(), Value(9))},
  });
  auto [On, Off] = bothAgree(S);
  ASSERT_EQ(On.Violations.size(), 1u);
  EXPECT_EQ(On.Violations[0].Kind, ViolationKind::VK_ObserverMismatch);
}

//===----------------------------------------------------------------------===//
// Duplicate signatures collapse to one spec call per state
//===----------------------------------------------------------------------===//

TEST(CheckerMemoTest, DuplicateSignaturesCostOneSpecCallPerState) {
  // Eight observers with the identical signature Get() -> 5 stay open
  // across two commits. Per spec state, the memoized checker must ask the
  // spec once; the unmemoized one asks once per unsatisfied observer.
  constexpr unsigned N = 8;
  std::vector<Action> S;
  for (unsigned O = 0; O < N; ++O)
    S.push_back(Action::call(1 + O, getM(), {}));
  for (const Action &A : concat({fullSet(0, 1), fullSet(0, 5)}))
    S.push_back(A);
  for (unsigned O = 0; O < N; ++O)
    S.push_back(Action::ret(1 + O, getM(), Value(5)));

  CheckRun On = runWith(S, true);
  CheckRun Off = runWith(S, false);
  EXPECT_TRUE(On.Violations.empty());
  EXPECT_TRUE(Off.Violations.empty());

  // 3 distinct spec states in the windows (initial, 1, 5) and one
  // signature: exactly 3 real evaluations with the memo.
  EXPECT_EQ(On.SpecCalls, 3u);
  EXPECT_EQ(On.Stats.ObsMemoMisses, 3u);
  // The unmemoized checker asks per observer per state: N at open, N
  // after Set(1), N after Set(5) — all observers satisfied there.
  EXPECT_EQ(Off.SpecCalls, 3u * N);
  EXPECT_EQ(Off.Stats.ObsMemoHits, 0u);
  EXPECT_EQ(Off.Stats.ObsMemoMisses, 0u);
  // Hits + misses accounts for every evaluation the unmemoized checker
  // would have performed.
  EXPECT_EQ(On.Stats.ObsMemoHits + On.Stats.ObsMemoMisses, Off.SpecCalls);
}

TEST(CheckerMemoTest, UnchangedStateIsNotReevaluated) {
  // A failed commit leaves the spec state (and so its version) unchanged;
  // the open unsatisfied observer must not be re-asked.
  std::vector<Action> S = {
      Action::call(1, getM(), {}), // Get() -> 9, never satisfied
      // Cas(3, 4) fails at state 0: violation, no state change.
      Action::call(0, casM(), {Value(3), Value(4)}),
      Action::commit(0),
      Action::ret(0, casM(), Value(true)),
      Action::ret(1, getM(), Value(9)),
  };
  CheckRun On = runWith(S, true);
  CheckRun Off = runWith(S, false);
  EXPECT_EQ(violationKey(On.Violations), violationKey(Off.Violations));
  // Memoized: one real evaluation (at the observer's open); the version
  // skip covers the failed commit. Unmemoized: open + after-commit.
  EXPECT_EQ(On.Stats.ObsMemoMisses, 1u);
  EXPECT_GE(On.Stats.ObsMemoHits, 1u);
  EXPECT_EQ(On.SpecCalls, 1u);
  EXPECT_EQ(Off.SpecCalls, 2u);
}

//===----------------------------------------------------------------------===//
// Diagnosis recoveries invalidate the cache
//===----------------------------------------------------------------------===//

TEST(CheckerMemoTest, RecoveryAtFailedCommitInvalidatesMemo) {
  // The nastiest invalidation path: a Sec. 4.1 recovery mutates the spec
  // state from inside retryFailedMutators at a commit whose own
  // applyMutator FAILED — so without the recovery bumping the version,
  // the version-skip would wrongly keep the observer's stale verdict.
  //
  // Timeline (register starts at 0):
  //   1. t3: Cas(1,2) commits -> fails at 0, parked for diagnosis.
  //   2. t0: Cas(5,1) commits -> fails at 0, parked.
  //   3. t1: Get() -> 2 opens (state 0: unsatisfied).
  //   4. t2: Set(5) commits: state 5; retries run in park order:
  //      Cas(1,2) still fails, Cas(5,1) recovers -> state 1. The
  //      observer re-evaluates at state 1: still unsatisfied.
  //   5. t4: Cas(9,9) commits -> fails at 1 (no version bump); the retry
  //      pass now recovers Cas(1,2) -> state 2. Only the recovery's own
  //      version bump makes the observer re-evaluate here — at state 2,
  //      where Get() -> 2 is finally allowed.
  std::vector<Action> S = {
      Action::call(3, casM(), {Value(1), Value(2)}),
      Action::commit(3),
      Action::call(0, casM(), {Value(5), Value(1)}),
      Action::commit(0),
      Action::call(1, getM(), {}),
      Action::call(2, setM(), {Value(5)}),
      Action::commit(2),
      Action::ret(2, setM(), Value(true)),
      Action::call(4, casM(), {Value(9), Value(9)}),
      Action::commit(4),
      Action::ret(4, casM(), Value(true)),
      Action::ret(3, casM(), Value(true)),
      Action::ret(0, casM(), Value(true)),
      Action::ret(1, getM(), Value(2)),
  };
  auto [On, Off] = bothAgree(S);
  // The three failed Cas commits are mutator mismatches either way; the
  // observer must NOT be one of the violations: the recovered state 2
  // satisfied it.
  for (const Violation &V : On.Violations)
    EXPECT_NE(V.Kind, ViolationKind::VK_ObserverMismatch) << V.str();
  EXPECT_EQ(On.Violations.size(), 3u);
  // Each successful recovery must have bumped the version.
  EXPECT_EQ(On.Stats.SpecVersionBumps, Off.Stats.SpecVersionBumps);
  EXPECT_EQ(On.Stats.SpecVersionBumps, 3u); // Set(5) + two recoveries
}

//===----------------------------------------------------------------------===//
// Swap-and-pop bookkeeping (order irrelevance)
//===----------------------------------------------------------------------===//

TEST(CheckerMemoTest, ObserversClosingOutOfOrder) {
  // Three observers open in order A, B, C and close B, C, A — the middle
  // close exercises the swap (C moves into B's slot), the next close
  // removes C from its new position. Each verdict must follow the
  // observer's own window, not its slot.
  std::vector<Action> S = concat({
      {Action::call(1, getM(), {}),  // A: Get() -> 1 (never true)
       Action::call(2, getM(), {}),  // B: Get() -> 2
       Action::call(3, getM(), {})}, // C: Get() -> 3
      fullSet(0, 2),
      {Action::ret(2, getM(), Value(2))}, // B closes satisfied
      fullSet(0, 3),
      {Action::ret(3, getM(), Value(3)),  // C closes satisfied
       Action::ret(1, getM(), Value(1))}, // A closes: 1 never held
  });
  auto [On, Off] = bothAgree(S);
  ASSERT_EQ(On.Violations.size(), 1u) << violationKey(On.Violations);
  EXPECT_EQ(On.Violations[0].Kind, ViolationKind::VK_ObserverMismatch);
  EXPECT_EQ(On.Violations[0].Tid, 1u) << "the wrong observer was blamed";
}

TEST(CheckerMemoTest, FailedMutatorsRetiringOutOfOrder) {
  // Two parked mutators; the FIRST recovers (swap-and-pop moves the last
  // entry into slot 0) and the second must still be retried and receive
  // its "likely genuine" annotation at its return.
  std::vector<Action> S = concat({
      {Action::call(0, casM(), {Value(5), Value(6)}), // recovers at 5
       Action::commit(0),
       Action::call(1, casM(), {Value(77), Value(78)}), // never enabled
       Action::commit(1)},
      fullSet(2, 5),
      {Action::ret(0, casM(), Value(true)),
       Action::ret(1, casM(), Value(true))},
  });
  auto [On, Off] = bothAgree(S);
  ASSERT_EQ(On.Violations.size(), 2u);
  bool SawTooEarly = false, SawGenuine = false;
  for (const Violation &V : On.Violations) {
    EXPECT_EQ(V.Kind, ViolationKind::VK_MutatorMismatch);
    if (V.Message.find("likely too early") != std::string::npos)
      SawTooEarly = true;
    if (V.Message.find("likely a genuine") != std::string::npos)
      SawGenuine = true;
  }
  EXPECT_TRUE(SawTooEarly) << "recovered mutator lost its annotation";
  EXPECT_TRUE(SawGenuine) << "unrecovered mutator lost its annotation";
}

//===----------------------------------------------------------------------===//
// Randomized equivalence
//===----------------------------------------------------------------------===//

TEST(CheckerMemoTest, FuzzedScriptsAgree) {
  // Random interleavings of correct and incorrect mutators/observers:
  // memo-on and memo-off must produce the identical violation set on all
  // of them. Observer return values are sampled from a small range so
  // windows are satisfied sometimes early, sometimes late, sometimes not
  // at all.
  uint64_t Rand = 12345;
  auto Next = [&Rand](uint64_t Bound) {
    Rand ^= Rand << 13;
    Rand ^= Rand >> 7;
    Rand ^= Rand << 17;
    return Rand % Bound;
  };
  for (unsigned Iter = 0; Iter < 40; ++Iter) {
    std::vector<Action> S;
    constexpr unsigned NumThreads = 6;
    // Per-thread open state: 0 = idle, 1 = open observer, 2 = open
    // mutator awaiting commit, 3 = committed awaiting return.
    unsigned OpenKind[NumThreads] = {};
    Name PendingMethod[NumThreads] = {};
    for (unsigned Step = 0; Step < 120; ++Step) {
      ThreadId T = static_cast<ThreadId>(Next(NumThreads));
      switch (OpenKind[T]) {
      case 0:
        if (Next(2)) {
          OpenKind[T] = 1;
          S.push_back(Action::call(T, getM(), {}));
        } else {
          OpenKind[T] = 2;
          int64_t X = static_cast<int64_t>(Next(4));
          if (Next(4) == 0) { // sometimes a Cas that may not be enabled
            PendingMethod[T] = casM();
            S.push_back(
                Action::call(T, casM(), {Value(X), Value(X + 1)}));
          } else {
            PendingMethod[T] = setM();
            S.push_back(Action::call(T, setM(), {Value(X)}));
          }
        }
        break;
      case 1:
        OpenKind[T] = 0;
        S.push_back(Action::ret(T, getM(), Value(int64_t(Next(4)))));
        break;
      case 2:
        OpenKind[T] = 3;
        S.push_back(Action::commit(T));
        break;
      case 3:
        OpenKind[T] = 0;
        S.push_back(Action::ret(T, PendingMethod[T], Value(true)));
        break;
      }
    }
    // Close everything so AllowIncompleteTail plays no role.
    for (unsigned T = 0; T < NumThreads; ++T) {
      if (OpenKind[T] == 1)
        S.push_back(Action::ret(T, getM(), Value(int64_t(Next(4)))));
      if (OpenKind[T] == 2)
        S.push_back(Action::commit(T));
      if (OpenKind[T] == 2 || OpenKind[T] == 3)
        S.push_back(Action::ret(T, PendingMethod[T], Value(true)));
    }
    CheckRun On = runWith(S, true);
    CheckRun Off = runWith(S, false);
    EXPECT_EQ(violationKey(On.Violations), violationKey(Off.Violations))
        << "iteration " << Iter;
    EXPECT_LE(On.SpecCalls, Off.SpecCalls) << "iteration " << Iter;
  }
}
