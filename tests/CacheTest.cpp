//===- CacheTest.cpp - Tests for ChunkManager and BoxCache -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cache/BoxCache.h"
#include "cache/CacheSpec.h"
#include "chunk/ChunkManager.h"
#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::cache;
using namespace vyrd::chunk;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// ChunkManager
//===----------------------------------------------------------------------===//

TEST(ChunkManagerTest, AllocateReadWrite) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  Bytes Out;
  uint64_t Ver = 99;
  ASSERT_TRUE(CM.read(H, Out, &Ver));
  EXPECT_TRUE(Out.empty());
  EXPECT_EQ(Ver, 0u);
  EXPECT_TRUE(CM.write(H, {1, 2, 3}));
  ASSERT_TRUE(CM.read(H, Out, &Ver));
  EXPECT_EQ(Out, (Bytes{1, 2, 3}));
  EXPECT_EQ(Ver, 1u);
}

TEST(ChunkManagerTest, VersionBumpsPerWrite) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  for (int I = 1; I <= 5; ++I)
    CM.write(H, {static_cast<uint8_t>(I)});
  Bytes Out;
  uint64_t Ver = 0;
  CM.read(H, Out, &Ver);
  EXPECT_EQ(Ver, 5u);
}

TEST(ChunkManagerTest, UnknownHandleRejected) {
  ChunkManager CM;
  Bytes Out;
  EXPECT_FALSE(CM.read(12345, Out));
  EXPECT_FALSE(CM.write(12345, {1}));
}

TEST(ChunkManagerTest, HandlesAreUniqueAndOrdered) {
  ChunkManager CM;
  uint64_t A = CM.allocate(), B = CM.allocate(), C = CM.allocate();
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(CM.handles(), (std::vector<uint64_t>{A, B, C}));
  EXPECT_EQ(CM.chunkCount(), 3u);
}

//===----------------------------------------------------------------------===//
// BoxCache sequential semantics
//===----------------------------------------------------------------------===//

namespace {

BoxCache::Options cacheOpts(bool Buggy = false) {
  BoxCache::Options O;
  O.ChunkSize = 64;
  O.BuggyUnprotectedCopy = Buggy;
  return O;
}

} // namespace

TEST(BoxCacheTest, WriteDirtiesReadHits) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H, {9, 9});
  EXPECT_EQ(C.dirtyCount(), 1u);
  Bytes Out;
  ASSERT_TRUE(C.read(H, Out));
  EXPECT_EQ(Out, (Bytes{9, 9}));
  // Not yet in the chunk manager.
  Bytes CmOut;
  CM.read(H, CmOut);
  EXPECT_TRUE(CmOut.empty());
}

TEST(BoxCacheTest, FlushWritesBackAndCleans) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H, {1, 2});
  EXPECT_EQ(C.flush(), 1u);
  EXPECT_EQ(C.dirtyCount(), 0u);
  EXPECT_EQ(C.cleanCount(), 1u);
  Bytes CmOut;
  CM.read(H, CmOut);
  EXPECT_EQ(CmOut, (Bytes{1, 2}));
}

TEST(BoxCacheTest, DirtyHitOverwritesInPlace) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H, {1});
  C.write(H, {2, 3}); // dirty hit (commit point 3)
  EXPECT_EQ(C.dirtyCount(), 1u);
  Bytes Out;
  C.read(H, Out);
  EXPECT_EQ(Out, (Bytes{2, 3}));
}

TEST(BoxCacheTest, CleanHitMovesBackToDirty) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H, {1});
  C.flush();
  C.write(H, {2}); // clean hit (commit point 2)
  EXPECT_EQ(C.cleanCount(), 0u);
  EXPECT_EQ(C.dirtyCount(), 1u);
}

TEST(BoxCacheTest, RevokeWritesBackOneEntry) {
  ChunkManager CM;
  uint64_t H1 = CM.allocate(), H2 = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H1, {1});
  C.write(H2, {2});
  EXPECT_TRUE(C.revoke(H1));
  EXPECT_EQ(C.dirtyCount(), 1u) << "only H1 moved";
  EXPECT_EQ(C.cleanCount(), 1u);
  Bytes CmOut;
  CM.read(H1, CmOut);
  EXPECT_EQ(CmOut, (Bytes{1}));
  CM.read(H2, CmOut);
  EXPECT_TRUE(CmOut.empty()) << "H2 still only in the cache";
  EXPECT_FALSE(C.revoke(H1)) << "already clean";
  EXPECT_FALSE(C.revoke(424242));
}

TEST(CacheSpecTest, RevokeIsNoOp) {
  CacheSpec S({1});
  CacheVocab V = CacheVocab::get();
  View ViewS;
  S.buildView(ViewS);
  auto D = ViewS.digest();
  EXPECT_TRUE(S.applyMutator(V.Revoke, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Revoke, {Value(1)}, Value(false), ViewS));
  EXPECT_EQ(ViewS.digest(), D);
}

TEST(BoxCacheTest, EvictDropsCleanOnly) {
  ChunkManager CM;
  uint64_t H1 = CM.allocate(), H2 = CM.allocate();
  BoxCache C(CM, cacheOpts(), Hooks());
  C.write(H1, {1});
  C.flush();
  C.write(H2, {2});
  EXPECT_EQ(C.evict(), 1u);
  EXPECT_EQ(C.cleanCount(), 0u);
  EXPECT_EQ(C.dirtyCount(), 1u);
  Bytes Out;
  ASSERT_TRUE(C.read(H1, Out)) << "refetched from the chunk manager";
  EXPECT_EQ(Out, (Bytes{1}));
}

TEST(BoxCacheTest, ReadMissInstallsCleanEntry) {
  ChunkManager CM;
  uint64_t H = CM.allocate();
  CM.write(H, {7});
  BoxCache C(CM, cacheOpts(), Hooks());
  Bytes Out;
  ASSERT_TRUE(C.read(H, Out));
  EXPECT_EQ(Out, (Bytes{7}));
  EXPECT_EQ(C.cleanCount(), 1u);
}

TEST(BoxCacheTest, ReadUnknownHandleFails) {
  ChunkManager CM;
  BoxCache C(CM, cacheOpts(), Hooks());
  Bytes Out;
  EXPECT_FALSE(C.read(424242, Out));
}

//===----------------------------------------------------------------------===//
// CacheSpec / CacheReplayer
//===----------------------------------------------------------------------===//

namespace {

Action op1(Name Op, uint64_t H) {
  return Action::replayOp(0, Op, {Value(static_cast<int64_t>(H))});
}
Action op2(Name Op, uint64_t H, Bytes B) {
  return Action::replayOp(
      0, Op, {Value(static_cast<int64_t>(H)), Value(std::move(B))});
}

} // namespace

TEST(CacheSpecTest, WriteUpdatesStoreAndView) {
  CacheSpec S({1, 2});
  CacheVocab V = CacheVocab::get();
  View ViewS;
  S.buildView(ViewS);
  EXPECT_EQ(ViewS.size(), 2u);
  EXPECT_TRUE(S.applyMutator(V.Write,
                             {Value(1), Value(Bytes{5})}, Value(true),
                             ViewS));
  ASSERT_NE(S.contents(1), nullptr);
  EXPECT_EQ(*S.contents(1), (Bytes{5}));
  EXPECT_TRUE(S.returnAllowed(V.Read, {Value(1)}, Value(Bytes{5})));
  EXPECT_FALSE(S.returnAllowed(V.Read, {Value(1)}, Value(Bytes{6})));
}

TEST(CacheSpecTest, FlushAndEvictAreNoOps) {
  CacheSpec S({1});
  CacheVocab V = CacheVocab::get();
  View ViewS;
  S.buildView(ViewS);
  auto D = ViewS.digest();
  EXPECT_TRUE(S.applyMutator(V.Flush, {}, Value(3), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Evict, {}, Value(0), ViewS));
  EXPECT_EQ(ViewS.digest(), D);
}

TEST(CacheReplayerTest, VisibilityFollowsEntryMembership) {
  CacheReplayer R({7});
  CacheVocab V = CacheVocab::get();
  View ViewI;
  R.buildView(ViewI);
  EXPECT_EQ(ViewI.count(Value(7), Value(Bytes{})), 1u);

  R.applyUpdate(op1(V.OpNewEntry, 7), ViewI);
  R.applyUpdate(op2(V.OpCopy, 7, {1}), ViewI);
  EXPECT_EQ(ViewI.count(Value(7), Value(Bytes{})), 1u)
      << "entry invisible until listed";
  R.applyUpdate(op1(V.OpAddDirty, 7), ViewI);
  EXPECT_EQ(ViewI.count(Value(7), Value(Bytes{1})), 1u);

  // Flush: CM write + move to clean. Visible value unchanged.
  R.applyUpdate(op2(V.OpCmWrite, 7, {1}), ViewI);
  R.applyUpdate(op1(V.OpRemoveDirty, 7), ViewI);
  R.applyUpdate(op1(V.OpAddClean, 7), ViewI);
  EXPECT_EQ(ViewI.count(Value(7), Value(Bytes{1})), 1u);
  std::string Msg;
  EXPECT_TRUE(R.checkInvariants(Msg)) << Msg;

  // Evict: falls back to CM contents.
  R.applyUpdate(op1(V.OpRemoveClean, 7), ViewI);
  EXPECT_EQ(ViewI.count(Value(7), Value(Bytes{1})), 1u);
}

TEST(CacheReplayerTest, InvariantOneCatchesTornFlush) {
  CacheReplayer R({7});
  CacheVocab V = CacheVocab::get();
  View ViewI;
  R.buildView(ViewI);
  R.applyUpdate(op1(V.OpNewEntry, 7), ViewI);
  R.applyUpdate(op2(V.OpCopy, 7, {1, 1}), ViewI);
  R.applyUpdate(op1(V.OpAddDirty, 7), ViewI);
  // Torn flush: CM receives different bytes than the entry holds.
  R.applyUpdate(op2(V.OpCmWrite, 7, {1, 9}), ViewI);
  R.applyUpdate(op1(V.OpRemoveDirty, 7), ViewI);
  R.applyUpdate(op1(V.OpAddClean, 7), ViewI);
  std::string Msg;
  EXPECT_FALSE(R.checkInvariants(Msg));
  EXPECT_NE(Msg.find("invariant (i)"), std::string::npos) << Msg;
}

TEST(CacheReplayerTest, InvariantTwoCatchesDoubleListing) {
  CacheReplayer R({7});
  CacheVocab V = CacheVocab::get();
  View ViewI;
  R.buildView(ViewI);
  R.applyUpdate(op1(V.OpNewEntry, 7), ViewI);
  R.applyUpdate(op1(V.OpAddDirty, 7), ViewI);
  R.applyUpdate(op1(V.OpAddClean, 7), ViewI);
  std::string Msg;
  EXPECT_FALSE(R.checkInvariants(Msg));
  EXPECT_NE(Msg.find("invariant (ii)"), std::string::npos) << Msg;
}

TEST(CacheReplayerTest, IncrementalMatchesRebuild) {
  CacheReplayer R({1, 2, 3});
  CacheVocab V = CacheVocab::get();
  View Inc;
  R.buildView(Inc);
  R.applyUpdate(op1(V.OpNewEntry, 1), Inc);
  R.applyUpdate(op2(V.OpCopy, 1, {4}), Inc);
  R.applyUpdate(op1(V.OpAddDirty, 1), Inc);
  R.applyUpdate(op2(V.OpCmWrite, 2, {5, 5}), Inc);
  View Fresh;
  R.buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

//===----------------------------------------------------------------------===//
// Dynamic-handle mode (used when clients allocate blocks at runtime)
//===----------------------------------------------------------------------===//

TEST(CacheDynamicTest, WriteRegistersUnknownHandles) {
  CacheSpec S; // dynamic
  CacheVocab V = CacheVocab::get();
  View ViewS;
  S.buildView(ViewS);
  EXPECT_TRUE(ViewS.empty());
  EXPECT_TRUE(S.applyMutator(V.Write, {Value(777), Value(Bytes{1})},
                             Value(true), ViewS));
  EXPECT_EQ(ViewS.count(Value(777), Value(Bytes{1})), 1u);
}

TEST(CacheDynamicTest, EmptyContentsAreInvisibleInView) {
  CacheSpec S;
  CacheVocab V = CacheVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Write, {Value(5), Value(Bytes{9})},
                             Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Write, {Value(5), Value(Bytes{})},
                             Value(true), ViewS));
  EXPECT_TRUE(ViewS.empty()) << "empty block left the view";
}

TEST(CacheDynamicTest, ReadOfUnseenHandleAcceptsNullOrEmpty) {
  CacheSpec S;
  CacheVocab V = CacheVocab::get();
  EXPECT_TRUE(S.returnAllowed(V.Read, {Value(9)}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.Read, {Value(9)}, Value(Bytes{})));
  EXPECT_FALSE(S.returnAllowed(V.Read, {Value(9)}, Value(Bytes{1})));
}

TEST(CacheDynamicTest, ReplayerAutoRegistersAndMatchesRebuild) {
  CacheReplayer R; // dynamic
  CacheVocab V = CacheVocab::get();
  View Inc;
  R.buildView(Inc);
  R.applyUpdate(op1(V.OpNewEntry, 42), Inc);
  R.applyUpdate(op2(V.OpCopy, 42, {3, 4}), Inc);
  R.applyUpdate(op1(V.OpAddDirty, 42), Inc);
  EXPECT_EQ(Inc.count(Value(42), Value(Bytes{3, 4})), 1u);
  View Fresh;
  R.buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

TEST(CacheDynamicTest, EndToEndCleanRunWithDynamicHandles) {
  // Allocate handles during the run (the layered-stack usage pattern).
  chunk::ChunkManager CM;
  VerifierConfig VC;
  VC.Checker.AuditPeriod = 64;
  Verifier V(std::make_unique<CacheSpec>(),
             std::make_unique<CacheReplayer>(), VC);
  V.start();
  BoxCache C(CM, cacheOpts(), V.hooks());
  harness::Rng R(3);
  std::vector<uint64_t> Live;
  for (int I = 0; I < 400; ++I) {
    if (Live.empty() || R.percent(20))
      Live.push_back(CM.allocate());
    uint64_t Hd = Live[R.range(Live.size())];
    if (R.percent(50)) {
      C.write(Hd, {static_cast<uint8_t>(I), static_cast<uint8_t>(I >> 8)});
    } else if (R.percent(50)) {
      Bytes Out;
      C.read(Hd, Out);
    } else if (R.percent(50)) {
      C.flush();
    } else {
      C.evict();
    }
  }
  VerifierReport Rep = V.finish();
  EXPECT_TRUE(Rep.ok()) << Rep.str();
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runCache(bool Buggy, RunMode Mode, unsigned Threads,
                        unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = Program::P_Cache;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 128;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(CacheVerifiedTest, CorrectRunsClean) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R =
        runCache(false, RunMode::RM_OnlineView, 8, 200, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(CacheVerifiedTest, CorrectRunsCleanIOMode) {
  VerifierReport R = runCache(false, RunMode::RM_OnlineIO, 8, 200, 5);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(CacheVerifiedTest, BoxwoodBugCaughtByViewRefinement) {
  // Sec. 7.2.2: the unprotected COPY-TO-CACHE lets FLUSH persist a torn
  // buffer; invariant (i) fires at the flush commit.
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R =
        runCache(true, RunMode::RM_OnlineView, 8, 300, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "Boxwood cache bug not detected in 30 seeds";
}

TEST(CacheVerifiedTest, BoxwoodBugCaughtByIORefinementEventually) {
  // The I/O path needs evict-then-read of the corrupted handle: a much
  // longer run (the paper's Table 1 shows the same asymmetry).
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runCache(true, RunMode::RM_OnlineIO, 8, 1200, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
