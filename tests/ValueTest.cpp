//===- ValueTest.cpp - Unit tests for vyrd::Value --------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Value.h"

#include <gtest/gtest.h>

#include <set>

using namespace vyrd;

TEST(ValueTest, DefaultIsNull) {
  Value V;
  EXPECT_TRUE(V.isNull());
  EXPECT_EQ(V.kind(), ValueKind::VK_Null);
}

TEST(ValueTest, BoolRoundTrip) {
  Value T(true), F(false);
  EXPECT_TRUE(T.isBool());
  EXPECT_TRUE(T.asBool());
  EXPECT_FALSE(F.asBool());
  EXPECT_NE(T, F);
}

TEST(ValueTest, IntRoundTrip) {
  Value V(int64_t{-42});
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), -42);
}

TEST(ValueTest, IntFromVariousWidths) {
  EXPECT_EQ(Value(7).asInt(), 7);
  EXPECT_EQ(Value(7u).asInt(), 7);
  EXPECT_EQ(Value(uint64_t{7}).asInt(), 7);
}

TEST(ValueTest, StringRoundTrip) {
  Value V(std::string("hello"));
  EXPECT_TRUE(V.isStr());
  EXPECT_EQ(V.asStr(), "hello");
  EXPECT_EQ(Value("hello"), V);
}

TEST(ValueTest, BytesRoundTrip) {
  Value::Bytes B = {1, 2, 3, 255};
  Value V(B);
  EXPECT_TRUE(V.isBytes());
  EXPECT_EQ(V.asBytes(), B);
}

TEST(ValueTest, BytesValueHelper) {
  uint8_t Raw[] = {9, 8, 7};
  Value V = bytesValue(Raw, 3);
  ASSERT_TRUE(V.isBytes());
  EXPECT_EQ(V.asBytes().size(), 3u);
  EXPECT_EQ(V.asBytes()[0], 9);
}

TEST(ValueTest, EqualityDistinguishesKinds) {
  // int 1 != bool true != string "1"
  EXPECT_NE(Value(int64_t{1}), Value(true));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_NE(Value(true), Value("true"));
}

TEST(ValueTest, OrderingIsStrictWeak) {
  std::vector<Value> Vs = {Value(),      Value(false),    Value(true),
                           Value(-5),    Value(10),       Value("a"),
                           Value("b"),   Value(Value::Bytes{1})};
  for (size_t I = 0; I < Vs.size(); ++I)
    for (size_t J = 0; J < Vs.size(); ++J) {
      if (I == J) {
        EXPECT_FALSE(Vs[I] < Vs[J]);
      } else {
        EXPECT_TRUE((Vs[I] < Vs[J]) != (Vs[J] < Vs[I]))
            << "exactly one order between " << Vs[I].str() << " and "
            << Vs[J].str();
      }
    }
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_TRUE(Value() < Value(false));
  EXPECT_TRUE(Value() < Value(int64_t{INT64_MIN}));
  EXPECT_TRUE(Value() < Value(""));
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value(42).hash(), Value(42).hash());
  EXPECT_EQ(Value("xyz").hash(), Value("xyz").hash());
  EXPECT_EQ(Value(Value::Bytes{1, 2}).hash(),
            Value(Value::Bytes{1, 2}).hash());
}

TEST(ValueTest, HashDistinguishesKindsAndContents) {
  std::set<uint64_t> Hashes;
  Hashes.insert(Value().hash());
  Hashes.insert(Value(false).hash());
  Hashes.insert(Value(true).hash());
  Hashes.insert(Value(0).hash());
  Hashes.insert(Value(1).hash());
  Hashes.insert(Value("").hash());
  Hashes.insert(Value("0").hash());
  Hashes.insert(Value(Value::Bytes{}).hash());
  Hashes.insert(Value(Value::Bytes{0}).hash());
  EXPECT_EQ(Hashes.size(), 9u) << "hash collisions across simple values";
}

TEST(ValueTest, StrRendering) {
  EXPECT_EQ(Value().str(), "null");
  EXPECT_EQ(Value(true).str(), "true");
  EXPECT_EQ(Value(-3).str(), "-3");
  EXPECT_EQ(Value("hi").str(), "\"hi\"");
  EXPECT_EQ(Value(Value::Bytes{0xAB}).str(), "bytes[1]:ab");
}

TEST(ValueTest, LongBytesRenderingTruncates) {
  Value::Bytes B(20, 0x11);
  std::string S = Value(B).str();
  EXPECT_NE(S.find("bytes[20]:"), std::string::npos);
  EXPECT_NE(S.find(".."), std::string::npos);
}

//===----------------------------------------------------------------------===//
// ValueList small-buffer behavior
//===----------------------------------------------------------------------===//

TEST(ValueListTest, SmallListsStayInline) {
  ValueList L;
  EXPECT_TRUE(L.inlined());
  EXPECT_TRUE(L.empty());
  for (size_t I = 0; I < ValueList::InlineCapacity; ++I)
    L.push_back(Value(int64_t(I)));
  EXPECT_TRUE(L.inlined()) << "InlineCapacity values must not spill";
  EXPECT_EQ(L.size(), ValueList::InlineCapacity);
  for (size_t I = 0; I < L.size(); ++I)
    EXPECT_EQ(L[I].asInt(), int64_t(I));
}

TEST(ValueListTest, SpillsBeyondInlineCapacity) {
  ValueList L;
  for (int I = 0; I < 7; ++I)
    L.push_back(Value(I));
  EXPECT_FALSE(L.inlined());
  EXPECT_EQ(L.size(), 7u);
  for (int I = 0; I < 7; ++I)
    EXPECT_EQ(L[I].asInt(), I);
  EXPECT_EQ(L.front().asInt(), 0);
  EXPECT_EQ(L.back().asInt(), 6);
}

TEST(ValueListTest, ClearKeepsStorage) {
  ValueList L;
  for (int I = 0; I < 7; ++I)
    L.push_back(Value(std::string("payload-") + std::to_string(I)));
  size_t Cap = L.capacity();
  L.clear();
  EXPECT_TRUE(L.empty());
  EXPECT_EQ(L.capacity(), Cap) << "clear must keep a spilled buffer";
  for (int I = 0; I < 7; ++I)
    L.push_back(Value(I));
  EXPECT_EQ(L.capacity(), Cap) << "refill within capacity must not grow";
  EXPECT_EQ(L.size(), 7u);
}

TEST(ValueListTest, CopyPreservesContents) {
  ValueList Small = {Value(1), Value("two")};
  ValueList SmallCopy(Small);
  EXPECT_EQ(SmallCopy, Small);
  EXPECT_TRUE(SmallCopy.inlined());

  ValueList Big;
  for (int I = 0; I < 9; ++I)
    Big.push_back(Value(I));
  ValueList BigCopy(Big);
  EXPECT_EQ(BigCopy, Big);

  // Copy-assign a small list over a spilled one: the recycled buffer must
  // not leave stale elements visible.
  BigCopy = Small;
  EXPECT_EQ(BigCopy, Small);
  EXPECT_EQ(BigCopy.size(), 2u);
}

TEST(ValueListTest, MoveAdoptsHeapBuffer) {
  ValueList Big;
  for (int I = 0; I < 9; ++I)
    Big.push_back(Value(std::string("elem-") + std::to_string(I)));
  ValueList Expect(Big);

  // Move into a list whose inline slots are in use: the payloads must be
  // released and the spilled buffer adopted wholesale.
  ValueList Dst = {Value("stale-a"), Value("stale-b")};
  Dst = std::move(Big);
  EXPECT_EQ(Dst, Expect);
  EXPECT_FALSE(Dst.inlined());
  EXPECT_TRUE(Big.empty()); // NOLINT: moved-from is specified empty
}

TEST(ValueListTest, MoveOfInlineListKeepsDestinationStorage) {
  ValueList Dst;
  for (int I = 0; I < 9; ++I)
    Dst.push_back(Value(I));
  size_t Cap = Dst.capacity();
  ValueList Src = {Value(7), Value(8)};
  Dst = std::move(Src);
  EXPECT_EQ(Dst.size(), 2u);
  EXPECT_EQ(Dst[0].asInt(), 7);
  EXPECT_EQ(Dst[1].asInt(), 8);
  EXPECT_EQ(Dst.capacity(), Cap)
      << "moving an inline list must reuse the recycled heap buffer";
}

TEST(ValueListTest, EqualityAndHash) {
  ValueList A = {Value(1), Value("x")};
  ValueList B = {Value(1), Value("x")};
  ValueList C = {Value("x"), Value(1)};
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C) << "order matters";
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_NE(A.hash(), C.hash()) << "hash must be order-sensitive";

  // Inline vs spilled representation of the same contents must agree.
  ValueList Spilled;
  for (int I = 0; I < 5; ++I)
    Spilled.push_back(Value(I));
  for (int I = 0; I < 3; ++I)
    Spilled.pop_back();
  ValueList Inline = {Value(0), Value(1)};
  EXPECT_EQ(Spilled, Inline);
  EXPECT_EQ(Spilled.hash(), Inline.hash());

  // Length participates: a prefix must not collide.
  ValueList Prefix = {Value(0)};
  EXPECT_NE(Prefix.hash(), Inline.hash());
  EXPECT_NE(ValueList().hash(), Prefix.hash());
}

TEST(ValueListTest, PopBackReleasesPayload) {
  ValueList L = {Value("keep"), Value("drop")};
  L.pop_back();
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L[0].asStr(), "keep");
  L.push_back(Value(3));
  EXPECT_EQ(L.back().asInt(), 3) << "recycled slot must read as the new value";
}
