//===- ValueTest.cpp - Unit tests for vyrd::Value --------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Value.h"

#include <gtest/gtest.h>

#include <set>

using namespace vyrd;

TEST(ValueTest, DefaultIsNull) {
  Value V;
  EXPECT_TRUE(V.isNull());
  EXPECT_EQ(V.kind(), ValueKind::VK_Null);
}

TEST(ValueTest, BoolRoundTrip) {
  Value T(true), F(false);
  EXPECT_TRUE(T.isBool());
  EXPECT_TRUE(T.asBool());
  EXPECT_FALSE(F.asBool());
  EXPECT_NE(T, F);
}

TEST(ValueTest, IntRoundTrip) {
  Value V(int64_t{-42});
  EXPECT_TRUE(V.isInt());
  EXPECT_EQ(V.asInt(), -42);
}

TEST(ValueTest, IntFromVariousWidths) {
  EXPECT_EQ(Value(7).asInt(), 7);
  EXPECT_EQ(Value(7u).asInt(), 7);
  EXPECT_EQ(Value(uint64_t{7}).asInt(), 7);
}

TEST(ValueTest, StringRoundTrip) {
  Value V(std::string("hello"));
  EXPECT_TRUE(V.isStr());
  EXPECT_EQ(V.asStr(), "hello");
  EXPECT_EQ(Value("hello"), V);
}

TEST(ValueTest, BytesRoundTrip) {
  Value::Bytes B = {1, 2, 3, 255};
  Value V(B);
  EXPECT_TRUE(V.isBytes());
  EXPECT_EQ(V.asBytes(), B);
}

TEST(ValueTest, BytesValueHelper) {
  uint8_t Raw[] = {9, 8, 7};
  Value V = bytesValue(Raw, 3);
  ASSERT_TRUE(V.isBytes());
  EXPECT_EQ(V.asBytes().size(), 3u);
  EXPECT_EQ(V.asBytes()[0], 9);
}

TEST(ValueTest, EqualityDistinguishesKinds) {
  // int 1 != bool true != string "1"
  EXPECT_NE(Value(int64_t{1}), Value(true));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  EXPECT_NE(Value(true), Value("true"));
}

TEST(ValueTest, OrderingIsStrictWeak) {
  std::vector<Value> Vs = {Value(),      Value(false),    Value(true),
                           Value(-5),    Value(10),       Value("a"),
                           Value("b"),   Value(Value::Bytes{1})};
  for (size_t I = 0; I < Vs.size(); ++I)
    for (size_t J = 0; J < Vs.size(); ++J) {
      if (I == J) {
        EXPECT_FALSE(Vs[I] < Vs[J]);
      } else {
        EXPECT_TRUE((Vs[I] < Vs[J]) != (Vs[J] < Vs[I]))
            << "exactly one order between " << Vs[I].str() << " and "
            << Vs[J].str();
      }
    }
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_TRUE(Value() < Value(false));
  EXPECT_TRUE(Value() < Value(int64_t{INT64_MIN}));
  EXPECT_TRUE(Value() < Value(""));
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value(42).hash(), Value(42).hash());
  EXPECT_EQ(Value("xyz").hash(), Value("xyz").hash());
  EXPECT_EQ(Value(Value::Bytes{1, 2}).hash(),
            Value(Value::Bytes{1, 2}).hash());
}

TEST(ValueTest, HashDistinguishesKindsAndContents) {
  std::set<uint64_t> Hashes;
  Hashes.insert(Value().hash());
  Hashes.insert(Value(false).hash());
  Hashes.insert(Value(true).hash());
  Hashes.insert(Value(0).hash());
  Hashes.insert(Value(1).hash());
  Hashes.insert(Value("").hash());
  Hashes.insert(Value("0").hash());
  Hashes.insert(Value(Value::Bytes{}).hash());
  Hashes.insert(Value(Value::Bytes{0}).hash());
  EXPECT_EQ(Hashes.size(), 9u) << "hash collisions across simple values";
}

TEST(ValueTest, StrRendering) {
  EXPECT_EQ(Value().str(), "null");
  EXPECT_EQ(Value(true).str(), "true");
  EXPECT_EQ(Value(-3).str(), "-3");
  EXPECT_EQ(Value("hi").str(), "\"hi\"");
  EXPECT_EQ(Value(Value::Bytes{0xAB}).str(), "bytes[1]:ab");
}

TEST(ValueTest, LongBytesRenderingTruncates) {
  Value::Bytes B(20, 0x11);
  std::string S = Value(B).str();
  EXPECT_NE(S.find("bytes[20]:"), std::string::npos);
  EXPECT_NE(S.find(".."), std::string::npos);
}
