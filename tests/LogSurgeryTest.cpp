//===- LogSurgeryTest.cpp - Mutated-log detection properties ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Records one clean multiset trace, then applies surgical mutations and
/// re-checks: each class of corruption must produce the right class of
/// violation (or, where the specification is deliberately permissive,
/// none). This pins down the checker's failure taxonomy end to end.
///
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Checker.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::multiset;

namespace {

class LogSurgeryTest : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    // One shared clean trace (sequential, so mutations have predictable
    // effect).
    Trace = new std::vector<Action>();
    ScenarioOptions SO;
    SO.Prog = Program::P_MultisetVector;
    SO.Mode = RunMode::RM_LogOnlyView;
    Scenario S = makeScenario(SO);
    WorkloadOptions WO;
    WO.Threads = 1;
    WO.OpsPerThread = 300;
    WO.KeyPoolSize = 8;
    WO.Seed = 42;
    runWorkload(WO, S.Op);
    MemoryLog *L = static_cast<MemoryLog *>(S.L);
    S.Finish();
    Action A;
    // Re-record: MemoryLog was drained by Finish? LogOnly keeps records.
    while (L->next(A))
      Trace->push_back(A);
    ASSERT_GT(Trace->size(), 500u);
  }

  static void TearDownTestSuite() {
    delete Trace;
    Trace = nullptr;
  }

  /// Checks \p Mutated and returns the violations.
  static std::vector<Violation> check(std::vector<Action> Mutated) {
    MultisetSpec Spec;
    auto Replay = KeyValueReplayer::guardedBag("A");
    CheckerConfig CC;
    CC.AuditPeriod = 64;
    RefinementChecker C(Spec, Replay.get(), CC);
    uint64_t Seq = 0;
    for (Action &A : Mutated) {
      A.Seq = Seq++;
      C.feed(A);
    }
    C.finish();
    return C.violations();
  }

  static size_t findIndex(ActionKind K, Name Method, const Value *Ret,
                          size_t Skip = 0) {
    for (size_t I = 0; I < Trace->size(); ++I) {
      const Action &A = (*Trace)[I];
      if (A.Kind != K)
        continue;
      if (Method.valid() && A.Method != Method)
        continue;
      if (Ret && !(A.Ret == *Ret))
        continue;
      if (Skip--)
        continue;
      return I;
    }
    return SIZE_MAX;
  }

  static std::vector<Action> *Trace;
};

std::vector<Action> *LogSurgeryTest::Trace = nullptr;

} // namespace

TEST_F(LogSurgeryTest, UnmodifiedTraceIsClean) {
  EXPECT_TRUE(check(*Trace).empty());
}

TEST_F(LogSurgeryTest, FlippedLookUpReturnIsObserverMismatch) {
  Vocab V = Vocab::get();
  // Flip every LookUp's return until one yields a violation (a flipped
  // answer can occasionally be allowed by a concurrent window, but in a
  // sequential trace the first flip must trip).
  size_t Idx = findIndex(ActionKind::AK_Return, V.LookUp, nullptr);
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M[Idx].Ret = Value(!M[Idx].Ret.asBool());
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs.front().Kind, ViolationKind::VK_ObserverMismatch);
}

TEST_F(LogSurgeryTest, SuccessfulInsertClaimedFailedIsViewMismatch) {
  // Flipping Insert's return true->false is I/O-legal (failure is always
  // permitted) but the logged writes still happened: only view refinement
  // notices.
  Vocab V = Vocab::get();
  Value True(true);
  size_t Idx = findIndex(ActionKind::AK_Return, V.Insert, &True);
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M[Idx].Ret = Value(false);
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs.front().Kind, ViolationKind::VK_ViewMismatch);
}

TEST_F(LogSurgeryTest, FailedDeleteClaimedSuccessfulIsMutatorMismatch) {
  Vocab V = Vocab::get();
  Value False(false);
  size_t Idx = findIndex(ActionKind::AK_Return, V.Delete, &False);
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M[Idx].Ret = Value(true);
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs.front().Kind, ViolationKind::VK_MutatorMismatch);
  // In a sequential trace the claim can never become enabled later:
  EXPECT_NE(Vs.front().Message.find("genuine"), std::string::npos)
      << Vs.front().Message;
}

TEST_F(LogSurgeryTest, DroppedCommitIsInstrumentationError) {
  size_t Idx = findIndex(ActionKind::AK_Commit, Name(), nullptr, 3);
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M.erase(M.begin() + Idx);
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  bool HasInstr = false;
  for (const Violation &V : Vs)
    HasInstr |= V.Kind == ViolationKind::VK_Instrumentation;
  EXPECT_TRUE(HasInstr);
}

TEST_F(LogSurgeryTest, DuplicatedCommitIsInstrumentationError) {
  size_t Idx = findIndex(ActionKind::AK_Commit, Name(), nullptr, 5);
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M.insert(M.begin() + Idx, (*Trace)[Idx]);
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs.front().Kind, ViolationKind::VK_Instrumentation);
}

TEST_F(LogSurgeryTest, DroppedWriteIsViewMismatch) {
  // Remove the valid-bit write of some insert: the spec applies the
  // insert but the shadow never sees the publication.
  size_t Idx = SIZE_MAX;
  for (size_t I = 0; I < Trace->size(); ++I) {
    const Action &A = (*Trace)[I];
    if (A.Kind == ActionKind::AK_Write && A.Ret.isBool() &&
        A.Ret.asBool()) {
      Idx = I;
      break;
    }
  }
  ASSERT_NE(Idx, SIZE_MAX);
  std::vector<Action> M = *Trace;
  M.erase(M.begin() + Idx);
  std::vector<Violation> Vs = check(M);
  ASSERT_FALSE(Vs.empty());
  EXPECT_EQ(Vs.front().Kind, ViolationKind::VK_ViewMismatch);
}

TEST_F(LogSurgeryTest, TruncatedTailIsToleratedByDefault) {
  std::vector<Action> M(*Trace);
  M.resize(M.size() * 2 / 3);
  // Truncation may cut mid-execution; with the default tolerant tail the
  // only acceptable outcomes are "clean" or nothing at all... but a cut
  // inside a commit block can orphan state. Accept clean or
  // instrumentation-only reports.
  for (const Violation &V : check(M))
    EXPECT_EQ(V.Kind, ViolationKind::VK_Instrumentation) << V.str();
}

TEST_F(LogSurgeryTest, SwappedAdjacentCommitsOfDifferentKeysStillClean) {
  // Two adjacent *independent* mutator commits (different keys) commute:
  // swapping their order in the witness must not create violations.
  // Find two adjacent commit records from different executions... in a
  // sequential trace every method completes before the next begins, so
  // swapping whole method spans is the honest version of this test; we
  // swap two entire adjacent Insert executions of different keys.
  Vocab V = Vocab::get();
  // Locate two consecutive complete call..return spans.
  auto SpanAt = [&](size_t Start, size_t &End) -> bool {
    if (Start >= Trace->size() ||
        (*Trace)[Start].Kind != ActionKind::AK_Call)
      return false;
    for (size_t I = Start + 1; I < Trace->size(); ++I) {
      if ((*Trace)[I].Kind == ActionKind::AK_Return) {
        End = I;
        return true;
      }
      if ((*Trace)[I].Kind == ActionKind::AK_Call)
        return false;
    }
    return false;
  };
  for (size_t I = 0; I + 1 < Trace->size(); ++I) {
    size_t End1, End2;
    if (!SpanAt(I, End1))
      continue;
    if (!SpanAt(End1 + 1, End2))
      continue;
    const Action &C1 = (*Trace)[I];
    const Action &C2 = (*Trace)[End1 + 1];
    if (C1.Method != V.Insert || C2.Method != V.Insert)
      continue;
    if (C1.Args[0] == C2.Args[0])
      continue;
    std::vector<Action> M;
    M.insert(M.end(), Trace->begin(), Trace->begin() + I);
    M.insert(M.end(), Trace->begin() + End1 + 1,
             Trace->begin() + End2 + 1);
    M.insert(M.end(), Trace->begin() + I, Trace->begin() + End1 + 1);
    M.insert(M.end(), Trace->begin() + End2 + 1, Trace->end());
    EXPECT_TRUE(check(M).empty())
        << "independent inserts must commute in the witness";
    return;
  }
  GTEST_SKIP() << "no adjacent independent insert pair in this trace";
}
