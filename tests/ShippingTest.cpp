//===- ShippingTest.cpp - Segment shipping to a remote checker fleet -------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the producer/checker split behind SegmentTransport
/// (docs/SHIPPING.md): the framed wire protocol (CRC, resync), endpoint
/// parsing and config validation, verdict equivalence between the
/// in-process pipeline, InProcessTransport re-checks and a real
/// ShipServer fed over a unix socket, ack-gated producer-side segment
/// reclamation, producer-crash recovery at the receiver, and the
/// SD_LocalCheck / SD_Shed degrade paths when the fleet is unreachable.
///
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Backpressure.h"
#include "vyrd/CheckerService.h"
#include "vyrd/Epoch.h"
#include "vyrd/Log.h"
#include "vyrd/Monitor.h"
#include "vyrd/Serialize.h"
#include "vyrd/ShipServer.h"
#include "vyrd/Snapshot.h"
#include "vyrd/Transport.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

std::string tempBase(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-shiptest-" + Tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

/// Short socket paths: TempDir can push a unix path past sun_path.
std::string tempSock(const char *Tag) {
  return "/tmp/vyrd-shipsock-" + std::string(Tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

void removeChainAll(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 128; ++I) {
    std::remove(logSegmentPath(Base, I).c_str());
    std::remove(snapshotSidecarPath(Base, I).c_str());
  }
}

/// Records a workload into \p SO.LogPath and returns the recording run's
/// report.
VerifierReport recordRun(ScenarioOptions SO, unsigned Threads,
                         unsigned OpsPerThread, uint64_t Seed,
                         bool Composite = false) {
  Scenario S = Composite ? makeCompositeScenario(SO) : makeScenario(SO);
  Chaos::enable(4, static_cast<unsigned>(Seed % 13 + 1));
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = OpsPerThread;
  WO.KeyPoolSize = 16;
  WO.Seed = static_cast<unsigned>(Seed);
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

/// Records a composite four-object segmented chain; when \p Buggy,
/// retries seeds until the recording caught a violation.
VerifierReport recordCompositeChain(const std::string &Base, bool Buggy,
                                    uint64_t SegmentBytes = 16 * 1024) {
  for (int Try = 0;; ++Try) {
    removeChainAll(Base);
    ScenarioOptions SO;
    SO.Mode = RunMode::RM_OnlineView;
    SO.LogPath = Base;
    SO.Buggy = Buggy;
    SO.Backpressure.SegmentBytes = SegmentBytes;
    SO.Backpressure.ReclaimSegments = false;
    VerifierReport Rec =
        recordRun(SO, 4, 400, 7000 + Try, /*Composite=*/true);
    if (!Buggy || !Rec.Violations.empty() || Try >= 30)
      return Rec;
  }
}

/// From-zero reference over a recorded chain (serial, no snapshots).
EpochReport fromZero(const std::string &Base, size_t NumObjects,
                     PipelineFactory F) {
  EpochCheckOptions Zero;
  Zero.UseSnapshots = false;
  return epochCheck(Base, NumObjects, F, Zero);
}

/// Re-checks a chain through a CheckerService fed by an
/// InProcessTransport — the SD_LocalCheck path, and the structural
/// reference the socket tests compare against.
struct LocalShip {
  bool Ok = false;
  std::string Err;
  VerifierReport R;
};

LocalShip shipChainInProcess(const std::string &Base, size_t NumObjects,
                             PipelineFactory F, uint64_t FinalSeq) {
  LocalShip Out;
  CheckerService Svc(CheckerServiceOptions{});
  for (size_t Id = 0; Id < NumObjects; ++Id) {
    std::string Name;
    std::unique_ptr<Spec> S;
    std::unique_ptr<Replayer> R;
    if (!F(static_cast<ObjectId>(Id), Name, S, R) || !S) {
      Out.Err = "pipeline factory failed for object " + std::to_string(Id);
      return Out;
    }
    Svc.addObject(Name, std::move(S), std::move(R), CheckerConfig());
  }
  InProcessTransport T(Svc);
  if (!shipChain(Base, T, FinalSeq, /*CloseTimeoutMs=*/1000, Out.Err))
    return Out;
  Svc.finishChecking();
  Svc.buildReport(Out.R);
  Out.R.LogRecords = FinalSeq;
  Out.Ok = true;
  return Out;
}

/// Minimal field scraping for the server-side report JSON (the report is
/// rendered by VerifierReport::json(); exact key set pinned there).
uint64_t jsonUint(const std::string &J, const std::string &Key,
                  size_t From = 0) {
  std::string Needle = "\"" + Key + "\":";
  size_t P = J.find(Needle, From);
  if (P == std::string::npos)
    return ~0ull;
  return std::strtoull(J.c_str() + P + Needle.size(), nullptr, 10);
}

/// The "records" count of the object named \p Name in a report JSON.
uint64_t jsonObjectRecords(const std::string &J, const std::string &Name) {
  size_t P = J.find("\"name\":\"" + Name + "\"");
  if (P == std::string::npos)
    return ~0ull;
  return jsonUint(J, "records", P);
}

uint64_t jsonObjectViolations(const std::string &J,
                              const std::string &Name) {
  size_t P = J.find("\"name\":\"" + Name + "\"");
  if (P == std::string::npos)
    return ~0ull;
  return jsonUint(J, "violations", P);
}

bool readFileBytes(const std::string &Path, std::string &Out) {
  FILE *Fp = std::fopen(Path.c_str(), "rb");
  if (!Fp)
    return false;
  char Buf[65536];
  size_t N;
  Out.clear();
  while ((N = std::fread(Buf, 1, sizeof(Buf), Fp)) > 0)
    Out.append(Buf, N);
  std::fclose(Fp);
  return true;
}

/// Hand-rolled producer frames for the crash/garbage wire tests.
void appendHello(std::string &Out, const std::string &Name,
                 const std::string &Program, bool ViewLevel) {
  ByteWriter W;
  W.str(Name);
  W.str(Program);
  W.u8(ViewLevel ? 1 : 0);
  wire::appendFrame(Out, wire::FT_Hello, W.buffer().data(), W.size());
}

/// Frames one segment image: Begin, chunks, End. \p TruncateAfterChunks
/// < SIZE_MAX cuts the transfer off mid-segment (no End frame).
void appendSegment(std::string &Out, uint64_t Index,
                   const std::string &Image,
                   size_t TruncateAfterChunks = SIZE_MAX) {
  ByteWriter B;
  B.varint(Index);
  B.varint(Image.size());
  wire::appendFrame(Out, wire::FT_SegmentBegin, B.buffer().data(),
                    B.size());
  size_t Sent = 0;
  for (size_t Off = 0; Off < Image.size(); Off += wire::ChunkBytes) {
    if (Sent++ >= TruncateAfterChunks)
      return;
    size_t Len = std::min(wire::ChunkBytes, Image.size() - Off);
    wire::appendFrame(Out, wire::FT_SegmentChunk, Image.data() + Off, Len);
  }
  if (TruncateAfterChunks != SIZE_MAX)
    return;
  ByteWriter E;
  E.varint(Index);
  wire::appendFrame(Out, wire::FT_SegmentEnd, E.buffer().data(), E.size());
}

void appendClose(std::string &Out, uint64_t FinalSeqExclusive) {
  ByteWriter W;
  W.varint(FinalSeqExclusive);
  wire::appendFrame(Out, wire::FT_Close, W.buffer().data(), W.size());
}

/// Blocking unix-socket client for the raw wire tests.
int connectUnix(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  for (int Try = 0; Try < 100; ++Try) {
    if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    usleep(20 * 1000);
  }
  close(Fd);
  return -1;
}

bool sendRaw(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                     MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// The resolver vyrd-checkd uses, narrowed to what the tests ship.
bool testResolver(const std::string &Program, bool ViewLevel,
                  size_t &NumObjects, PipelineFactory &Factory) {
  if (Program == "composite") {
    NumObjects = 4;
    Factory = makeCompositePipeline(ViewLevel);
    return true;
  }
  if (Program == "multiset") {
    NumObjects = 1;
    Factory = makeProgramPipeline(Program::P_MultisetVector, ViewLevel);
    return true;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

TEST(ShippingTest, FrameRoundTripAcrossArbitrarySplits) {
  std::string Stream;
  std::string P1 = "first payload";
  std::string P2(100 * 1000, 'x'); // larger than one read() would return
  std::string P3 = "";
  wire::appendFrame(Stream, wire::FT_Hello, P1.data(), P1.size());
  wire::appendFrame(Stream, wire::FT_SegmentChunk, P2.data(), P2.size());
  wire::appendFrame(Stream, wire::FT_Close, P3.data(), P3.size());

  wire::FrameParser Parser;
  std::vector<wire::Frame> Got;
  for (size_t Off = 0; Off < Stream.size(); Off += 7) {
    Parser.feed(Stream.data() + Off, std::min<size_t>(7, Stream.size() - Off));
    wire::Frame F;
    while (Parser.next(F))
      Got.push_back(F);
  }
  ASSERT_EQ(Got.size(), 3u);
  EXPECT_EQ(Got[0].Type, wire::FT_Hello);
  EXPECT_EQ(std::string(Got[0].Payload.begin(), Got[0].Payload.end()), P1);
  EXPECT_EQ(Got[1].Type, wire::FT_SegmentChunk);
  EXPECT_EQ(Got[1].Payload.size(), P2.size());
  EXPECT_EQ(Got[2].Type, wire::FT_Close);
  EXPECT_TRUE(Got[2].Payload.empty());
  EXPECT_EQ(Parser.crcErrors(), 0u);
  EXPECT_EQ(Parser.resyncs(), 0u);
}

TEST(ShippingTest, CorruptFrameResyncsAtNextMagic) {
  std::string A = "aaaa", B = "bbbb", C = "cccc";
  std::string Stream;
  wire::appendFrame(Stream, wire::FT_Hello, A.data(), A.size());
  size_t MidStart = Stream.size();
  wire::appendFrame(Stream, wire::FT_SegmentChunk, B.data(), B.size());
  wire::appendFrame(Stream, wire::FT_Close, C.data(), C.size());
  Stream[MidStart + 10] ^= 0x5A; // scribble into the middle payload

  wire::FrameParser Parser;
  Parser.feed(Stream.data(), Stream.size());
  std::vector<wire::Frame> Got;
  wire::Frame F;
  while (Parser.next(F))
    Got.push_back(F);
  ASSERT_EQ(Got.size(), 2u) << "the corrupted frame is lost, not the rest";
  EXPECT_EQ(Got[0].Type, wire::FT_Hello);
  EXPECT_EQ(Got[1].Type, wire::FT_Close);
  EXPECT_EQ(std::string(Got[1].Payload.begin(), Got[1].Payload.end()), C);
  EXPECT_GE(Parser.crcErrors(), 1u);
  EXPECT_GE(Parser.resyncs(), 1u);
}

TEST(ShippingTest, GarbageBetweenFramesAndTruncatedTail) {
  std::string A = "payload";
  std::string Stream = "this is not a frame at all ";
  wire::appendFrame(Stream, wire::FT_Hello, A.data(), A.size());

  wire::FrameParser Parser;
  Parser.feed(Stream.data(), Stream.size());
  wire::Frame F;
  ASSERT_TRUE(Parser.next(F));
  EXPECT_EQ(F.Type, wire::FT_Hello);
  EXPECT_GE(Parser.resyncs(), 1u);
  EXPECT_FALSE(Parser.next(F));

  // A truncated frame stays pending and never parses.
  std::string Tail;
  wire::appendFrame(Tail, wire::FT_Close, A.data(), A.size());
  Parser.feed(Tail.data(), Tail.size() / 2);
  EXPECT_FALSE(Parser.next(F));
  Parser.feed(Tail.data() + Tail.size() / 2, Tail.size() - Tail.size() / 2);
  ASSERT_TRUE(Parser.next(F));
  EXPECT_EQ(F.Type, wire::FT_Close);
}

//===----------------------------------------------------------------------===//
// Endpoint parsing and config validation
//===----------------------------------------------------------------------===//

TEST(ShippingTest, EndpointParsing) {
  ShipEndpoint Ep;
  std::string Err;
  ASSERT_TRUE(parseShipEndpoint("unix:/run/vyrd.sock", Ep, Err)) << Err;
  EXPECT_TRUE(Ep.IsUnix);
  EXPECT_EQ(Ep.Path, "/run/vyrd.sock");
  ASSERT_TRUE(parseShipEndpoint("tcp:localhost:9321", Ep, Err)) << Err;
  EXPECT_FALSE(Ep.IsUnix);
  EXPECT_EQ(Ep.Host, "localhost");
  EXPECT_EQ(Ep.Port, 9321);

  for (const char *Bad :
       {"", "ftp://x", "unix:", "tcp:", "tcp:host", "tcp:host:",
        "tcp:host:notaport", "tcp:host:70000", "tcp::9000"}) {
    Err.clear();
    EXPECT_FALSE(parseShipEndpoint(Bad, Ep, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
  // A unix path past sizeof(sockaddr_un::sun_path) must be refused here,
  // not silently truncated at bind time.
  std::string Long = "unix:/" + std::string(maxUnixSocketPathLen() + 8, 'p');
  EXPECT_FALSE(parseShipEndpoint(Long, Ep, Err));
}

TEST(ShippingTest, ConfigValidationGatesShipping) {
  VerifierConfig VC;
  VC.Shipping.Endpoint = "unix:/tmp/vyrd-shiptest-validate.sock";
  EXPECT_FALSE(VC.validate().empty())
      << "shipping without a segmented file log must be rejected";
  VC.LogFilePath = "/tmp/vyrd-shiptest-validate.bin";
  VC.Backpressure.SegmentBytes = 1 << 20;
  EXPECT_FALSE(VC.validate().empty()) << "shipping needs a program key";
  VC.Shipping.Program = "multiset";
  EXPECT_TRUE(VC.validate().empty()) << VC.validate();

  VerifierConfig Good = VC;
  VC.Online = false;
  EXPECT_FALSE(VC.validate().empty()) << "shipping is an online pipeline";
  VC = Good;
  VC.Snapshots = true;
  EXPECT_FALSE(VC.validate().empty());
  VC = Good;
  VC.Adaptive.Enabled = true;
  EXPECT_FALSE(VC.validate().empty());
  VC = Good;
  VC.Shipping.MaxRetries = 0;
  EXPECT_FALSE(VC.validate().empty());
  VC = Good;
  VC.Shipping.Endpoint = "tcp:host";
  EXPECT_FALSE(VC.validate().empty());
  VC = Good;
  VC.Shipping.Endpoint =
      "unix:/" + std::string(maxUnixSocketPathLen() + 8, 'p');
  EXPECT_FALSE(VC.validate().empty());
}

TEST(ShippingTest, ConfigValidationRejectsOverlongMonitorSocket) {
  VerifierConfig VC;
  VC.Telemetry.Enabled = true;
  VC.Monitor.SocketPath = "/" + std::string(maxUnixSocketPathLen() + 8, 'm');
  std::string Err = VC.validate();
  ASSERT_FALSE(Err.empty());
  EXPECT_NE(Err.find("sockaddr_un"), std::string::npos) << Err;
  VC.Monitor.SocketPath = "/tmp/vyrd-shiptest-mon.sock";
  EXPECT_TRUE(VC.validate().empty()) << VC.validate();
}

//===----------------------------------------------------------------------===//
// Verdict equivalence: inline == InProcessTransport == socket fleet
//===----------------------------------------------------------------------===//

// A recorded buggy composite chain must produce the identical verdict,
// attribution and per-object stats when re-checked (a) from zero, (b)
// through InProcessTransport into a CheckerService, and (c) shipped over
// a real unix socket into a ShipServer session.
TEST(ShippingTest, ShippedVerdictMatchesInProcessCheck) {
  std::string Base = tempBase("equiv");
  VerifierReport Rec = recordCompositeChain(Base, /*Buggy=*/true);
  ASSERT_FALSE(Rec.Violations.empty())
      << "could not provoke the composite multiset bug in 30 seeds";

  std::vector<Action> Records;
  ASSERT_TRUE(loadLogFile(Base, Records));
  uint64_t FinalSeq = Records.size();

  // (a) The serial from-zero reference.
  EpochReport Zero = fromZero(Base, 4, makeCompositePipeline(true));
  ASSERT_TRUE(Zero.Error.empty()) << Zero.Error;
  ASSERT_FALSE(Zero.Report.Violations.empty());

  // (b) InProcessTransport == from-zero, field by field.
  LocalShip Local =
      shipChainInProcess(Base, 4, makeCompositePipeline(true), FinalSeq);
  ASSERT_TRUE(Local.Ok) << Local.Err;
  ASSERT_EQ(Local.R.Violations.size(), Zero.Report.Violations.size());
  for (size_t I = 0; I < Local.R.Violations.size(); ++I) {
    EXPECT_EQ(Local.R.Violations[I].Seq, Zero.Report.Violations[I].Seq);
    EXPECT_EQ(Local.R.Violations[I].Kind, Zero.Report.Violations[I].Kind);
    EXPECT_EQ(Local.R.Violations[I].Obj, Zero.Report.Violations[I].Obj);
  }
  ASSERT_EQ(Local.R.Objects.size(), 4u);
  for (size_t O = 0; O < 4; ++O) {
    EXPECT_EQ(Local.R.Objects[O].Name, Zero.Report.Objects[O].Name);
    EXPECT_EQ(Local.R.Objects[O].Records, Zero.Report.Objects[O].Records);
    EXPECT_EQ(Local.R.Objects[O].Stats.ActionsFed,
              Zero.Report.Objects[O].Stats.ActionsFed);
    EXPECT_EQ(Local.R.Objects[O].Stats.ViewComparisons,
              Zero.Report.Objects[O].Stats.ViewComparisons);
  }

  // (c) The socket fleet: SocketTransport -> ShipServer over a real
  // unix socket, then compare its session report.
  std::string Sock = tempSock("equiv");
  std::remove(Sock.c_str());
  ShipServerOptions O;
  O.Listen = "unix:" + Sock;
  O.ReportDir = ""; // keep the report in memory only
  MonitorRegistry Registry;
  ShipServer Server(O, testResolver, &Registry);
  ASSERT_TRUE(Server.valid()) << Server.error();

  ShipperOptions SO;
  SO.Endpoint = "unix:" + Sock;
  SO.StreamName = "equiv";
  SO.Program = "composite";
  SO.ViewLevel = true;
  SocketTransport T(SO, nullptr);
  std::string Err;
  ASSERT_TRUE(shipChain(Base, T, FinalSeq, /*CloseTimeoutMs=*/10000, Err))
      << Err;
  ASSERT_TRUE(Server.waitForSessionEnd("equiv", 10000));
  std::string J = Server.sessionReportJson("equiv");
  ASSERT_FALSE(J.empty());
  EXPECT_EQ(jsonUint(J, "violations"), Local.R.Violations.size());
  EXPECT_EQ(jsonUint(J, "log_records"), FinalSeq);
  EXPECT_EQ(jsonUint(J, "actions_fed"), Local.R.Stats.ActionsFed);
  for (const char *Name : {"multiset", "cache", "blinktree", "queue"}) {
    const ObjectReport *Ref = nullptr;
    for (const ObjectReport &OR : Local.R.Objects)
      if (OR.Name == Name)
        Ref = &OR;
    ASSERT_NE(Ref, nullptr) << Name;
    EXPECT_EQ(jsonObjectRecords(J, Name), Ref->Records) << Name;
    EXPECT_EQ(jsonObjectViolations(J, Name), Ref->Violations.size())
        << Name;
  }

  // The session registered with the monitor registry and stays
  // resolvable after completion (a bound vyrd-mon keeps working).
  std::vector<std::string> Names = Registry.names();
  ASSERT_EQ(Names.size(), 1u);
  EXPECT_EQ(Names[0], "equiv");
  EXPECT_NE(Registry.resolve("equiv"), nullptr);
  EXPECT_EQ(Registry.resolve("nope"), nullptr);

  Server.stop();
  std::remove(Sock.c_str());
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Live shipping run: acks gate reclamation
//===----------------------------------------------------------------------===//

// A live Verifier in shipping mode must reclaim closed segments only
// after the remote ack covers them: with acks withheld the whole chain
// stays on disk; once they flow, the checked prefix goes away and the
// final ack confirms the complete stream.
TEST(ShippingTest, LiveRunReclaimsOnlyAckedSegments) {
  std::string Base = tempBase("live");
  std::string Sock = tempSock("live");
  removeChainAll(Base);
  std::remove(Sock.c_str());

  ShipServerOptions O;
  O.Listen = "unix:" + Sock;
  O.ReportDir = "";
  ShipServer Server(O, testResolver, nullptr);
  ASSERT_TRUE(Server.valid()) << Server.error();
  Server.setHoldAcks(true);

  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = true;
  SO.Telemetry.Enabled = true;
  SO.Shipping.Endpoint = "unix:" + Sock;
  SO.Shipping.StreamName = "live";
  Scenario S = makeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 400;
  WO.KeyPoolSize = 16;
  WO.Seed = 42;
  runWorkload(WO, S.Op);

  // Acks were withheld for the whole workload, so nothing was reclaimed:
  // segment 1 must still exist.
  {
    std::vector<ChainSegment> Segs;
    ASSERT_TRUE(enumerateChain(Base, Segs));
    ASSERT_GE(Segs.size(), 2u) << "workload too small to rotate";
    EXPECT_EQ(Segs.front().Index, 1u)
        << "reclamation must be gated on remote acks, not local progress";
  }

  Server.setHoldAcks(false);
  VerifierReport R = S.Finish();
  ASSERT_TRUE(R.Shipping.Enabled);
  EXPECT_EQ(R.Shipping.Endpoint, "unix:" + Sock);
  EXPECT_EQ(R.Shipping.StreamName, "live");
  EXPECT_TRUE(R.Shipping.FinalAckOk) << R.str();
  EXPECT_FALSE(R.Shipping.Degraded);
  EXPECT_GE(R.Shipping.SegmentsShipped, 2u);
  EXPECT_GE(R.Shipping.Acks, 1u);
  EXPECT_EQ(R.Shipping.AckedWatermark, R.LogRecords)
      << "the final ack covers the entire stream";
  EXPECT_TRUE(R.Violations.empty())
      << "a shipping producer runs no local checkers";
  ASSERT_TRUE(R.TelemetryEnabled);
  EXPECT_EQ(R.Telemetry.counter(Counter::C_ShipSegments),
            R.Shipping.SegmentsShipped);

  // The confirmed final ack reclaimed the acked prefix.
  FILE *Seg1 = std::fopen(logSegmentPath(Base, 1).c_str(), "rb");
  EXPECT_EQ(Seg1, nullptr) << "acked segments must be reclaimed";
  if (Seg1)
    std::fclose(Seg1);

  ASSERT_TRUE(Server.waitForSessionEnd("live", 10000));
  std::string J = Server.sessionReportJson("live");
  ASSERT_FALSE(J.empty());
  EXPECT_NE(J.find("\"ok\":true"), std::string::npos) << J;
  EXPECT_EQ(jsonUint(J, "log_records"), R.LogRecords);

  Server.stop();
  std::remove(Sock.c_str());
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Producer crash recovery and mid-stream garbage
//===----------------------------------------------------------------------===//

// A producer that dies mid-segment (no End frame, abrupt EOF) must cost
// the fleet only that segment: the daemon finalizes the session over the
// fed prefix, and the report matches a from-zero check of exactly those
// records.
TEST(ShippingTest, ProducerCrashMidSegmentFinalizesFedPrefix) {
  std::string Base = tempBase("crash");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 4 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  VerifierReport Rec = recordRun(SO, 4, 400, 11);
  ASSERT_TRUE(Rec.ok()) << Rec.str();

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  ASSERT_GE(Segs.size(), 3u) << "need a chain to crash in the middle of";

  std::string Sock = tempSock("crash");
  std::remove(Sock.c_str());
  ShipServerOptions O;
  O.Listen = "unix:" + Sock;
  O.ReportDir = "";
  ShipServer Server(O, testResolver, nullptr);
  ASSERT_TRUE(Server.valid()) << Server.error();

  // Ship the first two segments whole, then "crash": a SegmentBegin plus
  // one chunk of segment 3 and an abrupt close.
  int Fd = connectUnix(Sock);
  ASSERT_GE(Fd, 0);
  std::string Out;
  appendHello(Out, "crash", "multiset", /*ViewLevel=*/true);
  for (size_t I = 0; I < 2; ++I) {
    std::string Img;
    ASSERT_TRUE(readFileBytes(Segs[I].Path, Img));
    appendSegment(Out, Segs[I].Index, Img);
  }
  std::string Img3;
  ASSERT_TRUE(readFileBytes(Segs[2].Path, Img3));
  appendSegment(Out, Segs[2].Index, Img3, /*TruncateAfterChunks=*/1);
  ASSERT_TRUE(sendRaw(Fd, Out));
  close(Fd); // the crash

  // stop() finalizes the truncated session over what it fed.
  usleep(100 * 1000);
  Server.stop();
  std::string J = Server.sessionReportJson("crash");
  ASSERT_FALSE(J.empty());

  // Reference: the fed prefix is exactly segments 1..2, i.e. every
  // record below segment 3's first sequence number.
  uint64_t Prefix = Segs[2].FirstSeq;
  EXPECT_EQ(jsonUint(J, "log_records"), Prefix);
  EXPECT_EQ(jsonUint(J, "actions_fed"), Prefix)
      << "the partial segment must not be fed";
  EXPECT_NE(J.find("\"ok\":true"), std::string::npos) << J;

  std::remove(Sock.c_str());
  removeChainAll(Base);
}

// Garbage injected between frames must cost nothing: the receiver
// resynchronizes at the next frame magic and the verdict over the full
// stream is unchanged.
TEST(ShippingTest, GarbageOnTheWireResyncsWithoutVerdictDamage) {
  std::string Base = tempBase("garbage");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 4 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  VerifierReport Rec = recordRun(SO, 4, 300, 13);
  ASSERT_TRUE(Rec.ok()) << Rec.str();
  std::vector<Action> Records;
  ASSERT_TRUE(loadLogFile(Base, Records));
  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  ASSERT_GE(Segs.size(), 2u);

  std::string Sock = tempSock("garbage");
  std::remove(Sock.c_str());
  ShipServerOptions O;
  O.Listen = "unix:" + Sock;
  O.ReportDir = "";
  ShipServer Server(O, testResolver, nullptr);
  ASSERT_TRUE(Server.valid()) << Server.error();

  int Fd = connectUnix(Sock);
  ASSERT_GE(Fd, 0);
  std::string Out;
  appendHello(Out, "garbage", "multiset", /*ViewLevel=*/true);
  for (size_t I = 0; I < Segs.size(); ++I) {
    Out += "#### line noise between frames ####";
    std::string Img;
    ASSERT_TRUE(readFileBytes(Segs[I].Path, Img));
    appendSegment(Out, Segs[I].Index, Img);
  }
  appendClose(Out, Records.size());
  ASSERT_TRUE(sendRaw(Fd, Out));
  ASSERT_TRUE(Server.waitForSessionEnd("garbage", 10000));
  close(Fd);
  std::string J = Server.sessionReportJson("garbage");
  ASSERT_FALSE(J.empty());
  EXPECT_EQ(jsonUint(J, "log_records"), Records.size());
  EXPECT_EQ(jsonUint(J, "actions_fed"), Records.size());
  EXPECT_NE(J.find("\"ok\":true"), std::string::npos) << J;

  Server.stop();
  std::remove(Sock.c_str());
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Degrade paths: the fleet is unreachable
//===----------------------------------------------------------------------===//

// SD_LocalCheck: when the fleet never answers, finish() re-checks the
// surviving chain in-process — including catching a violation the remote
// fleet would have caught.
TEST(ShippingTest, LocalCheckDegradeCatchesViolationLocally) {
  std::string Base = tempBase("degrade-local");
  bool Caught = false;
  for (int Try = 0; Try < 20 && !Caught; ++Try) {
    removeChainAll(Base);
    ScenarioOptions SO;
    SO.Prog = Program::P_MultisetVector;
    SO.Mode = RunMode::RM_OnlineView;
    SO.LogPath = Base;
    SO.Buggy = true;
    SO.Backpressure.SegmentBytes = 8 * 1024;
    SO.Backpressure.ReclaimSegments = true;
    SO.Shipping.Endpoint =
        "unix:/tmp/vyrd-shiptest-no-such-daemon-" +
        std::to_string(::getpid()) + ".sock";
    SO.Shipping.MaxRetries = 1;
    SO.Shipping.BackoffInitialMs = 1;
    SO.Shipping.BackoffCapMs = 2;
    SO.Shipping.FinalAckTimeoutMs = 10;
    SO.Shipping.Degrade = ShipDegrade::SD_LocalCheck;
    VerifierReport R = recordRun(SO, 4, 300, 4000 + Try);
    ASSERT_TRUE(R.Shipping.Enabled);
    EXPECT_TRUE(R.Shipping.Degraded);
    EXPECT_EQ(R.Shipping.DegradeMode, "local-check");
    EXPECT_FALSE(R.Shipping.FinalAckOk);
    EXPECT_EQ(R.Shipping.FallbackRecords, R.LogRecords)
        << "nothing was acked, so the whole chain re-checks locally";
    ASSERT_FALSE(R.Notes.empty());
    if (!R.Violations.empty())
      Caught = true;
  }
  EXPECT_TRUE(Caught)
      << "the local fallback never reproduced the injected bug";
  removeChainAll(Base);
}

// SD_Shed: verdicts on acked records stand, the unverified suffix is
// accounted as a degradation note — no local checking happens.
TEST(ShippingTest, ShedDegradeAccountsUnverifiedSuffix) {
  std::string Base = tempBase("degrade-shed");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = true;
  SO.Shipping.Endpoint = "unix:/tmp/vyrd-shiptest-no-such-daemon2-" +
                         std::to_string(::getpid()) + ".sock";
  SO.Shipping.MaxRetries = 1;
  SO.Shipping.BackoffInitialMs = 1;
  SO.Shipping.BackoffCapMs = 2;
  SO.Shipping.FinalAckTimeoutMs = 10;
  SO.Shipping.Degrade = ShipDegrade::SD_Shed;
  VerifierReport R = recordRun(SO, 4, 300, 21);
  ASSERT_TRUE(R.Shipping.Enabled);
  EXPECT_TRUE(R.Shipping.Degraded);
  EXPECT_EQ(R.Shipping.DegradeMode, "shed");
  EXPECT_EQ(R.Shipping.FallbackRecords, 0u);
  EXPECT_EQ(R.Shipping.AckedWatermark, 0u);
  ASSERT_FALSE(R.Notes.empty());
  bool Noted = false;
  for (const std::string &N : R.Notes)
    Noted |= N.find("unverified") != std::string::npos;
  EXPECT_TRUE(Noted) << "the shed note must name the unverified records";
  EXPECT_TRUE(R.ok()) << "notes are advisories, not violations";
  removeChainAll(Base);
}

// The retry budget: a transport pointed at nothing burns exactly
// MaxRetries retries with capped backoff, then reports unhealthy and
// stops trying.
TEST(ShippingTest, RetryBudgetAndBackoffAccounting) {
  ShipperOptions O;
  O.Endpoint = "unix:/tmp/vyrd-shiptest-void-" +
               std::to_string(::getpid()) + ".sock";
  O.Program = "multiset";
  O.MaxRetries = 3;
  O.BackoffInitialMs = 1;
  O.BackoffCapMs = 4;
  SocketTransport T(O, nullptr);
  EXPECT_TRUE(T.healthy());

  ShipSegmentInfo Seg;
  Seg.Index = 1;
  Seg.Path = "/tmp/vyrd-shiptest-does-not-exist.bin";
  EXPECT_FALSE(T.shipSegment(Seg));
  EXPECT_FALSE(T.healthy());
  SegmentTransport::Stats St = T.stats();
  EXPECT_EQ(St.Retries, 3u);
  EXPECT_EQ(St.Segments, 0u);

  // Unhealthy transports fail fast: no further retries are burned.
  EXPECT_FALSE(T.shipSegment(Seg));
  EXPECT_EQ(T.stats().Retries, 3u);
  EXPECT_FALSE(T.shipClose(100, 10));
}
