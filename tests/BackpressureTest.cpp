//===- BackpressureTest.cpp - Bounded-pipeline admission policies ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the bounded pipeline end to end: config validation, the
/// three admission policies (BP_Block / BP_SpillToDisk / BP_Shed) at the
/// log backends and through a full Verifier with a throttled checker,
/// and the memory bound itself via a global operator-new hook — the peak
/// live heap of a bounded run must stay orders of magnitude under what
/// the unbounded queue would pin.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vyrd/Log.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <malloc.h>
#include <new>
#include <thread>

using namespace vyrd;
using namespace vyrd::test;

//===----------------------------------------------------------------------===//
// Live-heap accounting hook
//===----------------------------------------------------------------------===//

namespace {
/// Always-on live-byte ledger (so frees of pre-test allocations cannot
/// skew it negative); the peak only advances while a test arms GTrackPeak
/// around the region it wants to bound.
std::atomic<int64_t> GLiveBytes{0};
std::atomic<int64_t> GPeakBytes{0};
std::atomic<bool> GTrackPeak{false};
} // namespace

void *operator new(size_t Size) {
  void *P = std::malloc(Size ? Size : 1);
  if (!P)
    throw std::bad_alloc();
  int64_t Live = GLiveBytes.fetch_add(::malloc_usable_size(P),
                                      std::memory_order_relaxed) +
                 static_cast<int64_t>(::malloc_usable_size(P));
  if (GTrackPeak.load(std::memory_order_relaxed)) {
    int64_t Peak = GPeakBytes.load(std::memory_order_relaxed);
    while (Live > Peak &&
           !GPeakBytes.compare_exchange_weak(Peak, Live,
                                             std::memory_order_relaxed))
      ;
  }
  return P;
}

void *operator new[](size_t Size) { return operator new(Size); }

void operator delete(void *P) noexcept {
  if (!P)
    return;
  GLiveBytes.fetch_sub(::malloc_usable_size(P), std::memory_order_relaxed);
  std::free(P);
}

void operator delete(void *P, size_t) noexcept { operator delete(P); }
void operator delete[](void *P) noexcept { operator delete(P); }
void operator delete[](void *P, size_t) noexcept { operator delete(P); }

namespace {

std::string tempPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-bptest-" + Tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

void removeChain(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 256; ++I)
    std::remove(logSegmentPath(Base, I).c_str());
}

void spinFor(std::chrono::nanoseconds D) {
  auto Until = std::chrono::steady_clock::now() + D;
  while (std::chrono::steady_clock::now() < Until)
    ;
}

/// Integer register: Set(x) -> true mutates, Get() -> x observes. An
/// optional per-spec-step busy-wait throttles the checker so producers
/// outrun it and the bounded queues actually fill.
class ThrottledRegisterSpec : public Spec {
public:
  explicit ThrottledRegisterSpec(unsigned ThrottleUs = 0)
      : SetM(name("bp.Set")), GetM(name("bp.Get")), State(Value(0)),
        ThrottleUs(ThrottleUs) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &) override {
    throttle();
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() ||
        !Ret.asBool())
      return false;
    State = Args[0];
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    throttle();
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override { Out.clear(); }

  Name SetM, GetM;
  Value State;

private:
  void throttle() const {
    if (ThrottleUs)
      spinFor(std::chrono::microseconds(ThrottleUs));
  }
  unsigned ThrottleUs;
};

/// One correct Set(x) execution (3 records) through \p W.
void appendSet(LogWriter &W, const ThrottledRegisterSpec &S, int64_t X,
               ThreadId Tid = 1) {
  W.append(Action::call(Tid, S.SetM, {Value(X)}));
  W.append(Action::commit(Tid));
  W.append(Action::ret(Tid, S.SetM, Value(true)));
}

/// One correct Get() == \p X execution (2 records) through \p W.
void appendGet(LogWriter &W, const ThrottledRegisterSpec &S, int64_t X,
               ThreadId Tid = 1) {
  W.append(Action::call(Tid, S.GetM, {}));
  W.append(Action::ret(Tid, S.GetM, Value(X)));
}

} // namespace

//===----------------------------------------------------------------------===//
// VerifierConfig::validate
//===----------------------------------------------------------------------===//

TEST(BackpressureConfigTest, ValidateAcceptsDefaults) {
  VerifierConfig C;
  EXPECT_EQ(C.validate(), "");
  C.Backpressure.Enabled = true;
  EXPECT_EQ(C.validate(), "") << "BP_Block online is the safe default";
}

TEST(BackpressureConfigTest, ValidateRejectsZeroShardCapacityForAuto) {
  // LB_Auto may resolve to the buffered backend; a zero capacity must be
  // rejected regardless of which way it falls.
  VerifierConfig C;
  C.ShardCapacity = 0;
  EXPECT_NE(C.validate(), "");
  C.Backend = LogBackend::LB_Buffered;
  EXPECT_NE(C.validate(), "");
  C.Backend = LogBackend::LB_Memory;
  EXPECT_EQ(C.validate(), "") << "LB_Memory never consults ShardCapacity";
}

TEST(BackpressureConfigTest, ValidateRejectsZeroPendingBound) {
  VerifierConfig C;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 0;
  EXPECT_NE(C.validate(), "");
  C.Backpressure.Enabled = false;
  EXPECT_EQ(C.validate(), "") << "the bound is ignored while disabled";
}

TEST(BackpressureConfigTest, ValidateRejectsSpillWithoutFileBackedLog) {
  VerifierConfig C;
  C.Backpressure.Enabled = true;
  C.Backpressure.Policy = BackpressurePolicy::BP_SpillToDisk;
  EXPECT_NE(C.validate(), "") << "no LogFilePath: nowhere to spill";
  C.LogFilePath = "/tmp/x.bin";
  EXPECT_EQ(C.validate(), "");
  C.Backend = LogBackend::LB_Memory;
  EXPECT_NE(C.validate(), "")
      << "LB_Memory ignores LogFilePath, so spill has no disk";
  C.Backend = LogBackend::LB_File;
  EXPECT_EQ(C.validate(), "");
}

TEST(BackpressureConfigTest, ValidateRejectsOfflineBlockAndShed) {
  VerifierConfig C;
  C.Online = false;
  C.Backpressure.Enabled = true;
  C.Backpressure.Policy = BackpressurePolicy::BP_Block;
  EXPECT_NE(C.validate(), "")
      << "offline has no concurrent reader: a blocked producer deadlocks";
  C.Backpressure.Policy = BackpressurePolicy::BP_Shed;
  EXPECT_NE(C.validate(), "");
  C.Backpressure.Policy = BackpressurePolicy::BP_SpillToDisk;
  C.LogFilePath = "/tmp/x.bin";
  C.Backend = LogBackend::LB_File;
  EXPECT_EQ(C.validate(), "")
      << "offline spill is fine: producers never block on it";
}

//===----------------------------------------------------------------------===//
// Backend-level policy behavior
//===----------------------------------------------------------------------===//

TEST(MemoryLogBackpressureTest, BlockBoundsTheQueue) {
  BackpressureConfig BP;
  BP.Enabled = true;
  BP.MaxPendingRecords = 4;
  MemoryLog L(BP);
  constexpr int N = 300;
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      L.append(Action::commit(1));
    L.close();
  });
  // A deliberately slow reader, so the producer hits the bound.
  Action A;
  uint64_t Expected = 0;
  while (L.next(A)) {
    EXPECT_EQ(A.Seq, Expected++);
    if (Expected % 16 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Producer.join();
  EXPECT_EQ(Expected, static_cast<uint64_t>(N));
  BackpressureStats S = L.backpressureStats();
  EXPECT_LE(S.PendingRecordsHwm, BP.MaxPendingRecords);
  EXPECT_GT(S.BlockedAppends, 0u);
  EXPECT_GT(S.BlockedNanos, 0u);
}

TEST(MemoryLogBackpressureTest, ByteCeilingAloneTriggersThePolicy) {
  BackpressureConfig BP;
  BP.Enabled = true;
  BP.MaxPendingRecords = 1 << 20; // effectively unbounded record count
  BP.MaxTailBytes = 4096;
  MemoryLog L(BP);
  Name M = internName("bp.bytes");
  std::string Fat(256, 'x'); // heap payload per record
  constexpr int N = 400;
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      L.append(Action::call(1, M, {Value(Fat)}));
    L.close();
  });
  Action A;
  int Read = 0;
  while (L.next(A)) {
    ++Read;
    if (Read % 8 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Producer.join();
  EXPECT_EQ(Read, N);
  BackpressureStats S = L.backpressureStats();
  EXPECT_GT(S.BlockedAppends, 0u) << "the byte ceiling must have engaged";
  EXPECT_LE(S.TailBytesHwm, BP.MaxTailBytes + actionFootprintBytes(
                                Action::call(1, M, {Value(Fat)})))
      << "occupancy may overshoot by at most the admitted record";
}

TEST(MemoryLogBackpressureTest, ShedDropsWholeObserverExecutions) {
  BackpressureConfig BP;
  BP.Enabled = true;
  BP.MaxPendingRecords = 2;
  BP.Policy = BackpressurePolicy::BP_Shed;
  MemoryLog L(BP);
  Name Obs = internName("bp.obs");
  Name Mut = internName("bp.mut");
  L.setShedClassifier(
      [Obs](const Action &A) { return A.Method == Obs; });
  // No reader: the queue fills and stays over its bound.
  L.append(Action::call(1, Obs, {}));           // seq 0, under limit
  L.append(Action::ret(1, Obs, Value(1)));      // seq 1
  L.append(Action::call(1, Mut, {Value(2)}));   // seq 2: never shed
  L.append(Action::commit(1));                  // seq 3
  L.append(Action::ret(1, Mut, Value(true)));   // seq 4
  L.append(Action::call(1, Obs, {}));           // seq 5: over limit, shed
  L.append(Action::ret(1, Obs, Value(2)));      // seq 6: same window, shed
  L.append(Action::commit(1));                  // seq 7: commit, never shed
  L.close();
  EXPECT_EQ(L.appendCount(), 8u) << "shed records still consume seqs";
  std::vector<uint64_t> Seqs;
  Action A;
  while (L.next(A))
    Seqs.push_back(A.Seq);
  EXPECT_EQ(Seqs, (std::vector<uint64_t>{0, 1, 2, 3, 4, 7}));
  BackpressureStats S = L.backpressureStats();
  EXPECT_EQ(S.ShedRecords, 2u) << "exact accounting of the shed window";
}

TEST(FileLogBackpressureTest, SpillDeliversEverythingInOrder) {
  std::string Path = tempPath("spill");
  removeChain(Path);
  BackpressureConfig BP;
  BP.Enabled = true;
  BP.MaxPendingRecords = 8;
  BP.Policy = BackpressurePolicy::BP_SpillToDisk;
  bool Valid = false;
  FileLog L(Path, Valid, BP);
  ASSERT_TRUE(Valid);
  Name M = internName("bp.fspill");
  constexpr int N = 500;
  // No reader while appending: everything past the bound is disk-only.
  for (int I = 0; I < N; ++I)
    L.append(Action::call(1, M, {Value(static_cast<int64_t>(I))}));
  L.close();
  Action A;
  uint64_t Expected = 0;
  while (L.next(A)) {
    ASSERT_EQ(A.Seq, Expected) << "spill fill-in must preserve order";
    EXPECT_EQ(A.Args[0].asInt(), static_cast<int64_t>(Expected));
    ++Expected;
  }
  EXPECT_EQ(Expected, static_cast<uint64_t>(N));
  BackpressureStats S = L.backpressureStats();
  EXPECT_LE(S.PendingRecordsHwm, BP.MaxPendingRecords);
  EXPECT_GT(S.SpilledRecords, 0u);
  EXPECT_EQ(S.BlockedAppends, 0u) << "spill never blocks producers";
  removeChain(Path);
}

TEST(FileLogBackpressureTest, SpillWorksWithConcurrentReaderAndSegments) {
  std::string Path = tempPath("spillseg");
  removeChain(Path);
  BackpressureConfig BP;
  BP.Enabled = true;
  BP.MaxPendingRecords = 16;
  BP.Policy = BackpressurePolicy::BP_SpillToDisk;
  BP.SegmentBytes = 2048;
  bool Valid = false;
  FileLog L(Path, Valid, BP);
  ASSERT_TRUE(Valid);
  Name M = internName("bp.cspill");
  constexpr int N = 2000;
  std::thread Producer([&] {
    for (int I = 0; I < N; ++I)
      L.append(Action::call(1, M, {Value(static_cast<int64_t>(I))}));
    L.close();
  });
  Action A;
  uint64_t Expected = 0;
  while (L.next(A)) {
    ASSERT_EQ(A.Seq, Expected);
    ++Expected;
    if (Expected % 64 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  Producer.join();
  EXPECT_EQ(Expected, static_cast<uint64_t>(N));
  BackpressureStats S = L.backpressureStats();
  EXPECT_LE(S.PendingRecordsHwm, BP.MaxPendingRecords);
  EXPECT_GT(S.SegmentsCreated, 1u);
  removeChain(Path);
}

TEST(BufferedLogBackpressureTest, BlockParksFlusherAndPropagates) {
  BufferedLog::Options O;
  O.ShardCapacity = 64;
  O.Backpressure.Enabled = true;
  O.Backpressure.MaxPendingRecords = 32;
  BufferedLog L(O);
  ASSERT_TRUE(L.valid());
  constexpr int N = 4000;
  std::thread Producer([&] {
    LogWriter &W = L.writer();
    for (int I = 0; I < N; ++I)
      W.append(Action::commit(1));
  });
  Action A;
  uint64_t Expected = 0;
  bool Closed = false;
  while (true) {
    if (!Closed && Expected % 128 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    if (!L.next(A)) {
      if (Closed)
        break;
      continue;
    }
    ASSERT_EQ(A.Seq, Expected);
    ++Expected;
    if (Expected == N && !Closed) {
      Producer.join();
      L.close();
      Closed = true;
    }
  }
  if (!Closed) {
    Producer.join();
    L.close();
  }
  EXPECT_EQ(Expected, static_cast<uint64_t>(N));
  BackpressureStats S = L.backpressureStats();
  EXPECT_LE(S.PendingRecordsHwm, O.Backpressure.MaxPendingRecords);
}

//===----------------------------------------------------------------------===//
// End-to-end through a Verifier with a throttled checker
//===----------------------------------------------------------------------===//

namespace {

/// Appends \p Execs correct executions (one Set + one Get each, 5
/// records) through \p V's log, then finishes.
VerifierReport runThrottled(VerifierConfig C, unsigned ThrottleUs,
                            int Execs, bool SeedViolation = false) {
  auto SpecPtr = std::make_unique<ThrottledRegisterSpec>(ThrottleUs);
  ThrottledRegisterSpec Script; // same method names, for the producer
  Verifier V(std::move(SpecPtr), nullptr, std::move(C));
  V.start();
  LogWriter &W = V.log().writer();
  for (int I = 0; I < Execs; ++I) {
    appendSet(W, Script, I);
    appendGet(W, Script, I);
  }
  if (SeedViolation) {
    // A mutator the spec cannot execute: Set that "returns" false.
    W.append(Action::call(1, Script.SetM, {Value(-1)}));
    W.append(Action::commit(1));
    W.append(Action::ret(1, Script.SetM, Value(false)));
  }
  return V.finish();
}

} // namespace

TEST(VerifierBackpressureTest, BlockKeepsPendingUnderBoundInline) {
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 64;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/1, /*Execs=*/3000);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 6000u);
  EXPECT_LE(R.Backpressure.PendingRecordsHwm, 64u);
  EXPECT_GT(R.Backpressure.BlockedAppends, 0u)
      << "a 1us/step checker must fall behind a tight producer loop";
  EXPECT_TRUE(jsonValid(R.json())) << R.json();
}

TEST(VerifierBackpressureTest, BlockBoundsThePoolToo) {
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.CheckerThreads = 2;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 64;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/1, /*Execs=*/3000);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 6000u);
  // Pool admission slices batches at the free room, so the bound holds
  // exactly (it used to be batch-granular, overshooting by up to one
  // pump batch).
  EXPECT_LE(R.Backpressure.PendingRecordsHwm, 64u);
}

TEST(VerifierBackpressureTest, ShedReportsExactCountsAndKeepsViolations) {
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 16;
  C.Backpressure.Policy = BackpressurePolicy::BP_Shed;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/2, /*Execs=*/3000,
                                  /*SeedViolation=*/true);
  ASSERT_EQ(R.Violations.size(), 1u)
      << "the seeded mutator violation must survive shedding: " << R.str();
  EXPECT_EQ(R.Violations[0].Kind, ViolationKind::VK_MutatorMismatch);
  EXPECT_GT(R.Backpressure.ShedRecords, 0u);
  EXPECT_EQ(R.Backpressure.ShedRecords % 2, 0u)
      << "observer executions are two records; sheds come in whole "
         "windows";
  ASSERT_EQ(R.Notes.size(), 1u);
  EXPECT_NE(R.Notes[0].find("degraded"), std::string::npos) << R.Notes[0];
  EXPECT_NE(R.str().find("note: degraded"), std::string::npos);
  EXPECT_TRUE(jsonValid(R.json())) << R.json();
  EXPECT_NE(R.json().find("\"notes\""), std::string::npos);
  // MethodsChecked + shed windows account for every appended execution.
  uint64_t ShedExecs = R.Backpressure.ShedRecords / 2;
  EXPECT_EQ(R.Stats.MethodsChecked + ShedExecs, 6001u);
}

TEST(VerifierBackpressureTest, SpillWithSegmentsReclaimsCheckedPrefix) {
  std::string Path = tempPath("e2espill");
  removeChain(Path);
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.LogFilePath = Path;
  C.Backend = LogBackend::LB_File;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 32;
  C.Backpressure.Policy = BackpressurePolicy::BP_SpillToDisk;
  C.Backpressure.SegmentBytes = 4096;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/0, /*Execs=*/4000);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 8000u);
  EXPECT_LE(R.Backpressure.PendingRecordsHwm, 32u);
  EXPECT_GT(R.Backpressure.SegmentsCreated, 2u);
  EXPECT_LE(R.Backpressure.SegmentsCreated - R.Backpressure.SegmentsReclaimed,
            2u)
      << "a fully checked run keeps at most the active segment (plus one "
         "rotation in flight)";
  removeChain(Path);
}

TEST(VerifierBackpressureTest, VerdictsMatchTheUnboundedRun) {
  // Same workload, bounded (block) vs historical unbounded: identical
  // check coverage and verdicts.
  VerifierConfig Unbounded;
  Unbounded.Checker.Mode = CheckMode::CM_IORefinement;
  VerifierReport A = runThrottled(Unbounded, /*ThrottleUs=*/0,
                                  /*Execs=*/2000);
  VerifierConfig Bounded;
  Bounded.Checker.Mode = CheckMode::CM_IORefinement;
  Bounded.Backpressure.Enabled = true;
  Bounded.Backpressure.MaxPendingRecords = 32;
  VerifierReport B = runThrottled(Bounded, /*ThrottleUs=*/0,
                                  /*Execs=*/2000);
  EXPECT_EQ(A.ok(), B.ok());
  EXPECT_EQ(A.Stats.MethodsChecked, B.Stats.MethodsChecked);
  EXPECT_EQ(A.Stats.CommitsProcessed, B.Stats.CommitsProcessed);
  EXPECT_EQ(A.Stats.ObserversChecked, B.Stats.ObserversChecked);
  EXPECT_EQ(A.LogRecords, B.LogRecords);
}

//===----------------------------------------------------------------------===//
// The memory bound itself
//===----------------------------------------------------------------------===//

namespace {

/// Peak live-heap delta while running \p Body.
int64_t peakHeapDelta(const std::function<void()> &Body) {
  int64_t Before = GLiveBytes.load(std::memory_order_relaxed);
  GPeakBytes.store(Before, std::memory_order_relaxed);
  GTrackPeak.store(true, std::memory_order_relaxed);
  Body();
  GTrackPeak.store(false, std::memory_order_relaxed);
  return GPeakBytes.load(std::memory_order_relaxed) - Before;
}

/// A producer/slow-reader round through one MemoryLog: N records with a
/// heap payload each. Under a 256-record bound the queue pins ~tens of
/// KB; unbounded it would pin N * ~200 bytes (tens of MB).
void pumpRecords(const BackpressureConfig &BP, int N) {
  MemoryLog L(BP);
  Name Obs = internName("bp.rss.obs");
  if (BP.Policy == BackpressurePolicy::BP_Shed)
    L.setShedClassifier(
        [Obs](const Action &A) { return A.Method == Obs; });
  std::string Payload(48, 'p'); // defeats small-string storage
  std::thread Producer([&] {
    for (int I = 0; I < N; I += 2) {
      L.append(Action::call(1, Obs, {Value(Payload)}));
      L.append(Action::ret(1, Obs, Value(7)));
    }
    L.close();
  });
  Action A;
  int Read = 0;
  while (L.next(A)) {
    ++Read;
    if (Read % 256 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  Producer.join();
}

} // namespace

TEST(BackpressureHeapTest, PeakHeapStaysBoundedUnderEveryPolicy) {
  constexpr int N = 200000; // ~40 MB if the queue were unbounded
  constexpr int64_t Budget = 8 << 20;
  for (BackpressurePolicy P :
       {BackpressurePolicy::BP_Block, BackpressurePolicy::BP_Shed}) {
    BackpressureConfig BP;
    BP.Enabled = true;
    BP.MaxPendingRecords = 256;
    BP.Policy = P;
    int64_t Peak = peakHeapDelta([&] { pumpRecords(BP, N); });
    EXPECT_LT(Peak, Budget)
        << backpressurePolicyName(P)
        << ": peak live heap must stay orders of magnitude under the "
           "~40 MB an unbounded queue would pin";
  }
  // Spill needs a file-backed log; same bound, same assertion.
  std::string Path = tempPath("rss");
  removeChain(Path);
  int64_t Peak = peakHeapDelta([&] {
    BackpressureConfig BP;
    BP.Enabled = true;
    BP.MaxPendingRecords = 256;
    BP.Policy = BackpressurePolicy::BP_SpillToDisk;
    bool Valid = false;
    FileLog L(Path, Valid, BP);
    ASSERT_TRUE(Valid);
    Name M = internName("bp.rss.spill");
    std::string Payload(48, 'p');
    std::thread Producer([&] {
      for (int I = 0; I < N; ++I)
        L.append(Action::call(1, M, {Value(Payload)}));
      L.close();
    });
    Action A;
    int Read = 0;
    while (L.next(A))
      ++Read;
    Producer.join();
    EXPECT_EQ(Read, N);
  });
  EXPECT_LT(Peak, Budget) << "spill: bounded tail, disk absorbs the rest";
  removeChain(Path);
}
