//===- BstTest.cpp - Tests for the BST multiset ----------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bst/BstMultiset.h"
#include "bst/BstReplayer.h"
#include "bst/BstSpec.h"
#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::bst;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// Sequential semantics
//===----------------------------------------------------------------------===//

TEST(BstMultisetTest, InsertLookupDelete) {
  BstMultiset B({}, Hooks());
  EXPECT_FALSE(B.lookUp(10));
  EXPECT_TRUE(B.insert(10));
  EXPECT_TRUE(B.lookUp(10));
  EXPECT_TRUE(B.remove(10));
  EXPECT_FALSE(B.lookUp(10));
  EXPECT_FALSE(B.remove(10));
}

TEST(BstMultisetTest, DuplicatesCounted) {
  BstMultiset B({}, Hooks());
  EXPECT_TRUE(B.insert(5));
  EXPECT_TRUE(B.insert(5));
  EXPECT_TRUE(B.remove(5));
  EXPECT_TRUE(B.lookUp(5));
  EXPECT_TRUE(B.remove(5));
  EXPECT_FALSE(B.lookUp(5));
}

TEST(BstMultisetTest, ManyKeysBothSides) {
  BstMultiset B({}, Hooks());
  for (int I = -50; I <= 50; ++I)
    EXPECT_TRUE(B.insert(I * 7 % 101));
  for (int I = -50; I <= 50; ++I)
    EXPECT_TRUE(B.lookUp(I * 7 % 101));
}

TEST(BstMultisetTest, CompressSplicesEmptyNodes) {
  BstMultiset B({}, Hooks());
  B.insert(10);
  B.insert(5);
  B.insert(15);
  B.remove(5);
  // One compress call splices the empty leaf 5.
  EXPECT_TRUE(B.compress());
  EXPECT_TRUE(B.lookUp(10));
  EXPECT_TRUE(B.lookUp(15));
  EXPECT_FALSE(B.lookUp(5));
}

TEST(BstMultisetTest, CompressWithNoCandidatesReturnsFalse) {
  BstMultiset B({}, Hooks());
  B.insert(10);
  EXPECT_FALSE(B.compress());
}

TEST(BstMultisetTest, CompressSplicesNodeWithOneChild) {
  BstMultiset B({}, Hooks());
  B.insert(10);
  B.insert(5);
  B.insert(3); // 5 has one child (3)
  B.remove(5);
  EXPECT_TRUE(B.compress());
  EXPECT_TRUE(B.lookUp(3)) << "subtree survives the splice";
  EXPECT_TRUE(B.lookUp(10));
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(BstSpecTest, CompressIsIdentity) {
  BstSpec S;
  BstVocab V = BstVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Insert, {Value(1)}, Value(true), ViewS));
  auto D = ViewS.digest();
  EXPECT_TRUE(S.applyMutator(V.Compress, {}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Compress, {}, Value(false), ViewS));
  EXPECT_EQ(ViewS.digest(), D);
}

TEST(BstSpecTest, DeleteSemantics) {
  BstSpec S;
  BstVocab V = BstVocab::get();
  View ViewS;
  EXPECT_FALSE(S.applyMutator(V.Delete, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Delete, {Value(1)}, Value(false), ViewS));
  S.applyMutator(V.Insert, {Value(1)}, Value(true), ViewS);
  EXPECT_TRUE(S.applyMutator(V.Delete, {Value(1)}, Value(true), ViewS));
  EXPECT_EQ(S.count(1), 0u);
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

namespace {

Action nodeOp(uint64_t Id, int64_t Key) {
  return Action::replayOp(0, BstVocab::get().OpNode,
                          {Value(static_cast<int64_t>(Id)), Value(Key)});
}
Action linkOp(uint64_t P, int Dir, uint64_t C) {
  return Action::replayOp(0, BstVocab::get().OpLink,
                          {Value(static_cast<int64_t>(P)), Value(Dir),
                           C ? Value(static_cast<int64_t>(C)) : Value()});
}
Action countOp(uint64_t Id, int64_t N) {
  return Action::replayOp(0, BstVocab::get().OpCount,
                          {Value(static_cast<int64_t>(Id)), Value(N)});
}

} // namespace

TEST(BstReplayerTest, LinkedNodeContributesToView) {
  BstReplayer R;
  View ViewI;
  R.applyUpdate(nodeOp(2, 42), ViewI);
  EXPECT_TRUE(ViewI.empty()) << "unlinked node invisible";
  R.applyUpdate(linkOp(1, 1, 2), ViewI);
  R.applyUpdate(countOp(2, 1), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(42)), 1u);
}

TEST(BstReplayerTest, OverwrittenLinkDetachesSubtree) {
  BstReplayer R;
  View ViewI;
  R.applyUpdate(nodeOp(2, 10), ViewI);
  R.applyUpdate(linkOp(1, 1, 2), ViewI);
  R.applyUpdate(countOp(2, 1), ViewI);
  R.applyUpdate(nodeOp(3, 20), ViewI);
  R.applyUpdate(linkOp(2, 1, 3), ViewI); // 20 under 10
  R.applyUpdate(countOp(3, 1), ViewI);
  EXPECT_EQ(ViewI.size(), 2u);
  // Lost-update overwrite: the root link now points to a fresh node 4.
  R.applyUpdate(nodeOp(4, 30), ViewI);
  R.applyUpdate(linkOp(1, 1, 4), ViewI);
  R.applyUpdate(countOp(4, 1), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(10)), 0u) << "subtree detached";
  EXPECT_EQ(ViewI.countKey(Value(20)), 0u);
  EXPECT_EQ(ViewI.countKey(Value(30)), 1u);
}

TEST(BstReplayerTest, CountChangesAdjustMultiplicity) {
  BstReplayer R;
  View ViewI;
  R.applyUpdate(nodeOp(2, 7), ViewI);
  R.applyUpdate(linkOp(1, 1, 2), ViewI);
  R.applyUpdate(countOp(2, 3), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(7)), 3u);
  R.applyUpdate(countOp(2, 1), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(7)), 1u);
}

TEST(BstReplayerTest, IncrementalMatchesRebuild) {
  BstReplayer R;
  View Inc;
  R.applyUpdate(nodeOp(2, 10), Inc);
  R.applyUpdate(linkOp(1, 1, 2), Inc);
  R.applyUpdate(countOp(2, 2), Inc);
  R.applyUpdate(nodeOp(3, 5), Inc);
  R.applyUpdate(linkOp(2, 0, 3), Inc);
  R.applyUpdate(countOp(3, 1), Inc);
  View Fresh;
  R.buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runBst(bool Buggy, RunMode Mode, unsigned Threads,
                      unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetBst;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 256;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  WO.BackgroundOp = S.BackgroundOp;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(BstVerifiedTest, CorrectConcurrentRunWithCompressionIsClean) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R = runBst(false, RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(BstVerifiedTest, CorrectRunCleanIOMode) {
  VerifierReport R = runBst(false, RunMode::RM_OnlineIO, 8, 300, 11);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(BstVerifiedTest, BuggyInsertCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runBst(true, RunMode::RM_OnlineView, 8, 400, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "lost-update insert bug not detected in 30 seeds";
}

TEST(BstVerifiedTest, BuggyInsertCaughtByIORefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runBst(true, RunMode::RM_OnlineIO, 8, 1500, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
