//===- MonitorTest.cpp - Tests for the live monitor endpoint --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the monitor renderers (every command's output is well-formed),
/// the unix-socket server (request/response framing, watch pacing,
/// malformed requests, abrupt disconnects), and the end-to-end story:
/// several clients attaching and detaching mid-run while four producer
/// threads and a checker pool hammer the verifier. The concurrent cases
/// are part of the TSan suite — attaching a monitor must not introduce
/// a single race into the pipeline.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Monitor.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::test;

namespace {

std::string tempSocketPath(const char *Tag) {
  // Keep it short: sun_path caps around 100 bytes and TempDir can be
  // long, so sockets live directly in /tmp.
  return "/tmp/vyrd-" + std::string(Tag) + "-" +
         std::to_string(::getpid()) + ".sock";
}

/// Minimal blocking client for the monitor socket.
struct MonClient {
  int Fd = -1;
  std::string Buf;

  explicit MonClient(const std::string &Path) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    // The server binds before the constructor returns, but the listen
    // backlog can overflow transiently under the multi-client tests;
    // retry briefly instead of flaking.
    for (int I = 0; I < 100; ++I) {
      Fd = socket(AF_UNIX, SOCK_STREAM, 0);
      if (Fd < 0)
        break;
      if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
        return;
      close(Fd);
      Fd = -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ~MonClient() {
    if (Fd >= 0)
      close(Fd);
  }

  bool send(const std::string &Cmd) {
    std::string Line = Cmd + "\n";
    return write(Fd, Line.data(), Line.size()) ==
           static_cast<ssize_t>(Line.size());
  }

  /// Reads one '\n'-terminated line (blocking). Empty on EOF.
  std::string readLine() {
    for (;;) {
      size_t Pos = Buf.find('\n');
      if (Pos != std::string::npos) {
        std::string Line = Buf.substr(0, Pos);
        Buf.erase(0, Pos + 1);
        return Line;
      }
      char Chunk[4096];
      ssize_t N = read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return "";
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }

  /// Reads lines until the `# EOF` terminator; returns the block.
  std::string readBlock() {
    std::string Out;
    for (;;) {
      std::string Line = readLine();
      if (Line.empty() || Line == "# EOF")
        return Out;
      Out += Line + "\n";
    }
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Renderers
//===----------------------------------------------------------------------===//

TEST(MonitorTest, RenderersProduceValidJson) {
  Telemetry T;
  T.count(Counter::C_HookRecords, 42);
  T.gaugeAdd(Gauge::G_PendingRecords, 3);
  TelemetrySnapshot S = T.snapshot();

  std::vector<Violation> None;
  EXPECT_TRUE(jsonValid(monitor::listJson(S, None)));
  EXPECT_TRUE(jsonValid(monitor::statsJson(S, None, {})));
  EXPECT_TRUE(jsonValid(monitor::violationsJson(None)));
  EXPECT_TRUE(jsonValid(monitor::healthJson(S, None)));

  Violation V;
  V.Kind = ViolationKind::VK_ViewMismatch;
  V.Seq = 7;
  V.Tid = 2;
  V.Method = internName("Insert");
  V.Message = "quotes \"and\" backslash \\ in message";
  std::vector<Violation> Some{V};
  EXPECT_TRUE(jsonValid(monitor::violationsJson(Some)));
  EXPECT_TRUE(jsonValid(monitor::statsJson(S, Some, {"/tmp/x.json"})));
}

TEST(MonitorTest, HealthVerdictPriorities) {
  Telemetry T;
  TelemetrySnapshot S = T.snapshot();
  EXPECT_STREQ(monitor::healthVerdict(S, 0), "ok");
  EXPECT_STREQ(monitor::healthVerdict(S, 1), "violating");
  T.count(Counter::C_ShedRecords, 5);
  S = T.snapshot();
  EXPECT_STREQ(monitor::healthVerdict(S, 0), "degraded");
  // Violations outrank a degraded pipeline.
  EXPECT_STREQ(monitor::healthVerdict(S, 2), "violating");
}

TEST(MonitorTest, PromTextExposesCountersAndGauges) {
  Telemetry T;
  T.count(Counter::C_LogAppends, 11);
  T.gaugeAdd(Gauge::G_PendingRecords, 4);
  T.record(Histo::H_AppendNs, 100);
  std::string P = monitor::promText(T.snapshot(), /*Violations=*/1);
  EXPECT_NE(P.find("vyrd_log_appends_total 11"), std::string::npos) << P;
  EXPECT_NE(P.find("vyrd_pending_records 4"), std::string::npos) << P;
  EXPECT_NE(P.find("vyrd_pending_records_hwm 4"), std::string::npos) << P;
  EXPECT_NE(P.find("vyrd_violations_total 1"), std::string::npos) << P;
  EXPECT_NE(P.find("_bucket{le=\"+Inf\"}"), std::string::npos) << P;
  // Exposition format: every line is a comment or `name[{labels}] value`.
  EXPECT_EQ(P.back(), '\n');
}

//===----------------------------------------------------------------------===//
// Server
//===----------------------------------------------------------------------===//

TEST(MonitorTest, ServerAnswersEveryCommand) {
  Telemetry T;
  T.count(Counter::C_HookRecords, 5);
  TelemetryMonitorSource Src(T);
  MonitorOptions MO;
  MO.SocketPath = tempSocketPath("cmds");
  MonitorServer Server(MO, Src);
  ASSERT_TRUE(Server.valid()) << Server.error();

  MonClient C(MO.SocketPath);
  ASSERT_GE(C.Fd, 0);
  for (const char *Cmd : {"list", "stats", "violations", "health"}) {
    ASSERT_TRUE(C.send(Cmd));
    std::string Line = C.readLine();
    EXPECT_TRUE(jsonValid(Line)) << Cmd << " -> " << Line;
    EXPECT_EQ(Line.find("\"error\""), std::string::npos) << Line;
  }
  ASSERT_TRUE(C.send("prom"));
  std::string Block = C.readBlock();
  EXPECT_NE(Block.find("vyrd_hook_records_total 5"), std::string::npos);
  ASSERT_TRUE(C.send("top"));
  Block = C.readBlock();
  EXPECT_NE(Block.find("vyrd:"), std::string::npos) << Block;

  ASSERT_TRUE(C.send("bogus"));
  std::string Err = C.readLine();
  EXPECT_TRUE(jsonValid(Err)) << Err;
  EXPECT_NE(Err.find("\"error\""), std::string::npos) << Err;

  ASSERT_TRUE(C.send("detach"));
  EXPECT_NE(C.readLine().find("\"ok\""), std::string::npos);
  EXPECT_GE(Server.requestsServed(), 7u);
  Server.stop();
  EXPECT_NE(access(MO.SocketPath.c_str(), F_OK), 0)
      << "stop() must unlink the socket";
}

TEST(MonitorTest, WatchStreamsServerPaced) {
  Telemetry T;
  TelemetryMonitorSource Src(T);
  MonitorOptions MO;
  MO.SocketPath = tempSocketPath("watch");
  MonitorServer Server(MO, Src);
  ASSERT_TRUE(Server.valid()) << Server.error();

  MonClient C(MO.SocketPath);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send("watch 10"));
  for (int I = 0; I < 3; ++I) {
    std::string Line = C.readLine();
    EXPECT_TRUE(jsonValid(Line)) << Line;
    EXPECT_NE(Line.find("\"telemetry\""), std::string::npos) << Line;
  }
}

TEST(MonitorTest, MalformedAndAbruptClientsDoNotWedgeServer) {
  Telemetry T;
  TelemetryMonitorSource Src(T);
  MonitorOptions MO;
  MO.SocketPath = tempSocketPath("abuse");
  MonitorServer Server(MO, Src);
  ASSERT_TRUE(Server.valid()) << Server.error();

  {
    // A "request" larger than the server's line cap, with no newline:
    // the server must drop this client, not buffer forever.
    MonClient Flooder(MO.SocketPath);
    ASSERT_GE(Flooder.Fd, 0);
    std::string Garbage(8192, 'x');
    (void)!write(Flooder.Fd, Garbage.data(), Garbage.size());
    // The server may send one final error line before cutting us off,
    // but the connection must end, not buffer forever.
    std::string Line = Flooder.readLine();
    if (!Line.empty()) {
      EXPECT_NE(Line.find("\"error\""), std::string::npos) << Line;
      Line = Flooder.readLine();
    }
    EXPECT_EQ(Line, "") << "flooder should be disconnected";
  }
  {
    // Abrupt disconnect mid-request (no newline, then close).
    MonClient Rude(MO.SocketPath);
    ASSERT_GE(Rude.Fd, 0);
    (void)!write(Rude.Fd, "sta", 3);
  }
  {
    // Binary garbage and empty lines are answered (or ignored), never
    // crash the thread.
    MonClient Binary(MO.SocketPath);
    ASSERT_GE(Binary.Fd, 0);
    const char Junk[] = "\x01\x02\xff\n\n\x00garbage\n";
    (void)!write(Binary.Fd, Junk, sizeof(Junk) - 1);
    std::string Line = Binary.readLine();
    EXPECT_TRUE(Line.empty() || jsonValid(Line)) << Line;
  }
  // After all the abuse, a well-behaved client still gets served.
  MonClient Polite(MO.SocketPath);
  ASSERT_GE(Polite.Fd, 0);
  ASSERT_TRUE(Polite.send("health"));
  EXPECT_TRUE(jsonValid(Polite.readLine()));
}

TEST(MonitorTest, ServerRefusesUnbindablePath) {
  Telemetry T;
  TelemetryMonitorSource Src(T);
  MonitorOptions MO;
  MO.SocketPath = "/nonexistent-dir/vyrd.sock";
  MonitorServer Server(MO, Src);
  EXPECT_FALSE(Server.valid());
  EXPECT_FALSE(Server.error().empty());
  Server.stop(); // must be safe on an inert server
}

//===----------------------------------------------------------------------===//
// End-to-end through the verifier
//===----------------------------------------------------------------------===//

TEST(MonitorTest, ConfigValidation) {
  VerifierConfig VC;
  VC.Monitor.SocketPath = tempSocketPath("val");
  EXPECT_NE(VC.validate(), "") << "monitor without telemetry must fail";
  VC.Telemetry.Enabled = true;
  EXPECT_EQ(VC.validate(), "");
  VC.Monitor.MaxClients = 0;
  EXPECT_NE(VC.validate(), "");
}

TEST(MonitorTest, MultiClientAttachDetachMidRun) {
  VerifierConfig VC;
  VC.Online = true;
  VC.CheckerThreads = 2;
  VC.Telemetry.Enabled = true;
  VC.Monitor.SocketPath = tempSocketPath("e2e");
  auto V = std::make_unique<Verifier>(
      std::make_unique<multiset::MultisetSpec>(),
      KeyValueReplayer::guardedBag("A"), VC);
  ASSERT_NE(V->monitor(), nullptr);
  ASSERT_TRUE(V->monitor()->valid()) << V->monitor()->error();
  V->start();

  // Four producers hammer the object while monitor clients come and go.
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 64;
  multiset::ArrayMultiset M(MO, V->hooks());
  std::atomic<bool> Stop{false};
  std::vector<std::thread> Producers;
  for (int P = 0; P < 4; ++P)
    Producers.emplace_back([&M, &Stop, P] {
      for (uint64_t I = 0; !Stop.load(std::memory_order_relaxed); ++I) {
        int64_t K = static_cast<int64_t>((I * 4 + P) % 23);
        M.insert(K);
        M.lookUp(K);
        if (I % 3 == 0)
          M.remove(K);
      }
    });

  // Three waves of clients, mixing one-shot commands with short watch
  // streams, all attaching and detaching mid-run.
  for (int Wave = 0; Wave < 3; ++Wave) {
    std::vector<std::thread> Clients;
    for (int I = 0; I < 3; ++I)
      Clients.emplace_back([&VC, I] {
        MonClient C(VC.Monitor.SocketPath);
        ASSERT_GE(C.Fd, 0);
        if (I == 0) {
          ASSERT_TRUE(C.send("watch 5"));
          for (int L = 0; L < 3; ++L)
            EXPECT_TRUE(jsonValid(C.readLine()));
          // ... and vanish without detaching: the server must reap us.
        } else {
          for (const char *Cmd : {"stats", "list", "health"}) {
            ASSERT_TRUE(C.send(Cmd));
            EXPECT_TRUE(jsonValid(C.readLine()));
          }
          C.send("detach");
        }
      });
    for (std::thread &T : Clients)
      T.join();
  }

  Stop.store(true);
  for (std::thread &T : Producers)
    T.join();
  EXPECT_GT(V->monitor()->requestsServed(), 0u);
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(MonitorTest, ListReflectsVerifierObjects) {
  VerifierConfig VC;
  VC.Online = true;
  VC.Telemetry.Enabled = true;
  VC.Monitor.SocketPath = tempSocketPath("list");
  auto V = std::make_unique<Verifier>(VC);
  Hooks H = V->registerObject("multiset",
                              std::make_unique<multiset::MultisetSpec>(),
                              KeyValueReplayer::guardedBag("A"));
  V->start();
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, H);
  for (int I = 0; I < 50; ++I) {
    M.insert(I % 7);
    M.lookUp(I % 7);
  }

  MonClient C(VC.Monitor.SocketPath);
  ASSERT_GE(C.Fd, 0);
  ASSERT_TRUE(C.send("list"));
  std::string Line = C.readLine();
  EXPECT_TRUE(jsonValid(Line)) << Line;
  EXPECT_NE(Line.find("\"multiset\""), std::string::npos) << Line;
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
}
