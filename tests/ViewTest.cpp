//===- ViewTest.cpp - Unit tests for incremental views ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/View.h"

#include <gtest/gtest.h>

using namespace vyrd;

TEST(ViewTest, EmptyViewsAreEqual) {
  View A, B;
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A.deepEquals(B));
  EXPECT_TRUE(A.empty());
}

TEST(ViewTest, AddMakesUnequal) {
  View A, B;
  A.add(Value(1), Value("x"));
  EXPECT_NE(A, B);
  EXPECT_FALSE(A.deepEquals(B));
  EXPECT_EQ(A.size(), 1u);
}

TEST(ViewTest, OrderInsensitiveHash) {
  View A, B;
  for (int I = 0; I < 20; ++I)
    A.add(Value(I), Value(I * 10));
  for (int I = 19; I >= 0; --I)
    B.add(Value(I), Value(I * 10));
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.digest(), B.digest());
  EXPECT_TRUE(A.deepEquals(B));
}

TEST(ViewTest, AddRemoveRestoresDigest) {
  View A;
  A.add(Value(1), Value());
  auto D0 = A.digest();
  A.add(Value(2), Value("y"));
  EXPECT_NE(A.digest(), D0);
  EXPECT_TRUE(A.remove(Value(2), Value("y")));
  EXPECT_EQ(A.digest(), D0);
  EXPECT_EQ(A.size(), 1u);
}

TEST(ViewTest, RemoveAbsentReturnsFalseAndKeepsState) {
  View A;
  A.add(Value(1), Value());
  auto D = A.digest();
  EXPECT_FALSE(A.remove(Value(2), Value()));
  EXPECT_FALSE(A.remove(Value(1), Value("other")));
  EXPECT_EQ(A.digest(), D);
  EXPECT_EQ(A.size(), 1u);
}

TEST(ViewTest, MultiplicityIsTracked) {
  View A, B;
  A.add(Value(5), Value());
  A.add(Value(5), Value());
  B.add(Value(5), Value());
  EXPECT_NE(A, B) << "multiset: {5,5} != {5}";
  EXPECT_EQ(A.count(Value(5), Value()), 2u);
  B.add(Value(5), Value());
  EXPECT_EQ(A, B);
}

TEST(ViewTest, CountKeySumsAcrossValues) {
  View A;
  A.add(Value(1), Value("a"));
  A.add(Value(1), Value("b"));
  A.add(Value(1), Value("b"));
  A.add(Value(2), Value("c"));
  EXPECT_EQ(A.countKey(Value(1)), 3u);
  EXPECT_EQ(A.countKey(Value(2)), 1u);
  EXPECT_EQ(A.countKey(Value(3)), 0u);
}

TEST(ViewTest, RemoveKeyDropsAllEntriesForKey) {
  View A;
  A.add(Value(1), Value("a"));
  A.add(Value(1), Value("b"));
  A.add(Value(2), Value("c"));
  EXPECT_EQ(A.removeKey(Value(1)), 2u);
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(A.countKey(Value(1)), 0u);
  View B;
  B.add(Value(2), Value("c"));
  EXPECT_TRUE(A.deepEquals(B));
  EXPECT_EQ(A, B) << "digest must follow removeKey";
}

TEST(ViewTest, ClearResetsToEmpty) {
  View A, Empty;
  for (int I = 0; I < 10; ++I)
    A.add(Value(I), Value());
  A.clear();
  EXPECT_EQ(A, Empty);
  EXPECT_TRUE(A.deepEquals(Empty));
}

TEST(ViewTest, DigestMatchesFreshlyBuiltEquivalent) {
  // Incremental mutations must land exactly where a from-scratch build
  // lands (the audit relies on this).
  View Inc;
  for (int I = 0; I < 50; ++I)
    Inc.add(Value(I % 7), Value(I % 3));
  for (int I = 0; I < 25; ++I)
    EXPECT_TRUE(Inc.remove(Value(I % 7), Value(I % 3)));

  View Fresh;
  // Replay the same net content.
  for (const auto &[E, C] : Inc.entries())
    for (size_t I = 0; I < C; ++I)
      Fresh.add(E.Key, E.Val);
  EXPECT_EQ(Inc, Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh));
}

TEST(ViewTest, DiffReportsBothSides) {
  View L, R;
  L.add(Value(1), Value("only-in-l"));
  R.add(Value(2), Value("only-in-r"));
  L.add(Value(3), Value("shared"));
  R.add(Value(3), Value("shared"));
  std::string D = View::diff(L, R);
  EXPECT_NE(D.find("only-left(1)"), std::string::npos) << D;
  EXPECT_NE(D.find("only-right(1)"), std::string::npos) << D;
  EXPECT_EQ(D.find("shared"), std::string::npos) << D;
}

TEST(ViewTest, DiffOfEqualViewsSaysIdentical) {
  View L, R;
  L.add(Value(1), Value());
  R.add(Value(1), Value());
  EXPECT_EQ(View::diff(L, R), "views identical");
}

TEST(ViewTest, DiffCountsMultiplicityDifferences) {
  View L, R;
  L.add(Value(1), Value());
  L.add(Value(1), Value());
  R.add(Value(1), Value());
  std::string D = View::diff(L, R);
  EXPECT_NE(D.find("only-left"), std::string::npos) << D;
  EXPECT_NE(D.find("only-right"), std::string::npos) << D;
}

TEST(ViewTest, StrShowsEntriesAndSize) {
  View A;
  A.add(Value(7), Value("v"));
  std::string S = A.str();
  EXPECT_NE(S.find("7->"), std::string::npos) << S;
  EXPECT_NE(S.find("(1 entries)"), std::string::npos) << S;
}

TEST(ViewTest, HashSecondAccumulatorCatchesSwaps) {
  // Two different multisets engineered to have the same size; the double
  // accumulator must still distinguish them.
  View A, B;
  A.add(Value(1), Value(2));
  A.add(Value(3), Value(4));
  B.add(Value(1), Value(4));
  B.add(Value(3), Value(2));
  EXPECT_NE(A, B);
}
