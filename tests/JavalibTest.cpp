//===- JavalibTest.cpp - Tests for the Vector/StringBuffer models ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "javalib/StringBufferSpec.h"
#include "javalib/StringBufferSystem.h"
#include "javalib/SyncVector.h"
#include "javalib/VectorSpec.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::javalib;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// SyncVector sequential semantics
//===----------------------------------------------------------------------===//

TEST(SyncVectorTest, AddGetSize) {
  SyncVector V({}, Hooks());
  EXPECT_EQ(V.size(), 0);
  V.add(10);
  V.add(20);
  EXPECT_EQ(V.size(), 2);
  EXPECT_EQ(V.get(0), Value(10));
  EXPECT_EQ(V.get(1), Value(20));
  EXPECT_TRUE(V.get(2).isNull());
  EXPECT_TRUE(V.get(-1).isNull());
}

TEST(SyncVectorTest, RemoveLastReturnsValueOrNull) {
  SyncVector V({}, Hooks());
  EXPECT_TRUE(V.removeLast().isNull());
  V.add(1);
  V.add(2);
  EXPECT_EQ(V.removeLast(), Value(2));
  EXPECT_EQ(V.removeLast(), Value(1));
  EXPECT_TRUE(V.removeLast().isNull());
}

TEST(SyncVectorTest, LastIndexOfFindsLastOccurrence) {
  SyncVector V({}, Hooks());
  V.add(5);
  V.add(6);
  V.add(5);
  EXPECT_EQ(V.lastIndexOf(5), 2);
  EXPECT_EQ(V.lastIndexOf(6), 1);
  EXPECT_EQ(V.lastIndexOf(7), -1);
}

TEST(SyncVectorTest, BuggyLastIndexOfIsSequentiallyCorrect) {
  SyncVector::Options O;
  O.BuggyLastIndexOf = true;
  SyncVector V(O, Hooks());
  V.add(5);
  V.add(6);
  EXPECT_EQ(V.lastIndexOf(5), 0) << "the bug needs concurrency to fire";
}

//===----------------------------------------------------------------------===//
// VectorSpec / VectorReplayer
//===----------------------------------------------------------------------===//

TEST(VectorSpecTest, RemoveLastRequiresMatchingValue) {
  VectorSpec S;
  VectorVocab V = VectorVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Add, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Add, {Value(2)}, Value(true), ViewS));
  EXPECT_FALSE(S.applyMutator(V.RemoveLast, {}, Value(1), ViewS))
      << "2 is at the back";
  EXPECT_TRUE(S.applyMutator(V.RemoveLast, {}, Value(2), ViewS));
  EXPECT_TRUE(S.applyMutator(V.RemoveLast, {}, Value(1), ViewS));
  EXPECT_TRUE(S.applyMutator(V.RemoveLast, {}, Value(), ViewS))
      << "empty pop returns null";
}

TEST(VectorSpecTest, IndexErrorNeverAllowed) {
  VectorSpec S;
  VectorVocab V = VectorVocab::get();
  EXPECT_FALSE(
      S.returnAllowed(V.LastIndexOf, {Value(9)}, Value(IndexError)));
  EXPECT_TRUE(S.returnAllowed(V.LastIndexOf, {Value(9)}, Value(-1)));
}

TEST(VectorSpecTest, GetAndSizeObservers) {
  VectorSpec S;
  VectorVocab V = VectorVocab::get();
  View ViewS;
  S.applyMutator(V.Add, {Value(4)}, Value(true), ViewS);
  EXPECT_TRUE(S.returnAllowed(V.Get, {Value(0)}, Value(4)));
  EXPECT_FALSE(S.returnAllowed(V.Get, {Value(0)}, Value(5)));
  EXPECT_TRUE(S.returnAllowed(V.Get, {Value(3)}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.Size, {}, Value(1)));
  EXPECT_FALSE(S.returnAllowed(V.Size, {}, Value(2)));
}

TEST(VectorReplayerTest, LenWritesMoveEntriesInAndOut) {
  auto R = KeyValueReplayer::prefixVec("vec");
  View ViewI;
  R->applyUpdate(Action::write(0, VectorVocab::elemName(0), Value(10)),
                 ViewI);
  EXPECT_TRUE(ViewI.empty()) << "slot beyond logical length";
  R->applyUpdate(Action::write(0, VectorVocab::lenName(), Value(1)), ViewI);
  EXPECT_EQ(ViewI.count(Value(0), Value(10)), 1u);
  R->applyUpdate(Action::write(0, VectorVocab::lenName(), Value(0)), ViewI);
  EXPECT_TRUE(ViewI.empty());
}

TEST(VectorReplayerTest, IncrementalMatchesRebuild) {
  auto R = KeyValueReplayer::prefixVec("vec");
  View Inc;
  for (int I = 0; I < 6; ++I) {
    R->applyUpdate(
        Action::write(0, VectorVocab::elemName(I), Value(I * 3)), Inc);
    R->applyUpdate(Action::write(0, VectorVocab::lenName(), Value(I + 1)),
                   Inc);
  }
  R->applyUpdate(Action::write(0, VectorVocab::lenName(), Value(4)), Inc);
  View Fresh;
  R->buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

//===----------------------------------------------------------------------===//
// StringBufferSystem sequential semantics
//===----------------------------------------------------------------------===//

TEST(StringBufferTest, AppendAndToString) {
  StringBufferSystem SB({}, Hooks());
  SB.append(0, "foo");
  SB.append(0, "bar");
  EXPECT_EQ(SB.toString(0), "foobar");
  EXPECT_EQ(SB.length(0), 6);
  EXPECT_EQ(SB.toString(1), "");
}

TEST(StringBufferTest, AppendBufferCopiesContents) {
  StringBufferSystem SB({}, Hooks());
  SB.append(0, "abc");
  SB.append(1, "XY");
  SB.appendBuffer(0, 1);
  EXPECT_EQ(SB.toString(0), "abcXY");
  EXPECT_EQ(SB.toString(1), "XY") << "source unchanged";
}

TEST(StringBufferTest, SetLengthTruncatesOnly) {
  StringBufferSystem SB({}, Hooks());
  SB.append(0, "abcdef");
  SB.setLength(0, 3);
  EXPECT_EQ(SB.toString(0), "abc");
  SB.setLength(0, 10); // no-op growth
  EXPECT_EQ(SB.toString(0), "abc");
}

TEST(StringBufferTest, BuggyAppendBufferSequentiallyCorrect) {
  StringBufferSystem::Options O;
  O.BuggyAppendBuffer = true;
  StringBufferSystem SB(O, Hooks());
  SB.append(1, "xyz");
  SB.appendBuffer(0, 1);
  EXPECT_EQ(SB.toString(0), "xyz") << "the bug needs concurrency to fire";
}

//===----------------------------------------------------------------------===//
// StringBufferSpec / replayer
//===----------------------------------------------------------------------===//

TEST(StringBufferSpecTest, AppendBufferUsesAbstractSource) {
  StringBufferSpec S(2);
  SbVocab V = SbVocab::get();
  View ViewS;
  S.buildView(ViewS); // initial entries
  EXPECT_TRUE(S.applyMutator(V.Append, {Value(1), Value("src")},
                             Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.AppendBuffer, {Value(0), Value(1)},
                             Value(true), ViewS));
  EXPECT_EQ(S.contents(0), "src");
  EXPECT_TRUE(S.returnAllowed(V.ToString, {Value(0)}, Value("src")));
  EXPECT_FALSE(S.returnAllowed(V.ToString, {Value(0)}, Value("sr?")));
}

TEST(StringBufferSpecTest, LengthObserver) {
  StringBufferSpec S(1);
  SbVocab V = SbVocab::get();
  View ViewS;
  S.buildView(ViewS);
  S.applyMutator(V.Append, {Value(0), Value("abcd")}, Value(true), ViewS);
  EXPECT_TRUE(S.returnAllowed(V.Length, {Value(0)}, Value(4)));
  EXPECT_FALSE(S.returnAllowed(V.Length, {Value(0)}, Value(3)));
}

TEST(StringBufferReplayerTest, TornAppendDivergesFromSpec) {
  // The replay record carries the actually-appended (torn) bytes; the
  // shadow then differs from what the spec computes.
  StringBufferReplayer R(2);
  StringBufferSpec S(2);
  SbVocab V = SbVocab::get();
  View ViewI, ViewS;
  R.buildView(ViewI);
  S.buildView(ViewS);
  ASSERT_TRUE(ViewI.deepEquals(ViewS));

  R.applyUpdate(Action::replayOp(0, V.OpAppend, {Value(1), Value("src")}),
                ViewI);
  S.applyMutator(V.Append, {Value(1), Value("src")}, Value(true), ViewS);
  EXPECT_TRUE(ViewI.deepEquals(ViewS));

  // appendBuffer(0, 1): the implementation actually appended "sr?".
  R.applyUpdate(Action::replayOp(0, V.OpAppend, {Value(0), Value("sr?")}),
                ViewI);
  S.applyMutator(V.AppendBuffer, {Value(0), Value(1)}, Value(true), ViewS);
  EXPECT_FALSE(ViewI.deepEquals(ViewS)) << "torn copy must diverge";
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runJava(Program P, bool Buggy, RunMode Mode,
                       unsigned Threads, unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = P;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 256;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(VectorVerifiedTest, CorrectRunsClean) {
  for (uint64_t Seed : {1, 2}) {
    VerifierReport R = runJava(Program::P_Vector, false,
                               RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(VectorVerifiedTest, BuggyLastIndexOfCaught) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runJava(Program::P_Vector, true,
                               RunMode::RM_OnlineView, 8, 600, Seed);
    if (!R.ok()) {
      Caught = true;
      // The Vector bug is in an observer: it manifests as an observer
      // mismatch, not a view mismatch (Sec. 7.5's remark).
      EXPECT_EQ(R.Violations.front().Kind,
                ViolationKind::VK_ObserverMismatch)
          << R.Violations.front().str();
    }
  }
  EXPECT_TRUE(Caught) << "lastIndexOf bug not detected in 30 seeds";
}

TEST(VectorVerifiedTest, BuggyLastIndexOfCaughtByIOMode) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runJava(Program::P_Vector, true,
                               RunMode::RM_OnlineIO, 8, 600, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}

TEST(StringBufferVerifiedTest, CorrectRunsClean) {
  for (uint64_t Seed : {1, 2}) {
    VerifierReport R = runJava(Program::P_StringBuffer, false,
                               RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(StringBufferVerifiedTest, BuggyAppendCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runJava(Program::P_StringBuffer, true,
                               RunMode::RM_OnlineView, 8, 400, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "unprotected copy bug not detected in 30 seeds";
}

TEST(StringBufferVerifiedTest, BuggyAppendCaughtByIORefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runJava(Program::P_StringBuffer, true,
                               RunMode::RM_OnlineIO, 8, 1500, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
