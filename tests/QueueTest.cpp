//===- QueueTest.cpp - Tests for the bounded two-lock queue ----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "queue/BoundedQueue.h"
#include "queue/QueueSpec.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::queue;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// Sequential semantics
//===----------------------------------------------------------------------===//

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue Q({}, Hooks());
  EXPECT_TRUE(Q.poll().isNull());
  EXPECT_TRUE(Q.offer(1));
  EXPECT_TRUE(Q.offer(2));
  EXPECT_TRUE(Q.offer(3));
  EXPECT_EQ(Q.poll(), Value(1));
  EXPECT_EQ(Q.poll(), Value(2));
  EXPECT_TRUE(Q.offer(4));
  EXPECT_EQ(Q.poll(), Value(3));
  EXPECT_EQ(Q.poll(), Value(4));
  EXPECT_TRUE(Q.poll().isNull());
}

TEST(BoundedQueueTest, CapacityBound) {
  BoundedQueue::Options O;
  O.Capacity = 2;
  BoundedQueue Q(O, Hooks());
  EXPECT_TRUE(Q.offer(1));
  EXPECT_TRUE(Q.offer(2));
  EXPECT_FALSE(Q.offer(3));
  EXPECT_EQ(Q.poll(), Value(1));
  EXPECT_TRUE(Q.offer(3));
}

TEST(BoundedQueueTest, PeekAndSize) {
  BoundedQueue Q({}, Hooks());
  EXPECT_TRUE(Q.peek().isNull());
  EXPECT_EQ(Q.size(), 0);
  Q.offer(7);
  Q.offer(8);
  EXPECT_EQ(Q.peek(), Value(7));
  EXPECT_EQ(Q.size(), 2);
  Q.poll();
  EXPECT_EQ(Q.peek(), Value(8));
}

TEST(BoundedQueueTest, DrainAndRefill) {
  BoundedQueue Q({}, Hooks());
  for (int Round = 0; Round < 3; ++Round) {
    for (int64_t I = 0; I < 10; ++I)
      EXPECT_TRUE(Q.offer(Round * 100 + I));
    for (int64_t I = 0; I < 10; ++I)
      EXPECT_EQ(Q.poll(), Value(Round * 100 + I));
    EXPECT_TRUE(Q.poll().isNull());
  }
}

TEST(BoundedQueueTest, BuggyPollSequentiallyCorrect) {
  BoundedQueue::Options O;
  O.BuggyPoll = true;
  BoundedQueue Q(O, Hooks());
  Q.offer(1);
  Q.offer(2);
  EXPECT_EQ(Q.poll(), Value(1));
  EXPECT_EQ(Q.poll(), Value(2));
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(QueueSpecTest, PollMustDeliverFront) {
  QueueSpec S(8);
  QVocab V = QVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Offer, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Offer, {Value(2)}, Value(true), ViewS));
  EXPECT_FALSE(S.applyMutator(V.Poll, {}, Value(2), ViewS))
      << "front is 1";
  EXPECT_TRUE(S.applyMutator(V.Poll, {}, Value(1), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Poll, {}, Value(2), ViewS));
}

TEST(QueueSpecTest, PermissiveFailures) {
  QueueSpec S(1);
  QVocab V = QVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Offer, {Value(1)}, Value(false), ViewS))
      << "spurious offer failure allowed";
  EXPECT_TRUE(S.applyMutator(V.Poll, {}, Value(), ViewS))
      << "spurious empty poll allowed";
  EXPECT_TRUE(S.applyMutator(V.Offer, {Value(1)}, Value(true), ViewS));
  EXPECT_FALSE(S.applyMutator(V.Offer, {Value(2)}, Value(true), ViewS))
      << "success beyond capacity is impossible";
}

TEST(QueueSpecTest, Observers) {
  QueueSpec S(8);
  QVocab V = QVocab::get();
  View ViewS;
  EXPECT_TRUE(S.returnAllowed(V.Peek, {}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.Size, {}, Value(0)));
  S.applyMutator(V.Offer, {Value(5)}, Value(true), ViewS);
  EXPECT_TRUE(S.returnAllowed(V.Peek, {}, Value(5)));
  EXPECT_FALSE(S.returnAllowed(V.Peek, {}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.Size, {}, Value(1)));
}

TEST(QueueSpecTest, ViewKeysAreAbsoluteIndices) {
  QueueSpec S(8);
  QVocab V = QVocab::get();
  View ViewS;
  S.applyMutator(V.Offer, {Value(10)}, Value(true), ViewS);
  S.applyMutator(V.Poll, {}, Value(10), ViewS);
  S.applyMutator(V.Offer, {Value(20)}, Value(true), ViewS);
  // The second element sits at absolute index 1, not 0: order history is
  // part of the view.
  EXPECT_EQ(ViewS.count(Value(1), Value(20)), 1u);
  EXPECT_EQ(ViewS.count(Value(0), Value(20)), 0u);
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

TEST(QueueReplayerTest, MirrorsAppendsAndPops) {
  auto R = KeyValueReplayer::map("q");
  Name SetOp = internName("q.set");
  Name DelOp = internName("q.del");
  View ViewI;
  R->applyUpdate(Action::replayOp(0, SetOp, {Value(0), Value(1)}), ViewI);
  R->applyUpdate(Action::replayOp(0, SetOp, {Value(1), Value(2)}), ViewI);
  EXPECT_EQ(ViewI.size(), 2u);
  R->applyUpdate(Action::replayOp(0, DelOp, {Value(0)}), ViewI);
  EXPECT_EQ(ViewI.count(Value(0), Value(1)), 0u);
  EXPECT_EQ(ViewI.count(Value(1), Value(2)), 1u);
}

TEST(QueueReplayerTest, IncrementalMatchesRebuild) {
  auto R = KeyValueReplayer::map("q");
  Name SetOp = internName("q.set");
  Name DelOp = internName("q.del");
  View Inc;
  for (int I = 0; I < 10; ++I)
    R->applyUpdate(Action::replayOp(0, SetOp, {Value(I), Value(I * 7)}),
                   Inc);
  for (int I = 0; I < 4; ++I)
    R->applyUpdate(Action::replayOp(0, DelOp, {Value(I)}), Inc);
  View Fresh;
  R->buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runQ(bool Buggy, RunMode Mode, unsigned Threads,
                    unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = Program::P_Queue;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 256;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(QueueVerifiedTest, CorrectRunsClean) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R = runQ(false, RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(QueueVerifiedTest, CorrectRunsCleanIOMode) {
  VerifierReport R = runQ(false, RunMode::RM_OnlineIO, 8, 300, 5);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(QueueVerifiedTest, StalePollBugCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runQ(true, RunMode::RM_OnlineView, 8, 400, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "stale-poll bug not detected in 30 seeds";
}

TEST(QueueVerifiedTest, StalePollBugCaughtEquallyFastByIOMode) {
  // The queue bug is visible in poll's own return value: I/O refinement
  // needs no extra observer luck — it detects at the same commit view
  // refinement does (the complementary case to Table 1's asymmetry).
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runQ(true, RunMode::RM_OnlineIO, 8, 400, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
