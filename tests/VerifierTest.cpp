//===- VerifierTest.cpp - Tests for the online/offline driver -------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

std::unique_ptr<Verifier> makeVerifier(VerifierConfig VC,
                                       size_t Capacity = 16) {
  (void)Capacity; // the generic replayer grows its slots on first touch
  return std::make_unique<Verifier>(
      std::make_unique<MultisetSpec>(),
      VC.Checker.Mode == CheckMode::CM_ViewRefinement
          ? KeyValueReplayer::guardedBag("A")
          : nullptr,
      VC);
}

void driveMultiset(Verifier &V, size_t Capacity, unsigned Ops) {
  ArrayMultiset::Options MO;
  MO.Capacity = Capacity;
  ArrayMultiset M(MO, V.hooks());
  for (unsigned I = 0; I < Ops; ++I) {
    M.insert(I % 7);
    M.lookUp(I % 7);
    if (I % 3 == 0)
      M.remove(I % 7);
  }
}

} // namespace

TEST(VerifierTest, OnlineCleanRun) {
  VerifierConfig VC;
  VC.Online = true;
  auto V = makeVerifier(VC);
  V->start();
  driveMultiset(*V, 16, 100);
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, R.Stats.CommitsProcessed +
                                        R.Stats.ObserversChecked);
  EXPECT_GT(R.LogRecords, 0u);
}

TEST(VerifierTest, OfflineCleanRun) {
  VerifierConfig VC;
  VC.Online = false;
  auto V = makeVerifier(VC);
  V->start();
  driveMultiset(*V, 16, 100);
  EXPECT_FALSE(V->violationSeen());
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(VerifierTest, IOModeNeedsNoReplayer) {
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_IORefinement;
  auto V = makeVerifier(VC);
  V->start();
  driveMultiset(*V, 16, 50);
  EXPECT_TRUE(V->finish().ok());
}

TEST(VerifierTest, FileLogPathProducesReloadableLog) {
  std::string Path = std::string(::testing::TempDir()) +
                     "vyrd-verifier-" + std::to_string(::getpid()) +
                     ".bin";
  uint64_t Records = 0;
  {
    VerifierConfig VC;
    VC.LogFilePath = Path;
    auto V = makeVerifier(VC);
    V->start();
    driveMultiset(*V, 16, 50);
    VerifierReport R = V->finish();
    EXPECT_TRUE(R.ok());
    EXPECT_GT(R.LogBytes, 0u);
    Records = R.LogRecords;
  }
  // The on-disk log replays to the same record count.
  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  EXPECT_EQ(Loaded.size(), Records);

  // And feeding it to a fresh checker offline reproduces a clean verdict.
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
  for (const Action &A : Loaded)
    C.feed(A);
  C.finish();
  EXPECT_FALSE(C.hasViolation());
  std::remove(Path.c_str());
}

TEST(VerifierTest, BufferedBackendOnlineCleanRun) {
  VerifierConfig VC;
  VC.Backend = LogBackend::LB_Buffered;
  VC.ShardCapacity = 64;
  auto V = makeVerifier(VC, /*Capacity=*/32);
  V->start();
  // Several producer threads, each through its own shard.
  std::vector<std::thread> Ts;
  ArrayMultiset::Options MO;
  MO.Capacity = 32; // must match the replayer's shadow capacity
  ArrayMultiset M(MO, V->hooks());
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&M, T] {
      for (unsigned I = 0; I < 200; ++I) {
        M.insert((T * 31 + I) % 9);
        M.lookUp(I % 9);
        if (I % 3 == 0)
          M.remove(I % 9);
      }
    });
  for (auto &T : Ts)
    T.join();
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.LogRecords, 0u);
}

TEST(VerifierTest, BufferedBackendWithFileProducesReloadableLog) {
  std::string Path = std::string(::testing::TempDir()) +
                     "vyrd-verifier-buffered-" +
                     std::to_string(::getpid()) + ".bin";
  uint64_t Records = 0;
  {
    VerifierConfig VC;
    VC.Backend = LogBackend::LB_Buffered;
    VC.LogFilePath = Path;
    auto V = makeVerifier(VC);
    V->start();
    driveMultiset(*V, 16, 50);
    VerifierReport R = V->finish();
    EXPECT_TRUE(R.ok());
    EXPECT_GT(R.LogBytes, 0u);
    Records = R.LogRecords;
  }
  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  ASSERT_EQ(Loaded.size(), Records);
  for (size_t I = 0; I < Loaded.size(); ++I)
    EXPECT_EQ(Loaded[I].Seq, I);
  std::remove(Path.c_str());
}

TEST(VerifierTest, BufferedBackendOfflineRun) {
  VerifierConfig VC;
  VC.Online = false;
  VC.Backend = LogBackend::LB_Buffered;
  auto V = makeVerifier(VC);
  V->start();
  driveMultiset(*V, 16, 100);
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(VerifierTest, ViolationSeenFlagsOnline) {
  // Force a violation by mis-instrumenting: commit without a call.
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_IORefinement;
  auto V = makeVerifier(VC);
  V->start();
  V->log().append(Action::commit(0));
  // The verification thread runs concurrently; poll briefly.
  for (int I = 0; I < 100 && !V->violationSeen(); ++I)
    std::this_thread::yield();
  VerifierReport R = V->finish();
  EXPECT_FALSE(R.ok());
  EXPECT_TRUE(V->violationSeen());
}

TEST(VerifierTest, ReportRendering) {
  VerifierConfig VC;
  auto V = makeVerifier(VC);
  V->start();
  driveMultiset(*V, 16, 10);
  VerifierReport R = V->finish();
  std::string S = R.str();
  EXPECT_NE(S.find("no refinement violations"), std::string::npos) << S;
  EXPECT_NE(S.find("records"), std::string::npos) << S;
}
