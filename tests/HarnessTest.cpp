//===- HarnessTest.cpp - Tests for the workload harness and scenarios -----===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

using namespace vyrd;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// Rng / KeyPool
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t X = A.next();
    EXPECT_EQ(X, B.next());
    (void)C.next();
  }
  Rng A2(42), C2(43);
  bool Differs = false;
  for (int I = 0; I < 10; ++I)
    Differs |= A2.next() != C2.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, RangeStaysInBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.range(17), 17u);
  EXPECT_EQ(R.range(0), 0u);
}

TEST(RngTest, PercentRoughlyCalibrated) {
  Rng R(11);
  int Hits = 0;
  for (int I = 0; I < 10000; ++I)
    Hits += R.percent(30);
  EXPECT_GT(Hits, 2500);
  EXPECT_LT(Hits, 3500);
}

TEST(KeyPoolTest, PicksFromPool) {
  KeyPool P(10, 1000, 0.5, 1);
  std::set<int64_t> Pool;
  Rng R(3);
  for (int I = 0; I < 500; ++I)
    Pool.insert(P.pick(R, 0.0));
  EXPECT_LE(Pool.size(), 10u);
  EXPECT_GE(Pool.size(), 5u);
}

TEST(KeyPoolTest, ShrinksWithProgress) {
  KeyPool P(100, 1 << 20, 0.1, 2);
  Rng R(5);
  std::set<int64_t> Early, Late;
  for (int I = 0; I < 2000; ++I)
    Early.insert(P.pick(R, 0.0));
  for (int I = 0; I < 2000; ++I)
    Late.insert(P.pick(R, 1.0));
  EXPECT_GT(Early.size(), 60u);
  EXPECT_LE(Late.size(), 10u) << "pool must shrink to 10% of its size";
  for (int64_t K : Late)
    EXPECT_TRUE(Early.count(K)) << "late keys are a prefix of the pool";
}

TEST(KeyPoolTest, ProgressClamped) {
  KeyPool P(10, 100, 0.5, 3);
  Rng R(1);
  (void)P.pick(R, -1.0);
  (void)P.pick(R, 2.0); // must not crash or index out of bounds
}

//===----------------------------------------------------------------------===//
// runWorkload
//===----------------------------------------------------------------------===//

TEST(WorkloadTest, IssuesExactOpCount) {
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 250;
  std::atomic<uint64_t> Count{0};
  WorkloadResult R = runWorkload(
      WO, [&](Rng &, int64_t, int64_t, double) { ++Count; });
  EXPECT_EQ(R.OpsIssued, 1000u);
  EXPECT_EQ(Count.load(), 1000u);
  EXPECT_FALSE(R.StoppedEarly);
}

TEST(WorkloadTest, BackgroundOpRunsAndStops) {
  WorkloadOptions WO;
  WO.Threads = 2;
  WO.OpsPerThread = 200;
  std::atomic<uint64_t> BgRuns{0};
  WO.BackgroundOp = [&] { ++BgRuns; };
  runWorkload(WO, [&](Rng &, int64_t, int64_t, double) {});
  EXPECT_GT(BgRuns.load(), 0u);
  uint64_t After = BgRuns.load();
  // The background thread must have been joined: no more increments.
  EXPECT_EQ(BgRuns.load(), After);
}

TEST(WorkloadTest, ProgressIsMonotonePerThread) {
  WorkloadOptions WO;
  WO.Threads = 1;
  WO.OpsPerThread = 100;
  double Last = -1;
  bool Monotone = true;
  runWorkload(WO, [&](Rng &, int64_t, int64_t, double P) {
    Monotone &= P >= Last;
    Last = P;
  });
  EXPECT_TRUE(Monotone);
  EXPECT_LT(Last, 1.0);
}

//===----------------------------------------------------------------------===//
// Scenario wiring
//===----------------------------------------------------------------------===//

TEST(ScenarioTest, BareModeHasNoLogOrVerifier) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_Bare;
  Scenario S = makeScenario(SO);
  EXPECT_EQ(S.L, nullptr);
  EXPECT_EQ(S.V, nullptr);
  Rng R(1);
  S.Op(R, 5, 6, 0.0); // runs without logging
  VerifierReport Rep = S.Finish();
  EXPECT_EQ(Rep.LogRecords, 0u);
}

TEST(ScenarioTest, LogOnlyModeRecordsWithoutChecking) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_LogOnlyView;
  Scenario S = makeScenario(SO);
  ASSERT_NE(S.L, nullptr);
  EXPECT_EQ(S.V, nullptr);
  Rng R(1);
  for (int I = 0; I < 20; ++I)
    S.Op(R, I, I + 1, 0.0);
  VerifierReport Rep = S.Finish();
  EXPECT_GT(Rep.LogRecords, 0u);
  EXPECT_EQ(Rep.Stats.MethodsChecked, 0u);
}

TEST(ScenarioTest, IOLevelLogsFewerRecordsThanViewLevel) {
  auto Records = [](RunMode Mode) {
    ScenarioOptions SO;
    SO.Mode = Mode;
    Scenario S = makeScenario(SO);
    Rng R(1);
    for (int I = 0; I < 50; ++I)
      S.Op(R, I % 8, I % 5, 0.0);
    return S.Finish().LogRecords;
  };
  uint64_t IO = Records(RunMode::RM_LogOnlyIO);
  uint64_t View = Records(RunMode::RM_LogOnlyView);
  EXPECT_LT(IO, View) << "write records only exist at view level";
}

TEST(ScenarioTest, AllProgramsBuildInAllModes) {
  for (Program P : allPrograms()) {
    for (RunMode M :
         {RunMode::RM_Bare, RunMode::RM_LogOnlyIO, RunMode::RM_OnlineIO,
          RunMode::RM_OnlineView, RunMode::RM_OfflineView}) {
      ScenarioOptions SO;
      SO.Prog = P;
      SO.Mode = M;
      Scenario S = makeScenario(SO);
      Rng R(1);
      for (int I = 0; I < 10; ++I)
        S.Op(R, I, I + 3, 0.0);
      VerifierReport Rep = S.Finish();
      EXPECT_TRUE(Rep.Violations.empty())
          << S.Name << ": " << Rep.str();
    }
  }
}

TEST(ScenarioTest, BufferedBackendLogsAndChecks) {
  // Log-only: the buffered backend records without a consumer.
  {
    ScenarioOptions SO;
    SO.Mode = RunMode::RM_LogOnlyView;
    SO.Buffered = true;
    Scenario S = makeScenario(SO);
    ASSERT_NE(S.L, nullptr);
    Rng R(1);
    for (int I = 0; I < 20; ++I)
      S.Op(R, I, I + 1, 0.0);
    VerifierReport Rep = S.Finish();
    EXPECT_GT(Rep.LogRecords, 0u);
    EXPECT_EQ(Rep.Stats.MethodsChecked, 0u);
  }
  // Online checking over the buffered backend, multi-threaded.
  {
    ScenarioOptions SO;
    SO.Mode = RunMode::RM_OnlineView;
    SO.Buffered = true;
    Scenario S = makeScenario(SO);
    WorkloadOptions WO;
    WO.Threads = 4;
    WO.OpsPerThread = 150;
    WO.Seed = 3;
    runWorkload(WO, S.Op);
    VerifierReport Rep = S.Finish();
    EXPECT_TRUE(Rep.ok()) << Rep.str();
    EXPECT_GT(Rep.Stats.MethodsChecked, 0u);
  }
}

TEST(ScenarioTest, BufferedBackendStillCatchesTheInjectedBug) {
  // The Fig. 5 multiset bug must be caught identically through the
  // sharded log: the merged order is a faithful witness order.
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 20 && !Caught; ++Seed) {
    ScenarioOptions SO;
    SO.Mode = RunMode::RM_OnlineView;
    SO.Buggy = true;
    SO.Buffered = true;
    SO.StopAtFirstViolation = true;
    Scenario S = makeScenario(SO);
    Chaos::enable(4, Seed);
    WorkloadOptions WO;
    WO.Threads = 8;
    WO.OpsPerThread = 400;
    WO.KeyPoolSize = 24;
    WO.Seed = Seed;
    WO.StopOnViolation = S.V;
    runWorkload(WO, S.Op);
    Chaos::disable();
    Caught = !S.Finish().ok();
  }
  EXPECT_TRUE(Caught) << "injected bug never detected in 20 seeds";
}

TEST(ScenarioTest, NamesAreDescriptive) {
  ScenarioOptions SO;
  SO.Prog = Program::P_Cache;
  SO.Mode = RunMode::RM_OnlineView;
  SO.Buggy = true;
  Scenario S = makeScenario(SO);
  EXPECT_NE(S.Name.find("Cache"), std::string::npos);
  EXPECT_NE(S.Name.find("online-view"), std::string::npos);
  EXPECT_NE(S.Name.find("buggy"), std::string::npos);
  (void)S.Finish();
}

//===----------------------------------------------------------------------===//
// Composite multi-object scenario
//===----------------------------------------------------------------------===//

TEST(ScenarioTest, CompositeScenarioVerifiesFourObjectsCleanly) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  Scenario S = makeCompositeScenario(SO);
  ASSERT_NE(S.V, nullptr);
  EXPECT_EQ(S.V->objectCount(), 4u);
  ASSERT_EQ(S.Objects.size(), 4u);
  WorkloadOptions WO;
  WO.Threads = 3;
  WO.OpsPerThread = 200;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  VerifierReport R = S.Finish();
  EXPECT_TRUE(R.ok()) << R.str();
  ASSERT_EQ(R.Objects.size(), 4u);
  for (size_t I = 0; I < R.Objects.size(); ++I) {
    EXPECT_EQ(R.Objects[I].Name, S.Objects[I]);
    EXPECT_GT(R.Objects[I].Records, 0u) << S.Objects[I];
  }
}

TEST(ScenarioTest, CompositeScenarioWithCheckerPool) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.CheckerThreads = 4;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 300;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  VerifierReport R = S.Finish();
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(ScenarioTest, CompositeBugIsAttributedToTheMultiset) {
  // The injected bug lives in the multiset; under chaos scheduling the
  // violation must be reported against "multiset", never a bystander.
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.Buggy = true;
  bool Found = false;
  for (uint64_t Seed = 1; Seed <= 20 && !Found; ++Seed) {
    Scenario S = makeCompositeScenario(SO);
    Chaos::enable(4, Seed);
    WorkloadOptions WO;
    WO.Threads = 6;
    WO.OpsPerThread = 300;
    WO.KeyPoolSize = 8;
    WO.Seed = Seed;
    WO.StopOnViolation = S.V;
    runWorkload(WO, S.Op);
    Chaos::disable();
    VerifierReport R = S.Finish();
    for (const Violation &V : R.Violations) {
      EXPECT_EQ(V.Object.str(), "multiset") << V.str();
      Found = true;
    }
  }
  EXPECT_TRUE(Found) << "injected multiset bug never fired in 20 seeds";
}

TEST(ScenarioTest, CompositeLogOnlyStampsAllObjects) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_LogOnlyView;
  Scenario S = makeCompositeScenario(SO);
  ASSERT_EQ(S.V, nullptr);
  ASSERT_NE(S.L, nullptr);
  WorkloadOptions WO;
  WO.Threads = 2;
  WO.OpsPerThread = 200;
  runWorkload(WO, S.Op);
  // Close the log first (next() blocks while it is open), then drain the
  // retained records and count the object ids.
  VerifierReport R = S.Finish();
  EXPECT_GT(R.LogRecords, 0u);
  std::set<ObjectId> Seen;
  Action A;
  while (S.L->next(A))
    Seen.insert(A.Obj);
  EXPECT_EQ(Seen.size(), 4u) << "all four objects must appear in the log";
}
