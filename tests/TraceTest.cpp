//===- TraceTest.cpp - Tests for the trace_event recorder -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the Action -> Chrome trace_event mapping (spans for methods,
/// instants for commits/writes, the verifier track), that the rendered
/// document is valid JSON with the expected event population, that
/// unbalanced call spans are auto-closed, and that a Verifier run with
/// TraceFilePath set writes a loadable trace.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Trace.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Feeds a scripted action list with sequence numbers assigned in order.
void feed(TraceRecorder &TR, std::vector<Action> Script) {
  uint64_t Seq = 0;
  for (Action &A : Script) {
    A.Seq = Seq++;
    TR.noteAction(A);
  }
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(TraceTest, MapsActionsToSpansAndInstants) {
  TraceRecorder TR;
  Name M = name("ms.Insert");
  Name Var = name("elt[3]");
  feed(TR, {
               Action::call(2, M, {Value(int64_t(3))}),
               Action::write(2, Var, Value(int64_t(3))),
               Action::commit(2),
               Action::ret(2, M, Value(true)),
           });
  EXPECT_EQ(TR.eventCount(), 4u);

  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  // Method span on track 2, named after the method.
  EXPECT_NE(J.find("\"name\":\"ms.Insert\",\"ph\":\"B\",\"pid\":1,"
                   "\"tid\":2,\"ts\":0"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"name\":\"ms.Insert\",\"ph\":\"E\""),
            std::string::npos);
  // The commit instant is named after the enclosing open method.
  EXPECT_NE(J.find("\"name\":\"commit ms.Insert\",\"ph\":\"i\""),
            std::string::npos)
      << J;
  // The write instant shows var := value.
  EXPECT_NE(J.find("elt[3] := 3"), std::string::npos) << J;
  // Track metadata names the impl thread.
  EXPECT_NE(J.find("\"name\":\"impl thread 2\""), std::string::npos) << J;
  // Balanced script: no synthesized closers, so B and E counts match.
  EXPECT_EQ(countOccurrences(J, "\"ph\":\"B\""),
            countOccurrences(J, "\"ph\":\"E\""));
}

TEST(TraceTest, VerifierTrackEvents) {
  TraceRecorder TR;
  TR.noteCheckSpan(0, 9, 10);
  TR.noteVerifierInstant(5, "violation: ViewMismatch");
  EXPECT_EQ(TR.eventCount(), 3u); // B + E + instant

  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"name\":\"verifier\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"check\",\"ph\":\"B\",\"pid\":1,"
                   "\"tid\":1000000,\"ts\":0"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"first_seq\":0,\"last_seq\":9,\"actions\":10"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("violation: ViewMismatch"), std::string::npos) << J;
}

TEST(TraceTest, AutoClosesUnbalancedSpans) {
  TraceRecorder TR;
  Name Outer = name("t.Outer");
  Name Inner = name("t.Inner");
  // Two spans left open on the same track (a truncated log tail).
  feed(TR, {
               Action::call(1, Outer, {}),
               Action::call(1, Inner, {}),
               Action::write(1, name("x"), Value(int64_t(1))),
           });
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_EQ(countOccurrences(J, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(countOccurrences(J, "\"ph\":\"E\""), 2u);
  // Inner-most first keeps the nesting valid; both close after MaxTs.
  size_t InnerE = J.find("\"name\":\"t.Inner\",\"ph\":\"E\"");
  size_t OuterE = J.find("\"name\":\"t.Outer\",\"ph\":\"E\"");
  ASSERT_NE(InnerE, std::string::npos);
  ASSERT_NE(OuterE, std::string::npos);
  EXPECT_LT(InnerE, OuterE);
}

TEST(TraceTest, CommitBlockAndReplayMapping) {
  TraceRecorder TR;
  feed(TR, {
               Action::blockBegin(3),
               Action::replayOp(3, name("insert"), {Value(int64_t(7))}),
               Action::blockEnd(3),
           });
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"name\":\"commit-block\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_NE(J.find("\"name\":\"replay insert\",\"ph\":\"i\""),
            std::string::npos);
  EXPECT_NE(J.find("\"name\":\"commit-block\",\"ph\":\"E\""),
            std::string::npos);
}

TEST(TraceTest, EscapesNamesInJson) {
  TraceRecorder TR;
  TR.noteVerifierInstant(0, "quote \" backslash \\ tab \t");
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("quote \\\" backslash \\\\ tab \\t"),
            std::string::npos)
      << J;
}

TEST(TraceTest, WriteFileRoundTrips) {
  TraceRecorder TR;
  Name M = name("t.Op");
  feed(TR, {Action::call(1, M, {}), Action::ret(1, M, Value(true))});
  std::string Path = std::string(::testing::TempDir()) +
                     "vyrd-tracetest-" + std::to_string(::getpid()) +
                     ".json";
  ASSERT_TRUE(TR.writeFile(Path));
  EXPECT_EQ(slurp(Path), TR.json());
  std::remove(Path.c_str());
  EXPECT_FALSE(TR.writeFile("/nonexistent-xyz/trace.json"));
}

TEST(TraceTest, VerifierWritesTraceFile) {
  std::string Path = std::string(::testing::TempDir()) +
                     "vyrd-tracetest-verifier-" +
                     std::to_string(::getpid()) + ".json";
  VerifierConfig VC;
  VC.Online = true;
  VC.Telemetry.TraceFilePath = Path;
  Verifier V(std::make_unique<multiset::MultisetSpec>(),
             KeyValueReplayer::guardedBag("A"), VC);
  V.start();
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, V.hooks());
  for (unsigned I = 0; I < 60; ++I) {
    M.insert(I % 5);
    M.lookUp(I % 5);
  }
  VerifierReport R = V.finish();
  ASSERT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.TraceEvents, 0u);

  std::string J = slurp(Path);
  std::remove(Path.c_str());
  ASSERT_FALSE(J.empty());
  EXPECT_TRUE(jsonValid(J)) << J.substr(0, 400);
  // Impl tracks and the online verifier's check spans are both present.
  EXPECT_NE(J.find("\"name\":\"impl thread"), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"verifier\""), std::string::npos);
  EXPECT_NE(J.find("\"name\":\"check\",\"ph\":\"B\""), std::string::npos);
  // The document carries exactly the recorded events plus one metadata
  // event per track plus the process_name event (balanced script: no
  // synthesized closers).
  size_t Tracks = countOccurrences(J, "\"name\":\"thread_name\"");
  EXPECT_EQ(countOccurrences(J, "\"ph\":"), R.TraceEvents + Tracks + 1);
}

//===----------------------------------------------------------------------===//
// Multi-object track groups (one trace "process" per verified object)
//===----------------------------------------------------------------------===//

TEST(TraceTest, ObjectsRenderAsSeparateTrackGroups) {
  TraceRecorder TR;
  TR.setObjectName(0, "alpha");
  TR.setObjectName(1, "beta");
  Action A = Action::call(3, name("m"), {});
  A.Obj = 0;
  Action B = Action::call(3, name("m"), {});
  B.Obj = 1;
  Action ARet = Action::ret(3, name("m"), Value(true));
  ARet.Obj = 0;
  Action BRet = Action::ret(3, name("m"), Value(true));
  BRet.Obj = 1;
  feed(TR, {A, B, ARet, BRet});
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  // Object N renders as pid N + 1, each named after its registration.
  EXPECT_NE(J.find("\"pid\":1,\"args\":{\"name\":\"object: alpha\"}"),
            std::string::npos)
      << J;
  EXPECT_NE(J.find("\"pid\":2,\"args\":{\"name\":\"object: beta\"}"),
            std::string::npos)
      << J;
  // The same thread appears once per object group it touched.
  EXPECT_NE(J.find("\"ph\":\"B\",\"pid\":1,\"tid\":3"), std::string::npos);
  EXPECT_NE(J.find("\"ph\":\"B\",\"pid\":2,\"tid\":3"), std::string::npos);
}

TEST(TraceTest, SingleObjectLayoutKeepsLegacyPid) {
  // Anonymous single-object traces must render exactly as before the
  // multi-object engine: everything on pid 1, named "vyrd pipeline".
  TraceRecorder TR;
  feed(TR, {Action::call(0, name("m"), {}),
            Action::ret(0, name("m"), Value())});
  TR.noteVerifierInstant(2, "violation: x");
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"name\":\"vyrd pipeline\""), std::string::npos) << J;
  EXPECT_EQ(J.find("\"pid\":2"), std::string::npos) << J;
}

TEST(TraceTest, UnbalancedSpansCloseInTheirOwnGroup) {
  TraceRecorder TR;
  Action A = Action::call(5, name("left.open"), {});
  A.Obj = 2; // open call on object 2 never returns
  feed(TR, {A});
  std::string J = TR.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  // The auto-close 'E' event must land on object 2's pid (3), tid 5.
  EXPECT_NE(J.find("\"ph\":\"E\",\"pid\":3,\"tid\":5"), std::string::npos)
      << J;
}
