//===- ToolsTest.cpp - End-to-end tests for the CLI tools ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises vyrd-logdump and vyrd-check as real subprocesses against a
/// freshly recorded log (paths injected by CMake via VYRD_LOGDUMP_PATH /
/// VYRD_CHECK_PATH).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

/// Runs a command, captures stdout, returns the exit code.
int runTool(const std::string &Cmd, std::string &Out) {
  Out.clear();
  FILE *P = ::popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = ::pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Records a multiset run (buggy or clean) into \p Path.
void recordLog(const std::string &Path, bool Buggy) {
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.Buggy = Buggy;
  SO.LogPath = Path;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, 7);
  WorkloadOptions WO;
  WO.Threads = 6;
  WO.OpsPerThread = 120;
  WO.KeyPoolSize = 12;
  WO.Seed = 7;
  runWorkload(WO, S.Op);
  Chaos::disable();
  S.Finish();
}

std::string tempLog(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-toolstest-" + Tag +
         "-" + std::to_string(::getpid()) + ".bin";
}

} // namespace

TEST(ToolsTest, LogdumpPrintsRecords) {
  std::string Path = tempLog("dump");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --limit 5",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("call"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpStats) {
  std::string Path = tempLog("stats");
  recordLog(Path, false);
  std::string Out;
  int RC =
      runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path + " --stats",
              Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("by kind"), std::string::npos) << Out;
  EXPECT_NE(Out.find("Insert"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpFiltersByKind) {
  std::string Path = tempLog("filter");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --kind commit --limit 3",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("commit"), std::string::npos);
  EXPECT_EQ(Out.find("call"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpRejectsMissingFile) {
  std::string Out;
  EXPECT_NE(runTool(std::string(VYRD_LOGDUMP_PATH) +
                        " /nonexistent-xyz/f.bin",
                    Out),
            0);
}

TEST(ToolsTest, CheckCleanLogExitsZero) {
  std::string Path = tempLog("clean");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                       " --program multiset",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("no refinement violations"), std::string::npos)
      << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckBuggyLogExitsOneWithViolations) {
  std::string Path = tempLog("buggy");
  // The bug is probabilistic: try a few recordings.
  int RC = 0;
  std::string Out;
  for (int Try = 0; Try < 10 && RC == 0; ++Try) {
    recordLog(Path, true);
    RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                     " --program multiset --context 8",
                 Out);
  }
  EXPECT_EQ(RC, 1) << Out;
  EXPECT_NE(Out.find("violation"), std::string::npos) << Out;
  EXPECT_NE(Out.find("context of"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckIOModeWorks) {
  std::string Path = tempLog("iomode");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                       " --program multiset --mode io",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckRejectsBadUsage) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(VYRD_CHECK_PATH) + " /tmp/x.bin "
                    "--program not-a-program",
                    Out),
            2);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}

TEST(ToolsTest, LogdumpStatsAsJson) {
  std::string Path = tempLog("statsjson");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --stats --json",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_TRUE(test::jsonValid(Out)) << Out;
  EXPECT_NE(Out.find("\"records\":"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"by_kind\":"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"by_thread\":"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// vyrd-trace
//===----------------------------------------------------------------------===//

namespace {

/// Writes a small deterministic log: the golden input for the trace
/// conversion tests.
///   t1: call Insert / write / commit / return
///   t2: call LookUp / return
void writeGoldenLog(const std::string &Path) {
  bool Valid = false;
  FileLog L(Path, Valid);
  ASSERT_TRUE(Valid);
  Name Ins = internName("golden.Insert");
  Name Look = internName("golden.LookUp");
  Name Var = internName("golden.elt");
  L.append(Action::call(1, Ins, {Value(int64_t(3))}));
  L.append(Action::write(1, Var, Value(int64_t(3))));
  L.append(Action::call(2, Look, {Value(int64_t(3))}));
  L.append(Action::commit(1));
  L.append(Action::ret(1, Ins, Value(true)));
  L.append(Action::ret(2, Look, Value(false)));
  L.close();
}

} // namespace

TEST(ToolsTest, TraceConvertsGoldenLogToValidJson) {
  std::string Path = tempLog("trace-golden");
  writeGoldenLog(Path);
  std::string Out;
  int RC = runTool(std::string(VYRD_TRACE_PATH) + " " + Path, Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_TRUE(test::jsonValid(Out)) << Out;

  // 6 log records -> 6 impl-track events + 1 synthesized verifier commit
  // instant; rendered alongside 1 process_name + 3 thread_name metadata
  // events (tracks: t1, t2, verifier). Every event carries one "ph".
  EXPECT_EQ(test::countOccurrences(Out, "\"ph\":"), 11u);
  EXPECT_EQ(test::countOccurrences(Out, "\"name\":\"thread_name\""), 3u);
  // The commit instant lands on both its own track and the verifier
  // track, named after the enclosing method / witness position.
  EXPECT_NE(Out.find("\"name\":\"commit golden.Insert\""),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"name\":\"commit t1 golden.Insert\",\"ph\":\"i\","
                     "\"pid\":1,\"tid\":1000000,\"ts\":3"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("\"name\":\"verifier\""), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"time_base\":\"virtual: 1 log record = 1 us\""),
            std::string::npos)
      << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, TraceWritesOutputFile) {
  std::string Path = tempLog("trace-out");
  writeGoldenLog(Path);
  std::string OutPath = tempLog("trace-json") + ".json";
  std::string Out;
  int RC = runTool(std::string(VYRD_TRACE_PATH) + " " + Path + " -o " +
                       OutPath,
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  // -o mode reports a summary on stderr instead of dumping the document.
  EXPECT_NE(Out.find("6 records -> 7 trace events"), std::string::npos)
      << Out;

  std::FILE *F = std::fopen(OutPath.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string Doc;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Doc.append(Buf, N);
  std::fclose(F);
  EXPECT_TRUE(test::jsonValid(Doc)) << Doc;
  std::remove(Path.c_str());
  std::remove(OutPath.c_str());
}

TEST(ToolsTest, TraceConvertsRealWorkloadLog) {
  std::string Path = tempLog("trace-real");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_TRACE_PATH) + " " + Path, Out);
  EXPECT_EQ(RC, 0);
  EXPECT_TRUE(test::jsonValid(Out)) << Out.substr(0, 400);
  EXPECT_NE(Out.find("\"name\":\"impl thread"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ToolsTest, TraceRejectsMissingFileAndBadUsage) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(VYRD_TRACE_PATH) +
                        " /nonexistent-xyz/f.bin",
                    Out),
            2);
  EXPECT_EQ(runTool(std::string(VYRD_TRACE_PATH) + " --bogus", Out), 2);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}

TEST(ToolsTest, LogdumpReadsLegacyV1Log) {
  // A v1 (headerless) file written byte-by-byte: a name definition, a
  // call, a commit and a return. The tool must still read it — the
  // back-compat path of docs/LOGFORMAT.md — attributing everything to
  // object 0.
  std::string Path = tempLog("v1");
  const uint8_t V1[] = {
      0xFF, 1, 1, 'm',        // define name #1 = "m"
      0x00, 2, 0, 1, 0, 0, 0, 0, // call: tid 2, seq 0, method m
      0x02, 2, 1, 0, 0, 0, 0, 0, // commit: tid 2, seq 1
      0x01, 2, 2, 1, 0, 0,       // return: tid 2, seq 2, method m,
      1,    1, 0,                //   ret = bool true, val = null
  };
  FILE *F = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fwrite(V1, 1, sizeof(V1), F), sizeof(V1));
  std::fclose(F);

  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path, Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("call m"), std::string::npos) << Out;
  int RC2 = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                        " --stats --json",
                    Out);
  EXPECT_EQ(RC2, 0) << Out;
  EXPECT_NE(Out.find("\"records\":3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"objects\":1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"by_object\":{\"0\":3}"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Snapshots: --resume / --epochs / --snapshots
//===----------------------------------------------------------------------===//

namespace {

/// Records a clean multiset run as a segmented chain with snapshot
/// sidecars (optionally reclaiming the checked prefix, which is what a
/// crashed verifier leaves behind).
void recordSnapshotChain(const std::string &Base, bool Reclaim) {
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = Reclaim;
  SO.Snapshots = true;
  Scenario S = makeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 400;
  WO.Seed = 21;
  runWorkload(WO, S.Op);
  VerifierReport R = S.Finish();
  ASSERT_TRUE(R.ok()) << R.str();
}

void removeSnapshotChain(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 128; ++I) {
    std::remove(logSegmentPath(Base, I).c_str());
    std::remove(snapshotSidecarPath(Base, I).c_str());
  }
}

} // namespace

TEST(ToolsTest, CheckResumesFromReclaimedChain) {
  std::string Base = tempLog("resume");
  removeSnapshotChain(Base);
  recordSnapshotChain(Base, /*Reclaim=*/true);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Base +
                       " --program multiset --resume",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("no refinement violations"), std::string::npos) << Out;
  EXPECT_NE(Out.find("epochs: 1"), std::string::npos) << Out;
  removeSnapshotChain(Base);
}

TEST(ToolsTest, CheckEpochsSplitsAtSidecars) {
  std::string Base = tempLog("epochs");
  removeSnapshotChain(Base);
  recordSnapshotChain(Base, /*Reclaim=*/false);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Base +
                       " --program multiset --epochs 2",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("no refinement violations"), std::string::npos) << Out;
  EXPECT_NE(Out.find("serial rechecks: 0"), std::string::npos) << Out;
  // The 8 KiB segments must have produced at least one sidecar, so the
  // chain splits into at least two epochs.
  EXPECT_EQ(Out.find("epochs: 0,"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("epochs: 1,"), std::string::npos) << Out;
  removeSnapshotChain(Base);
}

TEST(ToolsTest, CheckRejectsResumeCombinedWithEpochs) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(VYRD_CHECK_PATH) +
                        " /tmp/x.bin --program multiset --resume --epochs 2",
                    Out),
            2);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}

TEST(ToolsTest, LogdumpPrintsSnapshotSidecars) {
  std::string Base = tempLog("snapdump");
  removeSnapshotChain(Base);
  recordSnapshotChain(Base, /*Reclaim=*/false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Base +
                       " --snapshots",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("segment 000001"), std::string::npos) << Out;
  EXPECT_NE(Out.find("(no sidecar)"), std::string::npos)
      << "segment 1 never has one: " << Out;
  EXPECT_NE(Out.find("sidecar: watermark="), std::string::npos) << Out;
  EXPECT_NE(Out.find("blob bytes"), std::string::npos) << Out;
  removeSnapshotChain(Base);
}

TEST(ToolsTest, LogdumpObjectFilterAndStats) {
  // A composite (four-object) log: --obj narrows the dump to one object
  // and the stats gain the per-object dimension.
  std::string Path = tempLog("multiobj");
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.LogPath = Path;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = 2;
  WO.OpsPerThread = 150;
  runWorkload(WO, S.Op);
  S.Finish();

  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --stats --json",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("\"objects\":4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("\"by_object\":{"), std::string::npos) << Out;

  int RC2 = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                        " --obj 2 --limit 20",
                    Out);
  EXPECT_EQ(RC2, 0) << Out;
  EXPECT_NE(Out.find(" o2 "), std::string::npos) << Out;
  EXPECT_EQ(Out.find(" o1 "), std::string::npos) << Out;
  EXPECT_EQ(Out.find(" o3 "), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpStatsJsonIncludesSnapshotInventory) {
  std::string Base = tempLog("snapjson");
  removeSnapshotChain(Base);
  recordSnapshotChain(Base, /*Reclaim=*/false);

  std::string FromBase;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Base +
                       " --stats --json",
                   FromBase);
  EXPECT_EQ(RC, 0) << FromBase;
  EXPECT_TRUE(test::jsonValid(FromBase)) << FromBase;
  EXPECT_NE(FromBase.find("\"snapshots\":["), std::string::npos) << FromBase;
  EXPECT_NE(FromBase.find("\"sidecar\":true"), std::string::npos) << FromBase;
  EXPECT_NE(FromBase.find("\"watermark\":"), std::string::npos) << FromBase;
  EXPECT_NE(FromBase.find("\"blob_bytes\":"), std::string::npos) << FromBase;

  // Pointing at an explicit segment file renders the same inventory:
  // the tool normalizes back to the chain base (CI diffs the two).
  std::string FromSegment;
  int RC2 = runTool(std::string(VYRD_LOGDUMP_PATH) + " " +
                        logSegmentPath(Base, 1) + " --stats --json",
                    FromSegment);
  EXPECT_EQ(RC2, 0) << FromSegment;
  EXPECT_EQ(FromBase, FromSegment);
  removeSnapshotChain(Base);
}

TEST(ToolsTest, LogdumpStatsJsonPlainLogHasEmptySnapshots) {
  std::string Path = tempLog("plainsnap");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --stats --json",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("\"snapshots\":[]"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// vyrd-mon
//===----------------------------------------------------------------------===//

TEST(ToolsTest, MonOneShotCommandsAgainstLiveServer) {
  // An in-process monitor endpoint stands in for a live verifier: the
  // CLI only ever sees the socket.
  Telemetry Hub;
  Hub.count(Counter::C_HookRecords, 123);
  TelemetryMonitorSource Src(Hub);
  MonitorOptions MO;
  MO.SocketPath =
      "/tmp/vyrd-toolstest-mon-" + std::to_string(::getpid()) + ".sock";
  MonitorServer Server(MO, Src);
  ASSERT_TRUE(Server.valid()) << Server.error();
  std::string Mon = std::string(VYRD_MON_PATH) + " --socket " +
                    MO.SocketPath;

  std::string Out;
  EXPECT_EQ(runTool(Mon + " --json", Out), 0) << Out;
  EXPECT_TRUE(test::jsonValid(Out)) << Out;
  EXPECT_NE(Out.find("\"hook_records\":123"), std::string::npos) << Out;

  EXPECT_EQ(runTool(Mon + " health", Out), 0) << Out;
  EXPECT_NE(Out.find("\"health\":\"ok\""), std::string::npos) << Out;

  EXPECT_EQ(runTool(Mon + " --prom", Out), 0) << Out;
  EXPECT_NE(Out.find("vyrd_hook_records_total 123"), std::string::npos)
      << Out;
  EXPECT_EQ(Out.find("# EOF"), std::string::npos)
      << "framing marker must not leak into the dump: " << Out;

  EXPECT_EQ(runTool(Mon + " watch --interval 10", Out), 0) << Out;
  EXPECT_TRUE(test::jsonValid(Out)) << Out;

  EXPECT_EQ(runTool(Mon + " top --count 1", Out), 0) << Out;
  EXPECT_NE(Out.find("vyrd:"), std::string::npos) << Out;
}

TEST(ToolsTest, MonFailsCleanlyWithoutServer) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(VYRD_MON_PATH) +
                        " --socket /tmp/vyrd-no-such.sock health",
                    Out),
            1);
  EXPECT_NE(Out.find("cannot connect"), std::string::npos) << Out;
  EXPECT_EQ(runTool(std::string(VYRD_MON_PATH) + " --bogus", Out), 2);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}
