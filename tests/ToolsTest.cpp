//===- ToolsTest.cpp - End-to-end tests for the CLI tools ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises vyrd-logdump and vyrd-check as real subprocesses against a
/// freshly recorded log (paths injected by CMake via VYRD_LOGDUMP_PATH /
/// VYRD_CHECK_PATH).
///
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

/// Runs a command, captures stdout, returns the exit code.
int runTool(const std::string &Cmd, std::string &Out) {
  Out.clear();
  FILE *P = ::popen((Cmd + " 2>&1").c_str(), "r");
  if (!P)
    return -1;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), P)) > 0)
    Out.append(Buf, N);
  int Status = ::pclose(P);
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

/// Records a multiset run (buggy or clean) into \p Path.
void recordLog(const std::string &Path, bool Buggy) {
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.Buggy = Buggy;
  SO.LogPath = Path;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, 7);
  WorkloadOptions WO;
  WO.Threads = 6;
  WO.OpsPerThread = 120;
  WO.KeyPoolSize = 12;
  WO.Seed = 7;
  runWorkload(WO, S.Op);
  Chaos::disable();
  S.Finish();
}

std::string tempLog(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-toolstest-" + Tag +
         "-" + std::to_string(::getpid()) + ".bin";
}

} // namespace

TEST(ToolsTest, LogdumpPrintsRecords) {
  std::string Path = tempLog("dump");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --limit 5",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("call"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpStats) {
  std::string Path = tempLog("stats");
  recordLog(Path, false);
  std::string Out;
  int RC =
      runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path + " --stats",
              Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("by kind"), std::string::npos) << Out;
  EXPECT_NE(Out.find("Insert"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpFiltersByKind) {
  std::string Path = tempLog("filter");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_LOGDUMP_PATH) + " " + Path +
                       " --kind commit --limit 3",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("commit"), std::string::npos);
  EXPECT_EQ(Out.find("call"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, LogdumpRejectsMissingFile) {
  std::string Out;
  EXPECT_NE(runTool(std::string(VYRD_LOGDUMP_PATH) +
                        " /nonexistent-xyz/f.bin",
                    Out),
            0);
}

TEST(ToolsTest, CheckCleanLogExitsZero) {
  std::string Path = tempLog("clean");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                       " --program multiset",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  EXPECT_NE(Out.find("no refinement violations"), std::string::npos)
      << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckBuggyLogExitsOneWithViolations) {
  std::string Path = tempLog("buggy");
  // The bug is probabilistic: try a few recordings.
  int RC = 0;
  std::string Out;
  for (int Try = 0; Try < 10 && RC == 0; ++Try) {
    recordLog(Path, true);
    RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                     " --program multiset --context 8",
                 Out);
  }
  EXPECT_EQ(RC, 1) << Out;
  EXPECT_NE(Out.find("violation"), std::string::npos) << Out;
  EXPECT_NE(Out.find("context of"), std::string::npos) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckIOModeWorks) {
  std::string Path = tempLog("iomode");
  recordLog(Path, false);
  std::string Out;
  int RC = runTool(std::string(VYRD_CHECK_PATH) + " " + Path +
                       " --program multiset --mode io",
                   Out);
  EXPECT_EQ(RC, 0) << Out;
  std::remove(Path.c_str());
}

TEST(ToolsTest, CheckRejectsBadUsage) {
  std::string Out;
  EXPECT_EQ(runTool(std::string(VYRD_CHECK_PATH) + " /tmp/x.bin "
                    "--program not-a-program",
                    Out),
            2);
  EXPECT_NE(Out.find("usage"), std::string::npos) << Out;
}
