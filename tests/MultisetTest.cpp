//===- MultisetTest.cpp - Tests for the array multiset ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "multiset/ArrayMultiset.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::multiset;
using namespace vyrd::harness;

namespace {

ArrayMultiset::Options opts(size_t Cap, bool Buggy = false) {
  ArrayMultiset::Options O;
  O.Capacity = Cap;
  O.BuggyFindSlot = Buggy;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Sequential semantics (uninstrumented)
//===----------------------------------------------------------------------===//

TEST(ArrayMultisetTest, InsertThenLookUp) {
  ArrayMultiset M(opts(8), Hooks());
  EXPECT_FALSE(M.lookUp(5));
  EXPECT_TRUE(M.insert(5));
  EXPECT_TRUE(M.lookUp(5));
}

TEST(ArrayMultisetTest, DeleteRemovesOneOccurrence) {
  ArrayMultiset M(opts(8), Hooks());
  EXPECT_TRUE(M.insert(5));
  EXPECT_TRUE(M.insert(5));
  EXPECT_TRUE(M.remove(5));
  EXPECT_TRUE(M.lookUp(5)) << "one copy remains";
  EXPECT_TRUE(M.remove(5));
  EXPECT_FALSE(M.lookUp(5));
  EXPECT_FALSE(M.remove(5)) << "now absent";
}

TEST(ArrayMultisetTest, InsertFailsWhenFull) {
  ArrayMultiset M(opts(2), Hooks());
  EXPECT_TRUE(M.insert(1));
  EXPECT_TRUE(M.insert(2));
  EXPECT_FALSE(M.insert(3));
}

TEST(ArrayMultisetTest, InsertPairAddsBoth) {
  ArrayMultiset M(opts(8), Hooks());
  EXPECT_TRUE(M.insertPair(10, 20));
  EXPECT_TRUE(M.lookUp(10));
  EXPECT_TRUE(M.lookUp(20));
}

TEST(ArrayMultisetTest, InsertPairFailureLeavesNoTrace) {
  ArrayMultiset M(opts(1), Hooks()); // room for one only
  EXPECT_FALSE(M.insertPair(10, 20));
  EXPECT_FALSE(M.lookUp(10)) << "all-or-nothing";
  EXPECT_FALSE(M.lookUp(20));
  EXPECT_TRUE(M.insert(30)) << "the reserved slot was released";
}

TEST(ArrayMultisetTest, SlotsAreReusedAfterDelete) {
  ArrayMultiset M(opts(2), Hooks());
  EXPECT_TRUE(M.insert(1));
  EXPECT_TRUE(M.insert(2));
  EXPECT_TRUE(M.remove(1));
  EXPECT_TRUE(M.insert(3));
  EXPECT_TRUE(M.lookUp(3));
}

//===----------------------------------------------------------------------===//
// Specification semantics
//===----------------------------------------------------------------------===//

TEST(MultisetSpecTest, InsertSuccessAddsToView) {
  MultisetSpec S;
  Vocab V = Vocab::get();
  View ViewS;
  S.buildView(ViewS);
  EXPECT_TRUE(S.applyMutator(V.Insert, {Value(5)}, Value(true), ViewS));
  EXPECT_EQ(S.count(5), 1u);
  EXPECT_EQ(ViewS.countKey(Value(5)), 1u);
}

TEST(MultisetSpecTest, InsertFailureIsAllowedAndNoOp) {
  MultisetSpec S;
  Vocab V = Vocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Insert, {Value(5)}, Value(false), ViewS));
  EXPECT_EQ(S.count(5), 0u);
}

TEST(MultisetSpecTest, DeleteSuccessRequiresPresence) {
  MultisetSpec S;
  Vocab V = Vocab::get();
  View ViewS;
  EXPECT_FALSE(S.applyMutator(V.Delete, {Value(5)}, Value(true), ViewS))
      << "successful delete of absent element is a violation";
  EXPECT_TRUE(S.applyMutator(V.Delete, {Value(5)}, Value(false), ViewS))
      << "failed delete is always permitted";
}

TEST(MultisetSpecTest, InsertPairAllOrNothing) {
  MultisetSpec S;
  Vocab V = Vocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.InsertPair, {Value(1), Value(2)},
                             Value(true), ViewS));
  EXPECT_EQ(S.count(1), 1u);
  EXPECT_EQ(S.count(2), 1u);
  EXPECT_TRUE(S.applyMutator(V.InsertPair, {Value(3), Value(4)},
                             Value(false), ViewS));
  EXPECT_EQ(S.count(3), 0u);
}

TEST(MultisetSpecTest, LookUpReturnAllowed) {
  MultisetSpec S;
  Vocab V = Vocab::get();
  View ViewS;
  EXPECT_TRUE(S.returnAllowed(V.LookUp, {Value(9)}, Value(false)));
  EXPECT_FALSE(S.returnAllowed(V.LookUp, {Value(9)}, Value(true)));
  S.applyMutator(V.Insert, {Value(9)}, Value(true), ViewS);
  EXPECT_TRUE(S.returnAllowed(V.LookUp, {Value(9)}, Value(true)));
  EXPECT_FALSE(S.returnAllowed(V.LookUp, {Value(9)}, Value(false)));
}

TEST(MultisetSpecTest, UnknownMethodRejected) {
  MultisetSpec S;
  View ViewS;
  EXPECT_FALSE(
      S.applyMutator(internName("Bogus"), {}, Value(true), ViewS));
}

//===----------------------------------------------------------------------===//
// Replayer semantics
//===----------------------------------------------------------------------===//

TEST(MultisetReplayerTest, ValidBitTogglesViewMembership) {
  auto R = KeyValueReplayer::guardedBag("A");
  View ViewI;
  R->buildView(ViewI);
  EXPECT_TRUE(ViewI.empty());
  R->applyUpdate(Action::write(0, Vocab::eltName(2), Value(42)), ViewI);
  EXPECT_TRUE(ViewI.empty()) << "reserved but not valid";
  R->applyUpdate(Action::write(0, Vocab::validName(2), Value(true)), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(42)), 1u);
  R->applyUpdate(Action::write(0, Vocab::validName(2), Value(false)),
                 ViewI);
  EXPECT_TRUE(ViewI.empty());
}

TEST(MultisetReplayerTest, OverwriteOfPublishedSlotSwapsViewEntry) {
  auto R = KeyValueReplayer::guardedBag("A");
  View ViewI;
  R->applyUpdate(Action::write(0, Vocab::eltName(0), Value(1)), ViewI);
  R->applyUpdate(Action::write(0, Vocab::validName(0), Value(true)), ViewI);
  // A buggy interleaving overwrites a published slot:
  R->applyUpdate(Action::write(1, Vocab::eltName(0), Value(2)), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(1)), 0u);
  EXPECT_EQ(ViewI.countKey(Value(2)), 1u);
}

TEST(MultisetReplayerTest, IncrementalMatchesRebuild) {
  auto R = KeyValueReplayer::guardedBag("A");
  View Inc;
  for (int I = 0; I < 8; ++I) {
    R->applyUpdate(Action::write(0, Vocab::eltName(I), Value(I * 11)), Inc);
    if (I % 2 == 0)
      R->applyUpdate(Action::write(0, Vocab::validName(I), Value(true)),
                     Inc);
  }
  View Fresh;
  R->buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh));
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

/// Runs the multiset scenario and returns the report.
VerifierReport runMultiset(bool Buggy, RunMode Mode, unsigned Threads,
                           unsigned Ops, uint64_t Seed,
                           bool StopAtFirst = false) {
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = StopAtFirst;
  SO.AuditPeriod = Buggy ? 0 : 256;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(MultisetVerifiedTest, CorrectConcurrentRunIsCleanViewMode) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R =
        runMultiset(false, RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
    EXPECT_GT(R.Stats.MethodsChecked, 0u);
  }
}

TEST(MultisetVerifiedTest, CorrectConcurrentRunIsCleanIOMode) {
  for (uint64_t Seed : {4, 5}) {
    VerifierReport R =
        runMultiset(false, RunMode::RM_OnlineIO, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(MultisetVerifiedTest, CorrectRunCleanOffline) {
  VerifierReport R = runMultiset(false, RunMode::RM_OfflineView, 4, 200, 7);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(MultisetVerifiedTest, BuggyFindSlotCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R =
        runMultiset(true, RunMode::RM_OnlineView, 8, 400, Seed, true);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "Fig. 5 bug not detected in 30 seeds";
}

TEST(MultisetVerifiedTest, BuggyFindSlotCaughtByIORefinement) {
  // I/O refinement needs an observer to witness the lost update, so it
  // typically takes longer (Table 1); give it more budget.
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R =
        runMultiset(true, RunMode::RM_OnlineIO, 8, 1500, Seed, true);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "Fig. 5 bug not detected by I/O mode in 30 seeds";
}

TEST(MultisetVerifiedTest, BuggyRunWithoutEarlyStopTerminates) {
  // Regression: under the injected FindSlot race, InsertPair's two
  // FindSlot calls could hand out the *same* slot (a concurrent buggy
  // reservation overwrote it and was then released), and the two-lock
  // publish block self-deadlocked. A full-length buggy run with no
  // early stop must terminate.
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    ScenarioOptions SO;
    SO.Prog = Program::P_MultisetVector;
    SO.Mode = RunMode::RM_LogOnlyView;
    SO.Buggy = true;
    Scenario S = makeScenario(SO);
    Chaos::enable(3, Seed);
    WorkloadOptions WO;
    WO.Threads = 8;
    WO.OpsPerThread = 250;
    WO.KeyPoolSize = 16;
    WO.Seed = Seed;
    WorkloadResult R = runWorkload(WO, S.Op);
    Chaos::disable();
    EXPECT_EQ(R.OpsIssued, 8u * 250u);
    (void)S.Finish();
  }
}

TEST(MultisetVerifiedTest, SequentialVerifiedRunChecksAllMethods) {
  VerifierReport R = runMultiset(false, RunMode::RM_OnlineView, 1, 500, 9);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 500u);
}
