//===- SnapshotTest.cpp - Spec-state snapshots and epoch checking ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the snapshot subsystem (docs/SNAPSHOTS.md): checker
/// saveState/restoreState round-trip equivalence across the Table 1
/// workloads, snapshot sidecars written at segment cuts (LOGFORMAT v5),
/// cold restart from a reclaimed chain (`vyrd-check --resume`
/// semantics), epoch-parallel checking equivalence with the serial
/// from-zero verdict, and the pessimistic stitching rule (a violation in
/// a later epoch forces the serial re-check).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Checker.h"
#include "vyrd/Epoch.h"
#include "vyrd/Instrument.h"
#include "vyrd/Log.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Serialize.h"
#include "vyrd/Snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

std::string tempBase(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-snaptest-" + Tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

/// Removes a chain's base path and any plausible segments and sidecars.
void removeChainAll(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 128; ++I) {
    std::remove(logSegmentPath(Base, I).c_str());
    std::remove(snapshotSidecarPath(Base, I).c_str());
  }
}

/// Records a single-program workload into \p SO.LogPath per the given
/// options and returns the recording run's report.
VerifierReport recordRun(ScenarioOptions SO, unsigned Threads,
                         unsigned OpsPerThread, uint64_t Seed,
                         bool Chaotic = true) {
  Scenario S = makeScenario(SO);
  if (Chaotic)
    Chaos::enable(4, static_cast<unsigned>(Seed % 13 + 1));
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = OpsPerThread;
  WO.KeyPoolSize = 16;
  WO.Seed = static_cast<unsigned>(Seed);
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  if (Chaotic)
    Chaos::disable();
  return S.Finish();
}

/// Records the composite (four-object) workload as a segmented chain with
/// snapshot sidecars.
VerifierReport recordCompositeChain(const std::string &Base,
                                    uint64_t SegmentBytes, bool Reclaim) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = SegmentBytes;
  SO.Backpressure.ReclaimSegments = Reclaim;
  SO.Snapshots = true;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 400;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  return S.Finish();
}

/// The stat fields that must be identical however the checker's work was
/// split across save/restore points (memo hits/misses and timings are
/// legitimately path-dependent, see docs/SNAPSHOTS.md).
void expectDeterministicStatsEq(const CheckerStats &A,
                                const CheckerStats &B) {
  EXPECT_EQ(A.ActionsFed, B.ActionsFed);
  EXPECT_EQ(A.MethodsChecked, B.MethodsChecked);
  EXPECT_EQ(A.CommitsProcessed, B.CommitsProcessed);
  EXPECT_EQ(A.ObserversChecked, B.ObserversChecked);
  EXPECT_EQ(A.ViewComparisons, B.ViewComparisons);
  EXPECT_EQ(A.Audits, B.Audits);
  EXPECT_EQ(A.SpecVersionBumps, B.SpecVersionBumps);
  // The memo table is dropped on restore, so hits turn into misses — but
  // the total number of evaluations the unmemoized checker would have
  // made is an invariant of the log, not of the split.
  EXPECT_EQ(A.ObsMemoHits + A.ObsMemoMisses,
            B.ObsMemoHits + B.ObsMemoMisses);
}

/// Feeds \p Records[From..To) into \p C (single-object logs: everything
/// belongs to object 0).
void feedRange(RefinementChecker &C, const std::vector<Action> &Records,
               size_t From, size_t To) {
  for (size_t I = From; I < To; ++I)
    C.feed(Records[I]);
}

} // namespace

//===----------------------------------------------------------------------===//
// Checker save/restore round-trip
//===----------------------------------------------------------------------===//

// For each of the paper's six workloads: recording a concurrent run,
// checking it in one pass, and checking it with a save/restore cut at
// fuzzed positions must agree on the verdict and on every deterministic
// stat. This is the soundness core of both --resume and --epochs.
TEST(SnapshotTest, SaveRestoreRoundTripMatchesUninterrupted) {
  std::vector<Program> Programs = allPrograms();
  ASSERT_EQ(Programs.size(), 6u);
  for (size_t PI = 0; PI < Programs.size(); ++PI) {
    Program P = Programs[PI];
    SCOPED_TRACE(programName(P));
    std::string Path = tempBase(programName(P));
    std::remove(Path.c_str());
    ScenarioOptions SO;
    SO.Prog = P;
    SO.Mode = RunMode::RM_LogOnlyView;
    SO.LogPath = Path;
    recordRun(SO, 4, 150, 1000 + PI);
    std::vector<Action> Records;
    ASSERT_TRUE(loadLogFile(Path, Records));
    ASSERT_GT(Records.size(), 20u);
    PipelineFactory Factory = makeProgramPipeline(P, /*ViewLevel=*/true);

    auto freshChecker = [&](std::unique_ptr<Spec> &S,
                            std::unique_ptr<Replayer> &R)
        -> std::unique_ptr<RefinementChecker> {
      std::string Name;
      if (!Factory(0, Name, S, R) || !S)
        return nullptr;
      return std::make_unique<RefinementChecker>(*S, R.get(),
                                                 CheckerConfig());
    };

    // Uninterrupted baseline.
    std::unique_ptr<Spec> S0;
    std::unique_ptr<Replayer> R0;
    auto Base = freshChecker(S0, R0);
    ASSERT_NE(Base, nullptr);
    feedRange(*Base, Records, 0, Records.size());
    Base->finish();
    ASSERT_TRUE(Base->violations().empty())
        << Base->violations().front().str();
    CheckerStats Want = Base->stats();

    // Fuzzed cut positions: same verdict, same deterministic stats.
    Rng Fuzz(0xC0FFEE00u + static_cast<uint64_t>(PI));
    for (int Trial = 0; Trial < 3; ++Trial) {
      size_t Cut =
          1 + static_cast<size_t>(Fuzz.range(Records.size() - 1));
      SCOPED_TRACE("cut at " + std::to_string(Cut));
      std::unique_ptr<Spec> S1;
      std::unique_ptr<Replayer> R1;
      auto First = freshChecker(S1, R1);
      feedRange(*First, Records, 0, Cut);
      ByteWriter W;
      ASSERT_TRUE(First->saveState(W));

      std::unique_ptr<Spec> S2;
      std::unique_ptr<Replayer> R2;
      auto Second = freshChecker(S2, R2);
      ByteReader Blob(W.buffer().data(), W.buffer().size());
      ASSERT_TRUE(Second->restoreState(Blob));
      feedRange(*Second, Records, Cut, Records.size());
      Second->finish();
      EXPECT_TRUE(Second->violations().empty())
          << Second->violations().front().str();
      expectDeterministicStatsEq(Want, Second->stats());
    }
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Sidecar writing during an online run
//===----------------------------------------------------------------------===//

// A clean file-backed online run with Snapshots on writes one sidecar per
// rotated-into segment, each carrying every object's blob with the
// segment's first sequence number as the watermark.
TEST(SnapshotTest, OnlineRunWritesSidecarsAtEveryCut) {
  std::string Base = tempBase("sidecars");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  SO.Snapshots = true;
  SO.Telemetry.Enabled = true;
  VerifierReport R = recordRun(SO, 4, 300, 42);
  ASSERT_TRUE(R.ok()) << R.str();

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  ASSERT_GE(Segs.size(), 3u) << "workload too small to rotate";
  size_t Sidecars = 0;
  for (size_t I = 0; I < Segs.size(); ++I) {
    if (I == 0) {
      EXPECT_EQ(Segs[I].Index, 1u);
      EXPECT_FALSE(Segs[I].HasSnapshot)
          << "segment 1 has no predecessor state to snapshot";
      continue;
    }
    ASSERT_TRUE(Segs[I].HasSnapshot)
        << "FileLog cuts are never late; every rotation must produce a "
           "sidecar on a clean run (segment "
        << Segs[I].Index << ")";
    ++Sidecars;
    EXPECT_EQ(Segs[I].Snap.Watermark, Segs[I].FirstSeq)
        << "the sidecar encodes state *before* the segment's first record";
    EXPECT_EQ(Segs[I].Snap.SegmentIndex, Segs[I].Index);
    ASSERT_EQ(Segs[I].Snap.Objects.size(), 1u);
    EXPECT_FALSE(Segs[I].Snap.Objects[0].Blob.empty());
  }
  ASSERT_TRUE(R.TelemetryEnabled);
  EXPECT_EQ(R.Telemetry.counter(Counter::C_SnapshotWrites), Sidecars);
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Epoch-parallel checking equivalence
//===----------------------------------------------------------------------===//

// On a clean multi-object chain the epoch-parallel verdict, stats and
// bookkeeping must match the serial from-zero check exactly.
TEST(SnapshotTest, EpochCheckMatchesFromZeroOnCleanChain) {
  std::string Base = tempBase("epochs");
  removeChainAll(Base);
  VerifierReport Rec = recordCompositeChain(Base, 24 * 1024,
                                            /*Reclaim=*/false);
  ASSERT_TRUE(Rec.ok()) << Rec.str();

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  size_t Sidecars = 0;
  for (const ChainSegment &Seg : Segs)
    Sidecars += Seg.HasSnapshot ? 1 : 0;
  ASSERT_GE(Sidecars, 2u) << "need several epochs to make the test count";

  EpochCheckOptions Zero;
  Zero.UseSnapshots = false;
  EpochReport A = epochCheck(Base, 4, makeCompositePipeline(true), Zero);
  ASSERT_TRUE(A.ok()) << A.Error << A.Report.str();
  EXPECT_EQ(A.Epochs, 1u);
  EXPECT_EQ(A.SnapshotLoads, 0u);

  Telemetry Hub;
  EpochCheckOptions Par;
  Par.UseSnapshots = true;
  Par.Threads = 4;
  Par.Telem = &Hub;
  EpochReport B = epochCheck(Base, 4, makeCompositePipeline(true), Par);
  ASSERT_TRUE(B.ok()) << B.Error << B.Report.str();
  EXPECT_EQ(B.Epochs, Sidecars + 1);
  EXPECT_EQ(B.Tasks, 4 * B.Epochs);
  EXPECT_EQ(B.SerialRechecks, 0u);
  EXPECT_EQ(B.SnapshotLoads, 4 * (B.Epochs - 1))
      << "every non-front epoch restores one blob per object";
  EXPECT_EQ(B.Report.LogRecords, A.Report.LogRecords);
  expectDeterministicStatsEq(A.Report.Stats, B.Report.Stats);
  ASSERT_EQ(B.Report.Objects.size(), 4u);
  for (size_t O = 0; O < 4; ++O) {
    EXPECT_EQ(B.Report.Objects[O].Name, A.Report.Objects[O].Name);
    EXPECT_EQ(B.Report.Objects[O].Records, A.Report.Objects[O].Records);
  }

  TelemetrySnapshot TS = Hub.snapshot();
  EXPECT_EQ(TS.counter(Counter::C_EpochsChecked), 4 * B.Epochs);
  EXPECT_EQ(TS.counter(Counter::C_SnapshotLoads), B.SnapshotLoads);
  EXPECT_EQ(TS.gauge(Gauge::G_EpochsInFlight), 0u)
      << "all in-flight epochs must have retired";
  EXPECT_GE(TS.gaugeHwm(Gauge::G_EpochsInFlight), 1u);
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Cold restart (--resume)
//===----------------------------------------------------------------------===//

// Deleting the checked prefix of a chain (what reclamation does after a
// crash) and resuming from the front sidecar must reproduce the from-zero
// verdict — including the cumulative stats, which the sidecar restores.
TEST(SnapshotTest, ResumeFromTruncatedChainMatchesFromZero) {
  std::string Base = tempBase("resume");
  removeChainAll(Base);
  VerifierReport Rec = recordCompositeChain(Base, 24 * 1024,
                                            /*Reclaim=*/false);
  ASSERT_TRUE(Rec.ok()) << Rec.str();

  EpochCheckOptions Zero;
  Zero.UseSnapshots = false;
  EpochReport A = epochCheck(Base, 4, makeCompositePipeline(true), Zero);
  ASSERT_TRUE(A.ok()) << A.Error;

  // Simulate the crashed verifier's reclaimed prefix: drop everything
  // before the first mid-chain segment that has a usable sidecar.
  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  size_t CutPos = 0;
  for (size_t I = 1; I < Segs.size() && !CutPos; ++I)
    if (Segs[I].HasSnapshot && Segs[I].Snap.Objects.size() == 4)
      CutPos = I;
  ASSERT_GT(CutPos, 0u) << "no usable sidecar in the chain";
  for (size_t I = 0; I < CutPos; ++I) {
    std::remove(Segs[I].Path.c_str());
    if (Segs[I].Index)
      std::remove(snapshotSidecarPath(Base, Segs[I].Index).c_str());
  }

  // Without a snapshot seed the truncated chain is unusable...
  EpochReport NoSeed = epochCheck(Base, 4, makeCompositePipeline(true),
                                  Zero);
  EXPECT_FALSE(NoSeed.Error.empty())
      << "a reclaimed prefix without a sidecar cannot seed a checker";

  // ...and with it, the cold restart reproduces the full-run verdict.
  Telemetry Hub;
  EpochCheckOptions Resume;
  Resume.ResumeOnly = true;
  Resume.Telem = &Hub;
  EpochReport B = epochCheck(Base, 4, makeCompositePipeline(true), Resume);
  ASSERT_TRUE(B.ok()) << B.Error << B.Report.str();
  EXPECT_EQ(B.Epochs, 1u) << "--resume never splits into epochs";
  EXPECT_EQ(B.SnapshotLoads, 4u);
  EXPECT_EQ(B.Report.LogRecords, A.Report.LogRecords)
      << "the resumed walk still reaches the end of the chain";
  // The sidecar restores running stats, so the resumed totals equal the
  // from-zero totals even though fewer records were re-fed.
  expectDeterministicStatsEq(A.Report.Stats, B.Report.Stats);
  TelemetrySnapshot TS = Hub.snapshot();
  EXPECT_GT(TS.gauge(Gauge::G_RestartLag), 0u)
      << "the restart began behind the chain's end";
  removeChainAll(Base);
}

// The integration variant: a run with reclamation enabled leaves a chain
// whose prefix is really gone, and the resume path picks it up.
TEST(SnapshotTest, ResumeAfterRealReclamation) {
  std::string Base = tempBase("reclaimed");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = true;
  SO.Snapshots = true;
  VerifierReport Rec = recordRun(SO, 4, 400, 77);
  ASSERT_TRUE(Rec.ok()) << Rec.str();

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  ASSERT_GT(Segs.front().Index, 1u)
      << "reclamation should have deleted the checked prefix";
  ASSERT_TRUE(Segs.front().HasSnapshot)
      << "the oldest live segment must carry its sidecar";

  EpochCheckOptions Resume;
  Resume.ResumeOnly = true;
  EpochReport B = epochCheck(Base, 1,
                             makeProgramPipeline(Program::P_MultisetVector,
                                                 /*ViewLevel=*/true),
                             Resume);
  ASSERT_TRUE(B.ok()) << B.Error << B.Report.str();
  EXPECT_EQ(B.Epochs, 1u);
  EXPECT_EQ(B.SnapshotLoads, 1u);
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Stitching: violations and corrupt sidecars
//===----------------------------------------------------------------------===//

// A violation in an epoch after the first must trigger exactly one serial
// re-check for the object, and the final verdict must equal the serial
// from-zero check of the same chain.
TEST(SnapshotTest, ViolationInLaterEpochForcesSerialRecheck) {
  std::string Base = tempBase("stitch");
  // The injected multiset bug is probabilistic: retry until a recording
  // has both a violation and at least one sidecar *before* it (so the
  // violating record lands in an epoch that restored from a snapshot).
  // 2 KiB segments rotate within the first few dozen records, so almost
  // any violation lands after the first sidecar.
  bool Got = false;
  std::string Tries;
  for (int Try = 0; Try < 30 && !Got; ++Try) {
    removeChainAll(Base);
    ScenarioOptions SO;
    SO.Prog = Program::P_MultisetVector;
    SO.Mode = RunMode::RM_OnlineView;
    SO.LogPath = Base;
    SO.Buggy = true;
    SO.Backpressure.SegmentBytes = 2 * 1024;
    SO.Backpressure.ReclaimSegments = false;
    SO.Snapshots = true;
    VerifierReport Rec = recordRun(SO, 6, 300, 9000 + Try);
    if (Rec.Violations.empty()) {
      Tries += "try " + std::to_string(Try) + ": clean\n";
      continue;
    }
    std::vector<ChainSegment> Segs;
    if (!enumerateChain(Base, Segs))
      continue;
    uint64_t FirstWatermark = 0;
    for (const ChainSegment &Seg : Segs)
      if (Seg.HasSnapshot && !FirstWatermark)
        FirstWatermark = Seg.Snap.Watermark;
    Tries += "try " + std::to_string(Try) + ": violation at " +
             std::to_string(Rec.Violations.front().Seq) +
             ", first watermark " + std::to_string(FirstWatermark) + "\n";
    if (FirstWatermark && FirstWatermark < Rec.Violations.front().Seq)
      Got = true;
  }
  ASSERT_TRUE(Got) << "could not provoke the multiset bug after a "
                      "rotation; attempts:\n"
                   << Tries;

  EpochCheckOptions Zero;
  Zero.UseSnapshots = false;
  PipelineFactory F =
      makeProgramPipeline(Program::P_MultisetVector, /*ViewLevel=*/true);
  EpochReport A = epochCheck(Base, 1, F, Zero);
  ASSERT_TRUE(A.Error.empty()) << A.Error;
  ASSERT_FALSE(A.Report.Violations.empty())
      << "the recorded violation must reproduce offline";

  EpochCheckOptions Par;
  Par.UseSnapshots = true;
  Par.Threads = 4;
  EpochReport B = epochCheck(Base, 1, F, Par);
  ASSERT_TRUE(B.Error.empty()) << B.Error;
  EXPECT_GE(B.Epochs, 2u);
  EXPECT_EQ(B.SerialRechecks, 1u)
      << "one object, one bad epoch, one serial re-check";
  ASSERT_EQ(B.Report.Violations.size(), A.Report.Violations.size());
  EXPECT_EQ(B.Report.Violations.front().Seq, A.Report.Violations.front().Seq);
  EXPECT_EQ(B.Report.Violations.front().Kind,
            A.Report.Violations.front().Kind);
  removeChainAll(Base);
}

// A corrupted sidecar is not an error: the segment merges into the
// previous epoch and the check proceeds with one epoch fewer.
TEST(SnapshotTest, CorruptSidecarMergesIntoPreviousEpoch) {
  std::string Base = tempBase("corrupt");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  SO.Snapshots = true;
  VerifierReport Rec = recordRun(SO, 4, 300, 5);
  ASSERT_TRUE(Rec.ok()) << Rec.str();

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  std::vector<uint64_t> WithSnap;
  for (const ChainSegment &Seg : Segs)
    if (Seg.HasSnapshot)
      WithSnap.push_back(Seg.Index);
  ASSERT_GE(WithSnap.size(), 2u);

  PipelineFactory F =
      makeProgramPipeline(Program::P_MultisetVector, /*ViewLevel=*/true);
  EpochCheckOptions Par;
  Par.UseSnapshots = true;
  Par.Threads = 2;
  EpochReport Before = epochCheck(Base, 1, F, Par);
  ASSERT_TRUE(Before.ok()) << Before.Error;
  EXPECT_EQ(Before.Epochs, WithSnap.size() + 1);

  // Scribble over a mid-chain sidecar.
  std::string Victim =
      snapshotSidecarPath(Base, WithSnap[WithSnap.size() / 2]);
  FILE *Fp = std::fopen(Victim.c_str(), "wb");
  ASSERT_NE(Fp, nullptr);
  std::fputs("this is not a snapshot", Fp);
  std::fclose(Fp);

  EpochReport After = epochCheck(Base, 1, F, Par);
  ASSERT_TRUE(After.ok()) << After.Error << After.Report.str();
  EXPECT_EQ(After.Epochs, Before.Epochs - 1)
      << "the corrupt sidecar's segment merges into the previous epoch";
  EXPECT_EQ(After.SerialRechecks, 0u);
  expectDeterministicStatsEq(Before.Report.Stats, After.Report.Stats);
  removeChainAll(Base);
}

//===----------------------------------------------------------------------===//
// Graceful degradation and config validation
//===----------------------------------------------------------------------===//

// A spec without snapshot support (ScanFs declines saveState) degrades to
// skipped sidecars — the run itself must stay clean and the chain still
// checks from zero.
TEST(SnapshotTest, UnsupportedSpecSkipsSidecarsGracefully) {
  std::string Base = tempBase("scanfs");
  removeChainAll(Base);
  ScenarioOptions SO;
  SO.Prog = Program::P_ScanFs;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  SO.Backpressure.SegmentBytes = 8 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  SO.Snapshots = true;
  SO.Telemetry.Enabled = true;
  VerifierReport Rec = recordRun(SO, 4, 250, 11, /*Chaotic=*/false);
  ASSERT_TRUE(Rec.ok()) << Rec.str();
  ASSERT_TRUE(Rec.TelemetryEnabled);
  EXPECT_EQ(Rec.Telemetry.counter(Counter::C_SnapshotWrites), 0u);
  EXPECT_GE(Rec.Telemetry.counter(Counter::C_SnapshotSkips), 1u)
      << "every cut must be skipped when the spec cannot serialize";

  std::vector<ChainSegment> Segs;
  ASSERT_TRUE(enumerateChain(Base, Segs));
  for (const ChainSegment &Seg : Segs)
    EXPECT_FALSE(Seg.HasSnapshot);

  // The chain is complete (segment 1 onward), so from-zero still works.
  EpochCheckOptions Par;
  Par.UseSnapshots = true;
  EpochReport ER = epochCheck(Base, 1,
                              makeProgramPipeline(Program::P_ScanFs,
                                                  /*ViewLevel=*/true),
                              Par);
  ASSERT_TRUE(ER.ok()) << ER.Error << ER.Report.str();
  EXPECT_EQ(ER.Epochs, 1u);
  EXPECT_EQ(ER.SnapshotLoads, 0u);
  removeChainAll(Base);
}

TEST(SnapshotTest, ConfigValidationGatesSnapshots) {
  VerifierConfig VC;
  VC.Snapshots = true;
  EXPECT_FALSE(VC.validate().empty())
      << "snapshots without segmentation must be rejected";
  VC.Backpressure.SegmentBytes = 1 << 20;
  EXPECT_FALSE(VC.validate().empty())
      << "snapshots without a file-backed log must be rejected";
  VC.LogFilePath = "/tmp/vyrd-snaptest-validate.bin";
  EXPECT_TRUE(VC.validate().empty()) << VC.validate();
  VC.Backend = LogBackend::LB_Memory;
  EXPECT_FALSE(VC.validate().empty());
}
