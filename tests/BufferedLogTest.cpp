//===- BufferedLogTest.cpp - Tests for the sharded log backend ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The properties the refinement checker depends on, checked under real
// concurrency: sequence numbers form a dense total order, records are
// consumed in exactly that order, and each producer thread's program
// order embeds into it. The stress tests deliberately use tiny shard
// capacities so the backpressure path runs; CI additionally runs this
// binary under -fsanitize=thread.
//
//===----------------------------------------------------------------------===//

#include "vyrd/BufferedLog.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <thread>

using namespace vyrd;

namespace {

std::string tempPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-bufferedlog-" + Tag +
         "-" + std::to_string(::getpid()) + ".bin";
}

/// Appends Ops records from each of NumThreads producers; each record
/// carries (logical thread id, per-thread counter) so order can be
/// audited after the fact.
void produce(BufferedLog &L, unsigned NumThreads, unsigned Ops) {
  Name M = internName("op");
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < NumThreads; ++T)
    Ts.emplace_back([&, T] {
      LogWriter &W = L.writer();
      for (unsigned I = 0; I < Ops; ++I)
        W.append(Action::call(T, M, {Value(static_cast<int64_t>(I))}));
    });
  for (auto &T : Ts)
    T.join();
}

/// Asserts the consumed stream is seq-dense and preserves each logical
/// thread's program order (the counter in Args[0]).
void auditOrder(const std::vector<Action> &Got, unsigned NumThreads,
                unsigned Ops) {
  ASSERT_EQ(Got.size(), static_cast<size_t>(NumThreads) * Ops);
  std::map<ThreadId, int64_t> NextPerThread;
  for (size_t I = 0; I < Got.size(); ++I) {
    EXPECT_EQ(Got[I].Seq, I) << "global order must be seq-dense";
    int64_t &Next = NextPerThread[Got[I].Tid];
    EXPECT_EQ(Got[I].Args[0], Value(Next))
        << "thread " << Got[I].Tid << " program order broken at seq " << I;
    ++Next;
  }
  for (auto &[Tid, Next] : NextPerThread)
    EXPECT_EQ(Next, static_cast<int64_t>(Ops)) << "thread " << Tid;
}

} // namespace

TEST(BufferedLogTest, StressPreservesTotalAndPerThreadOrder) {
  constexpr unsigned NumThreads = 4, Ops = 5000;
  BufferedLog::Options O;
  O.ShardCapacity = 64; // small: force the backpressure path
  BufferedLog L(O);

  // Concurrent consumer, batched like Verifier::pump.
  std::vector<Action> Got;
  std::thread Reader([&] {
    std::vector<Action> Batch;
    while (L.nextBatch(Batch, 128))
      for (Action &A : Batch)
        Got.push_back(std::move(A));
  });
  produce(L, NumThreads, Ops);
  L.close();
  Reader.join();

  EXPECT_EQ(L.appendCount(), static_cast<uint64_t>(NumThreads) * Ops);
  EXPECT_EQ(L.shardCount(), NumThreads);
  auditOrder(Got, NumThreads, Ops);
}

TEST(BufferedLogTest, DrainAfterCloseWithNoConcurrentReader) {
  constexpr unsigned NumThreads = 3, Ops = 400;
  BufferedLog L;
  produce(L, NumThreads, Ops);
  L.close();
  std::vector<Action> Got;
  Action A;
  while (L.next(A))
    Got.push_back(std::move(A));
  auditOrder(Got, NumThreads, Ops);
}

TEST(BufferedLogTest, AppendReturnsTheTicket) {
  BufferedLog L;
  Name M = internName("t");
  EXPECT_EQ(L.append(Action::call(0, M, {})), 0u);
  EXPECT_EQ(L.append(Action::commit(0)), 1u);
  EXPECT_EQ(L.append(Action::ret(0, M, Value(true))), 2u);
  EXPECT_EQ(L.appendCount(), 3u);
  L.close();
}

TEST(BufferedLogTest, NextBatchRespectsMax) {
  BufferedLog L;
  for (int I = 0; I < 10; ++I)
    L.append(Action::commit(0));
  L.close();
  std::vector<Action> Batch;
  ASSERT_TRUE(L.nextBatch(Batch, 4));
  EXPECT_EQ(Batch.size(), 4u);
  EXPECT_EQ(Batch[0].Seq, 0u);
  ASSERT_TRUE(L.nextBatch(Batch, 100));
  EXPECT_EQ(Batch.size(), 6u);
  EXPECT_FALSE(L.nextBatch(Batch, 4));
  EXPECT_TRUE(Batch.empty());
}

TEST(BufferedLogTest, TryNextReportsPendingVsEnd) {
  BufferedLog L;
  Action A;
  bool End = true;
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_FALSE(End) << "log still open: not at end";
  L.append(Action::commit(5));
  L.close(); // joins the flusher: the record is now in the global order
  ASSERT_TRUE(L.tryNext(A, End));
  EXPECT_EQ(A.Tid, 5u);
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_TRUE(End);
}

TEST(BufferedLogTest, BlockingReaderWakesOnAppend) {
  BufferedLog L;
  Action Got;
  std::thread Reader([&] { ASSERT_TRUE(L.next(Got)); });
  L.append(Action::commit(7));
  Reader.join();
  EXPECT_EQ(Got.Kind, ActionKind::AK_Commit);
  EXPECT_EQ(Got.Tid, 7u);
  L.close();
}

TEST(BufferedLogTest, FileRoundTripPreservesMergedOrder) {
  constexpr unsigned NumThreads = 4, Ops = 1000;
  std::string Path = tempPath("roundtrip");
  {
    BufferedLog::Options O;
    O.ShardCapacity = 32;
    O.FilePath = Path;
    O.RetainRecords = false; // file is the only sink
    BufferedLog L(O);
    ASSERT_TRUE(L.valid());
    produce(L, NumThreads, Ops);
    L.close();
    EXPECT_GT(L.byteCount(), 0u);
    Action A;
    EXPECT_FALSE(L.next(A)) << "RetainRecords=false keeps nothing";
  }
  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  auditOrder(Loaded, NumThreads, Ops);
  std::remove(Path.c_str());
}

TEST(BufferedLogTest, InvalidFilePathReportsInvalid) {
  BufferedLog::Options O;
  O.FilePath = "/nonexistent-dir-xyz/file.bin";
  BufferedLog L(O);
  EXPECT_FALSE(L.valid());
  L.close();
}

TEST(BufferedLogTest, ManyLogsShareTheThreadShardCache) {
  // More live logs than thread-local cache ways: every append still lands
  // in the right log via the registry slow path.
  constexpr size_t NumLogs = 6;
  constexpr int Rounds = 50;
  std::vector<std::unique_ptr<BufferedLog>> Logs;
  for (size_t I = 0; I < NumLogs; ++I)
    Logs.push_back(std::make_unique<BufferedLog>());
  for (int R = 0; R < Rounds; ++R)
    for (auto &L : Logs)
      L->append(Action::commit(0));
  for (auto &L : Logs) {
    L->close();
    EXPECT_EQ(L->appendCount(), static_cast<uint64_t>(Rounds));
    Action A;
    uint64_t Expected = 0;
    while (L->next(A))
      EXPECT_EQ(A.Seq, Expected++);
    EXPECT_EQ(Expected, static_cast<uint64_t>(Rounds));
  }
}

TEST(BufferedLogTest, WriterIsStablePerThread) {
  BufferedLog L;
  LogWriter &W1 = L.writer();
  LogWriter &W2 = L.writer();
  EXPECT_EQ(&W1, &W2);
  LogWriter *Other = nullptr;
  std::thread T([&] { Other = &L.writer(); });
  T.join();
  EXPECT_NE(&W1, Other) << "each thread gets its own shard";
  EXPECT_EQ(L.shardCount(), 2u);
  L.close();
}
