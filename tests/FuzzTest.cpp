//===- FuzzTest.cpp - Randomized robustness sweeps --------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized robustness properties:
///  * the checker survives arbitrary (including ill-formed) action
///    streams without crashing, reporting instrumentation violations
///    instead;
///  * the serializer round-trips arbitrary records exactly and rejects
///    corrupted bytes cleanly;
///  * the incremental View agrees with a reference std::multimap under
///    random mutation sequences.
///
//===----------------------------------------------------------------------===//

#include "harness/Workload.h"
#include "vyrd/Checker.h"
#include "vyrd/Serialize.h"
#include "vyrd/View.h"

#include <gtest/gtest.h>

#include <map>

using namespace vyrd;
using harness::Rng;

namespace {

/// A minimal always-permissive spec for fuzzing: every mutator is
/// enabled, every observer return allowed.
class PermissiveSpec : public Spec {
public:
  PermissiveSpec() : Obs(internName("fuzz.obs")) {}
  bool isObserver(Name Method) const override { return Method == Obs; }
  bool applyMutator(Name, const ValueList &, const Value &,
                    View &) override {
    return true;
  }
  bool returnAllowed(Name, const ValueList &, const Value &) const override {
    return true;
  }
  void buildView(View &Out) const override { Out.clear(); }
  Name Obs;
};

/// A replayer that tolerates any update (tracks nothing).
class PermissiveReplayer : public Replayer {
public:
  void applyUpdate(const Action &, View &) override {}
  void buildView(View &Out) const override { Out.clear(); }
};

Value randomValue(Rng &R) {
  switch (R.range(5)) {
  case 0:
    return Value();
  case 1:
    return Value(R.range(2) == 0);
  case 2:
    return Value(static_cast<int64_t>(R.next()));
  case 3: {
    std::string S;
    for (uint64_t I = 0, N = R.range(12); I < N; ++I)
      S.push_back(static_cast<char>('a' + R.range(26)));
    return Value(S);
  }
  default: {
    Value::Bytes B(R.range(16));
    for (uint8_t &X : B)
      X = static_cast<uint8_t>(R.next());
    return Value(std::move(B));
  }
  }
}

Action randomAction(Rng &R, Name Mut, Name Obs, Name Var) {
  ThreadId T = static_cast<ThreadId>(R.range(4));
  switch (R.range(7)) {
  case 0:
    return Action::call(T, R.range(3) == 0 ? Obs : Mut,
                        {randomValue(R)});
  case 1:
    return Action::ret(T, Mut, randomValue(R));
  case 2:
    return Action::commit(T);
  case 3:
    return Action::write(T, Var, randomValue(R));
  case 4:
    return Action::blockBegin(T);
  case 5:
    return Action::blockEnd(T);
  default:
    return Action::replayOp(T, Var, {randomValue(R), randomValue(R)});
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Checker robustness
//===----------------------------------------------------------------------===//

class CheckerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CheckerFuzz, ArbitraryStreamsNeverCrash) {
  Rng R(GetParam());
  Name Mut = internName("fuzz.mut");
  Name Obs = internName("fuzz.obs");
  Name Var = internName("fuzz.var");
  for (CheckMode Mode :
       {CheckMode::CM_IORefinement, CheckMode::CM_ViewRefinement}) {
    PermissiveSpec Spec;
    PermissiveReplayer Replay;
    CheckerConfig CC;
    CC.MaxViolations = 8;
    CC.Mode = Mode;
    RefinementChecker C(Spec, &Replay, CC);
    uint64_t Seq = 0;
    for (int I = 0; I < 400; ++I) {
      Action A = randomAction(R, Mut, Obs, Var);
      A.Seq = Seq++;
      C.feed(A);
    }
    C.finish();
    // Ill-formed streams yield instrumentation reports, never crashes;
    // the checker's own accounting stays consistent.
    EXPECT_LE(C.violations().size(), 8u);
    for (const Violation &V : C.violations())
      EXPECT_FALSE(V.str().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerFuzz,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// Serializer round-trip / rejection
//===----------------------------------------------------------------------===//

class SerializeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializeFuzz, RandomRecordsRoundTripExactly) {
  Rng R(GetParam() * 131 + 7);
  Name Mut = internName("fuzz.mut");
  Name Obs = internName("fuzz.obs");
  Name Var = internName("fuzz.var");
  std::vector<Action> Script;
  for (int I = 0; I < 200; ++I) {
    Action A = randomAction(R, Mut, Obs, Var);
    A.Seq = static_cast<uint64_t>(I);
    Script.push_back(std::move(A));
  }
  ActionEncoder Enc;
  ByteWriter W;
  for (const Action &A : Script)
    Enc.encode(A, W);

  ByteReader Rd(W.buffer().data(), W.size());
  ActionDecoder Dec;
  for (const Action &Expected : Script) {
    Action Got;
    ASSERT_TRUE(Dec.decode(Rd, Got));
    EXPECT_EQ(Got.Kind, Expected.Kind);
    EXPECT_EQ(Got.Tid, Expected.Tid);
    EXPECT_EQ(Got.Seq, Expected.Seq);
    EXPECT_EQ(Got.Method, Expected.Method);
    EXPECT_EQ(Got.Var, Expected.Var);
    EXPECT_EQ(Got.Ret, Expected.Ret);
    EXPECT_EQ(Got.Ret, Expected.Ret);
    ASSERT_EQ(Got.Args.size(), Expected.Args.size());
    for (size_t I = 0; I < Got.Args.size(); ++I)
      EXPECT_EQ(Got.Args[I], Expected.Args[I]);
  }
  EXPECT_TRUE(Rd.atEnd());
}

TEST_P(SerializeFuzz, CorruptedBytesRejectedCleanly) {
  Rng R(GetParam() * 977 + 3);
  // Encode a few records, then corrupt one byte and decode everything:
  // the decoder must either keep decoding valid records or return false,
  // never crash or loop.
  Name Mut = internName("fuzz.mut");
  ActionEncoder Enc;
  ByteWriter W;
  for (int I = 0; I < 20; ++I) {
    Action A = Action::call(0, Mut, {randomValue(R)});
    Enc.encode(A, W);
  }
  std::vector<uint8_t> Bytes = W.buffer();
  Bytes[R.range(Bytes.size())] ^= static_cast<uint8_t>(1 + R.range(255));

  ByteReader Rd(Bytes.data(), Bytes.size());
  ActionDecoder Dec;
  Action Out;
  int Decoded = 0;
  while (!Rd.atEnd() && Dec.decode(Rd, Out) && Decoded < 1000)
    ++Decoded;
  EXPECT_LE(Decoded, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeFuzz,
                         ::testing::Range<uint64_t>(1, 21));

//===----------------------------------------------------------------------===//
// View vs reference differential
//===----------------------------------------------------------------------===//

class ViewFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ViewFuzz, AgreesWithReferenceMultiset) {
  Rng R(GetParam() * 31337 + 11);
  View V;
  std::map<std::pair<int64_t, int64_t>, size_t> Ref;
  size_t RefTotal = 0;

  for (int I = 0; I < 2000; ++I) {
    int64_t K = static_cast<int64_t>(R.range(12));
    int64_t Val = static_cast<int64_t>(R.range(4));
    if (R.percent(55)) {
      V.add(Value(K), Value(Val));
      ++Ref[{K, Val}];
      ++RefTotal;
    } else {
      bool Removed = V.remove(Value(K), Value(Val));
      auto It = Ref.find({K, Val});
      EXPECT_EQ(Removed, It != Ref.end());
      if (It != Ref.end()) {
        if (--It->second == 0)
          Ref.erase(It);
        --RefTotal;
      }
    }
  }

  EXPECT_EQ(V.size(), RefTotal);
  for (const auto &[KV, N] : Ref)
    EXPECT_EQ(V.count(Value(KV.first), Value(KV.second)), N);

  // A fresh view with identical contents must compare equal by digest.
  View Fresh;
  for (const auto &[KV, N] : Ref)
    for (size_t I = 0; I < N; ++I)
      Fresh.add(Value(KV.first), Value(KV.second));
  EXPECT_EQ(V, Fresh);
  EXPECT_TRUE(V.deepEquals(Fresh));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewFuzz,
                         ::testing::Range<uint64_t>(1, 21));
