//===- ScanFsTest.cpp - Tests for the MiniScan file system -----------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "scanfs/ScanFs.h"
#include "scanfs/ScanFsSpec.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::scanfs;
using namespace vyrd::harness;

namespace {

struct FsRig {
  chunk::ChunkManager CM;
  cache::BoxCache Cache;
  ScanFs Fs;

  explicit FsRig(bool Buggy = false)
      : Cache(CM, cacheOpts(), Hooks()), Fs(Cache, CM, fsOpts(Buggy),
                                            Hooks()) {}

  static cache::BoxCache::Options cacheOpts() {
    cache::BoxCache::Options O;
    O.ChunkSize = 768;
    return O;
  }
  static ScanFs::Options fsOpts(bool Buggy) {
    ScanFs::Options O;
    O.MaxFiles = 8;
    O.MaxBlocksPerFile = 4;
    O.BlockSize = 16;
    O.BuggyEagerInodePublish = Buggy;
    return O;
  }
};

Bytes bytes(const std::string &S) { return Bytes(S.begin(), S.end()); }

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

TEST(ScanFsImagesTest, InodeRoundTrip) {
  Inode I;
  I.Used = true;
  I.Size = 77;
  I.Blocks = {5, 9, 13};
  Inode Out;
  ASSERT_TRUE(Inode::deserialize(I.serialize(), Out));
  EXPECT_TRUE(Out.Used);
  EXPECT_EQ(Out.Size, 77u);
  EXPECT_EQ(Out.Blocks, (std::vector<uint64_t>{5, 9, 13}));
}

TEST(ScanFsImagesTest, DirectoryRoundTrip) {
  Directory D;
  D.Entries = {{"a", 1}, {"zz", 7}};
  Directory Out;
  ASSERT_TRUE(Directory::deserialize(D.serialize(), Out));
  EXPECT_EQ(Out.Entries, D.Entries);
}

//===----------------------------------------------------------------------===//
// Sequential semantics
//===----------------------------------------------------------------------===//

TEST(ScanFsTest, CreateWriteReadUnlink) {
  FsRig R;
  EXPECT_TRUE(R.Fs.read("a").isNull());
  EXPECT_TRUE(R.Fs.create("a"));
  EXPECT_EQ(R.Fs.read("a"), Value(Bytes()));
  EXPECT_TRUE(R.Fs.write("a", bytes("hello world")));
  EXPECT_EQ(R.Fs.read("a"), Value(bytes("hello world")));
  EXPECT_TRUE(R.Fs.unlink("a"));
  EXPECT_TRUE(R.Fs.read("a").isNull());
}

TEST(ScanFsTest, CreateDuplicateFails) {
  FsRig R;
  EXPECT_TRUE(R.Fs.create("a"));
  EXPECT_FALSE(R.Fs.create("a"));
}

TEST(ScanFsTest, UnlinkAbsentFails) {
  FsRig R;
  EXPECT_FALSE(R.Fs.unlink("nope"));
}

TEST(ScanFsTest, WriteToAbsentFails) {
  FsRig R;
  EXPECT_FALSE(R.Fs.write("nope", bytes("x")));
}

TEST(ScanFsTest, InodeExhaustionFailsCreate) {
  FsRig R; // MaxFiles = 8
  for (int I = 0; I < 8; ++I)
    EXPECT_TRUE(R.Fs.create("f" + std::to_string(I)));
  EXPECT_FALSE(R.Fs.create("one-too-many"));
  EXPECT_TRUE(R.Fs.unlink("f3"));
  EXPECT_TRUE(R.Fs.create("reuses-inode"));
}

TEST(ScanFsTest, SizeLimitEnforced) {
  FsRig R; // 4 blocks x 16 bytes
  EXPECT_TRUE(R.Fs.create("a"));
  EXPECT_TRUE(R.Fs.write("a", Bytes(64, 0x7)));
  EXPECT_FALSE(R.Fs.write("a", Bytes(65, 0x7)));
  EXPECT_EQ(R.Fs.read("a"), Value(Bytes(64, 0x7)))
      << "failed write leaves contents intact";
}

TEST(ScanFsTest, MultiBlockContents) {
  FsRig R;
  Bytes Big(50);
  for (size_t I = 0; I < Big.size(); ++I)
    Big[I] = static_cast<uint8_t>(I * 3);
  EXPECT_TRUE(R.Fs.create("big"));
  EXPECT_TRUE(R.Fs.write("big", Big));
  EXPECT_EQ(R.Fs.read("big"), Value(Big));
}

TEST(ScanFsTest, AppendConcatenates) {
  FsRig R;
  EXPECT_TRUE(R.Fs.create("a"));
  EXPECT_TRUE(R.Fs.append("a", bytes("foo")));
  EXPECT_TRUE(R.Fs.append("a", bytes("bar")));
  EXPECT_EQ(R.Fs.read("a"), Value(bytes("foobar")));
  EXPECT_FALSE(R.Fs.append("nope", bytes("x")));
}

TEST(ScanFsTest, ListIsSorted) {
  FsRig R;
  EXPECT_EQ(R.Fs.list(), "");
  R.Fs.create("zeta");
  R.Fs.create("alpha");
  R.Fs.create("mid");
  EXPECT_EQ(R.Fs.list(), "alpha\nmid\nzeta");
}

TEST(ScanFsTest, SyncFlushesCache) {
  FsRig R;
  R.Fs.create("a");
  R.Fs.write("a", bytes("persist-me"));
  EXPECT_GT(R.Fs.sync(), 0);
  EXPECT_EQ(R.Cache.dirtyCount(), 0u);
  EXPECT_EQ(R.Fs.read("a"), Value(bytes("persist-me")));
}

TEST(ScanFsTest, RewriteUsesFreshBlocks) {
  FsRig R;
  R.Fs.create("a");
  size_t Before = R.CM.chunkCount();
  R.Fs.write("a", bytes("v1"));
  R.Fs.write("a", bytes("v2"));
  EXPECT_GT(R.CM.chunkCount(), Before + 1)
      << "write-optimized: rewrites allocate fresh blocks";
  EXPECT_EQ(R.Fs.read("a"), Value(bytes("v2")));
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(ScanFsSpecTest, CreateUnlinkSemantics) {
  ScanFsSpec S(4);
  FsVocab V = FsVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.Create, {Value("a")}, Value(true), ViewS));
  EXPECT_FALSE(S.applyMutator(V.Create, {Value("a")}, Value(true), ViewS))
      << "creating an existing name cannot succeed";
  EXPECT_TRUE(S.applyMutator(V.Create, {Value("a")}, Value(false), ViewS));
  EXPECT_FALSE(
      S.applyMutator(V.Unlink, {Value("a")}, Value(false), ViewS))
      << "unlink of an existing file cannot fail";
  EXPECT_TRUE(S.applyMutator(V.Unlink, {Value("a")}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Unlink, {Value("a")}, Value(false), ViewS));
}

TEST(ScanFsSpecTest, WriteAppendSemantics) {
  ScanFsSpec S(4);
  FsVocab V = FsVocab::get();
  View ViewS;
  S.applyMutator(V.Create, {Value("a")}, Value(true), ViewS);
  EXPECT_TRUE(S.applyMutator(V.Write, {Value("a"), Value(Bytes{1, 2})},
                             Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Append, {Value("a"), Value(Bytes{3})},
                             Value(true), ViewS));
  ASSERT_NE(S.contents("a"), nullptr);
  EXPECT_EQ(*S.contents("a"), (Bytes{1, 2, 3}));
  EXPECT_FALSE(S.applyMutator(V.Write, {Value("nope"), Value(Bytes{1})},
                              Value(true), ViewS));
}

TEST(ScanFsSpecTest, Observers) {
  ScanFsSpec S(4);
  FsVocab V = FsVocab::get();
  View ViewS;
  S.applyMutator(V.Create, {Value("b")}, Value(true), ViewS);
  S.applyMutator(V.Create, {Value("a")}, Value(true), ViewS);
  S.applyMutator(V.Write, {Value("a"), Value(Bytes{9})}, Value(true),
                 ViewS);
  EXPECT_TRUE(S.returnAllowed(V.Read, {Value("a")}, Value(Bytes{9})));
  EXPECT_FALSE(S.returnAllowed(V.Read, {Value("a")}, Value(Bytes{8})));
  EXPECT_TRUE(S.returnAllowed(V.Read, {Value("zz")}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.List, {}, Value("a\nb")));
  EXPECT_FALSE(S.returnAllowed(V.List, {}, Value("b\na")));
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

namespace {

Action dirOp(const Directory &D) {
  return Action::replayOp(0, FsVocab::get().OpDir, {Value(D.serialize())});
}
Action inodeOp(uint32_t Idx, const Inode &I) {
  return Action::replayOp(0, FsVocab::get().OpInode,
                          {Value(Idx), Value(I.serialize())});
}
Action blockOp(uint64_t H, Bytes B) {
  return Action::replayOp(
      0, FsVocab::get().OpBlock,
      {Value(static_cast<int64_t>(H)), Value(std::move(B))});
}

} // namespace

TEST(ScanFsReplayerTest, FileAssemblyFromBlocks) {
  ScanFsReplayer R;
  View ViewI;
  R.applyUpdate(blockOp(100, {1, 2}), ViewI);
  R.applyUpdate(blockOp(101, {3}), ViewI);
  Inode I;
  I.Used = true;
  I.Size = 3;
  I.Blocks = {100, 101};
  R.applyUpdate(inodeOp(0, I), ViewI);
  Directory D;
  D.Entries = {{"a", 0}};
  R.applyUpdate(dirOp(D), ViewI);
  EXPECT_EQ(ViewI.count(Value("a"), Value(Bytes{1, 2, 3})), 1u);
}

TEST(ScanFsReplayerTest, EagerInodeShowsTruncatedFile) {
  // The buggy order: inode first, blocks later. The shadow faithfully
  // shows the file with missing data until the blocks arrive.
  ScanFsReplayer R;
  View ViewI;
  Directory D;
  D.Entries = {{"a", 0}};
  Inode Empty;
  Empty.Used = true;
  R.applyUpdate(inodeOp(0, Empty), ViewI);
  R.applyUpdate(dirOp(D), ViewI);

  Inode I;
  I.Used = true;
  I.Size = 4;
  I.Blocks = {200};
  R.applyUpdate(inodeOp(0, I), ViewI);
  EXPECT_EQ(ViewI.count(Value("a"), Value(Bytes{0, 0, 0, 0})), 1u)
      << "missing block data reads as zeros/short";
  R.applyUpdate(blockOp(200, {7, 8, 9, 10}), ViewI);
  EXPECT_EQ(ViewI.count(Value("a"), Value(Bytes{7, 8, 9, 10})), 1u);
}

TEST(ScanFsReplayerTest, IncrementalMatchesRebuild) {
  ScanFsReplayer R;
  View Inc;
  Directory D;
  D.Entries = {{"x", 1}, {"y", 2}};
  Inode I1;
  I1.Used = true;
  I1.Size = 2;
  I1.Blocks = {300};
  Inode I2;
  I2.Used = true;
  R.applyUpdate(blockOp(300, {5, 6}), Inc);
  R.applyUpdate(inodeOp(1, I1), Inc);
  R.applyUpdate(inodeOp(2, I2), Inc);
  R.applyUpdate(dirOp(D), Inc);
  View Fresh;
  R.buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

TEST(ScanFsReplayerTest, InvariantCatchesSharedInode) {
  ScanFsReplayer R;
  View ViewI;
  Inode I;
  I.Used = true;
  R.applyUpdate(inodeOp(0, I), ViewI);
  Directory D;
  D.Entries = {{"a", 0}, {"b", 0}};
  R.applyUpdate(dirOp(D), ViewI);
  std::string Msg;
  EXPECT_FALSE(R.checkInvariants(Msg));
  EXPECT_NE(Msg.find("shared"), std::string::npos) << Msg;
}

TEST(ScanFsReplayerTest, InvariantCatchesDanglingEntry) {
  ScanFsReplayer R;
  View ViewI;
  Directory D;
  D.Entries = {{"a", 3}};
  R.applyUpdate(dirOp(D), ViewI);
  std::string Msg;
  EXPECT_FALSE(R.checkInvariants(Msg));
  EXPECT_NE(Msg.find("unused inode"), std::string::npos) << Msg;
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runFs(bool Buggy, RunMode Mode, unsigned Threads,
                     unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = Program::P_ScanFs;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 128;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  WO.BackgroundOp = S.BackgroundOp;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(ScanFsVerifiedTest, CorrectRunsCleanWithSyncer) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R = runFs(false, RunMode::RM_OnlineView, 6, 200, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(ScanFsVerifiedTest, CorrectRunsCleanIOMode) {
  VerifierReport R = runFs(false, RunMode::RM_OnlineIO, 6, 200, 9);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(ScanFsVerifiedTest, EagerInodeBugCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runFs(true, RunMode::RM_OnlineView, 6, 300, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "eager-inode bug not detected in 30 seeds";
}

TEST(ScanFsVerifiedTest, EagerInodeBugCaughtByIORefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runFs(true, RunMode::RM_OnlineIO, 6, 1200, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
