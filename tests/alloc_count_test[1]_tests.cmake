add_test([=[AllocCountTest.SteadyStatePipelineAllocBudget]=]  /root/repo/tests/alloc_count_test [==[--gtest_filter=AllocCountTest.SteadyStatePipelineAllocBudget]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[AllocCountTest.SteadyStatePipelineAllocBudget]=]  PROPERTIES WORKING_DIRECTORY /root/repo/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  alloc_count_test_TESTS AllocCountTest.SteadyStatePipelineAllocBudget)
