//===- MultiObjectTest.cpp - Multi-object engine and checker pool ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Tests for the multi-object verification engine (Sec. 6.2: the log is
// demultiplexed per object and refinement is checked object by object):
// registration, per-object routing and attribution, interleaved and
// overlapping records of different objects on one thread, the checker
// pool, the unrouted-record diagnostic and VerifierConfig::validate.
//
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <thread>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

std::unique_ptr<Spec> spec() { return std::make_unique<MultisetSpec>(); }

std::unique_ptr<Replayer> replayer() {
  return KeyValueReplayer::guardedBag("A");
}

/// Registers \p N multiset objects named "obj0".."objN-1" and returns
/// their hooks. View refinement unless \p IO.
std::vector<Hooks> registerN(Verifier &V, size_t N, bool IO = false) {
  std::vector<Hooks> H;
  for (size_t I = 0; I < N; ++I)
    H.push_back(V.registerObject("obj" + std::to_string(I), spec(),
                                 IO ? nullptr : replayer()));
  return H;
}

/// Runs a few clean operations against a multiset bound to \p H.
void driveClean(Hooks H, unsigned Ops, int64_t KeyBase = 0) {
  ArrayMultiset::Options MO;
  MO.Capacity = 16;
  ArrayMultiset M(MO, H);
  for (unsigned I = 0; I < Ops; ++I) {
    M.insert(KeyBase + I % 5);
    M.lookUp(KeyBase + I % 5);
    if (I % 3 == 0)
      M.remove(KeyBase + I % 5);
  }
}

const ObjectReport *findObject(const VerifierReport &R,
                               const std::string &Name) {
  for (const ObjectReport &O : R.Objects)
    if (O.Name == Name)
      return &O;
  return nullptr;
}

} // namespace

TEST(MultiObjectTest, ThreeObjectsOneVerifierCleanRun) {
  VerifierConfig VC;
  VC.Online = true;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 3);
  ASSERT_EQ(V.objectCount(), 3u);
  V.start();
  for (size_t I = 0; I < H.size(); ++I)
    driveClean(H[I], 60, static_cast<int64_t>(I) * 100);
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  ASSERT_EQ(R.Objects.size(), 3u);
  uint64_t Sum = 0;
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_EQ(R.Objects[I].Id, I);
    EXPECT_EQ(R.Objects[I].Name, "obj" + std::to_string(I));
    EXPECT_GT(R.Objects[I].Records, 0u);
    EXPECT_GT(R.Objects[I].Stats.MethodsChecked, 0u);
    Sum += R.Objects[I].Records;
  }
  // Every log record was routed to exactly one object.
  EXPECT_EQ(Sum, R.LogRecords);
}

TEST(MultiObjectTest, HooksStampTheirObjectId) {
  VerifierConfig VC;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 3);
  EXPECT_EQ(H[0].object(), 0u);
  EXPECT_EQ(H[1].object(), 1u);
  EXPECT_EQ(H[2].object(), 2u);
  EXPECT_EQ(V.hooks(2).object(), 2u);
  EXPECT_EQ(V.hooks().object(), 0u);
  V.start();
  EXPECT_TRUE(V.finish().ok());
}

TEST(MultiObjectTest, SameThreadInterleavedObjects) {
  // One thread alternates calls on two objects: the records interleave in
  // the shared log but each object's checker must see a clean stream.
  VerifierConfig VC;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 2);
  V.start();
  ArrayMultiset::Options MO;
  MO.Capacity = 16;
  ArrayMultiset A(MO, H[0]), B(MO, H[1]);
  for (unsigned I = 0; I < 40; ++I) {
    A.insert(I % 5);
    B.insert(I % 7);
    A.remove(I % 5);
    B.lookUp(I % 7);
  }
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.Objects[0].Records, 0u);
  EXPECT_GT(R.Objects[1].Records, 0u);
}

TEST(MultiObjectTest, OverlappingCommitBlocksOfDifferentObjects) {
  // A single thread holds object A's commit block open while object B
  // begins, commits and ends its own: the demultiplexer must keep the
  // bracket pairing per object. Records are emitted by hand, mimicking
  // the multiset's insert protocol on each object.
  VerifierConfig VC;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 2);
  V.start();
  Vocab Voc = Vocab::get();
  Hooks A = H[0], B = H[1];
  A.call(Voc.Insert, {Value(int64_t(1))});
  A.write(Vocab::eltName(0), Value(int64_t(1)));
  B.call(Voc.Insert, {Value(int64_t(2))});
  B.write(Vocab::eltName(0), Value(int64_t(2)));
  A.blockBegin();
  B.blockBegin(); // B's block opens inside A's
  A.write(Vocab::validName(0), Value(true));
  B.write(Vocab::validName(0), Value(true));
  A.commit();
  B.commit();
  A.blockEnd();
  B.blockEnd();
  A.ret(Voc.Insert, Value(true));
  B.ret(Voc.Insert, Value(true));
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Objects[0].Stats.MethodsChecked, 1u);
  EXPECT_EQ(R.Objects[1].Stats.MethodsChecked, 1u);
}

TEST(MultiObjectTest, ViolationAttributedToTheRightObject) {
  // A successful Delete of an element that was never inserted is a
  // deterministic refinement violation; seed it on "alpha" only and keep
  // "beta" busy with clean traffic. The violation must carry alpha's id
  // and name, and beta's report must stay clean.
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_IORefinement;
  VC.Checker.ContextRecords = 8;
  Verifier V(VC);
  Hooks Alpha = V.registerObject("alpha", spec(), nullptr);
  Hooks Beta = V.registerObject("beta", spec(), nullptr);
  V.start();
  Vocab Voc = Vocab::get();
  Beta.call(Voc.Insert, {Value(int64_t(5))});
  Beta.commit();
  Beta.ret(Voc.Insert, Value(true));
  Alpha.call(Voc.Delete, {Value(int64_t(999))});
  Alpha.commit();
  Alpha.ret(Voc.Delete, Value(true)); // claims success: mismatch
  Beta.call(Voc.LookUp, {Value(int64_t(5))}); // observer: no commit
  Beta.ret(Voc.LookUp, Value(true));
  VerifierReport R = V.finish();
  ASSERT_FALSE(R.ok());
  for (const Violation &Vi : R.Violations) {
    EXPECT_EQ(Vi.Obj, Alpha.object());
    EXPECT_EQ(Vi.Object.str(), "alpha");
    EXPECT_NE(Vi.str().find("[alpha]"), std::string::npos) << Vi.str();
    // The attached context is the per-object stream: alpha's Delete, none
    // of beta's records.
    EXPECT_NE(Vi.Context.find("Delete"), std::string::npos) << Vi.Context;
    EXPECT_EQ(Vi.Context.find("Insert"), std::string::npos) << Vi.Context;
  }
  const ObjectReport *A = findObject(R, "alpha");
  const ObjectReport *B = findObject(R, "beta");
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_FALSE(A->ok());
  EXPECT_EQ(A->Violations.front().Kind, ViolationKind::VK_MutatorMismatch);
  EXPECT_TRUE(B->ok());
}

TEST(MultiObjectTest, CheckerPoolCleanRunUnderContention) {
  // Four objects, four application threads, four checker workers: the
  // pool must preserve per-object order (any reordering would produce
  // spurious violations) and shut down cleanly. Also the TSan target for
  // the pool's hand-off protocol.
  VerifierConfig VC;
  VC.Online = true;
  VC.CheckerThreads = 4;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 4);
  V.start();
  ArrayMultiset::Options MO;
  MO.Capacity = 16; // must match the registered replayers' shadow capacity
  std::vector<std::unique_ptr<ArrayMultiset>> Ms;
  for (unsigned I = 0; I < 4; ++I)
    Ms.push_back(std::make_unique<ArrayMultiset>(MO, H[I]));
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < 4; ++T)
    Ts.emplace_back([&Ms, T] {
      // Every thread touches every object.
      for (unsigned I = 0; I < 200; ++I) {
        ArrayMultiset &M = *Ms[(T + I) % 4];
        M.insert(I % 6);
        M.lookUp(I % 6);
        if (I % 3 == 0)
          M.remove(I % 6);
      }
    });
  for (auto &T : Ts)
    T.join();
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  ASSERT_EQ(R.Objects.size(), 4u);
  for (const ObjectReport &O : R.Objects)
    EXPECT_GT(O.Records, 0u);
}

TEST(MultiObjectTest, PoolVerdictMatchesInlineVerdict) {
  // The same seeded record stream must produce the same violations
  // whether checked inline or on a pool.
  auto run = [](unsigned Threads) {
    VerifierConfig VC;
    VC.Online = true;
    VC.CheckerThreads = Threads;
    VC.Checker.Mode = CheckMode::CM_IORefinement;
    Verifier V(VC);
    Hooks A = V.registerObject("a", spec(), nullptr);
    Hooks B = V.registerObject("b", spec(), nullptr);
    V.start();
    Vocab Voc = Vocab::get();
    for (int I = 0; I < 50; ++I) {
      B.call(Voc.Insert, {Value(int64_t(I))});
      B.commit();
      B.ret(Voc.Insert, Value(true));
    }
    A.call(Voc.Delete, {Value(int64_t(999))});
    A.commit();
    A.ret(Voc.Delete, Value(true));
    return V.finish();
  };
  VerifierReport Inline = run(1), Pooled = run(4);
  ASSERT_EQ(Inline.Violations.size(), Pooled.Violations.size());
  for (size_t I = 0; I < Inline.Violations.size(); ++I) {
    EXPECT_EQ(Inline.Violations[I].Kind, Pooled.Violations[I].Kind);
    EXPECT_EQ(Inline.Violations[I].Obj, Pooled.Violations[I].Obj);
  }
}

TEST(MultiObjectTest, UnroutedRecordsReportInstrumentationViolation) {
  // A record stamped with an id no registered object owns (hooks
  // outliving their verifier, or corruption) must not vanish silently.
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_IORefinement;
  Verifier V(VC);
  (void)V.registerObject("only", spec(), nullptr);
  V.start();
  Action Stray = Action::commit(0);
  Stray.Obj = 7;
  V.log().append(Stray);
  VerifierReport R = V.finish();
  ASSERT_FALSE(R.ok());
  EXPECT_TRUE(V.violationSeen());
  EXPECT_EQ(R.Violations.front().Kind, ViolationKind::VK_Instrumentation);
  EXPECT_NE(R.Violations.front().Message.find("unregistered"),
            std::string::npos)
      << R.Violations.front().Message;
}

TEST(MultiObjectTest, ReportJsonListsEveryObject) {
  VerifierConfig VC;
  Verifier V(VC);
  std::vector<Hooks> H = registerN(V, 3);
  V.start();
  driveClean(H[1], 20);
  VerifierReport R = V.finish();
  std::string J = R.json();
  EXPECT_NE(J.find("\"objects\":["), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"obj0\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"obj2\""), std::string::npos) << J;
}

//===----------------------------------------------------------------------===//
// VerifierConfig::validate
//===----------------------------------------------------------------------===//

TEST(VerifierConfigValidate, AcceptsDefaults) {
  EXPECT_EQ(VerifierConfig().validate(), "");
}

TEST(VerifierConfigValidate, RejectsFileBackendWithoutPath) {
  VerifierConfig VC;
  VC.Backend = LogBackend::LB_File;
  EXPECT_NE(VC.validate().find("LogFilePath"), std::string::npos);
  VC.LogFilePath = "/tmp/x.bin";
  EXPECT_EQ(VC.validate(), "");
}

TEST(VerifierConfigValidate, RejectsZeroCheckerThreads) {
  VerifierConfig VC;
  VC.CheckerThreads = 0;
  EXPECT_NE(VC.validate().find("CheckerThreads"), std::string::npos);
}

TEST(VerifierConfigValidate, RejectsOfflinePool) {
  VerifierConfig VC;
  VC.Online = false;
  VC.CheckerThreads = 2;
  EXPECT_NE(VC.validate().find("Online"), std::string::npos);
  VC.Online = true;
  EXPECT_EQ(VC.validate(), "");
}

TEST(VerifierConfigValidate, RejectsZeroShardBufferedBackend) {
  VerifierConfig VC;
  VC.Backend = LogBackend::LB_Buffered;
  VC.ShardCapacity = 0;
  EXPECT_NE(VC.validate().find("ShardCapacity"), std::string::npos);
}

TEST(VerifierConfigValidate, RejectsZeroMaxViolations) {
  VerifierConfig VC;
  VC.Checker.MaxViolations = 0;
  EXPECT_NE(VC.validate().find("MaxViolations"), std::string::npos);
}

TEST(VerifierConfigValidate, RejectsWatchdogWithoutTelemetry) {
  VerifierConfig VC;
  VC.Telemetry.WatchdogQuietMs = 100;
  EXPECT_NE(VC.validate().find("Telemetry.Enabled"), std::string::npos);
  VC.Telemetry.Enabled = true;
  EXPECT_EQ(VC.validate(), "");
}
