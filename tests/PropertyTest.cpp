//===- PropertyTest.cpp - Parameterized property sweeps --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property sweeps over (program x mode x seed):
///  * soundness — correct implementations never produce violations, under
///    both I/O and view refinement, online and offline, with audits on;
///  * sensitivity — each injected Table 1 bug is eventually detected;
///  * determinism — replaying a recorded log yields the same verdict.
///
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Checker.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

struct SweepParam {
  Program Prog;
  RunMode Mode;
  uint64_t Seed;
};

std::string paramName(const ::testing::TestParamInfo<SweepParam> &Info) {
  std::string N = std::string(programName(Info.param.Prog)) + "_" +
                  runModeName(Info.param.Mode) + "_s" +
                  std::to_string(Info.param.Seed);
  for (char &C : N)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

VerifierReport runSweep(const SweepParam &P, bool Buggy, unsigned Threads,
                        unsigned Ops) {
  ScenarioOptions SO;
  SO.Prog = P.Prog;
  SO.Mode = P.Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 64;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, P.Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 16;
  WO.Seed = P.Seed;
  WO.BackgroundOp = S.BackgroundOp;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

//===----------------------------------------------------------------------===//
// Soundness sweep
//===----------------------------------------------------------------------===//

class SoundnessSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SoundnessSweep, CorrectImplementationIsClean) {
  VerifierReport R = runSweep(GetParam(), /*Buggy=*/false, 6, 150);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.Stats.MethodsChecked, 0u);
}

namespace {

std::vector<Program> sweptPrograms() {
  std::vector<Program> Ps = allPrograms();
  for (Program P : extensionPrograms())
    Ps.push_back(P);
  return Ps;
}

std::vector<SweepParam> soundnessParams() {
  std::vector<SweepParam> Ps;
  for (Program P : sweptPrograms())
    for (RunMode M : {RunMode::RM_OnlineIO, RunMode::RM_OnlineView,
                      RunMode::RM_OfflineView})
      for (uint64_t Seed : {11, 22})
        Ps.push_back({P, M, Seed});
  return Ps;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPrograms, SoundnessSweep,
                         ::testing::ValuesIn(soundnessParams()),
                         paramName);

//===----------------------------------------------------------------------===//
// Sensitivity sweep
//===----------------------------------------------------------------------===//

struct BugParam {
  Program Prog;
  RunMode Mode;
};

class SensitivitySweep : public ::testing::TestWithParam<BugParam> {};

TEST_P(SensitivitySweep, InjectedBugIsDetected) {
  const BugParam &P = GetParam();
  // I/O refinement needs the corruption to surface in a return value, so
  // it gets a larger budget (the Table 1 asymmetry).
  unsigned Ops = P.Mode == RunMode::RM_OnlineView ? 400 : 1600;
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Caught; ++Seed) {
    VerifierReport R = runSweep({P.Prog, P.Mode, Seed}, true, 8, Ops);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << programName(P.Prog) << " bug ("
                      << programBugName(P.Prog) << ") not detected by "
                      << runModeName(P.Mode) << " in 40 seeds";
}

namespace {

std::vector<BugParam> sensitivityParams() {
  std::vector<BugParam> Ps;
  for (Program P : sweptPrograms()) {
    Ps.push_back({P, RunMode::RM_OnlineView});
    Ps.push_back({P, RunMode::RM_OnlineIO});
  }
  return Ps;
}

std::string bugParamName(const ::testing::TestParamInfo<BugParam> &Info) {
  std::string N = std::string(programName(Info.param.Prog)) + "_" +
                  runModeName(Info.param.Mode);
  for (char &C : N)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return N;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllBugs, SensitivitySweep,
                         ::testing::ValuesIn(sensitivityParams()),
                         bugParamName);

//===----------------------------------------------------------------------===//
// Log determinism
//===----------------------------------------------------------------------===//

class ReplayDeterminism : public ::testing::TestWithParam<Program> {};

TEST_P(ReplayDeterminism, RecordedLogReplaysToSameVerdict) {
  // Run online with a file log; then re-check the file offline twice and
  // expect identical stats and verdicts.
  std::string Path = std::string(::testing::TempDir()) + "vyrd-replay-" +
                     std::to_string(static_cast<int>(GetParam())) + "-" +
                     std::to_string(::getpid()) + ".bin";
  ScenarioOptions SO;
  SO.Prog = GetParam();
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Path;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, 99);
  WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 80;
  WO.Seed = 99;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  Chaos::disable();
  VerifierReport Online = S.Finish();
  ASSERT_TRUE(Online.ok()) << Online.str();

  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  ASSERT_EQ(Loaded.size(), Online.LogRecords);

  CheckerStats Prev{};
  for (int Round = 0; Round < 2; ++Round) {
    // Fresh spec/replayer pair per round.
    ScenarioOptions SO2;
    SO2.Prog = GetParam();
    SO2.Mode = RunMode::RM_OfflineView;
    Scenario S2 = makeScenario(SO2);
    for (const Action &A : Loaded)
      S2.L->append(A);
    VerifierReport R = S2.Finish();
    EXPECT_TRUE(R.ok()) << R.str();
    EXPECT_EQ(R.Stats.MethodsChecked, Online.Stats.MethodsChecked);
    if (Round > 0) {
      EXPECT_EQ(R.Stats.CommitsProcessed, Prev.CommitsProcessed);
      EXPECT_EQ(R.Stats.ObserversChecked, Prev.ObserversChecked);
    }
    Prev = R.Stats;
  }
  std::remove(Path.c_str());
}

INSTANTIATE_TEST_SUITE_P(AllPrograms, ReplayDeterminism,
                         ::testing::ValuesIn(sweptPrograms()),
                         [](const ::testing::TestParamInfo<Program> &I) {
                           std::string N = programName(I.param);
                           for (char &C : N)
                             if (!isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return N;
                         });
