//===- DiagnosisTest.cpp - Commit-point diagnosis (Sec. 4.1) ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "The runtime refinement check could fail either because the
/// implementation truly does not refine the specification or because the
/// witness interleaving obtained using the commit actions is wrong.
/// Comparing the witness interleaving with the implementation trace
/// reveals which one is the case." (Sec. 4.1.) The checker automates that
/// comparison: a failed mutator signature is retried at each later window
/// state, and the violation is annotated as "commit point likely too
/// early" or "likely genuine".
///
//===----------------------------------------------------------------------===//

#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Checker.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

/// Thread 0 runs Delete(5) whose commit is annotated *before* thread 1's
/// Insert(5) commits, but whose return comes after — the classic
/// too-early commit annotation: at the annotated point the spec has no
/// 5 to delete, one window state later it does.
std::vector<Action> tooEarlyCommitScript() {
  Vocab V = Vocab::get();
  std::vector<Action> S;
  auto Push = [&S](Action A) {
    A.Seq = S.size();
    S.push_back(std::move(A));
  };
  Push(Action::call(0, V.Delete, {Value(5)}));
  Push(Action::commit(0)); // (mis)annotated commit point
  Push(Action::call(1, V.Insert, {Value(5)}));
  Push(Action::write(1, Vocab::eltName(0), Value(5)));
  Push(Action::blockBegin(1));
  Push(Action::write(1, Vocab::validName(0), Value(true)));
  Push(Action::commit(1));
  Push(Action::blockEnd(1));
  Push(Action::ret(1, V.Insert, Value(true)));
  // Thread 0's delete actually takes effect only now (its writes land
  // here, long after its annotated commit), then returns.
  Push(Action::write(0, Vocab::validName(0), Value(false)));
  Push(Action::write(0, Vocab::eltName(0), Value()));
  Push(Action::call(2, V.Delete, {Value(99)})); // unrelated filler
  Push(Action::commit(2));
  Push(Action::ret(2, V.Delete, Value(false)));
  Push(Action::ret(0, V.Delete, Value(true)));
  return S;
}

/// A genuinely wrong execution: Delete(7) claims success but 7 is never
/// inserted anywhere in the window.
std::vector<Action> genuineViolationScript() {
  Vocab V = Vocab::get();
  std::vector<Action> S;
  auto Push = [&S](Action A) {
    A.Seq = S.size();
    S.push_back(std::move(A));
  };
  Push(Action::call(0, V.Delete, {Value(7)}));
  Push(Action::commit(0));
  Push(Action::call(1, V.Insert, {Value(8)})); // different key
  Push(Action::write(1, Vocab::eltName(0), Value(8)));
  Push(Action::blockBegin(1));
  Push(Action::write(1, Vocab::validName(0), Value(true)));
  Push(Action::commit(1));
  Push(Action::blockEnd(1));
  Push(Action::ret(1, V.Insert, Value(true)));
  Push(Action::ret(0, V.Delete, Value(true)));
  return S;
}

} // namespace

TEST(DiagnosisTest, TooEarlyCommitIsAnnotated) {
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
  for (const Action &A : tooEarlyCommitScript())
    C.feed(A);
  C.finish();
  ASSERT_TRUE(C.hasViolation());
  const Violation &V = C.violations().front();
  EXPECT_EQ(V.Kind, ViolationKind::VK_MutatorMismatch);
  EXPECT_NE(V.Message.find("likely too early"), std::string::npos)
      << V.Message;
}

TEST(DiagnosisTest, TooEarlyRecoveryAppliesTheTransition) {
  // After the diagnosis applies Delete(5) late, the spec state is
  // consistent again: no cascade of view mismatches.
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
  for (const Action &A : tooEarlyCommitScript())
    C.feed(A);
  C.finish();
  EXPECT_EQ(Spec.count(5), 0u) << "the delete was applied on retry";
  size_t ViewMismatches = 0;
  for (const Violation &V : C.violations())
    ViewMismatches += V.Kind == ViolationKind::VK_ViewMismatch;
  EXPECT_EQ(ViewMismatches, 0u)
      << "late application keeps viewS in sync; only the mutator "
         "mismatch itself is reported";
}

TEST(DiagnosisTest, GenuineViolationIsAnnotated) {
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
  for (const Action &A : genuineViolationScript())
    C.feed(A);
  C.finish();
  ASSERT_TRUE(C.hasViolation());
  const Violation &V = C.violations().front();
  EXPECT_EQ(V.Kind, ViolationKind::VK_MutatorMismatch);
  EXPECT_NE(V.Message.find("likely a genuine refinement violation"),
            std::string::npos)
      << V.Message;
}

TEST(DiagnosisTest, DisabledDiagnosisLeavesMessagePlain) {
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  CheckerConfig CC;
  CC.DiagnoseCommitPoints = false;
  RefinementChecker C(Spec, Replay.get(), CC);
  for (const Action &A : tooEarlyCommitScript())
    C.feed(A);
  C.finish();
  ASSERT_TRUE(C.hasViolation());
  EXPECT_EQ(C.violations().front().Message.find("diagnosis"),
            std::string::npos);
}
