//===- SegmentLogTest.cpp - Log segmentation and chain walking -------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the segmented log format (docs/LOGFORMAT.md, v4): rotation into
/// numbered segment files, transparent chain walking in LogFileReader /
/// loadLogFile, self-contained segments (per-segment header and name
/// table), checked-prefix reclamation, and the promise that unsegmented
/// output stays byte-compatible v3.
///
//===----------------------------------------------------------------------===//

#include "vyrd/Backpressure.h"
#include "vyrd/BufferedLog.h"
#include "vyrd/Log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sys/stat.h>
#include <thread>

using namespace vyrd;

namespace {

std::string tempPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-segtest-" + Tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

bool fileExists(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0;
}

/// Removes a chain's base path and any plausible segment files.
void removeChain(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 64; ++I)
    std::remove(logSegmentPath(Base, I).c_str());
}

/// Appends \p N call/return pairs with a string payload (so segments
/// fill quickly) through \p L. Sequence numbers come out 0..2N-1.
void appendPairs(Log &L, size_t N) {
  Name M = internName("seg.op");
  for (size_t I = 0; I < N; ++I) {
    L.append(Action::call(1, M, {Value("payload-padding-string"),
                                 Value(static_cast<int64_t>(I))}));
    L.append(Action::ret(1, M, Value(static_cast<int64_t>(I))));
  }
}

BackpressureConfig segmented(uint64_t SegmentBytes, bool Reclaim = false) {
  BackpressureConfig BP;
  BP.SegmentBytes = SegmentBytes;
  BP.ReclaimSegments = Reclaim;
  return BP;
}

} // namespace

TEST(SegmentLogTest, FileLogRotatesIntoNumberedSegments) {
  std::string Base = tempPath("rotate");
  removeChain(Base);
  {
    bool Valid = false;
    FileLog L(Base, Valid, segmented(512));
    ASSERT_TRUE(Valid);
    appendPairs(L, 100);
    L.close();
  }
  // A chain, not a plain file: base absent, numbered segments present.
  EXPECT_FALSE(fileExists(Base));
  ASSERT_TRUE(fileExists(logSegmentPath(Base, 1)));
  ASSERT_TRUE(fileExists(logSegmentPath(Base, 2)))
      << "512-byte segments must have rotated at least once for 200 "
         "records with string payloads";
  removeChain(Base);
}

TEST(SegmentLogTest, LoadLogFileWalksTheChainFromTheBasePath) {
  std::string Base = tempPath("walk");
  removeChain(Base);
  {
    bool Valid = false;
    FileLog L(Base, Valid, segmented(512));
    ASSERT_TRUE(Valid);
    appendPairs(L, 100);
    L.close();
  }
  std::vector<Action> Got;
  ASSERT_TRUE(loadLogFile(Base, Got))
      << "opening the chain's base path must fall back to segment 1";
  ASSERT_EQ(Got.size(), 200u);
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(Got[I].Seq, I);
  EXPECT_EQ(Got[199].Ret.asInt(), 99);
  removeChain(Base);
}

TEST(SegmentLogTest, SegmentsAreSelfContained) {
  std::string Base = tempPath("selfcontained");
  removeChain(Base);
  {
    bool Valid = false;
    FileLog L(Base, Valid, segmented(512));
    ASSERT_TRUE(Valid);
    appendPairs(L, 100);
    L.close();
  }
  // Opening segment 2 directly must decode: its header carries the chain
  // position and it re-interns every name it uses.
  LogFileReader R(logSegmentPath(Base, 2));
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.version(), LogSegmentVersion);
  EXPECT_EQ(R.segmentIndex(), 2u);
  Action A;
  ASSERT_TRUE(R.next(A));
  EXPECT_GT(A.Seq, 0u) << "segment 2 starts mid-log";
  uint64_t First = A.Seq;
  uint64_t Count = 1;
  uint64_t Last = A.Seq;
  while (R.next(A)) {
    EXPECT_EQ(A.Seq, Last + 1) << "chain walk must stay dense";
    Last = A.Seq;
    ++Count;
  }
  EXPECT_FALSE(R.malformed());
  EXPECT_EQ(Last, 199u) << "reader walked to the end of the chain";
  EXPECT_EQ(Count, 200 - First);
  removeChain(Base);
}

TEST(SegmentLogTest, ReclaimDeletesFullyCheckedSegmentsOnly) {
  std::string Base = tempPath("reclaim");
  removeChain(Base);
  bool Valid = false;
  FileLog L(Base, Valid, segmented(512, /*Reclaim=*/true));
  ASSERT_TRUE(Valid);
  appendPairs(L, 100);

  // Nothing checked yet: nothing may disappear.
  L.reclaimCheckedPrefix(0);
  EXPECT_TRUE(fileExists(logSegmentPath(Base, 1)));

  // Everything checked: closed prefix segments go, the active one stays.
  L.reclaimCheckedPrefix(200);
  EXPECT_FALSE(fileExists(logSegmentPath(Base, 1)));
  BackpressureStats S = L.backpressureStats();
  EXPECT_GE(S.SegmentsCreated, 2u);
  EXPECT_GE(S.SegmentsReclaimed, 1u);
  EXPECT_LT(S.SegmentsReclaimed, S.SegmentsCreated)
      << "the active segment is never deleted";
  L.close();
  removeChain(Base);
}

TEST(SegmentLogTest, ReclaimRespectsTheWatermark) {
  std::string Base = tempPath("watermark");
  removeChain(Base);
  bool Valid = false;
  FileLog L(Base, Valid, segmented(512, /*Reclaim=*/true));
  ASSERT_TRUE(Valid);
  appendPairs(L, 100);
  // A watermark inside the log only releases segments entirely below it.
  L.reclaimCheckedPrefix(10);
  std::vector<Action> Got;
  LogFileReader R(Base);
  ASSERT_TRUE(R.valid());
  Action A;
  ASSERT_TRUE(R.next(A));
  EXPECT_LT(A.Seq, 10u)
      << "records at/after the watermark must still be on disk";
  L.close();
  removeChain(Base);
}

TEST(SegmentLogTest, BufferedLogRotatesAndReloads) {
  std::string Base = tempPath("buffered");
  removeChain(Base);
  constexpr size_t PerThread = 200;
  {
    BufferedLog::Options O;
    O.FilePath = Base;
    O.Backpressure = segmented(1024);
    BufferedLog L(O);
    ASSERT_TRUE(L.valid());
    std::vector<std::thread> Ts;
    for (int T = 0; T < 2; ++T)
      Ts.emplace_back([&L] { appendPairs(L, PerThread / 2); });
    for (auto &T : Ts)
      T.join();
    // Drain the reader queue (records are retained by default).
    Action A;
    size_t Read = 0;
    L.close();
    while (L.next(A))
      ++Read;
    EXPECT_EQ(Read, 2 * PerThread);
  }
  EXPECT_TRUE(fileExists(logSegmentPath(Base, 1)));
  std::vector<Action> Got;
  ASSERT_TRUE(loadLogFile(Base, Got));
  ASSERT_EQ(Got.size(), 2 * PerThread);
  for (size_t I = 0; I < Got.size(); ++I)
    EXPECT_EQ(Got[I].Seq, I);
  removeChain(Base);
}

TEST(SegmentLogTest, UnsegmentedOutputStaysPlainV3) {
  std::string Path = tempPath("plain");
  std::remove(Path.c_str());
  {
    bool Valid = false;
    FileLog L(Path, Valid); // no BackpressureConfig: the historical ctor
    ASSERT_TRUE(Valid);
    appendPairs(L, 5);
    L.close();
  }
  EXPECT_TRUE(fileExists(Path));
  EXPECT_FALSE(fileExists(logSegmentPath(Path, 1)));
  LogFileReader R(Path);
  ASSERT_TRUE(R.valid());
  EXPECT_EQ(R.version(), LogFormatVersion);
  EXPECT_EQ(R.segmentIndex(), 0u) << "plain files are not chains";
  std::vector<Action> Got;
  ASSERT_TRUE(loadLogFile(Path, Got));
  EXPECT_EQ(Got.size(), 10u);
  std::remove(Path.c_str());
}

TEST(SegmentLogTest, SegmentPathHelpersRoundTrip) {
  EXPECT_EQ(logSegmentPath("/tmp/x.bin", 1), "/tmp/x.bin.000001");
  EXPECT_EQ(logSegmentPath("/tmp/x.bin", 123456), "/tmp/x.bin.123456");
  std::string Base;
  uint64_t Index = 0;
  ASSERT_TRUE(splitLogSegmentPath("/tmp/x.bin.000042", Base, Index));
  EXPECT_EQ(Base, "/tmp/x.bin");
  EXPECT_EQ(Index, 42u);
  EXPECT_FALSE(splitLogSegmentPath("/tmp/x.bin", Base, Index));
  EXPECT_FALSE(splitLogSegmentPath("/tmp/x.12345", Base, Index))
      << "five digits is not a segment suffix";
}
