//===- HashtableTest.cpp - Tests for the Hashtable model --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "javalib/HashtableSpec.h"
#include "javalib/SyncHashtable.h"
#include "vyrd/Auto.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::javalib;
using namespace vyrd::harness;

//===----------------------------------------------------------------------===//
// Sequential semantics
//===----------------------------------------------------------------------===//

TEST(SyncHashtableTest, PutGetRemove) {
  SyncHashtable T({}, Hooks());
  EXPECT_TRUE(T.get(1).isNull());
  EXPECT_TRUE(T.put(1, 10).isNull());
  EXPECT_EQ(T.get(1), Value(10));
  EXPECT_EQ(T.put(1, 20), Value(10)) << "put returns the previous value";
  EXPECT_EQ(T.get(1), Value(20));
  EXPECT_EQ(T.remove(1), Value(20));
  EXPECT_TRUE(T.get(1).isNull());
  EXPECT_TRUE(T.remove(1).isNull());
}

TEST(SyncHashtableTest, SizeTracksMappings) {
  SyncHashtable T({}, Hooks());
  EXPECT_EQ(T.size(), 0);
  T.put(1, 1);
  T.put(2, 2);
  T.put(1, 3); // overwrite, no growth
  EXPECT_EQ(T.size(), 2);
  T.remove(2);
  EXPECT_EQ(T.size(), 1);
}

TEST(SyncHashtableTest, PutIfAbsentSemantics) {
  SyncHashtable T({}, Hooks());
  EXPECT_TRUE(T.putIfAbsent(5, 50));
  EXPECT_FALSE(T.putIfAbsent(5, 60));
  EXPECT_EQ(T.get(5), Value(50)) << "loser must not overwrite";
}

TEST(SyncHashtableTest, CollidingKeysCoexist) {
  SyncHashtable::Options O;
  O.Buckets = 2; // force collisions
  SyncHashtable T(O, Hooks());
  for (int64_t K = 0; K < 20; ++K)
    T.put(K, K * 7);
  for (int64_t K = 0; K < 20; ++K)
    EXPECT_EQ(T.get(K), Value(K * 7)) << "key " << K;
  EXPECT_EQ(T.size(), 20);
}

TEST(SyncHashtableTest, NegativeKeys) {
  SyncHashtable T({}, Hooks());
  T.put(-42, 7);
  EXPECT_EQ(T.get(-42), Value(7));
  EXPECT_EQ(T.remove(-42), Value(7));
}

TEST(SyncHashtableTest, BuggyPutIfAbsentSequentiallyCorrect) {
  SyncHashtable::Options O;
  O.BuggyPutIfAbsent = true;
  SyncHashtable T(O, Hooks());
  EXPECT_TRUE(T.putIfAbsent(5, 50));
  EXPECT_FALSE(T.putIfAbsent(5, 60));
  EXPECT_EQ(T.get(5), Value(50));
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(HashtableSpecTest, PutRequiresCorrectPreviousValue) {
  HashtableSpec S;
  HtVocab V = HtVocab::get();
  View ViewS;
  EXPECT_TRUE(
      S.applyMutator(V.Put, {Value(1), Value(10)}, Value(), ViewS));
  EXPECT_FALSE(S.applyMutator(V.Put, {Value(1), Value(20)}, Value(), ViewS))
      << "previous value was 10, not null";
  EXPECT_TRUE(
      S.applyMutator(V.Put, {Value(1), Value(20)}, Value(10), ViewS));
}

TEST(HashtableSpecTest, PutIfAbsentTrueRequiresAbsence) {
  HashtableSpec S;
  HtVocab V = HtVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(V.PutIfAbsent, {Value(1), Value(10)},
                             Value(true), ViewS));
  EXPECT_FALSE(S.applyMutator(V.PutIfAbsent, {Value(1), Value(20)},
                              Value(true), ViewS))
      << "claiming insertion of a present key is the bug's signature";
  EXPECT_TRUE(S.applyMutator(V.PutIfAbsent, {Value(1), Value(20)},
                             Value(false), ViewS));
  EXPECT_FALSE(S.applyMutator(V.PutIfAbsent, {Value(2), Value(20)},
                              Value(false), ViewS))
      << "failing on an absent key is impossible";
}

TEST(HashtableSpecTest, RemoveReturnsMapping) {
  HashtableSpec S;
  HtVocab V = HtVocab::get();
  View ViewS;
  S.applyMutator(V.Put, {Value(3), Value(33)}, Value(), ViewS);
  EXPECT_FALSE(S.applyMutator(V.Remove, {Value(3)}, Value(34), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Remove, {Value(3)}, Value(33), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Remove, {Value(3)}, Value(), ViewS));
}

TEST(HashtableSpecTest, Observers) {
  HashtableSpec S;
  HtVocab V = HtVocab::get();
  View ViewS;
  S.applyMutator(V.Put, {Value(1), Value(10)}, Value(), ViewS);
  EXPECT_TRUE(S.returnAllowed(V.Get, {Value(1)}, Value(10)));
  EXPECT_FALSE(S.returnAllowed(V.Get, {Value(1)}, Value(11)));
  EXPECT_TRUE(S.returnAllowed(V.Get, {Value(2)}, Value()));
  EXPECT_TRUE(S.returnAllowed(V.Size, {}, Value(1)));
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

TEST(HashtableReplayerTest, WritesMaintainView) {
  auto R = KeyValueReplayer::map("ht");
  View ViewI;
  R->applyUpdate(Action::write(0, HtVocab::slotName(1), Value(10)), ViewI);
  EXPECT_EQ(ViewI.count(Value(1), Value(10)), 1u);
  R->applyUpdate(Action::write(0, HtVocab::slotName(1), Value(20)), ViewI);
  EXPECT_EQ(ViewI.count(Value(1), Value(20)), 1u);
  EXPECT_EQ(ViewI.count(Value(1), Value(10)), 0u);
  R->applyUpdate(Action::write(0, HtVocab::slotName(1), Value()), ViewI);
  EXPECT_TRUE(ViewI.empty());
}

TEST(HashtableReplayerTest, NegativeKeyNamesParse) {
  auto R = KeyValueReplayer::map("ht");
  View ViewI;
  R->applyUpdate(Action::write(0, HtVocab::slotName(-7), Value(3)), ViewI);
  EXPECT_EQ(ViewI.count(Value(int64_t{-7}), Value(3)), 1u);
}

TEST(HashtableReplayerTest, IncrementalMatchesRebuild) {
  auto R = KeyValueReplayer::map("ht");
  View Inc;
  for (int64_t K = -5; K < 5; ++K)
    R->applyUpdate(Action::write(0, HtVocab::slotName(K), Value(K * 2)),
                   Inc);
  R->applyUpdate(Action::write(0, HtVocab::slotName(0), Value()), Inc);
  View Fresh;
  R->buildView(Fresh);
  EXPECT_TRUE(Inc.deepEquals(Fresh)) << View::diff(Inc, Fresh);
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runHt(bool Buggy, RunMode Mode, unsigned Threads,
                     unsigned Ops, uint64_t Seed) {
  ScenarioOptions SO;
  SO.Prog = Program::P_Hashtable;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 256;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 12;
  WO.Seed = Seed;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(HashtableVerifiedTest, CorrectRunsClean) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R = runHt(false, RunMode::RM_OnlineView, 8, 300, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(HashtableVerifiedTest, CorrectRunsCleanIOMode) {
  VerifierReport R = runHt(false, RunMode::RM_OnlineIO, 8, 300, 5);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(HashtableVerifiedTest, CheckThenActBugCaught) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runHt(true, RunMode::RM_OnlineView, 8, 400, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "check-then-act bug not detected in 30 seeds";
}

TEST(HashtableVerifiedTest, CheckThenActBugCaughtByIOMode) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runHt(true, RunMode::RM_OnlineIO, 8, 800, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
