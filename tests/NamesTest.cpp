//===- NamesTest.cpp - Unit tests for name interning ------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Action.h"
#include "vyrd/Names.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace vyrd;

TEST(NamesTest, DefaultIsInvalid) {
  Name N;
  EXPECT_FALSE(N.valid());
  EXPECT_EQ(N.id(), 0u);
  EXPECT_EQ(N.str(), "<invalid>");
}

TEST(NamesTest, InternIsIdempotent) {
  Name A = internName("names-test-alpha");
  Name B = internName("names-test-alpha");
  EXPECT_EQ(A, B);
  EXPECT_TRUE(A.valid());
  EXPECT_EQ(A.str(), "names-test-alpha");
}

TEST(NamesTest, DistinctStringsGetDistinctIds) {
  Name A = internName("names-test-x");
  Name B = internName("names-test-y");
  EXPECT_NE(A, B);
  EXPECT_TRUE(A < B || B < A);
}

TEST(NamesTest, StringViewStaysValidAsTableGrows) {
  Name A = internName("names-test-stable");
  std::string_view SV = A.str();
  for (int I = 0; I < 2000; ++I)
    internName("names-test-grow-" + std::to_string(I));
  EXPECT_EQ(SV, "names-test-stable");
  EXPECT_EQ(A.str(), "names-test-stable");
}

TEST(NamesTest, ConcurrentInterningAgrees) {
  constexpr int PerThread = 300;
  std::vector<std::vector<Name>> Results(4);
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&, T] {
      for (int I = 0; I < PerThread; ++I)
        Results[T].push_back(
            internName("names-test-conc-" + std::to_string(I)));
    });
  for (auto &T : Ts)
    T.join();
  for (int I = 0; I < PerThread; ++I)
    for (int T = 1; T < 4; ++T)
      EXPECT_EQ(Results[0][I], Results[T][I]);
}

TEST(ActionTest, CallRendering) {
  Action A = Action::call(3, internName("Render"), {Value(1), Value("s")});
  A.Seq = 9;
  std::string S = A.str();
  EXPECT_NE(S.find("#9"), std::string::npos) << S;
  EXPECT_NE(S.find("t3"), std::string::npos) << S;
  EXPECT_NE(S.find("Render(1, \"s\")"), std::string::npos) << S;
}

TEST(ActionTest, ReturnRendering) {
  Action A = Action::ret(1, internName("Render"), Value(false));
  EXPECT_NE(A.str().find("-> false"), std::string::npos) << A.str();
}

TEST(ActionTest, WriteRendering) {
  Action A = Action::write(0, internName("render.var"), Value(7));
  std::string S = A.str();
  EXPECT_NE(S.find("render.var := 7"), std::string::npos) << S;
}

TEST(ActionTest, ReplayOpRendering) {
  Action A = Action::replayOp(2, internName("render.op"),
                              {Value(1), Value(2)});
  std::string S = A.str();
  EXPECT_NE(S.find("render.op[1, 2]"), std::string::npos) << S;
}

TEST(ActionTest, KindNamesAreStable) {
  EXPECT_STREQ(actionKindName(ActionKind::AK_Call), "call");
  EXPECT_STREQ(actionKindName(ActionKind::AK_Return), "return");
  EXPECT_STREQ(actionKindName(ActionKind::AK_Commit), "commit");
  EXPECT_STREQ(actionKindName(ActionKind::AK_Write), "write");
  EXPECT_STREQ(actionKindName(ActionKind::AK_BlockBegin), "block-begin");
  EXPECT_STREQ(actionKindName(ActionKind::AK_BlockEnd), "block-end");
  EXPECT_STREQ(actionKindName(ActionKind::AK_ReplayOp), "replay-op");
}
