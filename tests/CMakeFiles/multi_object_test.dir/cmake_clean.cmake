file(REMOVE_RECURSE
  "CMakeFiles/multi_object_test.dir/MultiObjectTest.cpp.o"
  "CMakeFiles/multi_object_test.dir/MultiObjectTest.cpp.o.d"
  "multi_object_test"
  "multi_object_test.pdb"
  "multi_object_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_object_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
