# Empty compiler generated dependencies file for multi_object_test.
# This may be replaced when dependencies are built.
