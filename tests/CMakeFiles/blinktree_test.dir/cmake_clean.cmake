file(REMOVE_RECURSE
  "CMakeFiles/blinktree_test.dir/BLinkTreeTest.cpp.o"
  "CMakeFiles/blinktree_test.dir/BLinkTreeTest.cpp.o.d"
  "blinktree_test"
  "blinktree_test.pdb"
  "blinktree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blinktree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
