# Empty compiler generated dependencies file for blinktree_test.
# This may be replaced when dependencies are built.
