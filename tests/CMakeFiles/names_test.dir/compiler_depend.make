# Empty compiler generated dependencies file for names_test.
# This may be replaced when dependencies are built.
