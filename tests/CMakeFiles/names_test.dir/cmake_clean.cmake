file(REMOVE_RECURSE
  "CMakeFiles/names_test.dir/NamesTest.cpp.o"
  "CMakeFiles/names_test.dir/NamesTest.cpp.o.d"
  "names_test"
  "names_test.pdb"
  "names_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/names_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
