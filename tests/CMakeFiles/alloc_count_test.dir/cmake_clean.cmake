file(REMOVE_RECURSE
  "CMakeFiles/alloc_count_test.dir/AllocCountTest.cpp.o"
  "CMakeFiles/alloc_count_test.dir/AllocCountTest.cpp.o.d"
  "alloc_count_test"
  "alloc_count_test.pdb"
  "alloc_count_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_count_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
