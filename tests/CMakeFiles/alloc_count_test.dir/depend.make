# Empty dependencies file for alloc_count_test.
# This may be replaced when dependencies are built.
