# Empty compiler generated dependencies file for bst_test.
# This may be replaced when dependencies are built.
