file(REMOVE_RECURSE
  "CMakeFiles/bst_test.dir/BstTest.cpp.o"
  "CMakeFiles/bst_test.dir/BstTest.cpp.o.d"
  "bst_test"
  "bst_test.pdb"
  "bst_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bst_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
