file(REMOVE_RECURSE
  "CMakeFiles/buffered_log_test.dir/BufferedLogTest.cpp.o"
  "CMakeFiles/buffered_log_test.dir/BufferedLogTest.cpp.o.d"
  "buffered_log_test"
  "buffered_log_test.pdb"
  "buffered_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffered_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
