# Empty dependencies file for buffered_log_test.
# This may be replaced when dependencies are built.
