file(REMOVE_RECURSE
  "CMakeFiles/hashtable_test.dir/HashtableTest.cpp.o"
  "CMakeFiles/hashtable_test.dir/HashtableTest.cpp.o.d"
  "hashtable_test"
  "hashtable_test.pdb"
  "hashtable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hashtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
