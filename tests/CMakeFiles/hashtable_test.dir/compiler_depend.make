# Empty compiler generated dependencies file for hashtable_test.
# This may be replaced when dependencies are built.
