file(REMOVE_RECURSE
  "CMakeFiles/checker_memo_test.dir/CheckerMemoTest.cpp.o"
  "CMakeFiles/checker_memo_test.dir/CheckerMemoTest.cpp.o.d"
  "checker_memo_test"
  "checker_memo_test.pdb"
  "checker_memo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_memo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
