
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AutoInstrumentTest.cpp" "tests/CMakeFiles/auto_instrument_test.dir/AutoInstrumentTest.cpp.o" "gcc" "tests/CMakeFiles/auto_instrument_test.dir/AutoInstrumentTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/harness/CMakeFiles/vyrd_harness.dir/DependInfo.cmake"
  "/root/repo/src/scanfs/CMakeFiles/vyrd_scanfs.dir/DependInfo.cmake"
  "/root/repo/src/queue/CMakeFiles/vyrd_queue.dir/DependInfo.cmake"
  "/root/repo/src/multiset/CMakeFiles/vyrd_multiset.dir/DependInfo.cmake"
  "/root/repo/src/bst/CMakeFiles/vyrd_bst.dir/DependInfo.cmake"
  "/root/repo/src/javalib/CMakeFiles/vyrd_javalib.dir/DependInfo.cmake"
  "/root/repo/src/blinktree/CMakeFiles/vyrd_blinktree.dir/DependInfo.cmake"
  "/root/repo/src/cache/CMakeFiles/vyrd_cache.dir/DependInfo.cmake"
  "/root/repo/src/chunk/CMakeFiles/vyrd_chunk.dir/DependInfo.cmake"
  "/root/repo/src/CMakeFiles/vyrd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
