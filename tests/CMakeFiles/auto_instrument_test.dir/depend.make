# Empty dependencies file for auto_instrument_test.
# This may be replaced when dependencies are built.
