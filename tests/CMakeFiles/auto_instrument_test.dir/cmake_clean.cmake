file(REMOVE_RECURSE
  "CMakeFiles/auto_instrument_test.dir/AutoInstrumentTest.cpp.o"
  "CMakeFiles/auto_instrument_test.dir/AutoInstrumentTest.cpp.o.d"
  "auto_instrument_test"
  "auto_instrument_test.pdb"
  "auto_instrument_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_instrument_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
