file(REMOVE_RECURSE
  "CMakeFiles/log_surgery_test.dir/LogSurgeryTest.cpp.o"
  "CMakeFiles/log_surgery_test.dir/LogSurgeryTest.cpp.o.d"
  "log_surgery_test"
  "log_surgery_test.pdb"
  "log_surgery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_surgery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
