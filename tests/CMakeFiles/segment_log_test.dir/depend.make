# Empty dependencies file for segment_log_test.
# This may be replaced when dependencies are built.
