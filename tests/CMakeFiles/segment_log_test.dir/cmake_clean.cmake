file(REMOVE_RECURSE
  "CMakeFiles/segment_log_test.dir/SegmentLogTest.cpp.o"
  "CMakeFiles/segment_log_test.dir/SegmentLogTest.cpp.o.d"
  "segment_log_test"
  "segment_log_test.pdb"
  "segment_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segment_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
