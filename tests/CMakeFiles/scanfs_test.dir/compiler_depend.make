# Empty compiler generated dependencies file for scanfs_test.
# This may be replaced when dependencies are built.
