file(REMOVE_RECURSE
  "CMakeFiles/scanfs_test.dir/ScanFsTest.cpp.o"
  "CMakeFiles/scanfs_test.dir/ScanFsTest.cpp.o.d"
  "scanfs_test"
  "scanfs_test.pdb"
  "scanfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scanfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
