file(REMOVE_RECURSE
  "CMakeFiles/nonlinearizable_scan_test.dir/NonLinearizableScanTest.cpp.o"
  "CMakeFiles/nonlinearizable_scan_test.dir/NonLinearizableScanTest.cpp.o.d"
  "nonlinearizable_scan_test"
  "nonlinearizable_scan_test.pdb"
  "nonlinearizable_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nonlinearizable_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
