# Empty dependencies file for nonlinearizable_scan_test.
# This may be replaced when dependencies are built.
