# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for nonlinearizable_scan_test.
