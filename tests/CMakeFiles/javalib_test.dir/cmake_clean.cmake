file(REMOVE_RECURSE
  "CMakeFiles/javalib_test.dir/JavalibTest.cpp.o"
  "CMakeFiles/javalib_test.dir/JavalibTest.cpp.o.d"
  "javalib_test"
  "javalib_test.pdb"
  "javalib_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javalib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
