# Empty dependencies file for javalib_test.
# This may be replaced when dependencies are built.
