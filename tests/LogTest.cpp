//===- LogTest.cpp - Unit tests for MemoryLog and FileLog ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

using namespace vyrd;

namespace {

std::string tempPath(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-logtest-" + Tag + "-" +
         std::to_string(::getpid()) + ".bin";
}

} // namespace

TEST(MemoryLogTest, AssignsSequentialSeqNumbers) {
  MemoryLog L;
  Name M = internName("m");
  EXPECT_EQ(L.append(Action::call(0, M, {})), 0u);
  EXPECT_EQ(L.append(Action::commit(0)), 1u);
  EXPECT_EQ(L.append(Action::ret(0, M, Value(true))), 2u);
  EXPECT_EQ(L.appendCount(), 3u);
}

TEST(MemoryLogTest, NextDrainsInOrderThenEnds) {
  MemoryLog L;
  Name M = internName("m");
  L.append(Action::call(1, M, {Value(5)}));
  L.append(Action::ret(1, M, Value(false)));
  L.close();
  Action A;
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_Call);
  EXPECT_EQ(A.Seq, 0u);
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_Return);
  EXPECT_FALSE(L.next(A));
}

TEST(MemoryLogTest, TryNextReportsPendingVsEnd) {
  MemoryLog L;
  Action A;
  bool End = true;
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_FALSE(End) << "log still open: not at end";
  L.close();
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_TRUE(End);
}

TEST(MemoryLogTest, BlockingReaderWakesOnAppend) {
  MemoryLog L;
  Action Got;
  std::thread Reader([&] { ASSERT_TRUE(L.next(Got)); });
  L.append(Action::commit(7));
  Reader.join();
  EXPECT_EQ(Got.Kind, ActionKind::AK_Commit);
  EXPECT_EQ(Got.Tid, 7u);
  L.close();
}

TEST(MemoryLogTest, ConcurrentAppendersGetUniqueSeqs) {
  MemoryLog L;
  constexpr int PerThread = 500;
  std::vector<std::thread> Ts;
  for (int T = 0; T < 4; ++T)
    Ts.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I)
        L.append(Action::commit(0));
    });
  for (auto &T : Ts)
    T.join();
  L.close();
  EXPECT_EQ(L.appendCount(), 4u * PerThread);
  Action A;
  uint64_t Expected = 0;
  while (L.next(A))
    EXPECT_EQ(A.Seq, Expected++);
  EXPECT_EQ(Expected, 4u * PerThread);
}

TEST(FileLogTest, TailServesOnlineReader) {
  std::string Path = tempPath("tail");
  bool Valid = false;
  FileLog L(Path, Valid);
  ASSERT_TRUE(Valid);
  Name M = internName("FileM");
  L.append(Action::call(2, M, {Value(1)}));
  L.append(Action::ret(2, M, Value(true)));
  L.close();
  Action A;
  ASSERT_TRUE(L.next(A));
  EXPECT_EQ(A.Kind, ActionKind::AK_Call);
  ASSERT_TRUE(L.next(A));
  EXPECT_FALSE(L.next(A));
  std::remove(Path.c_str());
}

TEST(FileLogTest, FileRoundTripsThroughLoadLogFile) {
  std::string Path = tempPath("roundtrip");
  {
    bool Valid = false;
    FileLog L(Path, Valid);
    ASSERT_TRUE(Valid);
    Name M = internName("FileRt");
    Name Var = internName("file.var");
    L.append(Action::call(1, M, {Value(10), Value("arg")}));
    L.append(Action::write(1, Var, Value(Value::Bytes{1, 2, 3})));
    L.append(Action::blockBegin(1));
    L.append(Action::commit(1));
    L.append(Action::blockEnd(1));
    L.append(Action::ret(1, M, Value(false)));
    L.close();
  }
  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  ASSERT_EQ(Loaded.size(), 6u);
  EXPECT_EQ(Loaded[0].Kind, ActionKind::AK_Call);
  EXPECT_EQ(Loaded[0].Args[1], Value("arg"));
  EXPECT_EQ(Loaded[1].Ret, Value(Value::Bytes{1, 2, 3}));
  EXPECT_EQ(Loaded[3].Kind, ActionKind::AK_Commit);
  EXPECT_EQ(Loaded[5].Ret, Value(false));
  for (size_t I = 0; I < Loaded.size(); ++I)
    EXPECT_EQ(Loaded[I].Seq, I);
  std::remove(Path.c_str());
}

TEST(FileLogTest, ByteCountGrows) {
  std::string Path = tempPath("bytes");
  bool Valid = false;
  FileLog L(Path, Valid);
  ASSERT_TRUE(Valid);
  // A fresh file already holds the format header (docs/LOGFORMAT.md):
  // 4 magic bytes + 1 version varint.
  EXPECT_EQ(L.byteCount(), 5u);
  L.append(Action::commit(0));
  uint64_t B1 = L.byteCount();
  EXPECT_GT(B1, 5u);
  L.append(Action::commit(0));
  EXPECT_GT(L.byteCount(), B1);
  L.close();
  std::remove(Path.c_str());
}

TEST(FileLogTest, NoTailModeRetainsNothingButStillWritesFile) {
  std::string Path = tempPath("notail");
  {
    bool Valid = false;
    FileLog L(Path, Valid, /*RetainTail=*/false);
    ASSERT_TRUE(Valid);
    for (int I = 0; I < 10; ++I)
      L.append(Action::commit(0));
    L.close();
    Action A;
    EXPECT_FALSE(L.next(A)) << "no tail kept";
    EXPECT_EQ(L.appendCount(), 10u);
  }
  std::vector<Action> Loaded;
  ASSERT_TRUE(loadLogFile(Path, Loaded));
  EXPECT_EQ(Loaded.size(), 10u);
  std::remove(Path.c_str());
}

TEST(MemoryLogTest, TryNextDrainsTailThenSignalsEnd) {
  MemoryLog L;
  L.append(Action::commit(1));
  L.append(Action::commit(2));
  L.close();
  // After close the pending records must still drain before End is
  // reported.
  Action A;
  bool End = true;
  ASSERT_TRUE(L.tryNext(A, End));
  EXPECT_EQ(A.Tid, 1u);
  EXPECT_FALSE(End);
  ASSERT_TRUE(L.tryNext(A, End));
  EXPECT_EQ(A.Tid, 2u);
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_TRUE(End);
}

TEST(MemoryLogTest, NextBatchDrainsUpToMax) {
  MemoryLog L;
  for (int I = 0; I < 7; ++I)
    L.append(Action::commit(0));
  L.close();
  std::vector<Action> Batch;
  ASSERT_TRUE(L.nextBatch(Batch, 5));
  EXPECT_EQ(Batch.size(), 5u);
  EXPECT_EQ(Batch[4].Seq, 4u);
  ASSERT_TRUE(L.nextBatch(Batch, 5));
  EXPECT_EQ(Batch.size(), 2u);
  EXPECT_FALSE(L.nextBatch(Batch, 5));
  EXPECT_TRUE(Batch.empty());
}

TEST(FileLogTest, NoTailTryNextSignalsEndOnlyAfterClose) {
  std::string Path = tempPath("notail-signal");
  bool Valid = false;
  FileLog L(Path, Valid, /*RetainTail=*/false);
  ASSERT_TRUE(Valid);
  L.append(Action::commit(0));
  // Without a tail the records are never readable, but the reader must
  // still be told "not yet" until the log closes, and "end" after.
  Action A;
  bool End = true;
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_FALSE(End);
  L.close();
  EXPECT_FALSE(L.tryNext(A, End));
  EXPECT_TRUE(End);
  std::remove(Path.c_str());
}

TEST(FileLogTest, NoTailNextBatchReportsEndAfterClose) {
  std::string Path = tempPath("notail-batch");
  bool Valid = false;
  FileLog L(Path, Valid, /*RetainTail=*/false);
  ASSERT_TRUE(Valid);
  for (int I = 0; I < 3; ++I)
    L.append(Action::commit(0));
  L.close();
  std::vector<Action> Batch;
  EXPECT_FALSE(L.nextBatch(Batch, 16));
  EXPECT_TRUE(Batch.empty());
  EXPECT_EQ(L.appendCount(), 3u);
  std::remove(Path.c_str());
}

TEST(FileLogTest, InvalidPathReportsInvalid) {
  bool Valid = true;
  FileLog L("/nonexistent-dir-xyz/file.bin", Valid);
  EXPECT_FALSE(Valid);
}

TEST(FileLogTest, LoadLogFileFailsOnMissingFile) {
  std::vector<Action> Loaded;
  EXPECT_FALSE(loadLogFile("/nonexistent-dir-xyz/file.bin", Loaded));
}
