//===- AdaptiveTest.cpp - Self-tuning pipeline controller tests -----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the adaptive pipeline at three layers: the AdaptiveController
/// in isolation (fake-clock AIMD steps, escalation-ladder hysteresis —
/// no sleeps, fully deterministic), the checker-pool admission clamp the
/// controller made load-bearing (the bound must hold exactly even when
/// the pump batch outgrows it), and end-to-end Verifier runs where a
/// throttled checker forces real escalations whose verdicts must match
/// the unbounded run. The multi-producer stress is part of the TSan
/// suite — the policy/batch cells are read on producer, flusher and pump
/// threads concurrently.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vyrd/Adaptive.h"
#include "vyrd/Log.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Fake monotonic clock for driving observe() without sleeps.
struct FakeClock {
  uint64_t NowNs = 1; // never 0: observe() treats 0 as "unset"
  uint64_t advanceUs(uint64_t Us) { return NowNs += Us * 1000; }
};

AdaptiveConfig testConfig() {
  AdaptiveConfig A;
  A.Enabled = true;
  A.MinBatch = 64;
  A.InitialBatch = 256;
  A.MaxBatch = 1024;
  A.GrowStep = 128;
  A.ShrinkFactor = 0.5;
  A.GrowLagRecords = 1000;
  A.ShrinkLagRecords = 100;
  A.DecisionIntervalUs = 100;
  return A;
}

} // namespace

//===----------------------------------------------------------------------===//
// Config validation
//===----------------------------------------------------------------------===//

TEST(AdaptiveConfigTest, ValidateAcceptsDefaultsAndEnabled) {
  VerifierConfig C;
  EXPECT_EQ(C.validate(), "") << "adaptation off is the default";
  C.Adaptive.Enabled = true;
  EXPECT_EQ(C.validate(), "");
}

TEST(AdaptiveConfigTest, ValidateRejectsBadKnobs) {
  VerifierConfig C;
  C.Adaptive.Enabled = true;

  C.Adaptive.MinBatch = 0;
  EXPECT_NE(C.validate(), "");
  C.Adaptive = AdaptiveConfig{};
  C.Adaptive.Enabled = true;

  C.Adaptive.MaxBatch = C.Adaptive.MinBatch - 1;
  EXPECT_NE(C.validate(), "");
  C.Adaptive = AdaptiveConfig{};
  C.Adaptive.Enabled = true;

  C.Adaptive.InitialBatch = C.Adaptive.MaxBatch + 1;
  EXPECT_NE(C.validate(), "") << "initial target outside [min, max]";
  C.Adaptive = AdaptiveConfig{};
  C.Adaptive.Enabled = true;

  C.Adaptive.GrowStep = 0;
  EXPECT_NE(C.validate(), "");
  C.Adaptive = AdaptiveConfig{};
  C.Adaptive.Enabled = true;

  C.Adaptive.ShrinkFactor = 0.0;
  EXPECT_NE(C.validate(), "");
  C.Adaptive.ShrinkFactor = 1.5;
  EXPECT_NE(C.validate(), "");
  C.Adaptive.ShrinkFactor = 1.0;
  EXPECT_EQ(C.validate(), "") << "1.0 (never shrink) is a valid choice";

  C.Online = false;
  EXPECT_NE(C.validate(), "") << "no live lag to react to offline";
}

TEST(AdaptiveConfigTest, ValidateRejectsEscalationWithoutBackpressure) {
  VerifierConfig C;
  C.Adaptive.Enabled = true;
  C.Adaptive.EscalatePolicy = true;
  EXPECT_NE(C.validate(), "") << "no admission policy to escalate";
  C.Backpressure.Enabled = true;
  EXPECT_EQ(C.validate(), "");
  C.Adaptive.DeescalateLagLo = C.Adaptive.EscalateLagHi;
  EXPECT_NE(C.validate(), "") << "watermarks need a dead band";
}

//===----------------------------------------------------------------------===//
// AIMD batch target (fake clock, no sleeps)
//===----------------------------------------------------------------------===//

TEST(AdaptiveControllerTest, GrowsAdditivelyUnderLagUpToMax) {
  AdaptiveConfig A = testConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, false);
  FakeClock Clk;
  EXPECT_EQ(Ctl.batchTarget(), 256u);
  // Each paced decision with lag >= GrowLagRecords adds GrowStep.
  Ctl.observe(5000, 0, Clk.NowNs);
  EXPECT_EQ(Ctl.batchTarget(), 384u);
  Ctl.observe(5000, 0, Clk.advanceUs(A.DecisionIntervalUs));
  EXPECT_EQ(Ctl.batchTarget(), 512u);
  for (int I = 0; I < 20; ++I)
    Ctl.observe(5000, 0, Clk.advanceUs(A.DecisionIntervalUs));
  EXPECT_EQ(Ctl.batchTarget(), A.MaxBatch) << "clamped at MaxBatch";
  EXPECT_EQ(Ctl.batchTargetHwm(), A.MaxBatch);
}

TEST(AdaptiveControllerTest, ShrinksMultiplicativelyDownToMin) {
  AdaptiveConfig A = testConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, false);
  FakeClock Clk;
  Ctl.observe(0, 0, Clk.NowNs); // 256 -> 128
  EXPECT_EQ(Ctl.batchTarget(), 128u);
  Ctl.observe(0, 0, Clk.advanceUs(A.DecisionIntervalUs)); // 128 -> 64
  EXPECT_EQ(Ctl.batchTarget(), A.MinBatch);
  Ctl.observe(0, 0, Clk.advanceUs(A.DecisionIntervalUs));
  EXPECT_EQ(Ctl.batchTarget(), A.MinBatch) << "clamped at MinBatch";
  EXPECT_EQ(Ctl.batchTargetHwm(), 256u) << "HWM remembers the start";
}

TEST(AdaptiveControllerTest, DecisionsArePacedByInterval) {
  AdaptiveConfig A = testConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, false);
  FakeClock Clk;
  Ctl.observe(5000, 0, Clk.NowNs); // 256 -> 384, starts the interval
  // Calls inside the decision interval are lag samples, not steps: tiny
  // adaptive batches must not turn into a growth step per pump loop.
  for (int I = 0; I < 50; ++I)
    Ctl.observe(5000, 0, Clk.advanceUs(1));
  EXPECT_EQ(Ctl.batchTarget(), 384u);
  Ctl.observe(5000, 0, Clk.advanceUs(A.DecisionIntervalUs));
  EXPECT_EQ(Ctl.batchTarget(), 512u);
}

TEST(AdaptiveControllerTest, DeadZoneHoldsTheTarget) {
  AdaptiveConfig A = testConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, false);
  FakeClock Clk;
  // Lag between the shrink and grow watermarks: no change, ever.
  for (int I = 0; I < 10; ++I)
    Ctl.observe(500, 0, Clk.advanceUs(A.DecisionIntervalUs));
  EXPECT_EQ(Ctl.batchTarget(), 256u);
}

//===----------------------------------------------------------------------===//
// Escalation ladder + hysteresis (fake clock, no sleeps)
//===----------------------------------------------------------------------===//

namespace {

AdaptiveConfig escalatingConfig() {
  AdaptiveConfig A = testConfig();
  A.EscalatePolicy = true;
  A.EscalateLagHi = 10000;
  A.DeescalateLagLo = 50;
  A.EscalateHoldUs = 1000;
  A.DeescalateHoldUs = 2000;
  return A;
}

} // namespace

TEST(AdaptiveControllerTest, LadderShapeFollowsBaseAndSpillCapability) {
  AdaptiveConfig A = escalatingConfig();
  {
    AdaptiveController C(A, BackpressurePolicy::BP_Block, true);
    EXPECT_TRUE(C.dynamicPolicy());
    EXPECT_TRUE(C.canReachSpill());
    EXPECT_TRUE(C.canReachShed());
  }
  {
    AdaptiveController C(A, BackpressurePolicy::BP_Block, false);
    EXPECT_TRUE(C.dynamicPolicy());
    EXPECT_FALSE(C.canReachSpill()) << "memory log: no spill rung";
    EXPECT_TRUE(C.canReachShed());
  }
  {
    AdaptiveController C(A, BackpressurePolicy::BP_SpillToDisk, true);
    EXPECT_TRUE(C.dynamicPolicy());
    EXPECT_FALSE(C.canReachSpill()) << "spill is the base, not a rung";
    EXPECT_TRUE(C.canReachShed());
  }
  {
    AdaptiveController C(A, BackpressurePolicy::BP_Shed, false);
    EXPECT_FALSE(C.dynamicPolicy()) << "shed has nowhere to escalate";
  }
  {
    AdaptiveConfig Off = testConfig(); // EscalatePolicy = false
    AdaptiveController C(Off, BackpressurePolicy::BP_Block, true);
    EXPECT_FALSE(C.dynamicPolicy());
  }
}

TEST(AdaptiveControllerTest, EscalatesOnlyAfterSustainedLag) {
  AdaptiveConfig A = escalatingConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, true);
  FakeClock Clk;
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_Block);
  // Above the watermark but not yet for the hold time: no change.
  EXPECT_FALSE(Ctl.observe(20000, 10, Clk.NowNs));
  EXPECT_FALSE(Ctl.observe(20000, 20, Clk.advanceUs(500)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_Block);
  // Hold satisfied: one rung per fresh hold, never two at once.
  EXPECT_TRUE(Ctl.observe(20000, 30, Clk.advanceUs(600)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_SpillToDisk);
  EXPECT_FALSE(Ctl.observe(20000, 40, Clk.advanceUs(500)))
      << "the next rung needs a fresh full hold";
  EXPECT_TRUE(Ctl.observe(20000, 50, Clk.advanceUs(600)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_Shed);
  EXPECT_FALSE(Ctl.observe(20000, 60, Clk.advanceUs(5000)))
      << "top of the ladder: nowhere further";
  EXPECT_EQ(Ctl.escalations(), 2u);
  ASSERT_EQ(Ctl.transitions().size(), 2u);
  EXPECT_EQ(Ctl.transitions()[0].str(), "block->spill");
  EXPECT_EQ(Ctl.transitions()[1].str(), "spill->shed");
  EXPECT_EQ(Ctl.transitions()[1].Seq, 50u);
  EXPECT_TRUE(Ctl.transitions()[1].Escalation);
}

TEST(AdaptiveControllerTest, LagDipResetsTheEscalationHold) {
  AdaptiveConfig A = escalatingConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, true);
  FakeClock Clk;
  EXPECT_FALSE(Ctl.observe(20000, 0, Clk.NowNs));
  // A dip into the dead zone resets the hold timer...
  EXPECT_FALSE(Ctl.observe(500, 0, Clk.advanceUs(900)));
  // ...so reaching the original deadline no longer escalates.
  EXPECT_FALSE(Ctl.observe(20000, 0, Clk.advanceUs(200)));
  EXPECT_FALSE(Ctl.observe(20000, 0, Clk.advanceUs(900)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_Block);
  // The fresh hold, uninterrupted, does.
  EXPECT_TRUE(Ctl.observe(20000, 0, Clk.advanceUs(200)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_SpillToDisk);
}

TEST(AdaptiveControllerTest, DeescalatesWithItsOwnHoldAndHysteresis) {
  AdaptiveConfig A = escalatingConfig();
  AdaptiveController Ctl(A, BackpressurePolicy::BP_Block, true);
  FakeClock Clk;
  // Walk up to shed.
  Ctl.observe(20000, 0, Clk.NowNs);
  Ctl.observe(20000, 0, Clk.advanceUs(1100));
  Ctl.observe(20000, 0, Clk.advanceUs(1100));
  ASSERT_EQ(Ctl.policy(), BackpressurePolicy::BP_Shed);
  // Lag drained below the low watermark, but the de-escalation hold
  // (2000 us) is longer than the escalation hold — no flap.
  EXPECT_FALSE(Ctl.observe(10, 0, Clk.advanceUs(100)));
  EXPECT_FALSE(Ctl.observe(10, 0, Clk.advanceUs(1900)));
  EXPECT_TRUE(Ctl.observe(10, 100, Clk.advanceUs(200)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_SpillToDisk);
  // The dead zone holds the current rung in both directions.
  for (int I = 0; I < 10; ++I)
    EXPECT_FALSE(Ctl.observe(5000, 0, Clk.advanceUs(1000)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_SpillToDisk);
  // Drain again: back to the base policy, fully accounted.
  EXPECT_FALSE(Ctl.observe(10, 0, Clk.advanceUs(100)));
  EXPECT_TRUE(Ctl.observe(10, 0, Clk.advanceUs(2100)));
  EXPECT_EQ(Ctl.policy(), BackpressurePolicy::BP_Block);
  EXPECT_EQ(Ctl.escalations(), 2u);
  EXPECT_EQ(Ctl.deescalations(), 2u);
  ASSERT_EQ(Ctl.transitions().size(), 4u);
  EXPECT_FALSE(Ctl.transitions()[3].Escalation);
  EXPECT_EQ(Ctl.transitions()[3].str(), "spill->block");
}

//===----------------------------------------------------------------------===//
// End-to-end: throttled checker, adaptation on
//===----------------------------------------------------------------------===//

namespace {

void spinFor(std::chrono::nanoseconds D) {
  auto Until = std::chrono::steady_clock::now() + D;
  while (std::chrono::steady_clock::now() < Until)
    ;
}

/// Integer register with an optional per-spec-step busy-wait (same shape
/// as the BackpressureTest spec) so producers outrun the checker.
class ThrottledRegisterSpec : public Spec {
public:
  explicit ThrottledRegisterSpec(unsigned ThrottleUs = 0)
      : SetM(name("ad.Set")), GetM(name("ad.Get")), State(Value(0)),
        ThrottleUs(ThrottleUs) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &) override {
    throttle();
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() ||
        !Ret.asBool())
      return false;
    State = Args[0];
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    throttle();
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override { Out.clear(); }

  Name SetM, GetM;
  Value State;

private:
  void throttle() const {
    if (ThrottleUs)
      spinFor(std::chrono::microseconds(ThrottleUs));
  }
  unsigned ThrottleUs;
};

/// Appends \p Execs correct executions (one Set + one Get each, 5
/// records), optionally seeding one mutator violation, then finishes.
VerifierReport runThrottled(VerifierConfig C, unsigned ThrottleUs,
                            int Execs, bool SeedViolation = false) {
  ThrottledRegisterSpec Script; // same method names, for the producer
  Verifier V(std::make_unique<ThrottledRegisterSpec>(ThrottleUs), nullptr,
             std::move(C));
  V.start();
  LogWriter &W = V.log().writer();
  for (int I = 0; I < Execs; ++I) {
    W.append(Action::call(1, Script.SetM, {Value(I)}));
    W.append(Action::commit(1));
    W.append(Action::ret(1, Script.SetM, Value(true)));
    W.append(Action::call(1, Script.GetM, {}));
    W.append(Action::ret(1, Script.GetM, Value(I)));
  }
  if (SeedViolation) {
    W.append(Action::call(1, Script.SetM, {Value(-1)}));
    W.append(Action::commit(1));
    W.append(Action::ret(1, Script.SetM, Value(false)));
  }
  return V.finish();
}

} // namespace

TEST(AdaptiveVerifierTest, PoolAdmissionNeverOvershootsTheBound) {
  // Regression: pool admission used to be batch-granular (wait for room,
  // then add the whole batch), overshooting MaxPendingRecords by up to a
  // pump batch — with adaptive sizing, by up to MaxBatch. Admission is
  // now sliced at the free room, so the bound holds exactly.
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.CheckerThreads = 2;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 64;
  C.Adaptive.Enabled = true; // batches grow well past the bound
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/1, /*Execs=*/3000);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 6000u);
  EXPECT_LE(R.Backpressure.PendingRecordsHwm, 64u)
      << "the bound must hold exactly, not modulo one batch";
  EXPECT_GE(R.Adaptive.BatchTargetHwm, 256u);
}

TEST(AdaptiveVerifierTest, BatchTargetGrowsUnderBacklogAndReportsIt) {
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Adaptive.Enabled = true;
  C.Adaptive.GrowLagRecords = 256;
  C.Adaptive.DecisionIntervalUs = 50;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/1, /*Execs=*/4000);
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_TRUE(R.Adaptive.Enabled);
  EXPECT_GT(R.Adaptive.BatchTargetHwm, 256u)
      << "a 1us/step checker must fall behind and grow the batch";
  EXPECT_NE(R.str().find("adaptive:"), std::string::npos) << R.str();
  EXPECT_TRUE(jsonValid(R.json())) << R.json();
  EXPECT_NE(R.json().find("\"adaptive\""), std::string::npos);
}

TEST(AdaptiveVerifierTest, EscalationFiresAndVerdictsMatchUnbounded) {
  // Unbounded static run: the ground truth (one seeded mutator
  // violation).
  VerifierConfig U;
  U.Checker.Mode = CheckMode::CM_IORefinement;
  VerifierReport A = runThrottled(U, /*ThrottleUs=*/0, /*Execs=*/2000,
                                  /*SeedViolation=*/true);
  ASSERT_EQ(A.Violations.size(), 1u);

  // Bounded adaptive run with a throttled checker: the lag crosses the
  // escalate watermark (the block bound caps it at MaxPendingRecords, so
  // the watermark sits below that), policy escalates block -> shed
  // (memory log: no spill rung), observers are shed — but mutators never
  // are, so the seeded violation survives with the same verdict.
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 512;
  C.Adaptive.Enabled = true;
  C.Adaptive.EscalatePolicy = true;
  C.Adaptive.EscalateLagHi = 256;
  C.Adaptive.DeescalateLagLo = 8;
  C.Adaptive.EscalateHoldUs = 200;
  C.Adaptive.DeescalateHoldUs = 100000; // stay escalated once there
  VerifierReport B = runThrottled(C, /*ThrottleUs=*/2, /*Execs=*/2000,
                                  /*SeedViolation=*/true);
  EXPECT_GE(B.Adaptive.Escalations, 1u) << B.str();
  ASSERT_GE(B.Adaptive.Transitions.size(), 1u);
  EXPECT_EQ(B.Adaptive.Transitions[0].str(), "block->shed");
  ASSERT_EQ(B.Violations.size(), 1u)
      << "the seeded violation must survive escalation: " << B.str();
  EXPECT_EQ(B.Violations[0].Kind, A.Violations[0].Kind);
  EXPECT_EQ(B.Violations[0].Seq, A.Violations[0].Seq);
  EXPECT_TRUE(jsonValid(B.json())) << B.json();
  EXPECT_NE(B.json().find("\"transitions\""), std::string::npos);
}

TEST(AdaptiveVerifierTest, AdaptationOffIsBehaviorallyUnchanged) {
  // The same bounded workload with and without the Adaptive struct
  // defaulted must agree on everything the report can see.
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 64;
  VerifierReport R = runThrottled(C, /*ThrottleUs=*/0, /*Execs=*/1000);
  EXPECT_TRUE(R.ok());
  EXPECT_FALSE(R.Adaptive.Enabled);
  EXPECT_EQ(R.Adaptive.Transitions.size(), 0u);
  EXPECT_EQ(R.json().find("\"adaptive\""), std::string::npos)
      << "static runs keep their report schema";
  EXPECT_EQ(R.str().find("adaptive:"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Multi-producer stress (TSan suite): cells read across threads
//===----------------------------------------------------------------------===//

TEST(AdaptiveStressTest, BlockedProducersNeverDuplicateSpillReadRecords) {
  // Regression: with a block-base dynamic ladder the file log is
  // spill-capable, so the reader fills tail gaps from disk. A producer
  // blocked on space has already written its record to the sink; a fast
  // reader can drain the tail, spill-read that record from disk, and
  // advance the delivery frontier past it — all before the producer
  // wakes and pushes the record into the tail. Popping that stale tail
  // entry used to rewind the frontier, delivering the next record
  // twice (duplicate commits, bracket-state violations). The frontier
  // is monotone now; this drives the exact overlap with two blocked
  // producers and an unthrottled checker.
  ThrottledRegisterSpec Script;
  std::string Path =
      std::string(::testing::TempDir()) + "vyrd-adaptive-monotone-" +
      std::to_string(::getpid()) + ".bin";
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backend = LogBackend::LB_File;
  C.LogFilePath = Path;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 128;
  C.Adaptive.Enabled = true;
  C.Adaptive.EscalatePolicy = true;
  // Lag is capped at the bound under block, so the ladder never moves:
  // every record must be checked, none shed or left to spill.
  C.Adaptive.EscalateLagHi = 4096;
  Verifier V(std::make_unique<ThrottledRegisterSpec>(/*ThrottleUs=*/0),
             nullptr, std::move(C));
  V.start();
  {
    LogWriter &W = V.log().writer();
    W.append(Action::call(9, Script.SetM, {Value(7)}));
    W.append(Action::commit(9));
    W.append(Action::ret(9, Script.SetM, Value(true)));
  }
  constexpr int PerThread = 3000;
  std::vector<std::thread> Producers;
  for (int T = 0; T < 2; ++T)
    Producers.emplace_back([&, T] {
      LogWriter &W = V.log().writer();
      ThreadId Tid = static_cast<ThreadId>(T + 1);
      for (int I = 0; I < PerThread; ++I) {
        W.append(Action::call(Tid, Script.GetM, {}));
        W.append(Action::ret(Tid, Script.GetM, Value(7)));
      }
    });
  for (std::thread &P : Producers)
    P.join();
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_EQ(R.Stats.ObserversChecked, 2u * PerThread) << R.str();
  EXPECT_EQ(R.Stats.MethodsChecked, 2u * PerThread + 1) << R.str();
  EXPECT_EQ(R.Backpressure.ShedRecords, 0u);
  EXPECT_TRUE(R.Adaptive.Transitions.empty()) << R.str();
  std::remove(Path.c_str());
}

TEST(AdaptiveStressTest, FourProducersWithAdaptationAndEscalation) {
  // Four producer threads through the buffered backend's shard rings, a
  // throttled checker, adaptation and escalation armed: the policy cell
  // is written by the pump and read by the flusher's admission, the
  // batch cell by the pump and the flusher's emit quantum. One Set(7)
  // first, then concurrent Get()==7 observers — always correct, from
  // any interleaving.
  ThrottledRegisterSpec Script;
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  C.Backend = LogBackend::LB_Buffered;
  C.ShardCapacity = 256;
  C.Backpressure.Enabled = true;
  C.Backpressure.MaxPendingRecords = 512;
  C.Adaptive.Enabled = true;
  C.Adaptive.EscalatePolicy = true;
  C.Adaptive.EscalateLagHi = 384;
  C.Adaptive.DeescalateLagLo = 16;
  C.Adaptive.EscalateHoldUs = 200;
  C.Adaptive.DeescalateHoldUs = 500;
  Verifier V(std::make_unique<ThrottledRegisterSpec>(/*ThrottleUs=*/1),
             nullptr, std::move(C));
  V.start();
  {
    LogWriter &W = V.log().writer();
    W.append(Action::call(9, Script.SetM, {Value(7)}));
    W.append(Action::commit(9));
    W.append(Action::ret(9, Script.SetM, Value(true)));
  }
  constexpr int PerThread = 2000;
  std::vector<std::thread> Producers;
  for (int T = 0; T < 4; ++T)
    Producers.emplace_back([&, T] {
      LogWriter &W = V.log().writer();
      ThreadId Tid = static_cast<ThreadId>(T + 1);
      for (int I = 0; I < PerThread; ++I) {
        W.append(Action::call(Tid, Script.GetM, {}));
        W.append(Action::ret(Tid, Script.GetM, Value(7)));
      }
    });
  for (std::thread &P : Producers)
    P.join();
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_TRUE(R.Adaptive.Enabled);
  // Checked + shed must account for every appended observer execution.
  EXPECT_EQ(R.Stats.ObserversChecked + R.Backpressure.ShedRecords / 2,
            4u * PerThread)
      << R.str();
}
