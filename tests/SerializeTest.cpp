//===- SerializeTest.cpp - Unit tests for the binary log format -----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Serialize.h"

#include <gtest/gtest.h>

using namespace vyrd;

namespace {

Action roundTrip(const Action &A) {
  ActionEncoder Enc;
  ByteWriter W;
  Enc.encode(A, W);
  ByteReader R(W.buffer().data(), W.size());
  ActionDecoder Dec;
  Action Out;
  EXPECT_TRUE(Dec.decode(R, Out));
  EXPECT_TRUE(R.atEnd());
  return Out;
}

} // namespace

TEST(SerializeTest, VarintRoundTrip) {
  ByteWriter W;
  const uint64_t Cases[] = {0, 1, 127, 128, 300, 1u << 20, UINT64_MAX};
  for (uint64_t C : Cases)
    W.varint(C);
  ByteReader R(W.buffer().data(), W.size());
  for (uint64_t C : Cases)
    EXPECT_EQ(R.varint(), C);
  EXPECT_TRUE(R.ok());
  EXPECT_TRUE(R.atEnd());
}

TEST(SerializeTest, SignedVarintRoundTrip) {
  ByteWriter W;
  const int64_t Cases[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX};
  for (int64_t C : Cases)
    W.svarint(C);
  ByteReader R(W.buffer().data(), W.size());
  for (int64_t C : Cases)
    EXPECT_EQ(R.svarint(), C);
  EXPECT_TRUE(R.ok());
}

TEST(SerializeTest, SmallVarintIsOneByte) {
  ByteWriter W;
  W.varint(5);
  EXPECT_EQ(W.size(), 1u);
}

TEST(SerializeTest, StringRoundTrip) {
  ByteWriter W;
  W.str("hello world");
  W.str("");
  ByteReader R(W.buffer().data(), W.size());
  EXPECT_EQ(R.str(), "hello world");
  EXPECT_EQ(R.str(), "");
  EXPECT_TRUE(R.ok());
}

TEST(SerializeTest, ReaderFailsCleanlyOnTruncation) {
  ByteWriter W;
  W.str("hello");
  ByteReader R(W.buffer().data(), 2); // truncated
  (void)R.str();
  EXPECT_FALSE(R.ok());
}

TEST(SerializeTest, ReaderFailsOnUnterminatedVarint) {
  uint8_t Bad[] = {0x80, 0x80, 0x80};
  ByteReader R(Bad, sizeof(Bad));
  (void)R.varint();
  EXPECT_FALSE(R.ok());
}

TEST(SerializeTest, CallActionRoundTrip) {
  Action A = Action::call(3, internName("Insert"), {Value(42), Value("x")});
  A.Seq = 77;
  Action B = roundTrip(A);
  EXPECT_EQ(B.Kind, ActionKind::AK_Call);
  EXPECT_EQ(B.Tid, 3u);
  EXPECT_EQ(B.Seq, 77u);
  EXPECT_EQ(B.Method, A.Method);
  ASSERT_EQ(B.Args.size(), 2u);
  EXPECT_EQ(B.Args[0], Value(42));
  EXPECT_EQ(B.Args[1], Value("x"));
}

TEST(SerializeTest, ReturnActionRoundTrip) {
  Action A = Action::ret(1, internName("LookUp"), Value(true));
  Action B = roundTrip(A);
  EXPECT_EQ(B.Kind, ActionKind::AK_Return);
  EXPECT_EQ(B.Ret, Value(true));
  EXPECT_EQ(B.Method, A.Method);
}

TEST(SerializeTest, WriteActionRoundTrip) {
  Action A = Action::write(9, internName("A[3].elt"), Value(123));
  Action B = roundTrip(A);
  EXPECT_EQ(B.Kind, ActionKind::AK_Write);
  EXPECT_EQ(B.Var, A.Var);
  EXPECT_EQ(B.Ret, Value(123));
}

TEST(SerializeTest, ReplayOpWithBytesRoundTrip) {
  Action A = Action::replayOp(
      2, internName("cm.write"),
      {Value(7), Value(Value::Bytes{0, 1, 2, 3, 4, 250})});
  Action B = roundTrip(A);
  EXPECT_EQ(B.Kind, ActionKind::AK_ReplayOp);
  ASSERT_EQ(B.Args.size(), 2u);
  EXPECT_EQ(B.Args[1].asBytes().size(), 6u);
}

TEST(SerializeTest, NamesAreDefinedOncePerStream) {
  ActionEncoder Enc;
  ByteWriter W1, W2;
  Action A = Action::commit(0);
  A.Method = internName("SomeVeryLongMethodNameForSizeTest");
  Enc.encode(A, W1);
  Enc.encode(A, W2);
  // Second encoding reuses the file-local id: strictly smaller.
  EXPECT_LT(W2.size(), W1.size());
}

TEST(SerializeTest, StreamOfMixedActionsRoundTrips) {
  std::vector<Action> Script;
  Name M = internName("M");
  Name Var = internName("v");
  for (int I = 0; I < 50; ++I) {
    Script.push_back(Action::call(I % 4, M, {Value(I)}));
    Script.push_back(Action::write(I % 4, Var, Value(I * 2)));
    Script.push_back(Action::blockBegin(I % 4));
    Script.push_back(Action::blockEnd(I % 4));
    Script.push_back(Action::commit(I % 4));
    Script.push_back(Action::ret(I % 4, M, Value(I % 2 == 0)));
  }
  ActionEncoder Enc;
  ByteWriter W;
  for (Action &A : Script)
    Enc.encode(A, W);

  ByteReader R(W.buffer().data(), W.size());
  ActionDecoder Dec;
  for (const Action &Expected : Script) {
    Action Got;
    ASSERT_TRUE(Dec.decode(R, Got));
    EXPECT_EQ(Got.Kind, Expected.Kind);
    EXPECT_EQ(Got.Tid, Expected.Tid);
    EXPECT_EQ(Got.Method, Expected.Method);
    EXPECT_EQ(Got.Var, Expected.Var);
    EXPECT_EQ(Got.Ret, Expected.Ret);
    ASSERT_EQ(Got.Args.size(), Expected.Args.size());
    for (size_t I = 0; I < Got.Args.size(); ++I)
      EXPECT_EQ(Got.Args[I], Expected.Args[I]);
  }
  EXPECT_TRUE(R.atEnd());
}

TEST(SerializeTest, DecoderRejectsGarbage) {
  uint8_t Garbage[] = {0x7E, 0x01, 0x02}; // invalid action tag
  ByteReader R(Garbage, sizeof(Garbage));
  ActionDecoder Dec;
  Action Out;
  EXPECT_FALSE(Dec.decode(R, Out));
}

//===----------------------------------------------------------------------===//
// Format v2: the log header and the per-record ObjectId
//===----------------------------------------------------------------------===//

TEST(SerializeTest, ObjectIdRoundTrips) {
  Action A = Action::call(4, internName("obj.method"), {Value(int64_t(9))});
  A.Obj = 3;
  A.Seq = 17;
  Action Out = roundTrip(A);
  EXPECT_EQ(Out.Obj, 3u);
  EXPECT_EQ(Out.Tid, 4u);
  EXPECT_EQ(Out.Seq, 17u);
}

TEST(SerializeTest, LogHeaderRoundTrips) {
  ByteWriter W;
  writeLogHeader(W);
  EXPECT_EQ(W.size(), 5u); // 4 magic bytes + 1 version varint
  ByteReader R(W.buffer().data(), W.size());
  EXPECT_EQ(readLogHeader(R), LogFormatVersion);
  EXPECT_TRUE(R.atEnd()) << "header fully consumed";
}

TEST(SerializeTest, LegacyHeaderlessStreamDetectedAsV1) {
  // A v1 file starts directly with a record or name-definition tag, never
  // with 'V' (0x56 is not a valid tag): the probe must report version 1
  // and leave the reader untouched.
  uint8_t V1[] = {0x02, 0x03, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00};
  ByteReader R(V1, sizeof(V1));
  EXPECT_EQ(readLogHeader(R), 1u);
  EXPECT_EQ(R.u8(), 0x02) << "reader must still be at the first record";
}

TEST(SerializeTest, UnknownFutureVersionRejected) {
  ByteWriter W;
  W.bytes(LogMagic, sizeof(LogMagic));
  W.varint(99);
  ByteReader R(W.buffer().data(), W.size());
  EXPECT_EQ(readLogHeader(R), 0u);
}

TEST(SerializeTest, V1RecordDecodesWithObjectZero) {
  // Hand-encoded v1 commit record (no ObjectId on the wire):
  // tag, tid, seq, method=0, var=0, nargs=0, ret=null, val=null.
  uint8_t V1[] = {
      static_cast<uint8_t>(ActionKind::AK_Commit),
      3,    // Tid
      5,    // Seq (v1: immediately after Tid)
      0, 0, // no method / var
      0,    // no args
      static_cast<uint8_t>(ValueKind::VK_Null),
      static_cast<uint8_t>(ValueKind::VK_Null),
  };
  ByteReader R(V1, sizeof(V1));
  ActionDecoder Dec;
  Dec.setVersion(1);
  Action Out;
  ASSERT_TRUE(Dec.decode(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Out.Kind, ActionKind::AK_Commit);
  EXPECT_EQ(Out.Tid, 3u);
  EXPECT_EQ(Out.Seq, 5u);
  EXPECT_EQ(Out.Obj, 0u) << "legacy records belong to the single object 0";
}

TEST(SerializeTest, SameBytesAsV2MoveTheObjectField) {
  // A current-version stream reads the third varint as the ObjectId —
  // pinning the exact wire change of v2 — and carries a single value
  // slot — pinning the wire change of v3.
  uint8_t Bytes[] = {
      static_cast<uint8_t>(ActionKind::AK_Commit),
      3,    // Tid
      5,    // Obj (v2+: between Tid and Seq)
      7,    // Seq
      0, 0, 0,
      static_cast<uint8_t>(ValueKind::VK_Null), // the single v3 value slot
  };
  ByteReader R(Bytes, sizeof(Bytes));
  ActionDecoder Dec; // defaults to the current version
  Action Out;
  ASSERT_TRUE(Dec.decode(R, Out));
  EXPECT_TRUE(R.atEnd()) << "v3 records carry exactly one value slot";
  EXPECT_EQ(Out.Obj, 5u);
  EXPECT_EQ(Out.Seq, 7u);
}

TEST(SerializeTest, V2ReturnValueDecodesFromLegacyRetSlot) {
  // A v2 return record stores its value in the *first* of the two legacy
  // value slots (Ret), with Null in the second (Val). The merged-field
  // decoder must surface it in Action::Ret — a regression here silently
  // nulls every return value of an archived v2 log and corrupts checker
  // verdicts.
  uint8_t V2[] = {
      static_cast<uint8_t>(ActionKind::AK_Return),
      2,    // Tid
      0,    // Obj
      9,    // Seq
      0, 0, // no method / var
      0,    // no args
      static_cast<uint8_t>(ValueKind::VK_Bool), 1, // legacy Ret = true
      static_cast<uint8_t>(ValueKind::VK_Null),    // legacy Val = null
  };
  ByteReader R(V2, sizeof(V2));
  ActionDecoder Dec;
  Dec.setVersion(2);
  Action Out;
  ASSERT_TRUE(Dec.decode(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Out.Kind, ActionKind::AK_Return);
  EXPECT_EQ(Out.Ret, Value(true));
}

TEST(SerializeTest, V2WriteValueDecodesFromLegacyValSlot) {
  // A v2 write record stores its value in the *second* legacy slot (Val),
  // with Null in the first (Ret).
  uint8_t V2[] = {
      static_cast<uint8_t>(ActionKind::AK_Write),
      2,    // Tid
      0,    // Obj
      4,    // Seq
      0, 0, // no method / var
      0,    // no args
      static_cast<uint8_t>(ValueKind::VK_Null),    // legacy Ret = null
      static_cast<uint8_t>(ValueKind::VK_Int), 42, // legacy Val = 21 zigzag
  };
  ByteReader R(V2, sizeof(V2));
  ActionDecoder Dec;
  Dec.setVersion(2);
  Action Out;
  ASSERT_TRUE(Dec.decode(R, Out));
  EXPECT_TRUE(R.atEnd());
  EXPECT_EQ(Out.Kind, ActionKind::AK_Write);
  EXPECT_EQ(Out.Ret, Value(int64_t(21)));
}
