//===- TestUtil.h - Shared helpers for VYRD tests ---------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for writing scripted logs and running checkers in tests.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_TESTS_TESTUTIL_H
#define VYRD_TESTS_TESTUTIL_H

#include "vyrd/Checker.h"
#include "vyrd/Names.h"

#include <cctype>
#include <initializer_list>
#include <string>
#include <vector>

namespace vyrd {
namespace test {

/// Feeds a scripted sequence of actions (sequence numbers assigned in
/// order) and finishes the checker.
inline void runScript(RefinementChecker &C, std::vector<Action> Script) {
  uint64_t Seq = 0;
  for (Action &A : Script) {
    A.Seq = Seq++;
    C.feed(A);
  }
  C.finish();
}

/// True when any recorded violation has kind \p K.
inline bool hasViolation(const RefinementChecker &C, ViolationKind K) {
  for (const Violation &V : C.violations())
    if (V.Kind == K)
      return true;
  return false;
}

inline Name name(const char *S) { return internName(S); }

namespace json_detail {

/// Minimal recursive-descent JSON syntax checker (no value extraction);
/// enough to assert that the machine-readable outputs — telemetry
/// snapshots, trace files, bench result files — are well-formed without
/// pulling a JSON library into the tests.
struct Cursor {
  const char *P;
  const char *End;

  void ws() {
    while (P < End && std::isspace(static_cast<unsigned char>(*P)))
      ++P;
  }

  bool eat(char C) {
    if (P < End && *P == C) {
      ++P;
      return true;
    }
    return false;
  }

  bool string() {
    if (!eat('"'))
      return false;
    while (P < End && *P != '"') {
      if (*P == '\\') {
        ++P;
        if (P >= End)
          return false;
      }
      ++P;
    }
    return eat('"');
  }

  bool number() {
    const char *Start = P;
    eat('-');
    while (P < End && (std::isdigit(static_cast<unsigned char>(*P)) ||
                       *P == '.' || *P == 'e' || *P == 'E' || *P == '+' ||
                       *P == '-'))
      ++P;
    return P > Start;
  }

  bool literal(const char *L) {
    size_t N = std::char_traits<char>::length(L);
    if (static_cast<size_t>(End - P) < N ||
        std::char_traits<char>::compare(P, L, N) != 0)
      return false;
    P += N;
    return true;
  }

  bool value() {
    ws();
    if (P >= End)
      return false;
    switch (*P) {
    case '{': {
      ++P;
      ws();
      if (eat('}'))
        return true;
      do {
        ws();
        if (!string())
          return false;
        ws();
        if (!eat(':') || !value())
          return false;
        ws();
      } while (eat(','));
      return eat('}');
    }
    case '[': {
      ++P;
      ws();
      if (eat(']'))
        return true;
      do {
        if (!value())
          return false;
        ws();
      } while (eat(','));
      return eat(']');
    }
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
};

} // namespace json_detail

/// True iff \p S is exactly one syntactically valid JSON value (plus
/// optional surrounding whitespace).
inline bool jsonValid(const std::string &S) {
  json_detail::Cursor C{S.data(), S.data() + S.size()};
  if (!C.value())
    return false;
  C.ws();
  return C.P == C.End;
}

/// Number of non-overlapping occurrences of \p Needle in \p S.
inline size_t countOccurrences(const std::string &S,
                               const std::string &Needle) {
  size_t N = 0;
  for (size_t Pos = S.find(Needle); Pos != std::string::npos;
       Pos = S.find(Needle, Pos + Needle.size()))
    ++N;
  return N;
}

} // namespace test
} // namespace vyrd

#endif // VYRD_TESTS_TESTUTIL_H
