//===- TestUtil.h - Shared helpers for VYRD tests ---------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for writing scripted logs and running checkers in tests.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_TESTS_TESTUTIL_H
#define VYRD_TESTS_TESTUTIL_H

#include "vyrd/Checker.h"
#include "vyrd/Names.h"

#include <initializer_list>
#include <vector>

namespace vyrd {
namespace test {

/// Feeds a scripted sequence of actions (sequence numbers assigned in
/// order) and finishes the checker.
inline void runScript(RefinementChecker &C, std::vector<Action> Script) {
  uint64_t Seq = 0;
  for (Action &A : Script) {
    A.Seq = Seq++;
    C.feed(A);
  }
  C.finish();
}

/// True when any recorded violation has kind \p K.
inline bool hasViolation(const RefinementChecker &C, ViolationKind K) {
  for (const Violation &V : C.violations())
    if (V.Kind == K)
      return true;
  return false;
}

inline Name name(const char *S) { return internName(S); }

} // namespace test
} // namespace vyrd

#endif // VYRD_TESTS_TESTUTIL_H
