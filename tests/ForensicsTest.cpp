//===- ForensicsTest.cpp - Tests for violation flight-recorder bundles ----===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the flight recorder at both layers: the checker's in-memory
/// bundle (captured the moment a violation is raised: last-N retired
/// actions, the open-execution table, the spec-state digest) and the
/// verifier's on-disk `*.forensic.json` files (written for the first
/// violation and for degraded verdicts, surfaced through the report).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Checker.h"
#include "vyrd/Serialize.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <unistd.h>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Tiny register spec: Set(x) -> true sets the state; Get() -> x allowed
/// iff x is the current state (IO refinement; no replayer needed).
class RegSpec : public Spec {
public:
  RegSpec() : SetM(name("fx.Set")), GetM(name("fx.Get")), State(Value(0)) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &) override {
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() ||
        !Ret.asBool())
      return false;
    State = Args[0];
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override { Out.clear(); }

  bool saveState(ByteWriter &W) const override {
    writeValue(W, State);
    return true;
  }
  bool loadState(ByteReader &R) override {
    State = readValue(R);
    return R.ok();
  }

  Name SetM, GetM;
  Value State;
};

/// One correct Set(x) execution by \p Tid (call, commit, ret).
std::vector<Action> setOk(const RegSpec &S, ThreadId Tid, int64_t X) {
  return {Action::call(Tid, S.SetM, {Value(X)}), Action::commit(Tid),
          Action::ret(Tid, S.SetM, Value(X != -1))};
}

std::string tempPrefix(const char *Tag) {
  return std::string(::testing::TempDir()) + "vyrd-forensic-" + Tag + "-" +
         std::to_string(::getpid());
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The `"recent_actions":[...]` slice of a bundle (for entry counting).
std::string recentActionsSlice(const std::string &Bundle) {
  size_t Begin = Bundle.find("\"recent_actions\":[");
  size_t End = Bundle.find("],\"open_execs\"", Begin);
  if (Begin == std::string::npos || End == std::string::npos)
    return "";
  return Bundle.substr(Begin, End - Begin);
}

} // namespace

//===----------------------------------------------------------------------===//
// Checker-level capture
//===----------------------------------------------------------------------===//

TEST(ForensicsTest, CapturesBundleAtViolation) {
  RegSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  CC.FlightRecorderDepth = 8;
  RefinementChecker C(S, nullptr, CC);

  std::vector<Action> Script;
  for (int64_t X = 1; X <= 4; ++X)
    for (Action &A : setOk(S, /*Tid=*/0, X))
      Script.push_back(A);
  // An execution left open at the violation: the bundle must list it.
  // (A mutator call: an *observer* left open would defer commit-window
  // checking and swallow the violation until it resolves.)
  Script.push_back(Action::call(7, S.SetM, {Value(int64_t(9))}));
  // The violation: Set that "returns" false (spec cannot execute it).
  for (Action &A : setOk(S, /*Tid=*/1, -1))
    Script.push_back(A);
  runScript(C, Script);

  ASSERT_TRUE(C.hasViolation());
  ASSERT_EQ(C.forensics().size(), C.violations().size());
  const std::string &B = C.forensics().front();
  ASSERT_FALSE(B.empty());
  EXPECT_TRUE(jsonValid(B)) << B;
  EXPECT_NE(B.find("\"schema\":\"vyrd-forensic-v1\""), std::string::npos);
  EXPECT_NE(B.find("\"mutator-mismatch\""), std::string::npos) << B;
  EXPECT_NE(B.find("\"recent_actions\""), std::string::npos);
  EXPECT_NE(B.find("\"open_execs\""), std::string::npos);
  EXPECT_NE(B.find("\"tid\":7"), std::string::npos)
      << "the open tid-7 Set execution must appear: " << B;
  EXPECT_NE(B.find("\"spec_state\""), std::string::npos);
  EXPECT_NE(B.find("\"spec_blob_fnv1a\""), std::string::npos);
  EXPECT_NE(B.find("\"stats\""), std::string::npos);
}

TEST(ForensicsTest, DepthZeroCapturesNothing) {
  RegSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  RefinementChecker C(S, nullptr, CC);
  runScript(C, setOk(S, 0, -1));
  ASSERT_TRUE(C.hasViolation());
  ASSERT_EQ(C.forensics().size(), 1u);
  EXPECT_TRUE(C.forensics().front().empty())
      << "depth 0 must not pay for capture";
}

TEST(ForensicsTest, RingBoundsRecentActions) {
  RegSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  CC.FlightRecorderDepth = 6;
  RefinementChecker C(S, nullptr, CC);

  // 20 clean executions (60 actions), then the violation: the ring must
  // retain exactly the last 6 actions, and they must be the latest ones.
  std::vector<Action> Script;
  for (int64_t X = 1; X <= 20; ++X)
    for (Action &A : setOk(S, 0, X))
      Script.push_back(A);
  for (Action &A : setOk(S, 1, -1))
    Script.push_back(A);
  runScript(C, Script);

  ASSERT_TRUE(C.hasViolation());
  const std::string &B = C.forensics().front();
  std::string Recent = recentActionsSlice(B);
  ASSERT_FALSE(Recent.empty()) << B;
  EXPECT_EQ(countOccurrences(Recent, "{\"seq\":"), 6u) << Recent;
  EXPECT_NE(Recent.find("\"seq\":62"), std::string::npos)
      << "the violating ret (last fed action) must be present: " << Recent;
  EXPECT_EQ(Recent.find("\"seq\":0,"), std::string::npos)
      << "the oldest actions must have been evicted: " << Recent;
}

TEST(ForensicsTest, ContextAndRecorderShareTheRing) {
  // ContextRecords > FlightRecorderDepth: the bundle still only shows
  // the recorder's depth, while the violation context gets its own.
  RegSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  CC.ContextRecords = 10;
  CC.FlightRecorderDepth = 3;
  RefinementChecker C(S, nullptr, CC);
  std::vector<Action> Script;
  for (int64_t X = 1; X <= 5; ++X)
    for (Action &A : setOk(S, 0, X))
      Script.push_back(A);
  for (Action &A : setOk(S, 1, -1))
    Script.push_back(A);
  runScript(C, Script);

  ASSERT_TRUE(C.hasViolation());
  const Violation &V = C.violations().front();
  EXPECT_EQ(countOccurrences(V.Context, "\n"), 10u) << V.Context;
  std::string Recent = recentActionsSlice(C.forensics().front());
  EXPECT_EQ(countOccurrences(Recent, "{\"seq\":"), 3u) << Recent;
}

//===----------------------------------------------------------------------===//
// Verifier-level files
//===----------------------------------------------------------------------===//

TEST(ForensicsTest, VerifierWritesBundleFileOnViolation) {
  std::string Prefix = tempPrefix("e2e");
  VerifierConfig VC;
  VC.Online = true;
  VC.ForensicPrefix = Prefix; // auto-arms the flight recorder
  auto V = std::make_unique<Verifier>(
      std::make_unique<multiset::MultisetSpec>(),
      KeyValueReplayer::guardedBag("A"), VC);
  V->start();

  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, V->hooks());
  for (int I = 0; I < 30; ++I) {
    M.insert(I % 5);
    M.lookUp(I % 5);
  }
  // Seed the violation: a commit with no enclosing call, from a thread
  // the workload never used.
  V->log().append(Action::commit(99));
  for (int I = 0; I < 200 && !V->violationSeen(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  VerifierReport R = V->finish();
  ASSERT_FALSE(R.ok());
  ASSERT_FALSE(R.ForensicFiles.empty()) << R.str();
  const std::string &Path = R.ForensicFiles.front();
  EXPECT_EQ(Path.find(Prefix), 0u) << Path;
  EXPECT_NE(Path.find(".forensic.json"), std::string::npos) << Path;
  EXPECT_NE(R.str().find("forensics: " + Path), std::string::npos)
      << R.str();
  EXPECT_NE(R.json().find("\"forensic_files\""), std::string::npos);
  EXPECT_TRUE(jsonValid(R.json())) << R.json();

  std::string Doc = slurp(Path);
  ASSERT_FALSE(Doc.empty());
  EXPECT_TRUE(jsonValid(Doc)) << Doc;
  EXPECT_NE(Doc.find("\"schema\":\"vyrd-forensic-v1\""), std::string::npos);
  EXPECT_NE(Doc.find("\"object\""), std::string::npos);
  EXPECT_NE(Doc.find("\"recent_actions\""), std::string::npos);
  EXPECT_NE(Doc.find("\"open_execs\""), std::string::npos);
  EXPECT_NE(Doc.find("\"spec_state\""), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ForensicsTest, NoViolationWritesNoFiles) {
  std::string Prefix = tempPrefix("clean");
  VerifierConfig VC;
  VC.Online = true;
  VC.ForensicPrefix = Prefix;
  auto V = std::make_unique<Verifier>(
      std::make_unique<multiset::MultisetSpec>(),
      KeyValueReplayer::guardedBag("A"), VC);
  V->start();
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, V->hooks());
  for (int I = 0; I < 30; ++I)
    M.insert(I % 5);
  VerifierReport R = V->finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_TRUE(R.ForensicFiles.empty());
}

TEST(ForensicsTest, ExplicitDepthZeroDisablesFilesEvenWithPrefix) {
  // A user who sets the prefix but forces depth 0 gets violations
  // without bundles (and without the capture cost).
  RegSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  CC.FlightRecorderDepth = 0;
  RefinementChecker C(S, nullptr, CC);
  runScript(C, setOk(S, 0, -1));
  ASSERT_TRUE(C.hasViolation());
  EXPECT_TRUE(C.forensics().front().empty());
}
