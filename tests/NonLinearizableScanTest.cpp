//===- NonLinearizableScanTest.cpp - The paper's own scan, flagged ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A finding of this reproduction, documented in DESIGN.md: the paper's
/// plain Fig. 2 LookUp — a slot-by-slot scan under per-slot locks — is
/// itself not linearizable once an element has multiplicity >= 2. With
/// copies of x in slots i < j, this interleaving makes the scan miss x
/// although x is continuously a member:
///
///   Delete(x) removes slot i's copy; the scan passes the (empty) slot i;
///   Insert(x) re-fills slot i (the lowest free slot) behind the scan
///   front; Delete(x) then removes slot j's copy before the scan arrives;
///   the scan finds nothing and returns false.
///
/// x's multiplicity goes 2 -> 1 -> 2 -> 1 and never reaches zero, so
/// LookUp(x) = false matches no state in the observer's window and VYRD
/// reports a refinement violation — correctly: the interleaved scan
/// genuinely does not refine an atomic membership test. This test
/// demonstrates the phenomenon with a deterministic scripted log, shows
/// it reproduces end to end on the real unguarded implementation, and
/// shows the guarded (LinearizableScan) lookup is immune.
///
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Checker.h"
#include "vyrd/Verifier.h"
#include "harness/Workload.h"

#include <gtest/gtest.h>

#include <thread>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

/// Builds the scripted log of the scenario above directly (the checker
/// only sees the log, so we can write the interleaving by hand).
std::vector<Action> scanMissScript() {
  Vocab V = Vocab::get();
  std::vector<Action> S;
  auto Push = [&S](Action A) {
    A.Seq = S.size();
    S.push_back(std::move(A));
  };

  // Setup by thread 0: x=7 inserted twice, landing in slots 0 and 1.
  for (size_t Slot : {0u, 1u}) {
    Push(Action::call(0, V.Insert, {Value(7)}));
    Push(Action::write(0, Vocab::eltName(Slot), Value(7)));
    Push(Action::blockBegin(0));
    Push(Action::write(0, Vocab::validName(Slot), Value(true)));
    Push(Action::commit(0));
    Push(Action::blockEnd(0));
    Push(Action::ret(0, V.Insert, Value(true)));
  }

  // Thread 1 starts LookUp(7) (its scan is about to pass slot 0).
  Push(Action::call(1, V.LookUp, {Value(7)}));

  // Thread 2: Delete(7) hits slot 0... no — the scan must pass slot 0
  // while it still holds 7? The miss needs: delete the copy AHEAD of the
  // scan (slot 1), re-insert BEHIND it (slot 0 already passed holds 7 —
  // then the scan would have seen slot 0!). The actual interleaving: the
  // scan passes slot 0 *after* Delete removed slot 0's copy, and the
  // re-insert lands in slot 0 (now free, lowest index) *after* the scan
  // moved past; the copy ahead in slot 1 is deleted next.
  // Log it exactly that way:
  //   Delete removes slot 0's copy (scan has not started moving yet).
  Push(Action::call(2, V.Delete, {Value(7)}));
  Push(Action::blockBegin(2));
  Push(Action::write(2, Vocab::validName(0), Value(false)));
  Push(Action::write(2, Vocab::eltName(0), Value()));
  Push(Action::commit(2));
  Push(Action::blockEnd(2));
  Push(Action::ret(2, V.Delete, Value(true)));

  //   (scan passes slot 0: empty)
  //   Insert(7) re-adds at slot 0, behind the scan front.
  Push(Action::call(2, V.Insert, {Value(7)}));
  Push(Action::write(2, Vocab::eltName(0), Value(7)));
  Push(Action::blockBegin(2));
  Push(Action::write(2, Vocab::validName(0), Value(true)));
  Push(Action::commit(2));
  Push(Action::blockEnd(2));
  Push(Action::ret(2, V.Insert, Value(true)));

  //   Delete(7) removes slot 1's copy before the scan arrives there.
  Push(Action::call(2, V.Delete, {Value(7)}));
  Push(Action::blockBegin(2));
  Push(Action::write(2, Vocab::validName(1), Value(false)));
  Push(Action::write(2, Vocab::eltName(1), Value()));
  Push(Action::commit(2));
  Push(Action::blockEnd(2));
  Push(Action::ret(2, V.Delete, Value(true)));

  //   (scan passes slot 1 and the rest: empty) -> returns false.
  Push(Action::ret(1, V.LookUp, Value(false)));
  return S;
}

} // namespace

TEST(NonLinearizableScanTest, WindowCheckFlagsTheMiss) {
  // Throughout LookUp's window, 7 is a member (multiplicity 2 -> 1 -> 2
  // -> 1): returning false matches no window state.
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
  for (const Action &A : scanMissScript())
    C.feed(A);
  C.finish();
  ASSERT_TRUE(C.hasViolation());
  EXPECT_EQ(C.violations().front().Kind,
            ViolationKind::VK_ObserverMismatch)
      << C.violations().front().str();
}

TEST(NonLinearizableScanTest, UnguardedScanCanActuallyMiss) {
  // Drive the real (unguarded) implementation with the paper's organic
  // random workload — whose InsertPair reservations and mixed keys create
  // the free-slot churn the miss needs — and check that the phenomenon is
  // observable end to end. We detect it with VYRD itself.
  bool Reproduced = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Reproduced; ++Seed) {
    VerifierConfig VC;
    VC.Checker.Mode = CheckMode::CM_ViewRefinement;
    Verifier V(std::make_unique<MultisetSpec>(),
               KeyValueReplayer::guardedBag("A"), VC);
    V.start();
    ArrayMultiset::Options MO;
    MO.Capacity = 48;
    MO.LinearizableScan = false; // the paper's plain scan
    ArrayMultiset M(MO, V.hooks());

    Chaos::enable(4, Seed);
    harness::WorkloadOptions WO;
    WO.Threads = 8;
    WO.OpsPerThread = 400;
    WO.KeyPoolSize = 12;
    WO.Seed = Seed;
    WO.StopOnViolation = &V;
    harness::runWorkload(
        WO, [&](harness::Rng &R, int64_t K1, int64_t K2, double) {
          unsigned Dice = static_cast<unsigned>(R.range(100));
          if (Dice < 30)
            M.insert(K1);
          else if (Dice < 50)
            M.insertPair(K1, K2);
          else if (Dice < 75)
            M.remove(K1);
          else
            M.lookUp(K1);
        });
    Chaos::disable();
    VerifierReport R = V.finish();
    for (const Violation &Viol : R.Violations)
      Reproduced |= Viol.Kind == ViolationKind::VK_ObserverMismatch;
  }
  EXPECT_TRUE(Reproduced)
      << "the unguarded scan's miss did not reproduce in 40 seeds";
}

TEST(NonLinearizableScanTest, GuardedScanStaysClean) {
  // Same pressure on the guarded scan: no violations.
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    VerifierConfig VC;
    VC.Checker.Mode = CheckMode::CM_ViewRefinement;
    Verifier V(std::make_unique<MultisetSpec>(),
               KeyValueReplayer::guardedBag("A"), VC);
    V.start();
    ArrayMultiset::Options MO;
    MO.Capacity = 8;
    MO.LinearizableScan = true;
    ArrayMultiset M(MO, V.hooks());

    Chaos::enable(2, Seed);
    std::thread Scanner([&] {
      for (int I = 0; I < 300; ++I)
        M.lookUp(7);
    });
    std::thread Mutator([&] {
      M.insert(7);
      M.insert(7);
      for (int I = 0; I < 300; ++I) {
        M.remove(7);
        M.insert(7);
      }
    });
    Scanner.join();
    Mutator.join();
    Chaos::disable();
    VerifierReport R = V.finish();
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}
