//===- BLinkTreeTest.cpp - Tests for the B-link tree ------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BLinkSpec.h"
#include "blinktree/BLinkTree.h"
#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::blinktree;
using namespace vyrd::harness;

namespace {

struct TreeRig {
  chunk::ChunkManager CM;
  cache::BoxCache Cache;
  BLinkTree Tree;

  explicit TreeRig(bool Buggy = false, size_t MaxKeys = 4)
      : Cache(CM, cacheOpts(), Hooks()),
        Tree(Cache, CM, treeOpts(Buggy, MaxKeys), Hooks()) {}

  static cache::BoxCache::Options cacheOpts() {
    cache::BoxCache::Options O;
    O.ChunkSize = 512;
    return O;
  }
  static BLinkTree::Options treeOpts(bool Buggy, size_t MaxKeys) {
    BLinkTree::Options O;
    O.MaxLeafKeys = MaxKeys;
    O.MaxInnerKeys = MaxKeys;
    O.BuggyDuplicates = Buggy;
    return O;
  }
};

chunk::Bytes bytes(std::initializer_list<uint8_t> L) {
  return chunk::Bytes(L);
}

} // namespace

//===----------------------------------------------------------------------===//
// BNode serialization
//===----------------------------------------------------------------------===//

TEST(BNodeTest, SerializationRoundTrip) {
  BNode N;
  N.IsLeaf = false;
  N.Level = 3;
  N.Dead = true;
  N.HighKey = 777;
  N.Right = 42;
  N.Entries = {{-10, 1}, {0, 2}, {99, 3}};
  BNode Out;
  ASSERT_TRUE(BNode::deserialize(N.serialize(), Out));
  EXPECT_EQ(Out.IsLeaf, N.IsLeaf);
  EXPECT_EQ(Out.Level, N.Level);
  EXPECT_EQ(Out.Dead, N.Dead);
  EXPECT_EQ(Out.HighKey, N.HighKey);
  EXPECT_EQ(Out.Right, N.Right);
  ASSERT_EQ(Out.Entries.size(), 3u);
  EXPECT_EQ(Out.Entries[1].Key, 0);
  EXPECT_EQ(Out.Entries[2].Handle, 3u);
}

TEST(BNodeTest, RouteSelectsCoveringChild) {
  BNode N;
  N.IsLeaf = false;
  N.Entries = {{INT64_MIN, 10}, {100, 20}, {200, 30}};
  EXPECT_EQ(N.route(-5), 10u);
  EXPECT_EQ(N.route(99), 10u);
  EXPECT_EQ(N.route(100), 20u);
  EXPECT_EQ(N.route(150), 20u);
  EXPECT_EQ(N.route(200), 30u);
  EXPECT_EQ(N.route(10000), 30u);
}

TEST(BNodeTest, FindKeyAndLowerBound) {
  BNode N;
  N.Entries = {{1, 0}, {3, 0}, {5, 0}};
  EXPECT_EQ(N.findKey(3), 1u);
  EXPECT_EQ(N.findKey(2), BNode::npos);
  EXPECT_EQ(N.lowerBound(0), 0u);
  EXPECT_EQ(N.lowerBound(4), 2u);
  EXPECT_EQ(N.lowerBound(9), 3u);
}

TEST(BNodeTest, VersionedValueEncoding) {
  Value V1 = versionedValue(1, {9});
  Value V2 = versionedValue(2, {9});
  EXPECT_NE(V1, V2) << "version participates in the view value";
  ASSERT_TRUE(V1.isBytes());
  EXPECT_EQ(V1.asBytes().size(), 9u);
}

TEST(BDataTest, SerializationRoundTrip) {
  BData D;
  D.Version = 12;
  D.Data = {1, 2, 3};
  BData Out;
  ASSERT_TRUE(BData::deserialize(D.serialize(), Out));
  EXPECT_EQ(Out.Version, 12u);
  EXPECT_EQ(Out.Data, (chunk::Bytes{1, 2, 3}));
}

//===----------------------------------------------------------------------===//
// Tree sequential semantics
//===----------------------------------------------------------------------===//

TEST(BLinkTreeTest, InsertLookupDelete) {
  TreeRig R;
  EXPECT_TRUE(R.Tree.lookup(5).isNull());
  EXPECT_TRUE(R.Tree.insert(5, bytes({0xAA})));
  Value V = R.Tree.lookup(5);
  EXPECT_EQ(V, versionedValue(1, {0xAA}));
  EXPECT_TRUE(R.Tree.remove(5));
  EXPECT_TRUE(R.Tree.lookup(5).isNull());
  EXPECT_FALSE(R.Tree.remove(5));
}

TEST(BLinkTreeTest, OverwriteBumpsVersion) {
  TreeRig R;
  R.Tree.insert(5, bytes({1}));
  R.Tree.insert(5, bytes({2}));
  EXPECT_EQ(R.Tree.lookup(5), versionedValue(2, {2}));
}

TEST(BLinkTreeTest, SplitsGrowTheTree) {
  TreeRig R(/*Buggy=*/false, /*MaxKeys=*/4);
  EXPECT_EQ(R.Tree.height(), 1u);
  for (int64_t K = 0; K < 40; ++K)
    R.Tree.insert(K, bytes({static_cast<uint8_t>(K)}));
  EXPECT_GT(R.Tree.height(), 1u);
  for (int64_t K = 0; K < 40; ++K)
    EXPECT_EQ(R.Tree.lookup(K),
              versionedValue(1, {static_cast<uint8_t>(K)}))
        << "key " << K;
}

TEST(BLinkTreeTest, DescendingInsertOrder) {
  TreeRig R(false, 4);
  for (int64_t K = 50; K > 0; --K)
    R.Tree.insert(K, bytes({static_cast<uint8_t>(K)}));
  for (int64_t K = 1; K <= 50; ++K)
    EXPECT_FALSE(R.Tree.lookup(K).isNull()) << "key " << K;
}

TEST(BLinkTreeTest, NegativeAndSparseKeys) {
  TreeRig R(false, 4);
  const int64_t Keys[] = {-1000000, -7, 0, 3, 888888, INT64_MAX / 2};
  for (int64_t K : Keys)
    R.Tree.insert(K, bytes({7}));
  for (int64_t K : Keys)
    EXPECT_FALSE(R.Tree.lookup(K).isNull()) << "key " << K;
  EXPECT_TRUE(R.Tree.lookup(1).isNull());
}

TEST(BLinkTreeTest, DeleteAcrossSplitLeaves) {
  TreeRig R(false, 4);
  for (int64_t K = 0; K < 30; ++K)
    R.Tree.insert(K, bytes({1}));
  for (int64_t K = 0; K < 30; K += 2)
    EXPECT_TRUE(R.Tree.remove(K));
  for (int64_t K = 0; K < 30; ++K)
    EXPECT_EQ(R.Tree.lookup(K).isNull(), K % 2 == 0) << "key " << K;
}

TEST(BLinkTreeTest, CompressMergesUnderfullLeavesPreservingContents) {
  TreeRig R(false, 4);
  for (int64_t K = 0; K < 24; ++K)
    R.Tree.insert(K, bytes({static_cast<uint8_t>(K)}));
  // Delete most keys, leaving sparse survivors across many leaves.
  for (int64_t K = 0; K < 24; ++K)
    if (K % 5 != 0)
      R.Tree.remove(K);
  size_t Merges = 0;
  while (R.Tree.compress())
    ++Merges;
  EXPECT_GT(Merges, 0u) << "underfull neighbors should merge";
  for (int64_t K = 0; K < 24; ++K) {
    if (K % 5 == 0)
      EXPECT_EQ(R.Tree.lookup(K),
                versionedValue(1, {static_cast<uint8_t>(K)}))
          << "key " << K;
    else
      EXPECT_TRUE(R.Tree.lookup(K).isNull()) << "key " << K;
  }
  // The structure still accepts new work after heavy merging.
  R.Tree.insert(1000, bytes({9}));
  EXPECT_EQ(R.Tree.lookup(1000), versionedValue(1, {9}));
}

TEST(BLinkTreeTest, CompressMergesEmptyLeaves) {
  TreeRig R(false, 4);
  for (int64_t K = 0; K < 30; ++K)
    R.Tree.insert(K, bytes({1}));
  for (int64_t K = 0; K < 30; ++K)
    R.Tree.remove(K);
  // Drain all merge opportunities.
  size_t Merges = 0;
  while (R.Tree.compress())
    ++Merges;
  EXPECT_GT(Merges, 0u);
  // Contents unchanged (empty), tree still works.
  for (int64_t K = 0; K < 30; ++K)
    EXPECT_TRUE(R.Tree.lookup(K).isNull());
  R.Tree.insert(17, bytes({9}));
  EXPECT_EQ(R.Tree.lookup(17), versionedValue(1, {9}));
}

//===----------------------------------------------------------------------===//
// Spec
//===----------------------------------------------------------------------===//

TEST(BLinkSpecTest, InsertOverwriteDeleteSemantics) {
  BLinkSpec S;
  BltVocab V = BltVocab::get();
  View ViewS;
  EXPECT_TRUE(S.applyMutator(
      V.Insert, {Value(1), Value(chunk::Bytes{5})}, Value(true), ViewS));
  EXPECT_TRUE(S.returnAllowed(V.Lookup, {Value(1)},
                              versionedValue(1, {5})));
  EXPECT_TRUE(S.applyMutator(
      V.Insert, {Value(1), Value(chunk::Bytes{6})}, Value(true), ViewS));
  EXPECT_TRUE(S.returnAllowed(V.Lookup, {Value(1)},
                              versionedValue(2, {6})));
  EXPECT_FALSE(S.returnAllowed(V.Lookup, {Value(1)},
                               versionedValue(1, {6})))
      << "stale version rejected";
  EXPECT_TRUE(S.applyMutator(V.Delete, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.returnAllowed(V.Lookup, {Value(1)}, Value()));
  EXPECT_FALSE(S.applyMutator(V.Delete, {Value(1)}, Value(true), ViewS));
  EXPECT_TRUE(S.applyMutator(V.Delete, {Value(1)}, Value(false), ViewS));
}

TEST(BLinkSpecTest, CompressIsIdentity) {
  BLinkSpec S;
  BltVocab V = BltVocab::get();
  View ViewS;
  S.applyMutator(V.Insert, {Value(1), Value(chunk::Bytes{5})},
                 Value(true), ViewS);
  auto D = ViewS.digest();
  EXPECT_TRUE(S.applyMutator(V.Compress, {}, Value(true), ViewS));
  EXPECT_EQ(ViewS.digest(), D);
}

//===----------------------------------------------------------------------===//
// Replayer
//===----------------------------------------------------------------------===//

namespace {

Action nodeOp(uint64_t H, const BNode &N) {
  return Action::replayOp(0, BltVocab::get().OpNode,
                          {Value(static_cast<int64_t>(H)),
                           Value(N.serialize())});
}
Action dataOp(uint64_t H, uint64_t Ver, chunk::Bytes B) {
  return Action::replayOp(0, BltVocab::get().OpData,
                          {Value(static_cast<int64_t>(H)),
                           Value(static_cast<int64_t>(Ver)),
                           Value(std::move(B))});
}

} // namespace

TEST(BLinkReplayerTest, LeafEntriesEnterView) {
  BLinkReplayer R(1);
  View ViewI;
  R.applyUpdate(dataOp(5, 1, {0xAB}), ViewI);
  BNode Leaf;
  Leaf.Entries = {{10, 5}};
  R.applyUpdate(nodeOp(1, Leaf), ViewI);
  EXPECT_EQ(ViewI.count(Value(10), versionedValue(1, {0xAB})), 1u);
}

TEST(BLinkReplayerTest, DataOverwriteUpdatesReferencingKeys) {
  BLinkReplayer R(1);
  View ViewI;
  R.applyUpdate(dataOp(5, 1, {1}), ViewI);
  BNode Leaf;
  Leaf.Entries = {{10, 5}};
  R.applyUpdate(nodeOp(1, Leaf), ViewI);
  R.applyUpdate(dataOp(5, 2, {2}), ViewI);
  EXPECT_EQ(ViewI.count(Value(10), versionedValue(2, {2})), 1u);
  EXPECT_EQ(ViewI.count(Value(10), versionedValue(1, {1})), 0u);
}

TEST(BLinkReplayerTest, SplitIsViewNeutral) {
  BLinkReplayer R(1);
  View ViewI;
  R.applyUpdate(dataOp(5, 1, {1}), ViewI);
  R.applyUpdate(dataOp(6, 1, {2}), ViewI);
  BNode Leaf;
  Leaf.Entries = {{10, 5}, {20, 6}};
  R.applyUpdate(nodeOp(1, Leaf), ViewI);
  auto D = ViewI.digest();

  // Split: new right leaf 2 takes key 20; leaf 1 keeps 10.
  BNode RightN;
  RightN.Entries = {{20, 6}};
  RightN.HighKey = Leaf.HighKey;
  BNode LeftN;
  LeftN.Entries = {{10, 5}};
  LeftN.HighKey = 20;
  LeftN.Right = 2;
  R.applyUpdate(nodeOp(2, RightN), ViewI);
  R.applyUpdate(nodeOp(1, LeftN), ViewI);
  EXPECT_EQ(ViewI.digest(), D) << "split must not change the view";

  View Fresh;
  R.buildView(Fresh);
  EXPECT_TRUE(ViewI.deepEquals(Fresh)) << View::diff(ViewI, Fresh);
}

TEST(BLinkReplayerTest, DuplicateKeysAcrossLeavesVisible) {
  BLinkReplayer R(1);
  View ViewI;
  R.applyUpdate(dataOp(5, 1, {1}), ViewI);
  R.applyUpdate(dataOp(6, 1, {1}), ViewI);
  BNode Leaf;
  Leaf.Entries = {{10, 5}, {10, 6}}; // the duplicated-data-node shape
  R.applyUpdate(nodeOp(1, Leaf), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(10)), 2u);
}

TEST(BLinkReplayerTest, DeadLeafLeavesView) {
  BLinkReplayer R(1);
  View ViewI;
  R.applyUpdate(dataOp(5, 1, {1}), ViewI);
  BNode Leaf;
  Leaf.Entries = {{10, 5}};
  R.applyUpdate(nodeOp(2, Leaf), ViewI);
  // Leaf 2 is not on the chain from leaf 1 in this synthetic setup, but
  // incremental accounting tracks it; kill it and the entry must go.
  BNode DeadLeaf = Leaf;
  DeadLeaf.Dead = true;
  R.applyUpdate(nodeOp(2, DeadLeaf), ViewI);
  EXPECT_EQ(ViewI.countKey(Value(10)), 0u);
}

//===----------------------------------------------------------------------===//
// Verified runs
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runBlt(bool Buggy, RunMode Mode, unsigned Threads,
                      unsigned Ops, uint64_t Seed, bool Compress = true) {
  ScenarioOptions SO;
  SO.Prog = Program::P_BLinkTree;
  SO.Mode = Mode;
  SO.Buggy = Buggy;
  SO.StopAtFirstViolation = Buggy;
  SO.AuditPeriod = Buggy ? 0 : 128;
  Scenario S = makeScenario(SO);
  Chaos::enable(4, Seed);
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 24;
  WO.KeyRange = 4096;
  WO.Seed = Seed;
  if (Compress)
    WO.BackgroundOp = S.BackgroundOp;
  if (Buggy)
    WO.StopOnViolation = S.V;
  runWorkload(WO, S.Op);
  Chaos::disable();
  return S.Finish();
}

} // namespace

TEST(BLinkVerifiedTest, DeepTreeConcurrentRunClean) {
  // Force a tall tree (small fanout, many distinct keys) so multi-level
  // splits, root growth and merges all happen under load, verified.
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_ViewRefinement;
  VC.Checker.AuditPeriod = 512;
  Verifier V(std::make_unique<BLinkSpec>(),
             std::make_unique<BLinkReplayer>(1), VC);
  V.start();

  chunk::ChunkManager CM;
  cache::BoxCache::Options CO;
  CO.ChunkSize = 512;
  cache::BoxCache Cache(CM, CO, Hooks());
  BLinkTree::Options TO;
  TO.MaxLeafKeys = 4;
  TO.MaxInnerKeys = 4;
  BLinkTree Tree(Cache, CM, TO, V.hooks());

  Chaos::enable(4, 5);
  harness::WorkloadOptions WO;
  WO.Threads = 4;
  WO.OpsPerThread = 400;
  WO.KeyPoolSize = 200;
  WO.KeyRange = 100000;
  WO.Seed = 5;
  WO.BackgroundOp = [&Tree] { Tree.compress(); };
  harness::runWorkload(
      WO, [&](harness::Rng &R, int64_t K1, int64_t, double) {
        unsigned Dice = static_cast<unsigned>(R.range(100));
        if (Dice < 55)
          Tree.insert(K1, bytes({static_cast<uint8_t>(K1)}));
        else if (Dice < 75)
          Tree.remove(K1);
        else
          Tree.lookup(K1);
      });
  Chaos::disable();
  EXPECT_GE(Tree.height(), 3u) << "tree should have grown tall";
  VerifierReport R = V.finish();
  EXPECT_TRUE(R.ok()) << R.str();
  EXPECT_GT(R.Stats.MethodsChecked, 1000u);
}

TEST(BLinkVerifiedTest, CorrectRunsCleanWithCompression) {
  for (uint64_t Seed : {1, 2, 3}) {
    VerifierReport R = runBlt(false, RunMode::RM_OnlineView, 6, 200, Seed);
    EXPECT_TRUE(R.ok()) << "seed " << Seed << "\n" << R.str();
  }
}

TEST(BLinkVerifiedTest, CorrectRunsCleanIOMode) {
  VerifierReport R = runBlt(false, RunMode::RM_OnlineIO, 6, 200, 7);
  EXPECT_TRUE(R.ok()) << R.str();
}

TEST(BLinkVerifiedTest, BuggyDuplicatesCaughtByViewRefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 30 && !Caught; ++Seed) {
    VerifierReport R = runBlt(true, RunMode::RM_OnlineView, 6, 300, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught) << "duplicated-data-nodes bug not caught in 30 seeds";
}

TEST(BLinkVerifiedTest, BuggyDuplicatesCaughtByIORefinement) {
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 40 && !Caught; ++Seed) {
    VerifierReport R = runBlt(true, RunMode::RM_OnlineIO, 6, 1200, Seed);
    Caught = !R.ok();
  }
  EXPECT_TRUE(Caught);
}
