//===- TelemetryTest.cpp - Tests for the telemetry subsystem --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Covers the metric primitives (cells, counters, histogram bucketing),
/// concurrent conservation (what N threads write is exactly what
/// snapshot() reads back), the checker-lag gauge, the stall watchdog with
/// a deliberately stalled consumer, and the end-to-end pipeline wiring
/// through a Verifier run. The concurrent tests are part of the TSan
/// suite (build-tsan) — the telemetry hot path must be exactly as
/// data-race-free as it claims.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Verifier.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Spin-waits (with sleeps) until \p Pred holds or ~2 s pass.
template <typename PredT> bool eventually(PredT Pred) {
  for (int I = 0; I < 400; ++I) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return Pred();
}

} // namespace

TEST(TelemetryTest, BucketOfIsBitWidth) {
  EXPECT_EQ(TelemetryCell::bucketOf(0), 0u);
  EXPECT_EQ(TelemetryCell::bucketOf(1), 1u);
  EXPECT_EQ(TelemetryCell::bucketOf(2), 2u);
  EXPECT_EQ(TelemetryCell::bucketOf(3), 2u);
  EXPECT_EQ(TelemetryCell::bucketOf(4), 3u);
  EXPECT_EQ(TelemetryCell::bucketOf(1023), 10u);
  EXPECT_EQ(TelemetryCell::bucketOf(1024), 11u);
  // Everything past the bucket range clamps into the last bucket.
  EXPECT_EQ(TelemetryCell::bucketOf(UINT64_MAX), NumHistoBuckets - 1);
}

TEST(TelemetryTest, SnapshotSumsKnownValues) {
  Telemetry T;
  T.count(Counter::C_LogAppends, 3);
  T.count(Counter::C_LogAppends);
  T.record(Histo::H_AppendNs, 0);
  T.record(Histo::H_AppendNs, 1);
  T.record(Histo::H_AppendNs, 5);
  T.record(Histo::H_AppendNs, 1024);

  TelemetrySnapshot S = T.snapshot();
  EXPECT_EQ(S.counter(Counter::C_LogAppends), 4u);
  EXPECT_EQ(S.counter(Counter::C_HookRecords), 0u);
  const HistoSnapshot &H = S.histo(Histo::H_AppendNs);
  EXPECT_EQ(H.Count, 4u);
  EXPECT_EQ(H.Sum, 1030u);
  EXPECT_DOUBLE_EQ(H.mean(), 1030.0 / 4);
  EXPECT_EQ(H.Buckets[0], 1u); // the 0
  EXPECT_EQ(H.Buckets[1], 1u); // the 1
  EXPECT_EQ(H.Buckets[3], 1u); // the 5
  EXPECT_EQ(H.Buckets[11], 1u); // the 1024
  // p50 falls in the bucket holding the 2nd of 4 samples; max covers 1024.
  EXPECT_EQ(H.percentileBound(50), 1u);
  EXPECT_EQ(H.max(), (1ull << 11) - 1);
}

TEST(TelemetryTest, ConcurrentWritersConserveTotals) {
  constexpr unsigned Threads = 8;
  constexpr unsigned CountsPerThread = 10000;
  constexpr unsigned RecordsPerThread = 1000;

  Telemetry T;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&T] {
      TelemetryCell &C = T.cell();
      for (unsigned I = 0; I < CountsPerThread; ++I)
        C.count(Counter::C_LogAppends);
      for (unsigned I = 0; I < RecordsPerThread; ++I)
        C.record(Histo::H_FeedBatch, I % 64);
      // Reading while writers run must be safe (approximate totals).
      (void)T.snapshot();
    });
  for (auto &W : Workers)
    W.join();

  TelemetrySnapshot S = T.snapshot();
  EXPECT_EQ(S.counter(Counter::C_LogAppends),
            uint64_t(Threads) * CountsPerThread);
  const HistoSnapshot &H = S.histo(Histo::H_FeedBatch);
  EXPECT_EQ(H.Count, uint64_t(Threads) * RecordsPerThread);
  uint64_t SumPerThread = 0;
  for (unsigned I = 0; I < RecordsPerThread; ++I)
    SumPerThread += I % 64;
  EXPECT_EQ(H.Sum, uint64_t(Threads) * SumPerThread);
}

TEST(TelemetryTest, TwoHubsKeepSeparateCells) {
  Telemetry A, B;
  A.count(Counter::C_HookRecords, 7);
  B.count(Counter::C_HookRecords, 2);
  EXPECT_EQ(A.snapshot().counter(Counter::C_HookRecords), 7u);
  EXPECT_EQ(B.snapshot().counter(Counter::C_HookRecords), 2u);
}

TEST(TelemetryTest, GaugeSubClampsAtZeroAndCountsUnderflow) {
  Telemetry T;
  T.gaugeAdd(Gauge::G_PendingRecords, 2);
  // Mismatched sub: must clamp to 0, not wrap to ~2^64 (which would
  // also poison the HWM via the next gaugeAdd).
  T.gaugeSub(Gauge::G_PendingRecords, 5);
  TelemetrySnapshot S = T.snapshot();
  EXPECT_EQ(S.gauge(Gauge::G_PendingRecords), 0u);
  EXPECT_EQ(S.gaugeHwm(Gauge::G_PendingRecords), 2u);
  EXPECT_EQ(S.counter(Counter::C_GaugeUnderflow), 1u);

  // A balanced pair afterwards behaves normally and stays silent.
  T.gaugeAdd(Gauge::G_PendingRecords, 3);
  T.gaugeSub(Gauge::G_PendingRecords, 3);
  S = T.snapshot();
  EXPECT_EQ(S.gauge(Gauge::G_PendingRecords), 0u);
  EXPECT_EQ(S.gaugeHwm(Gauge::G_PendingRecords), 3u);
  EXPECT_EQ(S.counter(Counter::C_GaugeUnderflow), 1u);
}

TEST(TelemetryTest, CheckerLagGauge) {
  Telemetry::Options O;
  std::atomic<uint64_t> Produced{100};
  O.ProducerProbe = [&Produced] { return Produced.load(); };
  Telemetry T(std::move(O));

  EXPECT_EQ(T.checkerLag(), 100u);
  T.noteConsumed(40);
  EXPECT_EQ(T.consumedSeq(), 40u);
  EXPECT_EQ(T.checkerLag(), 60u);
  // A consumer momentarily ahead of the probe clamps to zero.
  T.noteConsumed(200);
  EXPECT_EQ(T.checkerLag(), 0u);

  Telemetry NoProbe;
  NoProbe.noteConsumed(10);
  EXPECT_EQ(NoProbe.checkerLag(), 0u);
}

TEST(TelemetryTest, SamplerRecordsLag) {
  Telemetry::Options O;
  O.SampleIntervalUs = 200;
  O.ProducerProbe = [] { return uint64_t(50); };
  Telemetry T(std::move(O));
  ASSERT_TRUE(eventually([&T] {
    return T.snapshot().counter(Counter::C_LagSamples) >= 3;
  }));
  T.stopSampler();

  TelemetrySnapshot S = T.snapshot();
  const HistoSnapshot &Lag = S.histo(Histo::H_CheckerLag);
  EXPECT_EQ(Lag.Count, S.counter(Counter::C_LagSamples));
  // Every sample saw the constant lag of 50 (bit width 6).
  EXPECT_EQ(Lag.Buckets[6], Lag.Count);
}

TEST(TelemetryTest, WatchdogReportsStalledConsumer) {
  std::mutex MsgM;
  std::string Msg;
  std::atomic<unsigned> Reports{0};

  Telemetry::Options O;
  O.SampleIntervalUs = 200;
  O.WatchdogQuietMs = 10;
  O.ProducerProbe = [] { return uint64_t(50); }; // work always pending
  O.StallReport = [&](const std::string &M) {
    std::lock_guard Lock(MsgM);
    Msg = M;
    Reports.fetch_add(1);
  };
  Telemetry T(std::move(O));

  // The consumer never advances: the watchdog must trip, once.
  ASSERT_TRUE(eventually([&T] { return T.stalled(); }));
  EXPECT_EQ(Reports.load(), 1u);
  {
    std::lock_guard Lock(MsgM);
    EXPECT_NE(Msg.find("stalled"), std::string::npos) << Msg;
    EXPECT_NE(Msg.find("lag 50"), std::string::npos) << Msg;
  }
  TelemetrySnapshot S = T.snapshot();
  EXPECT_TRUE(S.Stalled);
  EXPECT_EQ(S.counter(Counter::C_WatchdogStalls), 1u);
  EXPECT_NE(S.str().find("** STALLED **"), std::string::npos);

  // Catching up clears the flag (lag drops to zero).
  T.noteConsumed(50);
  ASSERT_TRUE(eventually([&T] { return !T.stalled(); }));
  T.stopSampler();
}

TEST(TelemetryTest, SnapshotRendersValidJson) {
  Telemetry T;
  T.count(Counter::C_CheckerActions, 12);
  T.record(Histo::H_FeedNs, 900);
  TelemetrySnapshot S = T.snapshot();
  std::string J = S.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"checker_actions\":12"), std::string::npos) << J;
  EXPECT_NE(J.find("\"feed_latency\""), std::string::npos) << J;
}

TEST(TelemetryTest, MetricNamesAreDefined) {
  for (size_t C = 0; C < NumCounters; ++C)
    EXPECT_STRNE(counterName(static_cast<Counter>(C)), "?");
  for (size_t H = 0; H < NumHistos; ++H) {
    EXPECT_STRNE(histoName(static_cast<Histo>(H)), "?");
    EXPECT_STRNE(histoUnit(static_cast<Histo>(H)), "?");
  }
  for (size_t G = 0; G < NumGauges; ++G)
    EXPECT_STRNE(gaugeName(static_cast<Gauge>(G)), "?");
}

TEST(TelemetryTest, GaugeSetOverwritesAndKeepsHwm) {
  // The adaptive controller publishes its decisions with gaugeSet (plain
  // relaxed stores): the value is a point-in-time truth, the HWM keeps
  // the largest target ever published.
  Telemetry T;
  T.gaugeSet(Gauge::G_PumpBatchTarget, 512);
  T.gaugeSet(Gauge::G_PumpBatchTarget, 2048);
  T.gaugeSet(Gauge::G_PumpBatchTarget, 128);
  T.gaugeSet(Gauge::G_PolicyActive,
             static_cast<uint64_t>(BackpressurePolicy::BP_SpillToDisk));
  TelemetrySnapshot S = T.snapshot();
  EXPECT_EQ(S.gauge(Gauge::G_PumpBatchTarget), 128u);
  EXPECT_EQ(S.gaugeHwm(Gauge::G_PumpBatchTarget), 2048u);
  EXPECT_EQ(S.gauge(Gauge::G_PolicyActive),
            static_cast<uint64_t>(BackpressurePolicy::BP_SpillToDisk));
  std::string J = S.json();
  EXPECT_NE(J.find("\"pump_batch_target\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"policy_active\""), std::string::npos) << J;
}

TEST(TelemetryTest, ControlGaugesAreSafeUnderConcurrentSnapshots) {
  // One writer hammering the control-loop gauges (as the pump thread
  // does) while another thread snapshots: relaxed atomics, no torn or
  // out-of-range values ever observed.
  Telemetry T;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    for (uint64_t I = 1; !Stop.load(std::memory_order_relaxed); ++I) {
      T.gaugeSet(Gauge::G_PumpBatchTarget, 64 + (I % 8192));
      T.gaugeSet(Gauge::G_PolicyActive, I % 3);
    }
  });
  for (int I = 0; I < 200; ++I) {
    TelemetrySnapshot S = T.snapshot();
    uint64_t Target = S.gauge(Gauge::G_PumpBatchTarget);
    if (Target) {
      EXPECT_GE(Target, 64u);
      EXPECT_LT(Target, 64u + 8192u);
      EXPECT_LE(Target, S.gaugeHwm(Gauge::G_PumpBatchTarget));
    }
    EXPECT_LT(S.gauge(Gauge::G_PolicyActive), 3u);
  }
  Stop.store(true, std::memory_order_relaxed);
  Writer.join();
}

//===----------------------------------------------------------------------===//
// End-to-end pipeline wiring
//===----------------------------------------------------------------------===//

namespace {

VerifierReport runInstrumentedMultiset(VerifierConfig VC, unsigned Ops) {
  Verifier V(std::make_unique<multiset::MultisetSpec>(),
             KeyValueReplayer::guardedBag("A"), VC);
  V.start();
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, V.hooks());
  for (unsigned I = 0; I < Ops; ++I) {
    M.insert(I % 7);
    M.lookUp(I % 7);
    if (I % 3 == 0)
      M.remove(I % 7);
  }
  return V.finish();
}

} // namespace

TEST(TelemetryTest, PipelineCountersBalance) {
  VerifierConfig VC;
  VC.Online = true;
  VC.Telemetry.Enabled = true;
  VerifierReport R = runInstrumentedMultiset(VC, 200);
  ASSERT_TRUE(R.ok()) << R.str();
  ASSERT_TRUE(R.TelemetryEnabled);

  const TelemetrySnapshot &S = R.Telemetry;
  // Every hook record was appended, and every appended record reached the
  // checker — nothing lost between the stages.
  EXPECT_EQ(S.counter(Counter::C_HookRecords), R.LogRecords);
  EXPECT_EQ(S.counter(Counter::C_LogAppends), R.LogRecords);
  EXPECT_EQ(S.counter(Counter::C_CheckerActions), R.LogRecords);
  EXPECT_GE(S.counter(Counter::C_CheckerBatches), 1u);
  EXPECT_EQ(S.histo(Histo::H_FeedBatch).Count,
            S.counter(Counter::C_CheckerBatches));
  EXPECT_EQ(S.histo(Histo::H_FeedBatch).Sum,
            S.counter(Counter::C_CheckerActions));
  EXPECT_GT(S.histo(Histo::H_FeedNs).Count, 0u);
  // View mode compares at every commit.
  EXPECT_EQ(S.histo(Histo::H_ViewCompareNs).Count,
            R.Stats.ViewComparisons);
  // The report embeds the snapshot in both renderings.
  EXPECT_NE(R.str().find("telemetry:"), std::string::npos);
  EXPECT_TRUE(jsonValid(R.json())) << R.json();
}

TEST(TelemetryTest, BufferedBackendFeedsFlusherMetrics) {
  VerifierConfig VC;
  VC.Online = true;
  VC.Backend = LogBackend::LB_Buffered;
  VC.Telemetry.Enabled = true;
  VerifierReport R = runInstrumentedMultiset(VC, 200);
  ASSERT_TRUE(R.ok()) << R.str();

  const TelemetrySnapshot &S = R.Telemetry;
  EXPECT_EQ(S.counter(Counter::C_LogAppends), R.LogRecords);
  EXPECT_EQ(S.counter(Counter::C_FlushedRecords), R.LogRecords);
  EXPECT_GE(S.counter(Counter::C_FlushBatches), 1u);
  EXPECT_EQ(S.histo(Histo::H_FlushBatch).Sum,
            S.counter(Counter::C_FlushedRecords));
  EXPECT_GT(S.histo(Histo::H_AppendNs).Count, 0u);
}

TEST(TelemetryTest, DisabledTelemetryLeavesReportEmpty) {
  VerifierConfig VC;
  VC.Online = true;
  VerifierReport R = runInstrumentedMultiset(VC, 50);
  ASSERT_TRUE(R.ok());
  EXPECT_FALSE(R.TelemetryEnabled);
  EXPECT_EQ(R.Telemetry.counter(Counter::C_LogAppends), 0u);
  EXPECT_TRUE(jsonValid(R.json())) << R.json();
}

TEST(TelemetryTest, VerifierExposesLiveLag) {
  VerifierConfig VC;
  VC.Online = true;
  VC.Telemetry.Enabled = true;
  VC.Telemetry.SampleIntervalUs = 500;
  Verifier V(std::make_unique<multiset::MultisetSpec>(),
             KeyValueReplayer::guardedBag("A"), VC);
  ASSERT_NE(V.telemetry(), nullptr);
  V.start();
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 16;
  multiset::ArrayMultiset M(MO, V.hooks());
  for (unsigned I = 0; I < 100; ++I)
    M.insert(I % 5);
  VerifierReport R = V.finish();
  ASSERT_TRUE(R.ok()) << R.str();
  // The drained pipeline converges to zero lag, and the sampler ran.
  EXPECT_EQ(R.Telemetry.CheckerLag, 0u);
  EXPECT_FALSE(R.Telemetry.Stalled);
}

//===----------------------------------------------------------------------===//
// Per-object counters (the multi-object engine's telemetry dimension)
//===----------------------------------------------------------------------===//

TEST(TelemetryTest, PerObjectCountersAccumulate) {
  Telemetry T;
  T.registerObject(0, "alpha");
  T.registerObject(1, "beta");
  T.noteObjectRouted(0, 10);
  T.noteObjectRouted(0, 5);
  T.noteObjectRouted(1, 7);
  T.noteObjectChecked(0, 12);
  TelemetrySnapshot S = T.snapshot();
  ASSERT_EQ(S.Objects.size(), 2u);
  EXPECT_EQ(S.Objects[0].Name, "alpha");
  EXPECT_EQ(S.Objects[0].Routed, 15u);
  EXPECT_EQ(S.Objects[0].Checked, 12u);
  EXPECT_EQ(S.Objects[0].Backlog, 3u);
  EXPECT_EQ(S.Objects[1].Name, "beta");
  EXPECT_EQ(S.Objects[1].Routed, 7u);
  EXPECT_EQ(S.Objects[1].Checked, 0u);
  EXPECT_EQ(T.objectBacklog(0), 3u);
  EXPECT_EQ(T.objectBacklog(1), 7u);
}

TEST(TelemetryTest, PerObjectCountersRenderInJsonAndText) {
  Telemetry T;
  T.registerObject(0, "alpha");
  T.noteObjectRouted(0, 4);
  T.noteObjectChecked(0, 4);
  TelemetrySnapshot S = T.snapshot();
  std::string J = S.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"alpha\":{\"routed\":4,\"checked\":4,\"backlog\":0"),
            std::string::npos)
      << J;
  EXPECT_NE(S.str().find("alpha"), std::string::npos);
}

TEST(TelemetryTest, MultiObjectVerifierRunPopulatesObjectCounters) {
  VerifierConfig VC;
  VC.Telemetry.Enabled = true;
  Verifier V(VC);
  Hooks A = V.registerObject("a", std::make_unique<multiset::MultisetSpec>(),
                             KeyValueReplayer::guardedBag("A"));
  Hooks B = V.registerObject("b", std::make_unique<multiset::MultisetSpec>(),
                             KeyValueReplayer::guardedBag("A"));
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 8;
  V.start();
  multiset::ArrayMultiset MA(MO, A), MB(MO, B);
  for (int I = 0; I < 10; ++I) {
    MA.insert(I % 3);
    MB.insert(I % 3);
    MB.remove(I % 3);
  }
  VerifierReport R = V.finish();
  ASSERT_TRUE(R.ok()) << R.str();
  ASSERT_TRUE(R.TelemetryEnabled);
  ASSERT_EQ(R.Telemetry.Objects.size(), 2u);
  for (const ObjectTelemetry &O : R.Telemetry.Objects) {
    EXPECT_GT(O.Routed, 0u) << O.Name;
    EXPECT_EQ(O.Routed, O.Checked) << "fully drained at finish: " << O.Name;
    EXPECT_EQ(O.Backlog, 0u) << O.Name;
  }
  // The per-object routed counts partition the consumed stream.
  EXPECT_EQ(R.Telemetry.Objects[0].Routed + R.Telemetry.Objects[1].Routed,
            R.LogRecords);
}
