//===- CheckerTest.cpp - Unit tests for the refinement checker ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the checker on scripted logs against a tiny register
/// specification: Set(x) is a mutator (state := x), Get() an observer
/// returning the state. The scripts mirror the paper's figures: witness
/// ordering by commit actions (Fig. 3), the observer window rule (Fig. 7),
/// and commit-block atomicity (Sec. 5.2).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "vyrd/Checker.h"

#include <gtest/gtest.h>

using namespace vyrd;
using namespace vyrd::test;

namespace {

/// Tiny register spec: Set(x) -> true sets the state; Get() -> x allowed
/// iff x is the current state. View: one ("reg", state) entry.
class RegisterSpec : public Spec {
public:
  RegisterSpec()
      : SetM(name("Set")), GetM(name("Get")), State(Value(0)) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override {
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() ||
        !Ret.asBool())
      return false;
    ViewS.remove(Value("reg"), State);
    State = Args[0];
    ViewS.add(Value("reg"), State);
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override {
    Out.clear();
    Out.add(Value("reg"), State);
  }

  Name SetM, GetM;
  Value State;
};

/// Shadow: replays writes to variable "reg".
class RegisterReplayer : public Replayer {
public:
  RegisterReplayer() : RegVar(name("reg")), State(Value(0)) {}

  void applyUpdate(const Action &A, View &ViewI) override {
    ASSERT_EQ(A.Var, RegVar);
    ViewI.remove(Value("reg"), State);
    State = A.Ret;
    ViewI.add(Value("reg"), State);
  }

  void buildView(View &Out) const override {
    Out.clear();
    Out.add(Value("reg"), State);
  }

  bool checkInvariants(std::string &Message) const override {
    if (FailInvariant) {
      Message = "forced invariant failure";
      return false;
    }
    return true;
  }

  Name RegVar;
  Value State;
  bool FailInvariant = false;
};

struct Fixture {
  RegisterSpec Spec;
  RegisterReplayer Replay;
  Name Set = name("Set");
  Name Get = name("Get");
  Name Reg = name("reg");

  std::unique_ptr<RefinementChecker> make(CheckMode Mode,
                                          CheckerConfig Extra = {}) {
    Extra.Mode = Mode;
    return std::make_unique<RefinementChecker>(
        Spec, Mode == CheckMode::CM_ViewRefinement ? &Replay : nullptr,
        Extra);
  }

  /// A full, correct Set(x) execution by thread T with the write inside a
  /// commit block.
  std::vector<Action> setOk(ThreadId T, int64_t X) {
    return {Action::call(T, Set, {Value(X)}),
            Action::blockBegin(T),
            Action::write(T, Reg, Value(X)),
            Action::commit(T),
            Action::blockEnd(T),
            Action::ret(T, Set, Value(true))};
  }
};

std::vector<Action> concat(std::initializer_list<std::vector<Action>> Ls) {
  std::vector<Action> Out;
  for (const auto &L : Ls)
    Out.insert(Out.end(), L.begin(), L.end());
  return Out;
}

} // namespace

TEST(CheckerTest, EmptyLogIsClean) {
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  C->finish();
  EXPECT_FALSE(C->hasViolation());
  EXPECT_EQ(C->stats().MethodsChecked, 0u);
}

TEST(CheckerTest, SequentialMutatorsPass) {
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  runScript(*C, concat({F.setOk(0, 1), F.setOk(0, 2), F.setOk(0, 3)}));
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
  EXPECT_EQ(C->stats().MethodsChecked, 3u);
  EXPECT_EQ(C->stats().CommitsProcessed, 3u);
}

TEST(CheckerTest, WitnessOrderIsCommitOrderNotCallOrder) {
  // Fig. 3: t0 calls first but commits second; the specification must see
  // t1's Set(20) before t0's Set(10).
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S = {
      Action::call(0, F.Set, {Value(10)}),
      Action::call(1, F.Set, {Value(20)}),
      Action::blockBegin(1),
      Action::write(1, F.Reg, Value(20)),
      Action::commit(1),
      Action::blockEnd(1),
      Action::ret(1, F.Set, Value(true)),
      Action::blockBegin(0),
      Action::write(0, F.Reg, Value(10)),
      Action::commit(0),
      Action::blockEnd(0),
      Action::ret(0, F.Set, Value(true)),
  };
  runScript(*C, S);
  EXPECT_FALSE(C->hasViolation());
  EXPECT_EQ(F.Spec.State, Value(10)) << "t0 committed last";
}

TEST(CheckerTest, ReturnValueLookaheadStallsUntilReturn) {
  // The commit is fed long before the return; the checker must not process
  // it (or later events) until the return arrives.
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  C->feed(Action::call(0, F.Set, {Value(5)}));
  C->feed(Action::blockBegin(0));
  C->feed(Action::write(0, F.Reg, Value(5)));
  C->feed(Action::commit(0));
  C->feed(Action::blockEnd(0));
  EXPECT_EQ(C->stats().CommitsProcessed, 0u) << "stalled on lookahead";
  C->feed(Action::ret(0, F.Set, Value(true)));
  EXPECT_EQ(C->stats().CommitsProcessed, 1u);
  C->finish();
  EXPECT_FALSE(C->hasViolation());
}

TEST(CheckerTest, MutatorMismatchIsReported) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  // Set must return true; a false return has no spec transition.
  std::vector<Action> S = {Action::call(0, F.Set, {Value(1)}),
                           Action::commit(0),
                           Action::ret(0, F.Set, Value(false))};
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_MutatorMismatch));
}

TEST(CheckerTest, ObserverSeesStateAtCall) {
  // Get returning the pre-update value is fine when its call precedes the
  // mutator's commit (window includes s0).
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S = concat({F.setOk(0, 1)});
  S.push_back(Action::call(2, F.Get, {}));
  auto Mut = F.setOk(1, 99);
  S.insert(S.end(), Mut.begin(), Mut.end());
  S.push_back(Action::ret(2, F.Get, Value(1))); // old value
  runScript(*C, S);
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
}

TEST(CheckerTest, ObserverSeesStateAfterAnyWindowCommit) {
  // Get returning the post-update value is fine when the mutator commits
  // inside the observer's window (Fig. 7).
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S = concat({F.setOk(0, 1)});
  S.push_back(Action::call(2, F.Get, {}));
  auto Mut = F.setOk(1, 99);
  S.insert(S.end(), Mut.begin(), Mut.end());
  S.push_back(Action::ret(2, F.Get, Value(99))); // new value
  runScript(*C, S);
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
}

TEST(CheckerTest, ObserverMismatchOutsideWindow) {
  // Get runs entirely after Set(99): returning the stale value 1 matches
  // no window state.
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S =
      concat({F.setOk(0, 1), F.setOk(1, 99),
              {Action::call(2, F.Get, {}),
               Action::ret(2, F.Get, Value(1))}});
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_ObserverMismatch));
}

TEST(CheckerTest, ObserverWindowClosesBeforeLaterCommits) {
  // A commit *after* the observer's return must not validate it.
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S =
      concat({F.setOk(0, 1),
              {Action::call(2, F.Get, {}),
               Action::ret(2, F.Get, Value(99))}, // nothing set 99 yet
              F.setOk(1, 99)});
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_ObserverMismatch));
}

TEST(CheckerTest, ViewMismatchDetectedAtCommit) {
  // The implementation writes 7 but claims Set(8): viewI != viewS.
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S = {
      Action::call(0, F.Set, {Value(8)}),
      Action::blockBegin(0),
      Action::write(0, F.Reg, Value(7)), // the "bug"
      Action::commit(0),
      Action::blockEnd(0),
      Action::ret(0, F.Set, Value(true)),
  };
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_ViewMismatch));
  // I/O refinement on the same trace sees nothing wrong.
  Fixture F2;
  auto C2 = F2.make(CheckMode::CM_IORefinement);
  runScript(*C2, S);
  EXPECT_FALSE(C2->hasViolation());
}

TEST(CheckerTest, CommitBlockWritesApplyAtomicallyAtCommit) {
  // t1's commit lands between t0's block-begin and block-end; t0's write
  // must NOT be visible to the view comparison at t1's commit.
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  std::vector<Action> S = {
      Action::call(0, F.Set, {Value(10)}),
      Action::blockBegin(0),
      Action::write(0, F.Reg, Value(10)),
      // t1 commits mid-block of t0:
      Action::call(1, F.Set, {Value(20)}),
      Action::blockBegin(1),
      Action::write(1, F.Reg, Value(20)),
      Action::commit(1),
      Action::blockEnd(1),
      Action::ret(1, F.Set, Value(true)),
      // t0 finishes afterwards:
      Action::commit(0),
      Action::blockEnd(0),
      Action::ret(0, F.Set, Value(true)),
  };
  runScript(*C, S);
  // Witness: Set(20) then Set(10); the shadow register ends at 10 on both
  // sides and no transient mixing occurs.
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
  EXPECT_EQ(F.Spec.State, Value(10));
  EXPECT_EQ(F.Replay.State, Value(10));
}

TEST(CheckerTest, BlockWithoutCommitAppliesAtBlockEnd) {
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  // A maintenance method that rewrites the register to its current value
  // inside a block with the commit outside the block.
  std::vector<Action> S = concat({F.setOk(0, 4)});
  S.push_back(Action::call(1, F.Set, {Value(4)}));
  S.push_back(Action::blockBegin(1));
  S.push_back(Action::write(1, F.Reg, Value(4)));
  S.push_back(Action::blockEnd(1));
  S.push_back(Action::commit(1));
  S.push_back(Action::ret(1, F.Set, Value(true)));
  runScript(*C, S);
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
}

TEST(CheckerTest, InvariantFailureIsReported) {
  Fixture F;
  F.Replay.FailInvariant = true;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  runScript(*C, F.setOk(0, 1));
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_InvariantFailed));
}

TEST(CheckerTest, MissingCommitIsInstrumentationError) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  std::vector<Action> S = {Action::call(0, F.Set, {Value(1)}),
                           Action::ret(0, F.Set, Value(true))};
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_Instrumentation));
}

TEST(CheckerTest, DoubleCommitIsInstrumentationError) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  std::vector<Action> S = {Action::call(0, F.Set, {Value(1)}),
                           Action::commit(0), Action::commit(0),
                           Action::ret(0, F.Set, Value(true))};
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_Instrumentation));
}

TEST(CheckerTest, ObserverCommitIsInstrumentationError) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  std::vector<Action> S = {Action::call(0, F.Get, {}), Action::commit(0),
                           Action::ret(0, F.Get, Value(0))};
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_Instrumentation));
}

TEST(CheckerTest, NestedCallIsInstrumentationError) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  std::vector<Action> S = {Action::call(0, F.Set, {Value(1)}),
                           Action::call(0, F.Set, {Value(2)})};
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_Instrumentation));
}

TEST(CheckerTest, IncompleteTailAllowedByDefault) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  runScript(*C, {Action::call(0, F.Set, {Value(1)}), Action::commit(0)});
  EXPECT_FALSE(C->hasViolation());
}

TEST(CheckerTest, IncompleteTailFlaggedInStrictMode) {
  Fixture F;
  CheckerConfig CC;
  CC.AllowIncompleteTail = false;
  auto C = F.make(CheckMode::CM_IORefinement, CC);
  runScript(*C, {Action::call(0, F.Set, {Value(1)}), Action::commit(0)});
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_Instrumentation));
}

TEST(CheckerTest, StopAtFirstViolationStopsCounting) {
  Fixture F;
  CheckerConfig CC;
  CC.StopAtFirstViolation = true;
  auto C = F.make(CheckMode::CM_IORefinement, CC);
  std::vector<Action> S =
      concat({{Action::call(0, F.Set, {Value(1)}), Action::commit(0),
               Action::ret(0, F.Set, Value(false))}, // violation
              F.setOk(0, 2),
              F.setOk(0, 3)});
  runScript(*C, S);
  EXPECT_EQ(C->violations().size(), 1u);
}

TEST(CheckerTest, MaxViolationsCapsReports) {
  Fixture F;
  CheckerConfig CC;
  CC.MaxViolations = 2;
  auto C = F.make(CheckMode::CM_IORefinement, CC);
  std::vector<Action> S;
  for (int I = 0; I < 5; ++I) {
    S.push_back(Action::call(0, F.Set, {Value(I)}));
    S.push_back(Action::commit(0));
    S.push_back(Action::ret(0, F.Set, Value(false))); // each violates
  }
  runScript(*C, S);
  EXPECT_EQ(C->violations().size(), 2u);
}

TEST(CheckerTest, AuditPassesOnConsistentReplayer) {
  Fixture F;
  CheckerConfig CC;
  CC.AuditPeriod = 1;
  auto C = F.make(CheckMode::CM_ViewRefinement, CC);
  runScript(*C, concat({F.setOk(0, 1), F.setOk(0, 2)}));
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
  EXPECT_EQ(C->stats().Audits, 2u);
}

TEST(CheckerTest, FullRecomputeModeAgreesWithIncremental) {
  Fixture F;
  CheckerConfig CC;
  CC.FullViewRecompute = true;
  auto C = F.make(CheckMode::CM_ViewRefinement, CC);
  runScript(*C, concat({F.setOk(0, 1), F.setOk(1, 2), F.setOk(0, 3)}));
  EXPECT_FALSE(C->hasViolation());
}

TEST(CheckerTest, QuiescentOnlySkipsContestedCommits) {
  // The "bug" (write 7, claim Set(8)) commits while another execution is
  // open, and a later correct Set overwrites the corruption: quiescent
  // checking misses it, every-commit checking reports it (the Sec. 8
  // argument against quiescent-point comparison).
  auto MakeScript = [](Fixture &F) {
    std::vector<Action> S = {
        Action::call(1, F.Set, {Value(99)}), // keeps the point contested
        Action::call(0, F.Set, {Value(8)}),
        Action::blockBegin(0),
        Action::write(0, F.Reg, Value(7)), // corruption
        Action::commit(0),
        Action::blockEnd(0),
        Action::ret(0, F.Set, Value(true)),
        Action::blockBegin(1),
        Action::write(1, F.Reg, Value(99)), // overwrites the evidence
        Action::commit(1),
        Action::blockEnd(1),
        Action::ret(1, F.Set, Value(true)),
    };
    return S;
  };

  Fixture FQ;
  CheckerConfig Quiescent;
  Quiescent.QuiescentOnly = true;
  auto CQ = FQ.make(CheckMode::CM_ViewRefinement, Quiescent);
  runScript(*CQ, MakeScript(FQ));
  EXPECT_FALSE(hasViolation(*CQ, ViolationKind::VK_ViewMismatch))
      << "quiescent-only checking must miss the overwritten corruption";

  Fixture FE;
  auto CE = FE.make(CheckMode::CM_ViewRefinement);
  runScript(*CE, MakeScript(FE));
  EXPECT_TRUE(hasViolation(*CE, ViolationKind::VK_ViewMismatch))
      << "every-commit checking must catch it";
}

TEST(CheckerTest, QuiescentOnlyStillChecksQuiescentCommits) {
  Fixture F;
  CheckerConfig CC;
  CC.QuiescentOnly = true;
  auto C = F.make(CheckMode::CM_ViewRefinement, CC);
  // Sequential corruption: the commit is quiescent, so it is checked.
  std::vector<Action> S = {
      Action::call(0, F.Set, {Value(8)}),
      Action::blockBegin(0),
      Action::write(0, F.Reg, Value(7)),
      Action::commit(0),
      Action::blockEnd(0),
      Action::ret(0, F.Set, Value(true)),
  };
  runScript(*C, S);
  EXPECT_TRUE(hasViolation(*C, ViolationKind::VK_ViewMismatch));
}

TEST(CheckerTest, QueueDepthTracksLookahead) {
  Fixture F;
  auto C = F.make(CheckMode::CM_ViewRefinement);
  // Ten commits all stalled on their returns: the queue must have grown.
  std::vector<Action> S;
  for (ThreadId T = 0; T < 10; ++T) {
    S.push_back(Action::call(T, F.Set, {Value(T)}));
    S.push_back(Action::blockBegin(T));
    S.push_back(Action::write(T, F.Reg, Value(static_cast<int64_t>(T))));
    S.push_back(Action::commit(T));
    S.push_back(Action::blockEnd(T));
  }
  for (ThreadId T = 0; T < 10; ++T)
    S.push_back(Action::ret(T, F.Set, Value(true)));
  runScript(*C, S);
  EXPECT_FALSE(C->hasViolation()) << C->violations()[0].str();
  EXPECT_GE(C->stats().MaxQueueDepth, 10u);
}

TEST(CheckerTest, ContextRecordsAttachRecentActions) {
  Fixture F;
  CheckerConfig CC;
  CC.ContextRecords = 6;
  auto C = F.make(CheckMode::CM_IORefinement, CC);
  std::vector<Action> S =
      concat({F.setOk(0, 1),
              {Action::call(0, F.Set, {Value(2)}), Action::commit(0),
               Action::ret(0, F.Set, Value(false))}});
  runScript(*C, S);
  ASSERT_TRUE(C->hasViolation());
  const Violation &V = C->violations().front();
  EXPECT_FALSE(V.Context.empty());
  EXPECT_NE(V.Context.find("commit"), std::string::npos) << V.Context;
  // The ring holds at most the configured number of lines.
  size_t Lines = 0;
  for (char Ch : V.Context)
    Lines += Ch == '\n';
  EXPECT_LE(Lines, 6u);
}

TEST(CheckerTest, ContextDisabledByDefault) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  runScript(*C, {Action::call(0, F.Set, {Value(1)}), Action::commit(0),
                 Action::ret(0, F.Set, Value(false))});
  ASSERT_TRUE(C->hasViolation());
  EXPECT_TRUE(C->violations().front().Context.empty());
}

TEST(CheckerTest, ViolationRecordsMethodsChecked) {
  Fixture F;
  auto C = F.make(CheckMode::CM_IORefinement);
  std::vector<Action> S =
      concat({F.setOk(0, 1), F.setOk(0, 2),
              {Action::call(0, F.Set, {Value(3)}), Action::commit(0),
               Action::ret(0, F.Set, Value(false))}});
  runScript(*C, S);
  ASSERT_TRUE(C->hasViolation());
  EXPECT_EQ(C->violations()[0].MethodsChecked, 2u)
      << "two methods checked before the bad one";
}
