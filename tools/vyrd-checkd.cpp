//===- vyrd-checkd.cpp - Long-running remote checker service --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The checker fleet's daemon (docs/SHIPPING.md): listens for shipping
// producers (Verifiers started with VerifierConfig::Shipping, or
// `quickstart --ship`), runs one CheckerService per session, acks fed
// watermarks so producers can reclaim their checked prefixes, and writes
// `<session>.report.json` when a stream closes.
//
//   vyrd-checkd --listen ENDPOINT [options]
//
//   --listen ENDPOINT    unix:<path> or tcp:<host>:<port> (required)
//   --control PATH       monitor registry socket: `vyrd-mon --socket PATH
//                        list` names the live sessions, `--mon NAME`
//                        attaches to one (full vyrd-mon protocol)
//   --checker-threads N  checker pool size per session (default 1)
//   --report-dir DIR     where session reports go (default ".")
//   --once               exit after the first session completes
//
// Sessions name their pipelines via the Hello's program field: one of
// the harness program names (multiset, bst, vector, stringbuffer,
// blinktree, cache, scanfs, hashtable, queue) for a single-object
// stream, or "composite" for the four-object composite scenario. An
// unknown program refuses the stream (the producer degrades locally).
//
// SIGINT/SIGTERM stop the daemon cleanly: in-flight sessions finish over
// what they fed and their reports are written before exit.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "vyrd/ShipServer.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <time.h>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

std::atomic<bool> StopRequested{false};

void onSignal(int) { StopRequested.store(true, std::memory_order_release); }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --listen ENDPOINT [--control SOCKET] "
               "[--checker-threads N] [--report-dir DIR] [--once]\n"
               "  ENDPOINT: unix:<path> or tcp:<host>:<port>\n",
               Argv0);
  return 2;
}

/// Maps a Hello program name onto the harness pipelines.
bool resolvePipeline(const std::string &Name, bool ViewLevel,
                     size_t &NumObjects, PipelineFactory &Factory) {
  if (Name == "composite") {
    NumObjects = 4;
    Factory = makeCompositePipeline(ViewLevel);
    return true;
  }
  struct Entry {
    const char *Key;
    Program P;
  };
  static const Entry Table[] = {
      {"multiset", Program::P_MultisetVector},
      {"bst", Program::P_MultisetBst},
      {"vector", Program::P_Vector},
      {"stringbuffer", Program::P_StringBuffer},
      {"blinktree", Program::P_BLinkTree},
      {"cache", Program::P_Cache},
      {"scanfs", Program::P_ScanFs},
      {"hashtable", Program::P_Hashtable},
      {"queue", Program::P_Queue},
  };
  for (const Entry &E : Table)
    if (Name == E.Key) {
      NumObjects = 1;
      Factory = makeProgramPipeline(E.P, ViewLevel);
      return true;
    }
  return false;
}

} // namespace

int main(int Argc, char **Argv) {
  ShipServerOptions Opts;
  Opts.ReportDir = ".";
  std::string Control;
  bool Once = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--listen" && I + 1 < Argc) {
      Opts.Listen = Argv[++I];
    } else if (Arg == "--control" && I + 1 < Argc) {
      Control = Argv[++I];
    } else if (Arg == "--checker-threads" && I + 1 < Argc) {
      Opts.CheckerThreads =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (Arg == "--report-dir" && I + 1 < Argc) {
      Opts.ReportDir = Argv[++I];
    } else if (Arg == "--once") {
      Once = true;
    } else {
      return usage(Argv[0]);
    }
  }
  if (Opts.Listen.empty() || Opts.CheckerThreads == 0)
    return usage(Argv[0]);

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  MonitorRegistry Registry;
  ShipServer Server(Opts, resolvePipeline, &Registry);
  if (!Server.valid()) {
    std::fprintf(stderr, "vyrd-checkd: %s\n", Server.error().c_str());
    return 1;
  }
  std::unique_ptr<MonitorServer> Mon;
  if (!Control.empty()) {
    MonitorOptions MO;
    MO.SocketPath = Control;
    Mon = std::make_unique<MonitorServer>(MO, Registry);
    if (!Mon->valid()) {
      std::fprintf(stderr, "vyrd-checkd: control socket: %s\n",
                   Mon->error().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "vyrd-checkd: listening on %s\n",
               Opts.Listen.c_str());

  timespec Tick{0, 100 * 1000 * 1000};
  while (!StopRequested.load(std::memory_order_acquire)) {
    if (Once && Server.sessionsCompleted() > 0)
      break;
    nanosleep(&Tick, nullptr);
  }
  Server.stop(); // finalizes truncated sessions, writes their reports
  return 0;
}
