//===- vyrd-trace.cpp - Convert a VYRD log to Chrome trace JSON -----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Converts a binary log file produced by FileLog/BufferedLog into
// Chrome/Perfetto trace_event JSON (load it at https://ui.perfetto.dev or
// chrome://tracing). Timestamps are virtual: one log record = 1 us; see
// docs/OBSERVABILITY.md, "Trace mapping".
//
//   vyrd-trace <log-file> [-o <out.json>]
//
// Tracks: one per implementation thread (method spans with commit/write
// instants), plus a synthesized "verifier" track carrying one instant per
// commit in witness order — the order the checker processes them. (An
// online run with TelemetryOptions::TraceFilePath additionally shows the
// verifier's real check-batch spans.)
//
// Exit codes: 0 converted, 2 usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"
#include "vyrd/Trace.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

using namespace vyrd;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr, "usage: %s <log-file> [-o <out.json>]\n", Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, OutPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 < Argc) {
      OutPath = Argv[++I];
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else if (Path.empty()) {
      Path = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (Path.empty())
    return usage(Argv[0]);

  std::vector<Action> Log;
  if (!loadLogFile(Path, Log)) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n", Path.c_str());
    return 2;
  }

  TraceRecorder TR;
  // The method currently executing per thread, so verifier-track commit
  // instants can be named (the recorder tracks this for its own tracks,
  // but the verifier track is synthesized here).
  std::map<ThreadId, std::string> Current;
  for (const Action &A : Log) {
    TR.noteAction(A);
    switch (A.Kind) {
    case ActionKind::AK_Call:
      Current[A.Tid] = std::string(A.Method.str());
      break;
    case ActionKind::AK_Return:
      Current.erase(A.Tid);
      break;
    case ActionKind::AK_Commit: {
      // Witness order: the checker processes commits in log order.
      std::string Name = "commit t" + std::to_string(A.Tid);
      auto It = Current.find(A.Tid);
      if (It != Current.end())
        Name += " " + It->second;
      TR.noteVerifierInstant(A.Seq, std::move(Name));
      break;
    }
    default:
      break;
    }
  }

  if (OutPath.empty()) {
    std::string Doc = TR.json();
    std::fwrite(Doc.data(), 1, Doc.size(), stdout);
    return 0;
  }
  if (!TR.writeFile(OutPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", OutPath.c_str());
    return 2;
  }
  std::fprintf(stderr, "%s: %zu records -> %zu trace events -> %s\n",
               Path.c_str(), Log.size(), TR.eventCount(), OutPath.c_str());
  return 0;
}
