file(REMOVE_RECURSE
  "CMakeFiles/vyrd-check.dir/vyrd-check.cpp.o"
  "CMakeFiles/vyrd-check.dir/vyrd-check.cpp.o.d"
  "vyrd-check"
  "vyrd-check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd-check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
