# Empty dependencies file for vyrd-check.
# This may be replaced when dependencies are built.
