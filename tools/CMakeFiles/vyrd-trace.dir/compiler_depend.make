# Empty compiler generated dependencies file for vyrd-trace.
# This may be replaced when dependencies are built.
