file(REMOVE_RECURSE
  "CMakeFiles/vyrd-trace.dir/vyrd-trace.cpp.o"
  "CMakeFiles/vyrd-trace.dir/vyrd-trace.cpp.o.d"
  "vyrd-trace"
  "vyrd-trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd-trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
