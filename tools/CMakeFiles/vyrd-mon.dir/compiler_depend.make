# Empty compiler generated dependencies file for vyrd-mon.
# This may be replaced when dependencies are built.
