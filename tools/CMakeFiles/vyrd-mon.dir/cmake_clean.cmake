file(REMOVE_RECURSE
  "CMakeFiles/vyrd-mon.dir/vyrd-mon.cpp.o"
  "CMakeFiles/vyrd-mon.dir/vyrd-mon.cpp.o.d"
  "vyrd-mon"
  "vyrd-mon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd-mon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
