# Empty dependencies file for vyrd-logdump.
# This may be replaced when dependencies are built.
