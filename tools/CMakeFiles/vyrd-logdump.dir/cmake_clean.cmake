file(REMOVE_RECURSE
  "CMakeFiles/vyrd-logdump.dir/vyrd-logdump.cpp.o"
  "CMakeFiles/vyrd-logdump.dir/vyrd-logdump.cpp.o.d"
  "vyrd-logdump"
  "vyrd-logdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd-logdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
