#!/usr/bin/env python3
"""Compare fresh quick-mode bench JSON against bench/baseline.json.

Usage:
  check_bench_baseline.py <log_backends.json> <checker_hotpath.json>
      [backpressure.json] [multiobject_epochs.json]
      [--baseline bench/baseline.json] [--factor 2.0] [--write]

Fails (exit 1) when any metric regressed by more than the factor:
  * throughput metrics (app-side appends/s) below baseline / factor,
  * latency metrics (checker ns/record, allocs/record) above
    baseline * factor.

The wide default factor absorbs host-to-host variance (CI runners are
noisy and slower than the reference machine); it is meant to catch
order-of-magnitude regressions like losing the sharded append fast path
or the observer memo, not single-digit drift. Metrics present in only
one side are reported but do not fail the check, so adding or renaming
bench configs does not break CI before the baseline is regenerated.

--write regenerates the baseline file from the fresh results instead of
checking (run it on the reference host after intentional perf changes).
"""

import argparse
import json
import sys


def load_metrics(log_backends_path, hotpath_path, backpressure_path=None,
                 epochs_path=None):
    metrics = {}
    with open(log_backends_path) as f:
        for row in json.load(f):
            key = "log_backends/%s/t%d/append_per_s" % (
                row["config"], row["threads"])
            metrics[key] = {"kind": "throughput", "value": row["throughput"]}
    with open(hotpath_path) as f:
        for row in json.load(f):
            key = "checker_hotpath/%s/ns_per_record" % row["config"]
            metrics[key] = {"kind": "latency", "value": row["ns_per_op"]}
            if row["config"] == "alloc-pipeline":
                metrics["checker_hotpath/allocs_per_record"] = {
                    "kind": "latency",
                    "value": row["extra"]["allocs_per_record"],
                }
    if backpressure_path:
        # Only the steady policies are baselined: shed rates depend on
        # how far the host's producer outruns the throttled checker, and
        # the escalation soak is a correctness gate (the bench itself
        # fails on a wrong transition sequence), not a perf metric.
        with open(backpressure_path) as f:
            for row in json.load(f):
                if row["config"] not in ("unbounded", "block", "spill",
                                         "fixed-256", "adaptive-on"):
                    continue
                key = "backpressure/%s/append_per_s" % row["config"]
                metrics[key] = {
                    "kind": "throughput",
                    "value": row["throughput"],
                }
                if row["config"] in ("fixed-256", "adaptive-on"):
                    # The self-tuning pipeline's robust win on any host:
                    # draining whole queues per sync makes the producer
                    # block far less often. Gated as a latency-kind
                    # metric (above baseline * factor fails).
                    metrics["backpressure/%s/blocked_p99_ns" %
                            row["config"]] = {
                        "kind": "latency",
                        "value": row["extra"]["blocked_p99_ns"],
                    }
    if epochs_path:
        # Checked records/s per epoch config. The x2/x4 speedup over
        # from-zero is informational (it collapses to ~1x on single-core
        # CI runners) and is tracked in EXPERIMENTS.md, not gated here.
        with open(epochs_path) as f:
            for row in json.load(f):
                key = "multiobject_epochs/%s/records_per_s" % (
                    row["config"].replace(" ", "-"))
                metrics[key] = {
                    "kind": "throughput",
                    "value": row["throughput"],
                }
    return metrics


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("log_backends_json")
    ap.add_argument("checker_hotpath_json")
    ap.add_argument("backpressure_json", nargs="?", default=None)
    ap.add_argument("multiobject_epochs_json", nargs="?", default=None)
    ap.add_argument("--baseline", default="bench/baseline.json")
    ap.add_argument("--factor", type=float, default=2.0)
    ap.add_argument("--write", action="store_true",
                    help="rewrite the baseline from the fresh results")
    args = ap.parse_args()

    fresh = load_metrics(args.log_backends_json, args.checker_hotpath_json,
                         args.backpressure_json,
                         args.multiobject_epochs_json)

    if args.write:
        out = {
            "comment": "Quick-mode reference numbers for "
                       "tools/check_bench_baseline.py. Regenerate with: "
                       "bench_log_backends, bench_checker_hotpath, "
                       "bench_backpressure and bench_multiobject --epochs, "
                       "each with --quick --json, on the reference host, "
                       "then tools/check_bench_baseline.py --write.",
            "metrics": fresh,
        }
        with open(args.baseline, "w") as f:
            json.dump(out, f, indent=2)
            f.write("\n")
        print("wrote %s (%d metrics)" % (args.baseline, len(fresh)))
        return 0

    with open(args.baseline) as f:
        baseline = json.load(f)["metrics"]

    failures = []
    for key in sorted(set(baseline) | set(fresh)):
        if key not in baseline:
            print("NEW      %-55s %12.1f (not in baseline)"
                  % (key, fresh[key]["value"]))
            continue
        if key not in fresh:
            print("MISSING  %-55s (in baseline only)" % key)
            continue
        base, now = baseline[key]["value"], fresh[key]["value"]
        kind = baseline[key]["kind"]
        if kind == "throughput":
            ok = now >= base / args.factor
            ratio = now / base if base else float("inf")
        else:
            ok = now <= base * args.factor
            ratio = base / now if now else float("inf")
        status = "ok      " if ok else "REGRESSED"
        print("%s %-55s %12.1f -> %12.1f (%.2fx)"
              % (status, key, base, now, ratio))
        if not ok:
            failures.append(key)

    if failures:
        print("\n%d metric(s) regressed by more than %.1fx:" %
              (len(failures), args.factor))
        for key in failures:
            print("  " + key)
        return 1
    print("\nall metrics within %.1fx of baseline" % args.factor)
    return 0


if __name__ == "__main__":
    sys.exit(main())
