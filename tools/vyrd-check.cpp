//===- vyrd-check.cpp - Offline refinement check of a recorded log ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Replays a recorded log through the refinement checker against one of
// the bundled program specifications (post-mortem verification, the
// "VYRD alone" mode of Table 3).
//
//   vyrd-check <log-file> --program <name> [--mode io|view]
//              [--max-violations N] [--audit N] [--quiescent]
//              [--context N]   (attach the last N records to violations)
//              [--resume]      (cold restart from the snapshot sidecar of
//                               the oldest live segment, docs/SNAPSHOTS.md)
//              [--epochs N]    (split each object's stream at snapshot
//                               sidecars and check the epochs on N threads)
//
// Program names: multiset, bst, vector, stringbuffer, blinktree, cache,
// scanfs, hashtable, queue — plus "composite" (the four-object harness
// scenario) for --resume/--epochs. Exit code: 0 clean, 1 violations
// found, 2 usage/IO error.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "vyrd/Epoch.h"
#include "vyrd/Log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <log-file> --program multiset|bst|vector|stringbuffer|"
      "blinktree|cache|scanfs|hashtable|queue|composite\n"
      "          [--mode io|view] [--max-violations N] [--audit N] "
      "[--quiescent] [--context N]\n"
      "          [--resume] [--epochs N]\n",
      Argv0);
  return 2;
}

bool parseProgram(const std::string &S, Program &Out) {
  if (S == "multiset")
    Out = Program::P_MultisetVector;
  else if (S == "bst")
    Out = Program::P_MultisetBst;
  else if (S == "vector")
    Out = Program::P_Vector;
  else if (S == "stringbuffer")
    Out = Program::P_StringBuffer;
  else if (S == "blinktree")
    Out = Program::P_BLinkTree;
  else if (S == "cache")
    Out = Program::P_Cache;
  else if (S == "scanfs")
    Out = Program::P_ScanFs;
  else if (S == "hashtable")
    Out = Program::P_Hashtable;
  else if (S == "queue")
    Out = Program::P_Queue;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, ProgName, Mode = "view";
  long MaxViolations = 16, Audit = 0, Context = 0, Epochs = 0;
  bool Quiescent = false, Resume = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--program" && I + 1 < Argc) {
      ProgName = Argv[++I];
    } else if (Arg == "--mode" && I + 1 < Argc) {
      Mode = Argv[++I];
    } else if (Arg == "--max-violations" && I + 1 < Argc) {
      MaxViolations = std::atol(Argv[++I]);
    } else if (Arg == "--audit" && I + 1 < Argc) {
      Audit = std::atol(Argv[++I]);
    } else if (Arg == "--context" && I + 1 < Argc) {
      Context = std::atol(Argv[++I]);
    } else if (Arg == "--quiescent") {
      Quiescent = true;
    } else if (Arg == "--resume") {
      Resume = true;
    } else if (Arg == "--epochs" && I + 1 < Argc) {
      Epochs = std::atol(Argv[++I]);
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Path = Arg;
    }
  }
  bool Composite = ProgName == "composite";
  Program Prog = Program::P_MultisetVector;
  if (Path.empty() || (!Composite && !parseProgram(ProgName, Prog)) ||
      (Mode != "io" && Mode != "view") || Epochs < 0 ||
      (Resume && Epochs > 0))
    return usage(Argv[0]);

  // The snapshot paths: check the chain through epochCheck instead of a
  // scenario replay. --resume restores from the front sidecar only (the
  // cold restart); --epochs N additionally splits at every sidecar and
  // checks the (object, epoch) matrix on N threads.
  if (Resume || Epochs > 0) {
    bool ViewLevel = Mode == "view";
    EpochCheckOptions EO;
    EO.Checker.Mode = ViewLevel ? CheckMode::CM_ViewRefinement
                                : CheckMode::CM_IORefinement;
    EO.Checker.AuditPeriod = static_cast<unsigned>(Audit);
    EO.Checker.QuiescentOnly = Quiescent;
    EO.Checker.ContextRecords = static_cast<unsigned>(Context);
    EO.Threads = Resume ? 1 : static_cast<unsigned>(Epochs);
    EO.ResumeOnly = Resume;
    size_t NumObjects = Composite ? 4 : 1;
    PipelineFactory Factory = Composite
                                  ? makeCompositePipeline(ViewLevel)
                                  : makeProgramPipeline(Prog, ViewLevel);
    EpochReport ER = epochCheck(Path, NumObjects, Factory, EO);
    if (!ER.Error.empty()) {
      std::fprintf(stderr, "error: %s\n", ER.Error.c_str());
      return 2;
    }
    if (MaxViolations >= 0 &&
        ER.Report.Violations.size() > static_cast<size_t>(MaxViolations))
      ER.Report.Violations.resize(static_cast<size_t>(MaxViolations));
    std::printf("%s", ER.Report.str().c_str());
    std::printf("epochs: %llu, tasks: %llu, serial rechecks: %llu\n",
                static_cast<unsigned long long>(ER.Epochs),
                static_cast<unsigned long long>(ER.Tasks),
                static_cast<unsigned long long>(ER.SerialRechecks));
    return ER.Report.ok() ? 0 : 1;
  }
  if (Composite) {
    std::fprintf(stderr,
                 "error: --program composite requires --resume or "
                 "--epochs N (the plain replay path is single-object)\n");
    return 2;
  }

  std::vector<Action> Log;
  if (!loadLogFile(Path, Log)) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n",
                 Path.c_str());
    return 2;
  }

  ScenarioOptions SO;
  SO.Prog = Prog;
  SO.Mode = Mode == "view" ? RunMode::RM_OfflineView
                           : RunMode::RM_OfflineIO;
  SO.AuditPeriod = static_cast<unsigned>(Audit);
  SO.QuiescentOnly = Quiescent;
  SO.ContextRecords = static_cast<unsigned>(Context);
  Scenario S = makeScenario(SO);
  // Note: the scenario's own construction may append a few setup records
  // (e.g. the B-link tree's initial root) before the replayed ones; the
  // replay is idempotent with respect to them.
  for (const Action &A : Log)
    S.L->append(A);
  VerifierReport R = S.Finish();
  if (MaxViolations >= 0 &&
      R.Violations.size() > static_cast<size_t>(MaxViolations))
    R.Violations.resize(static_cast<size_t>(MaxViolations));

  std::printf("%s", R.str().c_str());
  if (Context > 0)
    for (const Violation &V : R.Violations)
      if (!V.Context.empty())
        std::printf("\ncontext of #%llu:\n%s",
                    static_cast<unsigned long long>(V.Seq),
                    V.Context.c_str());
  return R.ok() ? 0 : 1;
}
