//===- vyrd-check.cpp - Offline refinement check of a recorded log ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Replays a recorded log through the refinement checker against one of
// the bundled program specifications (post-mortem verification, the
// "VYRD alone" mode of Table 3).
//
//   vyrd-check <log-file> --program <name> [--mode io|view]
//              [--max-violations N] [--audit N] [--quiescent]
//              [--context N]   (attach the last N records to violations)
//
// Program names: multiset, bst, vector, stringbuffer, blinktree, cache,
// scanfs, hashtable, queue. Exit code: 0 clean, 1 violations found,
// 2 usage/IO error.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "vyrd/Log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace vyrd;
using namespace vyrd::harness;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <log-file> --program multiset|bst|vector|stringbuffer|"
      "blinktree|cache|scanfs|hashtable|queue\n"
      "          [--mode io|view] [--max-violations N] [--audit N] "
      "[--quiescent] [--context N]\n",
      Argv0);
  return 2;
}

bool parseProgram(const std::string &S, Program &Out) {
  if (S == "multiset")
    Out = Program::P_MultisetVector;
  else if (S == "bst")
    Out = Program::P_MultisetBst;
  else if (S == "vector")
    Out = Program::P_Vector;
  else if (S == "stringbuffer")
    Out = Program::P_StringBuffer;
  else if (S == "blinktree")
    Out = Program::P_BLinkTree;
  else if (S == "cache")
    Out = Program::P_Cache;
  else if (S == "scanfs")
    Out = Program::P_ScanFs;
  else if (S == "hashtable")
    Out = Program::P_Hashtable;
  else if (S == "queue")
    Out = Program::P_Queue;
  else
    return false;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Path, ProgName, Mode = "view";
  long MaxViolations = 16, Audit = 0, Context = 0;
  bool Quiescent = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--program" && I + 1 < Argc) {
      ProgName = Argv[++I];
    } else if (Arg == "--mode" && I + 1 < Argc) {
      Mode = Argv[++I];
    } else if (Arg == "--max-violations" && I + 1 < Argc) {
      MaxViolations = std::atol(Argv[++I]);
    } else if (Arg == "--audit" && I + 1 < Argc) {
      Audit = std::atol(Argv[++I]);
    } else if (Arg == "--context" && I + 1 < Argc) {
      Context = std::atol(Argv[++I]);
    } else if (Arg == "--quiescent") {
      Quiescent = true;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Path = Arg;
    }
  }
  Program Prog;
  if (Path.empty() || !parseProgram(ProgName, Prog) ||
      (Mode != "io" && Mode != "view"))
    return usage(Argv[0]);

  std::vector<Action> Log;
  if (!loadLogFile(Path, Log)) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n",
                 Path.c_str());
    return 2;
  }

  ScenarioOptions SO;
  SO.Prog = Prog;
  SO.Mode = Mode == "view" ? RunMode::RM_OfflineView
                           : RunMode::RM_OfflineIO;
  SO.AuditPeriod = static_cast<unsigned>(Audit);
  SO.QuiescentOnly = Quiescent;
  SO.ContextRecords = static_cast<unsigned>(Context);
  Scenario S = makeScenario(SO);
  // Note: the scenario's own construction may append a few setup records
  // (e.g. the B-link tree's initial root) before the replayed ones; the
  // replay is idempotent with respect to them.
  for (const Action &A : Log)
    S.L->append(A);
  VerifierReport R = S.Finish();
  if (MaxViolations >= 0 &&
      R.Violations.size() > static_cast<size_t>(MaxViolations))
    R.Violations.resize(static_cast<size_t>(MaxViolations));

  std::printf("%s", R.str().c_str());
  if (Context > 0)
    for (const Violation &V : R.Violations)
      if (!V.Context.empty())
        std::printf("\ncontext of #%llu:\n%s",
                    static_cast<unsigned long long>(V.Seq),
                    V.Context.c_str());
  return R.ok() ? 0 : 1;
}
