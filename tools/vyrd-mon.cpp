//===- vyrd-mon.cpp - Attach to a live verifier's monitor endpoint --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Client for the MonitorServer endpoint (docs/OBSERVABILITY.md, "Live
// monitoring"): connects to the unix-domain socket a running verifier
// exposes via VerifierConfig::Monitor.SocketPath, and either takes a
// one-shot reading or keeps a top-style periodic view attached.
//
//   vyrd-mon --socket PATH [command] [options]
//
//   commands (default: top)
//     top           full-screen periodic view, refreshed every --interval
//     watch [MS]    stream one stats JSON line per interval (server-paced)
//     list          one JSON line: registered objects + per-object counters
//     stats         one JSON line: full telemetry snapshot + health
//     violations    one JSON line: violations published so far
//     health        one JSON line: {"health":"ok|degraded|stalled|..."}
//
//   options
//     --mon NAME    registry mode (a vyrd-checkd control socket): attach
//                   to session NAME before running the command; without
//                   it, `list` on a registry socket names the sessions
//     --json        alias for `stats` (one-shot machine-readable dump)
//     --prom        Prometheus text exposition dump (for scrapers)
//     --interval MS top refresh / watch period (default 1000)
//     --count N     exit after N frames/lines (0 = run until killed);
//                   defaults to 1 for watch-style runs piped to scripts
//     --wait MS     retry the connect for up to MS (a monitor that is
//                   still starting up); default: fail immediately
//
// Detaching (exit, Ctrl-C, kill) costs the verifier nothing: the server
// reaps the connection on its next poll round. Exit status: 0 on success,
// 1 on connection/protocol failure, 2 on usage errors.
//
//===----------------------------------------------------------------------===//

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH "
               "[top|watch|list|stats|violations|health] [--mon NAME] "
               "[--json] [--prom] [--interval MS] [--count N] [--wait MS]\n",
               Argv0);
  return 2;
}

void sleepMs(uint64_t Ms) {
  timespec TS{static_cast<time_t>(Ms / 1000),
              static_cast<long>((Ms % 1000) * 1000000)};
  nanosleep(&TS, nullptr);
}

/// Connects to the unix socket, retrying for up to \p WaitMs.
int connectTo(const std::string &Path, uint64_t WaitMs) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "vyrd-mon: socket path too long: %s\n",
                 Path.c_str());
    return -1;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  for (uint64_t Waited = 0;; Waited += 50) {
    int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0)
      break;
    if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    close(Fd);
    if (Waited >= WaitMs)
      break;
    sleepMs(50);
  }
  std::fprintf(stderr, "vyrd-mon: cannot connect to %s: %s\n",
               Path.c_str(), std::strerror(errno));
  return -1;
}

/// Line-buffered reads from the socket. \returns false on EOF/error.
struct LineReader {
  int Fd;
  std::string Buf;

  bool next(std::string &Line) {
    for (;;) {
      size_t Pos = Buf.find('\n');
      if (Pos != std::string::npos) {
        Line = Buf.substr(0, Pos);
        Buf.erase(0, Pos + 1);
        return true;
      }
      char Chunk[4096];
      ssize_t N = read(Fd, Chunk, sizeof(Chunk));
      if (N <= 0)
        return false;
      Buf.append(Chunk, static_cast<size_t>(N));
    }
  }
};

bool sendLine(int Fd, const std::string &Cmd) {
  std::string Line = Cmd + "\n";
  return write(Fd, Line.data(), Line.size()) ==
         static_cast<ssize_t>(Line.size());
}

/// One-shot JSON command: send, print the single response line.
int oneJsonLine(int Fd, LineReader &R, const std::string &Cmd) {
  if (!sendLine(Fd, Cmd))
    return 1;
  std::string Line;
  if (!R.next(Line)) {
    std::fprintf(stderr, "vyrd-mon: server closed the connection\n");
    return 1;
  }
  std::printf("%s\n", Line.c_str());
  return 0;
}

/// Reads one `# EOF`-terminated block, printing its lines.
int printBlock(LineReader &R) {
  std::string Line;
  while (R.next(Line)) {
    if (Line == "# EOF")
      return 0;
    std::printf("%s\n", Line.c_str());
  }
  std::fprintf(stderr, "vyrd-mon: server closed the connection\n");
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string SocketPath;
  std::string MonName;
  std::string Cmd;
  uint64_t IntervalMs = 1000;
  uint64_t Count = 0;
  bool CountSet = false;
  uint64_t WaitMs = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--socket" && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (Arg == "--mon" && I + 1 < Argc) {
      MonName = Argv[++I];
    } else if (Arg == "--interval" && I + 1 < Argc) {
      IntervalMs = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--count" && I + 1 < Argc) {
      Count = std::strtoull(Argv[++I], nullptr, 10);
      CountSet = true;
    } else if (Arg == "--wait" && I + 1 < Argc) {
      WaitMs = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--json") {
      Cmd = "stats";
    } else if (Arg == "--prom") {
      Cmd = "prom";
    } else if (!Arg.empty() && Arg[0] != '-' && Cmd.empty()) {
      Cmd = Arg;
    } else {
      return usage(Argv[0]);
    }
  }
  if (SocketPath.empty())
    return usage(Argv[0]);
  if (Cmd.empty())
    Cmd = "top";
  if (Cmd != "top" && Cmd != "watch" && Cmd != "list" && Cmd != "stats" &&
      Cmd != "violations" && Cmd != "health" && Cmd != "prom")
    return usage(Argv[0]);

  int Fd = connectTo(SocketPath, WaitMs);
  if (Fd < 0)
    return 1;
  LineReader R{Fd, {}};
  int Ret = 0;

  if (!MonName.empty()) {
    // Registry socket (vyrd-checkd): bind this connection to a session.
    std::string Line;
    if (!sendLine(Fd, "mon " + MonName) || !R.next(Line)) {
      std::fprintf(stderr, "vyrd-mon: server closed the connection\n");
      close(Fd);
      return 1;
    }
    if (Line.find("\"error\"") != std::string::npos) {
      std::fprintf(stderr, "vyrd-mon: %s\n", Line.c_str());
      close(Fd);
      return 1;
    }
  }

  if (Cmd == "list" || Cmd == "stats" || Cmd == "violations" ||
      Cmd == "health") {
    Ret = oneJsonLine(Fd, R, Cmd);
  } else if (Cmd == "prom") {
    Ret = sendLine(Fd, "prom") ? printBlock(R) : 1;
  } else if (Cmd == "watch") {
    // Server-paced stream: one stats JSON line per interval. Scripts get
    // one line by default; --count 0 streams until killed.
    if (!CountSet)
      Count = 1;
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "watch %llu",
                  static_cast<unsigned long long>(IntervalMs));
    if (!sendLine(Fd, Buf)) {
      Ret = 1;
    } else {
      std::string Line;
      for (uint64_t N = 0; (!Count || N < Count) && Ret == 0; ++N) {
        if (!R.next(Line)) {
          Ret = N ? 0 : 1; // EOF mid-stream after output is fine
          break;
        }
        std::printf("%s\n", Line.c_str());
        std::fflush(stdout);
      }
    }
  } else { // top
    bool Tty = isatty(STDOUT_FILENO);
    for (uint64_t N = 0; !Count || N < Count; ++N) {
      if (N)
        sleepMs(IntervalMs);
      if (!sendLine(Fd, "top")) {
        Ret = 1;
        break;
      }
      if (Tty)
        std::printf("\x1b[H\x1b[2J"); // home + clear, like top(1)
      if ((Ret = printBlock(R)) != 0)
        break;
      std::fflush(stdout);
    }
  }
  sendLine(Fd, "detach");
  close(Fd);
  return Ret;
}
