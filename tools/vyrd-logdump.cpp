//===- vyrd-logdump.cpp - Inspect a recorded VYRD log ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dumps a binary log file produced by FileLog in human-readable form.
//
//   vyrd-logdump <log-file> [--limit N] [--tid T] [--obj O] [--kind K]
//                [--stats] [--json]
//
//   --limit N   print at most N records
//   --tid T     only records of thread T
//   --obj O     only records of verified object O (multi-object logs)
//   --kind K    only records of kind K (call, return, commit, write,
//               block-begin, block-end, replay-op)
//   --stats     print per-kind / per-method / per-thread / per-object
//               counts instead of records
//   --json      with --stats: emit the summary as one JSON object
//
// Reads both current (v2, "VYRD" header + per-record ObjectId) and legacy
// headerless v1 files; v1 records all belong to object 0.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

using namespace vyrd;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <log-file> [--limit N] [--tid T] [--obj O] "
               "[--kind K] [--stats] [--json]\n",
               Argv0);
  return 2;
}

/// Renders a string-keyed count map as a JSON object.
std::string countsJson(const std::map<std::string, uint64_t> &Counts) {
  std::string Out = "{";
  bool First = true;
  for (const auto &[K, N] : Counts) {
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + K + "\":" + std::to_string(N);
  }
  return Out + "}";
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path;
  long Limit = -1, Tid = -1, Obj = -1;
  std::string KindFilter;
  bool Stats = false;
  bool Json = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--limit" && I + 1 < Argc) {
      Limit = std::atol(Argv[++I]);
    } else if (Arg == "--tid" && I + 1 < Argc) {
      Tid = std::atol(Argv[++I]);
    } else if (Arg == "--obj" && I + 1 < Argc) {
      Obj = std::atol(Argv[++I]);
    } else if (Arg == "--kind" && I + 1 < Argc) {
      KindFilter = Argv[++I];
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Path = Arg;
    }
  }
  if (Path.empty())
    return usage(Argv[0]);

  std::vector<Action> Log;
  if (!loadLogFile(Path, Log)) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n",
                 Path.c_str());
    return 1;
  }

  if (Stats) {
    std::map<std::string, uint64_t> ByKind;
    std::map<std::string, uint64_t> ByMethod;
    std::map<uint64_t, uint64_t> ByThread;
    std::map<uint64_t, uint64_t> ByObject;
    uint64_t Threads = 0;
    uint64_t NumObjects = 0;
    for (const Action &A : Log) {
      ++ByKind[actionKindName(A.Kind)];
      if (A.Kind == ActionKind::AK_Call)
        ++ByMethod[std::string(A.Method.str())];
      ++ByThread[A.Tid];
      ++ByObject[A.Obj];
      if (A.Tid + 1 > Threads)
        Threads = A.Tid + 1;
      if (A.Obj + 1 > NumObjects)
        NumObjects = A.Obj + 1;
    }
    if (Json) {
      std::map<std::string, uint64_t> ByThreadStr;
      for (const auto &[T, N] : ByThread)
        ByThreadStr[std::to_string(T)] = N;
      std::map<std::string, uint64_t> ByObjectStr;
      for (const auto &[O, N] : ByObject)
        ByObjectStr[std::to_string(O)] = N;
      std::printf("{\"records\":%zu,\"threads\":%llu,\"objects\":%llu,"
                  "\"by_kind\":%s,\"method_calls\":%s,\"by_thread\":%s,"
                  "\"by_object\":%s}\n",
                  Log.size(), static_cast<unsigned long long>(Threads),
                  static_cast<unsigned long long>(NumObjects),
                  countsJson(ByKind).c_str(), countsJson(ByMethod).c_str(),
                  countsJson(ByThreadStr).c_str(),
                  countsJson(ByObjectStr).c_str());
      return 0;
    }
    std::printf("%zu records, %llu thread(s), %llu object(s)\n", Log.size(),
                static_cast<unsigned long long>(Threads),
                static_cast<unsigned long long>(NumObjects));
    std::printf("\nby kind:\n");
    for (const auto &[K, N] : ByKind)
      std::printf("  %-12s %10llu\n", K.c_str(),
                  static_cast<unsigned long long>(N));
    std::printf("\nmethod calls:\n");
    for (const auto &[M, N] : ByMethod)
      std::printf("  %-24s %10llu\n", M.c_str(),
                  static_cast<unsigned long long>(N));
    std::printf("\nby thread:\n");
    for (const auto &[T, N] : ByThread)
      std::printf("  t%-11llu %10llu\n",
                  static_cast<unsigned long long>(T),
                  static_cast<unsigned long long>(N));
    std::printf("\nby object:\n");
    for (const auto &[O, N] : ByObject)
      std::printf("  o%-11llu %10llu\n",
                  static_cast<unsigned long long>(O),
                  static_cast<unsigned long long>(N));
    return 0;
  }

  long Printed = 0;
  for (const Action &A : Log) {
    if (Tid >= 0 && A.Tid != static_cast<ThreadId>(Tid))
      continue;
    if (Obj >= 0 && A.Obj != static_cast<ObjectId>(Obj))
      continue;
    if (!KindFilter.empty() && KindFilter != actionKindName(A.Kind))
      continue;
    std::printf("%s\n", A.str().c_str());
    if (Limit >= 0 && ++Printed >= Limit)
      break;
  }
  return 0;
}
