//===- vyrd-logdump.cpp - Inspect a recorded VYRD log ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dumps a binary log file produced by FileLog in human-readable form.
//
//   vyrd-logdump <log-file> [--limit N] [--tid T] [--obj O] [--kind K]
//                [--stats] [--json] [--snapshots]
//
//   --limit N   print at most N records
//   --tid T     only records of thread T
//   --obj O     only records of verified object O (multi-object logs)
//   --kind K    only records of kind K (call, return, commit, write,
//               block-begin, block-end, replay-op)
//   --stats     print per-kind / per-method / per-thread / per-object
//               counts instead of records
//   --json      with --stats: emit the summary as one JSON object
//   --snapshots walk the segment chain and print each segment with its
//               snapshot sidecar (LOGFORMAT v5), if any, instead of
//               records
//
// Reads every log format version: current ("VYRD" header + per-record
// ObjectId, single value slot), v2 (two value slots), and legacy
// headerless v1 files; v1 records all belong to object 0. Rotated
// segment chains (v4, docs/LOGFORMAT.md "Segmented chains") are walked
// transparently: point the tool at the base path (or any segment file)
// and it reads through to the end of the chain.
//
// The whole tool is one streaming decode pass (LogFileReader): records are
// decoded into a reused buffer and counted or printed immediately, so
// multi-GB logs run in constant memory. --stats counts into dense arrays
// keyed by ActionKind / interned Name id / thread / object — the same
// interned-name table the checker uses — and materializes strings only
// when the summary is rendered, never per record.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Log.h"
#include "vyrd/Snapshot.h"
#include "vyrd/Value.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace vyrd;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <log-file> [--limit N] [--tid T] [--obj O] "
               "[--kind K] [--stats] [--json] [--snapshots]\n",
               Argv0);
  return 2;
}

/// Dense counter array indexed by a small id (thread, object, name id).
/// Grown on demand; ids are dense in every producer, so this stays small.
class DenseCounts {
public:
  void bump(size_t Id) {
    if (Id >= Counts.size())
      Counts.resize(Id + 1, 0);
    ++Counts[Id];
  }
  size_t size() const { return Counts.size(); }
  uint64_t operator[](size_t Id) const {
    return Id < Counts.size() ? Counts[Id] : 0;
  }

private:
  std::vector<uint64_t> Counts;
};

/// Streaming --stats accumulators: one O(1) bump per record, no strings.
struct LogStats {
  uint64_t Records = 0;
  uint64_t ByKind[7] = {};
  DenseCounts ByMethod; ///< indexed by interned Name id (AK_Call only)
  DenseCounts ByThread;
  DenseCounts ByObject;

  void add(const Action &A) {
    ++Records;
    ++ByKind[static_cast<size_t>(A.Kind)];
    if (A.Kind == ActionKind::AK_Call)
      ByMethod.bump(A.Method.id());
    ByThread.bump(A.Tid);
    ByObject.bump(A.Obj);
  }
};

/// Renders the non-zero entries of \p C as a JSON object, keys produced
/// by \p Key.
template <typename KeyFn>
std::string countsJson(const DenseCounts &C, KeyFn Key) {
  std::string Out = "{";
  bool First = true;
  for (size_t I = 0; I < C.size(); ++I) {
    if (!C[I])
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\"" + Key(I) + "\":" + std::to_string(C[I]);
  }
  return Out + "}";
}

/// Chain base of \p Path: a trailing `.NNNNNN` segment suffix is
/// stripped, so `base` and `base.000001` render identical inventories
/// (the CI round-trip diffs the two).
std::string chainBaseOf(const std::string &Path) {
  size_t Dot = Path.rfind('.');
  if (Dot == std::string::npos || Path.size() - Dot - 1 != 6)
    return Path;
  for (size_t I = Dot + 1; I < Path.size(); ++I)
    if (!std::isdigit(static_cast<unsigned char>(Path[I])))
      return Path;
  return Path.substr(0, Dot);
}

/// The --snapshots inventory as a JSON array: one entry per chain
/// segment with its sidecar summary. Empty for plain (unsegmented) logs.
std::string snapshotsJson(const std::string &Path) {
  std::vector<ChainSegment> Segs;
  // Normalize to the chain base first; fall back to the literal path
  // (a plain log, possibly with a numeric-suffix name).
  if (!enumerateChain(chainBaseOf(Path), Segs) || Segs.empty())
    if (!enumerateChain(Path, Segs))
      Segs.clear();
  std::string Out = "[";
  bool First = true;
  for (const ChainSegment &Seg : Segs) {
    if (Seg.Index == 0)
      continue; // plain log: no sidecars possible
    if (!First)
      Out += ",";
    First = false;
    Out += "{\"segment\":" + std::to_string(Seg.Index) + ",\"path\":\"" +
           jsonEscape(Seg.Path) +
           "\",\"first_seq\":" + std::to_string(Seg.FirstSeq) +
           ",\"sidecar\":" + (Seg.HasSnapshot ? "true" : "false");
    if (Seg.HasSnapshot) {
      Out += ",\"watermark\":" + std::to_string(Seg.Snap.Watermark) +
             ",\"objects\":[";
      for (size_t I = 0; I < Seg.Snap.Objects.size(); ++I) {
        const SnapshotObject &O = Seg.Snap.Objects[I];
        if (I)
          Out += ",";
        Out += "{\"id\":" + std::to_string(O.Id) + ",\"name\":\"" +
               jsonEscape(O.Name) +
               "\",\"blob_bytes\":" + std::to_string(O.Blob.size()) + "}";
      }
      Out += "]";
    }
    Out += "}";
  }
  return Out + "]";
}

int printStats(const LogStats &S, bool Json,
               const std::string &SnapshotsJson) {
  // Threads/objects are counted as "max id + 1" (ids are dense), matching
  // how the harness and the verifier number them.
  uint64_t Threads = S.ByThread.size();
  uint64_t NumObjects = S.ByObject.size();
  if (Json) {
    std::string ByKind = "{";
    bool First = true;
    for (size_t K = 0; K < 7; ++K) {
      if (!S.ByKind[K])
        continue;
      if (!First)
        ByKind += ",";
      First = false;
      ByKind += std::string("\"") +
                actionKindName(static_cast<ActionKind>(K)) +
                "\":" + std::to_string(S.ByKind[K]);
    }
    ByKind += "}";
    std::string ByMethod = countsJson(
        S.ByMethod, [](size_t I) {
          return std::string(Name(static_cast<uint32_t>(I)).str());
        });
    auto Numeric = [](size_t I) { return std::to_string(I); };
    // The snapshot-sidecar inventory (--snapshots data) rides along in
    // the same document, so one invocation answers both questions.
    std::printf("{\"records\":%llu,\"threads\":%llu,\"objects\":%llu,"
                "\"by_kind\":%s,\"method_calls\":%s,\"by_thread\":%s,"
                "\"by_object\":%s,\"snapshots\":%s}\n",
                static_cast<unsigned long long>(S.Records),
                static_cast<unsigned long long>(Threads),
                static_cast<unsigned long long>(NumObjects),
                ByKind.c_str(), ByMethod.c_str(),
                countsJson(S.ByThread, Numeric).c_str(),
                countsJson(S.ByObject, Numeric).c_str(),
                SnapshotsJson.c_str());
    return 0;
  }
  std::printf("%llu records, %llu thread(s), %llu object(s)\n",
              static_cast<unsigned long long>(S.Records),
              static_cast<unsigned long long>(Threads),
              static_cast<unsigned long long>(NumObjects));
  std::printf("\nby kind:\n");
  for (size_t K = 0; K < 7; ++K)
    if (S.ByKind[K])
      std::printf("  %-12s %10llu\n",
                  actionKindName(static_cast<ActionKind>(K)),
                  static_cast<unsigned long long>(S.ByKind[K]));
  std::printf("\nmethod calls:\n");
  for (size_t I = 0; I < S.ByMethod.size(); ++I)
    if (S.ByMethod[I])
      std::printf("  %-24s %10llu\n",
                  std::string(Name(static_cast<uint32_t>(I)).str()).c_str(),
                  static_cast<unsigned long long>(S.ByMethod[I]));
  std::printf("\nby thread:\n");
  for (size_t T = 0; T < S.ByThread.size(); ++T)
    if (S.ByThread[T])
      std::printf("  t%-11llu %10llu\n", static_cast<unsigned long long>(T),
                  static_cast<unsigned long long>(S.ByThread[T]));
  std::printf("\nby object:\n");
  for (size_t O = 0; O < S.ByObject.size(); ++O)
    if (S.ByObject[O])
      std::printf("  o%-11llu %10llu\n", static_cast<unsigned long long>(O),
                  static_cast<unsigned long long>(S.ByObject[O]));
  return 0;
}

/// --snapshots: renders the segment chain with its v5 sidecars.
int printSnapshots(const std::string &Path) {
  std::vector<ChainSegment> Segs;
  if (!enumerateChain(Path, Segs) || Segs.empty()) {
    std::fprintf(stderr, "error: no log file or segment chain at '%s'\n",
                 Path.c_str());
    return 1;
  }
  for (const ChainSegment &Seg : Segs) {
    if (Seg.Index == 0) {
      std::printf("%s: plain (unsegmented) log, no sidecars possible\n",
                  Seg.Path.c_str());
      continue;
    }
    std::printf("segment %06llu  %s  first_seq=%llu",
                static_cast<unsigned long long>(Seg.Index),
                Seg.Path.c_str(),
                static_cast<unsigned long long>(Seg.FirstSeq));
    if (!Seg.HasSnapshot) {
      std::printf("  (no sidecar)\n");
      continue;
    }
    std::printf("\n  sidecar: watermark=%llu, %zu object(s)\n",
                static_cast<unsigned long long>(Seg.Snap.Watermark),
                Seg.Snap.Objects.size());
    for (const SnapshotObject &O : Seg.Snap.Objects)
      std::printf("    o%u%s%s  %zu blob bytes\n", O.Id,
                  O.Name.empty() ? "" : " ", O.Name.c_str(),
                  O.Blob.size());
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Path;
  long Limit = -1, Tid = -1, Obj = -1;
  std::string KindFilter;
  bool Stats = false;
  bool Json = false;
  bool Snapshots = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--limit" && I + 1 < Argc) {
      Limit = std::atol(Argv[++I]);
    } else if (Arg == "--tid" && I + 1 < Argc) {
      Tid = std::atol(Argv[++I]);
    } else if (Arg == "--obj" && I + 1 < Argc) {
      Obj = std::atol(Argv[++I]);
    } else if (Arg == "--kind" && I + 1 < Argc) {
      KindFilter = Argv[++I];
    } else if (Arg == "--stats") {
      Stats = true;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--snapshots") {
      Snapshots = true;
    } else if (Arg[0] == '-') {
      return usage(Argv[0]);
    } else {
      Path = Arg;
    }
  }
  if (Path.empty())
    return usage(Argv[0]);
  if (Snapshots)
    return printSnapshots(Path);

  LogFileReader Reader(Path);
  if (!Reader.valid()) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n",
                 Path.c_str());
    return 1;
  }

  LogStats S;
  long Printed = 0;
  Action A;
  while (Reader.next(A)) {
    if (Stats) {
      S.add(A);
      continue;
    }
    if (Tid >= 0 && A.Tid != static_cast<ThreadId>(Tid))
      continue;
    if (Obj >= 0 && A.Obj != static_cast<ObjectId>(Obj))
      continue;
    if (!KindFilter.empty() && KindFilter != actionKindName(A.Kind))
      continue;
    std::printf("%s\n", A.str().c_str());
    if (Limit >= 0 && ++Printed >= Limit)
      break;
  }
  if (Reader.malformed()) {
    std::fprintf(stderr, "error: cannot read log file '%s'\n",
                 Path.c_str());
    return 1;
  }

  if (Stats)
    return printStats(S, Json, Json ? snapshotsJson(Path) : std::string());
  return 0;
}
