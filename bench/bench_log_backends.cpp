//===- bench_log_backends.cpp - Mutex log vs sharded buffered log ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The paper's Table 2 measures how much the log slows down the
// *instrumented program*: appends execute inside the application's
// methods, while draining, serialization and checking can run elsewhere.
// The seed backends pay a global mutex (MemoryLog) or a mutex plus
// inline encode+write (FileLog) on every append; BufferedLog pays a
// ticket fetch_add and one move into a private ring.
//
// This bench therefore reports two numbers per backend at 1/2/4/8
// producer threads:
//
//  * app-side append throughput: total records divided by the CPU time
//    the producer threads themselves consumed (CLOCK_THREAD_CPUTIME_ID
//    around the append loop). This is the cost instrumentation adds to
//    the program, independent of how many cores the host has.
//  * end-to-end throughput: total records over the wall time until the
//    log is closed and fully drained. On a single-core host this sums
//    every pipeline stage, so a backend that shifts work off the app
//    threads cannot win here; on a multi-core host the stages overlap.
//
// Memory variants drain concurrently in 256-record batches (the online
// verifier's consumption pattern); file variants write records to disk
// with no consumer (the Table 2 logging-overhead pattern, RetainTail /
// RetainRecords off). Records are an alloc-free call/write/commit/return
// mix so the allocator doesn't dilute the backend comparison. Results
// are recorded in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "vyrd/Auto.h"
#include "vyrd/BufferedLog.h"
#include "vyrd/Monitor.h"
#include "vyrd/Serialize.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Transport.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::bench;

namespace {

unsigned MethodsPerThread = 20000; // 4 records per method
unsigned Reps = 3;

/// CPU seconds consumed by the calling thread alone.
double threadCpuSeconds() {
  timespec TS;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &TS);
  return double(TS.tv_sec) + double(TS.tv_nsec) * 1e-9;
}

/// Appends one method's worth of records (call, write, commit, return)
/// through the thread's writer handle, the way Hooks does. No heap
/// allocations: the call carries no arguments and the values are scalars.
void appendMethod(LogWriter &W, Name M, Name Var, int64_t K) {
  W.append(Action::call(0, M, {}));
  W.append(Action::write(0, Var, Value(K)));
  W.append(Action::commit(0));
  W.append(Action::ret(0, M, Value(true)));
}

struct RunCost {
  double ProducerCpu; // summed over producer threads, append loop only
  double Wall;        // producers started -> log closed and drained
};

/// Runs \p Threads producers against \p L, optionally draining from a
/// consumer thread.
RunCost runProducers(Log &L, unsigned Threads, bool Drain) {
  Name M = internName("bench.op");
  Name Var = internName("bench.var");
  std::atomic<uint64_t> CpuNanos{0};
  double T0 = wallSeconds();
  std::thread Consumer;
  if (Drain)
    Consumer = std::thread([&L] {
      std::vector<Action> Batch;
      while (L.nextBatch(Batch, 256))
        ;
    });
  std::vector<std::thread> Producers;
  for (unsigned T = 0; T < Threads; ++T)
    Producers.emplace_back([&L, &CpuNanos, M, Var] {
      LogWriter &W = L.writer();
      double C0 = threadCpuSeconds();
      for (unsigned I = 0; I < MethodsPerThread; ++I)
        appendMethod(W, M, Var, static_cast<int64_t>(I));
      CpuNanos.fetch_add(
          static_cast<uint64_t>((threadCpuSeconds() - C0) * 1e9));
    });
  for (auto &P : Producers)
    P.join();
  L.close();
  if (Drain)
    Consumer.join();
  return {double(CpuNanos.load()) * 1e-9, wallSeconds() - T0};
}

struct Throughput {
  double App; // M records per producer-CPU-second (best of Reps)
  double E2E; // M records per wall second (best of Reps)
};

Throughput measure(const std::function<std::unique_ptr<Log>()> &Make,
                   unsigned Threads, bool Drain) {
  Throughput Best{0, 0};
  double Total = static_cast<double>(Threads) * MethodsPerThread * 4;
  for (unsigned R = 0; R < Reps; ++R) {
    auto L = Make();
    if (!L) {
      std::fprintf(stderr, "failed to open a log backend\n");
      std::exit(1);
    }
    RunCost C = runProducers(*L, Threads, Drain);
    Best.App = std::max(Best.App, Total / C.ProducerCpu / 1e6);
    Best.E2E = std::max(Best.E2E, Total / C.Wall / 1e6);
  }
  return Best;
}

std::string tmpFile(const char *Tag) {
  return "/tmp/vyrd-benchlog-" + std::string(Tag) + "-" +
         std::to_string(getpid()) + ".bin";
}

void printRow(unsigned Threads, Throughput Mutex, Throughput Buffered) {
  std::printf("%-8u %13.2f %13.2f %8.2fx %11.2f %11.2f\n", Threads,
              Mutex.App, Buffered.App, Buffered.App / Mutex.App, Mutex.E2E,
              Buffered.E2E);
}

void printHeader(const char *MutexName) {
  std::printf("%-8s %13s %13s %9s %11s %11s\n", "", "app M/s", "app M/s",
              "app", "e2e M/s", "e2e M/s");
  std::printf("%-8s %13s %13s %9s %11s %11s\n", "threads", MutexName,
              "BufferedLog", "speedup", MutexName, "BufferedLog");
  hr();
}

/// App-side nanoseconds per record from a throughput in M records/s.
double nsPerOp(Throughput T) { return T.App > 0 ? 1000.0 / T.App : 0; }

void jsonRow(BenchJson &BJ, const char *Config, unsigned Threads,
             Throughput T) {
  char Extra[64];
  std::snprintf(Extra, sizeof(Extra), "{\"e2e_per_s\":%.1f}", T.E2E * 1e6);
  BJ.row(Config, Threads, nsPerOp(T), T.App * 1e6, Extra);
}

//===----------------------------------------------------------------------===//
// Auto-instrumentation overhead: the same locked counter instrumented by
// hand (MethodScope / CommitBlock / explicit write) and through the auto
// layer (Instrumented<T> dispatch + Mutex shim + Tracked field). Both
// emit the identical six-record stream per method — call, blockBegin,
// write, commit, blockEnd, return — so the delta is pure dispatch and
// shim cost. Acceptance: auto within 15% of hand app-side (EXPERIMENTS.md).
//===----------------------------------------------------------------------===//

/// Hand twin: the pre-auto instrumentation style of the workloads.
class HandBenchCounter {
public:
  explicit HandBenchCounter(Hooks H)
      : H(H), Method(internName("bench.add")), Var(internName("bench.ctr")) {}

  void add(int64_t D) {
    MethodScope Scope(H, Method, {Value(D)});
    std::lock_guard Lock(M);
    CommitBlock Block(H);
    V += D;
    H.write(Var, Value(V));
    H.commit();
  }

private:
  Hooks H;
  Name Method, Var;
  std::mutex M;
  int64_t V = 0;
};

/// Auto twin: no hook call in the body beyond the commit annotation.
class AutoBenchCounterImpl {
public:
  explicit AutoBenchCounterImpl(AutoContext &C)
      : Ctx(C), M(C), V(C, internName("bench.ctr"), 0) {}

  void add(int64_t D) {
    LockGuard Lock(M);
    V = V.get() + D;
    Ctx.commit();
  }

private:
  AutoContext &Ctx;
  Mutex M;
  Tracked<int64_t> V;
};

//===----------------------------------------------------------------------===//
// Segment-shipping overhead: the same file-backed BufferedLog with 256 KiB
// segment rotation, plus a shipper thread streaming every closed segment
// over a unix socket (the SocketTransport wire protocol) to a
// discard-and-ack receiver. Shipping reads *closed* files off the hot
// path, so the app-side append cost must stay within noise of
// buffered-file-nodrain (docs/SHIPPING.md; gated in bench/baseline.json).
//===----------------------------------------------------------------------===//

/// Minimal fleet stand-in: accepts one producer at a time, parses frames,
/// discards segment bytes and acks the Close watermark (segment acks are
/// irrelevant here — the bench never reclaims). Checking cost belongs to
/// the remote fleet's CPU budget, not to this producer-side bench.
class DiscardAckServer {
public:
  explicit DiscardAckServer(const std::string &Path) : Path(Path) {
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    if (Path.size() >= sizeof(Addr.sun_path))
      return;
    std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
    std::remove(Path.c_str());
    ListenFd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (ListenFd < 0)
      return;
    if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
            0 ||
        listen(ListenFd, 4) != 0) {
      close(ListenFd);
      ListenFd = -1;
      return;
    }
    Srv = std::thread([this] { serve(); });
  }

  ~DiscardAckServer() {
    Stop.store(true, std::memory_order_release);
    if (ListenFd >= 0)
      shutdown(ListenFd, SHUT_RDWR);
    if (Srv.joinable())
      Srv.join();
    if (ListenFd >= 0)
      close(ListenFd);
    std::remove(Path.c_str());
  }

  bool valid() const { return ListenFd >= 0; }

private:
  void serve() {
    while (!Stop.load(std::memory_order_acquire)) {
      int Fd = accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        return;
      wire::FrameParser Parser;
      char Buf[65536];
      ssize_t N;
      while ((N = read(Fd, Buf, sizeof(Buf))) > 0) {
        Parser.feed(Buf, static_cast<size_t>(N));
        wire::Frame F;
        while (Parser.next(F)) {
          if (F.Type != wire::FT_Close)
            continue;
          ByteReader R(F.Payload.data(), F.Payload.size());
          uint64_t Final = R.varint();
          ByteWriter W;
          W.varint(Final);
          std::string Ack;
          wire::appendFrame(Ack, wire::FT_WatermarkAck, W.buffer().data(),
                            W.size());
          (void)!write(Fd, Ack.data(), Ack.size());
        }
      }
      close(Fd);
    }
  }

  std::string Path;
  int ListenFd = -1;
  std::atomic<bool> Stop{false};
  std::thread Srv;
};

/// Like measure(), but with a shipper thread translating segment cuts
/// into wire transfers while the producers run (the Verifier's shipPump
/// pattern). Wall time includes the final segment's transfer and the
/// Close ack.
Throughput measureShipped(const std::string &Base, const std::string &Sock,
                          unsigned Threads) {
  Throughput Best{0, 0};
  double Total = static_cast<double>(Threads) * MethodsPerThread * 4;
  for (unsigned R = 0; R < Reps; ++R) {
    std::remove(Base.c_str());
    for (uint64_t I = 1; I <= 512; ++I)
      std::remove(logSegmentPath(Base, I).c_str());
    BufferedLog::Options O;
    O.ShardCapacity = 4096;
    O.FilePath = Base;
    O.RetainRecords = false;
    O.Backpressure.SegmentBytes = 256 * 1024;
    O.Backpressure.ReclaimSegments = false;
    BufferedLog L(std::move(O));
    ShipperOptions SO;
    SO.Endpoint = "unix:" + Sock;
    SO.Program = "bench";
    SocketTransport T(SO, nullptr);
    SegmentShipper Shipper(T, Base, nullptr);
    std::atomic<bool> StopShip{false};
    std::thread Ship([&L, &Shipper, &StopShip] {
      std::vector<SegmentCut> Cuts;
      while (!StopShip.load(std::memory_order_acquire)) {
        L.takeSegmentCuts(Cuts);
        for (const SegmentCut &C : Cuts)
          Shipper.noteCut(C.Index);
        usleep(2000);
      }
    });
    RunCost C = runProducers(L, Threads, /*Drain=*/false);
    double T1 = wallSeconds();
    StopShip.store(true, std::memory_order_release);
    Ship.join();
    std::vector<SegmentCut> Cuts;
    L.takeSegmentCuts(Cuts);
    for (const SegmentCut &Cut : Cuts)
      Shipper.noteCut(Cut.Index);
    if (!Shipper.finish(L.appendCount(), /*TimeoutMs=*/10000))
      std::fprintf(stderr, "shipped bench: final ack missing\n");
    C.Wall += wallSeconds() - T1;
    Best.App = std::max(Best.App, Total / C.ProducerCpu / 1e6);
    Best.E2E = std::max(Best.E2E, Total / C.Wall / 1e6);
    std::remove(Base.c_str());
    for (uint64_t I = 1; I <= 512; ++I)
      std::remove(logSegmentPath(Base, I).c_str());
  }
  return Best;
}

} // namespace

namespace vyrd {
template <> struct AutoMethods<AutoBenchCounterImpl> {
  static constexpr auto desc(MethodTag<&AutoBenchCounterImpl::add>) {
    return method("bench.add");
  }
};
} // namespace vyrd

namespace {

class AutoBenchCounter : public Instrumented<AutoBenchCounterImpl> {
public:
  explicit AutoBenchCounter(Hooks H) : Instrumented(H) {}
  void add(int64_t D) { invoke<&AutoBenchCounterImpl::add>(D); }
};

/// Measures app-side/e2e throughput of \p CounterT into a drained
/// BufferedLog; six records per method at view level.
template <typename CounterT> Throughput measureCounter(unsigned Threads) {
  Throughput Best{0, 0};
  double Total = static_cast<double>(Threads) * MethodsPerThread * 6;
  for (unsigned R = 0; R < Reps; ++R) {
    BufferedLog::Options O;
    O.ShardCapacity = 4096;
    BufferedLog L(std::move(O));
    CounterT C(Hooks(&L, LogLevel::LL_View));
    std::atomic<uint64_t> CpuNanos{0};
    double T0 = wallSeconds();
    std::thread Consumer([&L] {
      std::vector<Action> Batch;
      while (L.nextBatch(Batch, 256))
        ;
    });
    std::vector<std::thread> Producers;
    for (unsigned T = 0; T < Threads; ++T)
      Producers.emplace_back([&C, &CpuNanos] {
        double C0 = threadCpuSeconds();
        for (unsigned I = 0; I < MethodsPerThread; ++I)
          C.add(static_cast<int64_t>(I & 7));
        CpuNanos.fetch_add(
            static_cast<uint64_t>((threadCpuSeconds() - C0) * 1e9));
      });
    for (auto &P : Producers)
      P.join();
    L.close();
    Consumer.join();
    Best.App = std::max(Best.App, Total / (double(CpuNanos.load()) * 1e-9) / 1e6);
    Best.E2E = std::max(Best.E2E, Total / (wallSeconds() - T0) / 1e6);
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  if (Args.Quick) {
    MethodsPerThread = 4000;
    Reps = 1;
  }
  std::vector<unsigned> ThreadCounts =
      Args.Quick ? std::vector<unsigned>{1, 4}
                 : std::vector<unsigned>{1, 2, 4, 8};
  BenchJson BJ("log_backends", Args.JsonPath);

  std::printf("Log backend append throughput (%u methods x 4 records per "
              "producer, best of %u)\n"
              "app = records per CPU-second spent in the producer threads "
              "(instrumentation cost)\ne2e = records per wall second until "
              "the log is closed and drained\n\n",
              MethodsPerThread, Reps);

  std::printf("In-memory, concurrent consumer draining 256-record "
              "batches:\n\n");
  printHeader("MemoryLog");
  for (unsigned Threads : ThreadCounts) {
    Throughput Mem = measure([] { return std::make_unique<MemoryLog>(); },
                             Threads, /*Drain=*/true);
    Throughput Buf = measure(
        [] {
          BufferedLog::Options O;
          O.ShardCapacity = 4096;
          return std::make_unique<BufferedLog>(std::move(O));
        },
        Threads, /*Drain=*/true);
    printRow(Threads, Mem, Buf);
    jsonRow(BJ, "memory-drain", Threads, Mem);
    jsonRow(BJ, "buffered-drain", Threads, Buf);
  }
  hr();

  std::printf("\nFile-backed, no consumer (logging-overhead pattern):\n\n");
  printHeader("FileLog");
  for (unsigned Threads : ThreadCounts) {
    std::string FilePath = tmpFile("file");
    Throughput File = measure(
        [&FilePath] {
          bool Valid = false;
          auto L = std::make_unique<FileLog>(FilePath, Valid,
                                             /*RetainTail=*/false);
          return Valid ? std::move(L) : nullptr;
        },
        Threads, /*Drain=*/false);
    std::string BufPath = tmpFile("buffered");
    Throughput Buf = measure(
        [&BufPath] {
          BufferedLog::Options O;
          O.ShardCapacity = 4096;
          O.FilePath = BufPath;
          O.RetainRecords = false;
          return std::make_unique<BufferedLog>(std::move(O));
        },
        Threads, /*Drain=*/false);
    std::remove(FilePath.c_str());
    std::remove(BufPath.c_str());
    printRow(Threads, File, Buf);
    jsonRow(BJ, "file-nodrain", Threads, File);
    jsonRow(BJ, "buffered-file-nodrain", Threads, Buf);
  }
  hr();

  // Shipping overhead: the buffered-file-nodrain configuration plus
  // 256 KiB segment rotation and a shipper streaming closed segments to
  // a local discard-and-ack service. The transfer reads closed files, so
  // the app column must stay within noise of buffered-file-nodrain; the
  // e2e column absorbs the final segment's transfer and Close ack.
  std::printf("\nSegment shipping overhead (buffered file log, 256 KiB "
              "segments, unix-socket fleet stand-in):\n\n");
  std::printf("%-8s %13s %11s\n", "threads", "app M/s", "e2e M/s");
  hr();
  {
    std::string Sock =
        "/tmp/vyrd-benchship-" + std::to_string(getpid()) + ".sock";
    DiscardAckServer Server(Sock);
    if (!Server.valid()) {
      std::fprintf(stderr, "shipped bench: bind failed, skipping\n");
    } else {
      for (unsigned Threads : ThreadCounts) {
        std::string Base = tmpFile("shipped");
        Throughput T = measureShipped(Base, Sock, Threads);
        std::printf("%-8u %13.2f %11.2f\n", Threads, T.App, T.E2E);
        jsonRow(BJ, "buffered-shipped", Threads, T);
      }
    }
  }
  hr();

  // The acceptance gate for the telemetry layer itself: attaching a hub
  // (per-record counter update + sampled latency clock reads) must cost
  // <= 10% app-side at 4 producer threads; the detached path must stay
  // within noise of a telemetry-free build (EXPERIMENTS.md).
  std::printf("\nTelemetry overhead (BufferedLog, concurrent consumer"
              "%s):\n\n",
              telemetryCompiledIn() ? "" : "; COMPILED OUT");
  std::printf("%-8s %13s %13s %10s\n", "threads", "off app M/s",
              "on app M/s", "overhead");
  hr();
  Telemetry Telem; // no sampler: measures the pure metric-update cost
  for (unsigned Threads : ThreadCounts) {
    Throughput Off = measure(
        [] {
          BufferedLog::Options O;
          O.ShardCapacity = 4096;
          return std::make_unique<BufferedLog>(std::move(O));
        },
        Threads, /*Drain=*/true);
    Throughput On = measure(
        [&Telem] {
          BufferedLog::Options O;
          O.ShardCapacity = 4096;
          auto L = std::make_unique<BufferedLog>(std::move(O));
          L->setTelemetry(&Telem);
          return L;
        },
        Threads, /*Drain=*/true);
    double OverheadPct = (Off.App / On.App - 1.0) * 100.0;
    std::printf("%-8u %13.2f %13.2f %9.1f%%\n", Threads, Off.App, On.App,
                OverheadPct);
    jsonRow(BJ, "buffered-telemetry-off", Threads, Off);
    jsonRow(BJ, "buffered-telemetry-on", Threads, On);
  }
  hr();

  // Monitor-attached overhead: same telemetry-on configuration, but with
  // a live MonitorServer and one `watch 100` client streaming stats
  // every 100 ms while the producers run. The server thread only reads
  // Telemetry::snapshot(), so the append path must not notice the
  // difference (acceptance: within noise of buffered-telemetry-on).
  std::printf("\nMonitor-attached overhead (telemetry on, one watch-100ms "
              "client):\n\n");
  std::printf("%-8s %13s\n", "threads", "app M/s");
  hr();
  {
    Telemetry MonTelem;
    TelemetryMonitorSource Src(MonTelem);
    MonitorOptions MO;
    MO.SocketPath =
        "/tmp/vyrd-benchmon-" + std::to_string(getpid()) + ".sock";
    MonitorServer Server(MO, Src);
    std::atomic<bool> ClientStop{false};
    std::thread Client;
    if (Server.valid()) {
      Client = std::thread([&MO, &ClientStop] {
        sockaddr_un Addr;
        std::memset(&Addr, 0, sizeof(Addr));
        Addr.sun_family = AF_UNIX;
        std::memcpy(Addr.sun_path, MO.SocketPath.c_str(),
                    MO.SocketPath.size() + 1);
        int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
        if (Fd < 0 || connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                              sizeof(Addr)) != 0) {
          if (Fd >= 0)
            close(Fd);
          return;
        }
        const char Watch[] = "watch 100\n";
        (void)!write(Fd, Watch, sizeof(Watch) - 1);
        char Buf[4096];
        while (!ClientStop.load(std::memory_order_relaxed))
          if (read(Fd, Buf, sizeof(Buf)) <= 0)
            break;
        close(Fd);
      });
    } else {
      std::fprintf(stderr, "monitor bench: bind failed (%s), measuring "
                           "without a client\n",
                   Server.error().c_str());
    }
    for (unsigned Threads : ThreadCounts) {
      Throughput Mon = measure(
          [&MonTelem] {
            BufferedLog::Options O;
            O.ShardCapacity = 4096;
            auto L = std::make_unique<BufferedLog>(std::move(O));
            L->setTelemetry(&MonTelem);
            return L;
          },
          Threads, /*Drain=*/true);
      std::printf("%-8u %13.2f\n", Threads, Mon.App);
      jsonRow(BJ, "buffered-monitor-on", Threads, Mon);
    }
    ClientStop.store(true);
    Server.stop(); // closes the client's fd, unblocking its read
    if (Client.joinable())
      Client.join();
  }
  hr();

  // Hand-written hooks vs the auto layer, identical record streams
  // (acceptance: auto app-side within 15% of hand, EXPERIMENTS.md).
  std::printf("\nAuto-instrumentation overhead (locked counter, BufferedLog, "
              "concurrent consumer):\n\n");
  std::printf("%-8s %13s %13s %10s\n", "threads", "hand app M/s",
              "auto app M/s", "overhead");
  hr();
  for (unsigned Threads : ThreadCounts) {
    Throughput Hand = measureCounter<HandBenchCounter>(Threads);
    Throughput Auto = measureCounter<AutoBenchCounter>(Threads);
    double OverheadPct = (Hand.App / Auto.App - 1.0) * 100.0;
    std::printf("%-8u %13.2f %13.2f %9.1f%%\n", Threads, Hand.App, Auto.App,
                OverheadPct);
    jsonRow(BJ, "buffered-hand", Threads, Hand);
    jsonRow(BJ, "buffered-auto", Threads, Auto);
  }
  hr();
  return BJ.write() ? 0 : 1;
}
