//===- table3_breakdown.cpp - Reproduces Table 3 ---------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 3, "Running time breakdown": for the four programs the paper
// reports (Vector 20/200, StringBuffer 10/30, BLinkTree 10/600, Cache
// 10/500 — threads / methods per thread, scaled up here so the bare runs
// are measurable), the CPU time of:
//   1. the program alone,
//   2. the program + logging (no checking),
//   3. the program + logging + online VYRD (view refinement), and
//   4. VYRD alone, checking the pre-recorded log offline.
//
// The offline run also collects the checker-internal split the paper
// discusses alongside Table 3: how much of the checking time goes to
// replaying writes into viewI, driving the specification, and comparing
// the two views (CheckerStats::{Replay,Spec,ViewCompare}Nanos, gated by
// CheckerConfig::CollectTimings).
//
// Expected shape (paper): logging adds a modest overhead; online checking
// costs a few times the bare program; offline checking alone is in the
// same ballpark as (3) minus the program.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

struct Row {
  Program Prog;
  unsigned Threads;
  unsigned Ops; // per thread (scaled from the paper's counts)
};

double cpuOf(const std::function<void()> &Fn) {
  Timed T = timed(Fn);
  return T.Cpu > 0 ? T.Cpu : T.Wall;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("table3_breakdown", Args.JsonPath);
  std::printf("Table 3: running time breakdown (CPU seconds)\n\n");
  std::printf("%-22s %12s %8s %14s %18s %16s\n", "Program", "#Thrd/#Mthd",
              "alone", "prog+logging", "prog+log+VYRD", "VYRD (offline)");
  hr();

  // The paper's thread/method shapes, methods-per-thread scaled x20 so
  // the bare runs take a measurable fraction of a second.
  std::vector<Row> Rows = {
      {Program::P_Vector, 20, 200 * 40},
      {Program::P_StringBuffer, 10, 30 * 100},
      {Program::P_BLinkTree, 10, 600 * 10},
      {Program::P_Cache, 10, 500 * 20},
  };
  if (Args.Quick)
    Rows = {{Program::P_Vector, 4, 400}};

  struct Breakdown {
    const char *Prog;
    CheckerStats Stats;
  };
  std::vector<Breakdown> Breakdowns;

  for (const Row &R : Rows) {
    WorkloadOptions WO;
    WO.Threads = R.Threads;
    WO.OpsPerThread = R.Ops;
    WO.KeyPoolSize = 24;
    WO.Seed = 5;

    // 1. Program alone.
    double Alone = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_Bare;
      runScenario(SO, WO, false);
    });

    // 2. Program + logging (view granularity, to a file).
    std::string Path = "/tmp/vyrd-t3-" + std::to_string(getpid()) + ".bin";
    double Logging = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_LogOnlyView;
      SO.LogPath = Path;
      runScenario(SO, WO, false);
    });
    std::vector<Action> Trace;
    loadLogFile(Path, Trace);
    std::remove(Path.c_str());

    // 3. Program + logging + online VYRD.
    double Online = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_OnlineView;
      runScenario(SO, WO, false);
    });

    // 4. VYRD alone: offline check of the recorded trace, with the
    // checker-internal timing split enabled.
    VerifierReport OffRep;
    double Offline = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_OfflineView;
      SO.CollectTimings = true;
      Scenario S = makeScenario(SO);
      for (const Action &A : Trace)
        S.L->append(A);
      OffRep = S.Finish();
    });
    Breakdowns.push_back({programName(R.Prog), OffRep.Stats});

    char Shape[32];
    std::snprintf(Shape, sizeof(Shape), "%u/%u", R.Threads, R.Ops);
    std::printf("%-22s %12s %8.3f %14.3f %18.3f %16.3f\n",
                programName(R.Prog), Shape, Alone, Logging, Online,
                Offline);

    const std::pair<const char *, double> Cfgs[] = {
        {"alone", Alone},
        {"logging", Logging},
        {"online", Online},
        {"offline", Offline},
    };
    double TotalOps = double(R.Threads) * R.Ops;
    for (auto [Cfg, Secs] : Cfgs) {
      char Extra[192];
      if (std::string(Cfg) == "offline")
        std::snprintf(Extra, sizeof(Extra),
                      "{\"cpu_s\":%.4f,\"replay_ns\":%llu,\"spec_ns\":%llu,"
                      "\"view_compare_ns\":%llu}",
                      Secs,
                      static_cast<unsigned long long>(OffRep.Stats.ReplayNanos),
                      static_cast<unsigned long long>(OffRep.Stats.SpecNanos),
                      static_cast<unsigned long long>(
                          OffRep.Stats.ViewCompareNanos));
      else
        std::snprintf(Extra, sizeof(Extra), "{\"cpu_s\":%.4f}", Secs);
      BJ.row(std::string(programName(R.Prog)) + "-" + Cfg, R.Threads,
             TotalOps > 0 ? Secs * 1e9 / TotalOps : 0,
             Secs > 0 ? TotalOps / Secs : 0, Extra);
    }
  }
  hr();

  std::printf("\nChecker-internal split of the offline run (seconds; "
              "CheckerStats timing fields):\n\n");
  std::printf("%-22s %10s %12s %14s\n", "Program", "replay",
              "drive spec", "view compare");
  hr();
  for (const auto &B : Breakdowns) {
    double Replay = double(B.Stats.ReplayNanos) * 1e-9;
    double Spec = double(B.Stats.SpecNanos) * 1e-9;
    double Compare = double(B.Stats.ViewCompareNanos) * 1e-9;
    std::printf("%-22s %10.3f %12.3f %14.3f\n", B.Prog, Replay, Spec,
                Compare);
  }
  hr();
  std::printf("\nExpected shape (paper Table 3): logging is a modest "
              "addition over the bare run;\nprogram+logging+VYRD is a "
              "small multiple of the bare program; offline checking\n"
              "alone is comparable to the online checking cost. Within "
              "the checker, replay\nand spec-driving dominate while the "
              "incremental hash comparison stays cheap\n(Sec. 6.4).\n");
  return BJ.write() ? 0 : 1;
}
