//===- table3_breakdown.cpp - Reproduces Table 3 ---------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 3, "Running time breakdown": for the four programs the paper
// reports (Vector 20/200, StringBuffer 10/30, BLinkTree 10/600, Cache
// 10/500 — threads / methods per thread, scaled up here so the bare runs
// are measurable), the CPU time of:
//   1. the program alone,
//   2. the program + logging (no checking),
//   3. the program + logging + online VYRD (view refinement), and
//   4. VYRD alone, checking the pre-recorded log offline.
//
// Expected shape (paper): logging adds a modest overhead; online checking
// costs a few times the bare program; offline checking alone is in the
// same ballpark as (3) minus the program.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

struct Row {
  Program Prog;
  unsigned Threads;
  unsigned Ops; // per thread (scaled from the paper's counts)
};

double cpuOf(const std::function<void()> &Fn) {
  Timed T = timed(Fn);
  return T.Cpu > 0 ? T.Cpu : T.Wall;
}

} // namespace

int main() {
  std::printf("Table 3: running time breakdown (CPU seconds)\n\n");
  std::printf("%-22s %12s %8s %14s %18s %16s\n", "Program", "#Thrd/#Mthd",
              "alone", "prog+logging", "prog+log+VYRD", "VYRD (offline)");
  hr();

  // The paper's thread/method shapes, methods-per-thread scaled x20 so
  // the bare runs take a measurable fraction of a second.
  const Row Rows[] = {
      {Program::P_Vector, 20, 200 * 40},
      {Program::P_StringBuffer, 10, 30 * 100},
      {Program::P_BLinkTree, 10, 600 * 10},
      {Program::P_Cache, 10, 500 * 20},
  };

  for (const Row &R : Rows) {
    WorkloadOptions WO;
    WO.Threads = R.Threads;
    WO.OpsPerThread = R.Ops;
    WO.KeyPoolSize = 24;
    WO.Seed = 5;

    // 1. Program alone.
    double Alone = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_Bare;
      runScenario(SO, WO, false);
    });

    // 2. Program + logging (view granularity, to a file).
    std::string Path = "/tmp/vyrd-t3-" + std::to_string(getpid()) + ".bin";
    double Logging = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_LogOnlyView;
      SO.LogPath = Path;
      runScenario(SO, WO, false);
    });
    std::vector<Action> Trace;
    loadLogFile(Path, Trace);
    std::remove(Path.c_str());

    // 3. Program + logging + online VYRD.
    double Online = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_OnlineView;
      runScenario(SO, WO, false);
    });

    // 4. VYRD alone: offline check of the recorded trace.
    double Offline = cpuOf([&] {
      ScenarioOptions SO;
      SO.Prog = R.Prog;
      SO.Mode = RunMode::RM_OfflineView;
      Scenario S = makeScenario(SO);
      for (const Action &A : Trace)
        S.L->append(A);
      (void)S.Finish();
    });

    char Shape[32];
    std::snprintf(Shape, sizeof(Shape), "%u/%u", R.Threads, R.Ops);
    std::printf("%-22s %12s %8.3f %14.3f %18.3f %16.3f\n",
                programName(R.Prog), Shape, Alone, Logging, Online,
                Offline);
  }
  hr();
  std::printf("\nExpected shape (paper Table 3): logging is a modest "
              "addition over the bare run;\nprogram+logging+VYRD is a "
              "small multiple of the bare program; offline checking\n"
              "alone is comparable to the online checking cost.\n");
  return 0;
}
