//===- bench_multiobject.cpp - Checker-pool throughput vs pool size --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the multi-object verification engine: one shared log carrying
// four interleaved objects (array multiset, Boxwood cache, B-link tree,
// bounded queue — the composite scenario), demultiplexed and checked by a
// pool of CheckerThreads workers with per-object affinity.
//
// Methodology: a composite log-only run records a fixed workload to a
// temporary file once. The bench then replays those exact records into a
// fresh online composite Verifier per configuration, so every pool size
// checks the same interleaving and the replay thread plays the role of
// the instrumented program. Reported throughput is log records fully
// checked per wall second (append of the first record to finish() of the
// last object), best of Reps.
//
// CheckerThreads = 1 feeds checkers inline on the consumption thread —
// the engine's historical single-threaded behavior and the scaling
// baseline. Results are recorded in EXPERIMENTS.md.
//
// --epochs switches to the epoch-parallel mode: the composite workload is
// recorded once as a segmented chain with snapshot sidecars
// (VerifierConfig::Snapshots, reclamation off), then epochCheck() replays
// it with the (object, epoch) task matrix on 1/2/4 threads against the
// serial from-zero baseline. This measures the within-object speedup the
// object-affine pool cannot provide (docs/SNAPSHOTS.md).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "vyrd/Epoch.h"
#include "vyrd/Snapshot.h"

#include <cstdio>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::bench;
using namespace vyrd::harness;

namespace {

unsigned OpsPerThread = 4000;
unsigned RecordThreads = 4;
unsigned Reps = 3;

/// Records the composite workload once and loads the resulting records.
std::vector<Action> recordCompositeLog(const std::string &Path) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.LogPath = Path;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = RecordThreads;
  WO.OpsPerThread = OpsPerThread;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  S.Finish();
  std::vector<Action> Records;
  if (!loadLogFile(Path, Records)) {
    std::fprintf(stderr, "error: cannot reload recorded log %s\n",
                 Path.c_str());
    std::exit(1);
  }
  return Records;
}

struct RunResult {
  double Wall = 0;             // replay start -> report, best rep
  VerifierReport Report;       // of the best rep
};

/// Replays \p Records into a fresh online composite verifier with
/// \p CheckerThreads pool workers and waits for checking to complete.
RunResult runOnce(const std::vector<Action> &Records,
                  unsigned CheckerThreads) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.CheckerThreads = CheckerThreads;
  Scenario S = makeCompositeScenario(SO);
  RunResult R;
  double T0 = wallSeconds();
  // MemoryLog reassigns Seq in append order, so the replayed stream is
  // exactly as well-formed as the recorded one.
  for (const Action &A : Records)
    S.L->append(A);
  R.Report = S.Finish();
  R.Wall = wallSeconds() - T0;
  if (!R.Report.ok()) {
    std::fprintf(stderr, "error: clean composite replay found %zu "
                         "violations\n",
                 R.Report.Violations.size());
    std::fprintf(stderr, "%s\n", R.Report.str().c_str());
    std::exit(1);
  }
  return R;
}

RunResult best(const std::vector<Action> &Records, unsigned CheckerThreads) {
  RunResult Best;
  for (unsigned I = 0; I < Reps; ++I) {
    RunResult R = runOnce(Records, CheckerThreads);
    if (Best.Wall == 0 || R.Wall < Best.Wall)
      Best = std::move(R);
  }
  return Best;
}

/// Per-object record counts as a JSON object for the row's "extra".
std::string objectsExtra(const VerifierReport &Rep, double Speedup) {
  std::string Out = "{\"speedup\":" + std::to_string(Speedup) +
                    ",\"objects\":{";
  for (size_t I = 0; I < Rep.Objects.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + Rep.Objects[I].Name +
           "\":" + std::to_string(Rep.Objects[I].Records);
  }
  return Out + "}}";
}

//===----------------------------------------------------------------------===//
// --epochs mode
//===----------------------------------------------------------------------===//

/// Records the composite workload as a segmented chain with snapshot
/// sidecars and reclamation off, so the whole chain stays on disk as the
/// epoch bench's input. \returns the recording run's report.
VerifierReport recordSnapshotChain(const std::string &Base, bool Quick) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.LogPath = Base;
  // Small segments give the quick run several epochs; the full run uses
  // larger ones so the sidecar overhead stays realistic.
  SO.Backpressure.SegmentBytes = Quick ? 48 * 1024 : 192 * 1024;
  SO.Backpressure.ReclaimSegments = false;
  SO.Snapshots = true;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = RecordThreads;
  WO.OpsPerThread = OpsPerThread;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  VerifierReport R = S.Finish();
  if (!R.ok()) {
    std::fprintf(stderr, "error: clean composite recording found %zu "
                         "violations\n",
                 R.Violations.size());
    std::exit(1);
  }
  return R;
}

/// Deletes every segment and sidecar of the chain at \p Base.
void removeChain(const std::string &Base) {
  std::vector<ChainSegment> Segs;
  if (!enumerateChain(Base, Segs))
    return;
  for (const ChainSegment &Seg : Segs) {
    std::remove(Seg.Path.c_str());
    if (Seg.Index)
      std::remove(snapshotSidecarPath(Base, Seg.Index).c_str());
  }
}

int runEpochBench(const BenchArgs &Args) {
  BenchJson BJ("multiobject-epochs", Args.JsonPath);
  std::string Base = "/tmp/vyrd-benchepoch-" + std::to_string(getpid()) +
                     ".bin";
  recordSnapshotChain(Base, Args.Quick);

  std::vector<ChainSegment> Segs;
  enumerateChain(Base, Segs);
  size_t Sidecars = 0;
  for (const ChainSegment &Seg : Segs)
    Sidecars += Seg.HasSnapshot ? 1 : 0;
  std::printf("Epoch-parallel checking (composite chain: %zu segment(s), "
              "%zu sidecar(s))\n\n",
              Segs.size(), Sidecars);
  std::printf("%-20s %12s %14s %9s %8s\n", "config", "wall s", "records/s",
              "speedup", "epochs");
  hr();

  struct Cfg {
    const char *Name;
    bool UseSnapshots;
    unsigned Threads;
  };
  const Cfg Cfgs[] = {{"from-zero x1", false, 1},
                      {"epochs x1", true, 1},
                      {"epochs x2", true, 2},
                      {"epochs x4", true, 4}};
  double Baseline = 0;
  for (const Cfg &C : Cfgs) {
    EpochCheckOptions EO;
    EO.UseSnapshots = C.UseSnapshots;
    EO.Threads = C.Threads;
    double BestWall = 0;
    EpochReport Best;
    for (unsigned I = 0; I < Reps; ++I) {
      double T0 = wallSeconds();
      EpochReport ER = epochCheck(Base, 4, makeCompositePipeline(true), EO);
      double Wall = wallSeconds() - T0;
      if (!ER.ok()) {
        std::fprintf(stderr, "error: epoch check (%s) failed: %s\n", C.Name,
                     ER.Error.empty() ? "violations on a clean chain"
                                      : ER.Error.c_str());
        std::fprintf(stderr, "%s\n", ER.Report.str().c_str());
        std::exit(1);
      }
      if (BestWall == 0 || Wall < BestWall) {
        BestWall = Wall;
        Best = std::move(ER);
      }
    }
    uint64_t Recs = Best.Report.LogRecords;
    double PerS = static_cast<double>(Recs) / BestWall;
    if (Baseline == 0)
      Baseline = BestWall;
    double Speedup = Baseline / BestWall;
    std::printf("%-20s %12.3f %14.0f %8.2fx %8llu\n", C.Name, BestWall,
                PerS, Speedup, static_cast<unsigned long long>(Best.Epochs));
    double NsPerRecord = BestWall * 1e9 / static_cast<double>(Recs);
    BJ.row(C.Name, C.Threads, NsPerRecord, PerS,
           "{\"speedup\":" + std::to_string(Speedup) +
               ",\"epochs\":" + std::to_string(Best.Epochs) +
               ",\"serial_rechecks\":" +
               std::to_string(Best.SerialRechecks) + "}");
  }
  hr();
  removeChain(Base);
  return BJ.write() ? 0 : 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool EpochMode = false;
  std::vector<char *> Filtered{Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    if (std::string(Argv[I]) == "--epochs") {
      EpochMode = true;
      continue;
    }
    Filtered.push_back(Argv[I]);
  }
  BenchArgs Args =
      parseBenchArgs(static_cast<int>(Filtered.size()), Filtered.data());
  if (Args.Quick) {
    OpsPerThread = 600;
    Reps = 1;
  }
  if (EpochMode)
    return runEpochBench(Args);
  BenchJson BJ("multiobject", Args.JsonPath);

  std::string Path = "/tmp/vyrd-benchmulti-" + std::to_string(getpid()) +
                     ".bin";
  std::vector<Action> Records = recordCompositeLog(Path);
  std::remove(Path.c_str());

  std::printf("Multi-object checking throughput (composite scenario: "
              "multiset + cache +\nblinktree + queue on one log; %zu "
              "records, best of %u)\n\n",
              Records.size(), Reps);
  std::printf("%-16s %12s %14s %9s\n", "checker pool", "wall s",
              "records/s", "speedup");
  hr();

  double Baseline = 0;
  for (unsigned Threads : {1u, 2u, 4u}) {
    RunResult R = best(Records, Threads);
    double PerS = static_cast<double>(Records.size()) / R.Wall;
    if (Threads == 1)
      Baseline = R.Wall;
    double Speedup = Baseline / R.Wall;
    std::printf("%-16u %12.3f %14.0f %8.2fx\n", Threads, R.Wall, PerS,
                Speedup);
    double NsPerRecord = R.Wall * 1e9 / static_cast<double>(Records.size());
    BJ.row("composite-online-view", Threads, NsPerRecord, PerS,
           objectsExtra(R.Report, Speedup));
  }
  hr();
  return BJ.write() ? 0 : 1;
}
