//===- bench_multiobject.cpp - Checker-pool throughput vs pool size --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the multi-object verification engine: one shared log carrying
// four interleaved objects (array multiset, Boxwood cache, B-link tree,
// bounded queue — the composite scenario), demultiplexed and checked by a
// pool of CheckerThreads workers with per-object affinity.
//
// Methodology: a composite log-only run records a fixed workload to a
// temporary file once. The bench then replays those exact records into a
// fresh online composite Verifier per configuration, so every pool size
// checks the same interleaving and the replay thread plays the role of
// the instrumented program. Reported throughput is log records fully
// checked per wall second (append of the first record to finish() of the
// last object), best of Reps.
//
// CheckerThreads = 1 feeds checkers inline on the consumption thread —
// the engine's historical single-threaded behavior and the scaling
// baseline. Results are recorded in EXPERIMENTS.md.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <unistd.h>

using namespace vyrd;
using namespace vyrd::bench;
using namespace vyrd::harness;

namespace {

unsigned OpsPerThread = 4000;
unsigned RecordThreads = 4;
unsigned Reps = 3;

/// Records the composite workload once and loads the resulting records.
std::vector<Action> recordCompositeLog(const std::string &Path) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.LogPath = Path;
  Scenario S = makeCompositeScenario(SO);
  WorkloadOptions WO;
  WO.Threads = RecordThreads;
  WO.OpsPerThread = OpsPerThread;
  WO.BackgroundOp = S.BackgroundOp;
  runWorkload(WO, S.Op);
  S.Finish();
  std::vector<Action> Records;
  if (!loadLogFile(Path, Records)) {
    std::fprintf(stderr, "error: cannot reload recorded log %s\n",
                 Path.c_str());
    std::exit(1);
  }
  return Records;
}

struct RunResult {
  double Wall = 0;             // replay start -> report, best rep
  VerifierReport Report;       // of the best rep
};

/// Replays \p Records into a fresh online composite verifier with
/// \p CheckerThreads pool workers and waits for checking to complete.
RunResult runOnce(const std::vector<Action> &Records,
                  unsigned CheckerThreads) {
  ScenarioOptions SO;
  SO.Mode = RunMode::RM_OnlineView;
  SO.CheckerThreads = CheckerThreads;
  Scenario S = makeCompositeScenario(SO);
  RunResult R;
  double T0 = wallSeconds();
  // MemoryLog reassigns Seq in append order, so the replayed stream is
  // exactly as well-formed as the recorded one.
  for (const Action &A : Records)
    S.L->append(A);
  R.Report = S.Finish();
  R.Wall = wallSeconds() - T0;
  if (!R.Report.ok()) {
    std::fprintf(stderr, "error: clean composite replay found %zu "
                         "violations\n",
                 R.Report.Violations.size());
    std::fprintf(stderr, "%s\n", R.Report.str().c_str());
    std::exit(1);
  }
  return R;
}

RunResult best(const std::vector<Action> &Records, unsigned CheckerThreads) {
  RunResult Best;
  for (unsigned I = 0; I < Reps; ++I) {
    RunResult R = runOnce(Records, CheckerThreads);
    if (Best.Wall == 0 || R.Wall < Best.Wall)
      Best = std::move(R);
  }
  return Best;
}

/// Per-object record counts as a JSON object for the row's "extra".
std::string objectsExtra(const VerifierReport &Rep, double Speedup) {
  std::string Out = "{\"speedup\":" + std::to_string(Speedup) +
                    ",\"objects\":{";
  for (size_t I = 0; I < Rep.Objects.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + Rep.Objects[I].Name +
           "\":" + std::to_string(Rep.Objects[I].Records);
  }
  return Out + "}}";
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  if (Args.Quick) {
    OpsPerThread = 600;
    Reps = 1;
  }
  BenchJson BJ("multiobject", Args.JsonPath);

  std::string Path = "/tmp/vyrd-benchmulti-" + std::to_string(getpid()) +
                     ".bin";
  std::vector<Action> Records = recordCompositeLog(Path);
  std::remove(Path.c_str());

  std::printf("Multi-object checking throughput (composite scenario: "
              "multiset + cache +\nblinktree + queue on one log; %zu "
              "records, best of %u)\n\n",
              Records.size(), Reps);
  std::printf("%-16s %12s %14s %9s\n", "checker pool", "wall s",
              "records/s", "speedup");
  hr();

  double Baseline = 0;
  for (unsigned Threads : {1u, 2u, 4u}) {
    RunResult R = best(Records, Threads);
    double PerS = static_cast<double>(Records.size()) / R.Wall;
    if (Threads == 1)
      Baseline = R.Wall;
    double Speedup = Baseline / R.Wall;
    std::printf("%-16u %12.3f %14.0f %8.2fx\n", Threads, R.Wall, PerS,
                Speedup);
    double NsPerRecord = R.Wall * 1e9 / static_cast<double>(Records.size());
    BJ.row("composite-online-view", Threads, NsPerRecord, PerS,
           objectsExtra(R.Report, Speedup));
  }
  hr();
  return BJ.write() ? 0 : 1;
}
