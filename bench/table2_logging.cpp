//===- table2_logging.cpp - Reproduces Table 2 -----------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 2, "Overhead of logging": for each program, the CPU time of the
// bare (uninstrumented) run vs the pure logging overhead when recording
// what I/O refinement needs (calls/returns/commits) and what view
// refinement needs (additionally all shared-variable writes / replay
// records). Nothing consumes the log; records go to a file, as in the
// paper's tool.
//
// Expected shape (paper): view-level logging costs noticeably more than
// I/O-level logging for programs whose mutators perform many shared
// writes per method (Multiset, Cache); the difference is much smaller for
// Vector, StringBuffer and BLinkTree.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

struct Workload {
  Program Prog;
  unsigned Threads;
  unsigned Ops; // per thread
};

double timeRun(Program P, RunMode Mode, unsigned Threads, unsigned Ops,
               uint64_t Seed, uint64_t *Records = nullptr,
               uint64_t *Bytes = nullptr) {
  ScenarioOptions SO;
  SO.Prog = P;
  SO.Mode = Mode;
  if (Mode != RunMode::RM_Bare)
    SO.LogPath = "/tmp/vyrd-t2-" + std::to_string(getpid()) + ".bin";
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 24;
  WO.Seed = Seed;
  VerifierReport Rep;
  Timed T = timed([&] {
    auto [WRes, R] = runScenario(SO, WO, false);
    (void)WRes;
    Rep = std::move(R);
  });
  if (Records)
    *Records = Rep.LogRecords;
  if (Bytes)
    *Bytes = Rep.LogBytes;
  if (!SO.LogPath.empty())
    std::remove(SO.LogPath.c_str());
  return T.Cpu > 0 ? T.Cpu : T.Wall;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("table2_logging", Args.JsonPath);
  std::printf("Table 2: overhead of logging (CPU seconds; overhead = run "
              "with logging - bare run)\n\n");
  std::printf("%-22s %9s %12s %12s %14s %14s\n", "Implementation",
              "Program", "I/O Ref.", "View Ref.", "records(view)",
              "bytes(view)");
  hr(' ', 0);
  hr();

  std::vector<Workload> Loads = {
      {Program::P_MultisetVector, 8, 16000},
      {Program::P_MultisetBst, 8, 12000},
      {Program::P_Vector, 8, 24000},
      {Program::P_StringBuffer, 8, 8000},
      {Program::P_BLinkTree, 8, 6000},
      {Program::P_Cache, 8, 8000},
      {Program::P_ScanFs, 8, 4000},
  };
  if (Args.Quick)
    Loads = {{Program::P_MultisetVector, 4, 2000}};

  for (const Workload &L : Loads) {
    // Average over a few repetitions to steady the numbers.
    const unsigned Reps = Args.Quick ? 1 : 3;
    double Bare = 0, IO = 0, View = 0;
    uint64_t Records = 0, Bytes = 0;
    for (unsigned R = 0; R < Reps; ++R) {
      Bare += timeRun(L.Prog, RunMode::RM_Bare, L.Threads, L.Ops, 7 + R);
      IO += timeRun(L.Prog, RunMode::RM_LogOnlyIO, L.Threads, L.Ops,
                    7 + R);
      View += timeRun(L.Prog, RunMode::RM_LogOnlyView, L.Threads, L.Ops,
                      7 + R, &Records, &Bytes);
    }
    Bare /= Reps;
    IO /= Reps;
    View /= Reps;
    std::printf("%-22s %9.3f %12.3f %12.3f %14llu %14llu\n",
                programName(L.Prog), Bare,
                IO - Bare > 0 ? IO - Bare : 0.0,
                View - Bare > 0 ? View - Bare : 0.0,
                static_cast<unsigned long long>(Records),
                static_cast<unsigned long long>(Bytes));
    double TotalOps = double(L.Threads) * L.Ops;
    for (auto [Cfg, Secs] :
         {std::pair{"bare", Bare}, {"log-io", IO}, {"log-view", View}}) {
      char Extra[128];
      std::snprintf(Extra, sizeof(Extra),
                    "{\"cpu_s\":%.4f,\"records\":%llu,\"bytes\":%llu}",
                    Secs, static_cast<unsigned long long>(Records),
                    static_cast<unsigned long long>(Bytes));
      BJ.row(std::string(programName(L.Prog)) + "-" + Cfg, L.Threads,
             TotalOps > 0 ? Secs * 1e9 / TotalOps : 0,
             Secs > 0 ? TotalOps / Secs : 0, Extra);
    }
  }
  hr();
  std::printf("\nExpected shape: view-logging overhead >> I/O-logging "
              "overhead where mutators\nperform many logged updates per "
              "method (Multiset, Cache); small difference for\nVector, "
              "StringBuffer, BLinkTree (paper Table 2).\n");
  return BJ.write() ? 0 : 1;
}
