//===- table1_detection.cpp - Reproduces Table 1 ---------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Table 1, "Time to detection of error": for each of the six (program,
// injected bug) pairs and a range of thread counts, the average number of
// methods the checker processes before the first violation is reported,
// under view refinement and under I/O refinement, plus the ratio of CPU
// time for view-mode checking vs I/O-mode checking of the same trace.
//
// Expected shape (paper): view refinement detects one to two orders of
// magnitude earlier for bugs that corrupt state (Multiset, StringBuffer,
// BLinkTree, Cache); for the Vector bug — an observer-only error — view
// refinement is no better than I/O refinement. View-mode CPU cost is a
// small multiple of I/O-mode cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>
#include <vector>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

struct DetectionResult {
  double AvgMethods = 0; // methods checked before first violation
  unsigned Detected = 0; // out of Repeats
};

/// Repeatedly runs the buggy program online in \p Mode; averages the
/// methods-checked-at-first-violation metric.
DetectionResult detectionRuns(Program P, RunMode Mode, unsigned Threads,
                              unsigned Repeats, unsigned OpsPerThread) {
  DetectionResult R;
  double Sum = 0;
  for (unsigned Rep = 0; Rep < Repeats; ++Rep) {
    ScenarioOptions SO;
    SO.Prog = P;
    SO.Mode = Mode;
    SO.Buggy = true;
    SO.StopAtFirstViolation = true;
    WorkloadOptions WO;
    WO.Threads = Threads;
    WO.OpsPerThread = OpsPerThread;
    WO.KeyPoolSize = 16;
    WO.Seed = 1000 + Rep * 77;
    auto [WRes, Rep2] = runScenario(SO, WO, /*StopOnViolation=*/true,
                                    /*Background=*/true,
                                    /*WithChaos=*/true);
    (void)WRes;
    if (!Rep2.ok()) {
      Sum += static_cast<double>(Rep2.Violations.front().MethodsChecked);
      ++R.Detected;
    }
  }
  if (R.Detected)
    R.AvgMethods = Sum / R.Detected;
  return R;
}

/// CPU-time ratio of view-mode vs I/O-mode checking of the same recorded
/// trace (the last column of Table 1).
double cpuRatioOnSameTrace(Program P, unsigned Threads,
                           unsigned OpsPerThread) {
  // Record one buggy trace at view-logging granularity.
  std::string Path = "/tmp/vyrd-t1-" + std::to_string(getpid()) + ".bin";
  {
    ScenarioOptions SO;
    SO.Prog = P;
    SO.Mode = RunMode::RM_LogOnlyView;
    SO.Buggy = true;
    SO.LogPath = Path;
    WorkloadOptions WO;
    WO.Threads = Threads;
    WO.OpsPerThread = OpsPerThread;
    WO.KeyPoolSize = 16;
    WO.Seed = 4242;
    runScenario(SO, WO, false, /*Background=*/true, /*WithChaos=*/true);
  }
  std::vector<Action> Trace;
  if (!loadLogFile(Path, Trace))
    return 0;
  std::remove(Path.c_str());

  auto CheckTime = [&](RunMode Mode) {
    ScenarioOptions SO;
    SO.Prog = P;
    SO.Mode = Mode;
    SO.Buggy = true; // same spec/replayer either way
    Scenario S = makeScenario(SO);
    Timed T = timed([&] {
      for (const Action &A : Trace)
        S.L->append(A);
      (void)S.Finish();
    });
    return T.Cpu > 0 ? T.Cpu : T.Wall;
  };
  double IO = CheckTime(RunMode::RM_OfflineIO);
  double View = CheckTime(RunMode::RM_OfflineView);
  return IO > 0 ? View / IO : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("table1_detection", Args.JsonPath);
  std::printf("Table 1: time to detection of error\n");
  std::printf("(average number of methods checked before the first "
              "violation; smaller = earlier)\n\n");
  std::printf("%-22s %-38s %5s %10s %10s %8s\n", "Program", "Error",
              "Thrd", "I/O Ref.", "View Ref.", "CPU V/IO");
  hr();

  const unsigned Repeats = Args.Quick ? 1 : 3;
  std::vector<Program> Rows;
  if (Args.Quick) {
    Rows = {Program::P_MultisetVector};
  } else {
    Rows = allPrograms();
    for (Program P : extensionPrograms())
      Rows.push_back(P); // beyond-paper rows, labeled by programName
  }
  for (Program P : Rows) {
    std::vector<unsigned> ThreadCounts =
        Args.Quick ? std::vector<unsigned>{4}
                   : std::vector<unsigned>{4, 8, 16, 32};
    double Ratio = cpuRatioOnSameTrace(P, 8, Args.Quick ? 50 : 200);
    bool First = true;
    for (unsigned T : ThreadCounts) {
      // Budgets hold the *total* method count constant across thread
      // counts; I/O refinement gets a larger budget since it needs the
      // corruption to surface in a return value.
      DetectionResult View = detectionRuns(P, RunMode::RM_OnlineView, T,
                                           Repeats, 3200 / T);
      DetectionResult IO = detectionRuns(P, RunMode::RM_OnlineIO, T,
                                         Repeats, 12000 / T);
      char IOBuf[32], ViewBuf[32];
      if (IO.Detected)
        std::snprintf(IOBuf, sizeof(IOBuf), "%.0f(%u/%u)", IO.AvgMethods,
                      IO.Detected, Repeats);
      else
        std::snprintf(IOBuf, sizeof(IOBuf), "n.d.");
      if (View.Detected)
        std::snprintf(ViewBuf, sizeof(ViewBuf), "%.0f(%u/%u)",
                      View.AvgMethods, View.Detected, Repeats);
      else
        std::snprintf(ViewBuf, sizeof(ViewBuf), "n.d.");
      std::printf("%-22s %-38s %5u %10s %10s",
                  First ? programName(P) : "",
                  First ? programBugName(P) : "", T, IOBuf, ViewBuf);
      if (First)
        std::printf(" %8.2f", Ratio);
      std::printf("\n");
      First = false;
      for (auto [Mode, R] : {std::pair{"view", View}, {"io", IO}}) {
        char Extra[160];
        std::snprintf(Extra, sizeof(Extra),
                      "{\"avg_methods_to_detection\":%.1f,\"detected\":%u,"
                      "\"repeats\":%u,\"cpu_ratio_view_io\":%.2f}",
                      R.AvgMethods, R.Detected, Repeats, Ratio);
        BJ.row(std::string(programName(P)) + "-" + Mode, T, 0, 0, Extra);
      }
    }
    hr();
  }
  std::printf("\nn.d. = not detected within the run budget; (d/r) = "
              "detected in d of r repetitions.\n");
  std::printf("Expected shape: View << I/O for state-corrupting bugs; "
              "View == I/O for the Vector\nobserver-only bug (Sec. 7.5); "
              "CPU ratio a small constant (paper: 1.0-3.5, one\noutlier "
              "16.9 for Cache).\n");
  return BJ.write() ? 0 : 1;
}
