//===- ablation_quiescent.cpp - Quiescent vs commit-point checking ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sec. 8 of the paper argues that comparing implementation and
// specification state only at *quiescent* points (as commit-atomicity [4]
// does) is too coarse for realistic concurrent runs: quiescent points are
// rare under load, and corrupted state may be overwritten before the next
// one. This ablation quantifies that: for the state-corrupting bugs, the
// detection rate and time-to-detection of view refinement checking at
// every commit vs only at quiescent commits.
//
// Expected shape: every-commit detects in (almost) every seed, early;
// quiescent-only detects in fewer seeds and much later, degrading as the
// thread count grows (fewer quiescent points).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

struct Outcome {
  unsigned Detected = 0;
  double AvgMethods = 0;
  double QuiescentShare = 0; // checked comparisons / commits
};

Outcome measure(Program P, bool QuiescentOnly, unsigned Threads,
                unsigned Seeds) {
  Outcome O;
  double Sum = 0, ShareSum = 0;
  for (unsigned S = 0; S < Seeds; ++S) {
    ScenarioOptions SO;
    SO.Prog = P;
    SO.Mode = RunMode::RM_OnlineView;
    SO.Buggy = true;
    SO.StopAtFirstViolation = true;
    SO.QuiescentOnly = QuiescentOnly;
    WorkloadOptions WO;
    WO.Threads = Threads;
    WO.OpsPerThread = 800;
    WO.KeyPoolSize = 16;
    WO.Seed = 100 + S * 13;
    auto [WRes, Rep] = runScenario(SO, WO, /*StopOnViolation=*/true,
                                   /*Background=*/true,
                                   /*WithChaos=*/true);
    (void)WRes;
    if (Rep.Stats.CommitsProcessed)
      ShareSum += static_cast<double>(Rep.Stats.ViewComparisons) /
                  Rep.Stats.CommitsProcessed;
    if (!Rep.ok()) {
      ++O.Detected;
      Sum += static_cast<double>(Rep.Violations.front().MethodsChecked);
    }
  }
  if (O.Detected)
    O.AvgMethods = Sum / O.Detected;
  O.QuiescentShare = ShareSum / Seeds;
  return O;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("ablation_quiescent", Args.JsonPath);
  std::printf("Ablation: view comparison at every commit vs only at "
              "quiescent commits (Sec. 8)\n\n");
  std::printf("%-22s %5s %22s %24s %10s\n", "Program", "Thrd",
              "every-commit", "quiescent-only", "quiesc.%");
  std::printf("%-22s %5s %10s %11s %12s %11s\n", "", "", "detected",
              "avg-mthd", "detected", "avg-mthd");
  hr(' ', 0);
  hr();

  const unsigned Seeds = Args.Quick ? 2 : 8;
  std::vector<Program> Programs = {Program::P_StringBuffer,
                                   Program::P_Cache,
                                   Program::P_MultisetVector,
                                   Program::P_MultisetBst};
  std::vector<unsigned> ThreadCounts = {4u, 16u};
  if (Args.Quick) {
    Programs = {Program::P_StringBuffer};
    ThreadCounts = {4u};
  }
  for (Program P : Programs) {
    for (unsigned T : ThreadCounts) {
      Outcome Every = measure(P, false, T, Seeds);
      Outcome Quiet = measure(P, true, T, Seeds);
      char EB[32], QB[32];
      std::snprintf(EB, sizeof(EB), "%u/%u", Every.Detected, Seeds);
      std::snprintf(QB, sizeof(QB), "%u/%u", Quiet.Detected, Seeds);
      std::printf("%-22s %5u %10s %11.0f %12s %11.0f %9.0f%%\n",
                  programName(P), T, EB, Every.AvgMethods, QB,
                  Quiet.AvgMethods, Quiet.QuiescentShare * 100);
      for (auto [Cfg, O] :
           {std::pair{"every-commit", Every}, {"quiescent-only", Quiet}}) {
        char Extra[160];
        std::snprintf(Extra, sizeof(Extra),
                      "{\"detected\":%u,\"seeds\":%u,"
                      "\"avg_methods_to_detection\":%.1f,"
                      "\"quiescent_share\":%.3f}",
                      O.Detected, Seeds, O.AvgMethods, O.QuiescentShare);
        BJ.row(std::string(programName(P)) + "-" + Cfg, T, 0, 0, Extra);
      }
    }
  }
  hr();
  std::printf("\nquiesc.%% = share of commits that were quiescent (and "
              "hence checked) in the\nquiescent-only runs. Expected "
              "shape: every-commit detects more often and earlier;\n"
              "quiescent opportunities shrink as threads grow.\n");
  return BJ.write() ? 0 : 1;
}
