//===- bench_backpressure.cpp - Bounded-pipeline soak and policy curves ----===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures what the bounded pipeline (docs/ARCHITECTURE.md, "Bounded
// pipeline & backpressure") costs and verifies what it promises, with a
// deliberately throttled checker so producers genuinely outrun it:
//
//  * unbounded baseline: append throughput with the historical unbounded
//    queue (memory grows with the backlog);
//  * BP_Block soak: append throughput plus the p99 append latency once
//    the producer absorbs the checker's pace, and the hard invariant
//    pending-HWM <= MaxPendingRecords;
//  * BP_SpillToDisk soak over a segmented file log: spill volume, and the
//    hard invariant that checked-prefix reclamation keeps at most two
//    segments live at the end of the run;
//  * BP_Shed curve: shed rate as the checker gets 1x/2x/4x slower, with
//    exact record accounting and the promise that seeded violations are
//    still flagged (mutators are never shed).
//
// Full mode soaks >= 10M records per bounded policy; --quick shrinks
// everything for CI. Invariant failures exit non-zero so CI notices.
// JSON rows (--json) feed tools/check_bench_baseline.py.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "vyrd/Log.h"
#include "vyrd/Telemetry.h"
#include "vyrd/Verifier.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace vyrd;
using namespace vyrd::bench;

namespace {

unsigned SoakExecs = 2000000;   // 5 records each: the >= 10M-record soak
unsigned CompareExecs = 100000; // unbounded-vs-bounded verdict comparison
unsigned ShedExecs = 200000;    // per point of the shed curve
constexpr unsigned SeededViolations = 3;
constexpr uint64_t PendingBound = 1024;

void spinFor(std::chrono::nanoseconds D) {
  auto Until = std::chrono::steady_clock::now() + D;
  while (std::chrono::steady_clock::now() < Until)
    ;
}

/// Integer register: Set(x) -> true mutates, Get() -> x observes. The
/// optional busy-wait per spec step is the "slow checker" of the soak.
class ThrottledRegisterSpec : public Spec {
public:
  explicit ThrottledRegisterSpec(unsigned ThrottleUs = 0)
      : SetM(internName("bp.Set")), GetM(internName("bp.Get")),
        State(Value(0)), ThrottleUs(ThrottleUs) {}

  bool isObserver(Name Method) const override { return Method == GetM; }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &) override {
    throttle();
    if (Method != SetM || Args.size() != 1 || !Ret.isBool() || !Ret.asBool())
      return false;
    State = Args[0];
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &,
                     const Value &Ret) const override {
    throttle();
    return Method == GetM && Ret == State;
  }

  void buildView(View &Out) const override { Out.clear(); }

  Name SetM, GetM;
  Value State;

private:
  void throttle() const {
    if (ThrottleUs)
      spinFor(std::chrono::microseconds(ThrottleUs));
  }
  unsigned ThrottleUs;
};

struct RunResult {
  VerifierReport Report;
  double AppendSeconds = 0; // producer wall time in the append loop
  double WallSeconds = 0;   // start() .. finish()
  uint64_t Records = 0;
  uint64_t P99AppendNs = 0; // sampled individual-append p99
};

/// Drives \p Execs Set/Get executions through a fresh Verifier, seeding
/// SeededViolations impossible mutators at even spacings. Every 8th
/// append is individually timed for the latency distribution.
RunResult run(VerifierConfig C, unsigned ThrottleUs, unsigned Execs) {
  using Clock = std::chrono::steady_clock;
  RunResult R;
  ThrottledRegisterSpec Script; // producer-side method names
  Verifier V(std::make_unique<ThrottledRegisterSpec>(ThrottleUs), nullptr,
             std::move(C));
  double W0 = wallSeconds();
  V.start();
  LogWriter &W = V.log().writer();
  std::vector<uint64_t> Samples;
  Samples.reserve(Execs / 2 + 16);
  unsigned SeedEvery = Execs / (SeededViolations + 1);
  uint64_t Appended = 0;
  auto timedAppend = [&](Action A) {
    if (++Appended % 8) {
      W.append(std::move(A));
      return;
    }
    auto T0 = Clock::now();
    W.append(std::move(A));
    Samples.push_back(static_cast<uint64_t>(
        std::chrono::nanoseconds(Clock::now() - T0).count()));
  };
  double A0 = wallSeconds();
  for (unsigned I = 0; I < Execs; ++I) {
    int64_t K = static_cast<int64_t>(I);
    timedAppend(Action::call(1, Script.SetM, {Value(K)}));
    timedAppend(Action::commit(1));
    timedAppend(Action::ret(1, Script.SetM, Value(true)));
    timedAppend(Action::call(1, Script.GetM, {}));
    timedAppend(Action::ret(1, Script.GetM, Value(K)));
    if (SeedEvery && (I + 1) % SeedEvery == 0 &&
        (I + 1) / SeedEvery <= SeededViolations) {
      // A mutator the spec cannot execute: Set that "returns" false. It
      // leaves the register state untouched, so later Gets stay correct.
      timedAppend(Action::call(1, Script.SetM, {Value(-1)}));
      timedAppend(Action::commit(1));
      timedAppend(Action::ret(1, Script.SetM, Value(false)));
    }
  }
  R.AppendSeconds = wallSeconds() - A0;
  R.Records = Appended;
  R.Report = V.finish();
  R.WallSeconds = wallSeconds() - W0;
  if (!Samples.empty()) {
    std::sort(Samples.begin(), Samples.end());
    R.P99AppendNs = Samples[Samples.size() * 99 / 100];
  }
  return R;
}

/// Hard invariant: print and exit non-zero on failure, so the soak gates
/// CI rather than decorating it.
void require(bool Ok, const char *What) {
  if (Ok)
    return;
  std::fprintf(stderr, "INVARIANT FAILED: %s\n", What);
  std::exit(1);
}

void requireSeededViolations(const VerifierReport &R, const char *Config) {
  if (R.Violations.size() == SeededViolations &&
      std::all_of(R.Violations.begin(), R.Violations.end(),
                  [](const Violation &V) {
                    return V.Kind == ViolationKind::VK_MutatorMismatch;
                  }))
    return;
  std::fprintf(stderr,
               "INVARIANT FAILED: %s flagged %zu violation(s), expected "
               "%u seeded mutator mismatches\n%s",
               Config, R.Violations.size(), SeededViolations,
               R.str().c_str());
  std::exit(1);
}

double appendPerSec(const RunResult &R) {
  return R.AppendSeconds > 0 ? double(R.Records) / R.AppendSeconds : 0;
}

double nsPerAppend(const RunResult &R) {
  return R.Records ? R.AppendSeconds * 1e9 / double(R.Records) : 0;
}

std::string tmpBase() {
  return "/tmp/vyrd-benchbp-" + std::to_string(getpid()) + ".bin";
}

void removeChain(const std::string &Base) {
  std::remove(Base.c_str());
  for (uint64_t I = 1; I <= 4096; ++I)
    std::remove(logSegmentPath(Base, I).c_str());
}

VerifierConfig baseConfig() {
  VerifierConfig C;
  C.Checker.Mode = CheckMode::CM_IORefinement;
  return C;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  if (Args.Quick) {
    SoakExecs = 30000;
    CompareExecs = 10000;
    ShedExecs = 10000;
  }
  BenchJson BJ("backpressure", Args.JsonPath);
  char Extra[160];

  std::printf("Bounded-pipeline soak: %u execs (%u records) per policy, "
              "1us/step checker throttle, bound %llu records\n\n",
              SoakExecs, SoakExecs * 5 + SeededViolations * 3,
              static_cast<unsigned long long>(PendingBound));
  std::printf("%-12s %12s %12s %12s %12s\n", "config", "append M/s",
              "p99 ns", "pending HWM", "wall s");
  hr();

  // Unbounded baseline at a memory-safe size: the backlog this
  // configuration pins is exactly what the bounded policies exist to
  // avoid, so it does not get the full soak.
  RunResult Unbounded = run(baseConfig(), /*ThrottleUs=*/1, CompareExecs);
  requireSeededViolations(Unbounded.Report, "unbounded");
  std::printf("%-12s %12.2f %12llu %12s %12.2f\n", "unbounded",
              appendPerSec(Unbounded) / 1e6,
              static_cast<unsigned long long>(Unbounded.P99AppendNs), "-",
              Unbounded.WallSeconds);
  std::snprintf(Extra, sizeof(Extra), "{\"records\":%llu}",
                static_cast<unsigned long long>(Unbounded.Records));
  BJ.row("unbounded", 1, nsPerAppend(Unbounded), appendPerSec(Unbounded),
         Extra);

  // BP_Block soak: the producer is paced to the checker; pending stays
  // under the bound by construction, and we verify it did.
  {
    VerifierConfig C = baseConfig();
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = PendingBound;
    RunResult R = run(std::move(C), /*ThrottleUs=*/1, SoakExecs);
    requireSeededViolations(R.Report, "block");
    require(R.Report.Backpressure.PendingRecordsHwm <= PendingBound,
            "block: pending HWM exceeded MaxPendingRecords");
    require(R.Report.Backpressure.BlockedAppends > 0,
            "block: a throttled checker never engaged the bound");
    std::printf("%-12s %12.2f %12llu %12llu %12.2f\n", "block",
                appendPerSec(R) / 1e6,
                static_cast<unsigned long long>(R.P99AppendNs),
                static_cast<unsigned long long>(
                    R.Report.Backpressure.PendingRecordsHwm),
                R.WallSeconds);
    std::snprintf(
        Extra, sizeof(Extra),
        "{\"blocked_appends\":%llu,\"blocked_p99_ns\":%llu,"
        "\"pending_hwm\":%llu}",
        static_cast<unsigned long long>(R.Report.Backpressure.BlockedAppends),
        static_cast<unsigned long long>(R.P99AppendNs),
        static_cast<unsigned long long>(
            R.Report.Backpressure.PendingRecordsHwm));
    BJ.row("block", 1, nsPerAppend(R), appendPerSec(R), Extra);
  }

  // BP_SpillToDisk soak over a segmented chain: appends never block, the
  // reader catches up from disk, and reclamation bounds the disk too.
  {
    std::string Base = tmpBase();
    removeChain(Base);
    VerifierConfig C = baseConfig();
    C.LogFilePath = Base;
    C.Backend = LogBackend::LB_File;
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = PendingBound;
    C.Backpressure.Policy = BackpressurePolicy::BP_SpillToDisk;
    C.Backpressure.SegmentBytes = 1 << 20;
    C.Backpressure.ReclaimSegments = true;
    RunResult R = run(std::move(C), /*ThrottleUs=*/1, SoakExecs);
    requireSeededViolations(R.Report, "spill");
    require(R.Report.Backpressure.PendingRecordsHwm <= PendingBound,
            "spill: pending HWM exceeded MaxPendingRecords");
    require(R.Report.Backpressure.SegmentsCreated -
                    R.Report.Backpressure.SegmentsReclaimed <=
                2,
            "spill: more than two segments left live after a fully "
            "checked run");
    removeChain(Base);
    std::printf("%-12s %12.2f %12llu %12llu %12.2f\n", "spill",
                appendPerSec(R) / 1e6,
                static_cast<unsigned long long>(R.P99AppendNs),
                static_cast<unsigned long long>(
                    R.Report.Backpressure.PendingRecordsHwm),
                R.WallSeconds);
    std::snprintf(
        Extra, sizeof(Extra),
        "{\"spilled_records\":%llu,\"segments_created\":%llu,"
        "\"segments_live\":%llu,\"pending_hwm\":%llu}",
        static_cast<unsigned long long>(R.Report.Backpressure.SpilledRecords),
        static_cast<unsigned long long>(
            R.Report.Backpressure.SegmentsCreated),
        static_cast<unsigned long long>(
            R.Report.Backpressure.SegmentsCreated -
            R.Report.Backpressure.SegmentsReclaimed),
        static_cast<unsigned long long>(
            R.Report.Backpressure.PendingRecordsHwm));
    BJ.row("spill", 1, nsPerAppend(R), appendPerSec(R), Extra);
  }
  hr();

  // Bounded-vs-unbounded verdict equivalence at the comparison size:
  // BP_Block must change pacing, never coverage.
  {
    VerifierConfig C = baseConfig();
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = 64;
    RunResult R = run(std::move(C), /*ThrottleUs=*/1, CompareExecs);
    requireSeededViolations(R.Report, "block-compare");
    require(R.Report.Stats.MethodsChecked ==
                Unbounded.Report.Stats.MethodsChecked,
            "block: checked-method count diverged from the unbounded run");
    require(R.Report.LogRecords == Unbounded.Report.LogRecords,
            "block: record count diverged from the unbounded run");
  }

  // BP_Shed curve: shed rate versus checker slowdown. Mutators are never
  // shed, so the seeded violations must survive every point, and
  // MethodsChecked + shed windows must account for every execution.
  std::printf("\nBP_Shed: shed rate vs checker slowdown (%u execs, bound "
              "%u records)\n\n",
              ShedExecs, 64u);
  std::printf("%-12s %12s %12s %14s\n", "throttle", "shed rate", "shed recs",
              "methods checked");
  hr();
  for (unsigned Throttle : {1u, 2u, 4u}) {
    VerifierConfig C = baseConfig();
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = 64;
    C.Backpressure.Policy = BackpressurePolicy::BP_Shed;
    RunResult R = run(std::move(C), Throttle, ShedExecs);
    requireSeededViolations(R.Report, "shed");
    require(R.Report.Backpressure.ShedRecords % 2 == 0,
            "shed: observer executions are two records; sheds must come "
            "in whole windows");
    require(R.Report.Stats.MethodsChecked +
                    R.Report.Backpressure.ShedRecords / 2 ==
                2 * uint64_t(ShedExecs) + SeededViolations,
            "shed: checked + shed executions do not account for every "
            "appended execution");
    double Rate = double(R.Report.Backpressure.ShedRecords) /
                  double(R.Records ? R.Records : 1);
    char Label[16];
    std::snprintf(Label, sizeof(Label), "x%u", Throttle);
    std::printf("%-12s %12.4f %12llu %14llu\n", Label, Rate,
                static_cast<unsigned long long>(
                    R.Report.Backpressure.ShedRecords),
                static_cast<unsigned long long>(
                    R.Report.Stats.MethodsChecked));
    char Config[32];
    std::snprintf(Config, sizeof(Config), "shed-x%u", Throttle);
    std::snprintf(
        Extra, sizeof(Extra), "{\"shed_rate\":%.6f,\"shed_records\":%llu}",
        Rate,
        static_cast<unsigned long long>(R.Report.Backpressure.ShedRecords));
    BJ.row(Config, 1, nsPerAppend(R), appendPerSec(R), Extra);
  }
  hr();

  // Self-tuning pipeline: the adaptive pump batch against the historical
  // fixed 256-record batch, same bounded-block soak. The steady-state
  // records/s is checker-paced, so the robust signal is the sync cost:
  // the adaptive target grows past the bound and drains the whole queue
  // per lock round trip, so the producer blocks and wakes a fraction as
  // often. check_bench_baseline.py gates both rows.
  std::printf("\nAdaptive batch sizing vs fixed-256 (%u execs, 1us/step "
              "throttle, bound %llu)\n\n",
              SoakExecs, static_cast<unsigned long long>(PendingBound));
  std::printf("%-12s %12s %12s %12s %14s\n", "config", "append M/s",
              "p99 ns", "pending HWM", "blocked appends");
  hr();
  RunResult Fixed, Adaptive;
  {
    VerifierConfig C = baseConfig();
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = PendingBound;
    Fixed = run(std::move(C), /*ThrottleUs=*/1, SoakExecs);
    requireSeededViolations(Fixed.Report, "fixed-256");
    require(Fixed.Report.Backpressure.PendingRecordsHwm <= PendingBound,
            "fixed-256: pending HWM exceeded MaxPendingRecords");
  }
  {
    VerifierConfig C = baseConfig();
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = PendingBound;
    C.Adaptive.Enabled = true;
    // Grow as soon as the backlog covers half the bound; the default
    // watermark (1024) would sit exactly on the bound and only
    // trigger on the racy full-queue instants.
    C.Adaptive.GrowLagRecords = PendingBound / 2;
    Adaptive = run(std::move(C), /*ThrottleUs=*/1, SoakExecs);
    requireSeededViolations(Adaptive.Report, "adaptive-on");
    require(Adaptive.Report.Backpressure.PendingRecordsHwm <= PendingBound,
            "adaptive-on: pending HWM exceeded MaxPendingRecords");
    require(Adaptive.Report.Adaptive.BatchTargetHwm >
                Adaptive.Report.Adaptive.BatchTargetFinal ||
            Adaptive.Report.Adaptive.BatchTargetHwm > 256,
            "adaptive-on: the batch target never grew under a "
            "backlogged checker");
    require(Adaptive.Report.Backpressure.BlockedAppends <
                Fixed.Report.Backpressure.BlockedAppends,
            "adaptive-on: larger drain batches must block the producer "
            "less often than fixed-256");
  }
  for (const auto &P : {std::make_pair("fixed-256", &Fixed),
                        std::make_pair("adaptive-on", &Adaptive)}) {
    const RunResult &R = *P.second;
    std::printf("%-12s %12.2f %12llu %12llu %14llu\n", P.first,
                appendPerSec(R) / 1e6,
                static_cast<unsigned long long>(R.P99AppendNs),
                static_cast<unsigned long long>(
                    R.Report.Backpressure.PendingRecordsHwm),
                static_cast<unsigned long long>(
                    R.Report.Backpressure.BlockedAppends));
    char Buf[224];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\"blocked_appends\":%llu,\"blocked_p99_ns\":%llu,"
        "\"pending_hwm\":%llu,\"batch_target_hwm\":%llu}",
        static_cast<unsigned long long>(
            R.Report.Backpressure.BlockedAppends),
        static_cast<unsigned long long>(R.P99AppendNs),
        static_cast<unsigned long long>(
            R.Report.Backpressure.PendingRecordsHwm),
        static_cast<unsigned long long>(R.Report.Adaptive.BatchTargetHwm));
    BJ.row(P.first, 1, nsPerAppend(R), appendPerSec(R), Buf);
  }
  std::printf("\n  adaptive/fixed records/s ratio: %.3f, blocked-append "
              "reduction: %.1fx\n",
              appendPerSec(Adaptive) / appendPerSec(Fixed),
              double(Fixed.Report.Backpressure.BlockedAppends) /
                  double(std::max<uint64_t>(
                      Adaptive.Report.Backpressure.BlockedAppends, 1)));
  hr();

  // Escalation soak: a file-backed run whose burst phase holds the lag
  // over the escalate watermark long enough to walk the whole ladder
  // (block -> spill -> shed), then a trickle phase lets the checker
  // drain and the ladder walk back down. The transition accounting in
  // the final report must show exactly that sequence.
  {
    std::printf("\nEscalation soak (burst + drain, file-backed, bound "
                "512)\n\n");
    std::string Base = tmpBase() + ".esc";
    removeChain(Base);
    unsigned BurstExecs = SoakExecs / 10;
    VerifierConfig C = baseConfig();
    C.LogFilePath = Base;
    C.Backend = LogBackend::LB_File;
    C.Telemetry.Enabled = true; // the soak polls the live policy gauge
    C.Backpressure.Enabled = true;
    C.Backpressure.MaxPendingRecords = 512;
    C.Backpressure.SegmentBytes = 1 << 20;
    C.Backpressure.ReclaimSegments = true;
    C.Adaptive.Enabled = true;
    C.Adaptive.EscalatePolicy = true;
    C.Adaptive.EscalateLagHi = 400; // below the bound: block caps the lag
    C.Adaptive.DeescalateLagLo = 64;
    C.Adaptive.EscalateHoldUs = 300;
    C.Adaptive.DeescalateHoldUs = 1000;
    ThrottledRegisterSpec Script;
    Verifier V(std::make_unique<ThrottledRegisterSpec>(/*ThrottleUs=*/2),
               nullptr, std::move(C));
    V.start();
    LogWriter &W = V.log().writer();
    unsigned SeedEvery = BurstExecs / (SeededViolations + 1);
    for (unsigned I = 0; I < BurstExecs; ++I) {
      int64_t K = static_cast<int64_t>(I);
      W.append(Action::call(1, Script.SetM, {Value(K)}));
      W.append(Action::commit(1));
      W.append(Action::ret(1, Script.SetM, Value(true)));
      W.append(Action::call(1, Script.GetM, {}));
      W.append(Action::ret(1, Script.GetM, Value(K)));
      if (SeedEvery && (I + 1) % SeedEvery == 0 &&
          (I + 1) / SeedEvery <= SeededViolations) {
        W.append(Action::call(1, Script.SetM, {Value(-1)}));
        W.append(Action::commit(1));
        W.append(Action::ret(1, Script.SetM, Value(false)));
      }
    }
    // Trickle: keep the pump observing (it only decides between batches)
    // while the checker drains the burst backlog; lag falls through the
    // low watermark and the ladder de-escalates back to block.
    auto PolicyNow = [&] {
      return V.telemetry()->snapshot().gauge(Gauge::G_PolicyActive);
    };
    double Deadline = wallSeconds() + 120;
    int64_t K = BurstExecs;
    while (PolicyNow() !=
               static_cast<uint64_t>(BackpressurePolicy::BP_Block) &&
           wallSeconds() < Deadline) {
      W.append(Action::call(1, Script.GetM, {}));
      W.append(Action::ret(1, Script.GetM, Value(K - 1)));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    VerifierReport R = V.finish();
    removeChain(Base);
    requireSeededViolations(R, "escalation-soak");
    require(R.Adaptive.Enabled, "escalation-soak: adaptive summary missing");
    const std::vector<AdaptiveController::Transition> &T =
        R.Adaptive.Transitions;
    std::string Seq;
    for (size_t I = 0; I < T.size(); ++I)
      Seq += (I ? "," : "") + T[I].str();
    std::printf("  transitions: %s\n  final policy: %s\n",
                Seq.c_str(), R.Adaptive.FinalPolicy.c_str());
    require(Seq == "block->spill,spill->shed,shed->spill,spill->block",
            "escalation-soak: expected the exact ladder walk "
            "block->spill->shed and back");
    require(R.Adaptive.Escalations == 2 && R.Adaptive.Deescalations == 2,
            "escalation-soak: escalation counters disagree with the "
            "transition list");
    require(R.Adaptive.FinalPolicy == "block",
            "escalation-soak: did not de-escalate back to the base "
            "policy after the drain");
    std::string Extras = "{\"escalations\":" +
                         std::to_string(R.Adaptive.Escalations) +
                         ",\"deescalations\":" +
                         std::to_string(R.Adaptive.Deescalations) +
                         ",\"sequence\":\"" + Seq + "\",\"final_policy\":\"" +
                         R.Adaptive.FinalPolicy + "\",\"shed_records\":" +
                         std::to_string(R.Backpressure.ShedRecords) + "}";
    BJ.row("escalation-soak", 1, 0.0, 0.0, Extras);
  }
  hr();
  std::printf("\nall bounded-pipeline invariants held\n");
  return BJ.write() ? 0 : 1;
}
