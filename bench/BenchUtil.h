//===- BenchUtil.h - Shared helpers for the table benchmarks ----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef VYRD_BENCH_BENCHUTIL_H
#define VYRD_BENCH_BENCHUTIL_H

#include "harness/Scenarios.h"
#include "harness/Workload.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>

namespace vyrd {
namespace bench {

/// CPU seconds consumed by the whole process so far (the paper reports
/// CPU seconds).
inline double cpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// Wall-clock seconds.
inline double wallSeconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

struct Timed {
  double Cpu;
  double Wall;
};

/// Runs \p Fn and returns its CPU/wall cost.
template <typename FnT> Timed timed(FnT &&Fn) {
  double C0 = cpuSeconds(), W0 = wallSeconds();
  Fn();
  return {cpuSeconds() - C0, wallSeconds() - W0};
}

/// Runs one workload over a freshly built scenario and finishes it.
/// \returns (workload result, report).
inline std::pair<harness::WorkloadResult, VerifierReport>
runScenario(const harness::ScenarioOptions &SO,
            const harness::WorkloadOptions &WOIn, bool StopOnViolation,
            bool Background = true, bool WithChaos = false) {
  harness::Scenario S = harness::makeScenario(SO);
  harness::WorkloadOptions WO = WOIn;
  if (Background)
    WO.BackgroundOp = S.BackgroundOp;
  if (StopOnViolation)
    WO.StopOnViolation = S.V;
  // Chaos yields are only wanted when hunting bugs (Table 1); they would
  // pollute the timing benches.
  if (WithChaos)
    Chaos::enable(4, WO.Seed);
  harness::WorkloadResult R = harness::runWorkload(WO, S.Op);
  Chaos::disable();
  VerifierReport Rep = S.Finish();
  return {R, Rep};
}

inline void hr(char C = '-', int N = 78) {
  for (int I = 0; I < N; ++I)
    std::putchar(C);
  std::putchar('\n');
}

} // namespace bench
} // namespace vyrd

#endif // VYRD_BENCH_BENCHUTIL_H
