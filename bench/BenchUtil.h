//===- BenchUtil.h - Shared helpers for the table benchmarks ----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#ifndef VYRD_BENCH_BENCHUTIL_H
#define VYRD_BENCH_BENCHUTIL_H

#include "harness/Scenarios.h"
#include "harness/Workload.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>

namespace vyrd {
namespace bench {

/// CPU seconds consumed by the whole process so far (the paper reports
/// CPU seconds).
inline double cpuSeconds() {
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

/// Wall-clock seconds.
inline double wallSeconds() {
  using namespace std::chrono;
  return duration<double>(steady_clock::now().time_since_epoch()).count();
}

struct Timed {
  double Cpu;
  double Wall;
};

/// Runs \p Fn and returns its CPU/wall cost.
template <typename FnT> Timed timed(FnT &&Fn) {
  double C0 = cpuSeconds(), W0 = wallSeconds();
  Fn();
  return {cpuSeconds() - C0, wallSeconds() - W0};
}

/// Runs one workload over a freshly built scenario and finishes it.
/// \returns (workload result, report).
inline std::pair<harness::WorkloadResult, VerifierReport>
runScenario(const harness::ScenarioOptions &SO,
            const harness::WorkloadOptions &WOIn, bool StopOnViolation,
            bool Background = true, bool WithChaos = false) {
  harness::Scenario S = harness::makeScenario(SO);
  harness::WorkloadOptions WO = WOIn;
  if (Background)
    WO.BackgroundOp = S.BackgroundOp;
  if (StopOnViolation)
    WO.StopOnViolation = S.V;
  // Chaos yields are only wanted when hunting bugs (Table 1); they would
  // pollute the timing benches.
  if (WithChaos)
    Chaos::enable(4, WO.Seed);
  harness::WorkloadResult R = harness::runWorkload(WO, S.Op);
  Chaos::disable();
  VerifierReport Rep = S.Finish();
  return {R, Rep};
}

inline void hr(char C = '-', int N = 78) {
  for (int I = 0; I < N; ++I)
    std::putchar(C);
  std::putchar('\n');
}

/// Command-line switches shared by every table benchmark.
struct BenchArgs {
  /// Shrink the workload for CI smoke runs.
  bool Quick = false;
  /// When non-empty, write machine-readable results here (--json PATH).
  std::string JsonPath;
};

/// Parses [--quick] [--json <path>]; exits with code 2 on anything else.
inline BenchArgs parseBenchArgs(int Argc, char **Argv) {
  BenchArgs A;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--quick") {
      A.Quick = true;
    } else if (Arg == "--json" && I + 1 < Argc) {
      A.JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <out.json>]\n",
                   Argv[0]);
      std::exit(2);
    }
  }
  return A;
}

/// Collects benchmark results in the shared machine-readable schema — a
/// JSON array of rows
///   {"benchmark": ..., "config": ..., "threads": N,
///    "ns_per_op": X, "throughput": Y, "extra": {...}}
/// — and writes it to the --json path (no-op when none was given).
/// `throughput` is ops/s of whatever the row measures; `extra` carries
/// bench-specific values (docs/OBSERVABILITY.md, "Benchmark JSON").
class BenchJson {
public:
  BenchJson(std::string Benchmark, std::string Path)
      : Benchmark(std::move(Benchmark)), Path(std::move(Path)) {}

  void row(const std::string &Config, unsigned Threads, double NsPerOp,
           double Throughput, const std::string &ExtraJson = "{}") {
    if (Path.empty())
      return;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "%s  {\"benchmark\":\"%s\",\"config\":\"%s\","
                  "\"threads\":%u,\"ns_per_op\":%.2f,\"throughput\":%.1f,"
                  "\"extra\":",
                  Rows.empty() ? "" : ",\n", Benchmark.c_str(),
                  Config.c_str(), Threads, NsPerOp, Throughput);
    Rows += Buf;
    Rows += ExtraJson;
    Rows += "}";
  }

  /// Writes the collected rows. \returns false on I/O error (benches exit
  /// non-zero so CI notices).
  bool write() const {
    if (Path.empty())
      return true;
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    if (!F) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return false;
    }
    std::fprintf(F, "[\n%s\n]\n", Rows.c_str());
    return std::fclose(F) == 0;
  }

private:
  std::string Benchmark;
  std::string Path;
  std::string Rows;
};

} // namespace bench
} // namespace vyrd

#endif // VYRD_BENCH_BENCHUTIL_H
