//===- bench_checker_hotpath.cpp - Checker hot-path A/B bench --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Measures the two costs the checker hot-path overhaul targets:
//
//  1. Observer evaluation redundancy. An observer-heavy, Vector-style
//     workload — epochs of K concurrent open observers (with heavily
//     duplicated signatures) spanning M mutator commits each, satisfied
//     only by the *last* state of their window (the adversarial Fig. 7
//     shape) — is fed through RefinementChecker twice, with observer
//     memoization on and off, and the checker CPU ns/record compared.
//     Both runs must report identical violations (none).
//
//  2. Heap allocations per logged record on the append -> batch -> check
//     path, counted with an operator-new hook around a MemoryLog
//     append/nextBatch/feed pipeline of the same trace.
//
// Usage: bench_checker_hotpath [--quick] [--json <out.json>]
//
// JSON rows (schema of docs/OBSERVABILITY.md "Benchmark JSON"):
//   config "memo-on" / "memo-off"  — ns_per_op = checker CPU ns/record
//   config "alloc-pipeline"        — extra.allocs_per_record
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "vyrd/Checker.h"
#include "vyrd/Log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

//===----------------------------------------------------------------------===//
// Counting operator-new hook
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocCount{0};
std::atomic<bool> GCountAllocs{false};
} // namespace

void *operator new(std::size_t Sz) {
  if (GCountAllocs.load(std::memory_order_relaxed))
    GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Sz) { return ::operator new(Sz); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace vyrd;
using namespace vyrd::bench;

namespace {

//===----------------------------------------------------------------------===//
// A small Vector-style spec (java.util.Vector flavor): observers scan the
// abstract state, so their cost is realistic rather than a table lookup.
//===----------------------------------------------------------------------===//

class VectorSpec : public Spec {
public:
  VectorSpec()
      : Add(internName("hp.AddElement")), Rem(internName("hp.RemoveElement")),
        Size(internName("hp.Size")), IndexOf(internName("hp.IndexOf")),
        HashCode(internName("hp.HashCode")) {}

  bool isObserver(Name M) const override {
    return M == Size || M == IndexOf || M == HashCode;
  }

  bool applyMutator(Name M, const ValueList &Args, const Value &Ret,
                    View &) override {
    if (M == Add && Args.size() == 1 && Args[0].isInt()) {
      Elems.push_back(Args[0].asInt());
      return true;
    }
    if (M == Rem && Args.size() == 1 && Args[0].isInt() && Ret.isBool()) {
      for (size_t I = 0; I < Elems.size(); ++I) {
        if (Elems[I] != Args[0].asInt())
          continue;
        if (!Ret.asBool())
          return false;
        Elems.erase(Elems.begin() + I);
        return true;
      }
      return !Ret.asBool();
    }
    return false;
  }

  bool returnAllowed(Name M, const ValueList &Args,
                     const Value &Ret) const override {
    if (M == Size)
      return Ret.isInt() &&
             Ret.asInt() == static_cast<int64_t>(Elems.size());
    if (M == IndexOf && Args.size() == 1 && Args[0].isInt()) {
      int64_t Found = -1;
      for (size_t I = 0; I < Elems.size(); ++I) {
        if (Elems[I] == Args[0].asInt()) {
          Found = static_cast<int64_t>(I);
          break;
        }
      }
      return Ret.isInt() && Ret.asInt() == Found;
    }
    if (M == HashCode)
      return Ret.isInt() && Ret.asInt() == hashOf();
    return false;
  }

  /// java.util.Vector-style content hash: O(n) and sensitive to every
  /// element, so a HashCode() observer is the expensive, late-satisfied
  /// case memoization targets.
  int64_t hashOf() const {
    int64_t H = 1;
    for (int64_t E : Elems)
      H = 31 * H + E;
    return H;
  }

  void buildView(View &) const override {}

  const Name Add, Rem, Size, IndexOf, HashCode;
  std::vector<int64_t> Elems;
};

//===----------------------------------------------------------------------===//
// Trace synthesis
//===----------------------------------------------------------------------===//

/// Builds the observer-heavy trace: \p Epochs rounds of \p Observers
/// concurrent observer windows (signatures drawn from a small set, so
/// duplicates abound) spanning \p Commits mutator commits each. Observer
/// return values are computed from the *end-of-epoch* state, so every
/// observer stays unsatisfied (and is re-evaluated) at every intermediate
/// commit — the worst case Sec. 4.3 allows. Each epoch mutates in one
/// direction only (all adds or all removes), so the abstract size moves
/// strictly monotonically inside every window and no intermediate state
/// can coincide with the final one; the size oscillates within
/// [\p SteadySize - \p Commits, \p SteadySize].
std::vector<Action> makeTrace(unsigned Epochs, unsigned Observers,
                              unsigned Commits, unsigned SteadySize) {
  VectorSpec Gen; // generator-side shadow state (never checked)
  View Unused;
  std::vector<Action> Trace;
  uint64_t Seq = 0;
  uint64_t Rand = 0x9e3779b97f4a7c15ULL;
  auto NextRand = [&Rand] {
    Rand ^= Rand << 13;
    Rand ^= Rand >> 7;
    Rand ^= Rand << 17;
    return Rand;
  };
  auto Push = [&](Action A) {
    A.Seq = Seq++;
    Trace.push_back(std::move(A));
  };

  for (unsigned E = 0; E < Epochs; ++E) {
    // 1. The epoch's mutations, precomputed so observer return values can
    // be drawn from the final state.
    struct Mut {
      Name M;
      int64_t V;
      Value Ret;
    };
    std::vector<Mut> Muts;
    bool AddEpoch = Gen.Elems.size() < SteadySize;
    for (unsigned C = 0; C < Commits; ++C) {
      if (AddEpoch) {
        int64_t V = static_cast<int64_t>(NextRand() % (SteadySize * 2));
        Gen.applyMutator(Gen.Add, {Value(V)}, Value(), Unused);
        Muts.push_back({Gen.Add, V, Value()});
      } else {
        int64_t V =
            Gen.Elems[static_cast<size_t>(NextRand() % Gen.Elems.size())];
        Gen.applyMutator(Gen.Rem, {Value(V)}, Value(true), Unused);
        Muts.push_back({Gen.Rem, V, Value(true)});
      }
    }

    // 2. Observer calls open first (their windows span all the commits).
    // Signatures repeat heavily: HashCode() and Size() are identical
    // across observers, IndexOf keys are drawn from a pool of 4 per
    // epoch. HashCode dominates the mix — it is the O(n), changes-every-
    // commit observer whose redundant re-evaluation the memo removes.
    struct Obs {
      ThreadId Tid;
      Name M;
      ValueList Args;
      Value Ret;
    };
    std::vector<Obs> Open;
    int64_t KeyPool[4];
    for (int64_t &K : KeyPool)
      K = static_cast<int64_t>(NextRand() % (SteadySize * 2));
    for (unsigned O = 0; O < Observers; ++O) {
      Obs Ob;
      Ob.Tid = 1 + O;
      if (O % 2 == 0) {
        Ob.M = O % 8 == 0 ? Gen.Size : Gen.HashCode;
      } else {
        Ob.M = Gen.IndexOf;
        Ob.Args.push_back(Value(KeyPool[O % 4]));
      }
      Push(Action::call(Ob.Tid, Ob.M, Ob.Args));
      Open.push_back(std::move(Ob));
    }

    // 3. The commits (mutator thread 0, one call/commit/return each).
    for (const Mut &M : Muts) {
      Push(Action::call(0, M.M, {Value(M.V)}));
      Push(Action::commit(0));
      Push(Action::ret(0, M.M, M.Ret));
    }

    // 4. Observer returns, answered from the end-of-epoch state: allowed
    // here, not at any earlier commit of the window.
    for (Obs &Ob : Open) {
      Value Ret;
      if (Ob.M == Gen.Size) {
        Ret = Value(static_cast<int64_t>(Gen.Elems.size()));
      } else if (Ob.M == Gen.HashCode) {
        Ret = Value(Gen.hashOf());
      } else {
        int64_t Found = -1;
        for (size_t I = 0; I < Gen.Elems.size(); ++I) {
          if (Gen.Elems[I] == Ob.Args[0].asInt()) {
            Found = static_cast<int64_t>(I);
            break;
          }
        }
        Ret = Value(Found);
      }
      Push(Action::ret(Ob.Tid, Ob.M, Ret));
    }
  }
  return Trace;
}

/// Feeds \p Trace through a fresh checker. \returns the checker's stats;
/// \p CpuSecs gets the CPU cost of the feed loop, \p NumViolations the
/// violation count.
CheckerStats checkTrace(const std::vector<Action> &Trace, bool Memoize,
                        double &CpuSecs, size_t &NumViolations) {
  VectorSpec S;
  CheckerConfig CC;
  CC.Mode = CheckMode::CM_IORefinement;
  CC.MemoizeObservers = Memoize;
  RefinementChecker Checker(S, nullptr, CC);
  double C0 = cpuSeconds(), W0 = wallSeconds();
  for (const Action &A : Trace)
    Checker.feed(A);
  Checker.finish();
  double C = cpuSeconds() - C0;
  CpuSecs = C > 0 ? C : wallSeconds() - W0;
  NumViolations = Checker.violations().size();
  return Checker.stats();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("bench_checker_hotpath", Args.JsonPath);

  unsigned Epochs = Args.Quick ? 60 : 600;
  unsigned Observers = 32;
  unsigned Commits = 16;
  unsigned SteadySize = 96;

  std::printf("Checker hot path: observer-heavy Vector-style workload\n");
  std::printf("  %u epochs x %u observers x %u commits, ~%u elements\n\n",
              Epochs, Observers, Commits, SteadySize);

  std::vector<Action> Trace =
      makeTrace(Epochs, Observers, Commits, SteadySize);
  double Records = static_cast<double>(Trace.size());

  // --- 1. memo on/off A/B over the identical trace -----------------------
  double OnSecs = 0, OffSecs = 0;
  size_t OnViol = 0, OffViol = 0;
  CheckerStats On = checkTrace(Trace, true, OnSecs, OnViol);
  CheckerStats Off = checkTrace(Trace, false, OffSecs, OffViol);
  if (OnViol != OffViol) {
    std::fprintf(stderr,
                 "FATAL: memo-on (%zu) and memo-off (%zu) violation counts "
                 "disagree — memoization is not semantically invisible\n",
                 OnViol, OffViol);
    return 1;
  }
  double OnNs = OnSecs * 1e9 / Records;
  double OffNs = OffSecs * 1e9 / Records;
  double Reduction = OffNs > 0 ? (1.0 - OnNs / OffNs) * 100.0 : 0;

  std::printf("%-10s %10s %14s %14s %14s\n", "config", "records",
              "cpu ns/record", "spec calls", "memo hits");
  hr();
  std::printf("%-10s %10zu %14.1f %14llu %14llu\n", "memo-off", Trace.size(),
              OffNs,
              static_cast<unsigned long long>(Off.ObserversChecked +
                                              Off.CommitsProcessed),
              0ull);
  std::printf("%-10s %10zu %14.1f %14llu %14llu\n", "memo-on", Trace.size(),
              OnNs, static_cast<unsigned long long>(On.ObsMemoMisses),
              static_cast<unsigned long long>(On.ObsMemoHits));
  hr();
  std::printf("checker CPU ns/record reduction: %.1f%% (violations: %zu, "
              "identical on/off)\n\n",
              Reduction, OnViol);

  char Extra[192];
  std::snprintf(Extra, sizeof(Extra),
                "{\"memo_hits\":%llu,\"memo_misses\":%llu,"
                "\"version_bumps\":%llu,\"violations\":%zu}",
                static_cast<unsigned long long>(On.ObsMemoHits),
                static_cast<unsigned long long>(On.ObsMemoMisses),
                static_cast<unsigned long long>(On.SpecVersionBumps), OnViol);
  BJ.row("memo-on", 1, OnNs, OnSecs > 0 ? Records / OnSecs : 0, Extra);
  std::snprintf(Extra, sizeof(Extra), "{\"violations\":%zu}", OffViol);
  BJ.row("memo-off", 1, OffNs, OffSecs > 0 ? Records / OffSecs : 0, Extra);

  // --- 2. allocations per record, append -> batch -> check ---------------
  // The trace is pre-built and the checker pre-warmed (pools, memo table,
  // deque blocks), so the counted window holds only the steady-state
  // per-record cost of the pipeline.
  {
    VectorSpec S;
    CheckerConfig CC;
    CC.Mode = CheckMode::CM_IORefinement;
    RefinementChecker Checker(S, nullptr, CC);
    MemoryLog Log;
    LogWriter &W = Log.writer();

    auto PumpReady = [&](std::vector<Action> &Batch) {
      bool End = false;
      Action A;
      (void)End;
      Batch.clear();
      while (Log.tryNext(A, End))
        Batch.push_back(std::move(A));
      for (const Action &B : Batch)
        Checker.feed(B);
    };

    std::vector<Action> Batch;
    Batch.reserve(256);
    size_t Warmup = Trace.size() / 4;
    for (size_t I = 0; I < Warmup; ++I)
      W.append(Trace[I]);
    PumpReady(Batch);

    GAllocCount.store(0, std::memory_order_relaxed);
    GCountAllocs.store(true, std::memory_order_relaxed);
    double C0 = cpuSeconds();
    for (size_t I = Warmup; I < Trace.size(); ++I) {
      W.append(Trace[I]);
      if ((I & 255) == 0)
        PumpReady(Batch);
    }
    PumpReady(Batch);
    double CSecs = cpuSeconds() - C0;
    GCountAllocs.store(false, std::memory_order_relaxed);
    uint64_t Allocs = GAllocCount.load(std::memory_order_relaxed);
    Checker.finish();

    double Counted = static_cast<double>(Trace.size() - Warmup);
    double PerRecord = Allocs / Counted;
    std::printf("append->batch->check allocation count: %llu allocs / %zu "
                "records = %.3f allocs/record\n",
                static_cast<unsigned long long>(Allocs),
                Trace.size() - Warmup, PerRecord);
    std::snprintf(Extra, sizeof(Extra),
                  "{\"allocs\":%llu,\"records\":%zu,"
                  "\"allocs_per_record\":%.3f}",
                  static_cast<unsigned long long>(Allocs),
                  Trace.size() - Warmup, PerRecord);
    BJ.row("alloc-pipeline", 1, CSecs * 1e9 / Counted,
           CSecs > 0 ? Counted / CSecs : 0, Extra);
  }

  return BJ.write() ? 0 : 1;
}
