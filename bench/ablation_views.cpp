//===- ablation_views.cpp - Ablations for the design choices ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Ablation studies for the design decisions DESIGN.md calls out:
//
//  A. Incremental view maintenance (Sec. 6.4) vs rebuilding both views
//     from scratch at every commit — checking the same recorded trace.
//  B. Audit period: the cost of periodically deep-comparing the
//     incremental views against rebuilt ones.
//  C. Log backend: MemoryLog vs FileLog serialization cost.
//
// Expected shape: incremental wins by a growing factor as the structure
// gets larger; audits add cost inversely proportional to their period;
// the file backend adds a constant serialization overhead per record.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::harness;
using namespace vyrd::bench;

namespace {

std::vector<Action> recordTrace(Program P, unsigned Threads, unsigned Ops) {
  std::string Path =
      "/tmp/vyrd-abl-" + std::to_string(getpid()) + ".bin";
  ScenarioOptions SO;
  SO.Prog = P;
  SO.Mode = RunMode::RM_LogOnlyView;
  SO.LogPath = Path;
  WorkloadOptions WO;
  WO.Threads = Threads;
  WO.OpsPerThread = Ops;
  WO.KeyPoolSize = 48;
  WO.Seed = 31;
  runScenario(SO, WO, false);
  std::vector<Action> Trace;
  loadLogFile(Path, Trace);
  std::remove(Path.c_str());
  return Trace;
}

double checkTrace(Program P, const std::vector<Action> &Trace,
                  bool FullRecompute, unsigned AuditPeriod) {
  ScenarioOptions SO;
  SO.Prog = P;
  SO.Mode = RunMode::RM_OfflineView;
  SO.FullViewRecompute = FullRecompute;
  SO.AuditPeriod = AuditPeriod;
  Scenario S = makeScenario(SO);
  Timed T = timed([&] {
    for (const Action &A : Trace)
      S.L->append(A);
    VerifierReport R = S.Finish();
    if (!R.ok())
      std::printf("  !! unexpected violation: %s\n",
                  R.Violations.front().str().c_str());
  });
  return T.Cpu > 0 ? T.Cpu : T.Wall;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchArgs Args = parseBenchArgs(Argc, Argv);
  BenchJson BJ("ablation_views", Args.JsonPath);
  auto jsonRow = [&BJ](const std::string &Config, unsigned Threads,
                       size_t Records, double Secs) {
    char Extra[96];
    std::snprintf(Extra, sizeof(Extra), "{\"cpu_s\":%.4f,\"records\":%zu}",
                  Secs, Records);
    BJ.row(Config, Threads, Records && Secs > 0 ? Secs * 1e9 / Records : 0,
           Secs > 0 ? double(Records) / Secs : 0, Extra);
  };

  std::printf("Ablation A: incremental vs full view recomputation "
              "(offline check CPU seconds)\n\n");
  std::printf("%-22s %10s %12s %12s %8s\n", "Program", "records",
              "incremental", "full-rebuild", "speedup");
  hr();
  struct Load {
    Program P;
    unsigned Threads, Ops;
  };
  std::vector<Load> Loads = {
      {Program::P_MultisetVector, 4, 2500},
      {Program::P_Vector, 4, 2500},
      {Program::P_BLinkTree, 4, 1200},
      {Program::P_Cache, 4, 1500},
  };
  if (Args.Quick)
    Loads = {{Program::P_MultisetVector, 4, 400}};
  for (auto &L : Loads) {
    std::vector<Action> Trace = recordTrace(L.P, L.Threads, L.Ops);
    double Inc = checkTrace(L.P, Trace, false, 0);
    double Full = checkTrace(L.P, Trace, true, 0);
    std::printf("%-22s %10zu %12.3f %12.3f %7.1fx\n", programName(L.P),
                Trace.size(), Inc, Full, Inc > 0 ? Full / Inc : 0);
    jsonRow(std::string(programName(L.P)) + "-incremental", L.Threads,
            Trace.size(), Inc);
    jsonRow(std::string(programName(L.P)) + "-full-rebuild", L.Threads,
            Trace.size(), Full);
  }
  hr();

  std::printf("\nAblation B: audit period (BLinkTree trace)\n\n");
  std::printf("%-14s %12s\n", "audit period", "CPU seconds");
  hr('-', 30);
  {
    std::vector<Action> Trace =
        recordTrace(Program::P_BLinkTree, 4, Args.Quick ? 300 : 1200);
    std::vector<unsigned> Periods =
        Args.Quick ? std::vector<unsigned>{0u, 16u}
                   : std::vector<unsigned>{0u, 1024u, 256u, 64u, 16u, 4u, 1u};
    for (unsigned Period : Periods) {
      double T = checkTrace(Program::P_BLinkTree, Trace, false, Period);
      if (Period)
        std::printf("%-14u %12.3f\n", Period, T);
      else
        std::printf("%-14s %12.3f\n", "off", T);
      jsonRow("audit-period-" +
                  (Period ? std::to_string(Period) : std::string("off")),
              4, Trace.size(), T);
    }
  }
  hr('-', 30);

  std::printf("\nAblation C: log backend cost (Cache workload, CPU "
              "seconds)\n\n");
  {
    WorkloadOptions WO;
    WO.Threads = 4;
    WO.OpsPerThread = Args.Quick ? 400 : 2500;
    WO.KeyPoolSize = 24;
    WO.Seed = 17;
    auto TimeMode = [&](const char *Label, const char *Cfg,
                        const std::string &Path) {
      ScenarioOptions SO;
      SO.Prog = Program::P_Cache;
      SO.Mode = RunMode::RM_LogOnlyView;
      SO.LogPath = Path;
      uint64_t Records = 0;
      Timed T = timed([&] {
        auto [WRes, Rep] = runScenario(SO, WO, false);
        (void)WRes;
        Records = Rep.LogRecords;
      });
      double Secs = T.Cpu > 0 ? T.Cpu : T.Wall;
      std::printf("%-22s %10.3f\n", Label, Secs);
      jsonRow(Cfg, WO.Threads, Records, Secs);
    };
    TimeMode("MemoryLog", "backend-memory", "");
    std::string Path =
        "/tmp/vyrd-ablc-" + std::to_string(getpid()) + ".bin";
    TimeMode("FileLog (serialized)", "backend-file", Path);
    std::remove(Path.c_str());
  }
  std::printf("\nExpected shape: incremental maintenance beats full "
              "rebuilds by a factor that\ngrows with structure size; "
              "frequent audits approach full-rebuild cost. With no\n"
              "consumer draining the log, FileLog (compact serialized "
              "bytes, no retained tail)\ntypically beats MemoryLog "
              "(which must retain every structured record).\n");
  return BJ.write() ? 0 : 1;
}
