# Empty dependencies file for micro_vyrd.
# This may be replaced when dependencies are built.
