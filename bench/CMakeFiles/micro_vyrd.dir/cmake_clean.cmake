file(REMOVE_RECURSE
  "CMakeFiles/micro_vyrd.dir/micro_vyrd.cpp.o"
  "CMakeFiles/micro_vyrd.dir/micro_vyrd.cpp.o.d"
  "micro_vyrd"
  "micro_vyrd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_vyrd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
