# Empty dependencies file for table2_logging.
# This may be replaced when dependencies are built.
