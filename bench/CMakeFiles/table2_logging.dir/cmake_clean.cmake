file(REMOVE_RECURSE
  "CMakeFiles/table2_logging.dir/table2_logging.cpp.o"
  "CMakeFiles/table2_logging.dir/table2_logging.cpp.o.d"
  "table2_logging"
  "table2_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
