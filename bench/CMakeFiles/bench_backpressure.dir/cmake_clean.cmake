file(REMOVE_RECURSE
  "CMakeFiles/bench_backpressure.dir/bench_backpressure.cpp.o"
  "CMakeFiles/bench_backpressure.dir/bench_backpressure.cpp.o.d"
  "bench_backpressure"
  "bench_backpressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_backpressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
