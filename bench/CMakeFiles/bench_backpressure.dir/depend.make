# Empty dependencies file for bench_backpressure.
# This may be replaced when dependencies are built.
