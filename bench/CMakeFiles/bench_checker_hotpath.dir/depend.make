# Empty dependencies file for bench_checker_hotpath.
# This may be replaced when dependencies are built.
