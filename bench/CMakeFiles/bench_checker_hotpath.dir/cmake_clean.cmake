file(REMOVE_RECURSE
  "CMakeFiles/bench_checker_hotpath.dir/bench_checker_hotpath.cpp.o"
  "CMakeFiles/bench_checker_hotpath.dir/bench_checker_hotpath.cpp.o.d"
  "bench_checker_hotpath"
  "bench_checker_hotpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_checker_hotpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
