file(REMOVE_RECURSE
  "CMakeFiles/ablation_quiescent.dir/ablation_quiescent.cpp.o"
  "CMakeFiles/ablation_quiescent.dir/ablation_quiescent.cpp.o.d"
  "ablation_quiescent"
  "ablation_quiescent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quiescent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
