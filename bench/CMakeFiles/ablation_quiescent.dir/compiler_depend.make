# Empty compiler generated dependencies file for ablation_quiescent.
# This may be replaced when dependencies are built.
