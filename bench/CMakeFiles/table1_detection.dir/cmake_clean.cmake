file(REMOVE_RECURSE
  "CMakeFiles/table1_detection.dir/table1_detection.cpp.o"
  "CMakeFiles/table1_detection.dir/table1_detection.cpp.o.d"
  "table1_detection"
  "table1_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
