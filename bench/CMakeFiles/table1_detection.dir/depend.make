# Empty dependencies file for table1_detection.
# This may be replaced when dependencies are built.
