file(REMOVE_RECURSE
  "CMakeFiles/table3_breakdown.dir/table3_breakdown.cpp.o"
  "CMakeFiles/table3_breakdown.dir/table3_breakdown.cpp.o.d"
  "table3_breakdown"
  "table3_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
