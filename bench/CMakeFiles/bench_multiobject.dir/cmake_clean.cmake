file(REMOVE_RECURSE
  "CMakeFiles/bench_multiobject.dir/bench_multiobject.cpp.o"
  "CMakeFiles/bench_multiobject.dir/bench_multiobject.cpp.o.d"
  "bench_multiobject"
  "bench_multiobject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiobject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
