# Empty dependencies file for bench_multiobject.
# This may be replaced when dependencies are built.
