file(REMOVE_RECURSE
  "CMakeFiles/ablation_views.dir/ablation_views.cpp.o"
  "CMakeFiles/ablation_views.dir/ablation_views.cpp.o.d"
  "ablation_views"
  "ablation_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
