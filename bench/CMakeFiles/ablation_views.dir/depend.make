# Empty dependencies file for ablation_views.
# This may be replaced when dependencies are built.
