# Empty compiler generated dependencies file for bench_log_backends.
# This may be replaced when dependencies are built.
