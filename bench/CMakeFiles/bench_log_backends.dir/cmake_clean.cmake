file(REMOVE_RECURSE
  "CMakeFiles/bench_log_backends.dir/bench_log_backends.cpp.o"
  "CMakeFiles/bench_log_backends.dir/bench_log_backends.cpp.o.d"
  "bench_log_backends"
  "bench_log_backends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_backends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
