//===- micro_vyrd.cpp - Micro-benchmarks of the VYRD core ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the hot paths: log append, record
// encode/decode, incremental view updates, hash-based view comparison,
// and end-to-end checker feed throughput.
//
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Checker.h"
#include "vyrd/Log.h"
#include "vyrd/Serialize.h"
#include "vyrd/View.h"

#include <benchmark/benchmark.h>

using namespace vyrd;

static void BM_MemoryLogAppend(benchmark::State &State) {
  Name M = internName("bench.m");
  for (auto _ : State) {
    State.PauseTiming();
    MemoryLog L;
    State.ResumeTiming();
    for (int I = 0; I < 1000; ++I)
      L.append(Action::call(0, M, {Value(I)}));
  }
  State.SetItemsProcessed(State.iterations() * 1000);
}
BENCHMARK(BM_MemoryLogAppend);

static void BM_ActionEncode(benchmark::State &State) {
  Name M = internName("bench.encode");
  Action A = Action::call(3, M, {Value(42), Value("argument")});
  ActionEncoder Enc;
  ByteWriter W;
  for (auto _ : State) {
    W.clear();
    Enc.encode(A, W);
    benchmark::DoNotOptimize(W.buffer().data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ActionEncode);

static void BM_ActionRoundTrip(benchmark::State &State) {
  Name M = internName("bench.rt");
  Action A = Action::write(1, M, Value(Value::Bytes(64, 0xAB)));
  for (auto _ : State) {
    ActionEncoder Enc;
    ByteWriter W;
    Enc.encode(A, W);
    ByteReader R(W.buffer().data(), W.size());
    ActionDecoder Dec;
    Action Out;
    bool Ok = Dec.decode(R, Out);
    benchmark::DoNotOptimize(Ok);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ActionRoundTrip);

static void BM_ViewAddRemove(benchmark::State &State) {
  View V;
  int64_t K = 0;
  for (auto _ : State) {
    V.add(Value(K % 4096), Value());
    V.remove(Value(K % 4096), Value());
    ++K;
  }
  State.SetItemsProcessed(State.iterations() * 2);
}
BENCHMARK(BM_ViewAddRemove);

static void BM_ViewHashCompare(benchmark::State &State) {
  View A, B;
  for (int I = 0; I < State.range(0); ++I) {
    A.add(Value(I), Value(I * 3));
    B.add(Value(I), Value(I * 3));
  }
  for (auto _ : State) {
    bool Eq = A == B;
    benchmark::DoNotOptimize(Eq);
  }
}
BENCHMARK(BM_ViewHashCompare)->Arg(16)->Arg(1024)->Arg(65536);

static void BM_ViewDeepCompare(benchmark::State &State) {
  View A, B;
  for (int I = 0; I < State.range(0); ++I) {
    A.add(Value(I), Value(I * 3));
    B.add(Value(I), Value(I * 3));
  }
  for (auto _ : State) {
    bool Eq = A.deepEquals(B);
    benchmark::DoNotOptimize(Eq);
  }
}
BENCHMARK(BM_ViewDeepCompare)->Arg(16)->Arg(1024)->Arg(65536);

/// End-to-end feed throughput: a pre-recorded multiset trace through the
/// view-refinement checker.
static void BM_CheckerFeed(benchmark::State &State) {
  // Record the trace once.
  static std::vector<Action> *Trace = [] {
    auto *T = new std::vector<Action>();
    MemoryLog L;
    multiset::ArrayMultiset::Options MO;
    MO.Capacity = 32;
    multiset::ArrayMultiset M(MO, Hooks(&L, LogLevel::LL_View));
    for (int I = 0; I < 500; ++I) {
      M.insert(I % 40);
      M.lookUp(I % 40);
      if (I % 2)
        M.remove(I % 40);
    }
    L.close();
    Action A;
    while (L.next(A))
      T->push_back(A);
    return T;
  }();

  for (auto _ : State) {
    multiset::MultisetSpec Spec;
    auto Replay = KeyValueReplayer::guardedBag("A");
    RefinementChecker C(Spec, Replay.get(), CheckerConfig{});
    for (const Action &A : *Trace)
      C.feed(A);
    C.finish();
    if (C.hasViolation())
      State.SkipWithError("unexpected violation");
  }
  State.SetItemsProcessed(State.iterations() * Trace->size());
}
BENCHMARK(BM_CheckerFeed);

BENCHMARK_MAIN();
