//===- quickstart.cpp - VYRD in 80 lines -----------------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: verify the paper's running example — the concurrent array
// multiset — at runtime. We run the buggy FindSlot variant (Fig. 5) under a
// random workload with view refinement checking and watch VYRD catch the
// lost-update race; then we run the corrected code and see a clean report.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [log-file]
//
// With a log-file argument, the final (clean) run records its log there
// and enables pipeline telemetry, so the report below the verdict shows
// the metric snapshot and the file can be fed to vyrd-trace / vyrd-check.
// --segment-bytes N additionally rotates that log into numbered segment
// files every N bytes (docs/LOGFORMAT.md); the tools walk the chain.
// --adaptive turns on the self-tuning pipeline for the final run: the
// pump's batch target follows the live checker lag and the admission
// policy escalates under sustained backlog (the report then carries an
// "adaptive:" section with the batch-target high-water mark and any
// policy transitions).
// --monitor-socket PATH serves the live monitor endpoint during the
// final run (attach with `vyrd-mon --socket PATH top`), holding it open
// for --monitor-hold-ms before finishing. --forensics PREFIX makes the
// buggy run flush a `PREFIX.<object>.forensic.json` bundle when the
// violation fires (docs/OBSERVABILITY.md, "Violation forensics").
// --ship ENDPOINT (with a log-file and --segment-bytes) streams the
// final run's closed segments to a running vyrd-checkd at unix:<path> /
// tcp:<host>:<port> instead of checking locally; the verdict then lives
// in the daemon's `<name>.report.json` (--ship-name NAME, default
// "stream"; docs/SHIPPING.md).
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"
#include "harness/Workload.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "queue/BoundedQueue.h"
#include "queue/QueueSpec.h"
#include "vyrd/Vyrd.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace vyrd;
using namespace vyrd::harness;

// The README's "Quickstart in code" section quotes the body of this
// function verbatim; it is compiled here so the documentation cannot rot.
static void readmeQuickstart() {
  // 1. One verifier, one log, any number of verified objects: register
  //    each structure (spec + replayer) and get hooks bound to its id.
  VerifierConfig VC;                    // view refinement by default
  VC.Backend = LogBackend::LB_Buffered; // sharded lock-free log
  VC.CheckerThreads = 2;                // check the objects in parallel
  Verifier V(VC);
  Hooks HM = V.registerObject(
      "multiset", std::make_unique<multiset::MultisetSpec>(),
      KeyValueReplayer::guardedBag("A"));
  Hooks HQ = V.registerObject("queue",
                              std::make_unique<queue::QueueSpec>(16),
                              KeyValueReplayer::map("q"));
  V.start();

  // 2. The instrumented implementations log through their object's hooks.
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 48; // the generic replayer sizes its shadow on demand
  multiset::ArrayMultiset M(MO, HM);
  queue::BoundedQueue::Options QO;
  QO.Capacity = 16; // must match the spec's capacity
  queue::BoundedQueue Q(QO, HQ);

  // 3. Hammer them from as many threads as you like ...
  M.insert(7);
  Q.offer(42);
  M.lookUp(7);
  Q.poll();

  // 4. ... and collect the verdict, attributed per object.
  VerifierReport R = V.finish();
  if (!R.ok())
    std::puts(R.Violations.front().str().c_str());
}

struct RunExtras {
  std::string LogPath;
  uint64_t SegmentBytes = 0;
  bool Snapshots = false;
  bool Adaptive = false; // self-tuning pump batches + policy escalation
  std::string MonitorSocket; // live vyrd-mon endpoint (implies telemetry)
  uint64_t MonitorHoldMs = 0; // keep the monitor up this long pre-finish
  std::string ForensicPrefix; // flush *.forensic.json on violation
  std::string ShipEndpoint;  // stream segments to a vyrd-checkd service
  std::string ShipName;      // session name at the service
};

static VerifierReport runOnce(bool Buggy, uint64_t Seed,
                              const RunExtras &X = {}) {
  const std::string &LogPath = X.LogPath;
  // 1. Build the scenario: instrumented multiset + atomic specification +
  //    replayer + online verification thread, all wired to one log.
  ScenarioOptions SO;
  SO.Prog = Program::P_MultisetVector;
  SO.Mode = RunMode::RM_OnlineView; // I/O + view refinement
  SO.Buggy = Buggy;
  SO.LogPath = LogPath; // durable log (when set), reusable by the tools
  SO.Telemetry.Enabled = !LogPath.empty(); // docs/OBSERVABILITY.md
  // A live monitor endpoint reads telemetry, so attaching one implies it.
  SO.Monitor.SocketPath = X.MonitorSocket;
  if (!X.MonitorSocket.empty())
    SO.Telemetry.Enabled = true;
  SO.ForensicPrefix = X.ForensicPrefix;
  // Rotate the durable log into numbered segments (docs/LOGFORMAT.md,
  // "Segmented chains"); the tools walk the chain transparently. Keep
  // the whole chain: this log exists to be re-read, so checked-prefix
  // reclamation would defeat the point.
  SO.Backpressure.SegmentBytes = X.SegmentBytes;
  SO.Backpressure.ReclaimSegments = false;
  // Snapshot sidecars at every rotation make the recorded chain
  // restartable and epoch-checkable (docs/SNAPSHOTS.md).
  SO.Snapshots = X.Snapshots;
  // Self-tuning pipeline (docs/ARCHITECTURE.md, "The self-tuning
  // pipeline"): the pump's batch target follows the live checker lag,
  // and with a bounded queue the admission policy escalates
  // block -> spill -> shed under sustained backlog and walks back down
  // once the checker catches up. Every transition lands in the report.
  if (X.Adaptive) {
    SO.Adaptive.Enabled = true;
    SO.Adaptive.EscalatePolicy = true;
    SO.Backpressure.Enabled = true;
  }
  // Remote checking (docs/SHIPPING.md): closed segments stream to the
  // vyrd-checkd at this endpoint, which acks per-segment watermarks; the
  // verdict lives in its session report. The chain stays on disk
  // (ReclaimSegments is off above) so a from-zero `vyrd-check` can
  // cross-check the remote verdict afterwards.
  SO.Shipping.Endpoint = X.ShipEndpoint;
  SO.Shipping.StreamName = X.ShipName;
  Scenario S = makeScenario(SO);

  // 2. Drive it with the paper's random test harness (Sec. 7.1): several
  //    threads hammer the same instance with a shrinking key pool. The
  //    chaos scheduler injects yields so races fire even on one core.
  Chaos::enable(/*Inverse=*/4, /*Seed=*/Seed);
  WorkloadOptions WO;
  WO.Threads = 8;
  WO.OpsPerThread = 400;
  WO.KeyPoolSize = 24;
  WO.Seed = Seed;
  WO.StopOnViolation = S.V; // stop as soon as an error is caught
  WorkloadResult R = runWorkload(WO, S.Op);
  Chaos::disable();

  // Hold the monitor endpoint open so an external vyrd-mon can attach
  // deterministically before finish() tears the verifier down (CI does
  // exactly this: quickstart in the background, vyrd-mon --wait).
  if (!X.MonitorSocket.empty() && X.MonitorHoldMs)
    std::this_thread::sleep_for(
        std::chrono::milliseconds(X.MonitorHoldMs));

  // 3. Collect the verdict.
  VerifierReport Rep = S.Finish();
  std::printf("  issued %llu method calls in %.3fs\n",
              static_cast<unsigned long long>(R.OpsIssued), R.Seconds);
  return Rep;
}

int main(int Argc, char **Argv) {
  RunExtras X;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--segment-bytes" && I + 1 < Argc) {
      X.SegmentBytes = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--snapshots") {
      X.Snapshots = true;
    } else if (Arg == "--adaptive") {
      X.Adaptive = true;
    } else if (Arg == "--monitor-socket" && I + 1 < Argc) {
      X.MonitorSocket = Argv[++I];
    } else if (Arg == "--monitor-hold-ms" && I + 1 < Argc) {
      X.MonitorHoldMs = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--forensics" && I + 1 < Argc) {
      X.ForensicPrefix = Argv[++I];
    } else if (Arg == "--ship" && I + 1 < Argc) {
      X.ShipEndpoint = Argv[++I];
    } else if (Arg == "--ship-name" && I + 1 < Argc) {
      X.ShipName = Argv[++I];
    } else if (!Arg.empty() && Arg[0] != '-' && X.LogPath.empty()) {
      X.LogPath = Arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s [log-file] [--segment-bytes N] [--snapshots] "
                   "[--adaptive] [--monitor-socket PATH] "
                   "[--monitor-hold-ms N] [--forensics PREFIX] "
                   "[--ship ENDPOINT] [--ship-name NAME]\n",
                   Argv[0]);
      return 2;
    }
  }
  if (X.Snapshots && X.SegmentBytes == 0) {
    std::fprintf(stderr, "error: --snapshots requires --segment-bytes\n");
    return 2;
  }
  if (!X.ShipEndpoint.empty() &&
      (X.LogPath.empty() || X.SegmentBytes == 0 || X.Snapshots)) {
    std::fprintf(stderr, "error: --ship requires a log-file and "
                         "--segment-bytes, and excludes --snapshots\n");
    return 2;
  }
  std::printf("== the README snippet (correct multiset, four calls) ==\n");
  readmeQuickstart();
  std::printf("  clean\n\n");

  std::printf("== buggy multiset (Fig. 5: FindSlot reserves without "
              "re-checking) ==\n");
  bool Caught = false;
  for (uint64_t Seed = 1; Seed <= 20 && !Caught; ++Seed) {
    // Forensics apply to the buggy run: a violation there flushes its
    // flight-recorder bundle (telemetry is needed for the prefix run
    // only if a monitor is attached, which main() wires to the clean
    // run instead).
    RunExtras BX;
    BX.ForensicPrefix = X.ForensicPrefix;
    VerifierReport Rep = runOnce(/*Buggy=*/true, Seed, BX);
    if (!Rep.ok()) {
      Caught = true;
      std::printf("  VYRD caught the bug (seed %llu):\n",
                  static_cast<unsigned long long>(Seed));
      std::printf("    %s\n", Rep.Violations.front().str().c_str());
      for (const std::string &F : Rep.ForensicFiles)
        std::printf("    forensics: %s\n", F.c_str());
    }
  }
  if (!Caught) {
    std::printf("  bug did not fire in 20 seeds (unexpected)\n");
    return 1;
  }

  std::printf("\n== corrected multiset ==\n");
  RunExtras CX = X;
  CX.ForensicPrefix.clear(); // the clean run has nothing to flush
  VerifierReport Rep = runOnce(/*Buggy=*/false, 1, CX);
  std::printf("  %s", Rep.str().c_str());
  if (!X.LogPath.empty())
    std::printf("  log recorded to %s (try vyrd-trace / vyrd-check)\n",
                X.LogPath.c_str());
  return Rep.ok() ? 0 : 1;
}
