//===- commit_point_debugging.cpp - The Sec. 4.1 debugging loop ------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// "The runtime refinement check could fail either because the
//  implementation truly does not refine the specification or because the
//  witness interleaving obtained using the commit actions is wrong.
//  Comparing the witness interleaving with the implementation trace
//  reveals which one is the case. [...] We have found this iterative
//  process very useful for debugging code that is in development."
//                                                     — Sec. 4.1
//
// This example walks that loop on two hand-written traces of the multiset
// (the checker only ever sees the log, so traces can be scripted):
//
//  1. a *mis-annotated* trace — Delete(5) commits before the Insert(5) it
//     actually raced with, though its effect lands later: the checker
//     reports the mismatch and diagnoses "commit point likely too early";
//  2. a *genuinely wrong* trace — Delete(7) claims success though 7 never
//     existed: the diagnosis says "likely a genuine refinement violation".
//
//===----------------------------------------------------------------------===//

#include "vyrd/Auto.h"
#include "multiset/MultisetSpec.h"
#include "vyrd/Vyrd.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

std::vector<Action> withSeqs(std::vector<Action> S) {
  for (size_t I = 0; I < S.size(); ++I)
    S[I].Seq = I;
  return S;
}

/// Thread 0's Delete(5) is annotated to commit immediately on entry —
/// before thread 1's Insert(5) commits — but its writes (and its return)
/// happen after. The witness therefore tries Delete(5) on an empty
/// multiset.
std::vector<Action> misannotatedTrace() {
  Vocab V = Vocab::get();
  return withSeqs({
      Action::call(0, V.Delete, {Value(5)}),
      Action::commit(0), // <- the annotation under suspicion
      Action::call(1, V.Insert, {Value(5)}),
      Action::write(1, Vocab::eltName(0), Value(5)),
      Action::blockBegin(1),
      Action::write(1, Vocab::validName(0), Value(true)),
      Action::commit(1),
      Action::blockEnd(1),
      Action::ret(1, V.Insert, Value(true)),
      // Delete's physical effect happens only now...
      Action::write(0, Vocab::validName(0), Value(false)),
      Action::write(0, Vocab::eltName(0), Value()),
      // ...and it returns success.
      Action::ret(0, V.Delete, Value(true)),
  });
}

/// Delete(7) claims success but no Insert(7) exists anywhere.
std::vector<Action> genuinelyWrongTrace() {
  Vocab V = Vocab::get();
  return withSeqs({
      Action::call(0, V.Delete, {Value(7)}),
      Action::commit(0),
      Action::call(1, V.Insert, {Value(8)}),
      Action::write(1, Vocab::eltName(0), Value(8)),
      Action::blockBegin(1),
      Action::write(1, Vocab::validName(0), Value(true)),
      Action::commit(1),
      Action::blockEnd(1),
      Action::ret(1, V.Insert, Value(true)),
      Action::ret(0, V.Delete, Value(true)),
  });
}

void checkAndExplain(const char *Title, const std::vector<Action> &Trace) {
  std::printf("== %s ==\n", Title);
  MultisetSpec Spec;
  auto Replay = KeyValueReplayer::guardedBag("A");
  CheckerConfig CC;
  CC.ContextRecords = 12; // attach the trace tail to the report
  RefinementChecker C(Spec, Replay.get(), CC);
  for (const Action &A : Trace)
    C.feed(A);
  C.finish();
  if (!C.hasViolation()) {
    std::printf("  unexpectedly clean\n\n");
    return;
  }
  const Violation &V = C.violations().front();
  std::printf("  %s\n", V.str().c_str());
  std::printf("  trace context:\n");
  // Indent the attached context for readability.
  std::string Line;
  for (char Ch : V.Context) {
    if (Ch == '\n') {
      std::printf("    %s\n", Line.c_str());
      Line.clear();
    } else {
      Line.push_back(Ch);
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  checkAndExplain("trace 1: suspected mis-annotation", misannotatedTrace());
  std::printf("The diagnosis says the signature became enabled one commit "
              "later: move the\ncommit annotation to the Delete's actual "
              "effect (its valid-bit write) and\nre-run — the paper's "
              "iterative loop.\n\n");

  checkAndExplain("trace 2: genuine violation", genuinelyWrongTrace());
  std::printf("Here the diagnosis says the signature never became enabled "
              "in the window:\nno choice of commit point explains the "
              "return value — a real bug.\n");
  return 0;
}
