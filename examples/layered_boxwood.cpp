//===- layered_boxwood.cpp - Modular verification of a storage stack -------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sec. 7.2's modular approach, both layers at once: the Cache is verified
// against the abstract block-store specification (in dynamic-handle mode,
// with the Sec. 7.2.1 invariants) *while* the B-link tree running on top
// of that same cache is verified against the atomic ordered-map
// specification. Each layer has its own verifier, log and verification
// thread; each layer's check assumes nothing about the other beyond its
// specification.
//
// The demo runs the stack clean, then injects the Boxwood cache bug at
// the *bottom* layer and shows the CACHE's verifier catching it —
// pinpointing the faulty module, which is the point of verifying
// modularly.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BLinkSpec.h"
#include "blinktree/BLinkTree.h"
#include "cache/BoxCache.h"
#include "cache/CacheSpec.h"
#include "chunk/ChunkManager.h"
#include "harness/Workload.h"
#include "vyrd/Vyrd.h"

#include <cstdio>

using namespace vyrd;

namespace {

struct Outcome {
  VerifierReport CacheReport;
  VerifierReport TreeReport;
};

Outcome runStack(bool BuggyCache, uint64_t Seed, bool StopEarly) {
  chunk::ChunkManager CM;

  // Layer 1: the cache, verified against the abstract store. Dynamic
  // mode: the tree above allocates blocks at runtime, so handles register
  // themselves on first use.
  VerifierConfig CacheVC;
  CacheVC.Checker.Mode = CheckMode::CM_ViewRefinement;
  CacheVC.Checker.StopAtFirstViolation = StopEarly;
  Verifier CacheV(std::make_unique<cache::CacheSpec>(),
                  std::make_unique<cache::CacheReplayer>(), CacheVC);
  CacheV.start();
  cache::BoxCache::Options CO;
  CO.ChunkSize = 512;
  CO.BuggyUnprotectedCopy = BuggyCache;
  cache::BoxCache Cache(CM, CO, CacheV.hooks());

  // Layer 2: the tree, verified against the ordered map, running over
  // the *instrumented* cache. On a fresh chunk manager the tree's first
  // allocation — its initial root leaf — is handle 1.
  VerifierConfig TreeVC;
  TreeVC.Checker.Mode = CheckMode::CM_ViewRefinement;
  TreeVC.Checker.StopAtFirstViolation = StopEarly;
  Verifier TreeV(std::make_unique<blinktree::BLinkSpec>(),
                 std::make_unique<blinktree::BLinkReplayer>(1), TreeVC);
  TreeV.start();
  blinktree::BLinkTree::Options TO;
  TO.MaxLeafKeys = 8;
  blinktree::BLinkTree Tree(Cache, CM, TO, TreeV.hooks());

  Chaos::enable(4, Seed);
  harness::WorkloadOptions WO;
  WO.Threads = 6;
  WO.OpsPerThread = 250;
  WO.KeyPoolSize = 24;
  WO.KeyRange = 4096;
  WO.Seed = Seed;
  WO.BackgroundOp = [&] {
    Cache.flush(); // the syncer keeps the dirty-path bug hot
    Tree.compress();
  };
  if (StopEarly)
    WO.StopOnViolation = &CacheV;
  harness::runWorkload(
      WO, [&](harness::Rng &R, int64_t K1, int64_t, double) {
        unsigned Dice = static_cast<unsigned>(R.range(100));
        if (Dice < 50)
          Tree.insert(K1, chunk::Bytes{static_cast<uint8_t>(K1)});
        else if (Dice < 70)
          Tree.remove(K1);
        else
          Tree.lookup(K1);
      });
  Chaos::disable();

  Outcome O;
  O.CacheReport = CacheV.finish();
  O.TreeReport = TreeV.finish();
  return O;
}

} // namespace

int main() {
  std::printf("== Boxwood stack, both layers verified (correct) ==\n");
  Outcome Clean = runStack(false, 1, false);
  std::printf("  cache layer: %s", Clean.CacheReport.str().c_str());
  std::printf("  tree  layer: %s", Clean.TreeReport.str().c_str());
  if (!Clean.CacheReport.ok() || !Clean.TreeReport.ok())
    return 1;

  std::printf("\n== same stack with the cache bug injected at the bottom "
              "layer ==\n");
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Outcome Buggy = runStack(true, Seed, true);
    if (!Buggy.CacheReport.ok()) {
      std::printf("  the CACHE verifier caught it (seed %llu):\n    %s\n",
                  static_cast<unsigned long long>(Seed),
                  Buggy.CacheReport.Violations.front().str().c_str());
      std::printf("  (modular verification pinpoints the faulty layer)\n");
      return 0;
    }
  }
  std::printf("  bug did not fire in 20 seeds (unexpected)\n");
  return 1;
}
