//===- fs_cache.cpp - A verified write-back file cache ---------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Domain example in the spirit of the Scan file system (Sec. 7.3): a
// write-back file cache over stable storage. "Files" are fixed blocks in
// the Chunk Manager; application threads read and overwrite them through
// the Boxwood-style cache; a background "syncer" thread continuously
// flushes dirty blocks to storage and periodically evicts clean ones —
// exactly the environment in which both Scan's and Boxwood's cache bugs
// lived.
//
// VYRD checks the cache+storage system against an atomic block-store
// specification and evaluates the two Sec. 7.2.1 invariants at every
// commit. The demo runs the correct cache clean, then the Boxwood bug
// (unprotected in-place copy racing the flusher) and shows invariant (i)
// firing at the flush that persists a torn block.
//
//===----------------------------------------------------------------------===//

#include "cache/BoxCache.h"
#include "cache/CacheSpec.h"
#include "chunk/ChunkManager.h"
#include "harness/Workload.h"
#include "vyrd/Vyrd.h"

#include <cstdio>

using namespace vyrd;
using namespace vyrd::cache;

namespace {

/// A "file block" payload: recognizable, block-sized content.
Bytes blockContent(uint64_t File, uint64_t Generation) {
  Bytes B(48);
  for (size_t I = 0; I < B.size(); ++I)
    B[I] = static_cast<uint8_t>(File * 31 + Generation * 7 + I);
  return B;
}

VerifierReport runFs(bool Buggy, uint64_t Seed, bool StopEarly) {
  chunk::ChunkManager Disk;
  constexpr size_t NumFiles = 16;
  std::vector<uint64_t> Files;
  for (size_t I = 0; I < NumFiles; ++I)
    Files.push_back(Disk.allocate());

  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_ViewRefinement;
  VC.Checker.StopAtFirstViolation = StopEarly;
  Verifier V(std::make_unique<CacheSpec>(Files),
             std::make_unique<CacheReplayer>(Files), VC);
  V.start();

  BoxCache::Options CO;
  CO.ChunkSize = 64;
  CO.BuggyUnprotectedCopy = Buggy;
  BoxCache FileCache(Disk, CO, V.hooks());

  Chaos::enable(4, Seed);
  harness::WorkloadOptions WO;
  WO.Threads = 6;
  WO.OpsPerThread = 400;
  WO.KeyPoolSize = NumFiles;
  WO.Seed = Seed;
  // The syncer: continuously flush; evict now and then.
  unsigned SyncRound = 0;
  WO.BackgroundOp = [&] {
    FileCache.flush();
    if (++SyncRound % 8 == 0)
      FileCache.evict();
  };
  if (StopEarly)
    WO.StopOnViolation = &V;
  harness::runWorkload(
      WO, [&](harness::Rng &R, int64_t K1, int64_t K2, double) {
        uint64_t File = Files[static_cast<uint64_t>(K1) % NumFiles];
        if (R.percent(60)) {
          FileCache.write(File,
                          blockContent(File, static_cast<uint64_t>(K2)));
        } else {
          Bytes Out;
          FileCache.read(File, Out);
        }
      });
  Chaos::disable();
  return V.finish();
}

} // namespace

int main() {
  std::printf("== write-back file cache over stable storage (correct) "
              "==\n");
  VerifierReport Clean = runFs(/*Buggy=*/false, 1, false);
  std::printf("  %s", Clean.str().c_str());
  if (!Clean.ok())
    return 1;

  std::printf("\n== with the unprotected in-place copy (the bug VYRD "
              "found in Boxwood's cache) ==\n");
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    VerifierReport Rep = runFs(true, Seed, true);
    if (!Rep.ok()) {
      std::printf("  VYRD caught it (seed %llu):\n    %s\n",
                  static_cast<unsigned long long>(Seed),
                  Rep.Violations.front().str().c_str());
      std::printf("\n  (A torn block was persisted while the entry was "
                  "marked clean — found\n   without any read ever "
                  "returning wrong data, Sec. 7.2.2.)\n");
      return 0;
    }
  }
  std::printf("  bug did not fire in 20 seeds (unexpected)\n");
  return 1;
}
