# Empty dependencies file for layered_boxwood.
# This may be replaced when dependencies are built.
