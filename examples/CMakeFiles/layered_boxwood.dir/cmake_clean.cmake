file(REMOVE_RECURSE
  "CMakeFiles/layered_boxwood.dir/layered_boxwood.cpp.o"
  "CMakeFiles/layered_boxwood.dir/layered_boxwood.cpp.o.d"
  "layered_boxwood"
  "layered_boxwood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layered_boxwood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
