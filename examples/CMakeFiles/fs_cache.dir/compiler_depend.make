# Empty compiler generated dependencies file for fs_cache.
# This may be replaced when dependencies are built.
