file(REMOVE_RECURSE
  "CMakeFiles/fs_cache.dir/fs_cache.cpp.o"
  "CMakeFiles/fs_cache.dir/fs_cache.cpp.o.d"
  "fs_cache"
  "fs_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
