# Empty dependencies file for kvstore_blinktree.
# This may be replaced when dependencies are built.
