# Empty compiler generated dependencies file for kvstore_blinktree.
# This may be replaced when dependencies are built.
