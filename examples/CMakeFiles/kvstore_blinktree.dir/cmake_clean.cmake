file(REMOVE_RECURSE
  "CMakeFiles/kvstore_blinktree.dir/kvstore_blinktree.cpp.o"
  "CMakeFiles/kvstore_blinktree.dir/kvstore_blinktree.cpp.o.d"
  "kvstore_blinktree"
  "kvstore_blinktree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_blinktree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
