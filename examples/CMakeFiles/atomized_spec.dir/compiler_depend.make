# Empty compiler generated dependencies file for atomized_spec.
# This may be replaced when dependencies are built.
