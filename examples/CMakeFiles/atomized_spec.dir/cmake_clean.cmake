file(REMOVE_RECURSE
  "CMakeFiles/atomized_spec.dir/atomized_spec.cpp.o"
  "CMakeFiles/atomized_spec.dir/atomized_spec.cpp.o.d"
  "atomized_spec"
  "atomized_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomized_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
