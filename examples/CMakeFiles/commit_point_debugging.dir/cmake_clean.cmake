file(REMOVE_RECURSE
  "CMakeFiles/commit_point_debugging.dir/commit_point_debugging.cpp.o"
  "CMakeFiles/commit_point_debugging.dir/commit_point_debugging.cpp.o.d"
  "commit_point_debugging"
  "commit_point_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commit_point_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
