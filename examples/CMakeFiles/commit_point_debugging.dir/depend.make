# Empty dependencies file for commit_point_debugging.
# This may be replaced when dependencies are built.
