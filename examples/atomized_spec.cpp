//===- atomized_spec.cpp - The implementation as its own spec --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Sec. 4.4: when no separate specification exists, an *atomized* version
// of the implementation itself can serve as the specification — the same
// code forced to execute one method at a time behind a global lock, with
// the return value supplied as an argument.
//
// This example wires a second, globally-locked ArrayMultiset instance
// into VYRD's Spec interface and verifies the concurrent instance against
// it: no hand-written abstract model at all. The buggy FindSlot variant
// is still caught, because the atomized execution can never reproduce the
// lost-update interleaving.
//
//===----------------------------------------------------------------------===//

#include "harness/Workload.h"
#include "multiset/ArrayMultiset.h"
#include "vyrd/Auto.h"
#include "vyrd/Vyrd.h"

#include <cstdio>
#include <mutex>

using namespace vyrd;
using namespace vyrd::multiset;

namespace {

/// Sec. 4.4 adapter: drives an uninstrumented ArrayMultiset atomically
/// (one method at a time under a global lock) as the specification.
/// Methods take the implementation's return value and accept iff the
/// atomized execution can produce it; mutators replay their effect on the
/// atomized state.
class AtomizedMultisetSpec : public Spec {
public:
  explicit AtomizedMultisetSpec(size_t Capacity)
      : V(Vocab::get()), Inner(makeOptions(Capacity), Hooks()) {}

  bool isObserver(Name Method) const override {
    return Method == V.LookUp;
  }

  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override {
    std::lock_guard Lock(GlobalLock);
    if (!Ret.isBool())
      return false;
    // Exceptional terminations leave the state unchanged and are allowed
    // (the atomized run cannot tell whether contention was possible).
    if (!Ret.asBool())
      return Method == V.Insert || Method == V.InsertPair ||
             Method == V.Delete;

    bool Ok = false;
    if (Method == V.Insert && Args.size() == 1) {
      Ok = Inner.insert(Args[0].asInt());
    } else if (Method == V.InsertPair && Args.size() == 2) {
      Ok = Inner.insertPair(Args[0].asInt(), Args[1].asInt());
    } else if (Method == V.Delete && Args.size() == 1) {
      Ok = Inner.remove(Args[0].asInt());
    } else {
      return false;
    }
    if (!Ok)
      return false; // impl succeeded where the atomized run cannot

    // Maintain viewS from the atomized instance's contents.
    refreshView(ViewS);
    return true;
  }

  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override {
    std::lock_guard Lock(GlobalLock);
    if (Method != V.LookUp || Args.size() != 1 || !Ret.isBool())
      return false;
    return Inner.lookUp(Args[0].asInt()) == Ret.asBool();
  }

  void buildView(View &Out) const override {
    std::lock_guard Lock(GlobalLock);
    Out.clear();
    for (int64_t X : Inner.snapshot())
      Out.add(Value(X), Value());
  }

private:
  static ArrayMultiset::Options makeOptions(size_t Capacity) {
    ArrayMultiset::Options O;
    O.Capacity = Capacity;
    return O;
  }

  void refreshView(View &ViewS) {
    // Simple (non-incremental) viewS maintenance: rebuild from the
    // atomized instance. Fine for a demo; the hand-written spec shows the
    // incremental path.
    ViewS.clear();
    for (int64_t X : Inner.snapshot())
      ViewS.add(Value(X), Value());
  }

  Vocab V;
  mutable std::mutex GlobalLock;
  // The facade's dispatch is stateful, so even lookUp is non-const.
  mutable ArrayMultiset Inner;
};

VerifierReport runVerified(bool Buggy, uint64_t Seed, bool StopEarly) {
  constexpr size_t Capacity = 32;
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_ViewRefinement;
  VC.Checker.StopAtFirstViolation = StopEarly;
  Verifier V(std::make_unique<AtomizedMultisetSpec>(Capacity),
             KeyValueReplayer::guardedBag("A"), VC);
  V.start();

  ArrayMultiset::Options MO;
  MO.Capacity = Capacity;
  MO.BuggyFindSlot = Buggy;
  ArrayMultiset M(MO, V.hooks());

  Chaos::enable(4, Seed);
  harness::WorkloadOptions WO;
  WO.Threads = 8;
  WO.OpsPerThread = 300;
  WO.KeyPoolSize = 16;
  WO.Seed = Seed;
  if (StopEarly)
    WO.StopOnViolation = &V;
  harness::runWorkload(WO,
                       [&](harness::Rng &R, int64_t K1, int64_t K2,
                           double) {
                         unsigned Dice =
                             static_cast<unsigned>(R.range(100));
                         if (Dice < 30)
                           M.insert(K1);
                         else if (Dice < 50)
                           M.insertPair(K1, K2);
                         else if (Dice < 75)
                           M.remove(K1);
                         else
                           M.lookUp(K1);
                       });
  Chaos::disable();
  return V.finish();
}

} // namespace

int main() {
  std::printf("== multiset verified against its own atomized code "
              "(Sec. 4.4), correct ==\n");
  VerifierReport Clean = runVerified(false, 1, false);
  std::printf("  %s", Clean.str().c_str());
  if (!Clean.ok())
    return 1;

  std::printf("\n== same, with the Fig. 5 FindSlot bug ==\n");
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    VerifierReport Rep = runVerified(true, Seed, true);
    if (!Rep.ok()) {
      std::printf("  caught with no hand-written spec (seed %llu):\n"
                  "    %s\n",
                  static_cast<unsigned long long>(Seed),
                  Rep.Violations.front().str().c_str());
      return 0;
    }
  }
  std::printf("  bug did not fire in 20 seeds (unexpected)\n");
  return 1;
}
