//===- kvstore_blinktree.cpp - A verified key-value store ------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Domain example: a small key-value store built the Boxwood way — a
// concurrent B-link tree over the Cache + Chunk Manager storage stack —
// serving a mixed read/write workload from several "client" threads while
// a background compression thread re-arranges the tree.
//
// VYRD verifies the tree online against an atomic ordered-map
// specification (the modular approach of Sec. 7.2: the storage stack
// below is assumed correct). The demo then flips on the bug VYRD's
// authors studied for this module — inserts that can create duplicated
// data nodes — and shows the checker catching it, including the Fig. 9
// style conditional commit points in action.
//
//===----------------------------------------------------------------------===//

#include "blinktree/BLinkSpec.h"
#include "blinktree/BLinkTree.h"
#include "cache/BoxCache.h"
#include "chunk/ChunkManager.h"
#include "harness/Workload.h"
#include "vyrd/Vyrd.h"

#include <cstdio>
#include <string>

using namespace vyrd;
using namespace vyrd::blinktree;

namespace {

chunk::Bytes valueFor(const std::string &S) {
  return chunk::Bytes(S.begin(), S.end());
}

VerifierReport serveWorkload(bool Buggy, uint64_t Seed, unsigned Clients,
                             unsigned RequestsPerClient, bool StopEarly) {
  // The storage stack: chunk manager + (assumed-correct) cache.
  chunk::ChunkManager CM;
  cache::BoxCache::Options CO;
  CO.ChunkSize = 512;
  cache::BoxCache Cache(CM, CO, Hooks()); // uninstrumented

  // The verifier for the tree: atomic map spec + leaf-chain replayer.
  VerifierConfig VC;
  VC.Checker.Mode = CheckMode::CM_ViewRefinement;
  VC.Checker.StopAtFirstViolation = StopEarly;
  Verifier V(std::make_unique<BLinkSpec>(),
             std::make_unique<BLinkReplayer>(/*FirstLeafHandle=*/1), VC);
  V.start();

  BLinkTree::Options TO;
  TO.MaxLeafKeys = 8;
  TO.BuggyDuplicates = Buggy;
  BLinkTree Tree(Cache, CM, TO, V.hooks());

  Chaos::enable(4, Seed);
  harness::WorkloadOptions WO;
  WO.Threads = Clients;
  WO.OpsPerThread = RequestsPerClient;
  WO.KeyPoolSize = 32;
  WO.KeyRange = 10000;
  WO.Seed = Seed;
  WO.BackgroundOp = [&Tree] { Tree.compress(); };
  if (StopEarly)
    WO.StopOnViolation = &V;
  harness::WorkloadResult WR = harness::runWorkload(
      WO, [&](harness::Rng &R, int64_t K1, int64_t, double) {
        unsigned Dice = static_cast<unsigned>(R.range(100));
        if (Dice < 45) {
          Tree.insert(K1, valueFor("value-" + std::to_string(K1)));
        } else if (Dice < 65) {
          Tree.remove(K1);
        } else {
          Tree.lookup(K1);
        }
      });
  Chaos::disable();
  std::printf("  served %llu requests from %u clients (tree height %u)\n",
              static_cast<unsigned long long>(WR.OpsIssued), Clients,
              Tree.height());
  return V.finish();
}

} // namespace

int main() {
  std::printf("== key-value store on BLinkTree / Cache / ChunkManager "
              "(correct) ==\n");
  VerifierReport Clean = serveWorkload(/*Buggy=*/false, 1, 6, 500, false);
  std::printf("  %s", Clean.str().c_str());
  if (!Clean.ok())
    return 1;

  std::printf("\n== same store with the duplicated-data-nodes insert bug "
              "==\n");
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    VerifierReport Rep = serveWorkload(true, Seed, 6, 500, true);
    if (!Rep.ok()) {
      std::printf("  VYRD caught it (seed %llu):\n    %s\n",
                  static_cast<unsigned long long>(Seed),
                  Rep.Violations.front().str().c_str());
      return 0;
    }
  }
  std::printf("  bug did not fire in 20 seeds (unexpected)\n");
  return 1;
}
