//===- QueueSpec.cpp - Atomic spec + replayer for BoundedQueue -------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "queue/QueueSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::queue;

//===----------------------------------------------------------------------===//
// QueueSpec
//===----------------------------------------------------------------------===//

QueueSpec::QueueSpec(size_t Capacity)
    : V(QVocab::get()), Capacity(Capacity) {}

bool QueueSpec::isObserver(Name Method) const {
  return Method == V.Peek || Method == V.Size;
}

bool QueueSpec::applyMutator(Name Method, const ValueList &Args,
                             const Value &Ret, View &ViewS) {
  if (Method == V.Offer) {
    if (Args.size() != 1 || !Args[0].isInt() || !Ret.isBool())
      return false;
    if (!Ret.asBool())
      return true; // spurious failure: always permitted
    if (Q.size() >= Capacity)
      return false; // cannot succeed beyond capacity
    Q.push_back(Args[0].asInt());
    ViewS.add(Value(static_cast<int64_t>(NextIdx++)), Args[0]);
    return true;
  }

  if (Method == V.Poll) {
    if (!Args.empty())
      return false;
    if (Ret.isNull())
      return true; // spurious empty: always permitted
    if (!Ret.isInt() || Q.empty() || Q.front() != Ret.asInt())
      return false; // a successful poll must deliver the exact front
    ViewS.remove(Value(static_cast<int64_t>(HeadIdx++)),
                 Value(Q.front()));
    Q.pop_front();
    return true;
  }

  return false;
}

bool QueueSpec::returnAllowed(Name Method, const ValueList &Args,
                              const Value &Ret) const {
  if (!Args.empty())
    return false;
  if (Method == V.Peek) {
    if (Q.empty())
      return Ret.isNull();
    return Ret.isInt() && Ret.asInt() == Q.front();
  }
  if (Method == V.Size)
    return Ret.isInt() && Ret.asInt() == static_cast<int64_t>(Q.size());
  return false;
}

void QueueSpec::buildView(View &Out) const {
  Out.clear();
  uint64_t Idx = HeadIdx;
  for (int64_t X : Q)
    Out.add(Value(static_cast<int64_t>(Idx++)), Value(X));
}

//===----------------------------------------------------------------------===//
// Snapshot support
//===----------------------------------------------------------------------===//

namespace {

void saveIndexedDeque(ByteWriter &W, const std::deque<int64_t> &Q,
                      uint64_t HeadIdx, uint64_t NextIdx) {
  W.varint(HeadIdx);
  W.varint(NextIdx);
  W.varint(Q.size());
  for (int64_t X : Q)
    W.svarint(X);
}

bool loadIndexedDeque(ByteReader &R, std::deque<int64_t> &Q,
                      uint64_t &HeadIdx, uint64_t &NextIdx) {
  HeadIdx = R.varint();
  NextIdx = R.varint();
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24) || NextIdx - HeadIdx != N)
    return false;
  Q.clear();
  for (uint64_t I = 0; I < N; ++I)
    Q.push_back(R.svarint());
  return R.ok();
}

} // namespace

bool QueueSpec::saveState(ByteWriter &W) const {
  W.varint(Capacity);
  saveIndexedDeque(W, Q, HeadIdx, NextIdx);
  return true;
}

bool QueueSpec::loadState(ByteReader &R) {
  uint64_t Cap = R.varint();
  if (!R.ok())
    return false;
  Capacity = static_cast<size_t>(Cap);
  return loadIndexedDeque(R, Q, HeadIdx, NextIdx);
}
