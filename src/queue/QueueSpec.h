//===- QueueSpec.h - Atomic spec + replayer for BoundedQueue ----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic bounded FIFO sequence) for the BoundedQueue.
/// FIFO order is part of the view: entries are keyed by the element's
/// absolute enqueue index, so reordered or duplicated deliveries change
/// the view. The implementation side is replayed by the generic Map-shape
/// `KeyValueReplayer` over the auto-captured `q.set` / `q.del` records.
///
/// Permissiveness (Sec. 3's case for refinement over atomicity): offer
/// may fail below capacity (optimistic probe) and poll may report empty
/// while elements exist (the emptiness check and the commit record cannot
/// be atomic across the two locks); both are modeled as
/// exceptional-termination transitions that leave the state unchanged.
/// A *successful* poll must return the exact front element.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_QUEUE_QUEUESPEC_H
#define VYRD_QUEUE_QUEUESPEC_H

#include "queue/BoundedQueue.h"
#include "vyrd/Spec.h"

#include <deque>

namespace vyrd {
namespace queue {

/// Specification state: the abstract FIFO sequence.
class QueueSpec : public Spec {
public:
  explicit QueueSpec(size_t Capacity);

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  size_t size() const { return Q.size(); }

private:
  QVocab V;
  size_t Capacity;
  std::deque<int64_t> Q;
  uint64_t HeadIdx = 0; // absolute index of the current front
  uint64_t NextIdx = 0; // absolute index of the next enqueue
};

} // namespace queue
} // namespace vyrd

#endif // VYRD_QUEUE_QUEUESPEC_H
