//===- BoundedQueue.h - Two-lock concurrent FIFO queue ----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPMC FIFO queue in the two-lock style of Michael & Scott:
/// a dummy-headed linked list where producers serialize on a tail lock
/// and consumers on a head lock, plus an atomic count for the capacity
/// bound. The paper's motivation names exactly this class of
/// "concurrently-accessed data structures at the core" of services.
///
/// Refinement notes: offer may fail spuriously (the unlocked capacity
/// check), and poll may report empty spuriously (an offer can commit
/// between the consumer's emptiness check and its commit record), so the
/// specification is permissive about both failures — the paper's central
/// argument for refinement over atomicity. A *successful* poll's return
/// value, however, must equal the specification's front: that is where
/// the injected bug surfaces.
///
/// Injectable bug (stale-read delivery): poll snapshots the front value,
/// releases the head lock, and re-acquires it to unlink — without
/// re-reading. Two concurrent polls can both return the first element
/// while unlinking two: one element is delivered twice and the next is
/// lost. Unlike the state-corrupting Table 1 bugs, this one is visible
/// in the return value at the poll's own commit, so I/O and view
/// refinement detect it equally fast — completing the detection
/// taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_QUEUE_BOUNDEDQUEUE_H
#define VYRD_QUEUE_BOUNDEDQUEUE_H

#include "vyrd/Instrument.h"

#include <atomic>
#include <cstdint>
#include <mutex>

namespace vyrd {
namespace queue {

/// Interned method and replay-op names for the queue.
struct QVocab {
  Name Offer, Poll, Peek, Size;
  Name OpAppend, OpPop;
  static QVocab get();
};

/// The instrumented queue.
class BoundedQueue {
public:
  struct Options {
    size_t Capacity = 32;
    /// Inject the stale-read poll.
    bool BuggyPoll = false;
  };

  BoundedQueue(const Options &Opts, Hooks H);
  ~BoundedQueue();

  BoundedQueue(const BoundedQueue &) = delete;
  BoundedQueue &operator=(const BoundedQueue &) = delete;

  /// Enqueues \p X. \returns false when the queue is full.
  bool offer(int64_t X);

  /// Dequeues the front element, or null when empty.
  Value poll();

  /// Observer: the front element without removing it, or null.
  Value peek() const;

  /// Observer: the exact number of elements.
  int64_t size() const;

private:
  struct Node {
    int64_t Val = 0;
    /// Atomic: the consumer reads the dummy's Next under the head lock
    /// while a producer links it under the tail lock (the two-lock
    /// algorithm's one intentional cross-lock access).
    std::atomic<Node *> Next{nullptr};
  };

  Options Opts;
  Hooks H;
  QVocab V;
  Node *Head; // dummy
  Node *Tail;
  mutable std::mutex HeadLock;
  mutable std::mutex TailLock;
  std::atomic<size_t> Count{0};
};

} // namespace queue
} // namespace vyrd

#endif // VYRD_QUEUE_BOUNDEDQUEUE_H
