//===- BoundedQueue.h - Two-lock concurrent FIFO queue ----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded MPMC FIFO queue in the two-lock style of Michael & Scott:
/// a dummy-headed linked list where producers serialize on a tail lock
/// and consumers on a head lock, plus an atomic count for the capacity
/// bound. The paper's motivation names exactly this class of
/// "concurrently-accessed data structures at the core" of services.
///
/// Refinement notes: offer may fail spuriously (the unlocked capacity
/// check), and poll may report empty spuriously (an offer can commit
/// between the consumer's emptiness check and its commit record), so the
/// specification is permissive about both failures — the paper's central
/// argument for refinement over atomicity. A *successful* poll's return
/// value, however, must equal the specification's front: that is where
/// the injected bug surfaces.
///
/// Instrumentation is automatic: the shim locks derive the commit
/// brackets, and the FIFO content is captured through a `TrackedMap`
/// keyed by the element's absolute enqueue index (`q.set(i, x)` on
/// append, `q.del(i)` on pop), which the generic Map-shape
/// `KeyValueReplayer` consumes — the bespoke queue replayer is gone.
///
/// Injectable bug (stale-read delivery): poll snapshots the front value,
/// releases the head lock, and re-acquires it to unlink — without
/// re-reading. Two concurrent polls can both return the first element
/// while unlinking two: one element is delivered twice and the next is
/// lost. Unlike the state-corrupting Table 1 bugs, this one is visible
/// in the return value at the poll's own commit, so I/O and view
/// refinement detect it equally fast — completing the detection
/// taxonomy.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_QUEUE_BOUNDEDQUEUE_H
#define VYRD_QUEUE_BOUNDEDQUEUE_H

#include "vyrd/Auto.h"

#include <atomic>
#include <cstdint>

namespace vyrd {
namespace queue {

/// Interned method names for the queue.
struct QVocab {
  Name Offer, Poll, Peek, Size;
  static QVocab get();
};

/// The uninstrumented queue core (trailing-AutoContext protocol).
class BoundedQueueImpl {
public:
  struct Options {
    size_t Capacity = 32;
    /// Inject the stale-read poll.
    bool BuggyPoll = false;
  };

  BoundedQueueImpl(const Options &Opts, AutoContext &Ctx);
  ~BoundedQueueImpl();

  BoundedQueueImpl(const BoundedQueueImpl &) = delete;
  BoundedQueueImpl &operator=(const BoundedQueueImpl &) = delete;

  /// Enqueues \p X. \returns false when the queue is full.
  bool offer(int64_t X);

  /// Dequeues the front element, or null when empty.
  Value poll();

  /// Observer: the front element without removing it, or null.
  Value peek() const;

  /// Observer: the exact number of elements.
  int64_t size() const;

private:
  struct Node {
    int64_t Val = 0;
    /// Atomic: the consumer reads the dummy's Next under the head lock
    /// while a producer links it under the tail lock (the two-lock
    /// algorithm's one intentional cross-lock access).
    std::atomic<Node *> Next{nullptr};
  };

  Options Opts;
  AutoContext &Ctx;
  /// Captures the FIFO content as `q.set` / `q.del` replay records.
  TrackedMap Q;
  Node *Head; // dummy
  Node *Tail;
  mutable Mutex HeadLock;
  mutable Mutex TailLock;
  std::atomic<size_t> Count{0};
  /// Absolute indices of the current front / next enqueue; both advance
  /// under HeadLock (offers publish under it too), and they key the
  /// logged FIFO content so reordered or duplicated deliveries change
  /// the view.
  uint64_t HeadIdx = 0;
  uint64_t NextIdx = 0;
};

} // namespace queue

template <> struct AutoMethods<queue::BoundedQueueImpl> {
  using Q = queue::BoundedQueueImpl;
  static constexpr auto desc(MethodTag<&Q::offer>) { return method("QOffer"); }
  static constexpr auto desc(MethodTag<&Q::poll>) { return method("QPoll"); }
  static constexpr auto desc(MethodTag<&Q::peek>) { return observer("QPeek"); }
  static constexpr auto desc(MethodTag<&Q::size>) { return observer("QSize"); }
};

namespace queue {

/// The instrumented queue facade.
class BoundedQueue : public Instrumented<BoundedQueueImpl> {
public:
  using Options = BoundedQueueImpl::Options;

  BoundedQueue(const Options &O, Hooks H) : Instrumented(H, O) {}

  bool offer(int64_t X) { return invoke<&BoundedQueueImpl::offer>(X); }
  Value poll() { return invoke<&BoundedQueueImpl::poll>(); }
  Value peek() { return invoke<&BoundedQueueImpl::peek>(); }
  int64_t size() { return invoke<&BoundedQueueImpl::size>(); }
};

} // namespace queue
} // namespace vyrd

#endif // VYRD_QUEUE_BOUNDEDQUEUE_H
