# Empty dependencies file for vyrd_queue.
# This may be replaced when dependencies are built.
