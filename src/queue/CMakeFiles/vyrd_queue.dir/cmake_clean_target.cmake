file(REMOVE_RECURSE
  "libvyrd_queue.a"
)
