file(REMOVE_RECURSE
  "CMakeFiles/vyrd_queue.dir/BoundedQueue.cpp.o"
  "CMakeFiles/vyrd_queue.dir/BoundedQueue.cpp.o.d"
  "CMakeFiles/vyrd_queue.dir/QueueSpec.cpp.o"
  "CMakeFiles/vyrd_queue.dir/QueueSpec.cpp.o.d"
  "libvyrd_queue.a"
  "libvyrd_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
