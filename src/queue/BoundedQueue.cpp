//===- BoundedQueue.cpp - Two-lock concurrent FIFO queue -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "queue/BoundedQueue.h"

using namespace vyrd;
using namespace vyrd::queue;

QVocab QVocab::get() {
  QVocab V;
  V.Offer = internName("QOffer");
  V.Poll = internName("QPoll");
  V.Peek = internName("QPeek");
  V.Size = internName("QSize");
  return V;
}

BoundedQueueImpl::BoundedQueueImpl(const Options &Opts, AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx), Q(Ctx, "q"), HeadLock(Ctx), TailLock(Ctx) {
  Head = Tail = new Node();
}

BoundedQueueImpl::~BoundedQueueImpl() {
  while (Head) {
    Node *N = Head;
    Head = Head->Next.load(std::memory_order_relaxed);
    delete N;
  }
}

bool BoundedQueueImpl::offer(int64_t X) {
  // Optimistic capacity probe without a lock; may fail spuriously (the
  // specification permits that, and the auto layer commits the failure).
  if (Count.load(std::memory_order_relaxed) >= Opts.Capacity)
    return false;
  Node *N = new Node();
  N->Val = X;
  {
    LockGuard Lock(TailLock);
    // Re-check under the tail lock: Count can only decrease concurrently
    // (consumers), so this bound is safe.
    if (Count.load(std::memory_order_relaxed) >= Opts.Capacity) {
      delete N;
      return false;
    }
    // Publish under the head lock so consumers cannot observe the new
    // element before its commit record is in the log (the "logged action
    // atomic with log update" requirement: consumers hold only HeadLock).
    // Global lock order: TailLock before HeadLock.
    LockGuard Publish(HeadLock);
    Tail->Next.store(N, std::memory_order_release);
    Tail = N;
    Count.fetch_add(1, std::memory_order_relaxed);
    Q.set(Value(static_cast<int64_t>(NextIdx++)), Value(X));
    Ctx.commit();
  }
  return true;
}

Value BoundedQueueImpl::poll() {
  // Dequeue advances the dummy (the Michael & Scott two-lock pop): the
  // first real node becomes the new dummy and the old dummy is freed.
  // Tail is never touched — with >= 1 element, Tail != Head, so the old
  // dummy is invisible to producers and safe to delete.
  if (Opts.BuggyPoll) {
    // BUG: snapshot the front value, drop the lock, re-acquire and
    // dequeue without re-reading. Two concurrent polls can both return
    // the old front while removing two elements.
    Value Ret;
    {
      LockGuard Lock(HeadLock);
      if (Node *First = Head->Next.load(std::memory_order_acquire))
        Ret = Value(First->Val);
    }
    Chaos::point(); // the racy window
    if (!Ret.isNull()) {
      LockGuard Lock(HeadLock);
      if (Node *First = Head->Next.load(std::memory_order_acquire)) {
        // Dequeue whatever is at the front now, but return the stale
        // snapshot.
        Node *OldDummy = Head;
        Head = First;
        Count.fetch_sub(1, std::memory_order_relaxed);
        Q.del(Value(static_cast<int64_t>(HeadIdx++)));
        Ctx.commit();
        delete OldDummy;
      } else {
        Ret = Value(); // raced to empty after all
      }
    }
    return Ret;
  }

  Value Ret;
  {
    LockGuard Lock(HeadLock);
    Node *First = Head->Next.load(std::memory_order_acquire);
    if (First) {
      Ret = Value(First->Val);
      Node *OldDummy = Head;
      Head = First;
      Count.fetch_sub(1, std::memory_order_relaxed);
      Q.del(Value(static_cast<int64_t>(HeadIdx++)));
      Ctx.commit();
      delete OldDummy;
    }
    // Empty: the spec treats a null poll permissively; auto-commit.
  }
  return Ret;
}

Value BoundedQueueImpl::peek() const {
  Value Ret;
  {
    LockGuard Lock(HeadLock);
    if (const Node *First = Head->Next.load(std::memory_order_acquire))
      Ret = Value(First->Val);
  }
  return Ret;
}

int64_t BoundedQueueImpl::size() const {
  // Exact size needs both locks (tail before head, the global order).
  LockGuard TLock(TailLock);
  LockGuard HLock(HeadLock);
  return static_cast<int64_t>(Count.load(std::memory_order_relaxed));
}
