//===- BoundedQueue.cpp - Two-lock concurrent FIFO queue -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "queue/BoundedQueue.h"

using namespace vyrd;
using namespace vyrd::queue;

QVocab QVocab::get() {
  QVocab V;
  V.Offer = internName("QOffer");
  V.Poll = internName("QPoll");
  V.Peek = internName("QPeek");
  V.Size = internName("QSize");
  V.OpAppend = internName("q.append");
  V.OpPop = internName("q.pop");
  return V;
}

BoundedQueue::BoundedQueue(const Options &Opts, Hooks H)
    : Opts(Opts), H(H), V(QVocab::get()) {
  Head = Tail = new Node();
}

BoundedQueue::~BoundedQueue() {
  while (Head) {
    Node *N = Head;
    Head = Head->Next.load(std::memory_order_relaxed);
    delete N;
  }
}

bool BoundedQueue::offer(int64_t X) {
  MethodScope Scope(H, V.Offer, {Value(X)});
  // Optimistic capacity probe without a lock; may fail spuriously (the
  // specification permits that).
  if (Count.load(std::memory_order_relaxed) >= Opts.Capacity) {
    H.commit();
    Scope.setReturn(Value(false));
    return false;
  }
  Node *N = new Node();
  N->Val = X;
  {
    std::lock_guard Lock(TailLock);
    // Re-check under the tail lock: Count can only decrease concurrently
    // (consumers), so this bound is safe.
    if (Count.load(std::memory_order_relaxed) >= Opts.Capacity) {
      H.commit();
      Scope.setReturn(Value(false));
      delete N;
      return false;
    }
    // Publish under the head lock so consumers cannot observe the new
    // element before its commit record is in the log (the "logged action
    // atomic with log update" requirement: consumers hold only HeadLock).
    // Global lock order: TailLock before HeadLock.
    std::lock_guard Publish(HeadLock);
    Tail->Next.store(N, std::memory_order_release);
    Tail = N;
    Count.fetch_add(1, std::memory_order_relaxed);
    CommitBlock Block(H);
    H.replayOp(V.OpAppend, {Value(X)});
    H.commit();
  }
  Scope.setReturn(Value(true));
  return true;
}

Value BoundedQueue::poll() {
  MethodScope Scope(H, V.Poll, {});
  Value Ret;

  // Dequeue advances the dummy (the Michael & Scott two-lock pop): the
  // first real node becomes the new dummy and the old dummy is freed.
  // Tail is never touched — with >= 1 element, Tail != Head, so the old
  // dummy is invisible to producers and safe to delete.
  if (Opts.BuggyPoll) {
    // BUG: snapshot the front value, drop the lock, re-acquire and
    // dequeue without re-reading. Two concurrent polls can both return
    // the old front while removing two elements.
    {
      std::lock_guard Lock(HeadLock);
      if (Node *First = Head->Next.load(std::memory_order_acquire))
        Ret = Value(First->Val);
    }
    Chaos::point(); // the racy window
    if (!Ret.isNull()) {
      std::lock_guard Lock(HeadLock);
      if (Node *First = Head->Next.load(std::memory_order_acquire)) {
        // Dequeue whatever is at the front now, but return the stale
        // snapshot.
        Node *OldDummy = Head;
        Head = First;
        Count.fetch_sub(1, std::memory_order_relaxed);
        CommitBlock Block(H);
        H.replayOp(V.OpPop, {Value(First->Val)});
        H.commit();
        delete OldDummy;
      } else {
        Ret = Value(); // raced to empty after all
        H.commit();
      }
    } else {
      H.commit();
    }
    Scope.setReturn(Ret);
    return Ret;
  }

  {
    std::lock_guard Lock(HeadLock);
    Node *First = Head->Next.load(std::memory_order_acquire);
    if (!First) {
      H.commit(); // empty: the spec treats a null poll permissively
    } else {
      Ret = Value(First->Val);
      Node *OldDummy = Head;
      Head = First;
      Count.fetch_sub(1, std::memory_order_relaxed);
      CommitBlock Block(H);
      H.replayOp(V.OpPop, {Value(First->Val)});
      H.commit();
      delete OldDummy;
    }
  }
  Scope.setReturn(Ret);
  return Ret;
}

Value BoundedQueue::peek() const {
  MethodScope Scope(H, V.Peek, {});
  Value Ret;
  {
    std::lock_guard Lock(HeadLock);
    if (const Node *First = Head->Next.load(std::memory_order_acquire))
      Ret = Value(First->Val);
  }
  Scope.setReturn(Ret);
  return Ret;
}

int64_t BoundedQueue::size() const {
  MethodScope Scope(H, V.Size, {});
  int64_t N;
  {
    // Exact size needs both locks (tail before head, the global order).
    std::lock_guard TLock(TailLock);
    std::lock_guard HLock(HeadLock);
    N = static_cast<int64_t>(Count.load(std::memory_order_relaxed));
  }
  Scope.setReturn(Value(N));
  return N;
}
