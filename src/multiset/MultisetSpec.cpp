//===- MultisetSpec.cpp - Atomic multiset specification -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "multiset/MultisetSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::multiset;

MultisetSpec::MultisetSpec() : V(Vocab::get()) {}

bool MultisetSpec::isObserver(Name Method) const {
  return Method == V.LookUp;
}

void MultisetSpec::addElem(int64_t X, View &ViewS) {
  ++M[X];
  ++Total;
  ViewS.add(Value(X), Value());
}

bool MultisetSpec::removeElem(int64_t X, View &ViewS) {
  auto It = M.find(X);
  if (It == M.end())
    return false;
  if (--It->second == 0)
    M.erase(It);
  --Total;
  ViewS.remove(Value(X), Value());
  return true;
}

bool MultisetSpec::applyMutator(Name Method, const ValueList &Args,
                                const Value &Ret, View &ViewS) {
  if (!Ret.isBool())
    return false;
  bool Success = Ret.asBool();

  if (Method == V.Insert) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    // Exceptional termination leaves the state unchanged and is always
    // permitted (resource contention may prevent completion).
    if (Success)
      addElem(Args[0].asInt(), ViewS);
    return true;
  }

  if (Method == V.InsertPair) {
    if (Args.size() != 2 || !Args[0].isInt() || !Args[1].isInt())
      return false;
    // Either both elements are inserted or neither is (Sec. 2.1).
    if (Success) {
      addElem(Args[0].asInt(), ViewS);
      addElem(Args[1].asInt(), ViewS);
    }
    return true;
  }

  if (Method == V.Delete) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    // A successful Delete must have removed a present element; a failed
    // Delete leaves the state unchanged (and is always permitted).
    if (Success)
      return removeElem(Args[0].asInt(), ViewS);
    return true;
  }

  return false; // unknown mutator
}

bool MultisetSpec::returnAllowed(Name Method, const ValueList &Args,
                                 const Value &Ret) const {
  if (Method != V.LookUp || Args.size() != 1 || !Args[0].isInt() ||
      !Ret.isBool())
    return false;
  bool Present = M.count(Args[0].asInt()) != 0;
  return Ret.asBool() == Present;
}

void MultisetSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[X, Mult] : M)
    for (size_t I = 0; I < Mult; ++I)
      Out.add(Value(X), Value());
}

size_t MultisetSpec::count(int64_t X) const {
  auto It = M.find(X);
  return It == M.end() ? 0 : It->second;
}

size_t MultisetSpec::size() const { return Total; }

bool MultisetSpec::saveState(ByteWriter &W) const {
  // std::map iterates in key order, so the blob is canonical as-is.
  W.varint(M.size());
  for (const auto &[X, Mult] : M) {
    W.svarint(X);
    W.varint(Mult);
  }
  return true;
}

bool MultisetSpec::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  M.clear();
  Total = 0;
  for (uint64_t I = 0; I < N; ++I) {
    int64_t X = R.svarint();
    uint64_t Mult = R.varint();
    if (!R.ok() || Mult == 0)
      return false;
    M.emplace(X, static_cast<size_t>(Mult));
    Total += Mult;
  }
  return R.ok();
}
