file(REMOVE_RECURSE
  "CMakeFiles/vyrd_multiset.dir/ArrayMultiset.cpp.o"
  "CMakeFiles/vyrd_multiset.dir/ArrayMultiset.cpp.o.d"
  "CMakeFiles/vyrd_multiset.dir/MultisetSpec.cpp.o"
  "CMakeFiles/vyrd_multiset.dir/MultisetSpec.cpp.o.d"
  "libvyrd_multiset.a"
  "libvyrd_multiset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_multiset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
