file(REMOVE_RECURSE
  "libvyrd_multiset.a"
)
