
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiset/ArrayMultiset.cpp" "src/multiset/CMakeFiles/vyrd_multiset.dir/ArrayMultiset.cpp.o" "gcc" "src/multiset/CMakeFiles/vyrd_multiset.dir/ArrayMultiset.cpp.o.d"
  "/root/repo/src/multiset/MultisetSpec.cpp" "src/multiset/CMakeFiles/vyrd_multiset.dir/MultisetSpec.cpp.o" "gcc" "src/multiset/CMakeFiles/vyrd_multiset.dir/MultisetSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/vyrd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
