# Empty dependencies file for vyrd_multiset.
# This may be replaced when dependencies are built.
