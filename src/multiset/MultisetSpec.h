//===- MultisetSpec.h - Atomic multiset specification -----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The method-atomic, deterministic specification of the multiset (Fig. 1
/// extended with InsertPair and Delete). In the paper's style the
/// specification takes the return value as an argument and is permissive
/// about exceptional terminations: Insert/InsertPair/Delete may fail under
/// contention without changing the abstract state — precisely the
/// flexibility that makes refinement checking more appropriate than
/// atomicity for such implementations (Sec. 1).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_MULTISET_MULTISETSPEC_H
#define VYRD_MULTISET_MULTISETSPEC_H

#include "multiset/ArrayMultiset.h"
#include "vyrd/Spec.h"

#include <map>

namespace vyrd {
namespace multiset {

/// Specification state: the multiset contents M.
class MultisetSpec : public Spec {
public:
  MultisetSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  /// Direct access for tests.
  size_t count(int64_t X) const;
  size_t size() const;

private:
  void addElem(int64_t X, View &ViewS);
  bool removeElem(int64_t X, View &ViewS);

  Vocab V;
  std::map<int64_t, size_t> M; // element -> multiplicity
  size_t Total = 0;
};

} // namespace multiset
} // namespace vyrd

#endif // VYRD_MULTISET_MULTISETSPEC_H
