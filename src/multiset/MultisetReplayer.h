//===- MultisetReplayer.h - Shadow state for the array multiset -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reconstructs the array multiset's state from logged `A[i].elt` /
/// `A[i].valid` writes and maintains viewI — the multiset of elements
/// stored in valid slots — incrementally (Sec. 5.1's viewI computation,
/// made incremental per Sec. 6.4).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_MULTISET_MULTISETREPLAYER_H
#define VYRD_MULTISET_MULTISETREPLAYER_H

#include "multiset/ArrayMultiset.h"
#include "vyrd/Replayer.h"

#include <unordered_map>
#include <vector>

namespace vyrd {
namespace multiset {

/// Shadow state: elt/valid per slot.
class MultisetReplayer : public Replayer {
public:
  explicit MultisetReplayer(size_t Capacity);

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  struct SlotShadow {
    Value Elt; // null when empty
    bool Valid = false;
  };

  std::vector<SlotShadow> Slots;
  /// Name id -> (slot index, IsValidField).
  std::unordered_map<uint32_t, std::pair<size_t, bool>> VarMap;
};

} // namespace multiset
} // namespace vyrd

#endif // VYRD_MULTISET_MULTISETREPLAYER_H
