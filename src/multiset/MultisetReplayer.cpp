//===- MultisetReplayer.cpp - Shadow state for the array multiset ---------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "multiset/MultisetReplayer.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::multiset;

MultisetReplayer::MultisetReplayer(size_t Capacity) : Slots(Capacity) {
  for (size_t I = 0; I < Capacity; ++I) {
    VarMap.emplace(Vocab::eltName(I).id(), std::make_pair(I, false));
    VarMap.emplace(Vocab::validName(I).id(), std::make_pair(I, true));
  }
}

void MultisetReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_Write &&
         "multiset logs fine-grained writes only");
  auto It = VarMap.find(A.Var.id());
  assert(It != VarMap.end() && "write to unknown multiset variable");
  auto [Index, IsValid] = It->second;
  SlotShadow &S = Slots[Index];

  if (IsValid) {
    bool NewValid = A.Ret.isBool() && A.Ret.asBool();
    if (NewValid == S.Valid)
      return;
    // Publishing or unpublishing the slot's element toggles its view
    // membership.
    if (NewValid)
      ViewI.add(S.Elt, Value());
    else
      ViewI.remove(S.Elt, Value());
    S.Valid = NewValid;
    return;
  }

  // Element-field write. Only affects the view when the slot is published
  // (which a correct implementation never does; the replay must mirror
  // buggy interleavings faithfully regardless).
  if (S.Valid && S.Elt != A.Ret) {
    ViewI.remove(S.Elt, Value());
    ViewI.add(A.Ret, Value());
  }
  S.Elt = A.Ret;
}

void MultisetReplayer::buildView(View &Out) const {
  Out.clear();
  for (const SlotShadow &S : Slots)
    if (S.Valid)
      Out.add(S.Elt, Value());
}

bool MultisetReplayer::saveState(ByteWriter &W) const {
  // VarMap is a vocab-derived lookup table (interned name ids), not
  // state: the constructor rebuilds it, so only the slots persist.
  W.varint(Slots.size());
  for (const SlotShadow &S : Slots) {
    writeValue(W, S.Elt);
    W.u8(S.Valid ? 1 : 0);
  }
  return true;
}

bool MultisetReplayer::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  Slots.assign(N, SlotShadow());
  for (uint64_t I = 0; I < N; ++I) {
    Slots[I].Elt = readValue(R);
    Slots[I].Valid = R.u8() != 0;
    VarMap.emplace(Vocab::eltName(I).id(), std::make_pair(I, false));
    VarMap.emplace(Vocab::validName(I).id(), std::make_pair(I, true));
  }
  return R.ok();
}
