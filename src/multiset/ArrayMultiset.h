//===- ArrayMultiset.h - The paper's running multiset example ---*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent multiset of Secs. 2 and 5 of the paper: elements live in
/// a fixed array A[0..N-1] of slots, each with its own lock, an element
/// field and a valid bit. FindSlot reserves a free slot; Insert/InsertPair
/// publish elements by setting valid bits; Delete unpublishes; LookUp scans.
///
/// The implementation is instrumented with VYRD hooks. Commit points follow
/// the paper: the valid-bit write(s), performed inside a commit block while
/// the slot lock(s) are held (for InsertPair this is the two-lock block of
/// Fig. 4, lines 9-14). The Fig. 5 bug — FindSlot checking a slot for
/// emptiness *before* taking its lock and reserving it without re-checking
/// — is injectable via Options::BuggyFindSlot.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_MULTISET_ARRAYMULTISET_H
#define VYRD_MULTISET_ARRAYMULTISET_H

#include "vyrd/Instrument.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace vyrd {
namespace multiset {

/// Interned method and variable names shared by the implementation, the
/// specification and the replayer.
struct Vocab {
  Name Insert, InsertPair, Delete, LookUp;
  /// Per-slot variable names "A[i].elt" / "A[i].valid" for capacity \p N.
  static Vocab get();
  static Name eltName(size_t I);
  static Name validName(size_t I);
};

/// The instrumented array-based multiset implementation.
class ArrayMultiset {
public:
  struct Options {
    size_t Capacity = 64;
    /// Inject the Fig. 5 bug: FindSlot tests A[i].elt == null without
    /// holding the slot lock and reserves without re-checking.
    bool BuggyFindSlot = false;
    /// Retry LookUp's scan when a mutator committed during it. The paper's
    /// plain scan (Fig. 2) is not linearizable: with two copies of x in
    /// the array, a delete behind the scanner paired with a re-insert
    /// ahead of it makes the scan miss x even though x is continuously a
    /// member — a genuine refinement violation of the scan itself, which
    /// VYRD duly reports (see MultisetTest.PaperScanIsNotLinearizable).
    /// The guard makes the "correct" variant actually correct.
    bool LinearizableScan = true;
  };

  ArrayMultiset(const Options &Opts, Hooks H);

  ArrayMultiset(const ArrayMultiset &) = delete;
  ArrayMultiset &operator=(const ArrayMultiset &) = delete;

  /// Inserts one occurrence of \p X. \returns false (exceptional
  /// termination) when no slot is free.
  bool insert(int64_t X);

  /// Inserts \p X and \p Y atomically: on failure neither is inserted
  /// (Sec. 2.1).
  bool insertPair(int64_t X, int64_t Y);

  /// Removes one occurrence of \p X. \returns false if absent.
  bool remove(int64_t X);

  /// Observer: whether \p X is currently a member.
  bool lookUp(int64_t X) const;

  size_t capacity() const { return Slots.size(); }

  /// A consistent snapshot of the current contents (sorted, with
  /// multiplicity). Takes every slot lock; meant for quiescent use by
  /// tests and by the atomized-specification adapter (Sec. 4.4).
  std::vector<int64_t> snapshot() const;

private:
  static constexpr int64_t Empty = INT64_MIN;

  struct Slot {
    mutable std::mutex M;
    int64_t Elt = Empty;
    bool Valid = false;
  };

  /// Reserves a slot for \p X (writes its Elt field). \returns the index,
  /// or -1 when the array is full.
  int findSlot(int64_t X);
  /// Releases a reserved (not yet valid) slot.
  void releaseSlot(int I);

  /// One unguarded scan over the slots. \returns whether \p X was seen.
  bool scanOnce(int64_t X) const;

  Options Opts;
  Hooks H;
  Vocab V;
  /// Bumped by every state-changing commit; LookUp uses it to detect that
  /// its scan raced a mutation and must retry.
  mutable std::atomic<uint64_t> ModCount{0};
  std::vector<Slot> Slots;
  std::vector<Name> EltNames;   // "A[i].elt"
  std::vector<Name> ValidNames; // "A[i].valid"
};

} // namespace multiset
} // namespace vyrd

#endif // VYRD_MULTISET_ARRAYMULTISET_H
