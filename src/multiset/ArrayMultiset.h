//===- ArrayMultiset.h - The paper's running multiset example ---*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrent multiset of Secs. 2 and 5 of the paper: elements live in
/// a fixed array A[0..N-1] of slots, each with its own lock, an element
/// field and a valid bit. FindSlot reserves a free slot; Insert/InsertPair
/// publish elements by setting valid bits; Delete unpublishes; LookUp scans.
///
/// Instrumentation is automatic: the core (`ArrayMultisetImpl`) carries no
/// hook calls beyond its commit points — slot locks are `vyrd::Mutex`
/// shims that derive the commit-block brackets, the elt/valid fields are
/// `Tracked` so their assignments log themselves, and the public
/// `ArrayMultiset` facade dispatches every method through
/// `Instrumented<T>`, which emits call/return records and auto-commits
/// failure paths. The Fig. 5 bug — FindSlot checking a slot for emptiness
/// *before* taking its lock and reserving it without re-checking — is
/// injectable via Options::BuggyFindSlot.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_MULTISET_ARRAYMULTISET_H
#define VYRD_MULTISET_ARRAYMULTISET_H

#include "vyrd/Auto.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

namespace vyrd {
namespace multiset {

/// Interned method and variable names shared by the implementation, the
/// specification and the replayer.
struct Vocab {
  Name Insert, InsertPair, Delete, LookUp;
  static Vocab get();
  /// Per-slot variable names "A[i].elt" / "A[i].valid".
  static Name eltName(size_t I);
  static Name validName(size_t I);
};

/// The uninstrumented multiset core. Constructed against the owning
/// facade's AutoContext (trailing parameter, per the Instrumented<T>
/// protocol); the only instrumentation it mentions is its commit points.
class ArrayMultisetImpl {
public:
  struct Options {
    size_t Capacity = 64;
    /// Inject the Fig. 5 bug: FindSlot tests A[i].elt == null without
    /// holding the slot lock and reserves without re-checking.
    bool BuggyFindSlot = false;
    /// Retry LookUp's scan when a mutator committed during it. The paper's
    /// plain scan (Fig. 2) is not linearizable: with two copies of x in
    /// the array, a delete behind the scanner paired with a re-insert
    /// ahead of it makes the scan miss x even though x is continuously a
    /// member — a genuine refinement violation of the scan itself, which
    /// VYRD duly reports (see MultisetTest.PaperScanIsNotLinearizable).
    /// The guard makes the "correct" variant actually correct.
    bool LinearizableScan = true;
  };

  ArrayMultisetImpl(const Options &Opts, AutoContext &Ctx);

  ArrayMultisetImpl(const ArrayMultisetImpl &) = delete;
  ArrayMultisetImpl &operator=(const ArrayMultisetImpl &) = delete;

  /// Inserts one occurrence of \p X. \returns false (exceptional
  /// termination) when no slot is free.
  bool insert(int64_t X);

  /// Inserts \p X and \p Y atomically: on failure neither is inserted
  /// (Sec. 2.1).
  bool insertPair(int64_t X, int64_t Y);

  /// Removes one occurrence of \p X. \returns false if absent.
  bool remove(int64_t X);

  /// Observer: whether \p X is currently a member.
  bool lookUp(int64_t X) const;

  size_t capacity() const { return Slots.size(); }

  /// A consistent snapshot of the current contents (sorted, with
  /// multiplicity). Takes every slot lock; meant for quiescent use by
  /// tests and by the atomized-specification adapter (Sec. 4.4).
  std::vector<int64_t> snapshot() const;

private:
  static constexpr int64_t Empty = INT64_MIN;

  /// The logged representation of an elt field: null when empty.
  static Value encodeElt(const int64_t &V) {
    return V == Empty ? Value() : Value(V);
  }

  /// A slot's lock is the commit-block shim and its fields log their own
  /// writes; a deque holds them because neither piece is movable.
  struct Slot {
    Slot(AutoContext &C, size_t I)
        : M(C), Elt(C, Vocab::eltName(I), Empty, &encodeElt),
          Valid(C, Vocab::validName(I), false) {}
    mutable Mutex M;
    Tracked<int64_t> Elt;
    Tracked<bool> Valid;
  };

  /// Reserves a slot for \p X (writes its Elt field). \returns the index,
  /// or -1 when the array is full.
  int findSlot(int64_t X);
  /// Releases a reserved (not yet valid) slot.
  void releaseSlot(int I);

  /// One unguarded scan over the slots. \returns whether \p X was seen.
  bool scanOnce(int64_t X) const;

  Options Opts;
  AutoContext &Ctx;
  /// Bumped by every state-changing commit; LookUp uses it to detect that
  /// its scan raced a mutation and must retry.
  mutable std::atomic<uint64_t> ModCount{0};
  std::deque<Slot> Slots;
};

} // namespace multiset

template <> struct AutoMethods<multiset::ArrayMultisetImpl> {
  using M = multiset::ArrayMultisetImpl;
  static constexpr auto desc(MethodTag<&M::insert>) { return method("Insert"); }
  static constexpr auto desc(MethodTag<&M::insertPair>) {
    return method("InsertPair");
  }
  static constexpr auto desc(MethodTag<&M::remove>) { return method("Delete"); }
  static constexpr auto desc(MethodTag<&M::lookUp>) {
    return observer("LookUp");
  }
};

namespace multiset {

/// The instrumented multiset: the facade client code constructs and calls.
/// Every public method dispatches through the auto layer; `snapshot` and
/// `capacity` read the core directly (they are test/adapter affordances,
/// not logged methods).
class ArrayMultiset : public Instrumented<ArrayMultisetImpl> {
public:
  using Options = ArrayMultisetImpl::Options;

  ArrayMultiset(const Options &O, Hooks H) : Instrumented(H, O) {}

  bool insert(int64_t X) { return invoke<&ArrayMultisetImpl::insert>(X); }
  bool insertPair(int64_t X, int64_t Y) {
    return invoke<&ArrayMultisetImpl::insertPair>(X, Y);
  }
  bool remove(int64_t X) { return invoke<&ArrayMultisetImpl::remove>(X); }
  bool lookUp(int64_t X) { return invoke<&ArrayMultisetImpl::lookUp>(X); }

  size_t capacity() const { return raw().capacity(); }
  std::vector<int64_t> snapshot() const { return raw().snapshot(); }
};

} // namespace multiset
} // namespace vyrd

#endif // VYRD_MULTISET_ARRAYMULTISET_H
