//===- ArrayMultiset.cpp - The paper's running multiset example -----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "multiset/ArrayMultiset.h"

#include <algorithm>
#include <cassert>

using namespace vyrd;
using namespace vyrd::multiset;

Vocab Vocab::get() {
  Vocab V;
  V.Insert = internName("Insert");
  V.InsertPair = internName("InsertPair");
  V.Delete = internName("Delete");
  V.LookUp = internName("LookUp");
  return V;
}

Name Vocab::eltName(size_t I) {
  return internName("A[" + std::to_string(I) + "].elt");
}

Name Vocab::validName(size_t I) {
  return internName("A[" + std::to_string(I) + "].valid");
}

ArrayMultisetImpl::ArrayMultisetImpl(const Options &Opts, AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx) {
  for (size_t I = 0; I < Opts.Capacity; ++I)
    Slots.emplace_back(Ctx, I);
}

int ArrayMultisetImpl::findSlot(int64_t X) {
  for (size_t I = 0, N = Slots.size(); I < N; ++I) {
    Slot &S = Slots[I];
    if (Opts.BuggyFindSlot) {
      // Fig. 5: the emptiness test is performed without holding the slot
      // lock, and the slot is reserved without re-checking. Two threads can
      // both see A[i].elt == null and both reserve slot i; the second
      // overwrites the first.
      bool LooksFree;
      {
        LockGuard Lock(S.M); // read the field safely, release, decide
        LooksFree = S.Elt == Empty;
      }
      if (LooksFree) {
        Chaos::point(); // the racy window
        LockGuard Lock(S.M);
        S.Elt = X;
        return static_cast<int>(I);
      }
      continue;
    }
    // Correct version (Fig. 2): test and reserve under the slot lock.
    LockGuard Lock(S.M);
    if (S.Elt == Empty) {
      S.Elt = X;
      return static_cast<int>(I);
    }
  }
  return -1;
}

void ArrayMultisetImpl::releaseSlot(int I) {
  assert(I >= 0 && static_cast<size_t>(I) < Slots.size());
  Slot &S = Slots[I];
  LockGuard Lock(S.M);
  assert(!S.Valid && "releasing a published slot");
  S.Elt = Empty;
}

bool ArrayMultisetImpl::insert(int64_t X) {
  int I = findSlot(X);
  if (I == -1) {
    // Exceptional termination with no state change (the specification
    // permits Insert to fail under contention): the auto layer commits on
    // return.
    return false;
  }
  Slot &S = Slots[I];
  LockGuard Lock(S.M);
  S.Valid = true;
  ModCount.fetch_add(1, std::memory_order_release);
  Ctx.commit();
  return true;
}

bool ArrayMultisetImpl::insertPair(int64_t X, int64_t Y) {
  int I = findSlot(X);
  if (I == -1)
    return false;
  int J = findSlot(Y);
  if (J == -1) {
    releaseSlot(I);
    return false;
  }
  if (I == J) {
    // Only reachable through the injected FindSlot race: a concurrent
    // buggy reservation overwrote slot I and was then released, so the
    // second FindSlot handed the same slot out again. Publish what we
    // have (one slot for two elements) instead of self-deadlocking on the
    // slot lock; the missing element is exactly what view refinement then
    // reports.
    Slot &S = Slots[I];
    LockGuard Lock(S.M);
    S.Valid = true;
    ModCount.fetch_add(1, std::memory_order_release);
    Ctx.commit();
    return true;
  }
  {
    // Fig. 4 lines 9-14: publish both elements atomically under both slot
    // locks. (We acquire in index order to avoid deadlock; the paper's
    // pseudocode elides this.) The outermost shim lock is the commit
    // block; the commit point is inside it (line 13).
    Slot &SLo = Slots[I < J ? I : J];
    Slot &SHi = Slots[I < J ? J : I];
    LockGuard LockLo(SLo.M);
    LockGuard LockHi(SHi.M);
    Slots[I].Valid = true;
    Chaos::point();
    Slots[J].Valid = true;
    ModCount.fetch_add(1, std::memory_order_release);
    Ctx.commit();
  }
  return true;
}

bool ArrayMultisetImpl::remove(int64_t X) {
  for (size_t I = 0, N = Slots.size(); I < N; ++I) {
    Slot &S = Slots[I];
    LockGuard Lock(S.M);
    if (S.Elt != X || !S.Valid)
      continue;
    S.Valid = false;
    S.Elt = Empty;
    ModCount.fetch_add(1, std::memory_order_release);
    Ctx.commit();
    return true;
  }
  return false;
}

std::vector<int64_t> ArrayMultisetImpl::snapshot() const {
  std::vector<int64_t> Out;
  // Slot-by-slot under each lock; callers use this at quiescent points or
  // on an atomized (globally locked) instance, where it is exact.
  for (const Slot &S : Slots) {
    LockGuard Lock(S.M);
    if (S.Valid)
      Out.push_back(S.Elt);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool ArrayMultisetImpl::scanOnce(int64_t X) const {
  for (size_t I = 0, N = Slots.size(); I < N; ++I) {
    const Slot &S = Slots[I];
    LockGuard Lock(S.M);
    if (S.Elt == X && S.Valid)
      return true;
  }
  return false;
}

bool ArrayMultisetImpl::lookUp(int64_t X) const {
  while (true) {
    uint64_t Before = ModCount.load(std::memory_order_acquire);
    if (scanOnce(X)) {
      // A positive sighting under the slot lock is a valid linearization
      // point regardless of concurrent mutations.
      return true;
    }
    if (!Opts.LinearizableScan ||
        ModCount.load(std::memory_order_acquire) == Before) {
      // Nothing committed during the scan: the miss is a consistent
      // snapshot. (Without the guard this is the paper's plain Fig. 2
      // scan, which can miss a continuously-present element.)
      return false;
    }
  }
}
