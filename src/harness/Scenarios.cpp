//===- Scenarios.cpp - Canned verification scenarios ------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Scenarios.h"

#include "blinktree/BLinkSpec.h"
#include "blinktree/BLinkTree.h"
#include "bst/BstMultiset.h"
#include "bst/BstReplayer.h"
#include "bst/BstSpec.h"
#include "cache/BoxCache.h"
#include "cache/CacheSpec.h"
#include "chunk/ChunkManager.h"
#include "javalib/StringBufferSpec.h"
#include "javalib/StringBufferSystem.h"
#include "javalib/SyncHashtable.h"
#include "javalib/HashtableSpec.h"
#include "javalib/SyncVector.h"
#include "javalib/VectorSpec.h"
#include "multiset/ArrayMultiset.h"
#include "multiset/MultisetSpec.h"
#include "queue/BoundedQueue.h"
#include "queue/QueueSpec.h"
#include "scanfs/ScanFs.h"
#include "scanfs/ScanFsSpec.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::harness;

bool vyrd::harness::modeChecks(RunMode M) {
  switch (M) {
  case RunMode::RM_OnlineIO:
  case RunMode::RM_OnlineView:
  case RunMode::RM_OfflineIO:
  case RunMode::RM_OfflineView:
    return true;
  case RunMode::RM_Bare:
  case RunMode::RM_LogOnlyIO:
  case RunMode::RM_LogOnlyView:
    return false;
  }
  return false;
}

bool vyrd::harness::modeLogs(RunMode M) { return M != RunMode::RM_Bare; }

const char *vyrd::harness::runModeName(RunMode M) {
  switch (M) {
  case RunMode::RM_Bare:
    return "bare";
  case RunMode::RM_LogOnlyIO:
    return "log-only-io";
  case RunMode::RM_LogOnlyView:
    return "log-only-view";
  case RunMode::RM_OnlineIO:
    return "online-io";
  case RunMode::RM_OnlineView:
    return "online-view";
  case RunMode::RM_OfflineIO:
    return "offline-io";
  case RunMode::RM_OfflineView:
    return "offline-view";
  }
  return "?";
}

const char *vyrd::harness::programName(Program P) {
  switch (P) {
  case Program::P_MultisetVector:
    return "Multiset-Vector";
  case Program::P_MultisetBst:
    return "Multiset-BinaryTree";
  case Program::P_Vector:
    return "java.util.Vector";
  case Program::P_StringBuffer:
    return "java.util.StringBuffer";
  case Program::P_BLinkTree:
    return "BLinkTree";
  case Program::P_Cache:
    return "Cache";
  case Program::P_ScanFs:
    return "MiniScan-FS";
  case Program::P_Hashtable:
    return "java.util.Hashtable";
  case Program::P_Queue:
    return "BoundedQueue";
  }
  return "?";
}

const char *vyrd::harness::programShipKey(Program P) {
  switch (P) {
  case Program::P_MultisetVector:
    return "multiset";
  case Program::P_MultisetBst:
    return "bst";
  case Program::P_Vector:
    return "vector";
  case Program::P_StringBuffer:
    return "stringbuffer";
  case Program::P_BLinkTree:
    return "blinktree";
  case Program::P_Cache:
    return "cache";
  case Program::P_ScanFs:
    return "scanfs";
  case Program::P_Hashtable:
    return "hashtable";
  case Program::P_Queue:
    return "queue";
  }
  return "?";
}

const char *vyrd::harness::programBugName(Program P) {
  switch (P) {
  case Program::P_MultisetVector:
    return "Moving acquire in FindSlot";
  case Program::P_MultisetBst:
    return "Unlocking parent before insertion";
  case Program::P_Vector:
    return "Taking length non-atomically in lastIndexOf()";
  case Program::P_StringBuffer:
    return "Copying from an unprotected StringBuffer";
  case Program::P_BLinkTree:
    return "Allowing duplicated data nodes";
  case Program::P_Cache:
    return "Writing an unprotected dirty cache entry";
  case Program::P_ScanFs:
    return "Publishing the inode before the data blocks";
  case Program::P_Hashtable:
    return "Check-then-act in putIfAbsent";
  case Program::P_Queue:
    return "Stale front snapshot across poll relock";
  }
  return "?";
}

std::vector<Program> vyrd::harness::allPrograms() {
  return {Program::P_MultisetVector, Program::P_MultisetBst,
          Program::P_Vector,         Program::P_StringBuffer,
          Program::P_BLinkTree,      Program::P_Cache};
}

std::vector<Program> vyrd::harness::extensionPrograms() {
  return {Program::P_ScanFs, Program::P_Hashtable, Program::P_Queue};
}

namespace {

/// Short deterministic payload bytes derived from a key.
chunk::Bytes keyBytes(int64_t K, size_t Len) {
  chunk::Bytes B(Len);
  uint64_t X = static_cast<uint64_t>(K) * 0x9e3779b97f4a7c15ULL + 0x1234;
  for (size_t I = 0; I < Len; ++I) {
    X ^= X >> 13;
    X *= 0xff51afd7ed558ccdULL;
    B[I] = static_cast<uint8_t>(X >> 32);
  }
  return B;
}

/// Short deterministic string payload derived from a key.
std::string keyString(int64_t K, size_t Len) {
  std::string S;
  S.reserve(Len);
  uint64_t X = static_cast<uint64_t>(K) * 0xc2b2ae3d27d4eb4fULL + 7;
  for (size_t I = 0; I < Len; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    S.push_back(static_cast<char>('a' + (X >> 24) % 26));
  }
  return S;
}

/// Shared wiring: builds the log / verifier per run mode and fills
/// Scenario::V, L, Finish. \returns the Hooks the data structure should
/// use.
Hooks wireScenario(Scenario &S, const ScenarioOptions &O,
                   std::unique_ptr<Spec> Spec,
                   std::unique_ptr<Replayer> Replayer) {
  bool ViewLevel = O.Mode == RunMode::RM_LogOnlyView ||
                   O.Mode == RunMode::RM_OnlineView ||
                   O.Mode == RunMode::RM_OfflineView;

  if (!modeLogs(O.Mode)) {
    S.Finish = [] { return VerifierReport(); };
    return Hooks();
  }

  if (!modeChecks(O.Mode)) {
    // Logging only: a bare log with no consumer.
    std::shared_ptr<Log> L;
    if (O.Buffered) {
      BufferedLog::Options BO;
      BO.FilePath = O.LogPath;
      BO.RetainRecords = false; // nothing consumes the log
      auto BL = std::make_shared<BufferedLog>(std::move(BO));
      assert(BL->valid() && "cannot open log file");
      L = std::move(BL);
    } else if (!O.LogPath.empty()) {
      bool Valid = false;
      L = std::make_shared<FileLog>(O.LogPath, Valid,
                                    /*RetainTail=*/false);
      assert(Valid && "cannot open log file");
      (void)Valid;
    } else {
      L = std::make_shared<MemoryLog>();
    }
    S.L = L.get();
    S.Owned.push_back(L);
    S.Finish = [L] {
      L->close();
      VerifierReport R;
      R.LogRecords = L->appendCount();
      R.LogBytes = L->byteCount();
      return R;
    };
    return Hooks(L.get(),
                 ViewLevel ? LogLevel::LL_View : LogLevel::LL_IO);
  }

  VerifierConfig VC;
  VC.Checker.Mode = ViewLevel ? CheckMode::CM_ViewRefinement
                              : CheckMode::CM_IORefinement;
  VC.Checker.StopAtFirstViolation = O.StopAtFirstViolation;
  VC.Checker.FullViewRecompute = O.FullViewRecompute;
  VC.Checker.QuiescentOnly = O.QuiescentOnly;
  VC.Checker.AuditPeriod = O.AuditPeriod;
  VC.Checker.ContextRecords = O.ContextRecords;
  VC.Checker.CollectTimings = O.CollectTimings;
  VC.Telemetry = O.Telemetry;
  VC.Online = O.Mode == RunMode::RM_OnlineIO ||
              O.Mode == RunMode::RM_OnlineView;
  // The pool only exists online; offline checking is a synchronous
  // replay, so silently dropping to 1 there is the meaningful mapping
  // (VerifierConfig::validate would reject the combination).
  VC.CheckerThreads = VC.Online ? O.CheckerThreads : 1;
  VC.LogFilePath = O.LogPath;
  if (O.Buffered)
    VC.Backend = LogBackend::LB_Buffered;
  VC.Backpressure = O.Backpressure;
  VC.Adaptive = O.Adaptive;
  // Like the pool, adaptation only exists online: there is no live
  // lag to react to in a synchronous offline replay.
  if (!VC.Online)
    VC.Adaptive.Enabled = false;
  VC.Snapshots = O.Snapshots;
  VC.Monitor = O.Monitor;
  VC.ForensicPrefix = O.ForensicPrefix;
  VC.Shipping = O.Shipping;
  if (VC.Shipping.enabled()) {
    // The Hello must describe this recording: the remote resolver
    // rebuilds the same pipeline at the same check level.
    VC.Shipping.ViewLevel = ViewLevel;
    if (VC.Shipping.Program.empty())
      VC.Shipping.Program = programShipKey(O.Prog);
  }
  auto V = std::make_shared<Verifier>(
      std::move(Spec), ViewLevel ? std::move(Replayer) : nullptr, VC);
  V->start();
  S.V = V.get();
  S.L = &V->log();
  S.Owned.push_back(V);
  S.Finish = [V] { return V->finish(); };
  return V->hooks();
}

Scenario makeMultisetScenario(const ScenarioOptions &O) {
  Scenario S;
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 48;
  MO.BuggyFindSlot = O.Buggy;
  Hooks H = wireScenario(S, O, std::make_unique<multiset::MultisetSpec>(),
                         KeyValueReplayer::guardedBag("A"));
  auto M = std::make_shared<multiset::ArrayMultiset>(MO, H);
  S.Owned.push_back(M);
  S.Op = [M](Rng &R, int64_t K1, int64_t K2, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 30)
      M->insert(K1);
    else if (Dice < 50)
      M->insertPair(K1, K2);
    else if (Dice < 75)
      M->remove(K1);
    else
      M->lookUp(K1);
  };
  return S;
}

Scenario makeBstScenario(const ScenarioOptions &O) {
  Scenario S;
  bst::BstMultiset::Options BO;
  BO.BuggyInsert = O.Buggy;
  Hooks H = wireScenario(S, O, std::make_unique<bst::BstSpec>(),
                         std::make_unique<bst::BstReplayer>());
  auto B = std::make_shared<bst::BstMultiset>(BO, H);
  S.Owned.push_back(B);
  S.Op = [B](Rng &R, int64_t K1, int64_t, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 35)
      B->insert(K1);
    else if (Dice < 65)
      B->remove(K1);
    else
      B->lookUp(K1);
  };
  S.BackgroundOp = [B] { B->compress(); };
  return S;
}

Scenario makeVectorScenario(const ScenarioOptions &O) {
  Scenario S;
  javalib::SyncVector::Options VO;
  VO.BuggyLastIndexOf = O.Buggy;
  Hooks H = wireScenario(S, O, std::make_unique<javalib::VectorSpec>(),
                         KeyValueReplayer::prefixVec("vec"));
  auto Vec = std::make_shared<javalib::SyncVector>(VO, H);
  S.Owned.push_back(Vec);
  S.Op = [Vec](Rng &R, int64_t K1, int64_t, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 40)
      Vec->add(K1 % 1000);
    else if (Dice < 60)
      Vec->removeLast();
    else if (Dice < 75)
      Vec->get(static_cast<int64_t>(R.range(64)));
    else if (Dice < 85)
      Vec->size();
    else
      Vec->lastIndexOf(K1 % 1000);
  };
  return S;
}

Scenario makeStringBufferScenario(const ScenarioOptions &O) {
  Scenario S;
  javalib::StringBufferSystem::Options BO;
  BO.NumBuffers = 3;
  BO.BuggyAppendBuffer = O.Buggy;
  Hooks H = wireScenario(
      S, O, std::make_unique<javalib::StringBufferSpec>(BO.NumBuffers),
      std::make_unique<javalib::StringBufferReplayer>(BO.NumBuffers));
  auto SB = std::make_shared<javalib::StringBufferSystem>(BO, H);
  S.Owned.push_back(SB);
  size_t N = BO.NumBuffers;
  S.Op = [SB, N](Rng &R, int64_t K1, int64_t K2, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    size_t I = static_cast<size_t>(R.range(N));
    size_t J = (I + 1 + static_cast<size_t>(R.range(N - 1))) % N;
    if (Dice < 30)
      SB->append(I, keyString(K1, 4 + K1 % 5));
    else if (Dice < 55)
      SB->appendBuffer(I, J);
    else if (Dice < 75)
      SB->setLength(I, static_cast<size_t>(K2 % 24));
    else if (Dice < 90)
      SB->toString(I);
    else
      SB->length(I);
  };
  return S;
}

Scenario makeCacheScenario(const ScenarioOptions &O) {
  Scenario S;
  auto CM = std::make_shared<chunk::ChunkManager>();
  constexpr size_t NumHandles = 24;
  std::vector<uint64_t> Handles;
  for (size_t I = 0; I < NumHandles; ++I)
    Handles.push_back(CM->allocate());

  cache::BoxCache::Options CO;
  CO.ChunkSize = 64;
  CO.BuggyUnprotectedCopy = O.Buggy;
  Hooks H =
      wireScenario(S, O, std::make_unique<cache::CacheSpec>(Handles),
                   std::make_unique<cache::CacheReplayer>(Handles));
  auto C = std::make_shared<cache::BoxCache>(*CM, CO, H);
  S.Owned.push_back(CM);
  S.Owned.push_back(C);
  auto HandleList = std::make_shared<std::vector<uint64_t>>(Handles);
  S.Owned.push_back(HandleList);
  S.Op = [C, HandleList](Rng &R, int64_t K1, int64_t K2, double) {
    uint64_t Hd = (*HandleList)[static_cast<size_t>(K1) %
                                HandleList->size()];
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 45) {
      C->write(Hd, keyBytes(K2, 16 + K2 % 16));
    } else if (Dice < 70) {
      chunk::Bytes Out;
      C->read(Hd, Out);
    } else if (Dice < 80) {
      C->flush();
    } else if (Dice < 90) {
      C->revoke(Hd);
    } else {
      C->evict();
    }
  };
  return S;
}

Scenario makeBLinkScenario(const ScenarioOptions &O) {
  Scenario S;
  auto CM = std::make_shared<chunk::ChunkManager>();
  cache::BoxCache::Options CO;
  CO.ChunkSize = 512;
  // The tree is verified assuming Cache + Chunk Manager are correct
  // (Sec. 7.2.3's modular approach): the cache runs uninstrumented.
  auto C = std::make_shared<cache::BoxCache>(*CM, CO, Hooks());

  blinktree::BLinkTree::Options TO;
  TO.MaxLeafKeys = 8;
  TO.MaxInnerKeys = 8;
  TO.BuggyDuplicates = O.Buggy;

  // The replayer needs the first leaf handle, which the tree allocates in
  // its constructor; the Chunk Manager hands out handles deterministically
  // starting at 1, so the first allocation is handle 1.
  Hooks H = wireScenario(S, O, std::make_unique<blinktree::BLinkSpec>(),
                         std::make_unique<blinktree::BLinkReplayer>(1));
  auto T = std::make_shared<blinktree::BLinkTree>(*C, *CM, TO, H);
  assert(T->firstLeafHandle() == 1 && "replayer anchored to wrong leaf");
  S.Owned.push_back(CM);
  S.Owned.push_back(C);
  S.Owned.push_back(T);
  S.Op = [T](Rng &R, int64_t K1, int64_t, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 40)
      T->insert(K1, keyBytes(K1, 8 + K1 % 9));
    else if (Dice < 65)
      T->remove(K1);
    else
      T->lookup(K1);
  };
  S.BackgroundOp = [T] { T->compress(); };
  return S;
}

Scenario makeHashtableScenario(const ScenarioOptions &O) {
  Scenario S;
  javalib::SyncHashtable::Options HO;
  HO.BuggyPutIfAbsent = O.Buggy;
  Hooks H = wireScenario(S, O, std::make_unique<javalib::HashtableSpec>(),
                         KeyValueReplayer::map("ht"));
  auto T = std::make_shared<javalib::SyncHashtable>(HO, H);
  S.Owned.push_back(T);
  S.Op = [T](Rng &R, int64_t K1, int64_t K2, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 25)
      T->put(K1, K2 % 1000);
    else if (Dice < 50)
      T->putIfAbsent(K1, K2 % 1000);
    else if (Dice < 65)
      T->remove(K1);
    else if (Dice < 90)
      T->get(K1);
    else
      T->size();
  };
  return S;
}

Scenario makeQueueScenario(const ScenarioOptions &O) {
  Scenario S;
  queue::BoundedQueue::Options QO;
  QO.Capacity = 24;
  QO.BuggyPoll = O.Buggy;
  Hooks H = wireScenario(S, O,
                         std::make_unique<queue::QueueSpec>(QO.Capacity),
                         KeyValueReplayer::map("q"));
  auto Q = std::make_shared<queue::BoundedQueue>(QO, H);
  S.Owned.push_back(Q);
  S.Op = [Q](Rng &R, int64_t K1, int64_t, double) {
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 40)
      Q->offer(K1 % 1000);
    else if (Dice < 75)
      Q->poll();
    else if (Dice < 90)
      Q->peek();
    else
      Q->size();
  };
  return S;
}

Scenario makeScanFsScenario(const ScenarioOptions &O) {
  Scenario S;
  auto CM = std::make_shared<chunk::ChunkManager>();
  cache::BoxCache::Options CO;
  CO.ChunkSize = 768; // directory chunks grow with file count
  // As with the B-link tree, the storage stack below is assumed correct
  // and runs uninstrumented.
  auto C = std::make_shared<cache::BoxCache>(*CM, CO, Hooks());

  scanfs::ScanFs::Options FO;
  FO.MaxFiles = 24;
  FO.MaxBlocksPerFile = 6;
  FO.BlockSize = 48;
  FO.BuggyEagerInodePublish = O.Buggy;

  Hooks H = wireScenario(
      S, O, std::make_unique<scanfs::ScanFsSpec>(FO.MaxFiles),
      std::make_unique<scanfs::ScanFsReplayer>());
  auto F = std::make_shared<scanfs::ScanFs>(*C, *CM, FO, H);
  S.Owned.push_back(CM);
  S.Owned.push_back(C);
  S.Owned.push_back(F);
  size_t MaxBytes =
      static_cast<size_t>(FO.MaxBlocksPerFile) * FO.BlockSize;
  S.Op = [F, MaxBytes](Rng &R, int64_t K1, int64_t K2, double) {
    std::string Name = "f" + std::to_string(static_cast<uint64_t>(K1) % 20);
    unsigned Dice = static_cast<unsigned>(R.range(100));
    if (Dice < 15) {
      F->create(Name);
    } else if (Dice < 25) {
      F->unlink(Name);
    } else if (Dice < 50) {
      F->write(Name, keyBytes(K2, 8 + static_cast<size_t>(K2) % 80));
    } else if (Dice < 65) {
      F->append(Name, keyBytes(K2 + 1, 4 + static_cast<size_t>(K2) % 24));
      (void)MaxBytes;
    } else if (Dice < 90) {
      F->read(Name);
    } else {
      F->list();
    }
  };
  // The background "syncer" thread continuously flushes the cache.
  S.BackgroundOp = [F] { F->sync(); };
  return S;
}

} // namespace

Scenario vyrd::harness::makeCompositeScenario(const ScenarioOptions &O) {
  Scenario S;
  S.Objects = {"multiset", "cache", "blinktree", "queue"};
  bool ViewLevel = O.Mode == RunMode::RM_LogOnlyView ||
                   O.Mode == RunMode::RM_OnlineView ||
                   O.Mode == RunMode::RM_OfflineView;
  LogLevel Level = ViewLevel ? LogLevel::LL_View : LogLevel::LL_IO;

  // Sub-structure configuration. Only the multiset carries the injected
  // bug: a violation must then be attributed to it and to nothing else.
  multiset::ArrayMultiset::Options MO;
  MO.Capacity = 48;
  MO.BuggyFindSlot = O.Buggy;

  auto CacheCM = std::make_shared<chunk::ChunkManager>();
  constexpr size_t NumHandles = 24;
  std::vector<uint64_t> Handles;
  for (size_t I = 0; I < NumHandles; ++I)
    Handles.push_back(CacheCM->allocate());
  cache::BoxCache::Options CO;
  CO.ChunkSize = 64;

  // The tree brings its own uninstrumented storage stack (the modular
  // assumption of makeBLinkScenario); a fresh Chunk Manager keeps its
  // first leaf at the deterministic handle 1 the replayer is anchored to.
  auto TreeCM = std::make_shared<chunk::ChunkManager>();
  cache::BoxCache::Options TreeCO;
  TreeCO.ChunkSize = 512;
  auto TreeCache =
      std::make_shared<cache::BoxCache>(*TreeCM, TreeCO, Hooks());
  blinktree::BLinkTree::Options TO;
  TO.MaxLeafKeys = 8;
  TO.MaxInnerKeys = 8;

  queue::BoundedQueue::Options QO;
  QO.Capacity = 24;

  Hooks HMul, HCache, HTree, HQueue;
  if (!modeLogs(O.Mode)) {
    S.Finish = [] { return VerifierReport(); };
  } else if (!modeChecks(O.Mode)) {
    // Logging only: a bare log, four hook sets stamping object ids in the
    // same order registerObject would assign them.
    std::shared_ptr<Log> L;
    if (O.Buffered) {
      BufferedLog::Options BO;
      BO.FilePath = O.LogPath;
      BO.RetainRecords = false;
      auto BL = std::make_shared<BufferedLog>(std::move(BO));
      assert(BL->valid() && "cannot open log file");
      L = std::move(BL);
    } else if (!O.LogPath.empty()) {
      bool Valid = false;
      L = std::make_shared<FileLog>(O.LogPath, Valid, /*RetainTail=*/false);
      assert(Valid && "cannot open log file");
      (void)Valid;
    } else {
      L = std::make_shared<MemoryLog>();
    }
    S.L = L.get();
    S.Owned.push_back(L);
    S.Finish = [L] {
      L->close();
      VerifierReport R;
      R.LogRecords = L->appendCount();
      R.LogBytes = L->byteCount();
      return R;
    };
    HMul = Hooks(L.get(), Level, nullptr, 0);
    HCache = Hooks(L.get(), Level, nullptr, 1);
    HTree = Hooks(L.get(), Level, nullptr, 2);
    HQueue = Hooks(L.get(), Level, nullptr, 3);
  } else {
    VerifierConfig VC;
    VC.Checker.Mode = ViewLevel ? CheckMode::CM_ViewRefinement
                                : CheckMode::CM_IORefinement;
    VC.Checker.StopAtFirstViolation = O.StopAtFirstViolation;
    VC.Checker.FullViewRecompute = O.FullViewRecompute;
    VC.Checker.QuiescentOnly = O.QuiescentOnly;
    VC.Checker.AuditPeriod = O.AuditPeriod;
    VC.Checker.ContextRecords = O.ContextRecords;
    VC.Checker.CollectTimings = O.CollectTimings;
    VC.Telemetry = O.Telemetry;
    VC.Online = O.Mode == RunMode::RM_OnlineIO ||
                O.Mode == RunMode::RM_OnlineView;
    VC.CheckerThreads = VC.Online ? O.CheckerThreads : 1;
    VC.LogFilePath = O.LogPath;
    if (O.Buffered)
      VC.Backend = LogBackend::LB_Buffered;
    VC.Backpressure = O.Backpressure;
    VC.Adaptive = O.Adaptive;
    // Like the pool, adaptation only exists online: there is no live
    // lag to react to in a synchronous offline replay.
    if (!VC.Online)
      VC.Adaptive.Enabled = false;
    VC.Snapshots = O.Snapshots;
    VC.Monitor = O.Monitor;
    VC.ForensicPrefix = O.ForensicPrefix;
    VC.Shipping = O.Shipping;
    if (VC.Shipping.enabled()) {
      VC.Shipping.ViewLevel = ViewLevel;
      if (VC.Shipping.Program.empty())
        VC.Shipping.Program = "composite";
    }
    auto V = std::make_shared<Verifier>(VC);
    HMul = V->registerObject(
        "multiset", std::make_unique<multiset::MultisetSpec>(),
        ViewLevel ? KeyValueReplayer::guardedBag("A") : nullptr);
    HCache = V->registerObject(
        "cache", std::make_unique<cache::CacheSpec>(Handles),
        ViewLevel ? std::make_unique<cache::CacheReplayer>(Handles)
                  : nullptr);
    HTree = V->registerObject(
        "blinktree", std::make_unique<blinktree::BLinkSpec>(),
        ViewLevel ? std::make_unique<blinktree::BLinkReplayer>(1) : nullptr);
    HQueue = V->registerObject(
        "queue", std::make_unique<queue::QueueSpec>(QO.Capacity),
        ViewLevel ? KeyValueReplayer::map("q") : nullptr);
    V->start();
    S.V = V.get();
    S.L = &V->log();
    S.Owned.push_back(V);
    S.Finish = [V] { return V->finish(); };
  }

  auto M = std::make_shared<multiset::ArrayMultiset>(MO, HMul);
  auto C = std::make_shared<cache::BoxCache>(*CacheCM, CO, HCache);
  auto T =
      std::make_shared<blinktree::BLinkTree>(*TreeCache, *TreeCM, TO, HTree);
  assert(T->firstLeafHandle() == 1 && "replayer anchored to wrong leaf");
  auto Q = std::make_shared<queue::BoundedQueue>(QO, HQueue);
  S.Owned.push_back(CacheCM);
  S.Owned.push_back(TreeCM);
  S.Owned.push_back(TreeCache);
  S.Owned.push_back(M);
  S.Owned.push_back(C);
  S.Owned.push_back(T);
  S.Owned.push_back(Q);
  auto HandleList = std::make_shared<std::vector<uint64_t>>(Handles);
  S.Owned.push_back(HandleList);

  // One thread interleaves operations on all four objects: the dice pick
  // the object, then the per-object mixes mirror the single scenarios.
  S.Op = [M, C, T, Q, HandleList](Rng &R, int64_t K1, int64_t K2, double) {
    switch (R.range(4)) {
    case 0: {
      unsigned Dice = static_cast<unsigned>(R.range(100));
      if (Dice < 30)
        M->insert(K1);
      else if (Dice < 50)
        M->insertPair(K1, K2);
      else if (Dice < 75)
        M->remove(K1);
      else
        M->lookUp(K1);
      break;
    }
    case 1: {
      uint64_t Hd =
          (*HandleList)[static_cast<size_t>(K1) % HandleList->size()];
      unsigned Dice = static_cast<unsigned>(R.range(100));
      if (Dice < 50) {
        C->write(Hd, keyBytes(K2, 16 + K2 % 16));
      } else if (Dice < 80) {
        chunk::Bytes Out;
        C->read(Hd, Out);
      } else if (Dice < 90) {
        C->flush();
      } else {
        C->evict();
      }
      break;
    }
    case 2: {
      unsigned Dice = static_cast<unsigned>(R.range(100));
      if (Dice < 40)
        T->insert(K1, keyBytes(K1, 8 + K1 % 9));
      else if (Dice < 65)
        T->remove(K1);
      else
        T->lookup(K1);
      break;
    }
    default: {
      unsigned Dice = static_cast<unsigned>(R.range(100));
      if (Dice < 40)
        Q->offer(K1 % 1000);
      else if (Dice < 75)
        Q->poll();
      else
        Q->peek();
      break;
    }
    }
  };
  S.BackgroundOp = [T] { T->compress(); };

  S.Name = std::string("Composite/") + runModeName(O.Mode) +
           (O.Buggy ? "/buggy" : "/correct");
  return S;
}

Scenario vyrd::harness::makeScenario(const ScenarioOptions &O) {
  Scenario S;
  switch (O.Prog) {
  case Program::P_MultisetVector:
    S = makeMultisetScenario(O);
    break;
  case Program::P_MultisetBst:
    S = makeBstScenario(O);
    break;
  case Program::P_Vector:
    S = makeVectorScenario(O);
    break;
  case Program::P_StringBuffer:
    S = makeStringBufferScenario(O);
    break;
  case Program::P_BLinkTree:
    S = makeBLinkScenario(O);
    break;
  case Program::P_Cache:
    S = makeCacheScenario(O);
    break;
  case Program::P_ScanFs:
    S = makeScanFsScenario(O);
    break;
  case Program::P_Hashtable:
    S = makeHashtableScenario(O);
    break;
  case Program::P_Queue:
    S = makeQueueScenario(O);
    break;
  }
  S.Name = std::string(programName(O.Prog)) + "/" + runModeName(O.Mode) +
           (O.Buggy ? "/buggy" : "/correct");
  return S;
}

namespace {

/// Builds the spec + replayer pair for \p P with exactly the constructor
/// parameters the scenario factories above use — the contract that makes
/// recorded sidecar blobs restore cleanly. Kept in one place so a scenario
/// parameter change cannot silently diverge from the resume path.
void buildProgramPipeline(Program P, bool ViewLevel, std::unique_ptr<Spec> &S,
                          std::unique_ptr<Replayer> &R) {
  switch (P) {
  case Program::P_MultisetVector:
    S = std::make_unique<multiset::MultisetSpec>();
    if (ViewLevel)
      R = KeyValueReplayer::guardedBag("A");
    break;
  case Program::P_MultisetBst:
    S = std::make_unique<bst::BstSpec>();
    if (ViewLevel)
      R = std::make_unique<bst::BstReplayer>();
    break;
  case Program::P_Vector:
    S = std::make_unique<javalib::VectorSpec>();
    if (ViewLevel)
      R = KeyValueReplayer::prefixVec("vec");
    break;
  case Program::P_StringBuffer:
    S = std::make_unique<javalib::StringBufferSpec>(3);
    if (ViewLevel)
      R = std::make_unique<javalib::StringBufferReplayer>(3);
    break;
  case Program::P_BLinkTree:
    S = std::make_unique<blinktree::BLinkSpec>();
    if (ViewLevel)
      R = std::make_unique<blinktree::BLinkReplayer>(1);
    break;
  case Program::P_Cache: {
    // The scenario allocates its handles from a fresh ChunkManager, which
    // hands them out deterministically starting at 1.
    std::vector<uint64_t> Handles;
    for (uint64_t H = 1; H <= 24; ++H)
      Handles.push_back(H);
    S = std::make_unique<cache::CacheSpec>(Handles);
    if (ViewLevel)
      R = std::make_unique<cache::CacheReplayer>(Handles);
    break;
  }
  case Program::P_ScanFs:
    S = std::make_unique<scanfs::ScanFsSpec>(24);
    if (ViewLevel)
      R = std::make_unique<scanfs::ScanFsReplayer>();
    break;
  case Program::P_Hashtable:
    S = std::make_unique<javalib::HashtableSpec>();
    if (ViewLevel)
      R = KeyValueReplayer::map("ht");
    break;
  case Program::P_Queue:
    S = std::make_unique<queue::QueueSpec>(24);
    if (ViewLevel)
      R = KeyValueReplayer::map("q");
    break;
  }
}

} // namespace

PipelineFactory vyrd::harness::makeProgramPipeline(Program P,
                                                   bool ViewLevel) {
  return [P, ViewLevel](ObjectId Id, std::string &Name,
                        std::unique_ptr<Spec> &S,
                        std::unique_ptr<Replayer> &R) {
    if (Id != 0)
      return false;
    Name = ""; // the single scenario object is anonymous
    buildProgramPipeline(P, ViewLevel, S, R);
    return S != nullptr;
  };
}

PipelineFactory vyrd::harness::makeCompositePipeline(bool ViewLevel) {
  return [ViewLevel](ObjectId Id, std::string &Name,
                     std::unique_ptr<Spec> &S, std::unique_ptr<Replayer> &R) {
    switch (Id) {
    case 0:
      Name = "multiset";
      buildProgramPipeline(Program::P_MultisetVector, ViewLevel, S, R);
      return true;
    case 1:
      Name = "cache";
      buildProgramPipeline(Program::P_Cache, ViewLevel, S, R);
      return true;
    case 2:
      Name = "blinktree";
      buildProgramPipeline(Program::P_BLinkTree, ViewLevel, S, R);
      return true;
    case 3:
      Name = "queue";
      buildProgramPipeline(Program::P_Queue, ViewLevel, S, R);
      return true;
    default:
      return false;
    }
  };
}
