//===- Workload.h - Random test harness (Sec. 7.1) --------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's test harness (Sec. 7.1): each test generates a random pool
/// of keys shared by all threads, spawns a number of threads each issuing a
/// given number of random method calls on the same data structure instance,
/// and gradually shrinks the pool to focus concurrent calls on a smaller
/// region. In implementations with compression mechanisms the compression
/// thread runs continuously. Optionally, the run stops as soon as the
/// online verifier flags a violation (the Table 1 protocol).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_HARNESS_WORKLOAD_H
#define VYRD_HARNESS_WORKLOAD_H

#include "vyrd/Verifier.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace vyrd {
namespace harness {

/// Small deterministic PRNG (xorshift64*), one per thread.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x2545F4914F6CDD1DULL) {}

  uint64_t next() {
    uint64_t X = State;
    X ^= X >> 12;
    X ^= X << 25;
    X ^= X >> 27;
    State = X;
    return X * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform in [0, N).
  uint64_t range(uint64_t N) { return N ? next() % N : 0; }

  /// True with probability \p Percent / 100.
  bool percent(unsigned Percent) { return range(100) < Percent; }

private:
  uint64_t State;
};

/// The shared, shrinking key pool.
class KeyPool {
public:
  /// \p Size keys drawn uniformly from [0, KeyRange); the usable prefix
  /// shrinks linearly from Size to Size * FinalFraction as the workload
  /// progresses.
  KeyPool(size_t Size, int64_t KeyRange, double FinalFraction,
          uint64_t Seed);

  /// A key for the current progress point (0 = start, 1 = end of run).
  int64_t pick(Rng &R, double Progress) const;

  size_t size() const { return Keys.size(); }

private:
  std::vector<int64_t> Keys;
  double FinalFraction;
};

/// Workload shape parameters.
struct WorkloadOptions {
  unsigned Threads = 4;
  unsigned OpsPerThread = 1000;
  size_t KeyPoolSize = 64;
  int64_t KeyRange = 1 << 20;
  double FinalPoolFraction = 0.25;
  uint64_t Seed = 1;
  /// Stop issuing operations once this verifier reports a violation.
  Verifier *StopOnViolation = nullptr;
  /// When set, one extra thread runs this continuously until the
  /// application threads finish (the compression thread).
  std::function<void()> BackgroundOp;
};

/// Aggregate outcome of a workload run.
struct WorkloadResult {
  /// Method calls issued by application threads (compression excluded).
  uint64_t OpsIssued = 0;
  /// Wall-clock seconds spent by the application threads.
  double Seconds = 0;
  /// Whether the run stopped early due to a detected violation.
  bool StoppedEarly = false;
};

/// Runs \p Op from Options.Threads threads, Options.OpsPerThread times
/// each. \p Op receives the thread's RNG, two keys from the pool and the
/// run progress in [0, 1].
WorkloadResult
runWorkload(const WorkloadOptions &Options,
            const std::function<void(Rng &, int64_t, int64_t, double)> &Op);

} // namespace harness
} // namespace vyrd

#endif // VYRD_HARNESS_WORKLOAD_H
