//===- Scenarios.h - Canned verification scenarios --------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One factory per program studied in the paper's evaluation (Sec. 7 /
/// Table 1): the array multiset, the BST multiset, the Vector and
/// StringBuffer models, the Boxwood Cache, and the B-link tree. A Scenario
/// bundles the instrumented data structure, its specification and
/// replayer, the verifier (per the requested run mode) and the random
/// operation mix, so tests, benchmarks and examples share one setup path.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_HARNESS_SCENARIOS_H
#define VYRD_HARNESS_SCENARIOS_H

#include "harness/Workload.h"
#include "vyrd/Epoch.h"
#include "vyrd/Verifier.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace vyrd {
namespace harness {

/// How much of the pipeline a scenario runs.
enum class RunMode : uint8_t {
  /// No logging at all ("Program alone", Tables 2 and 3).
  RM_Bare,
  /// Log records for I/O refinement, but never check ("I/O Ref." logging
  /// overhead column of Table 2).
  RM_LogOnlyIO,
  /// Log records for view refinement, but never check.
  RM_LogOnlyView,
  /// Online I/O refinement checking (verification thread).
  RM_OnlineIO,
  /// Online view refinement checking.
  RM_OnlineView,
  /// Log during the run; check when finish() is called ("VYRD alone
  /// (off-line)" column of Table 3).
  RM_OfflineIO,
  RM_OfflineView,
};

/// Whether a mode performs refinement checking.
bool modeChecks(RunMode M);
/// Whether a mode records log entries.
bool modeLogs(RunMode M);
/// Printable mode name.
const char *runModeName(RunMode M);

/// The programs of Table 1, plus this reproduction's extensions.
enum class Program : uint8_t {
  P_MultisetVector, // array multiset ("Multiset-Vector" row)
  P_MultisetBst,    // BST multiset ("Multiset-BinaryTree" row)
  P_Vector,         // java.util.Vector model
  P_StringBuffer,   // java.util.StringBuffer model
  P_BLinkTree,      // Boxwood B-link tree
  P_Cache,          // Boxwood cache
  P_ScanFs,         // MiniScan file system (extension, Sec. 7.3 spirit)
  P_Hashtable,      // java.util.Hashtable model (extension)
  P_Queue,          // two-lock bounded FIFO queue (extension)
};

const char *programName(Program P);
/// The program's shipping key: the name a producer's Hello carries and
/// vyrd-checkd's pipeline resolver understands ("multiset", "queue", ...;
/// the composite scenario ships as "composite").
const char *programShipKey(Program P);
/// The injected bug's description (the Table 1 "error" column).
const char *programBugName(Program P);
/// The six programs of the paper's Table 1, in its order.
std::vector<Program> allPrograms();
/// Programs this reproduction adds beyond the paper's six.
std::vector<Program> extensionPrograms();

/// Knobs for scenario construction.
struct ScenarioOptions {
  Program Prog = Program::P_MultisetVector;
  RunMode Mode = RunMode::RM_OnlineView;
  /// Inject the program's Table 1 bug.
  bool Buggy = false;
  /// Log to this file instead of memory (empty = MemoryLog).
  std::string LogPath;
  /// Use the sharded BufferedLog backend (with LogPath as its file when
  /// set) instead of MemoryLog/FileLog.
  bool Buffered = false;
  /// Stop recording violations after the first (Table 1 protocol).
  bool StopAtFirstViolation = false;
  /// Ablation: rebuild views from scratch at every commit.
  bool FullViewRecompute = false;
  /// Ablation (Sec. 8): compare views only at quiescent commits.
  bool QuiescentOnly = false;
  /// Audit the incremental views every N commits (0 = never).
  unsigned AuditPeriod = 0;
  /// Attach the last N log records to each violation (0 = off).
  unsigned ContextRecords = 0;
  /// Pipeline observability (metrics, lag watchdog, trace recording);
  /// applies to the checking modes, where a Verifier exists to host the
  /// hub (docs/OBSERVABILITY.md).
  TelemetryOptions Telemetry;
  /// Accumulate the Table 3 phase timings in CheckerStats.
  bool CollectTimings = false;
  /// Size of the verifier's checker pool in the online modes (1 = check
  /// inline on the consumption thread, the historical behavior). Ignored
  /// in the offline/log-only modes, where the pool is not applicable.
  unsigned CheckerThreads = 1;
  /// Bound + admission policy for the pipeline's queues, and segment
  /// rotation for file-backed logs (see Backpressure.h). Passed through
  /// to VerifierConfig::Backpressure in the checking modes.
  BackpressureConfig Backpressure;
  /// Self-tuning pipeline (VerifierConfig::Adaptive): adaptive pump batch
  /// sizing and, with EscalatePolicy, runtime escalation of the admission
  /// policy (see Adaptive.h). Online checking modes only.
  AdaptiveConfig Adaptive;
  /// Write snapshot sidecars at segment cuts (VerifierConfig::Snapshots;
  /// requires a file-backed log with Backpressure.SegmentBytes > 0). The
  /// recorded chain then supports `vyrd-check --resume` / `--epochs`.
  bool Snapshots = false;
  /// Live monitor endpoint (VerifierConfig::Monitor): when SocketPath is
  /// set, the verifier serves vyrd-mon clients on that unix socket.
  /// Requires Telemetry.Enabled (docs/OBSERVABILITY.md).
  MonitorOptions Monitor;
  /// Violation forensics (VerifierConfig::ForensicPrefix): when set, the
  /// first violation flushes a `<prefix>.<object>.forensic.json` bundle.
  std::string ForensicPrefix;
  /// Segment shipping to a remote checker fleet
  /// (VerifierConfig::Shipping; docs/SHIPPING.md). When Endpoint is set,
  /// the online modes stream closed segments to a vyrd-checkd service
  /// instead of checking locally; ViewLevel and (when empty) Program are
  /// filled in from the scenario's mode and program.
  ShipperOptions Shipping;
};

/// A ready-to-run verification scenario.
struct Scenario {
  std::string Name;
  /// One random method call; receives the thread RNG, two pool keys and
  /// the progress in [0, 1].
  std::function<void(Rng &, int64_t, int64_t, double)> Op;
  /// Compression step for programs that have one (empty otherwise).
  std::function<void()> BackgroundOp;
  /// The verifier (null in Bare/LogOnly modes).
  Verifier *V = nullptr;
  /// The log (null in Bare mode).
  Log *L = nullptr;
  /// Completes the run: closes the log and finishes checking (if any).
  /// Must be called exactly once.
  std::function<VerifierReport()> Finish;

  /// Names of the verified objects in ObjectId order. Single-object
  /// scenarios leave this empty (their one object is anonymous).
  std::vector<std::string> Objects;

  /// Ownership of the underlying objects.
  std::vector<std::shared_ptr<void>> Owned;
};

/// Builds the scenario described by \p O.
Scenario makeScenario(const ScenarioOptions &O);

/// Builds the composite multi-object scenario: an array multiset, a
/// Boxwood cache, a B-link tree and a bounded queue all verified by one
/// Verifier (one shared log, four registered objects). \p O.Prog is
/// ignored; \p O.Buggy injects the multiset's Table 1 bug, so any
/// violation must be attributed to the "multiset" object.
Scenario makeCompositeScenario(const ScenarioOptions &O);

/// PipelineFactory (see Epoch.h) that rebuilds the spec + replayer of the
/// single object makeScenario registers for \p P, with the same
/// constructor parameters — so sidecar blobs recorded by the scenario
/// restore into it. \p ViewLevel must match the recording's check mode
/// (the replayer is only built for view refinement, mirroring
/// wireScenario). Pass NumObjects = 1 to epochCheck.
PipelineFactory makeProgramPipeline(Program P, bool ViewLevel);

/// PipelineFactory mirroring makeCompositeScenario's four objects
/// (multiset, cache, blinktree, queue in ObjectId order). Pass
/// NumObjects = 4 to epochCheck.
PipelineFactory makeCompositePipeline(bool ViewLevel);

} // namespace harness
} // namespace vyrd

#endif // VYRD_HARNESS_SCENARIOS_H
