//===- Workload.cpp - Random test harness (Sec. 7.1) -----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/Workload.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace vyrd;
using namespace vyrd::harness;

KeyPool::KeyPool(size_t Size, int64_t KeyRange, double FinalFraction,
                 uint64_t Seed)
    : FinalFraction(FinalFraction) {
  Rng R(Seed * 0x9e3779b97f4a7c15ULL + 0xabcd);
  Keys.reserve(Size);
  for (size_t I = 0; I < Size; ++I)
    Keys.push_back(static_cast<int64_t>(R.range(KeyRange)));
}

int64_t KeyPool::pick(Rng &R, double Progress) const {
  if (Progress < 0)
    Progress = 0;
  if (Progress > 1)
    Progress = 1;
  double Frac = 1.0 - Progress * (1.0 - FinalFraction);
  size_t Effective = static_cast<size_t>(Keys.size() * Frac);
  if (Effective == 0)
    Effective = 1;
  return Keys[R.range(Effective)];
}

WorkloadResult vyrd::harness::runWorkload(
    const WorkloadOptions &Options,
    const std::function<void(Rng &, int64_t, int64_t, double)> &Op) {
  KeyPool Pool(Options.KeyPoolSize, Options.KeyRange,
               Options.FinalPoolFraction, Options.Seed);
  std::atomic<uint64_t> Issued{0};
  std::atomic<bool> Stop{false};
  std::atomic<bool> AppDone{false};

  auto Start = std::chrono::steady_clock::now();

  std::vector<std::thread> Threads;
  Threads.reserve(Options.Threads);
  for (unsigned T = 0; T < Options.Threads; ++T) {
    Threads.emplace_back([&, T] {
      Rng R(Options.Seed * 1000003ULL + T * 7919ULL + 1);
      for (unsigned I = 0; I < Options.OpsPerThread; ++I) {
        if (Stop.load(std::memory_order_relaxed))
          break;
        if (Options.StopOnViolation &&
            Options.StopOnViolation->violationSeen()) {
          Stop.store(true, std::memory_order_relaxed);
          break;
        }
        double Progress =
            static_cast<double>(I) / Options.OpsPerThread;
        int64_t K1 = Pool.pick(R, Progress);
        int64_t K2 = Pool.pick(R, Progress);
        Op(R, K1, K2, Progress);
        Issued.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread Background;
  if (Options.BackgroundOp) {
    Background = std::thread([&] {
      while (!AppDone.load(std::memory_order_acquire)) {
        Options.BackgroundOp();
        std::this_thread::yield();
      }
    });
  }

  for (std::thread &T : Threads)
    T.join();
  AppDone.store(true, std::memory_order_release);
  if (Background.joinable())
    Background.join();

  WorkloadResult Res;
  Res.OpsIssued = Issued.load();
  Res.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Res.StoppedEarly = Stop.load();
  return Res;
}
