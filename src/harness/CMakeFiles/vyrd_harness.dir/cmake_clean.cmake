file(REMOVE_RECURSE
  "CMakeFiles/vyrd_harness.dir/Scenarios.cpp.o"
  "CMakeFiles/vyrd_harness.dir/Scenarios.cpp.o.d"
  "CMakeFiles/vyrd_harness.dir/Workload.cpp.o"
  "CMakeFiles/vyrd_harness.dir/Workload.cpp.o.d"
  "libvyrd_harness.a"
  "libvyrd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
