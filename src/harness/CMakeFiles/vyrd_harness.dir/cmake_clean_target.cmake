file(REMOVE_RECURSE
  "libvyrd_harness.a"
)
