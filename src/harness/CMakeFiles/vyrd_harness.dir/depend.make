# Empty dependencies file for vyrd_harness.
# This may be replaced when dependencies are built.
