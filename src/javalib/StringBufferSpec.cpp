//===- StringBufferSpec.cpp - Atomic spec + replayer for buffers ----------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/StringBufferSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::javalib;

//===----------------------------------------------------------------------===//
// StringBufferSpec
//===----------------------------------------------------------------------===//

StringBufferSpec::StringBufferSpec(size_t NumBuffers)
    : V(SbVocab::get()), S(NumBuffers) {}

bool StringBufferSpec::isObserver(Name Method) const {
  return Method == V.ToString || Method == V.Length;
}

void StringBufferSpec::setBuf(size_t I, std::string NewVal, View &ViewS) {
  ViewS.remove(Value(static_cast<int64_t>(I)), Value(S[I]));
  S[I] = std::move(NewVal);
  ViewS.add(Value(static_cast<int64_t>(I)), Value(S[I]));
}

bool StringBufferSpec::applyMutator(Name Method, const ValueList &Args,
                                    const Value &Ret, View &ViewS) {
  if (!Ret.isBool() || !Ret.asBool())
    return false; // all buffer mutators report success
  if (Args.empty() || !Args[0].isInt())
    return false;
  size_t I = static_cast<size_t>(Args[0].asInt());
  if (I >= S.size())
    return false;

  if (Method == V.Append) {
    if (Args.size() != 2 || !Args[1].isStr())
      return false;
    setBuf(I, S[I] + Args[1].asStr(), ViewS);
    return true;
  }

  if (Method == V.AppendBuffer) {
    if (Args.size() != 2 || !Args[1].isInt())
      return false;
    size_t Src = static_cast<size_t>(Args[1].asInt());
    if (Src >= S.size())
      return false;
    // Atomic semantics: append src's *current* abstract contents.
    setBuf(I, S[I] + S[Src], ViewS);
    return true;
  }

  if (Method == V.SetLength) {
    if (Args.size() != 2 || !Args[1].isInt())
      return false;
    size_t N = static_cast<size_t>(Args[1].asInt());
    if (N < S[I].size())
      setBuf(I, S[I].substr(0, N), ViewS);
    return true;
  }

  return false;
}

bool StringBufferSpec::returnAllowed(Name Method, const ValueList &Args,
                                     const Value &Ret) const {
  if (Args.size() != 1 || !Args[0].isInt())
    return false;
  size_t I = static_cast<size_t>(Args[0].asInt());
  if (I >= S.size())
    return false;

  if (Method == V.ToString)
    return Ret.isStr() && Ret.asStr() == S[I];
  if (Method == V.Length)
    return Ret.isInt() && Ret.asInt() == static_cast<int64_t>(S[I].size());
  return false;
}

void StringBufferSpec::buildView(View &Out) const {
  Out.clear();
  for (size_t I = 0; I < S.size(); ++I)
    Out.add(Value(static_cast<int64_t>(I)), Value(S[I]));
}

//===----------------------------------------------------------------------===//
// StringBufferReplayer
//===----------------------------------------------------------------------===//

StringBufferReplayer::StringBufferReplayer(size_t NumBuffers)
    : V(SbVocab::get()), Shadow(NumBuffers) {}

void StringBufferReplayer::applyUpdate(const Action &A, View &ViewI) {
  assert(A.Kind == ActionKind::AK_ReplayOp &&
         "string buffers log coarse-grained replay ops only");
  assert(A.Args.size() == 2 && A.Args[0].isInt());
  size_t I = static_cast<size_t>(A.Args[0].asInt());
  assert(I < Shadow.size());

  std::string NewVal;
  if (A.Var == V.OpAppend) {
    NewVal = Shadow[I] + A.Args[1].asStr();
  } else if (A.Var == V.OpSetLen) {
    NewVal = Shadow[I].substr(
        0, static_cast<size_t>(A.Args[1].asInt()));
  } else {
    assert(false && "unknown string-buffer replay op");
    return;
  }
  ViewI.remove(Value(static_cast<int64_t>(I)), Value(Shadow[I]));
  Shadow[I] = std::move(NewVal);
  ViewI.add(Value(static_cast<int64_t>(I)), Value(Shadow[I]));
}

void StringBufferReplayer::buildView(View &Out) const {
  Out.clear();
  for (size_t I = 0; I < Shadow.size(); ++I)
    Out.add(Value(static_cast<int64_t>(I)), Value(Shadow[I]));
}

namespace {

bool saveStrings(ByteWriter &W, const std::vector<std::string> &V) {
  W.varint(V.size());
  for (const std::string &S : V)
    W.str(S);
  return true;
}

bool loadStrings(ByteReader &R, std::vector<std::string> &V) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 20))
    return false;
  V.assign(N, std::string());
  for (uint64_t I = 0; I < N; ++I)
    V[I] = R.str();
  return R.ok();
}

} // namespace

bool StringBufferSpec::saveState(ByteWriter &W) const {
  return saveStrings(W, S);
}

bool StringBufferSpec::loadState(ByteReader &R) { return loadStrings(R, S); }

bool StringBufferReplayer::saveState(ByteWriter &W) const {
  return saveStrings(W, Shadow);
}

bool StringBufferReplayer::loadState(ByteReader &R) {
  return loadStrings(R, Shadow);
}
