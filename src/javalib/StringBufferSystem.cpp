//===- StringBufferSystem.cpp - java.lang.StringBuffer model --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/StringBufferSystem.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::javalib;

SbVocab SbVocab::get() {
  SbVocab V;
  V.Append = internName("SbAppend");
  V.AppendBuffer = internName("SbAppendBuffer");
  V.SetLength = internName("SbSetLength");
  V.ToString = internName("SbToString");
  V.Length = internName("SbLength");
  V.OpAppend = internName("sb.append");
  V.OpSetLen = internName("sb.setlen");
  return V;
}

StringBufferSystem::StringBufferSystem(const Options &Opts, Hooks H)
    : Opts(Opts), H(H), V(SbVocab::get()) {
  assert(Opts.NumBuffers >= 1);
  Bufs.reserve(Opts.NumBuffers);
  for (size_t I = 0; I < Opts.NumBuffers; ++I)
    Bufs.push_back(std::make_unique<Buf>());
}

void StringBufferSystem::append(size_t I, const std::string &S) {
  assert(I < Bufs.size());
  MethodScope Scope(H, V.Append, {Value(static_cast<int64_t>(I)), Value(S)});
  {
    Buf &B = *Bufs[I];
    std::lock_guard Lock(B.M);
    CommitBlock Block(H);
    B.Data += S;
    B.LenMirror.store(B.Data.size(), std::memory_order_relaxed);
    H.replayOp(V.OpAppend, {Value(static_cast<int64_t>(I)), Value(S)});
    H.commit();
  }
  Scope.setReturn(Value(true));
}

void StringBufferSystem::appendBuffer(size_t Dst, size_t Src) {
  assert(Dst < Bufs.size() && Src < Bufs.size() && Dst != Src);
  MethodScope Scope(H, V.AppendBuffer,
                    {Value(static_cast<int64_t>(Dst)),
                     Value(static_cast<int64_t>(Src))});
  Buf &D = *Bufs[Dst];
  Buf &S = *Bufs[Src];
  std::string Snapshot;

  if (Opts.BuggyAppendBuffer) {
    // BUG (JDK StringBuffer): append(StringBuffer sb) reads sb.length()
    // under sb's monitor, then copies sb's characters in a separate
    // unprotected step (getChars). A concurrent setLength(shorter) makes
    // the copy torn; characters past the new end read as garbage.
    size_t N = S.LenMirror.load(std::memory_order_relaxed);
    Chaos::point();
    Snapshot.reserve(N);
    for (size_t C = 0; C < N; ++C) {
      char Ch;
      {
        std::lock_guard SrcLock(S.M); // per-char access, not atomic overall
        Ch = C < S.Data.size() ? S.Data[C] : '?';
      }
      Snapshot.push_back(Ch);
      if ((C & 7) == 0)
        Chaos::point();
    }
    std::lock_guard DstLock(D.M);
    CommitBlock Block(H);
    D.Data += Snapshot;
    D.LenMirror.store(D.Data.size(), std::memory_order_relaxed);
    // The replay record carries the bytes *actually appended*, so the
    // shadow state mirrors a torn copy faithfully.
    H.replayOp(V.OpAppend,
               {Value(static_cast<int64_t>(Dst)), Value(Snapshot)});
    H.commit();
    Scope.setReturn(Value(true));
    return;
  }

  // Correct version: in Java, append(StringBuffer) holds this's monitor
  // and getChars holds src's nested inside it, so the copy is atomic with
  // the append. We acquire the two monitors in index order to rule out the
  // deadlock the nested Java locking is prone to.
  {
    Buf &Lo = Dst < Src ? D : S;
    Buf &Hi = Dst < Src ? S : D;
    std::lock_guard LockLo(Lo.M);
    std::lock_guard LockHi(Hi.M);
    Snapshot = S.Data;
    CommitBlock Block(H);
    D.Data += Snapshot;
    D.LenMirror.store(D.Data.size(), std::memory_order_relaxed);
    H.replayOp(V.OpAppend,
               {Value(static_cast<int64_t>(Dst)), Value(Snapshot)});
    H.commit();
  }
  Scope.setReturn(Value(true));
}

void StringBufferSystem::setLength(size_t I, size_t N) {
  assert(I < Bufs.size());
  MethodScope Scope(H, V.SetLength,
                    {Value(static_cast<int64_t>(I)),
                     Value(static_cast<int64_t>(N))});
  {
    Buf &B = *Bufs[I];
    std::lock_guard Lock(B.M);
    if (N < B.Data.size()) {
      CommitBlock Block(H);
      B.Data.resize(N);
      B.LenMirror.store(B.Data.size(), std::memory_order_relaxed);
      H.replayOp(V.OpSetLen, {Value(static_cast<int64_t>(I)),
                              Value(static_cast<int64_t>(N))});
      H.commit();
    } else {
      H.commit(); // no-op truncation
    }
  }
  Scope.setReturn(Value(true));
}

std::string StringBufferSystem::toString(size_t I) const {
  assert(I < Bufs.size());
  MethodScope Scope(H, V.ToString, {Value(static_cast<int64_t>(I))});
  std::string Out;
  {
    const Buf &B = *Bufs[I];
    std::lock_guard Lock(B.M);
    Out = B.Data;
  }
  Scope.setReturn(Value(Out));
  return Out;
}

int64_t StringBufferSystem::length(size_t I) const {
  assert(I < Bufs.size());
  MethodScope Scope(H, V.Length, {Value(static_cast<int64_t>(I))});
  int64_t N;
  {
    const Buf &B = *Bufs[I];
    std::lock_guard Lock(B.M);
    N = static_cast<int64_t>(B.Data.size());
  }
  Scope.setReturn(Value(N));
  return N;
}
