//===- StringBufferSystem.cpp - java.lang.StringBuffer model --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/StringBufferSystem.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::javalib;

SbVocab SbVocab::get() {
  SbVocab V;
  V.Append = internName("SbAppend");
  V.AppendBuffer = internName("SbAppendBuffer");
  V.SetLength = internName("SbSetLength");
  V.ToString = internName("SbToString");
  V.Length = internName("SbLength");
  V.OpAppend = internName("sb.append");
  V.OpSetLen = internName("sb.setlen");
  return V;
}

StringBufferSystemImpl::StringBufferSystemImpl(const Options &Opts,
                                               AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx), V(SbVocab::get()) {
  assert(Opts.NumBuffers >= 1);
  Bufs.reserve(Opts.NumBuffers);
  for (size_t I = 0; I < Opts.NumBuffers; ++I)
    Bufs.push_back(std::make_unique<Buf>(Ctx));
}

void StringBufferSystemImpl::append(size_t I, const std::string &S) {
  assert(I < Bufs.size());
  Buf &B = *Bufs[I];
  LockGuard Lock(B.M);
  B.Data += S;
  B.LenMirror.store(B.Data.size(), std::memory_order_relaxed);
  Ctx.replayOp(V.OpAppend, {Value(static_cast<int64_t>(I)), Value(S)});
  Ctx.commit();
}

void StringBufferSystemImpl::appendBuffer(size_t Dst, size_t Src) {
  assert(Dst < Bufs.size() && Src < Bufs.size() && Dst != Src);
  Buf &D = *Bufs[Dst];
  Buf &S = *Bufs[Src];
  std::string Snapshot;

  if (Opts.BuggyAppendBuffer) {
    // BUG (JDK StringBuffer): append(StringBuffer sb) reads sb.length()
    // under sb's monitor, then copies sb's characters in a separate
    // unprotected step (getChars). A concurrent setLength(shorter) makes
    // the copy torn; characters past the new end read as garbage.
    size_t N = S.LenMirror.load(std::memory_order_relaxed);
    Chaos::point();
    Snapshot.reserve(N);
    for (size_t C = 0; C < N; ++C) {
      char Ch;
      {
        LockGuard SrcLock(S.M); // per-char access, not atomic overall
        Ch = C < S.Data.size() ? S.Data[C] : '?';
      }
      Snapshot.push_back(Ch);
    }
    LockGuard DstLock(D.M);
    D.Data += Snapshot;
    D.LenMirror.store(D.Data.size(), std::memory_order_relaxed);
    // The replay record carries the bytes *actually appended*, so the
    // shadow state mirrors a torn copy faithfully.
    Ctx.replayOp(V.OpAppend,
                 {Value(static_cast<int64_t>(Dst)), Value(Snapshot)});
    Ctx.commit();
    return;
  }

  // Correct version: in Java, append(StringBuffer) holds this's monitor
  // and getChars holds src's nested inside it, so the copy is atomic with
  // the append. We acquire the two monitors in index order to rule out the
  // deadlock the nested Java locking is prone to.
  Buf &Lo = Dst < Src ? D : S;
  Buf &Hi = Dst < Src ? S : D;
  LockGuard LockLo(Lo.M);
  LockGuard LockHi(Hi.M);
  Snapshot = S.Data;
  D.Data += Snapshot;
  D.LenMirror.store(D.Data.size(), std::memory_order_relaxed);
  Ctx.replayOp(V.OpAppend,
               {Value(static_cast<int64_t>(Dst)), Value(Snapshot)});
  Ctx.commit();
}

void StringBufferSystemImpl::setLength(size_t I, size_t N) {
  assert(I < Bufs.size());
  Buf &B = *Bufs[I];
  LockGuard Lock(B.M);
  if (N < B.Data.size()) {
    B.Data.resize(N);
    B.LenMirror.store(B.Data.size(), std::memory_order_relaxed);
    Ctx.replayOp(V.OpSetLen, {Value(static_cast<int64_t>(I)),
                              Value(static_cast<int64_t>(N))});
  }
  // The spec truncates whenever N is below the *abstract* length at the
  // commit point, so even the no-op case commits under the monitor.
  Ctx.commit();
}

std::string StringBufferSystemImpl::toString(size_t I) const {
  assert(I < Bufs.size());
  const Buf &B = *Bufs[I];
  LockGuard Lock(B.M);
  return B.Data;
}

int64_t StringBufferSystemImpl::length(size_t I) const {
  assert(I < Bufs.size());
  const Buf &B = *Bufs[I];
  LockGuard Lock(B.M);
  return static_cast<int64_t>(B.Data.size());
}
