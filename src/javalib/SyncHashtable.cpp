//===- SyncHashtable.cpp - java.util.Hashtable model ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/SyncHashtable.h"

using namespace vyrd;
using namespace vyrd::javalib;

HtVocab HtVocab::get() {
  HtVocab V;
  V.Put = internName("HtPut");
  V.Get = internName("HtGet");
  V.Remove = internName("HtRemove");
  V.PutIfAbsent = internName("HtPutIfAbsent");
  V.Size = internName("HtSize");
  return V;
}

Name HtVocab::slotName(int64_t Key) {
  return internName("ht[" + std::to_string(Key) + "]");
}

SyncHashtable::SyncHashtable(const Options &Opts, Hooks H)
    : Opts(Opts), H(H), V(HtVocab::get()), Table(Opts.Buckets) {}

SyncHashtable::Entry *SyncHashtable::findEntry(int64_t Key) {
  for (Entry &E : bucket(Key))
    if (E.Key == Key)
      return &E;
  return nullptr;
}

Value SyncHashtable::put(int64_t Key, int64_t Val) {
  MethodScope Scope(H, V.Put, {Value(Key), Value(Val)});
  Value Prev;
  {
    std::lock_guard Lock(M);
    CommitBlock Block(H);
    if (Entry *E = findEntry(Key)) {
      Prev = Value(E->Val);
      E->Val = Val;
    } else {
      bucket(Key).push_back(Entry{Key, Val});
      ++Count;
    }
    H.write(HtVocab::slotName(Key), Value(Val));
    H.commit();
  }
  Scope.setReturn(Prev);
  return Prev;
}

Value SyncHashtable::get(int64_t Key) const {
  MethodScope Scope(H, V.Get, {Value(Key)});
  Value Ret;
  {
    std::lock_guard Lock(M);
    if (const Entry *E =
            const_cast<SyncHashtable *>(this)->findEntry(Key))
      Ret = Value(E->Val);
  }
  Scope.setReturn(Ret);
  return Ret;
}

Value SyncHashtable::remove(int64_t Key) {
  MethodScope Scope(H, V.Remove, {Value(Key)});
  Value Prev;
  {
    std::lock_guard Lock(M);
    std::list<Entry> &B = bucket(Key);
    for (auto It = B.begin(); It != B.end(); ++It) {
      if (It->Key != Key)
        continue;
      Prev = Value(It->Val);
      B.erase(It);
      --Count;
      CommitBlock Block(H);
      H.write(HtVocab::slotName(Key), Value());
      H.commit();
      Scope.setReturn(Prev);
      return Prev;
    }
    H.commit(); // removing an absent key: no change
  }
  Scope.setReturn(Prev);
  return Prev;
}

bool SyncHashtable::putIfAbsent(int64_t Key, int64_t Val) {
  MethodScope Scope(H, V.PutIfAbsent, {Value(Key), Value(Val)});
  bool Inserted = false;
  if (Opts.BuggyPutIfAbsent) {
    // BUG: contains and put under separate monitor acquisitions — the
    // textbook check-then-act race. Both of two concurrent calls can see
    // the key absent; the loser overwrites the winner and still claims to
    // have inserted.
    bool Present;
    {
      std::lock_guard Lock(M);
      Present = findEntry(Key) != nullptr;
    }
    Chaos::point(); // the racy window
    if (!Present) {
      std::lock_guard Lock(M);
      CommitBlock Block(H);
      if (Entry *E = findEntry(Key)) {
        E->Val = Val; // silent overwrite of the winner
      } else {
        bucket(Key).push_back(Entry{Key, Val});
        ++Count;
      }
      H.write(HtVocab::slotName(Key), Value(Val));
      H.commit();
      Inserted = true;
    } else {
      H.commit();
    }
  } else {
    std::lock_guard Lock(M);
    if (!findEntry(Key)) {
      CommitBlock Block(H);
      bucket(Key).push_back(Entry{Key, Val});
      ++Count;
      H.write(HtVocab::slotName(Key), Value(Val));
      H.commit();
      Inserted = true;
    } else {
      H.commit();
    }
  }
  Scope.setReturn(Value(Inserted));
  return Inserted;
}

int64_t SyncHashtable::size() const {
  MethodScope Scope(H, V.Size, {});
  int64_t N;
  {
    std::lock_guard Lock(M);
    N = static_cast<int64_t>(Count);
  }
  Scope.setReturn(Value(N));
  return N;
}
