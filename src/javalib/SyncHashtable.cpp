//===- SyncHashtable.cpp - java.util.Hashtable model ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/SyncHashtable.h"

using namespace vyrd;
using namespace vyrd::javalib;

HtVocab HtVocab::get() {
  HtVocab V;
  V.Put = internName("HtPut");
  V.Get = internName("HtGet");
  V.Remove = internName("HtRemove");
  V.PutIfAbsent = internName("HtPutIfAbsent");
  V.Size = internName("HtSize");
  return V;
}

Name HtVocab::slotName(int64_t Key) {
  return internName("ht[" + std::to_string(Key) + "]");
}

SyncHashtableImpl::SyncHashtableImpl(const Options &Opts, AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx), M(Ctx), Table(Opts.Buckets) {}

SyncHashtableImpl::Entry *SyncHashtableImpl::findEntry(int64_t Key) {
  for (Entry &E : bucket(Key))
    if (E.Key == Key)
      return &E;
  return nullptr;
}

Value SyncHashtableImpl::put(int64_t Key, int64_t Val) {
  Value Prev;
  {
    LockGuard Lock(M);
    if (Entry *E = findEntry(Key)) {
      Prev = Value(E->Val);
      E->Val = Val;
    } else {
      bucket(Key).push_back(Entry{Key, Val});
      ++Count;
    }
    Ctx.write(HtVocab::slotName(Key), Value(Val));
    Ctx.commit();
  }
  return Prev;
}

Value SyncHashtableImpl::get(int64_t Key) const {
  Value Ret;
  {
    LockGuard Lock(M);
    if (const Entry *E =
            const_cast<SyncHashtableImpl *>(this)->findEntry(Key))
      Ret = Value(E->Val);
  }
  return Ret;
}

Value SyncHashtableImpl::remove(int64_t Key) {
  Value Prev;
  {
    LockGuard Lock(M);
    std::list<Entry> &B = bucket(Key);
    for (auto It = B.begin(); It != B.end(); ++It) {
      if (It->Key != Key)
        continue;
      Prev = Value(It->Val);
      B.erase(It);
      --Count;
      Ctx.write(HtVocab::slotName(Key), Value());
      Ctx.commit();
      return Prev;
    }
    // A null return is only legal while the key is actually absent, so
    // the no-op case commits under the monitor too.
    Ctx.commit();
  }
  return Prev;
}

bool SyncHashtableImpl::putIfAbsent(int64_t Key, int64_t Val) {
  bool Inserted = false;
  if (Opts.BuggyPutIfAbsent) {
    // BUG: contains and put under separate monitor acquisitions — the
    // textbook check-then-act race. Both of two concurrent calls can see
    // the key absent; the loser overwrites the winner and still claims to
    // have inserted.
    bool Present;
    {
      LockGuard Lock(M);
      Present = findEntry(Key) != nullptr;
    }
    Chaos::point(); // the racy window
    if (!Present) {
      LockGuard Lock(M);
      if (Entry *E = findEntry(Key)) {
        E->Val = Val; // silent overwrite of the winner
      } else {
        bucket(Key).push_back(Entry{Key, Val});
        ++Count;
      }
      Ctx.write(HtVocab::slotName(Key), Value(Val));
      Ctx.commit();
      Inserted = true;
    }
    // Present: no change; auto-commit covers the failure return.
  } else {
    LockGuard Lock(M);
    if (!findEntry(Key)) {
      bucket(Key).push_back(Entry{Key, Val});
      ++Count;
      Ctx.write(HtVocab::slotName(Key), Value(Val));
      Inserted = true;
    }
    // A false return is only legal while the key is actually present, so
    // both outcomes commit under the monitor.
    Ctx.commit();
  }
  return Inserted;
}

int64_t SyncHashtableImpl::size() const {
  LockGuard Lock(M);
  return static_cast<int64_t>(Count);
}
