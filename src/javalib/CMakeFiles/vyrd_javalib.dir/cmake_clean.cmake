file(REMOVE_RECURSE
  "CMakeFiles/vyrd_javalib.dir/HashtableSpec.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/HashtableSpec.cpp.o.d"
  "CMakeFiles/vyrd_javalib.dir/StringBufferSpec.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/StringBufferSpec.cpp.o.d"
  "CMakeFiles/vyrd_javalib.dir/StringBufferSystem.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/StringBufferSystem.cpp.o.d"
  "CMakeFiles/vyrd_javalib.dir/SyncHashtable.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/SyncHashtable.cpp.o.d"
  "CMakeFiles/vyrd_javalib.dir/SyncVector.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/SyncVector.cpp.o.d"
  "CMakeFiles/vyrd_javalib.dir/VectorSpec.cpp.o"
  "CMakeFiles/vyrd_javalib.dir/VectorSpec.cpp.o.d"
  "libvyrd_javalib.a"
  "libvyrd_javalib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vyrd_javalib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
