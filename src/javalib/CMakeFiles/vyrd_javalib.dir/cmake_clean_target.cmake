file(REMOVE_RECURSE
  "libvyrd_javalib.a"
)
