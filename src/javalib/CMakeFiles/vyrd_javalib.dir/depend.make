# Empty dependencies file for vyrd_javalib.
# This may be replaced when dependencies are built.
