
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/javalib/HashtableSpec.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/HashtableSpec.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/HashtableSpec.cpp.o.d"
  "/root/repo/src/javalib/StringBufferSpec.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/StringBufferSpec.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/StringBufferSpec.cpp.o.d"
  "/root/repo/src/javalib/StringBufferSystem.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/StringBufferSystem.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/StringBufferSystem.cpp.o.d"
  "/root/repo/src/javalib/SyncHashtable.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/SyncHashtable.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/SyncHashtable.cpp.o.d"
  "/root/repo/src/javalib/SyncVector.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/SyncVector.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/SyncVector.cpp.o.d"
  "/root/repo/src/javalib/VectorSpec.cpp" "src/javalib/CMakeFiles/vyrd_javalib.dir/VectorSpec.cpp.o" "gcc" "src/javalib/CMakeFiles/vyrd_javalib.dir/VectorSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/CMakeFiles/vyrd_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
