//===- VectorSpec.h - Atomic spec + replayer for SyncVector -----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic sequence of integers) for the SyncVector
/// model. The view is the sequence as (index, element) pairs. The
/// implementation side is replayed by the generic Prefix-shape
/// `KeyValueReplayer` over the `vec[i]` / `vec.len` writes.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_VECTORSPEC_H
#define VYRD_JAVALIB_VECTORSPEC_H

#include "javalib/SyncVector.h"
#include "vyrd/Spec.h"

namespace vyrd {
namespace javalib {

/// Specification state: the abstract sequence.
class VectorSpec : public Spec {
public:
  VectorSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  const std::vector<int64_t> &contents() const { return S; }

private:
  VectorVocab V;
  std::vector<int64_t> S;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_VECTORSPEC_H
