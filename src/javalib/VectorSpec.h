//===- VectorSpec.h - Atomic spec + replayer for SyncVector -----*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic sequence of integers) and replayer (shadow
/// storage reconstructed from `vec[i]` / `vec.len` writes) for the
/// SyncVector model. The view is the sequence as (index, element) pairs.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_VECTORSPEC_H
#define VYRD_JAVALIB_VECTORSPEC_H

#include "javalib/SyncVector.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

#include <unordered_map>

namespace vyrd {
namespace javalib {

/// Specification state: the abstract sequence.
class VectorSpec : public Spec {
public:
  VectorSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  const std::vector<int64_t> &contents() const { return S; }

private:
  VectorVocab V;
  std::vector<int64_t> S;
};

/// Shadow state: element storage plus the logical length.
class VectorReplayer : public Replayer {
public:
  VectorReplayer();

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  Name LenName;
  std::unordered_map<uint32_t, size_t> ElemIndex; // name id -> index
  std::vector<int64_t> Storage; // raw slots (may exceed Len)
  size_t Len = 0;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_VECTORSPEC_H
