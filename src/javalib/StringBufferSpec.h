//===- StringBufferSpec.h - Atomic spec + replayer for buffers --*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (a family of atomic strings) and replayer (shadow strings
/// reconstructed from `sb.append` / `sb.setlen` replay records) for the
/// StringBufferSystem model. The view holds one (buffer index, contents)
/// entry per buffer.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_STRINGBUFFERSPEC_H
#define VYRD_JAVALIB_STRINGBUFFERSPEC_H

#include "javalib/StringBufferSystem.h"
#include "vyrd/Replayer.h"
#include "vyrd/Spec.h"

namespace vyrd {
namespace javalib {

/// Specification state: one string per buffer.
class StringBufferSpec : public Spec {
public:
  explicit StringBufferSpec(size_t NumBuffers);

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  const std::string &contents(size_t I) const { return S[I]; }

private:
  void setBuf(size_t I, std::string NewVal, View &ViewS);

  SbVocab V;
  std::vector<std::string> S;
};

/// Shadow state: one string per buffer, from replay records.
class StringBufferReplayer : public Replayer {
public:
  explicit StringBufferReplayer(size_t NumBuffers);

  void applyUpdate(const Action &A, View &ViewI) override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

private:
  SbVocab V;
  std::vector<std::string> Shadow;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_STRINGBUFFERSPEC_H
