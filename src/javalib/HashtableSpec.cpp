//===- HashtableSpec.cpp - Atomic spec + replayer for SyncHashtable --------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/HashtableSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::javalib;

//===----------------------------------------------------------------------===//
// HashtableSpec
//===----------------------------------------------------------------------===//

HashtableSpec::HashtableSpec() : V(HtVocab::get()) {}

bool HashtableSpec::isObserver(Name Method) const {
  return Method == V.Get || Method == V.Size;
}

bool HashtableSpec::applyMutator(Name Method, const ValueList &Args,
                                 const Value &Ret, View &ViewS) {
  if (Args.empty() || !Args[0].isInt())
    return false;
  int64_t Key = Args[0].asInt();
  auto It = M.find(Key);

  if (Method == V.Put) {
    if (Args.size() != 2 || !Args[1].isInt())
      return false;
    // Must return the previous mapping (or null).
    if (It == M.end()) {
      if (!Ret.isNull())
        return false;
      M.emplace(Key, Args[1].asInt());
    } else {
      if (!Ret.isInt() || Ret.asInt() != It->second)
        return false;
      ViewS.remove(Value(Key), Value(It->second));
      It->second = Args[1].asInt();
    }
    ViewS.add(Value(Key), Args[1]);
    return true;
  }

  if (Method == V.Remove) {
    if (Args.size() != 1)
      return false;
    if (It == M.end())
      return Ret.isNull();
    if (!Ret.isInt() || Ret.asInt() != It->second)
      return false;
    ViewS.remove(Value(Key), Value(It->second));
    M.erase(It);
    return true;
  }

  if (Method == V.PutIfAbsent) {
    if (Args.size() != 2 || !Args[1].isInt() || !Ret.isBool())
      return false;
    // The success/failure report must match presence exactly: this is
    // what the check-then-act bug breaks.
    if (Ret.asBool()) {
      if (It != M.end())
        return false;
      M.emplace(Key, Args[1].asInt());
      ViewS.add(Value(Key), Args[1]);
      return true;
    }
    return It != M.end();
  }

  return false;
}

bool HashtableSpec::returnAllowed(Name Method, const ValueList &Args,
                                  const Value &Ret) const {
  if (Method == V.Get) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    auto It = M.find(Args[0].asInt());
    if (It == M.end())
      return Ret.isNull();
    return Ret.isInt() && Ret.asInt() == It->second;
  }
  if (Method == V.Size)
    return Ret.isInt() && Ret.asInt() == static_cast<int64_t>(M.size());
  return false;
}

void HashtableSpec::buildView(View &Out) const {
  Out.clear();
  for (const auto &[K, Val] : M)
    Out.add(Value(K), Value(Val));
}

//===----------------------------------------------------------------------===//
// Snapshot support
//===----------------------------------------------------------------------===//

namespace {

void saveIntMap(ByteWriter &W, const std::map<int64_t, int64_t> &M) {
  W.varint(M.size());
  for (const auto &[K, Val] : M) {
    W.svarint(K);
    W.svarint(Val);
  }
}

bool loadIntMap(ByteReader &R, std::map<int64_t, int64_t> &M) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  M.clear();
  for (uint64_t I = 0; I < N; ++I) {
    int64_t K = R.svarint();
    int64_t Val = R.svarint();
    M.emplace(K, Val);
  }
  return R.ok();
}

} // namespace

bool HashtableSpec::saveState(ByteWriter &W) const {
  saveIntMap(W, M);
  return true;
}

bool HashtableSpec::loadState(ByteReader &R) { return loadIntMap(R, M); }

