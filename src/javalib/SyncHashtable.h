//===- SyncHashtable.h - java.util.Hashtable model --------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ model of java.util.Hashtable (the paper's motivation names the
/// "standard Java and C# class libraries" as prime verification targets):
/// a monitor-guarded open hash table with chained buckets.
///
/// Injectable bug: the classic check-then-act race — putIfAbsent
/// implemented as contains() followed by put() under *separate* monitor
/// acquisitions. Two concurrent putIfAbsent(k, ...) calls can both see k
/// absent and both insert; the second silently overwrites the first and
/// reports success, so a putIfAbsent that must have failed claims to have
/// inserted — an I/O refinement violation at its own commit, and a view
/// divergence when the overwritten value differs.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_SYNCHASHTABLE_H
#define VYRD_JAVALIB_SYNCHASHTABLE_H

#include "vyrd/Instrument.h"

#include <cstdint>
#include <list>
#include <mutex>
#include <vector>

namespace vyrd {
namespace javalib {

/// Interned names for the hashtable model.
struct HtVocab {
  Name Put, Get, Remove, PutIfAbsent, Size;
  static HtVocab get();
  /// Fine-grained write records: "ht[key]" := value (null = erased).
  static Name slotName(int64_t Key);
};

/// The instrumented hashtable: one monitor, chained buckets.
class SyncHashtable {
public:
  struct Options {
    size_t Buckets = 64;
    /// Inject the non-atomic contains+put in putIfAbsent.
    bool BuggyPutIfAbsent = false;
  };

  SyncHashtable(const Options &Opts, Hooks H);

  SyncHashtable(const SyncHashtable &) = delete;
  SyncHashtable &operator=(const SyncHashtable &) = delete;

  /// Maps \p Key to \p Val. \returns the previous value or null.
  Value put(int64_t Key, int64_t Val);

  /// Observer: the value for \p Key, or null.
  Value get(int64_t Key) const;

  /// Unmaps \p Key. \returns the removed value or null.
  Value remove(int64_t Key);

  /// Maps \p Key to \p Val only if absent. \returns true when inserted.
  bool putIfAbsent(int64_t Key, int64_t Val);

  /// Observer: the number of mappings.
  int64_t size() const;

private:
  struct Entry {
    int64_t Key;
    int64_t Val;
  };

  std::list<Entry> &bucket(int64_t Key) {
    return Table[static_cast<size_t>(Key) * 0x9e3779b97f4a7c15ULL %
                 Table.size()];
  }
  const std::list<Entry> &bucket(int64_t Key) const {
    return const_cast<SyncHashtable *>(this)->bucket(Key);
  }
  /// Unsynchronized lookup used inside locked sections.
  Entry *findEntry(int64_t Key);

  Options Opts;
  Hooks H;
  HtVocab V;
  mutable std::mutex M;
  std::vector<std::list<Entry>> Table;
  size_t Count = 0;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_SYNCHASHTABLE_H
