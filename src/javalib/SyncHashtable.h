//===- SyncHashtable.h - java.util.Hashtable model --------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ model of java.util.Hashtable (the paper's motivation names the
/// "standard Java and C# class libraries" as prime verification targets):
/// a monitor-guarded open hash table with chained buckets.
///
/// Injectable bug: the classic check-then-act race — putIfAbsent
/// implemented as contains() followed by put() under *separate* monitor
/// acquisitions. Two concurrent putIfAbsent(k, ...) calls can both see k
/// absent and both insert; the second silently overwrites the first and
/// reports success, so a putIfAbsent that must have failed claims to have
/// inserted — an I/O refinement violation at its own commit, and a view
/// divergence when the overwritten value differs.
///
/// Instrumentation is automatic: the monitor is a `vyrd::Mutex` shim, the
/// per-key slot writes go through `AutoContext::write` (replayed by the
/// Map-shape `KeyValueReplayer` over "ht"), and the `SyncHashtable` facade
/// dispatches through `Instrumented<T>`.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_SYNCHASHTABLE_H
#define VYRD_JAVALIB_SYNCHASHTABLE_H

#include "vyrd/Auto.h"

#include <cstdint>
#include <list>
#include <vector>

namespace vyrd {
namespace javalib {

/// Interned names for the hashtable model.
struct HtVocab {
  Name Put, Get, Remove, PutIfAbsent, Size;
  static HtVocab get();
  /// Fine-grained write records: "ht[key]" := value (null = erased).
  static Name slotName(int64_t Key);
};

/// The uninstrumented hashtable core: one monitor, chained buckets
/// (trailing-AutoContext protocol).
class SyncHashtableImpl {
public:
  struct Options {
    size_t Buckets = 64;
    /// Inject the non-atomic contains+put in putIfAbsent.
    bool BuggyPutIfAbsent = false;
  };

  SyncHashtableImpl(const Options &Opts, AutoContext &Ctx);

  SyncHashtableImpl(const SyncHashtableImpl &) = delete;
  SyncHashtableImpl &operator=(const SyncHashtableImpl &) = delete;

  /// Maps \p Key to \p Val. \returns the previous value or null.
  Value put(int64_t Key, int64_t Val);

  /// Observer: the value for \p Key, or null.
  Value get(int64_t Key) const;

  /// Unmaps \p Key. \returns the removed value or null.
  Value remove(int64_t Key);

  /// Maps \p Key to \p Val only if absent. \returns true when inserted.
  bool putIfAbsent(int64_t Key, int64_t Val);

  /// Observer: the number of mappings.
  int64_t size() const;

private:
  struct Entry {
    int64_t Key;
    int64_t Val;
  };

  std::list<Entry> &bucket(int64_t Key) {
    return Table[static_cast<size_t>(Key) * 0x9e3779b97f4a7c15ULL %
                 Table.size()];
  }
  const std::list<Entry> &bucket(int64_t Key) const {
    return const_cast<SyncHashtableImpl *>(this)->bucket(Key);
  }
  /// Unsynchronized lookup used inside locked sections.
  Entry *findEntry(int64_t Key);

  Options Opts;
  AutoContext &Ctx;
  mutable Mutex M;
  std::vector<std::list<Entry>> Table;
  size_t Count = 0;
};

} // namespace javalib

template <> struct AutoMethods<javalib::SyncHashtableImpl> {
  using H = javalib::SyncHashtableImpl;
  static constexpr auto desc(MethodTag<&H::put>) { return method("HtPut"); }
  static constexpr auto desc(MethodTag<&H::get>) { return observer("HtGet"); }
  static constexpr auto desc(MethodTag<&H::remove>) {
    return method("HtRemove");
  }
  static constexpr auto desc(MethodTag<&H::putIfAbsent>) {
    return method("HtPutIfAbsent");
  }
  static constexpr auto desc(MethodTag<&H::size>) {
    return observer("HtSize");
  }
};

namespace javalib {

/// The instrumented hashtable facade.
class SyncHashtable : public Instrumented<SyncHashtableImpl> {
public:
  using Options = SyncHashtableImpl::Options;

  SyncHashtable(const Options &O, Hooks H) : Instrumented(H, O) {}

  Value put(int64_t Key, int64_t Val) {
    return invoke<&SyncHashtableImpl::put>(Key, Val);
  }
  Value get(int64_t Key) { return invoke<&SyncHashtableImpl::get>(Key); }
  Value remove(int64_t Key) { return invoke<&SyncHashtableImpl::remove>(Key); }
  bool putIfAbsent(int64_t Key, int64_t Val) {
    return invoke<&SyncHashtableImpl::putIfAbsent>(Key, Val);
  }
  int64_t size() { return invoke<&SyncHashtableImpl::size>(); }
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_SYNCHASHTABLE_H
