//===- StringBufferSystem.h - java.lang.StringBuffer model ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ model of java.lang.StringBuffer with the bug reproduced in
/// Table 1 ("Copying from an unprotected StringBuffer"): append(StringBuffer
/// src) reads src's length under src's monitor but copies src's characters
/// in a separate, unprotected step, so a concurrent truncation of src makes
/// the copy torn — corrupting the destination buffer's *state*. Unlike the
/// Vector bug this is a mutator-state corruption, which is why view
/// refinement detects it much earlier than I/O refinement (Table 1 shows a
/// 3.46x CPU ratio but detection after 17-90 vs 29-195 methods).
///
/// Because the bug spans two objects, the verified "system" is a small
/// fixed family of buffers and the specification keys its abstract state by
/// buffer index.
///
/// Instrumentation is automatic: each buffer's monitor is a `vyrd::Mutex`
/// shim and the `StringBufferSystem` facade dispatches through
/// `Instrumented<T>`. The buggy per-character source reads each take the
/// source monitor briefly; those critical sections record nothing, and the
/// lazy bracket protocol keeps them out of the log entirely. The replay
/// records stay coarse (`sb.append` / `sb.setlen`, consumed by the bespoke
/// StringBufferReplayer) because the appended bytes — torn or not — are
/// what the shadow state must mirror.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_STRINGBUFFERSYSTEM_H
#define VYRD_JAVALIB_STRINGBUFFERSYSTEM_H

#include "vyrd/Auto.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace vyrd {
namespace javalib {

/// Interned names for the string-buffer model.
struct SbVocab {
  Name Append, AppendBuffer, SetLength, ToString, Length;
  Name OpAppend, OpSetLen;
  static SbVocab get();
};

/// The uninstrumented core: a family of NumBuffers monitor-guarded string
/// buffers (trailing-AutoContext protocol).
class StringBufferSystemImpl {
public:
  struct Options {
    size_t NumBuffers = 2;
    /// Inject the unprotected-copy bug in appendBuffer.
    bool BuggyAppendBuffer = false;
  };

  StringBufferSystemImpl(const Options &Opts, AutoContext &Ctx);

  StringBufferSystemImpl(const StringBufferSystemImpl &) = delete;
  StringBufferSystemImpl &operator=(const StringBufferSystemImpl &) = delete;

  size_t numBuffers() const { return Bufs.size(); }

  /// Appends literal \p S to buffer \p I.
  void append(size_t I, const std::string &S);

  /// Appends the current contents of buffer \p Src to buffer \p Dst
  /// (must differ). This is the buggy method.
  void appendBuffer(size_t Dst, size_t Src);

  /// Truncates buffer \p I to \p N characters (no-op when N >= length).
  void setLength(size_t I, size_t N);

  /// Observer: buffer contents.
  std::string toString(size_t I) const;

  /// Observer: buffer length.
  int64_t length(size_t I) const;

private:
  struct Buf {
    explicit Buf(AutoContext &C) : M(C) {}
    mutable Mutex M;
    std::string Data;
    std::atomic<size_t> LenMirror{0};
  };

  Options Opts;
  AutoContext &Ctx;
  SbVocab V;
  std::vector<std::unique_ptr<Buf>> Bufs;
};

} // namespace javalib

template <> struct AutoMethods<javalib::StringBufferSystemImpl> {
  using S = javalib::StringBufferSystemImpl;
  // The Java methods return the buffer (for chaining); the model logs that
  // as the constant true on the otherwise-void mutators.
  static constexpr auto desc(MethodTag<&S::append>) {
    return method("SbAppend").ret(
        [](const size_t &, const std::string &) { return Value(true); });
  }
  static constexpr auto desc(MethodTag<&S::appendBuffer>) {
    return method("SbAppendBuffer")
        .ret([](const size_t &, const size_t &) { return Value(true); });
  }
  static constexpr auto desc(MethodTag<&S::setLength>) {
    return method("SbSetLength")
        .ret([](const size_t &, const size_t &) { return Value(true); });
  }
  static constexpr auto desc(MethodTag<&S::toString>) {
    return observer("SbToString");
  }
  static constexpr auto desc(MethodTag<&S::length>) {
    return observer("SbLength");
  }
};

namespace javalib {

/// The instrumented string-buffer-family facade.
class StringBufferSystem : public Instrumented<StringBufferSystemImpl> {
public:
  using Options = StringBufferSystemImpl::Options;

  StringBufferSystem(const Options &O, Hooks H) : Instrumented(H, O) {}

  size_t numBuffers() const { return raw().numBuffers(); }

  void append(size_t I, const std::string &S) {
    invoke<&StringBufferSystemImpl::append>(I, S);
  }
  void appendBuffer(size_t Dst, size_t Src) {
    invoke<&StringBufferSystemImpl::appendBuffer>(Dst, Src);
  }
  void setLength(size_t I, size_t N) {
    invoke<&StringBufferSystemImpl::setLength>(I, N);
  }
  std::string toString(size_t I) {
    return invoke<&StringBufferSystemImpl::toString>(I);
  }
  int64_t length(size_t I) { return invoke<&StringBufferSystemImpl::length>(I); }
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_STRINGBUFFERSYSTEM_H
