//===- StringBufferSystem.h - java.lang.StringBuffer model ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ model of java.lang.StringBuffer with the bug reproduced in
/// Table 1 ("Copying from an unprotected StringBuffer"): append(StringBuffer
/// src) reads src's length under src's monitor but copies src's characters
/// in a separate, unprotected step, so a concurrent truncation of src makes
/// the copy torn — corrupting the destination buffer's *state*. Unlike the
/// Vector bug this is a mutator-state corruption, which is why view
/// refinement detects it much earlier than I/O refinement (Table 1 shows a
/// 3.46x CPU ratio but detection after 17-90 vs 29-195 methods).
///
/// Because the bug spans two objects, the verified "system" is a small
/// fixed family of buffers and the specification keys its abstract state by
/// buffer index.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_STRINGBUFFERSYSTEM_H
#define VYRD_JAVALIB_STRINGBUFFERSYSTEM_H

#include "vyrd/Instrument.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace vyrd {
namespace javalib {

/// Interned names for the string-buffer model.
struct SbVocab {
  Name Append, AppendBuffer, SetLength, ToString, Length;
  Name OpAppend, OpSetLen;
  static SbVocab get();
};

/// A family of NumBuffers monitors-guarded string buffers.
class StringBufferSystem {
public:
  struct Options {
    size_t NumBuffers = 2;
    /// Inject the unprotected-copy bug in appendBuffer.
    bool BuggyAppendBuffer = false;
  };

  StringBufferSystem(const Options &Opts, Hooks H);

  StringBufferSystem(const StringBufferSystem &) = delete;
  StringBufferSystem &operator=(const StringBufferSystem &) = delete;

  size_t numBuffers() const { return Bufs.size(); }

  /// Appends literal \p S to buffer \p I.
  void append(size_t I, const std::string &S);

  /// Appends the current contents of buffer \p Src to buffer \p Dst
  /// (must differ). This is the buggy method.
  void appendBuffer(size_t Dst, size_t Src);

  /// Truncates buffer \p I to \p N characters (no-op when N >= length).
  void setLength(size_t I, size_t N);

  /// Observer: buffer contents.
  std::string toString(size_t I) const;

  /// Observer: buffer length.
  int64_t length(size_t I) const;

private:
  struct Buf {
    mutable std::mutex M;
    std::string Data;
    std::atomic<size_t> LenMirror{0};
  };

  Options Opts;
  Hooks H;
  SbVocab V;
  std::vector<std::unique_ptr<Buf>> Bufs;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_STRINGBUFFERSYSTEM_H
