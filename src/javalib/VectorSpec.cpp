//===- VectorSpec.cpp - Atomic spec + replayer for SyncVector -------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/VectorSpec.h"

#include "vyrd/Serialize.h"

#include <cassert>

using namespace vyrd;
using namespace vyrd::javalib;

//===----------------------------------------------------------------------===//
// VectorSpec
//===----------------------------------------------------------------------===//

VectorSpec::VectorSpec() : V(VectorVocab::get()) {}

bool VectorSpec::isObserver(Name Method) const {
  return Method == V.Get || Method == V.Size || Method == V.LastIndexOf;
}

bool VectorSpec::applyMutator(Name Method, const ValueList &Args,
                              const Value &Ret, View &ViewS) {
  if (Method == V.Add) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    ViewS.add(Value(static_cast<int64_t>(S.size())), Args[0]);
    S.push_back(Args[0].asInt());
    return true;
  }

  if (Method == V.RemoveLast) {
    if (!Args.empty())
      return false;
    if (S.empty())
      return Ret.isNull(); // removing from empty returns null
    if (!Ret.isInt() || Ret.asInt() != S.back())
      return false; // must return the element actually at the back
    ViewS.remove(Value(static_cast<int64_t>(S.size() - 1)),
                 Value(S.back()));
    S.pop_back();
    return true;
  }

  return false;
}

bool VectorSpec::returnAllowed(Name Method, const ValueList &Args,
                               const Value &Ret) const {
  if (Method == V.Get) {
    if (Args.size() != 1 || !Args[0].isInt())
      return false;
    int64_t I = Args[0].asInt();
    if (I < 0 || static_cast<size_t>(I) >= S.size())
      return Ret.isNull();
    return Ret.isInt() && Ret.asInt() == S[static_cast<size_t>(I)];
  }

  if (Method == V.Size)
    return Ret.isInt() && Ret.asInt() == static_cast<int64_t>(S.size());

  if (Method == V.LastIndexOf) {
    if (Args.size() != 1 || !Args[0].isInt() || !Ret.isInt())
      return false;
    int64_t X = Args[0].asInt();
    int64_t Last = -1;
    for (size_t I = 0; I < S.size(); ++I)
      if (S[I] == X)
        Last = static_cast<int64_t>(I);
    // IndexError is never a legal return value: the specification executes
    // atomically and cannot observe a torn length.
    return Ret.asInt() == Last;
  }

  return false;
}

void VectorSpec::buildView(View &Out) const {
  Out.clear();
  for (size_t I = 0; I < S.size(); ++I)
    Out.add(Value(static_cast<int64_t>(I)), Value(S[I]));
}

bool VectorSpec::saveState(ByteWriter &W) const {
  W.varint(S.size());
  for (int64_t X : S)
    W.svarint(X);
  return true;
}

bool VectorSpec::loadState(ByteReader &R) {
  uint64_t N = R.varint();
  if (!R.ok() || N > (1u << 24))
    return false;
  S.assign(N, 0);
  for (uint64_t I = 0; I < N; ++I)
    S[I] = R.svarint();
  return R.ok();
}
