//===- HashtableSpec.h - Atomic spec + replayer for SyncHashtable -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification (an atomic map) for the SyncHashtable model. The view is
/// the map as (key, value) pairs; the implementation side is replayed by
/// the generic Map-shape `KeyValueReplayer` over the `ht[k]` writes.
/// PutIfAbsent -> true requires the key to actually be absent, which is
/// precisely what the buggy check-then-act variant violates.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_HASHTABLESPEC_H
#define VYRD_JAVALIB_HASHTABLESPEC_H

#include "javalib/SyncHashtable.h"
#include "vyrd/Spec.h"

#include <map>

namespace vyrd {
namespace javalib {

/// Specification state: the abstract map.
class HashtableSpec : public Spec {
public:
  HashtableSpec();

  bool isObserver(Name Method) const override;
  bool applyMutator(Name Method, const ValueList &Args, const Value &Ret,
                    View &ViewS) override;
  bool returnAllowed(Name Method, const ValueList &Args,
                     const Value &Ret) const override;
  void buildView(View &Out) const override;
  bool saveState(ByteWriter &W) const override;
  bool loadState(ByteReader &R) override;

  size_t size() const { return M.size(); }

private:
  HtVocab V;
  std::map<int64_t, int64_t> M;
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_HASHTABLESPEC_H
