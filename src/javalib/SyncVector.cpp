//===- SyncVector.cpp - java.util.Vector model -----------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/SyncVector.h"

using namespace vyrd;
using namespace vyrd::javalib;

VectorVocab VectorVocab::get() {
  VectorVocab V;
  V.Add = internName("VecAdd");
  V.RemoveLast = internName("VecRemoveLast");
  V.Get = internName("VecGet");
  V.Size = internName("VecSize");
  V.LastIndexOf = internName("VecLastIndexOf");
  return V;
}

Name VectorVocab::elemName(size_t I) {
  return internName("vec[" + std::to_string(I) + "]");
}

Name VectorVocab::lenName() { return internName("vec.len"); }

SyncVector::SyncVector(const Options &Opts, Hooks H)
    : Opts(Opts), H(H), V(VectorVocab::get()), LenName(VectorVocab::lenName()) {
}

Name SyncVector::elemName(size_t I) {
  while (ElemNames.size() <= I)
    ElemNames.push_back(VectorVocab::elemName(ElemNames.size()));
  return ElemNames[I];
}

void SyncVector::add(int64_t X) {
  MethodScope Scope(H, V.Add, {Value(X)});
  {
    std::lock_guard Lock(M);
    CommitBlock Block(H);
    size_t I = Data.size();
    Data.push_back(X);
    LenMirror.store(Data.size(), std::memory_order_relaxed);
    H.write(elemName(I), Value(X));
    H.write(LenName, Value(static_cast<int64_t>(Data.size())));
    H.commit();
  }
  Scope.setReturn(Value(true));
}

Value SyncVector::removeLast() {
  MethodScope Scope(H, V.RemoveLast, {});
  Value Ret;
  {
    std::lock_guard Lock(M);
    if (Data.empty()) {
      H.commit();
    } else {
      Ret = Value(Data.back());
      CommitBlock Block(H);
      Data.pop_back();
      LenMirror.store(Data.size(), std::memory_order_relaxed);
      H.write(LenName, Value(static_cast<int64_t>(Data.size())));
      H.commit();
    }
  }
  Scope.setReturn(Ret);
  return Ret;
}

Value SyncVector::get(int64_t I) const {
  MethodScope Scope(H, V.Get, {Value(I)});
  Value Ret;
  {
    std::lock_guard Lock(M);
    if (I >= 0 && static_cast<size_t>(I) < Data.size())
      Ret = Value(Data[static_cast<size_t>(I)]);
  }
  Scope.setReturn(Ret);
  return Ret;
}

int64_t SyncVector::size() const {
  MethodScope Scope(H, V.Size, {});
  int64_t N;
  {
    std::lock_guard Lock(M);
    N = static_cast<int64_t>(Data.size());
  }
  Scope.setReturn(Value(N));
  return N;
}

int64_t SyncVector::lastIndexOf(int64_t X) const {
  MethodScope Scope(H, V.LastIndexOf, {Value(X)});
  int64_t Ret = -1;
  if (Opts.BuggyLastIndexOf) {
    // BUG (JDK 1.4 Vector): lastIndexOf(Object) reads elementCount without
    // the monitor and then calls the synchronized lastIndexOf(Object, int).
    // A concurrent removal makes the start index point past the end and the
    // search throws IndexOutOfBoundsException.
    size_t N = LenMirror.load(std::memory_order_relaxed);
    Chaos::point();
    std::lock_guard Lock(M);
    if (N > Data.size()) {
      Ret = IndexError;
    } else {
      for (size_t I = N; I > 0; --I) {
        if (Data[I - 1] == X) {
          Ret = static_cast<int64_t>(I - 1);
          break;
        }
      }
    }
  } else {
    std::lock_guard Lock(M);
    for (size_t I = Data.size(); I > 0; --I) {
      if (Data[I - 1] == X) {
        Ret = static_cast<int64_t>(I - 1);
        break;
      }
    }
  }
  Scope.setReturn(Value(Ret));
  return Ret;
}
