//===- SyncVector.cpp - java.util.Vector model -----------------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "javalib/SyncVector.h"

using namespace vyrd;
using namespace vyrd::javalib;

VectorVocab VectorVocab::get() {
  VectorVocab V;
  V.Add = internName("VecAdd");
  V.RemoveLast = internName("VecRemoveLast");
  V.Get = internName("VecGet");
  V.Size = internName("VecSize");
  V.LastIndexOf = internName("VecLastIndexOf");
  return V;
}

Name VectorVocab::elemName(size_t I) {
  return internName("vec[" + std::to_string(I) + "]");
}

Name VectorVocab::lenName() { return internName("vec.len"); }

SyncVectorImpl::SyncVectorImpl(const Options &Opts, AutoContext &Ctx)
    : Opts(Opts), Ctx(Ctx), M(Ctx), LenName(VectorVocab::lenName()) {}

Name SyncVectorImpl::elemName(size_t I) {
  while (ElemNames.size() <= I)
    ElemNames.push_back(VectorVocab::elemName(ElemNames.size()));
  return ElemNames[I];
}

void SyncVectorImpl::add(int64_t X) {
  LockGuard Lock(M);
  size_t I = Data.size();
  Data.push_back(X);
  LenMirror.store(Data.size(), std::memory_order_relaxed);
  Ctx.write(elemName(I), Value(X));
  Ctx.write(LenName, Value(static_cast<int64_t>(Data.size())));
  Ctx.commit();
}

Value SyncVectorImpl::removeLast() {
  Value Ret;
  {
    LockGuard Lock(M);
    if (!Data.empty()) {
      Ret = Value(Data.back());
      Data.pop_back();
      LenMirror.store(Data.size(), std::memory_order_relaxed);
      Ctx.write(LenName, Value(static_cast<int64_t>(Data.size())));
    }
    // The null return is only legal while the vector is actually empty,
    // so even the no-op case commits under the monitor.
    Ctx.commit();
  }
  return Ret;
}

Value SyncVectorImpl::get(int64_t I) const {
  Value Ret;
  {
    LockGuard Lock(M);
    if (I >= 0 && static_cast<size_t>(I) < Data.size())
      Ret = Value(Data[static_cast<size_t>(I)]);
  }
  return Ret;
}

int64_t SyncVectorImpl::size() const {
  LockGuard Lock(M);
  return static_cast<int64_t>(Data.size());
}

int64_t SyncVectorImpl::lastIndexOf(int64_t X) const {
  int64_t Ret = -1;
  if (Opts.BuggyLastIndexOf) {
    // BUG (JDK 1.4 Vector): lastIndexOf(Object) reads elementCount without
    // the monitor and then calls the synchronized lastIndexOf(Object, int).
    // A concurrent removal makes the start index point past the end and the
    // search throws IndexOutOfBoundsException.
    size_t N = LenMirror.load(std::memory_order_relaxed);
    Chaos::point();
    LockGuard Lock(M);
    if (N > Data.size()) {
      Ret = IndexError;
    } else {
      for (size_t I = N; I > 0; --I) {
        if (Data[I - 1] == X) {
          Ret = static_cast<int64_t>(I - 1);
          break;
        }
      }
    }
  } else {
    LockGuard Lock(M);
    for (size_t I = Data.size(); I > 0; --I) {
      if (Data[I - 1] == X) {
        Ret = static_cast<int64_t>(I - 1);
        break;
      }
    }
  }
  return Ret;
}
