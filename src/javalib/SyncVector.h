//===- SyncVector.h - java.util.Vector model --------------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A C++ model of java.util.Vector with the concurrency bug reported in
/// the Atomizer / atomicity-types papers and reproduced in Table 1 of the
/// VYRD paper ("Taking length non-atomically in lastIndexOf()"):
/// `lastIndexOf(Object)` reads the element count without holding the
/// vector's lock before delegating to the synchronized search, so a
/// concurrent removal makes the search start past the end — modeled here
/// as the error return value IndexError, which the specification never
/// allows. The bug is in an *observer* and does not corrupt state, which is
/// why Table 1 shows view refinement doing no better than I/O refinement
/// on this example.
///
/// Instrumentation is automatic: the monitor is a `vyrd::Mutex` shim, the
/// element/length writes go through `AutoContext::write` (replayed by the
/// Prefix-shape `KeyValueReplayer` over "vec"), and the `SyncVector`
/// facade dispatches through `Instrumented<T>`. Java's `void add(Object)`
/// is logged with return value true via a custom return encoder.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_JAVALIB_SYNCVECTOR_H
#define VYRD_JAVALIB_SYNCVECTOR_H

#include "vyrd/Auto.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace vyrd {
namespace javalib {

/// Interned names for the vector model.
struct VectorVocab {
  Name Add, RemoveLast, Get, Size, LastIndexOf;
  static VectorVocab get();
  static Name elemName(size_t I); // "vec[i]"
  static Name lenName();          // "vec.len"
};

/// Return value modeling Java's IndexOutOfBoundsException.
inline constexpr int64_t IndexError = -2;

/// The uninstrumented vector core: one lock guards the element storage,
/// mirroring Java's monitor (trailing-AutoContext protocol).
class SyncVectorImpl {
public:
  struct Options {
    /// Inject the non-atomic length read in lastIndexOf.
    bool BuggyLastIndexOf = false;
  };

  SyncVectorImpl(const Options &Opts, AutoContext &Ctx);

  SyncVectorImpl(const SyncVectorImpl &) = delete;
  SyncVectorImpl &operator=(const SyncVectorImpl &) = delete;

  /// Appends \p X (always succeeds).
  void add(int64_t X);

  /// Removes and returns the last element, or null when empty.
  Value removeLast();

  /// Observer: element at \p I, or null when out of bounds.
  Value get(int64_t I) const;

  /// Observer: current element count.
  int64_t size() const;

  /// Observer: index of the last occurrence of \p X, -1 when absent, or
  /// IndexError when the bug fires.
  int64_t lastIndexOf(int64_t X) const;

private:
  Options Opts;
  AutoContext &Ctx;
  mutable Mutex M;
  std::vector<int64_t> Data;
  /// Unsynchronized mirror of Data.size() for the buggy length read (kept
  /// atomic so the model itself has no undefined behavior).
  std::atomic<size_t> LenMirror{0};
  std::vector<Name> ElemNames;
  Name LenName;

  Name elemName(size_t I);
};

} // namespace javalib

template <> struct AutoMethods<javalib::SyncVectorImpl> {
  using V = javalib::SyncVectorImpl;
  static constexpr auto desc(MethodTag<&V::add>) {
    // Java's add(Object) returns true; the body is void.
    return method("VecAdd").ret([](const int64_t &) { return Value(true); });
  }
  static constexpr auto desc(MethodTag<&V::removeLast>) {
    return method("VecRemoveLast");
  }
  static constexpr auto desc(MethodTag<&V::get>) { return observer("VecGet"); }
  static constexpr auto desc(MethodTag<&V::size>) {
    return observer("VecSize");
  }
  static constexpr auto desc(MethodTag<&V::lastIndexOf>) {
    return observer("VecLastIndexOf");
  }
};

namespace javalib {

/// The instrumented vector facade.
class SyncVector : public Instrumented<SyncVectorImpl> {
public:
  using Options = SyncVectorImpl::Options;

  SyncVector(const Options &O, Hooks H) : Instrumented(H, O) {}

  void add(int64_t X) { invoke<&SyncVectorImpl::add>(X); }
  Value removeLast() { return invoke<&SyncVectorImpl::removeLast>(); }
  Value get(int64_t I) { return invoke<&SyncVectorImpl::get>(I); }
  int64_t size() { return invoke<&SyncVectorImpl::size>(); }
  int64_t lastIndexOf(int64_t X) {
    return invoke<&SyncVectorImpl::lastIndexOf>(X);
  }
};

} // namespace javalib
} // namespace vyrd

#endif // VYRD_JAVALIB_SYNCVECTOR_H
