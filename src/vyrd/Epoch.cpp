//===- Epoch.cpp - Epoch-parallel offline verification --------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Epoch.h"

#include "vyrd/Serialize.h"
#include "vyrd/Snapshot.h"

#include <algorithm>
#include <atomic>
#include <thread>

using namespace vyrd;

namespace {

/// One snapshot-delimited slice of the chain.
struct EpochSlice {
  size_t SegPos = 0;                  ///< first segment (index into Segs)
  const SnapshotFile *Snap = nullptr; ///< baseline; null = from zero
  uint64_t StartSeq = 0;
  uint64_t EndSeq = UINT64_MAX; ///< exclusive; UINT64_MAX for the last epoch
};

/// Outcome of one (object, epoch) task.
struct SliceResult {
  std::string Name; ///< object report name, from the factory
  std::vector<Violation> Violations;
  CheckerStats Stats;
  /// End-of-epoch state did not match the next sidecar's baseline (or
  /// could not be serialized for the audit). Conservative: forces the
  /// serial re-check, exactly like a violation.
  bool BaselineMismatch = false;
  /// The sidecar blob failed to restore into a fresh pipeline.
  bool RestoreFailed = false;
  /// The factory does not know this object id.
  bool Skipped = false;
  uint64_t SeqHwm = 0; ///< highest Seq seen + 1 (log size estimate)
};

/// True when \p Snap carries a restorable blob for every object id.
bool hasAllBlobs(const SnapshotFile &Snap, size_t NumObjects) {
  for (size_t O = 0; O < NumObjects; ++O)
    if (!Snap.find(static_cast<ObjectId>(O)))
      return false;
  return true;
}

/// Runs one slice for one object: fresh pipeline, optional sidecar
/// restore, feed the slice's records, then either finish (final slice)
/// or audit the end state against the next sidecar's baseline.
SliceResult runSlice(ObjectId O, const EpochSlice &E, bool Final,
                     const std::vector<ChainSegment> &Segs,
                     const PipelineFactory &Factory,
                     const EpochCheckOptions &Opts,
                     const SnapshotFile *NextSnap,
                     std::atomic<uint64_t> &Loads) {
  SliceResult Res;
  std::unique_ptr<Spec> S;
  std::unique_ptr<Replayer> R;
  if (!Factory(O, Res.Name, S, R) || !S) {
    Res.Skipped = true;
    return Res;
  }
  CheckerConfig CC = Opts.Checker;
  if (!Final) {
    // Executions that straddle the epoch boundary are completed by the
    // successor slice; an incomplete tail here is expected, not an error.
    CC.AllowIncompleteTail = true;
  }
  RefinementChecker Checker(*S, R.get(), CC);
  if (E.Snap) {
    const SnapshotObject *SO = E.Snap->find(O);
    ByteReader Blob(SO ? SO->Blob.data() : nullptr, SO ? SO->Blob.size() : 0);
    if (!SO || !Checker.restoreState(Blob)) {
      Res.RestoreFailed = true;
      return Res;
    }
    Loads.fetch_add(1, std::memory_order_relaxed);
    if (Opts.Telem)
      Opts.Telem->count(Counter::C_SnapshotLoads);
  }
  LogFileReader Reader(Segs[E.SegPos].Path);
  if (!Reader.valid()) {
    Violation V;
    V.Kind = ViolationKind::VK_Instrumentation;
    V.Seq = E.StartSeq;
    V.Message = "cannot open log segment " + Segs[E.SegPos].Path;
    Res.Violations.push_back(V);
    return Res;
  }
  Action A;
  while (Reader.next(A)) {
    if (A.Seq >= E.EndSeq)
      break;
    Res.SeqHwm = std::max(Res.SeqHwm, A.Seq + 1);
    if (A.Obj != O)
      continue;
    Checker.feed(A);
    if (CC.StopAtFirstViolation && Checker.hasViolation())
      break;
  }
  if (Reader.malformed()) {
    Violation V;
    V.Kind = ViolationKind::VK_Instrumentation;
    V.Seq = Res.SeqHwm;
    V.Message = "malformed log record in epoch slice (chain " +
                Segs[E.SegPos].Path + "...)";
    Checker.finish();
    Res.Violations = Checker.violations();
    Res.Violations.push_back(V);
    Res.Stats = Checker.stats();
    return Res;
  }
  if (Final) {
    Checker.finish();
    Res.Violations = Checker.violations();
    Res.Stats = Checker.stats();
    return Res;
  }
  // Non-final slice: no finish() (saveState refuses finished checkers,
  // and the open tail belongs to the successor). A violation forces the
  // serial re-check; otherwise audit the end state against the baseline
  // the next epoch restored from.
  Res.Violations = Checker.violations();
  Res.Stats = Checker.stats();
  if (!Res.Violations.empty())
    return Res;
  ByteWriter W;
  if (!Checker.saveState(W)) {
    Res.BaselineMismatch = true;
    return Res;
  }
  const SnapshotObject *NO = NextSnap ? NextSnap->find(O) : nullptr;
  size_t MyOff = 0, MyLen = 0, NxOff = 0, NxLen = 0;
  if (!NO ||
      !RefinementChecker::coreSection(W.buffer().data(), W.buffer().size(),
                                      MyOff, MyLen) ||
      !RefinementChecker::coreSection(NO->Blob.data(), NO->Blob.size(),
                                      NxOff, NxLen) ||
      MyLen != NxLen ||
      !std::equal(W.buffer().data() + MyOff, W.buffer().data() + MyOff + MyLen,
                  NO->Blob.data() + NxOff)) {
    // The state this slice ends in is not the state the next slice
    // started from: the stitch would be unsound, so flag it. (Stats
    // sections legitimately differ — memo hits depend on where the
    // checker started — which is why only the cores are compared.)
    Res.BaselineMismatch = true;
  }
  return Res;
}

} // namespace

EpochReport vyrd::epochCheck(const std::string &LogPath, size_t NumObjects,
                             const PipelineFactory &Factory,
                             const EpochCheckOptions &Opts) {
  EpochReport ER;
  std::vector<ChainSegment> Segs;
  if (!enumerateChain(LogPath, Segs) || Segs.empty()) {
    ER.Error = "no log file or segment chain at " + LogPath;
    return ER;
  }

  // Split the chain at usable sidecars. The front segment anchors epoch
  // 0: from zero when the chain is complete, from its sidecar when the
  // predecessors were reclaimed.
  std::vector<EpochSlice> Epochs;
  const ChainSegment &Front = Segs.front();
  bool FrontComplete = Front.Index <= 1; // plain file (0) or segment 1
  if (Opts.UseSnapshots && Front.HasSnapshot &&
      hasAllBlobs(Front.Snap, NumObjects)) {
    Epochs.push_back({0, &Front.Snap, Front.Snap.Watermark, UINT64_MAX});
  } else if (FrontComplete) {
    Epochs.push_back({0, nullptr, 0, UINT64_MAX});
  } else {
    ER.Error = "records before segment " + std::to_string(Front.Index) +
               " were reclaimed and no usable snapshot sidecar covers the "
               "cut; the chain cannot seed a checker (re-record with "
               "VerifierConfig::Snapshots, or keep the full chain)";
    return ER;
  }
  if (Opts.UseSnapshots && !Opts.ResumeOnly) {
    for (size_t P = 1; P < Segs.size(); ++P) {
      const ChainSegment &Seg = Segs[P];
      // A missing/corrupt sidecar, or one lacking an object's blob,
      // simply merges the segment into the previous epoch.
      if (!Seg.HasSnapshot || !hasAllBlobs(Seg.Snap, NumObjects))
        continue;
      Epochs.back().EndSeq = Seg.Snap.Watermark;
      Epochs.push_back({P, &Seg.Snap, Seg.Snap.Watermark, UINT64_MAX});
    }
  }
  const size_t NumEpochs = Epochs.size();
  ER.Epochs = NumEpochs;

  // The (object, epoch) task matrix, claimed off an atomic cursor by a
  // small worker pool. Results land in a pre-sized grid, so workers
  // never contend on anything but the cursor.
  std::vector<SliceResult> Results(NumObjects * NumEpochs);
  std::atomic<size_t> Cursor{0};
  std::atomic<uint64_t> TasksRun{0};
  std::atomic<uint64_t> Loads{0};
  auto Worker = [&] {
    while (true) {
      size_t T = Cursor.fetch_add(1, std::memory_order_relaxed);
      if (T >= Results.size())
        return;
      size_t O = T / NumEpochs, E = T % NumEpochs;
      bool Final = E + 1 == NumEpochs;
      if (Opts.Telem)
        Opts.Telem->gaugeAdd(Gauge::G_EpochsInFlight, 1);
      Results[T] = runSlice(static_cast<ObjectId>(O), Epochs[E], Final, Segs,
                            Factory, Opts,
                            Final ? nullptr : Epochs[E + 1].Snap, Loads);
      if (Opts.Telem) {
        Opts.Telem->gaugeSub(Gauge::G_EpochsInFlight, 1);
        Opts.Telem->count(Counter::C_EpochsChecked);
      }
      if (!Results[T].Skipped)
        TasksRun.fetch_add(1, std::memory_order_relaxed);
    }
  };
  unsigned NThreads = std::max(1u, Opts.Threads);
  if (NThreads == 1) {
    Worker();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(NThreads);
    for (unsigned I = 0; I < NThreads; ++I)
      Pool.emplace_back(Worker);
    for (std::thread &W : Pool)
      W.join();
  }
  ER.Tasks = TasksRun.load();

  // Stitch per object: the first epoch with a violation, a failed
  // restore or a baseline mismatch invalidates everything after it (the
  // later epochs' baselines descend from a state the bad epoch never
  // reached), so the object is re-checked serially from the last epoch
  // whose baseline is known good through the end of the chain.
  uint64_t SeqHwm = 0;
  for (size_t O = 0; O < NumObjects; ++O) {
    SliceResult *Rs = &Results[O * NumEpochs];
    for (size_t E = 0; E < NumEpochs; ++E)
      SeqHwm = std::max(SeqHwm, Rs[E].SeqHwm);
    if (Rs[0].Skipped)
      continue; // the factory does not know this object
    size_t FirstBad = NumEpochs;
    for (size_t E = 0; E < NumEpochs; ++E) {
      if (Rs[E].RestoreFailed || Rs[E].BaselineMismatch ||
          !Rs[E].Violations.empty()) {
        FirstBad = E;
        break;
      }
    }
    ObjectReport OR;
    OR.Id = static_cast<ObjectId>(O);
    if (FirstBad == NumEpochs) {
      // Every epoch clean and every stitch audited: the final epoch's
      // checker carries the cumulative verdict (sidecar blobs restore
      // the running stats, so its stats are the object's totals).
      OR.Name = Rs[NumEpochs - 1].Name;
      OR.Stats = Rs[NumEpochs - 1].Stats;
    } else {
      // Fall back past epochs whose own restore failed: their sidecar
      // cannot seed the re-check either.
      size_t From = FirstBad;
      while (From > 0 && Rs[From].RestoreFailed)
        --From;
      EpochSlice Re = Epochs[From];
      Re.EndSeq = UINT64_MAX;
      if (Re.Snap && Rs[From].RestoreFailed) {
        // Even epoch 0's sidecar is unrestorable and the chain has no
        // complete prefix to fall back to.
        Violation V;
        V.Kind = ViolationKind::VK_Instrumentation;
        V.Seq = Re.StartSeq;
        V.Message = "snapshot sidecar for segment " +
                    std::to_string(Segs[Re.SegPos].Index) +
                    " cannot restore into the object's pipeline (spec "
                    "mismatch or blob corruption)";
        OR.Name = Rs[FirstBad].Name;
        OR.Violations.push_back(V);
      } else {
        SliceResult Serial = runSlice(static_cast<ObjectId>(O), Re,
                                      /*Final=*/true, Segs, Factory, Opts,
                                      nullptr, Loads);
        SeqHwm = std::max(SeqHwm, Serial.SeqHwm);
        OR.Name = Serial.Name;
        OR.Stats = Serial.Stats;
        OR.Violations = std::move(Serial.Violations);
        ++ER.SerialRechecks;
      }
    }
    OR.Records = OR.Stats.ActionsFed;
    Name Tag = OR.Name.empty() ? Name() : internName(OR.Name);
    for (Violation &V : OR.Violations) {
      V.Obj = OR.Id;
      V.Object = Tag;
    }
    ER.Report.Stats.merge(OR.Stats);
    ER.Report.Violations.insert(ER.Report.Violations.end(),
                                OR.Violations.begin(), OR.Violations.end());
    ER.Report.Objects.push_back(std::move(OR));
  }
  sortViolationsBySeq(ER.Report.Violations);
  ER.Report.LogRecords = SeqHwm;
  // Restart lag: how far behind the chain's end the cold restart began.
  if (Opts.Telem && Epochs[0].Snap)
    Opts.Telem->gaugeSet(Gauge::G_RestartLag,
                         SeqHwm > Epochs[0].StartSeq
                             ? SeqHwm - Epochs[0].StartSeq
                             : 0);
  ER.SnapshotLoads = Loads.load();
  ER.Report.Notes.push_back(
      "epoch check: " + std::to_string(NumEpochs) + " epoch(s) x " +
      std::to_string(NumObjects) + " object(s), " +
      std::to_string(ER.SerialRechecks) + " serial recheck(s)");
  return ER;
}
