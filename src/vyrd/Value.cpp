//===- Value.cpp - Tagged union value used throughout VYRD ---------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Value.h"

#include <cassert>
#include <cstdio>

using namespace vyrd;

bool Value::asBool() const {
  assert(isBool() && "Value is not a bool");
  return std::get<bool>(Data);
}

int64_t Value::asInt() const {
  assert(isInt() && "Value is not an int");
  return std::get<int64_t>(Data);
}

const std::string &Value::asStr() const {
  assert(isStr() && "Value is not a string");
  return std::get<std::string>(Data);
}

const Value::Bytes &Value::asBytes() const {
  assert(isBytes() && "Value is not a byte array");
  return std::get<Bytes>(Data);
}

/// 64-bit mixer (splitmix64 finalizer); good avalanche, cheap.
static uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

static uint64_t hashBytes(const void *Data, size_t Size, uint64_t Seed) {
  // FNV-1a over the bytes, then mixed. Not cryptographic; view hashing
  // layers a second independent accumulator on top (see View.cpp).
  const auto *P = static_cast<const uint8_t *>(Data);
  uint64_t H = 14695981039346656037ULL ^ Seed;
  for (size_t I = 0; I < Size; ++I) {
    H ^= P[I];
    H *= 1099511628211ULL;
  }
  return mix64(H);
}

uint64_t Value::hash() const {
  uint64_t Tag = static_cast<uint64_t>(kind()) << 56;
  switch (kind()) {
  case ValueKind::VK_Null:
    return mix64(Tag);
  case ValueKind::VK_Bool:
    return mix64(Tag | (std::get<bool>(Data) ? 1 : 0));
  case ValueKind::VK_Int:
    return mix64(Tag ^ static_cast<uint64_t>(std::get<int64_t>(Data)));
  case ValueKind::VK_Str: {
    const std::string &S = std::get<std::string>(Data);
    return hashBytes(S.data(), S.size(), Tag | 0x51);
  }
  case ValueKind::VK_Bytes: {
    const Bytes &B = std::get<Bytes>(Data);
    return hashBytes(B.data(), B.size(), Tag | 0x52);
  }
  }
  assert(false && "unknown ValueKind");
  return 0;
}

std::string Value::str() const {
  switch (kind()) {
  case ValueKind::VK_Null:
    return "null";
  case ValueKind::VK_Bool:
    return std::get<bool>(Data) ? "true" : "false";
  case ValueKind::VK_Int:
    return std::to_string(std::get<int64_t>(Data));
  case ValueKind::VK_Str:
    return "\"" + std::get<std::string>(Data) + "\"";
  case ValueKind::VK_Bytes: {
    const Bytes &B = std::get<Bytes>(Data);
    std::string Out = "bytes[" + std::to_string(B.size()) + "]:";
    size_t Shown = B.size() < 8 ? B.size() : 8;
    char Buf[4];
    for (size_t I = 0; I < Shown; ++I) {
      std::snprintf(Buf, sizeof(Buf), "%02x", B[I]);
      Out += Buf;
    }
    if (Shown < B.size())
      Out += "..";
    return Out;
  }
  }
  assert(false && "unknown ValueKind");
  return "";
}

void ValueList::grow(size_t MinCap) {
  size_t NewCap = Cap;
  while (NewCap < MinCap)
    NewCap *= 2;
  auto NewHeap = std::make_unique<Value[]>(NewCap);
  Value *Old = data();
  for (uint32_t I = 0; I < Count; ++I)
    NewHeap[I] = std::move(Old[I]);
  Heap = std::move(NewHeap);
  Cap = static_cast<uint32_t>(NewCap);
}

uint64_t ValueList::hash() const {
  // Length-seeded chain of the per-value hashes; order-sensitive so
  // f(1, 2) and f(2, 1) memoize separately.
  uint64_t H = 0x8cb0d9f2d8b4a37bULL ^ (uint64_t(Count) << 32);
  for (uint32_t I = 0; I < Count; ++I)
    H = mix64(H ^ data()[I].hash());
  return H;
}

namespace vyrd {

bool operator<(const Value &L, const Value &R) { return L.Data < R.Data; }

Value bytesValue(const void *Data, size_t Size) {
  const auto *P = static_cast<const uint8_t *>(Data);
  return Value(Value::Bytes(P, P + Size));
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace vyrd
