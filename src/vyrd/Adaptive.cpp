//===- Adaptive.cpp - Self-tuning pipeline controller ----------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Adaptive.h"

#include "vyrd/Telemetry.h"

#include <algorithm>
#include <cassert>

namespace vyrd {

std::string AdaptiveController::Transition::str() const {
  std::string S = backpressurePolicyName(From);
  S += "->";
  S += backpressurePolicyName(To);
  return S;
}

AdaptiveController::AdaptiveController(const AdaptiveConfig &Cfg,
                                       BackpressurePolicy Base, bool CanSpill)
    : C(Cfg), Escalate(Cfg.EscalatePolicy) {
  // The ladder starts at the configured policy and only ever escalates to
  // strictly more load-shedding rungs: Block defers producers, Spill
  // trades tail memory for re-read latency (needs a disk side), Shed
  // gives up completeness. De-escalation retraces the same rungs.
  Ladder.push_back(Base);
  if (Base == BackpressurePolicy::BP_Block && CanSpill)
    Ladder.push_back(BackpressurePolicy::BP_SpillToDisk);
  if (Base != BackpressurePolicy::BP_Shed)
    Ladder.push_back(BackpressurePolicy::BP_Shed);

  size_t Init = std::clamp(C.InitialBatch, C.MinBatch, C.MaxBatch);
  Target.store(Init, std::memory_order_relaxed);
  TargetHwm.store(Init, std::memory_order_relaxed);
  Policy.store(static_cast<uint8_t>(Base), std::memory_order_relaxed);
}

bool AdaptiveController::canReachShed() const {
  return dynamicPolicy() && Ladder.back() == BackpressurePolicy::BP_Shed;
}

bool AdaptiveController::canReachSpill() const {
  if (!dynamicPolicy())
    return false;
  for (size_t I = 1; I < Ladder.size(); ++I)
    if (Ladder[I] == BackpressurePolicy::BP_SpillToDisk)
      return true;
  return false;
}

void AdaptiveController::publishPolicy(BackpressurePolicy P) {
  Policy.store(static_cast<uint8_t>(P), std::memory_order_relaxed);
  if (Telem)
    Telem->gaugeSet(Gauge::G_PolicyActive, static_cast<uint64_t>(P));
}

bool AdaptiveController::observe(uint64_t LagRecords, uint64_t Seq,
                                 uint64_t NowNanos) {
  // --- batch target (AIMD, paced by DecisionIntervalUs) ---
  uint64_t IntervalNs = C.DecisionIntervalUs * 1000;
  if (LastDecisionNs == 0 || NowNanos - LastDecisionNs >= IntervalNs) {
    LastDecisionNs = NowNanos ? NowNanos : 1;
    size_t Cur = Target.load(std::memory_order_relaxed);
    size_t Next = Cur;
    if (LagRecords >= C.GrowLagRecords) {
      Next = std::min(Cur + C.GrowStep, C.MaxBatch);
    } else if (LagRecords <= C.ShrinkLagRecords) {
      Next = std::max(static_cast<size_t>(
                          static_cast<double>(Cur) * C.ShrinkFactor),
                      C.MinBatch);
    }
    if (Next != Cur) {
      Target.store(Next, std::memory_order_relaxed);
      if (Next > TargetHwm.load(std::memory_order_relaxed))
        TargetHwm.store(Next, std::memory_order_relaxed);
      if (Telem)
        Telem->gaugeSet(Gauge::G_PumpBatchTarget, Next);
    }
  }

  if (!dynamicPolicy())
    return false;

  // --- policy escalation (watermarks + hold-time hysteresis) ---
  // Lag between the watermarks resets both hold timers: the band is the
  // hysteresis dead zone where the current policy holds.
  bool Changed = false;
  if (LagRecords >= C.EscalateLagHi) {
    BelowSinceNs = 0;
    if (AboveSinceNs == 0) {
      AboveSinceNs = NowNanos ? NowNanos : 1;
    } else if (NowNanos - AboveSinceNs >= C.EscalateHoldUs * 1000 &&
               Level + 1 < Ladder.size()) {
      Transition T{Seq, LagRecords, Ladder[Level], Ladder[Level + 1], true};
      ++Level;
      publishPolicy(Ladder[Level]);
      Escalations.fetch_add(1, std::memory_order_relaxed);
      if (Telem)
        Telem->count(Counter::C_PolicyEscalations);
      {
        std::lock_guard<std::mutex> Lock(TM);
        Trans.push_back(T);
      }
      // The next rung requires a fresh full hold above the watermark.
      AboveSinceNs = NowNanos ? NowNanos : 1;
      Changed = true;
    }
  } else if (LagRecords <= C.DeescalateLagLo) {
    AboveSinceNs = 0;
    if (BelowSinceNs == 0) {
      BelowSinceNs = NowNanos ? NowNanos : 1;
    } else if (NowNanos - BelowSinceNs >= C.DeescalateHoldUs * 1000 &&
               Level > 0) {
      Transition T{Seq, LagRecords, Ladder[Level], Ladder[Level - 1], false};
      --Level;
      publishPolicy(Ladder[Level]);
      Deescalations.fetch_add(1, std::memory_order_relaxed);
      if (Telem)
        Telem->count(Counter::C_PolicyDeescalations);
      {
        std::lock_guard<std::mutex> Lock(TM);
        Trans.push_back(T);
      }
      BelowSinceNs = NowNanos ? NowNanos : 1;
      Changed = true;
    }
  } else {
    AboveSinceNs = 0;
    BelowSinceNs = 0;
  }
  return Changed;
}

std::vector<AdaptiveController::Transition>
AdaptiveController::transitions() const {
  std::lock_guard<std::mutex> Lock(TM);
  return Trans;
}

AdaptiveController::Transition AdaptiveController::lastTransition() const {
  std::lock_guard<std::mutex> Lock(TM);
  assert(!Trans.empty() && "no transition recorded yet");
  return Trans.back();
}

} // namespace vyrd
