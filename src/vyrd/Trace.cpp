//===- Trace.cpp - Chrome/Perfetto trace_event recorder -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>
#include <utility>

using namespace vyrd;

/// Escapes a string for inclusion inside a JSON string literal.
static std::string escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string valueListStr(const ValueList &Args) {
  std::string Out = "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  Out += ")";
  return Out;
}

void TraceRecorder::setObjectName(ObjectId Obj, std::string ObjName) {
  std::lock_guard Lock(M);
  ObjectNames[Obj + 1] = std::move(ObjName);
}

void TraceRecorder::noteAction(const Action &A) {
  std::lock_guard Lock(M);
  MaxTs = std::max(MaxTs, A.Seq);
  uint64_t OpenKey = (static_cast<uint64_t>(A.Obj) << 32) | A.Tid;
  TraceEvent E;
  E.Pid = A.Obj + 1;
  E.Tid = A.Tid;
  E.Ts = A.Seq;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 "}", A.Seq);
  E.Args = Buf;
  switch (A.Kind) {
  case ActionKind::AK_Call:
    E.Ph = 'B';
    E.Name = std::string(A.Method.str());
    if (!A.Args.empty()) {
      std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 ",\"args\":\"",
                    A.Seq);
      E.Args = Buf + escapeJson(valueListStr(A.Args)) + "\"}";
    }
    OpenCalls[OpenKey].push_back(A.Method);
    break;
  case ActionKind::AK_Return: {
    E.Ph = 'E';
    E.Name = std::string(A.Method.str());
    std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 ",\"ret\":\"",
                  A.Seq);
    E.Args = Buf + escapeJson(A.Ret.str()) + "\"}";
    auto &Open = OpenCalls[OpenKey];
    if (!Open.empty())
      Open.pop_back();
    break;
  }
  case ActionKind::AK_Commit: {
    E.Ph = 'i';
    const auto &Open = OpenCalls[OpenKey];
    E.Name = Open.empty()
                 ? std::string("commit")
                 : "commit " + std::string(Open.back().str());
    break;
  }
  case ActionKind::AK_Write:
    E.Ph = 'i';
    E.Name = std::string(A.Var.str()) + " := " + A.Ret.str();
    break;
  case ActionKind::AK_BlockBegin:
    E.Ph = 'B';
    E.Name = "commit-block";
    break;
  case ActionKind::AK_BlockEnd:
    E.Ph = 'E';
    E.Name = "commit-block";
    break;
  case ActionKind::AK_ReplayOp:
    E.Ph = 'i';
    E.Name = "replay " + std::string(A.Var.str());
    break;
  }
  Events.push_back(std::move(E));
}

void TraceRecorder::noteCheckSpan(uint64_t FirstSeq, uint64_t LastSeq,
                                  uint64_t NumActions) {
  std::lock_guard Lock(M);
  SawVerifierEvent = true;
  MaxTs = std::max(MaxTs, LastSeq + 1);
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "{\"first_seq\":%" PRIu64 ",\"last_seq\":%" PRIu64
                ",\"actions\":%" PRIu64 "}",
                FirstSeq, LastSeq, NumActions);
  Events.push_back({'B', 1, VerifierTrackTid, FirstSeq, "check", Buf});
  Events.push_back({'E', 1, VerifierTrackTid, LastSeq + 1, "check", ""});
}

void TraceRecorder::noteVerifierInstant(uint64_t Seq, std::string Name) {
  std::lock_guard Lock(M);
  SawVerifierEvent = true;
  MaxTs = std::max(MaxTs, Seq);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 "}", Seq);
  Events.push_back({'i', 1, VerifierTrackTid, Seq, std::move(Name), Buf});
}

void TraceRecorder::noteGauge(uint64_t Seq, std::string Name,
                              uint64_t Value) {
  std::lock_guard Lock(M);
  SawVerifierEvent = true;
  MaxTs = std::max(MaxTs, Seq);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "{\"value\":%" PRIu64 "}", Value);
  Events.push_back({'C', 1, VerifierTrackTid, Seq, std::move(Name), Buf});
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard Lock(M);
  return Events.size();
}

/// Renders one trace_event object. The pid is the event's track group:
/// object 0 (and the verifier track) render as pid 1, exactly the
/// single-process layout this emitted before the multi-object engine;
/// further objects get their own "process" so viewers group per object.
static void renderEvent(std::string &Out, const TraceEvent &E) {
  char Buf[112];
  Out += "{\"name\":\"";
  Out += escapeJson(E.Name);
  std::snprintf(Buf, sizeof(Buf),
                "\",\"ph\":\"%c\",\"pid\":%" PRIu32 ",\"tid\":%" PRIu32
                ",\"ts\":%" PRIu64,
                E.Ph, E.Pid, E.Tid, E.Ts);
  Out += Buf;
  if (E.Ph == 'i')
    Out += ",\"s\":\"t\"";
  if (!E.Args.empty()) {
    Out += ",\"args\":";
    Out += E.Args;
  }
  Out += "},\n";
}

std::string TraceRecorder::json() const {
  std::lock_guard Lock(M);
  std::string Out =
      "{\"displayTimeUnit\":\"ms\",\n"
      "\"otherData\":{\"generator\":\"vyrd\","
      "\"time_base\":\"virtual: 1 log record = 1 us\"},\n"
      "\"traceEvents\":[\n";

  // Metadata: name every track group ("process" = verified object) and
  // every track that has events.
  std::set<uint32_t> Pids;
  std::set<std::pair<uint32_t, uint32_t>> Tracks;
  for (const TraceEvent &E : Events) {
    Pids.insert(E.Pid);
    Tracks.insert({E.Pid, E.Tid});
  }
  if (Pids.empty())
    Pids.insert(1); // the legacy empty-trace document still names pid 1
  char Buf[160];
  for (uint32_t Pid : Pids) {
    auto NameIt = ObjectNames.find(Pid);
    std::string PName;
    if (NameIt != ObjectNames.end() && !NameIt->second.empty())
      PName = "object: " + NameIt->second;
    else if (Pid == 1 && Pids.size() == 1)
      PName = "vyrd pipeline"; // anonymous single-object layout
    else
      PName = "object " + std::to_string(Pid - 1);
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                  ",\"args\":{\"name\":\"%s\"}},\n",
                  Pid, escapeJson(PName).c_str());
    Out += Buf;
  }
  for (auto [Pid, Tid] : Tracks) {
    const char *Kind =
        Tid == VerifierTrackTid ? "verifier" : "impl thread";
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                  ",\"tid\":%" PRIu32 ",\"args\":{\"name\":\"%s %" PRIu32
                  "\"}},\n",
                  Pid, Tid, Kind, Tid);
    // The verifier track reads better without its huge tid suffix.
    if (Tid == VerifierTrackTid)
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                    ",\"tid\":%" PRIu32
                    ",\"args\":{\"name\":\"verifier\"}},\n",
                    Pid, Tid);
    Out += Buf;
  }

  for (const TraceEvent &E : Events)
    renderEvent(Out, E);

  // Close any spans still open (incomplete log tails) so viewers don't
  // drop them; inner-most first to keep B/E nesting valid.
  for (const auto &[Key, Open] : OpenCalls) {
    for (size_t I = Open.size(); I-- > 0;) {
      TraceEvent E;
      E.Ph = 'E';
      E.Pid = static_cast<uint32_t>(Key >> 32) + 1;
      E.Tid = static_cast<uint32_t>(Key);
      E.Ts = MaxTs + 1;
      E.Name = std::string(Open[I].str());
      renderEvent(Out, E);
    }
  }

  // Strip the trailing ",\n" and close the document.
  if (Out.size() >= 2 && Out[Out.size() - 2] == ',')
    Out.erase(Out.size() - 2, 1);
  Out += "]}\n";
  return Out;
}

bool TraceRecorder::writeFile(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = Written == Doc.size();
  return std::fclose(F) == 0 && Ok;
}
