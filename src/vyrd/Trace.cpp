//===- Trace.cpp - Chrome/Perfetto trace_event recorder -------------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

using namespace vyrd;

/// Escapes a string for inclusion inside a JSON string literal.
static std::string escapeJson(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

static std::string valueListStr(const ValueList &Args) {
  std::string Out = "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Args[I].str();
  }
  Out += ")";
  return Out;
}

void TraceRecorder::noteAction(const Action &A) {
  std::lock_guard Lock(M);
  MaxTs = std::max(MaxTs, A.Seq);
  TraceEvent E;
  E.Tid = A.Tid;
  E.Ts = A.Seq;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 "}", A.Seq);
  E.Args = Buf;
  switch (A.Kind) {
  case ActionKind::AK_Call:
    E.Ph = 'B';
    E.Name = std::string(A.Method.str());
    if (!A.Args.empty()) {
      std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 ",\"args\":\"",
                    A.Seq);
      E.Args = Buf + escapeJson(valueListStr(A.Args)) + "\"}";
    }
    OpenCalls[A.Tid].push_back(A.Method);
    break;
  case ActionKind::AK_Return: {
    E.Ph = 'E';
    E.Name = std::string(A.Method.str());
    std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 ",\"ret\":\"",
                  A.Seq);
    E.Args = Buf + escapeJson(A.Ret.str()) + "\"}";
    auto &Open = OpenCalls[A.Tid];
    if (!Open.empty())
      Open.pop_back();
    break;
  }
  case ActionKind::AK_Commit: {
    E.Ph = 'i';
    const auto &Open = OpenCalls[A.Tid];
    E.Name = Open.empty()
                 ? std::string("commit")
                 : "commit " + std::string(Open.back().str());
    break;
  }
  case ActionKind::AK_Write:
    E.Ph = 'i';
    E.Name = std::string(A.Var.str()) + " := " + A.Val.str();
    break;
  case ActionKind::AK_BlockBegin:
    E.Ph = 'B';
    E.Name = "commit-block";
    break;
  case ActionKind::AK_BlockEnd:
    E.Ph = 'E';
    E.Name = "commit-block";
    break;
  case ActionKind::AK_ReplayOp:
    E.Ph = 'i';
    E.Name = "replay " + std::string(A.Var.str());
    break;
  }
  Events.push_back(std::move(E));
}

void TraceRecorder::noteCheckSpan(uint64_t FirstSeq, uint64_t LastSeq,
                                  uint64_t NumActions) {
  std::lock_guard Lock(M);
  SawVerifierEvent = true;
  MaxTs = std::max(MaxTs, LastSeq + 1);
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf),
                "{\"first_seq\":%" PRIu64 ",\"last_seq\":%" PRIu64
                ",\"actions\":%" PRIu64 "}",
                FirstSeq, LastSeq, NumActions);
  Events.push_back({'B', VerifierTrackTid, FirstSeq, "check", Buf});
  Events.push_back({'E', VerifierTrackTid, LastSeq + 1, "check", ""});
}

void TraceRecorder::noteVerifierInstant(uint64_t Seq, std::string Name) {
  std::lock_guard Lock(M);
  SawVerifierEvent = true;
  MaxTs = std::max(MaxTs, Seq);
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "{\"seq\":%" PRIu64 "}", Seq);
  Events.push_back({'i', VerifierTrackTid, Seq, std::move(Name), Buf});
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard Lock(M);
  return Events.size();
}

/// Renders one trace_event object. All events share pid 1 (one process:
/// the verified program plus its verification thread).
static void renderEvent(std::string &Out, const TraceEvent &E) {
  char Buf[96];
  Out += "{\"name\":\"";
  Out += escapeJson(E.Name);
  std::snprintf(Buf, sizeof(Buf),
                "\",\"ph\":\"%c\",\"pid\":1,\"tid\":%" PRIu32
                ",\"ts\":%" PRIu64,
                E.Ph, E.Tid, E.Ts);
  Out += Buf;
  if (E.Ph == 'i')
    Out += ",\"s\":\"t\"";
  if (!E.Args.empty()) {
    Out += ",\"args\":";
    Out += E.Args;
  }
  Out += "},\n";
}

std::string TraceRecorder::json() const {
  std::lock_guard Lock(M);
  std::string Out =
      "{\"displayTimeUnit\":\"ms\",\n"
      "\"otherData\":{\"generator\":\"vyrd\","
      "\"time_base\":\"virtual: 1 log record = 1 us\"},\n"
      "\"traceEvents\":[\n";

  // Metadata: name the process and every track that has events.
  std::set<uint32_t> Tids;
  for (const TraceEvent &E : Events)
    Tids.insert(E.Tid);
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":"
         "{\"name\":\"vyrd pipeline\"}},\n";
  char Buf[160];
  for (uint32_t Tid : Tids) {
    const char *Kind =
        Tid == VerifierTrackTid ? "verifier" : "impl thread";
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%" PRIu32 ",\"args\":{\"name\":\"%s %" PRIu32
                  "\"}},\n",
                  Tid, Kind, Tid);
    // The verifier track reads better without its huge tid suffix.
    if (Tid == VerifierTrackTid)
      std::snprintf(Buf, sizeof(Buf),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%" PRIu32 ",\"args\":{\"name\":\"verifier\"}},\n",
                    Tid);
    Out += Buf;
  }

  for (const TraceEvent &E : Events)
    renderEvent(Out, E);

  // Close any spans still open (incomplete log tails) so viewers don't
  // drop them; inner-most first to keep B/E nesting valid.
  for (const auto &[Tid, Open] : OpenCalls) {
    for (size_t I = Open.size(); I-- > 0;) {
      TraceEvent E;
      E.Ph = 'E';
      E.Tid = Tid;
      E.Ts = MaxTs + 1;
      E.Name = std::string(Open[I].str());
      renderEvent(Out, E);
    }
  }

  // Strip the trailing ",\n" and close the document.
  if (Out.size() >= 2 && Out[Out.size() - 2] == ',')
    Out.erase(Out.size() - 2, 1);
  Out += "]}\n";
  return Out;
}

bool TraceRecorder::writeFile(const std::string &Path) const {
  std::string Doc = json();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  size_t Written = std::fwrite(Doc.data(), 1, Doc.size(), F);
  bool Ok = Written == Doc.size();
  return std::fclose(F) == 0 && Ok;
}
