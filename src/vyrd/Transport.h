//===- Transport.h - Shipping closed log segments across processes -*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport layer between the producer half of a verification
/// pipeline (hooks -> log backend -> segment sink) and its checker half
/// (CheckerService): docs/SHIPPING.md. The segmented chain (LOGFORMAT v4)
/// already makes every closed segment a self-contained unit — its own
/// header and name table — and v5 sidecars let a checker pick a chain up
/// cold; a SegmentTransport moves those files somewhere a CheckerService
/// can consume them and carries the checker's watermark acks back so the
/// producer can reclaim its checked prefix. Three shapes:
///
///  * The *inline* composition — the historical single-process Verifier —
///    is the degenerate transport: pump and checkers share an address
///    space, records flow by reference, no framing. It is not represented
///    by a SegmentTransport object (that would add a copy to a path whose
///    behavior must stay bit-identical); Verifier wires the halves
///    directly.
///  * InProcessTransport feeds a CheckerService from closed segment files
///    through the same decode path the remote service uses. It backs the
///    SD_LocalCheck degrade path and lets tests assert wire == inline.
///  * SocketTransport frames segment files (plus .snap sidecars) over a
///    unix or TCP socket to a `vyrd-checkd` service, with CRC-protected
///    length-framed chunks, capped-exponential-backoff reconnects, and an
///    ack reader that publishes the remote watermark.
///
/// Wire protocol (`namespace wire`): every frame is
///
///   magic "VYRF" | type u8 | payload length u32 LE | payload | crc32 u32 LE
///
/// where the CRC covers type + payload. The receiver's FrameParser
/// resynchronizes at the next magic after a CRC mismatch or garbage, so a
/// truncated transfer costs one segment, not the stream.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_TRANSPORT_H
#define VYRD_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace vyrd {

class CheckerService;
class Telemetry;
class TraceRecorder;

/// What the producer does when the checker fleet stays unreachable after
/// the retry budget (VerifierConfig::Shipping.Degrade).
enum class ShipDegrade : uint8_t {
  /// Re-check the surviving on-disk chain locally at finish(): the
  /// verdict stays sound, the run just lost the offload. Requires the
  /// full chain (nothing was reclaimed before the fleet died — acks
  /// drive reclamation, so a fleet that never acked never reclaimed).
  SD_LocalCheck,
  /// Account the unshipped suffix as a VK_Degraded note (like BP_Shed's
  /// coverage accounting): verdicts on acked records stand, the rest is
  /// reported unverified. For deployments where producer-side checking
  /// is too expensive to ever run inline.
  SD_Shed,
};

/// Producer-side shipping configuration (VerifierConfig::Shipping).
struct ShipperOptions {
  /// Where the checker fleet listens: "unix:<path>" or "tcp:<host>:<port>".
  /// Empty disables shipping entirely (the inline pipeline, bit-identical
  /// to previous releases).
  std::string Endpoint;
  /// Session name registered at the service's monitor registry
  /// (`vyrd-mon ... list` / `mon <name>`); defaults to "stream" when
  /// empty.
  std::string StreamName;
  /// Pipeline key the remote side resolves specs/replayers with (program
  /// names from the harness: "multiset", "queue", ..., "composite").
  /// Required when shipping: the checker cannot rebuild the pipelines
  /// from the records alone.
  std::string Program;
  /// View-level refinement on the remote checkers (CM_ViewRefinement)
  /// instead of I/O refinement.
  bool ViewLevel = false;
  /// Connect/send attempts per segment before the transport declares
  /// itself unhealthy and the degrade path takes over.
  unsigned MaxRetries = 5;
  /// Exponential backoff between retries: Initial, 2*Initial, ... capped
  /// at BackoffCapMs.
  unsigned BackoffInitialMs = 10;
  unsigned BackoffCapMs = 2000;
  /// How long finish() waits for the remote ack of the final watermark
  /// after the Close frame before degrading.
  unsigned FinalAckTimeoutMs = 10000;
  ShipDegrade Degrade = ShipDegrade::SD_LocalCheck;

  bool enabled() const { return !Endpoint.empty(); }
};

/// A parsed ShipperOptions::Endpoint.
struct ShipEndpoint {
  bool IsUnix = true;
  std::string Path; ///< unix socket path (IsUnix)
  std::string Host; ///< tcp host (!IsUnix)
  uint16_t Port = 0;
};

/// Parses "unix:<path>" / "tcp:<host>:<port>". \returns false with a
/// one-line description in \p Err on a malformed spec (unknown scheme,
/// empty path, bad port, unix path too long for sockaddr_un).
bool parseShipEndpoint(const std::string &Spec, ShipEndpoint &Out,
                       std::string &Err);

/// Longest usable unix socket path (sizeof(sockaddr_un::sun_path) - 1,
/// the NUL-terminated bind limit). VerifierConfig::validate() checks
/// monitor and shipping paths against it so a too-long path fails with a
/// clear error instead of a silently truncated bind.
size_t maxUnixSocketPathLen();

namespace wire {

/// Magic opening every frame ("VYRD Frame").
constexpr uint8_t FrameMagic[4] = {'V', 'Y', 'R', 'F'};

/// Frame types. Payloads are varint/str encoded with ByteWriter (the
/// log's own primitives); docs/SHIPPING.md has the field tables.
enum FrameType : uint8_t {
  /// Session open: str stream name, str program, u8 view-level. Re-sent
  /// after a reconnect; the receiver treats a known name as a resume,
  /// deduplicates already-fed segments and re-acks its watermark.
  FT_Hello = 1,
  /// varint segment index, varint total encoded bytes. Starts a segment
  /// transfer; any partially assembled previous segment is dropped.
  FT_SegmentBegin = 2,
  /// One chunk of the segment image (raw bytes, no inner encoding).
  FT_SegmentChunk = 3,
  /// varint segment index. The receiver verifies the assembled size,
  /// decodes and feeds the segment, then acks its fed watermark.
  FT_SegmentEnd = 4,
  /// varint segment index, then the raw .snap sidecar image. Sent before
  /// the segment it pairs with; seeds a cold pickup mid-chain.
  FT_Snapshot = 5,
  /// varint watermark (exclusive). Receiver -> producer: every record
  /// with Seq below it has been fed to its checker.
  FT_WatermarkAck = 6,
  /// varint final sequence count. No more segments; the receiver
  /// finishes its checkers, writes the session report and acks once
  /// more.
  FT_Close = 7,
};

/// Sanity bound on one frame's payload (a segment chunk is at most
/// ChunkBytes, well below this; anything larger is stream corruption).
constexpr size_t MaxFramePayload = 64u << 20;

/// Segment images are sliced into chunks of at most this many bytes, so
/// a truncated transfer is detected at frame granularity.
constexpr size_t ChunkBytes = 256u << 10;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
uint32_t crc32(const void *Data, size_t Len, uint32_t Seed = 0);

/// Appends one framed message to \p Out.
void appendFrame(std::string &Out, uint8_t Type, const void *Payload,
                 size_t Len);

/// One parsed frame.
struct Frame {
  uint8_t Type = 0;
  std::vector<uint8_t> Payload;
};

/// Incremental frame assembler with resync. feed() bytes as they arrive,
/// then drain next() until it returns false. A frame whose CRC fails (or
/// bytes that are not a frame at all) advance the scan to the next magic
/// occurrence — counted in crcErrors()/resyncs() — so one corrupted or
/// truncated transfer never desynchronizes the rest of the stream.
class FrameParser {
public:
  void feed(const void *Data, size_t Len);
  bool next(Frame &Out);

  uint64_t crcErrors() const { return CrcErrors; }
  uint64_t resyncs() const { return Resyncs; }

private:
  bool scanToMagic();

  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  uint64_t CrcErrors = 0;
  uint64_t Resyncs = 0;
};

} // namespace wire

/// One closed segment, ready to ship: its chain position and on-disk
/// image (plus the optional .snap sidecar recorded next to it).
struct ShipSegmentInfo {
  uint64_t Index = 0;    ///< 1-based chain index
  std::string Path;      ///< segment file
  std::string SnapPath;  ///< sidecar path, "" when none exists
};

/// Moves closed segments to a CheckerService — remote or local — and
/// reports the checker's progress back. Implementations are driven from
/// one shipper thread (shipSegment/shipClose are not thread-safe);
/// ackedWatermark/healthy are safe from any thread.
class SegmentTransport {
public:
  virtual ~SegmentTransport();

  /// Human-readable destination ("unix:/run/vyrd.sock", "in-process").
  virtual std::string describe() const = 0;

  /// Ships one closed segment (and its sidecar when present). \returns
  /// false when the segment could not be delivered within the retry
  /// budget — the transport is unhealthy from then on.
  virtual bool shipSegment(const ShipSegmentInfo &Seg) = 0;

  /// Ends the stream: the checker finishes, acks \p FinalSeqExclusive
  /// and writes its report. \returns false when the close could not be
  /// delivered or the final ack did not arrive in time.
  virtual bool shipClose(uint64_t FinalSeqExclusive, unsigned TimeoutMs) = 0;

  /// The checker-side watermark (exclusive): every record below it has
  /// been fed remotely. Monotone; drives Log::reclaimCheckedPrefix on
  /// the producer.
  virtual uint64_t ackedWatermark() const = 0;

  /// False once delivery failed past the retry budget.
  virtual bool healthy() const = 0;

  /// Delivery accounting (exact, transport-side).
  struct Stats {
    uint64_t Segments = 0;
    uint64_t Bytes = 0;
    uint64_t Acks = 0;
    uint64_t Retries = 0;
  };
  virtual Stats stats() const = 0;
};

/// SegmentTransport into a CheckerService in this process: reads each
/// segment file, decodes it through the same v4 path the remote service
/// uses, and feeds the service. Acks are immediate (the feed is
/// synchronous). Used by the SD_LocalCheck degrade path and by tests
/// asserting wire == inline verdicts.
class InProcessTransport : public SegmentTransport {
public:
  explicit InProcessTransport(CheckerService &Svc);

  std::string describe() const override { return "in-process"; }
  bool shipSegment(const ShipSegmentInfo &Seg) override;
  bool shipClose(uint64_t FinalSeqExclusive, unsigned TimeoutMs) override;
  uint64_t ackedWatermark() const override {
    return Acked.load(std::memory_order_acquire);
  }
  bool healthy() const override { return Healthy; }
  Stats stats() const override { return St; }

private:
  CheckerService &Svc;
  std::atomic<uint64_t> Acked{0};
  bool Healthy = true;
  /// First segment not yet seen: a mid-chain first segment (FirstSeq > 0)
  /// must carry a sidecar to seed the checkers.
  bool First = true;
  Stats St;
};

/// SegmentTransport over a unix/TCP socket to a vyrd-checkd service.
/// Owns the connection (established lazily, re-established with capped
/// exponential backoff, Hello re-sent after every reconnect). Acks are
/// drained opportunistically after every send and waited on in
/// waitForAck — the shipping pump is the transport's only driver, so no
/// reader thread is needed.
class SocketTransport : public SegmentTransport {
public:
  /// \p O must carry a parseable Endpoint (validate() guarantees it when
  /// reached through a Verifier). \p Telem may be null.
  SocketTransport(const ShipperOptions &O, Telemetry *Telem);
  ~SocketTransport() override;

  std::string describe() const override { return Opts.Endpoint; }
  bool shipSegment(const ShipSegmentInfo &Seg) override;
  bool shipClose(uint64_t FinalSeqExclusive, unsigned TimeoutMs) override;
  uint64_t ackedWatermark() const override {
    return Acked.load(std::memory_order_acquire);
  }
  bool healthy() const override {
    return Healthy.load(std::memory_order_acquire);
  }
  Stats stats() const override;

  /// Acks observed so far / a bounded wait for the watermark to reach
  /// \p Target (finish uses it for the final ack).
  bool waitForAck(uint64_t Target, unsigned TimeoutMs);

private:
  bool connectOnce();
  bool ensureConnected();
  bool sendAll(const std::string &Bytes);
  bool sendSegmentOnce(const ShipSegmentInfo &Seg, uint64_t &BytesOut);
  void dropConnection();
  void drainAcks();
  void handleFrame(const wire::Frame &F);
  void backoffSleep(unsigned Attempt);

  ShipperOptions Opts;
  ShipEndpoint Ep;
  Telemetry *Telem;

  int Fd = -1; ///< owned by the shipping pump thread
  wire::FrameParser Parser;

  std::atomic<uint64_t> Acked{0};
  std::atomic<bool> Healthy{true};

  mutable std::mutex M; ///< guards St (stats() may race the pump)
  Stats St;
};

/// The producer side's shipping pump state: translates segment cuts
/// (SegmentSink rotations) into shipSegment calls on its transport.
/// Single-threaded — the Verifier's ship pump owns it — because cut
/// order is chain order and segments must ship in chain order.
class SegmentShipper {
public:
  /// \p Base is the chain base path (VerifierConfig::LogFilePath).
  SegmentShipper(SegmentTransport &T, const std::string &Base,
                 Telemetry *Telem);

  /// A rotation into segment \p CutIndex happened: segment CutIndex - 1
  /// is closed and complete on disk — ship it. No-op once the transport
  /// is unhealthy (the degrade path owns the chain then).
  void noteCut(uint64_t CutIndex);

  /// The log is closed: ships the final (still-unshipped) segment, sends
  /// Close with \p FinalSeqExclusive and waits for the final ack.
  /// \returns true when the remote confirmed the whole stream.
  bool finish(uint64_t FinalSeqExclusive, unsigned TimeoutMs);

  /// Segments handed to the transport so far.
  uint64_t segmentsShipped() const { return Shipped; }

private:
  void shipIndex(uint64_t Index);

  SegmentTransport &T;
  std::string Base;
  Telemetry *Telem;
  /// The currently open (active, unshippable) segment's index.
  uint64_t OpenIndex = 1;
  uint64_t Shipped = 0;
};

/// Ships an already-recorded chain (base path of a segmented log, with
/// whatever .snap sidecars exist next to it) through \p T: every live
/// segment oldest-first, then Close with \p FinalSeqExclusive. The
/// offline counterpart of a live shipping Verifier; tests and tools use
/// it to re-ship a surviving chain. \returns false when enumeration or
/// any ship step failed (\p Err says which).
bool shipChain(const std::string &Base, SegmentTransport &T,
               uint64_t FinalSeqExclusive, unsigned CloseTimeoutMs,
               std::string &Err);

} // namespace vyrd

#endif // VYRD_TRANSPORT_H
