//===- Action.h - Log records describing execution events ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Action is one record in the execution log (Sec. 4.2 of the paper).
/// Instrumented implementation threads append Actions as they run; the
/// verification thread consumes them to reconstruct the witness interleaving
/// and, for view refinement, the shadow implementation state.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_ACTION_H
#define VYRD_ACTION_H

#include "vyrd/Names.h"
#include "vyrd/Value.h"

#include <cstdint>
#include <string>

namespace vyrd {

/// Identifier of the thread that performed an action. The harness assigns
/// dense small ids; 0 is valid.
using ThreadId = uint32_t;

/// Identifier of the verified object an action belongs to (Sec. 6.2: the
/// log is demultiplexed per object and refinement is checked object by
/// object). The Verifier assigns dense ids in registration order; 0 is the
/// first registered object, so single-object programs never see a non-zero
/// id and pay one varint byte per record.
using ObjectId = uint32_t;

/// The kinds of events recorded in the log.
enum class ActionKind : uint8_t {
  /// A public method invocation: Method + Args.
  AK_Call = 0,
  /// The matching method return: Method + Ret.
  AK_Return = 1,
  /// The commit action of the current method execution of this thread
  /// (Sec. 4.1). Mutators log exactly one commit per execution path;
  /// observers log none.
  AK_Commit = 2,
  /// A shared-variable write: Var := Val. Fine-grained logging (Sec. 6.2).
  AK_Write = 3,
  /// Start of a commit block (Sec. 5.2): subsequent writes of this thread
  /// are replayed atomically at the enclosing commit action.
  AK_BlockBegin = 4,
  /// End of a commit block.
  AK_BlockEnd = 5,
  /// A coarse-grained, data-structure-specific replay record (Sec. 6.2):
  /// Var names the replay opcode, Args carries its payload.
  AK_ReplayOp = 6,
};

/// Returns a short printable name for \p K (for diagnostics).
const char *actionKindName(ActionKind K);

/// One log record. Field order packs the five small scalars ahead of the
/// payloads, and Return/Write share one Value slot (no record kind uses
/// both): records travel by move/copy through every pipeline stage, so
/// sizeof(Action) is itself a hot-path quantity.
struct Action {
  ActionKind Kind = ActionKind::AK_Call;
  ThreadId Tid = 0;
  /// The verified object this record belongs to; stamped by the emitting
  /// Hooks (each registered object gets its own Hooks bound to its id).
  ObjectId Obj = 0;
  /// Method name for Call/Return/Commit; unused otherwise.
  Name Method;
  /// Written variable (Write) or replay opcode (ReplayOp).
  Name Var;
  /// Position in the log; assigned by the log on append and therefore a
  /// total order consistent with real-time occurrence (each hooked action is
  /// performed atomically with its log append).
  uint64_t Seq = 0;
  /// Call arguments, or ReplayOp payload.
  ValueList Args;
  /// Return value (Return), or written value (Write) — the kinds are
  /// mutually exclusive, so they share the slot.
  Value Ret;

  // Records travel by move through the whole pipeline (shard ring ->
  // reorder ring -> consumer batch -> demux route -> checker event
  // queue). The defaulted moves are member-wise and noexcept (`= default`
  // would fail to compile otherwise), so vector/deque growth relocates
  // records instead of copying them.
  Action() = default;
  Action(const Action &) = default;
  Action(Action &&) noexcept = default;
  Action &operator=(const Action &) = default;
  Action &operator=(Action &&) noexcept = default;

  /// Renders the record for diagnostics.
  std::string str() const;

  static Action call(ThreadId T, Name M, ValueList Args) {
    Action A;
    A.Kind = ActionKind::AK_Call;
    A.Tid = T;
    A.Method = M;
    A.Args = std::move(Args);
    return A;
  }
  static Action ret(ThreadId T, Name M, Value V) {
    Action A;
    A.Kind = ActionKind::AK_Return;
    A.Tid = T;
    A.Method = M;
    A.Ret = std::move(V);
    return A;
  }
  static Action commit(ThreadId T) {
    Action A;
    A.Kind = ActionKind::AK_Commit;
    A.Tid = T;
    return A;
  }
  static Action write(ThreadId T, Name Var, Value V) {
    Action A;
    A.Kind = ActionKind::AK_Write;
    A.Tid = T;
    A.Var = Var;
    A.Ret = std::move(V);
    return A;
  }
  static Action blockBegin(ThreadId T) {
    Action A;
    A.Kind = ActionKind::AK_BlockBegin;
    A.Tid = T;
    return A;
  }
  static Action blockEnd(ThreadId T) {
    Action A;
    A.Kind = ActionKind::AK_BlockEnd;
    A.Tid = T;
    return A;
  }
  static Action replayOp(ThreadId T, Name Op, ValueList Payload) {
    Action A;
    A.Kind = ActionKind::AK_ReplayOp;
    A.Tid = T;
    A.Var = Op;
    A.Args = std::move(Payload);
    return A;
  }
};

} // namespace vyrd

#endif // VYRD_ACTION_H
