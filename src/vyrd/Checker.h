//===- Checker.h - I/O and view refinement checking -------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RefinementChecker consumes a log (fed one Action at a time, in log order)
/// and checks I/O refinement (Sec. 4) and optionally view refinement
/// (Sec. 5) against a Spec, using a Replayer to reconstruct viewI.
///
/// The witness interleaving is the commit order (Sec. 4.1). Internally the
/// checker keeps an ordered event queue; a mutator commit event *stalls* the
/// queue until the execution's return action (return-value lookahead) and,
/// when the commit sits inside a commit block, the block's end have been
/// fed. Observer call events stall until the observer's return value is
/// known, so every specification state in the observer's window is
/// evaluated against it (Sec. 4.3, Fig. 7). Stalls resolve as later log
/// records arrive; the pipeline therefore works identically online and
/// offline.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_CHECKER_H
#define VYRD_CHECKER_H

#include "vyrd/Action.h"
#include "vyrd/Replayer.h"
#include "vyrd/Ring.h"
#include "vyrd/Spec.h"
#include "vyrd/View.h"
#include "vyrd/Violation.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <vector>

namespace vyrd {

class Telemetry;

/// Which refinement check to run.
enum class CheckMode : uint8_t {
  /// Call/return/commit only; no shadow state, no views.
  CM_IORefinement,
  /// I/O refinement plus view comparison at every mutator commit.
  CM_ViewRefinement,
};

/// Tunables for RefinementChecker.
struct CheckerConfig {
  CheckMode Mode = CheckMode::CM_ViewRefinement;
  /// Ablation switch (Sec. 6.4): rebuild both views from scratch at every
  /// commit instead of maintaining them incrementally.
  bool FullViewRecompute = false;
  /// Ablation switch (Sec. 8): compare views (and invariants) only at
  /// quiescent points — commits with no other method execution open —
  /// mimicking commit-atomicity's state comparison. The paper argues such
  /// points are rare in realistic runs and errors get overwritten or
  /// found late; this switch lets the benchmarks quantify that.
  bool QuiescentOnly = false;
  /// Deep-compare incrementally maintained views against freshly rebuilt
  /// ones every N commits (0 = never). Guards the incremental fast path.
  unsigned AuditPeriod = 0;
  /// Stop recording (and checking views) after the first violation.
  bool StopAtFirstViolation = false;
  /// Upper bound on recorded violations.
  size_t MaxViolations = 64;
  /// Whether executions still open when the log ends are acceptable
  /// (normal when a program is stopped mid-flight).
  bool AllowIncompleteTail = true;
  /// Attach the last N fed log records (rendered) to each violation as
  /// debugging context (0 = off).
  unsigned ContextRecords = 0;
  /// Flight recorder for violation forensics (docs/OBSERVABILITY.md,
  /// "Forensic bundles"): keep the last N fed records and, at every
  /// violation, capture a self-contained JSON bundle — those records,
  /// the open-execution table, and a spec-state digest — retrievable via
  /// forensics(). 0 = off (the default: the ring copies every fed Action,
  /// which the zero-allocation hot path should not pay for unasked).
  /// Shares the ring with ContextRecords (sized to the larger of the two).
  unsigned FlightRecorderDepth = 0;
  /// Sec. 4.1's debugging aid: when a mutator's signature has no
  /// specification transition at its commit, keep retrying it after each
  /// later commit inside the method's window. If it becomes enabled, the
  /// transition is applied there and the violation is annotated as a
  /// likely misplaced commit-point annotation; if it never does, the
  /// violation is annotated as a likely genuine refinement violation.
  bool DiagnoseCommitPoints = true;
  /// Accumulate the Table 3 per-phase timings (CheckerStats::ReplayNanos
  /// and friends). Off by default: it adds two clock reads around every
  /// replayed write, driven spec transition and view comparison.
  bool CollectTimings = false;
  /// Memoize observer evaluation (the checker hot path's dominant spec
  /// cost, see docs/ARCHITECTURE.md "The checker hot path"): the spec
  /// state carries a version that advances on every successful mutator
  /// transition, and `returnAllowed` results are cached per
  /// (version, method, args, ret) signature, so N open observers with the
  /// same signature cost one spec call per state and no observer is
  /// re-asked while the state is unchanged. Semantically invisible: the
  /// spec is deterministic, returnAllowed is const, and memo entries
  /// store the full (Args, Ret) signature and are matched by *equality*
  /// (the hashes only route table probing), so a hash collision cannot
  /// alias two signatures. Switch off for A/B benches and audit runs.
  bool MemoizeObservers = true;
  /// Upper bound on distinct signatures the observer memo table holds;
  /// the table is reset when it would exceed this (bounds memory on
  /// adversarial workloads with unbounded distinct signatures).
  size_t MemoMaxEntries = 1 << 14;
};

/// Counters exposed for the benchmarks.
struct CheckerStats {
  uint64_t ActionsFed = 0;
  /// Method executions fully checked (mutators at commit processing,
  /// observers at window close) — the Table 1 "methods executed" metric.
  uint64_t MethodsChecked = 0;
  uint64_t CommitsProcessed = 0;
  uint64_t ObserversChecked = 0;
  uint64_t ViewComparisons = 0;
  uint64_t Audits = 0;
  /// High-water mark of the internal event queue (how far the pipeline
  /// had to look ahead while stalled on returns/block ends).
  uint64_t MaxQueueDepth = 0;
  /// Table 3 phase breakdown, accumulated only with
  /// CheckerConfig::CollectTimings (all nanoseconds of CLOCK_MONOTONIC):
  /// time replaying implementation updates into viewI (writes, replay ops,
  /// commit-block batches), ...
  uint64_t ReplayNanos = 0;
  /// ... time driving the specification (mutator transitions, observer
  /// return evaluation, diagnosis retries), ...
  uint64_t SpecNanos = 0;
  /// ... and time computing/comparing views plus invariant checks (incl.
  /// audits and full recomputes when those ablations are on).
  uint64_t ViewCompareNanos = 0;
  /// Observer evaluations answered from the memo table (including
  /// "already evaluated at this spec-state version" skips) vs answered by
  /// an actual Spec::returnAllowed call. Hits + misses = evaluations the
  /// unmemoized checker would have sent to the spec.
  uint64_t ObsMemoHits = 0;
  uint64_t ObsMemoMisses = 0;
  /// Spec-state version advances (successful mutator transitions,
  /// including diagnosis recoveries).
  uint64_t SpecVersionBumps = 0;

  /// Accumulates \p Other into this: counters and timings sum,
  /// MaxQueueDepth takes the maximum. Used by the multi-object Verifier to
  /// aggregate per-object checker stats into the report's totals.
  void merge(const CheckerStats &Other);
};

/// The refinement checking engine. Not thread-safe: exactly one thread
/// (the verification thread) feeds it.
class RefinementChecker {
public:
  /// \p R may be null for CM_IORefinement; it is required for view mode.
  RefinementChecker(Spec &S, Replayer *R, CheckerConfig Config);
  ~RefinementChecker();

  RefinementChecker(const RefinementChecker &) = delete;
  RefinementChecker &operator=(const RefinementChecker &) = delete;

  /// Feeds the next log record (records must arrive in Seq order).
  void feed(const Action &A);

  /// Signals end of log; flushes and (if !AllowIncompleteTail) reports
  /// executions left open.
  void finish();

  bool hasViolation() const { return !Violations.empty(); }
  const std::vector<Violation> &violations() const { return Violations; }
  /// Forensic bundles, parallel to violations(): forensics()[i] is the
  /// flight-recorder JSON captured the instant violations()[i] was
  /// reported (empty string when FlightRecorderDepth is 0). Schema:
  /// docs/OBSERVABILITY.md, "Forensic bundles".
  const std::vector<std::string> &forensics() const {
    return ForensicBundles;
  }
  const CheckerStats &stats() const { return Stats; }

  /// Attaches a telemetry hub: each view comparison's cost is recorded
  /// into Histo::H_ViewCompareNs. Keep \p T alive while the checker runs.
  void setTelemetry(Telemetry *T) { Telem = T; }

  /// Serializes the complete resumable checker state into \p W — the
  /// per-object blob of a LOGFORMAT v5 snapshot sidecar (docs/SNAPSHOTS.md):
  /// spec state, replayer shadow state, open executions, the pending event
  /// queue, and cumulative stats. Only a *clean* checker snapshots:
  /// \returns false when violations have been recorded, after finish(), or
  /// when the Spec/Replayer does not implement state serialization. The
  /// observer memo table is intentionally dropped (it is a cache; the
  /// restored checker rebuilds it), as is the recent-actions context ring
  /// (bounded diagnostic loss for violations shortly after a restore).
  bool saveState(ByteWriter &W) const;

  /// Restores state written by saveState into this checker, which must be
  /// constructed over the same Spec/Replayer types with an equivalent
  /// CheckerConfig. All current state is replaced; views are rebuilt from
  /// the restored spec/shadow state. \returns false on malformed input or
  /// an unsupported spec/replayer (the checker is then unusable).
  bool restoreState(ByteReader &R);

  /// Locates the core (resumable-state) section inside a saveState blob.
  /// Equivalent checker states serialize to byte-identical cores, while
  /// the stats section legitimately differs between a from-zero and a
  /// resumed run (memo hits/misses depend on where checking started) —
  /// the epoch baseline audit therefore byte-compares cores only.
  static bool coreSection(const uint8_t *Data, size_t Size, size_t &Off,
                          size_t &Len);

  /// Current views (valid in view mode; for tests and diagnostics).
  const View &viewI() const { return ViewI; }
  const View &viewS() const { return ViewS; }

private:
  /// Per-method-execution bookkeeping (Sec. 3.2's executions).
  struct Exec {
    ThreadId Tid = 0;
    Name Method;
    ValueList Args;
    Value Ret;
    uint64_t CallSeq = 0;
    bool IsObserver = false;
    bool HasRet = false;
    bool HasCommit = false;
    bool CommitInBlock = false;
    bool BlockDone = false; // the block containing the commit has ended
    bool InBlock = false;
    bool Satisfied = false; // observer: some window state allowed Ret
    /// Number of executions open at the commit's log position (including
    /// this one); 1 means the commit happened at a quiescent point.
    size_t OpenAtCommit = 0;
    /// Observer memoization state: the signature hashes (computed once,
    /// when the return value becomes known) and the spec-state version
    /// this observer was last evaluated at (~0 = never evaluated).
    uint64_t ArgsHash = 0;
    uint64_t RetHash = 0;
    uint64_t LastEvalVersion = ~uint64_t(0);
    /// Writes of the currently open commit block.
    std::vector<Action> BlockWrites;
    /// Writes of the block that contained the commit action, sealed when
    /// that block ends; applied atomically at the commit event. A method
    /// execution may contain further (commit-free, view-neutral) blocks —
    /// e.g. the B-link tree's separator propagation after a split — whose
    /// writes apply at their own block ends instead.
    std::vector<Action> CommitBlockWrites;
  };
  using ExecPtr = std::shared_ptr<Exec>;

  enum class EventKind : uint8_t {
    EK_Write,    // apply a (non-block) update to the shadow state
    EK_Commit,   // process a mutator commit (may stall)
    EK_ObsBegin, // observer window opens (stalls until Ret known)
    EK_ObsEnd,   // observer window closes: final accept/reject
    EK_MutEnd,   // mutator returned: verify it committed
  };

  struct Event {
    EventKind Kind;
    Action A;
    ExecPtr E;
  };

  void drain();
  /// \returns false when the head event must stall.
  bool processHead();
  void processCommit(Event &Ev);
  /// Retries failed mutators (commit-point diagnosis) after a commit.
  void retryFailedMutators(uint64_t Seq);
  /// Memo-aware Spec::returnAllowed for observer \p X at the current
  /// spec-state version. Stamps X.LastEvalVersion.
  bool observerAllowed(Exec &X);
  /// Re-evaluates still-unsatisfied open observers against the current
  /// spec state (after a commit / recovery may have changed it).
  void evalOpenObservers();
  /// Takes an Exec from the free pool (or allocates one) / returns a
  /// fully retired Exec to it, recycling the control block and the
  /// BlockWrites/CommitBlockWrites buffer capacity.
  ExecPtr acquireExec();
  void recycleExec(ExecPtr E);
  void applyUpdate(const Action &A);
  void compareViews(const Exec &X, uint64_t Seq);
  void runAudit(uint64_t Seq);
  void report(ViolationKind K, uint64_t Seq, ThreadId Tid, Name Method,
              std::string Message);
  /// Renders the flight-recorder bundle for \p V (see forensics()).
  std::string captureForensic(const Violation &V) const;
  /// Capacity of the RecentActions ring (context + flight recorder).
  unsigned recentRingDepth() const {
    return std::max(Config.ContextRecords, Config.FlightRecorderDepth);
  }

  Spec &TheSpec;
  Replayer *TheReplayer;
  CheckerConfig Config;
  CheckerStats Stats;
  Telemetry *Telem = nullptr;

  /// FIFO of pending events. A ChunkQueue (not a deque) so steady-state
  /// push/pop traffic recycles chunk and slot storage instead of churning
  /// deque blocks; drain() resets each popped event's ExecPtr so a
  /// retired slot never pins a pooled Exec.
  ChunkQueue<Event> Events;
  /// Open executions keyed by thread id. Small ids (the common case —
  /// dense ids from currentTid()) live in a direct-indexed vector whose
  /// slot assignments never allocate, unlike unordered_map node churn; a
  /// sparse map catches pathological ids so an adversarial log cannot
  /// force a giant table.
  static constexpr ThreadId DenseTidLimit = 4096;
  std::vector<ExecPtr> OpenExecsDense;
  std::unordered_map<ThreadId, ExecPtr> OpenExecsSparse;
  size_t OpenExecCount = 0;
  ExecPtr *findOpenExec(ThreadId Tid);
  void insertOpenExec(ThreadId Tid, ExecPtr E);
  void eraseOpenExec(ThreadId Tid, ExecPtr *Slot);
  std::vector<ExecPtr> OpenObservers;
  /// Mutators whose commit failed, awaiting diagnosis retries; paired
  /// with the index of their violation record.
  std::vector<std::pair<ExecPtr, size_t>> FailedMutators;
  std::vector<Violation> Violations;
  /// Flight-recorder bundles, parallel to Violations (see forensics()).
  std::vector<std::string> ForensicBundles;
  /// Ring of recently fed records for violation context and forensics.
  RingQueue<Action> RecentActions;
  View ViewI;
  View ViewS;
  uint64_t CommitsSinceAudit = 0;
  bool Finished = false;

  /// Monotonic version of the specification state: advances on every
  /// successful applyMutator (commit processing and diagnosis
  /// recoveries). Two evaluations at the same version see the same spec
  /// state — the fact the observer memo table relies on.
  uint64_t SpecVersion = 0;

  /// Observer memo table: signature -> verdict at a spec-state version.
  /// An entry answers repeat queries of the same signature until the
  /// version moves on; stale entries are overwritten in place. Stored as
  /// an open-addressing (linear-probe, power-of-two) slot array rather
  /// than a node-based map so steady-state misses never touch the heap:
  /// the only allocations are the rare capacity doublings during warmup
  /// (plus any string/bytes payload copied when a *new* signature is
  /// inserted — inline int/bool signatures, the common case, copy free).
  /// A slot owns a copy of the actual Args/Ret: probing routes on the
  /// hashes but a hit requires full equality, so a 128-bit hash collision
  /// degrades to an extra spec call, never to a wrong cached verdict.
  struct MemoSlot {
    Name Method;
    ValueList Args;
    Value Ret;
    uint64_t ArgsHash = 0;
    uint64_t RetHash = 0;
    uint64_t Version = ~uint64_t(0);
    bool Used = false;
    bool Allowed = false;
  };
  MemoSlot &memoSlotFor(const Exec &X);
  void growMemo(size_t NewSlots);
  std::vector<MemoSlot> ObsMemo;
  size_t ObsMemoUsed = 0;

  /// Retired Execs awaiting reuse (bounded). An entry is reusable once
  /// nothing but the pool references it (use_count == 1).
  std::vector<ExecPtr> ExecPool;
};

} // namespace vyrd

#endif // VYRD_CHECKER_H
