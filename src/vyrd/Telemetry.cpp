//===- Telemetry.cpp - Pipeline metrics, lag gauge, watchdog --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/Telemetry.h"

#include "vyrd/Instrument.h"

#include <cassert>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <ctime>

using namespace vyrd;

uint64_t vyrd::telemetryNowNanos() {
  timespec TS;
  clock_gettime(CLOCK_MONOTONIC, &TS);
  return static_cast<uint64_t>(TS.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(TS.tv_nsec);
}

const char *vyrd::counterName(Counter C) {
  switch (C) {
  case Counter::C_HookRecords:
    return "hook_records";
  case Counter::C_LogAppends:
    return "log_appends";
  case Counter::C_AppendStalls:
    return "append_stalls";
  case Counter::C_FlushBatches:
    return "flush_batches";
  case Counter::C_FlushedRecords:
    return "flushed_records";
  case Counter::C_ReorderGrows:
    return "reorder_grows";
  case Counter::C_CheckerBatches:
    return "checker_batches";
  case Counter::C_CheckerActions:
    return "checker_actions";
  case Counter::C_LagSamples:
    return "lag_samples";
  case Counter::C_WatchdogStalls:
    return "watchdog_stalls";
  case Counter::C_ObsMemoHits:
    return "obs_memo_hits";
  case Counter::C_ObsMemoMisses:
    return "obs_memo_misses";
  case Counter::C_ShedRecords:
    return "shed_records";
  case Counter::C_SpilledRecords:
    return "spilled_records";
  case Counter::C_BlockedAppends:
    return "blocked_appends";
  case Counter::C_SegmentsCreated:
    return "segments_created";
  case Counter::C_SegmentsReclaimed:
    return "segments_reclaimed";
  case Counter::C_SnapshotWrites:
    return "snapshot_writes";
  case Counter::C_SnapshotSkips:
    return "snapshot_skips";
  case Counter::C_SnapshotLoads:
    return "snapshot_loads";
  case Counter::C_EpochsChecked:
    return "epochs_checked";
  case Counter::C_PolicyEscalations:
    return "policy_escalations";
  case Counter::C_PolicyDeescalations:
    return "policy_deescalations";
  case Counter::C_GaugeUnderflow:
    return "gauge_underflow";
  case Counter::C_ShipSegments:
    return "ship_segments";
  case Counter::C_ShipBytes:
    return "ship_bytes";
  case Counter::C_ShipAcks:
    return "ship_acks";
  case Counter::C_ShipRetries:
    return "ship_retries";
  case Counter::C_ShipFallbackRecords:
    return "ship_fallback_records";
  case Counter::C_ShipSegmentsRecv:
    return "ship_segments_recv";
  case Counter::C_ShipRecordsRecv:
    return "ship_records_recv";
  case Counter::C_ShipCrcErrors:
    return "ship_crc_errors";
  case Counter::C_ShipResyncs:
    return "ship_resyncs";
  case Counter::C_ShipPartialDrops:
    return "ship_partial_drops";
  case Counter::NumCounters:
    break;
  }
  assert(false && "unknown Counter");
  return "?";
}

const char *vyrd::histoName(Histo H) {
  switch (H) {
  case Histo::H_AppendNs:
    return "append_latency";
  case Histo::H_FlushBatch:
    return "flush_batch_size";
  case Histo::H_ReorderOccupancy:
    return "reorder_occupancy";
  case Histo::H_FeedBatch:
    return "feed_batch_size";
  case Histo::H_FeedNs:
    return "feed_latency";
  case Histo::H_ViewCompareNs:
    return "view_compare_cost";
  case Histo::H_CheckerLag:
    return "checker_lag";
  case Histo::H_BlockedNs:
    return "blocked_append";
  case Histo::NumHistos:
    break;
  }
  assert(false && "unknown Histo");
  return "?";
}

const char *vyrd::histoUnit(Histo H) {
  switch (H) {
  case Histo::H_AppendNs:
  case Histo::H_FeedNs:
  case Histo::H_ViewCompareNs:
  case Histo::H_BlockedNs:
    return "ns";
  case Histo::H_FlushBatch:
  case Histo::H_FeedBatch:
    return "records";
  case Histo::H_ReorderOccupancy:
  case Histo::H_CheckerLag:
    return "seq";
  case Histo::NumHistos:
    break;
  }
  return "?";
}

const char *vyrd::gaugeName(Gauge G) {
  switch (G) {
  case Gauge::G_PendingRecords:
    return "pending_records";
  case Gauge::G_TailBytes:
    return "tail_bytes";
  case Gauge::G_SegmentsLive:
    return "segments_live";
  case Gauge::G_EpochsInFlight:
    return "epochs_in_flight";
  case Gauge::G_RestartLag:
    return "restart_lag";
  case Gauge::G_PumpBatchTarget:
    return "pump_batch_target";
  case Gauge::G_PolicyActive:
    return "policy_active";
  case Gauge::G_ShipAckedWatermark:
    return "ship_acked_watermark";
  case Gauge::G_ShipUnshippedSegments:
    return "ship_unshipped_segments";
  case Gauge::NumGauges:
    break;
  }
  assert(false && "unknown Gauge");
  return "?";
}

//===----------------------------------------------------------------------===//
// Snapshot rendering
//===----------------------------------------------------------------------===//

/// Upper bound of bucket \p B (see TelemetryCell::bucketOf).
static uint64_t bucketBound(size_t B) {
  if (B == 0)
    return 0;
  if (B >= 64)
    return UINT64_MAX;
  return (1ull << B) - 1;
}

uint64_t HistoSnapshot::percentileBound(double P) const {
  if (!Count)
    return 0;
  double Target = double(Count) * P / 100.0;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumHistoBuckets; ++B) {
    Seen += Buckets[B];
    if (double(Seen) >= Target)
      return bucketBound(B);
  }
  return bucketBound(NumHistoBuckets - 1);
}

uint64_t HistoSnapshot::max() const {
  for (size_t B = NumHistoBuckets; B-- > 0;)
    if (Buckets[B])
      return bucketBound(B);
  return 0;
}

std::string TelemetrySnapshot::str() const {
  char Buf[192];
  std::string Out = "telemetry:\n";
  for (size_t C = 0; C < NumCounters; ++C) {
    if (!Counters[C])
      continue;
    std::snprintf(Buf, sizeof(Buf), "  %-18s %12" PRIu64 "\n",
                  counterName(static_cast<Counter>(C)), Counters[C]);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "  %-18s %12" PRIu64 "%s\n",
                "checker_lag_now", CheckerLag,
                Stalled ? "  ** STALLED **" : "");
  Out += Buf;
  for (size_t G = 0; G < NumGauges; ++G) {
    if (!Gauges[G] && !GaugeHwms[G])
      continue;
    std::snprintf(Buf, sizeof(Buf),
                  "  %-18s %12" PRIu64 "  hwm=%" PRIu64 "\n",
                  gaugeName(static_cast<Gauge>(G)), Gauges[G],
                  GaugeHwms[G]);
    Out += Buf;
  }
  for (size_t O = 0; O < Objects.size(); ++O) {
    const ObjectTelemetry &OT = Objects[O];
    std::string Label =
        OT.Name.empty() ? "object" + std::to_string(O) : OT.Name;
    std::snprintf(Buf, sizeof(Buf),
                  "  object %-11s routed=%-10" PRIu64 " checked=%-10" PRIu64
                  " backlog=%" PRIu64 "\n",
                  Label.c_str(), OT.Routed, OT.Checked, OT.Backlog);
    Out += Buf;
  }
  for (size_t H = 0; H < NumHistos; ++H) {
    const HistoSnapshot &HS = Histos[H];
    if (!HS.Count)
      continue;
    Histo HK = static_cast<Histo>(H);
    std::snprintf(Buf, sizeof(Buf),
                  "  %-18s n=%-10" PRIu64 " mean=%-12.1f p50<=%-10" PRIu64
                  " p99<=%-10" PRIu64 " max<=%" PRIu64 " %s\n",
                  histoName(HK), HS.Count, HS.mean(),
                  HS.percentileBound(50), HS.percentileBound(99), HS.max(),
                  histoUnit(HK));
    Out += Buf;
  }
  return Out;
}

std::string TelemetrySnapshot::json() const {
  char Buf[160];
  std::string Out = "{\"counters\":{";
  for (size_t C = 0; C < NumCounters; ++C) {
    std::snprintf(Buf, sizeof(Buf), "%s\"%s\":%" PRIu64, C ? "," : "",
                  counterName(static_cast<Counter>(C)), Counters[C]);
    Out += Buf;
  }
  Out += "},\"gauges\":{";
  for (size_t G = 0; G < NumGauges; ++G) {
    std::snprintf(Buf, sizeof(Buf),
                  "%s\"%s\":{\"now\":%" PRIu64 ",\"hwm\":%" PRIu64 "}",
                  G ? "," : "", gaugeName(static_cast<Gauge>(G)), Gauges[G],
                  GaugeHwms[G]);
    Out += Buf;
  }
  Out += "},\"histograms\":{";
  for (size_t H = 0; H < NumHistos; ++H) {
    Histo HK = static_cast<Histo>(H);
    const HistoSnapshot &HS = Histos[H];
    std::snprintf(Buf, sizeof(Buf),
                  "%s\"%s\":{\"unit\":\"%s\",\"count\":%" PRIu64
                  ",\"sum\":%" PRIu64 ",\"mean\":%.1f,\"p50\":%" PRIu64
                  ",\"p99\":%" PRIu64 ",\"max\":%" PRIu64 ",\"buckets\":[",
                  H ? "," : "", histoName(HK), histoUnit(HK), HS.Count,
                  HS.Sum, HS.mean(), HS.percentileBound(50),
                  HS.percentileBound(99), HS.max());
    Out += Buf;
    // Trailing zero buckets are elided; bucket i covers values of bit
    // width i (bucket 0 is exactly {0}).
    size_t Last = 0;
    for (size_t B = 0; B < NumHistoBuckets; ++B)
      if (HS.Buckets[B])
        Last = B + 1;
    for (size_t B = 0; B < Last; ++B) {
      std::snprintf(Buf, sizeof(Buf), "%s%" PRIu64, B ? "," : "",
                    HS.Buckets[B]);
      Out += Buf;
    }
    Out += "]}";
  }
  Out += "}";
  if (!Objects.empty()) {
    Out += ",\"objects\":{";
    for (size_t O = 0; O < Objects.size(); ++O) {
      const ObjectTelemetry &OT = Objects[O];
      std::string Label =
          OT.Name.empty() ? "object" + std::to_string(O) : OT.Name;
      std::snprintf(Buf, sizeof(Buf),
                    "%s\"%s\":{\"routed\":%" PRIu64 ",\"checked\":%" PRIu64
                    ",\"backlog\":%" PRIu64 "}",
                    O ? "," : "", Label.c_str(), OT.Routed, OT.Checked,
                    OT.Backlog);
      Out += Buf;
    }
    Out += "}";
  }
  std::snprintf(Buf, sizeof(Buf),
                "\"checker_lag\":%" PRIu64 ",\"stalled\":%s}", CheckerLag,
                Stalled ? "true" : "false");
  Out += ",";
  Out += Buf;
  return Out;
}

//===----------------------------------------------------------------------===//
// Telemetry
//===----------------------------------------------------------------------===//

namespace {

/// Process-unique ids (never reused) keying the thread-local cell cache,
/// exactly like BufferedLog's shard cache.
std::atomic<uint64_t> NextTelemetryId{1};

struct CellCacheEntry {
  uint64_t TelemetryId = 0;
  TelemetryCell *Cell = nullptr;
};
constexpr size_t CellCacheWays = 4;
thread_local CellCacheEntry CellCache[CellCacheWays];

void defaultStallReport(const std::string &Msg) {
  std::fprintf(stderr, "vyrd telemetry: %s\n", Msg.c_str());
}

} // namespace

Telemetry::Telemetry() : Telemetry(Options()) {}

Telemetry::Telemetry(Options O)
    : Opts(std::move(O)),
      InstanceId(NextTelemetryId.fetch_add(1, std::memory_order_relaxed)) {
  if (!Opts.StallReport)
    Opts.StallReport = defaultStallReport;
  if (Opts.SampleIntervalUs)
    startSampler();
}

Telemetry::~Telemetry() { stopSampler(); }

TelemetryCell &Telemetry::cell() {
  CellCacheEntry &E = CellCache[InstanceId % CellCacheWays];
  if (E.TelemetryId == InstanceId)
    return *E.Cell;
  ThreadId Tid = currentTid();
  std::lock_guard Lock(RegistryM);
  if (CellByTid.size() <= Tid)
    CellByTid.resize(Tid + 1);
  if (!CellByTid[Tid])
    CellByTid[Tid] = std::make_unique<TelemetryCell>();
  E.TelemetryId = InstanceId;
  E.Cell = CellByTid[Tid].get();
  return *E.Cell;
}

uint64_t Telemetry::checkerLag() const {
  if (!Opts.ProducerProbe)
    return 0;
  uint64_t Produced = Opts.ProducerProbe();
  uint64_t Consumed = consumedSeq();
  return Produced > Consumed ? Produced - Consumed : 0;
}

uint64_t Telemetry::counterTotal(Counter C) const {
  std::lock_guard Lock(RegistryM);
  uint64_t Total = 0;
  for (const auto &CellPtr : CellByTid)
    if (CellPtr)
      Total += CellPtr->Counters[static_cast<size_t>(C)].load(
          std::memory_order_relaxed);
  return Total;
}

void Telemetry::registerObject(uint32_t Obj, std::string ObjName) {
  std::lock_guard Lock(RegistryM);
  if (ObjectsById.size() <= Obj)
    ObjectsById.resize(Obj + 1);
  if (!ObjectsById[Obj]) {
    ObjectsById[Obj] = std::make_unique<ObjectCounters>();
    ObjectsById[Obj]->Name = std::move(ObjName);
  }
}

void Telemetry::noteObjectRouted(uint32_t Obj, uint64_t N) {
  std::lock_guard Lock(RegistryM);
  if (Obj < ObjectsById.size() && ObjectsById[Obj])
    ObjectsById[Obj]->Routed.fetch_add(N, std::memory_order_relaxed);
}

void Telemetry::noteObjectChecked(uint32_t Obj, uint64_t N) {
  std::lock_guard Lock(RegistryM);
  if (Obj < ObjectsById.size() && ObjectsById[Obj])
    ObjectsById[Obj]->Checked.fetch_add(N, std::memory_order_relaxed);
}

uint64_t Telemetry::objectBacklog(uint32_t Obj) const {
  std::lock_guard Lock(RegistryM);
  if (Obj >= ObjectsById.size() || !ObjectsById[Obj])
    return 0;
  uint64_t R = ObjectsById[Obj]->Routed.load(std::memory_order_relaxed);
  uint64_t C = ObjectsById[Obj]->Checked.load(std::memory_order_relaxed);
  return R > C ? R - C : 0;
}

void Telemetry::startSampler() {
  if (SamplerRunning)
    return;
  SamplerRunning = true;
  SamplerStop.store(false, std::memory_order_relaxed);
  Sampler = std::thread([this] { samplerMain(); });
}

void Telemetry::stopSampler() {
  if (!SamplerRunning)
    return;
  SamplerStop.store(true, std::memory_order_relaxed);
  Sampler.join();
  SamplerRunning = false;
}

void Telemetry::samplerMain() {
  TelemetryCell &TC = cell();
  uint64_t IntervalNs =
      static_cast<uint64_t>(Opts.SampleIntervalUs ? Opts.SampleIntervalUs
                                                  : 1000) *
      1000;
  uint64_t QuietNs = static_cast<uint64_t>(Opts.WatchdogQuietMs) * 1000000;
  uint64_t LastConsumed = consumedSeq();
  uint64_t LastAdvanceNs = telemetryNowNanos();
  bool Reported = false;
  while (!SamplerStop.load(std::memory_order_relaxed)) {
    // Sleep in small slices so stopSampler() stays prompt even with long
    // sample intervals.
    uint64_t Slept = 0;
    while (Slept < IntervalNs &&
           !SamplerStop.load(std::memory_order_relaxed)) {
      uint64_t Slice = std::min<uint64_t>(IntervalNs - Slept, 2000000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(Slice));
      Slept += Slice;
    }
    if (SamplerStop.load(std::memory_order_relaxed))
      break;

    uint64_t Lag = checkerLag();
    TC.record(Histo::H_CheckerLag, Lag);
    TC.count(Counter::C_LagSamples);

    if (!QuietNs)
      continue;
    uint64_t Now = telemetryNowNanos();
    uint64_t ConsumedNow = consumedSeq();
    if (ConsumedNow != LastConsumed || Lag == 0) {
      LastConsumed = ConsumedNow;
      LastAdvanceNs = Now;
      StallFlag.store(false, std::memory_order_relaxed);
      Reported = false;
      continue;
    }
    if (Now - LastAdvanceNs >= QuietNs) {
      StallFlag.store(true, std::memory_order_relaxed);
      if (!Reported) {
        Reported = true;
        TC.count(Counter::C_WatchdogStalls);
        // Distinguish the two stall shapes: a checker that stopped
        // consuming (pending records pile up) vs producers parked on
        // backpressure behind a bound (appends blocked, pending at the
        // configured ceiling).
        uint64_t Pending = gauge(Gauge::G_PendingRecords);
        uint64_t Blocked = counterTotal(Counter::C_BlockedAppends);
        Opts.StallReport(
            "verifier stalled: consumer stuck at seq " +
            std::to_string(ConsumedNow) + " with lag " +
            std::to_string(Lag) + " for over " +
            std::to_string(Opts.WatchdogQuietMs) + " ms (pending_records=" +
            std::to_string(Pending) + ", blocked_appends=" +
            std::to_string(Blocked) +
            (Blocked ? "; producers blocked on backpressure"
                     : "; checker slow") +
            ")");
      }
    }
  }
}

TelemetrySnapshot Telemetry::snapshot() const {
  TelemetrySnapshot S;
  {
    std::lock_guard Lock(RegistryM);
    for (const auto &CellPtr : CellByTid) {
      if (!CellPtr)
        continue;
      const TelemetryCell &TC = *CellPtr;
      for (size_t C = 0; C < NumCounters; ++C)
        S.Counters[C] += TC.Counters[C].load(std::memory_order_relaxed);
      for (size_t H = 0; H < NumHistos; ++H) {
        HistoSnapshot &HS = S.Histos[H];
        for (size_t B = 0; B < NumHistoBuckets; ++B) {
          uint64_t N = TC.Buckets[H][B].load(std::memory_order_relaxed);
          HS.Buckets[B] += N;
          HS.Count += N;
        }
        HS.Sum += TC.Sums[H].load(std::memory_order_relaxed);
      }
    }
    for (const auto &OC : ObjectsById) {
      ObjectTelemetry OT;
      if (OC) {
        OT.Name = OC->Name;
        OT.Routed = OC->Routed.load(std::memory_order_relaxed);
        OT.Checked = OC->Checked.load(std::memory_order_relaxed);
        OT.Backlog = OT.Routed > OT.Checked ? OT.Routed - OT.Checked : 0;
      }
      S.Objects.push_back(std::move(OT));
    }
  }
  for (size_t G = 0; G < NumGauges; ++G) {
    S.Gauges[G] = GaugeNow[G].load(std::memory_order_relaxed);
    S.GaugeHwms[G] = GaugeHwm[G].load(std::memory_order_relaxed);
  }
  S.CheckerLag = checkerLag();
  S.Stalled = stalled();
  return S;
}
