//===- View.h - Canonical abstract-state views ------------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A View is the value of the hypothetical viewI/viewS variable of Sec. 5:
/// a canonical representation of the abstract data structure contents,
/// modeled as a multiset of (key, value) pairs. Both the specification
/// (viewS) and the replayer (viewI) maintain their View incrementally as
/// methods commit; the checker compares the two at every mutator commit.
///
/// Comparison is O(1) in the common (equal) case: each View maintains two
/// independent order-insensitive 64-bit hash accumulators that are updated
/// on every insert/remove (Sec. 6.4, incremental computation and comparison
/// of views). On hash mismatch the checker performs a full diff to produce a
/// precise report; a configurable periodic audit guards the fast path.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VIEW_H
#define VYRD_VIEW_H

#include "vyrd/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace vyrd {

/// One (key, value) entry of a view.
struct ViewEntry {
  Value Key;
  Value Val;

  friend bool operator<(const ViewEntry &L, const ViewEntry &R) {
    if (L.Key < R.Key)
      return true;
    if (R.Key < L.Key)
      return false;
    return L.Val < R.Val;
  }
  friend bool operator==(const ViewEntry &L, const ViewEntry &R) {
    return L.Key == R.Key && L.Val == R.Val;
  }
};

/// A multiset of ViewEntry with incrementally maintained hashes.
class View {
public:
  /// Adds one occurrence of (\p Key, \p Val).
  void add(const Value &Key, const Value &Val);

  /// Removes one occurrence of (\p Key, \p Val).
  /// \returns false if the entry was not present (view unchanged).
  bool remove(const Value &Key, const Value &Val);

  /// Removes every entry with key \p Key. \returns how many were removed.
  size_t removeKey(const Value &Key);

  /// Number of occurrences of (\p Key, \p Val).
  size_t count(const Value &Key, const Value &Val) const;

  /// Number of entries (with multiplicity) under \p Key.
  size_t countKey(const Value &Key) const;

  void clear();

  size_t size() const { return Total; }
  bool empty() const { return Total == 0; }

  /// The two hash accumulators. Equal views have equal digests; unequal
  /// views collide with probability ~2^-128 per comparison.
  std::pair<uint64_t, uint64_t> digest() const { return {H1, H2}; }

  /// Fast equality: size + double hash. Sound up to hash collision; use
  /// deepEquals for an exact answer.
  friend bool operator==(const View &L, const View &R) {
    return L.Total == R.Total && L.H1 == R.H1 && L.H2 == R.H2;
  }
  friend bool operator!=(const View &L, const View &R) { return !(L == R); }

  /// Exact structural equality (full scan).
  bool deepEquals(const View &Other) const { return Entries == Other.Entries; }

  /// Renders up to \p MaxEntries entries for diagnostics.
  std::string str(size_t MaxEntries = 16) const;

  /// Describes the difference between two views (entries only in L, only in
  /// R); used to produce violation reports.
  static std::string diff(const View &L, const View &R, size_t MaxEntries = 8);

  /// Iteration (sorted order) for audits and diffs.
  using Map = std::map<ViewEntry, size_t>;
  const Map &entries() const { return Entries; }

private:
  void hashToggle(const ViewEntry &E, size_t OldCount, size_t NewCount);

  Map Entries;
  size_t Total = 0;
  uint64_t H1 = 0;
  uint64_t H2 = 0;
};

} // namespace vyrd

#endif // VYRD_VIEW_H
