//===- ShipServer.cpp - The checker fleet's segment receiver --------------===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vyrd/ShipServer.h"

#include "vyrd/CheckerService.h"
#include "vyrd/Serialize.h"
#include "vyrd/Verifier.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace vyrd;

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

/// One producer stream and its checking state. Created at the first
/// Hello; a later connection presenting the same name while this one is
/// idle (its connection died without a Close) adopts it — that is how a
/// reconnecting SocketTransport resumes: already-fed segments dedup on
/// FedIndex, and the watermark is re-acked so the producer's reclamation
/// does not stall.
struct ShipServer::Session {
  std::string Name;
  std::string Program;
  bool ViewLevel = false;

  /// Fd of the currently attached connection (-1 while idle). Guarded by
  /// the server mutex for attach/detach; the owning connection thread
  /// reads it freely.
  int Fd = -1;
  bool Idle = false;

  std::unique_ptr<Telemetry> Telem;
  std::unique_ptr<CheckerService> Svc;

  /// Segment assembly (one at a time; a new SegmentBegin drops any
  /// partial predecessor — the producer retries whole segments).
  bool Assembling = false;
  uint64_t CurIndex = 0;
  uint64_t Expected = 0;
  std::vector<uint8_t> Image;

  /// The sidecar shipped ahead of a mid-chain first segment.
  bool HavePendingSnap = false;
  SnapshotFile PendingSnap;

  uint64_t FedIndex = 0; ///< highest segment index fed (dedup on resume)
  bool AnyFed = false;
  std::atomic<uint64_t> Watermark{0}; ///< exclusive fed watermark
  uint64_t FinalSeq = 0;              ///< from Close (0 until then)

  bool Closed = false; ///< Close frame processed
  std::atomic<bool> Done{false};
  std::string ReportJson; ///< set under the server mutex at completion

  struct Source;
};

/// The session's monitor window (registered under its name). Holds the
/// session by shared_ptr so a bound vyrd-mon client outlives removal.
struct ShipServer::Session::Source : MonitorSource {
  explicit Source(std::shared_ptr<Session> S) : S(std::move(S)) {}
  TelemetrySnapshot telemetrySnapshot() override {
    return S->Telem ? S->Telem->snapshot() : TelemetrySnapshot();
  }
  std::vector<Violation> liveViolations() override {
    return S->Svc ? S->Svc->liveViolations() : std::vector<Violation>();
  }
  std::vector<std::string> forensicFiles() override {
    return S->Svc ? S->Svc->forensicFiles() : std::vector<std::string>();
  }
  std::shared_ptr<Session> S;
};

//===----------------------------------------------------------------------===//
// Socket plumbing
//===----------------------------------------------------------------------===//

namespace {

bool sendAllFd(int Fd, const std::string &Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N =
        send(Fd, Bytes.data() + Off, Bytes.size() - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

void sendAck(int Fd, uint64_t Watermark) {
  if (Fd < 0)
    return;
  ByteWriter W;
  W.varint(Watermark);
  std::string Out;
  wire::appendFrame(Out, wire::FT_WatermarkAck, W.buffer().data(),
                    W.buffer().size());
  (void)sendAllFd(Fd, Out);
}

int listenOn(const ShipEndpoint &Ep, std::string &Err) {
  int Fd = -1;
  if (Ep.IsUnix) {
    Fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return -1;
    }
    sockaddr_un Addr;
    std::memset(&Addr, 0, sizeof(Addr));
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Ep.Path.c_str(), sizeof(Addr.sun_path) - 1);
    unlink(Ep.Path.c_str()); // stale socket from a killed daemon
    if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
        listen(Fd, 16) != 0) {
      Err = std::string("bind/listen ") + Ep.Path + ": " +
            std::strerror(errno);
      close(Fd);
      return -1;
    }
    return Fd;
  }
  addrinfo Hints;
  std::memset(&Hints, 0, sizeof(Hints));
  Hints.ai_family = AF_UNSPEC;
  Hints.ai_socktype = SOCK_STREAM;
  Hints.ai_flags = AI_PASSIVE;
  addrinfo *Res = nullptr;
  std::string Port = std::to_string(Ep.Port);
  int RC = getaddrinfo(Ep.Host.empty() ? nullptr : Ep.Host.c_str(),
                       Port.c_str(), &Hints, &Res);
  if (RC != 0) {
    Err = std::string("getaddrinfo: ") + gai_strerror(RC);
    return -1;
  }
  for (addrinfo *A = Res; A; A = A->ai_next) {
    Fd = socket(A->ai_family, A->ai_socktype, A->ai_protocol);
    if (Fd < 0)
      continue;
    int One = 1;
    setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    if (bind(Fd, A->ai_addr, A->ai_addrlen) == 0 && listen(Fd, 16) == 0)
      break;
    close(Fd);
    Fd = -1;
  }
  freeaddrinfo(Res);
  if (Fd < 0)
    Err = "cannot bind tcp endpoint " + Ep.Host + ":" + Port;
  return Fd;
}

} // namespace

//===----------------------------------------------------------------------===//
// ShipServer
//===----------------------------------------------------------------------===//

ShipServer::ShipServer(const ShipServerOptions &O,
                       ProgramPipelineResolver Resolver,
                       MonitorRegistry *Registry)
    : Opts(O), Resolver(std::move(Resolver)), Registry(Registry) {
  ShipEndpoint Ep;
  if (!parseShipEndpoint(Opts.Listen, Ep, Error))
    return;
  ListenFd = listenOn(Ep, Error);
  if (ListenFd < 0)
    return;
  Valid = true;
  Acceptor = std::thread([this] { acceptMain(); });
}

ShipServer::~ShipServer() { stop(); }

void ShipServer::stop() {
  if (!Valid || StopFlag.exchange(true))
    return;
  // Unblock the acceptor and every connection thread, then join them.
  shutdown(ListenFd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> G(M);
    for (auto &S : Sessions)
      if (S->Fd >= 0)
        shutdown(S->Fd, SHUT_RDWR);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> G(M);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  close(ListenFd);
  ListenFd = -1;
  // Sessions whose producer died without a Close still owe a report over
  // what they fed (the crash-forensics path).
  std::vector<std::shared_ptr<Session>> Snapshot;
  {
    std::lock_guard<std::mutex> G(M);
    Snapshot = Sessions;
  }
  for (auto &S : Snapshot)
    if (!S->Done.load(std::memory_order_acquire))
      completeSession(*S, 0, /*Truncated=*/true);
}

std::vector<std::string> ShipServer::sessionNames() const {
  std::lock_guard<std::mutex> G(M);
  std::vector<std::string> Out;
  Out.reserve(Sessions.size());
  for (const auto &S : Sessions)
    Out.push_back(S->Name);
  return Out;
}

bool ShipServer::waitForSessionEnd(const std::string &Name,
                                   unsigned TimeoutMs) {
  std::unique_lock<std::mutex> G(M);
  return CompletedCv.wait_for(G, std::chrono::milliseconds(TimeoutMs),
                              [&] {
                                for (const auto &S : Sessions)
                                  if (S->Name == Name &&
                                      S->Done.load(
                                          std::memory_order_acquire))
                                    return true;
                                return false;
                              });
}

std::string ShipServer::sessionReportJson(const std::string &Name) const {
  std::lock_guard<std::mutex> G(M);
  // Latest session under that name wins (a replaced name keeps both
  // entries; reports are only set once a session is Done).
  for (auto It = Sessions.rbegin(); It != Sessions.rend(); ++It)
    if ((*It)->Name == Name && (*It)->Done.load(std::memory_order_acquire))
      return (*It)->ReportJson;
  return "";
}

void ShipServer::acceptMain() {
  while (!StopFlag.load(std::memory_order_relaxed)) {
    pollfd P{ListenFd, POLLIN, 0};
    if (poll(&P, 1, 200) <= 0)
      continue;
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    std::lock_guard<std::mutex> G(M);
    size_t Live = 0;
    for (const auto &S : Sessions)
      Live += S->Fd >= 0;
    if (StopFlag.load(std::memory_order_relaxed) ||
        Live >= Opts.MaxSessions) {
      close(Fd);
      continue;
    }
    ConnThreads.emplace_back([this, Fd] { connMain(Fd); });
  }
}

std::shared_ptr<ShipServer::Session>
ShipServer::bindSession(const std::string &Name, const std::string &Program,
                        bool ViewLevel, int Fd) {
  std::lock_guard<std::mutex> G(M);
  for (auto &S : Sessions) {
    if (S->Name != Name)
      continue;
    if (S->Idle && !S->Done.load(std::memory_order_acquire)) {
      // Producer reconnect: adopt the idle session and re-ack the
      // watermark so the producer knows where the checkers stand.
      S->Idle = false;
      S->Fd = Fd;
      // Any half-assembled segment from the dead connection is stale.
      S->Assembling = false;
      S->Image.clear();
      sendAck(Fd, S->Watermark.load(std::memory_order_acquire));
      return S;
    }
    if (S->Fd >= 0)
      return nullptr; // name in use by a live connection
  }
  // Fresh session.
  size_t NumObjects = 0;
  PipelineFactory Factory;
  if (!Resolver || !Resolver(Program, ViewLevel, NumObjects, Factory) ||
      NumObjects == 0)
    return nullptr;
  auto S = std::make_shared<Session>();
  S->Name = Name;
  S->Program = Program;
  S->ViewLevel = ViewLevel;
  S->Fd = Fd;
  Telemetry::Options TO;
  S->Telem = std::make_unique<Telemetry>(std::move(TO));
  CheckerServiceOptions SO;
  SO.Backpressure = Opts.Backpressure;
  S->Svc = std::make_unique<CheckerService>(std::move(SO));
  S->Svc->setTelemetry(S->Telem.get());
  CheckerConfig CC = Opts.Checker;
  CC.Mode = ViewLevel ? CheckMode::CM_ViewRefinement
                      : CheckMode::CM_IORefinement;
  for (ObjectId Id = 0; Id < NumObjects; ++Id) {
    std::string ObjName;
    std::unique_ptr<Spec> Sp;
    std::unique_ptr<Replayer> Rp;
    if (!Factory(Id, ObjName, Sp, Rp) || !Sp)
      return nullptr;
    S->Svc->addObject(std::move(ObjName), std::move(Sp), std::move(Rp), CC);
  }
  if (Opts.CheckerThreads > 1)
    S->Svc->startPool(Opts.CheckerThreads);
  Sessions.push_back(S);
  if (Registry)
    Registry->add(Name, std::make_shared<Session::Source>(S));
  return S;
}

void ShipServer::completeSession(Session &S, uint64_t FinalSeqExclusive,
                                 bool Truncated) {
  {
    std::lock_guard<std::mutex> G(M);
    if (S.Done.load(std::memory_order_acquire))
      return;
  }
  S.Svc->finishChecking();
  VerifierReport R;
  S.Svc->buildReport(R);
  R.LogRecords = FinalSeqExclusive ? FinalSeqExclusive
                                   : S.Watermark.load(
                                         std::memory_order_acquire);
  if (S.Telem) {
    R.TelemetryEnabled = true;
    R.Telemetry = S.Telem->snapshot();
  }
  if (Truncated)
    R.Notes.push_back(
        "stream truncated: the producer disconnected without a Close "
        "frame; this report covers the fed prefix (watermark " +
        std::to_string(S.Watermark.load(std::memory_order_acquire)) + ")");
  std::string Json = R.json();
  if (!Opts.ReportDir.empty()) {
    std::string Path = Opts.ReportDir + "/" + S.Name + ".report.json";
    if (FILE *F = std::fopen(Path.c_str(), "wb")) {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fputc('\n', F);
      std::fclose(F);
    } else {
      std::fprintf(stderr, "vyrd-checkd: cannot write report %s\n",
                   Path.c_str());
    }
  }
  {
    std::lock_guard<std::mutex> G(M);
    S.ReportJson = std::move(Json);
    S.Done.store(true, std::memory_order_release);
  }
  Completed.fetch_add(1, std::memory_order_acq_rel);
  CompletedCv.notify_all();
}

void ShipServer::handleFrame(Session &S, const wire::Frame &F) {
  ByteReader R(F.Payload.data(), F.Payload.size());
  switch (F.Type) {
  case wire::FT_Hello:
    // Re-hello on a live connection: answer with the watermark (the
    // producer uses it to dedup after an application-level retry).
    sendAck(S.Fd, S.Watermark.load(std::memory_order_acquire));
    break;
  case wire::FT_SegmentBegin: {
    uint64_t Index = R.varint();
    uint64_t Bytes = R.varint();
    if (!R.ok() || Bytes > wire::MaxFramePayload * 16ull)
      break;
    if (S.Assembling && S.Telem)
      S.Telem->count(Counter::C_ShipPartialDrops);
    S.Assembling = true;
    S.CurIndex = Index;
    S.Expected = Bytes;
    S.Image.clear();
    S.Image.reserve(static_cast<size_t>(Bytes));
    break;
  }
  case wire::FT_SegmentChunk:
    if (!S.Assembling)
      break;
    if (S.Image.size() + F.Payload.size() > S.Expected) {
      // Oversized assembly: stream confusion; drop the segment.
      S.Assembling = false;
      S.Image.clear();
      if (S.Telem)
        S.Telem->count(Counter::C_ShipPartialDrops);
      break;
    }
    S.Image.insert(S.Image.end(), F.Payload.begin(), F.Payload.end());
    break;
  case wire::FT_Snapshot: {
    uint64_t Index = R.varint();
    if (!R.ok())
      break;
    size_t Off = R.position();
    if (decodeSnapshot(F.Payload.data() + Off, F.Payload.size() - Off,
                       S.PendingSnap)) {
      S.PendingSnap.SegmentIndex = Index;
      S.HavePendingSnap = true;
    }
    break;
  }
  case wire::FT_SegmentEnd: {
    uint64_t Index = R.varint();
    if (!R.ok())
      break;
    if (!S.Assembling || Index != S.CurIndex ||
        S.Image.size() != S.Expected) {
      // Incomplete or mismatched transfer (e.g. chunks lost to a CRC
      // resync): drop it without an ack; the producer retries the whole
      // segment.
      S.Assembling = false;
      S.Image.clear();
      if (S.Telem)
        S.Telem->count(Counter::C_ShipPartialDrops);
      break;
    }
    S.Assembling = false;
    if (Index <= S.FedIndex && S.AnyFed) {
      // Duplicate after a reconnect: already fed; just re-ack.
      S.Image.clear();
      sendAck(S.Fd, S.Watermark.load(std::memory_order_acquire));
      break;
    }
    ByteReader SR(S.Image.data(), S.Image.size());
    LogSegmentInfo Seg;
    uint32_t Version = readLogHeader(SR, &Seg);
    if (!Version) {
      S.Image.clear();
      if (S.Telem)
        S.Telem->count(Counter::C_ShipPartialDrops);
      break;
    }
    if (!S.AnyFed && Seg.FirstSeq > 0) {
      // Mid-chain start: the producer reclaimed an acked prefix before
      // we joined (or we are a replacement checker). The sidecar shipped
      // ahead of this segment seeds the checkers; without it the check
      // would be unsound, so the segment is refused (no ack — the
      // producer's degrade path takes over).
      if (!S.HavePendingSnap || S.PendingSnap.SegmentIndex != Index) {
        S.Image.clear();
        if (S.Telem)
          S.Telem->count(Counter::C_ShipPartialDrops);
        break;
      }
      std::string Err;
      if (!S.Svc->restoreFromSnapshot(S.PendingSnap, Err)) {
        std::fprintf(stderr, "vyrd-checkd: snapshot restore failed: %s\n",
                     Err.c_str());
        S.Image.clear();
        break;
      }
      S.Watermark.store(S.PendingSnap.Watermark, std::memory_order_release);
    }
    ActionDecoder Decoder;
    Decoder.setVersion(Version);
    std::vector<Action> Batch;
    bool Clean = true;
    while (SR.ok() && !SR.atEnd()) {
      Action A;
      if (!Decoder.decode(SR, A)) {
        Clean = false;
        break;
      }
      Batch.push_back(std::move(A));
    }
    if (!Clean || !SR.ok()) {
      S.Image.clear();
      if (S.Telem)
        S.Telem->count(Counter::C_ShipPartialDrops);
      break;
    }
    TelemetryCell *TC = telemetryCompiledIn() && S.Telem
                            ? &S.Telem->cell()
                            : nullptr;
    S.Svc->routeRange(Batch, 0, Batch.size(), TC);
    S.AnyFed = true;
    S.FedIndex = Index;
    if (!Batch.empty())
      S.Watermark.store(Batch.back().Seq + 1, std::memory_order_release);
    if (S.Telem) {
      S.Telem->count(Counter::C_ShipSegmentsRecv);
      S.Telem->count(Counter::C_ShipRecordsRecv, Batch.size());
      S.Telem->noteConsumed(S.Watermark.load(std::memory_order_acquire));
    }
    S.Image.clear();
    if (!HoldAcks.load(std::memory_order_acquire))
      sendAck(S.Fd, S.Watermark.load(std::memory_order_acquire));
    break;
  }
  case wire::FT_Close: {
    uint64_t FinalSeq = R.varint();
    if (!R.ok())
      break;
    S.Closed = true;
    S.FinalSeq = FinalSeq;
    S.Watermark.store(FinalSeq, std::memory_order_release);
    completeSession(S, FinalSeq, /*Truncated=*/false);
    // The final ack always flows (HoldAcks only withholds segment acks):
    // the producer's finish() blocks on it.
    sendAck(S.Fd, FinalSeq);
    break;
  }
  default:
    break; // unknown frame type: ignore (forward compatibility)
  }
}

void ShipServer::connMain(int Fd) {
  wire::FrameParser Parser;
  uint64_t CrcSeen = 0, ResyncSeen = 0;
  std::shared_ptr<Session> S;
  char Buf[64 << 10];
  for (;;) {
    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break;
    Parser.feed(Buf, static_cast<size_t>(N));
    wire::Frame F;
    while (Parser.next(F)) {
      if (!S) {
        if (F.Type != wire::FT_Hello)
          continue; // pre-Hello garbage: ignore
        ByteReader R(F.Payload.data(), F.Payload.size());
        std::string Name = R.str();
        std::string Program = R.str();
        bool ViewLevel = R.u8() != 0;
        if (!R.ok() || Name.empty())
          continue;
        S = bindSession(Name, Program, ViewLevel, Fd);
        if (!S) {
          // Unknown program or name collision: refuse the stream.
          close(Fd);
          return;
        }
        continue;
      }
      handleFrame(*S, F);
    }
    if (S && S->Telem) {
      if (Parser.crcErrors() > CrcSeen)
        S->Telem->count(Counter::C_ShipCrcErrors,
                        Parser.crcErrors() - CrcSeen);
      if (Parser.resyncs() > ResyncSeen)
        S->Telem->count(Counter::C_ShipResyncs,
                        Parser.resyncs() - ResyncSeen);
      CrcSeen = Parser.crcErrors();
      ResyncSeen = Parser.resyncs();
    }
  }
  close(Fd);
  if (!S)
    return;
  std::lock_guard<std::mutex> G(M);
  S->Fd = -1;
  if (S->Closed || S->Done.load(std::memory_order_acquire))
    return;
  // EOF without Close: the producer died or will reconnect. Keep the
  // session idle and adoptable; stop() finalizes it with a truncation
  // note if no one ever does.
  if (S->Assembling && S->Telem)
    S->Telem->count(Counter::C_ShipPartialDrops);
  S->Assembling = false;
  S->Image.clear();
  S->Idle = true;
}
