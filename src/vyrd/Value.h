//===- Value.h - Tagged union value used throughout VYRD -------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines vyrd::Value, the small dynamically-typed value that carries method
/// arguments, return values, logged shared-variable contents, and view
/// entries. Keeping one value type everywhere lets the refinement checker be
/// generic over all verified data structures.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VALUE_H
#define VYRD_VALUE_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace vyrd {

/// Discriminator for the alternatives a Value can hold.
enum class ValueKind : uint8_t {
  VK_Null = 0,
  VK_Bool = 1,
  VK_Int = 2,
  VK_Str = 3,
  VK_Bytes = 4,
};

/// A small tagged union: null, bool, 64-bit int, string, or byte array.
///
/// Values are ordered (lexicographically within a kind, by kind across
/// kinds) so they can serve as keys in canonical views, and hashable so view
/// hashes can be maintained incrementally.
class Value {
public:
  using Bytes = std::vector<uint8_t>;

  Value() : Data(std::monostate{}) {}
  Value(bool B) : Data(B) {}
  Value(int64_t I) : Data(I) {}
  Value(int I) : Data(static_cast<int64_t>(I)) {}
  Value(unsigned I) : Data(static_cast<int64_t>(I)) {}
  Value(uint64_t I) : Data(static_cast<int64_t>(I)) {}
  Value(std::string S) : Data(std::move(S)) {}
  Value(const char *S) : Data(std::string(S)) {}
  Value(Bytes B) : Data(std::move(B)) {}

  ValueKind kind() const {
    return static_cast<ValueKind>(Data.index());
  }

  bool isNull() const { return kind() == ValueKind::VK_Null; }
  bool isBool() const { return kind() == ValueKind::VK_Bool; }
  bool isInt() const { return kind() == ValueKind::VK_Int; }
  bool isStr() const { return kind() == ValueKind::VK_Str; }
  bool isBytes() const { return kind() == ValueKind::VK_Bytes; }

  /// Accessors assert that the stored kind matches.
  bool asBool() const;
  int64_t asInt() const;
  const std::string &asStr() const;
  const Bytes &asBytes() const;

  /// Stable 64-bit hash of the value (kind-tagged, content-based).
  uint64_t hash() const;

  /// Renders the value for diagnostics, e.g. `int:42`, `bytes[16]:a1b2..`.
  std::string str() const;

  friend bool operator==(const Value &L, const Value &R) {
    return L.Data == R.Data;
  }
  friend bool operator!=(const Value &L, const Value &R) {
    return !(L == R);
  }
  friend bool operator<(const Value &L, const Value &R);

private:
  std::variant<std::monostate, bool, int64_t, std::string, Bytes> Data;
};

/// Convenience list-of-values used for method argument vectors.
using ValueList = std::vector<Value>;

/// Builds a Value holding the given raw bytes.
Value bytesValue(const void *Data, size_t Size);

} // namespace vyrd

#endif // VYRD_VALUE_H
