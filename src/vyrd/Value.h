//===- Value.h - Tagged union value used throughout VYRD -------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines vyrd::Value, the small dynamically-typed value that carries method
/// arguments, return values, logged shared-variable contents, and view
/// entries. Keeping one value type everywhere lets the refinement checker be
/// generic over all verified data structures.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_VALUE_H
#define VYRD_VALUE_H

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace vyrd {

/// Discriminator for the alternatives a Value can hold.
enum class ValueKind : uint8_t {
  VK_Null = 0,
  VK_Bool = 1,
  VK_Int = 2,
  VK_Str = 3,
  VK_Bytes = 4,
};

/// A small tagged union: null, bool, 64-bit int, string, or byte array.
///
/// Values are ordered (lexicographically within a kind, by kind across
/// kinds) so they can serve as keys in canonical views, and hashable so view
/// hashes can be maintained incrementally.
class Value {
public:
  using Bytes = std::vector<uint8_t>;

  Value() : Data(std::monostate{}) {}
  Value(bool B) : Data(B) {}
  Value(int64_t I) : Data(I) {}
  Value(int I) : Data(static_cast<int64_t>(I)) {}
  Value(unsigned I) : Data(static_cast<int64_t>(I)) {}
  Value(uint64_t I) : Data(static_cast<int64_t>(I)) {}
  Value(std::string S) : Data(std::move(S)) {}
  Value(const char *S) : Data(std::string(S)) {}
  Value(Bytes B) : Data(std::move(B)) {}

  ValueKind kind() const {
    return static_cast<ValueKind>(Data.index());
  }

  bool isNull() const { return kind() == ValueKind::VK_Null; }
  bool isBool() const { return kind() == ValueKind::VK_Bool; }
  bool isInt() const { return kind() == ValueKind::VK_Int; }
  bool isStr() const { return kind() == ValueKind::VK_Str; }
  bool isBytes() const { return kind() == ValueKind::VK_Bytes; }

  /// Accessors assert that the stored kind matches.
  bool asBool() const;
  int64_t asInt() const;
  const std::string &asStr() const;
  const Bytes &asBytes() const;

  /// Stable 64-bit hash of the value (kind-tagged, content-based).
  uint64_t hash() const;

  /// Renders the value for diagnostics, e.g. `int:42`, `bytes[16]:a1b2..`.
  std::string str() const;

  friend bool operator==(const Value &L, const Value &R) {
    return L.Data == R.Data;
  }
  friend bool operator!=(const Value &L, const Value &R) {
    return !(L == R);
  }
  friend bool operator<(const Value &L, const Value &R);

private:
  std::variant<std::monostate, bool, int64_t, std::string, Bytes> Data;
};

/// List-of-values used for method argument vectors and replay payloads.
///
/// Every Call/ReplayOp record carries one of these, so it sits on the
/// logging and checking hot paths. Unlike std::vector, the first
/// InlineCapacity values are stored inline — nearly all method signatures
/// in the verified programs take 0–2 arguments, so the common case never
/// touches the heap. Larger lists spill to a heap array transparently.
///
/// The API is the subset of std::vector the codebase uses; elements are
/// always default-constructed Values until overwritten, which lets
/// push_back/clear recycle storage (including a kept heap buffer) instead
/// of churning allocations.
class ValueList {
public:
  using value_type = Value;
  using iterator = Value *;
  using const_iterator = const Value *;

  /// Values stored without heap allocation. Two covers nearly every
  /// method signature (see bench/bench_checker_hotpath's alloc table).
  static constexpr size_t InlineCapacity = 2;

  ValueList() = default;
  ValueList(std::initializer_list<Value> Init) {
    reserve(Init.size());
    for (const Value &V : Init)
      push_back(V);
  }
  ValueList(const ValueList &O) { *this = O; }
  ValueList(ValueList &&O) noexcept { *this = std::move(O); }

  ValueList &operator=(const ValueList &O) {
    if (this == &O)
      return *this;
    reserve(O.Count);
    Value *D = data();
    const Value *S = O.data();
    for (uint32_t I = 0; I < O.Count; ++I)
      D[I] = S[I];
    for (uint32_t I = O.Count; I < Count; ++I)
      D[I] = Value();
    Count = O.Count;
    return *this;
  }

  ValueList &operator=(ValueList &&O) noexcept {
    if (this == &O)
      return *this;
    if (O.Heap) {
      // Adopt the spilled buffer wholesale: O(1), no element moves. Our
      // own heap buffer (if any) is released by the assignment; inline
      // payloads still in use are released explicitly.
      if (!Heap)
        for (uint32_t I = 0; I < Count; ++I)
          InlineElems[I] = Value();
      Heap = std::move(O.Heap);
      Cap = O.Cap;
      Count = O.Count;
    } else {
      // O is inline; keep our storage (possibly a recycled heap buffer)
      // and move the few elements across.
      Value *D = data();
      for (uint32_t I = 0; I < O.Count; ++I)
        D[I] = std::move(O.InlineElems[I]);
      for (uint32_t I = O.Count; I < Count; ++I)
        D[I] = Value();
      Count = O.Count;
    }
    O.Cap = InlineCapacity;
    O.Count = 0;
    return *this;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  size_t capacity() const { return Cap; }
  /// Whether the elements live in the inline slots (no heap buffer).
  bool inlined() const { return !Heap; }

  Value &operator[](size_t I) { return data()[I]; }
  const Value &operator[](size_t I) const { return data()[I]; }
  Value &front() { return data()[0]; }
  const Value &front() const { return data()[0]; }
  Value &back() { return data()[Count - 1]; }
  const Value &back() const { return data()[Count - 1]; }

  iterator begin() { return data(); }
  iterator end() { return data() + Count; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + Count; }

  /// Empties the list. Storage (inline slots and any heap buffer) is
  /// kept; element payloads are released.
  void clear() {
    Value *D = data();
    for (uint32_t I = 0; I < Count; ++I)
      D[I] = Value();
    Count = 0;
  }

  void reserve(size_t N) {
    if (N > Cap)
      grow(N);
  }

  void push_back(const Value &V) {
    if (Count == Cap)
      grow(Count + 1);
    data()[Count++] = V;
  }
  void push_back(Value &&V) {
    if (Count == Cap)
      grow(Count + 1);
    data()[Count++] = std::move(V);
  }
  template <typename... ArgTs> Value &emplace_back(ArgTs &&...Args) {
    push_back(Value(std::forward<ArgTs>(Args)...));
    return back();
  }
  void pop_back() { data()[--Count] = Value(); }

  friend bool operator==(const ValueList &L, const ValueList &R) {
    if (L.Count != R.Count)
      return false;
    for (uint32_t I = 0; I < L.Count; ++I)
      if (L[I] != R[I])
        return false;
    return true;
  }
  friend bool operator!=(const ValueList &L, const ValueList &R) {
    return !(L == R);
  }

  /// Stable 64-bit hash of the whole list (order-sensitive, built from
  /// Value::hash). Used as a memoization key by the checker.
  uint64_t hash() const;

private:
  Value *data() { return Heap ? Heap.get() : InlineElems; }
  const Value *data() const { return Heap ? Heap.get() : InlineElems; }
  void grow(size_t MinCap);

  Value InlineElems[InlineCapacity];
  std::unique_ptr<Value[]> Heap;
  uint32_t Count = 0;
  uint32_t Cap = InlineCapacity;
};

/// Builds a Value holding the given raw bytes.
Value bytesValue(const void *Data, size_t Size);

/// Escapes \p S for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by every JSON renderer in the
/// codebase (reports, telemetry, monitor protocol, forensic bundles).
std::string jsonEscape(const std::string &S);

} // namespace vyrd

#endif // VYRD_VALUE_H
