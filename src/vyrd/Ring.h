//===- Ring.h - Storage-recycling FIFO ring queue ---------------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A FIFO queue over a power-of-two circular buffer whose slots survive
/// pop_front: a popped element is not destroyed, so any heap storage it
/// owns (a spilled ValueList, a long string) is reused when the slot is
/// next assigned. std::deque is the wrong tool for the pipeline's
/// Action-sized elements: at ~216 bytes libstdc++ fits two per 512-byte
/// block, so steady push/pop traffic frees and reallocates a block every
/// other element. RingQueue reaches steady state after at most
/// log2(max-depth) capacity doublings and then never touches the heap.
///
/// Holding popped slots alive is a deliberate trade: memory stays bounded
/// by capacity x payload, but an element with observable ownership (e.g.
/// a shared_ptr keeping a pooled object pinned) must be reset by the
/// caller before pop_front if the reference itself has side effects.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_RING_H
#define VYRD_RING_H

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace vyrd {

template <typename T> class RingQueue {
public:
  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  T &front() {
    assert(Count && "front() on empty ring");
    return Slots[Head];
  }
  const T &front() const {
    assert(Count && "front() on empty ring");
    return Slots[Head];
  }

  /// Logical indexing: [0] is the front, [size()-1] the back.
  T &operator[](size_t I) { return Slots[(Head + I) & (Slots.size() - 1)]; }
  const T &operator[](size_t I) const {
    return Slots[(Head + I) & (Slots.size() - 1)];
  }

  void push_back(T V) {
    if (Count == Slots.size())
      grow();
    Slots[(Head + Count) & (Slots.size() - 1)] = std::move(V);
    ++Count;
  }

  /// Advances past the front element without destroying it; the slot's
  /// storage is recycled by the next push into it.
  void pop_front() {
    assert(Count && "pop_front() on empty ring");
    Head = (Head + 1) & (Slots.size() - 1);
    --Count;
  }

  void clear() {
    Head = 0;
    Count = 0;
  }

private:
  void grow() {
    size_t NewCap = Slots.empty() ? 16 : Slots.size() * 2;
    std::vector<T> Fresh(NewCap);
    for (size_t I = 0; I < Count; ++I)
      Fresh[I] = std::move(Slots[(Head + I) & (Slots.size() - 1)]);
    Slots.swap(Fresh);
    Head = 0;
  }

  std::vector<T> Slots; // power-of-two capacity
  size_t Head = 0;
  size_t Count = 0;
};

/// An unbounded FIFO of fixed-size chunks with a chunk freelist. Where
/// RingQueue fits bounded windows (its contiguous buffer only ever
/// grows, and growing copies every element), ChunkQueue is for queues
/// whose depth swings with backlog: a drained chunk goes to the freelist
/// and is handed back to the producer still warm, so the small-depth
/// steady state cycles through the same few cache-hot chunks with zero
/// heap traffic, while a deep burst degrades gracefully to one
/// allocation per ChunkElems elements (never a whole-queue copy).
/// Slots are never destroyed on pop — like RingQueue, a recycled slot's
/// heap storage (a spilled ValueList, a string) is reused by the next
/// element assigned into it, with the same caveat about resettable
/// ownership (see the file comment).
template <typename T> class ChunkQueue {
  static constexpr size_t ChunkElems = sizeof(T) >= 128 ? 32 : 256;
  static constexpr size_t MaxFreeChunks = 8;
  struct Chunk {
    T Elems[ChunkElems];
    Chunk *Next = nullptr;
  };

public:
  ChunkQueue() = default;
  ChunkQueue(const ChunkQueue &) = delete;
  ChunkQueue &operator=(const ChunkQueue &) = delete;
  ~ChunkQueue() {
    releaseChain(HeadC);
    releaseChain(FreeC);
  }

  bool empty() const { return Count == 0; }
  size_t size() const { return Count; }

  T &front() {
    assert(Count && "front() on empty queue");
    return HeadC->Elems[HeadI];
  }

  void push_back(T V) {
    if (!TailC || TailI == ChunkElems) {
      Chunk *C = takeChunk();
      if (TailC)
        TailC->Next = C;
      else {
        HeadC = C;
        HeadI = 0;
      }
      TailC = C;
      TailI = 0;
    }
    TailC->Elems[TailI++] = std::move(V); // slot storage recycled
    ++Count;
  }

  /// Visits every queued element front to back without consuming the
  /// queue (checker snapshots serialize the pending-event backlog).
  template <typename Fn> void forEach(Fn F) const {
    const Chunk *C = HeadC;
    size_t I = HeadI;
    for (size_t N = 0; N < Count; ++N) {
      if (I == ChunkElems) {
        C = C->Next;
        I = 0;
      }
      F(C->Elems[I]);
      ++I;
    }
  }

  void pop_front() {
    assert(Count && "pop_front() on empty queue");
    ++HeadI;
    --Count;
    if (HeadI == ChunkElems) {
      Chunk *C = HeadC;
      HeadC = C->Next;
      HeadI = 0;
      if (!HeadC) {
        TailC = nullptr;
        TailI = ChunkElems;
      }
      recycleChunk(C);
    } else if (Count == 0) {
      // Single partially-consumed chunk: rewind so the next burst reuses
      // the same hot slots from its start.
      HeadI = 0;
      TailI = 0;
    }
  }

private:
  Chunk *takeChunk() {
    if (FreeC) {
      Chunk *C = FreeC;
      FreeC = C->Next;
      --FreeCount;
      C->Next = nullptr;
      return C;
    }
    return new Chunk();
  }

  void recycleChunk(Chunk *C) {
    if (FreeCount >= MaxFreeChunks) {
      delete C;
      return;
    }
    C->Next = FreeC;
    FreeC = C;
    ++FreeCount;
  }

  static void releaseChain(Chunk *C) {
    while (C) {
      Chunk *Next = C->Next;
      delete C;
      C = Next;
    }
  }

  Chunk *HeadC = nullptr;
  Chunk *TailC = nullptr;
  Chunk *FreeC = nullptr; // freelist of drained chunks
  size_t HeadI = 0;
  size_t TailI = ChunkElems;
  size_t Count = 0;
  size_t FreeCount = 0;
};

} // namespace vyrd

#endif // VYRD_RING_H
