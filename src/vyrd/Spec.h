//===- Spec.h - Executable method-atomic specifications ---------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Spec is the method-atomic, deterministic state transition system of
/// Sec. 3.2 against which refinement is checked. The checker drives the Spec
/// one method execution at a time in witness (commit) order: mutators via
/// applyMutator (which may fail, signaling an I/O refinement violation),
/// observers via returnAllowed, evaluated at every state in their
/// call-to-return window (Sec. 4.3).
///
/// Determinism in the paper's sense is "given the signature (including the
/// return value), the successor state is unique" — which is exactly the
/// applyMutator contract; nondeterministic return values (e.g. Insert may
/// fail under contention) are naturally allowed.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SPEC_H
#define VYRD_SPEC_H

#include "vyrd/Names.h"
#include "vyrd/Value.h"
#include "vyrd/View.h"

namespace vyrd {

class ByteWriter;
class ByteReader;

/// Interface implemented once per verified data structure.
class Spec {
public:
  virtual ~Spec();

  /// Serializes the abstract state into \p W so a later checker run can
  /// resume from it (snapshot sidecars, docs/SNAPSHOTS.md). The encoding
  /// must be canonical — the same state always produces the same bytes —
  /// and must not contain process-local interned name ids. \returns false
  /// when the spec does not support snapshots (the default).
  virtual bool saveState(ByteWriter &W) const;

  /// Restores the abstract state from bytes produced by saveState,
  /// replacing the current state entirely. \returns false on malformed
  /// input or when snapshots are unsupported (the default).
  virtual bool loadState(ByteReader &R);

  /// Whether \p Method is an observer (never modifies abstract state).
  virtual bool isObserver(Name Method) const = 0;

  /// Atomically executes mutator `Method(Args) -> Ret` from the current
  /// state. \returns false (leaving the state unchanged) when the
  /// specification has no such transition — an I/O refinement violation.
  ///
  /// Implementations must keep \p ViewS up to date incrementally: apply the
  /// entry adds/removes this transition causes. ViewS is owned by the
  /// checker and is never rebuilt from scratch on the fast path.
  virtual bool applyMutator(Name Method, const ValueList &Args,
                            const Value &Ret, View &ViewS) = 0;

  /// Whether observer `Method(Args)` may return \p Ret in the current state.
  virtual bool returnAllowed(Name Method, const ValueList &Args,
                             const Value &Ret) const = 0;

  /// Rebuilds the canonical view of the current state from scratch (used by
  /// audits and the full-recompute ablation).
  virtual void buildView(View &Out) const = 0;
};

} // namespace vyrd

#endif // VYRD_SPEC_H
