//===- Monitor.h - Live introspection endpoint for a running verifier -----===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opt-in live observability surface for the verification pipeline
/// (docs/OBSERVABILITY.md, "Live monitoring"). A MonitorServer owns one
/// dedicated thread listening on a unix-domain socket and speaks a
/// newline-delimited request/response protocol:
///
///   list        -> one JSON line: registered objects with routed /
///                  checked / backlog counters
///   stats       -> one JSON line: full TelemetrySnapshot (counters,
///                  gauges + HWMs, histograms, per-object rows, checker
///                  lag, stall flag) plus live violation/forensic counts
///   violations  -> one JSON line: every violation published so far
///   health      -> one JSON line: {"health":"ok|degraded|stalled|
///                  violating", ...} for scripts
///   watch N     -> a `stats` line every N milliseconds until the client
///                  disconnects (N in [10, 60000], default 1000)
///   prom        -> Prometheus text exposition of the snapshot, a
///                  multi-line block terminated by a `# EOF` line
///   top         -> human-readable screenful, also `# EOF`-terminated
///   detach      -> server closes the connection
///
/// The server only *reads*, and only through paths that are already safe
/// against concurrent writers: Telemetry::snapshot() (lock-free cells,
/// relaxed atomics) and the MonitorSource's mutex-guarded published
/// violation list. Attaching or detaching any number of clients therefore
/// costs the append/check hot path nothing. Malformed requests get one
/// JSON error line; oversized requests and abrupt disconnects close the
/// client, never the server; the verifier never blocks on a slow client
/// (bounded output buffers, nonblocking writes).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_MONITOR_H
#define VYRD_MONITOR_H

#include "vyrd/Telemetry.h"
#include "vyrd/Violation.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vyrd {

/// Configuration for the monitor endpoint (VerifierConfig::Monitor).
struct MonitorOptions {
  /// Filesystem path of the unix-domain socket. Empty disables the
  /// monitor entirely (no thread, no socket). An existing socket file at
  /// this path is replaced (stale sockets from killed runs are expected).
  std::string SocketPath;
  /// Maximum simultaneously attached clients; later connects get one
  /// JSON error line and are closed.
  unsigned MaxClients = 8;
};

/// What the monitor serves: a telemetry snapshot plus the live violation
/// and forensic-bundle lists. Implemented by the Verifier (private
/// adapter) and by TelemetryMonitorSource for standalone benches/tests.
/// All methods must be callable from the server thread at any time
/// between MonitorServer construction and destruction.
class MonitorSource {
public:
  virtual ~MonitorSource();
  virtual TelemetrySnapshot telemetrySnapshot() = 0;
  /// Violations published so far (may trail the checkers by one batch).
  virtual std::vector<Violation> liveViolations() { return {}; }
  /// Paths of forensic bundles written so far (docs/OBSERVABILITY.md,
  /// "Forensic bundles").
  virtual std::vector<std::string> forensicFiles() { return {}; }
};

/// MonitorSource over a bare Telemetry hub (no violations): lets benches
/// and tests stand up a monitor endpoint without a Verifier.
class TelemetryMonitorSource : public MonitorSource {
public:
  explicit TelemetryMonitorSource(Telemetry &Hub) : Hub(Hub) {}
  TelemetrySnapshot telemetrySnapshot() override { return Hub.snapshot(); }

private:
  Telemetry &Hub;
};

/// Pure renderers for the protocol responses, shared by the server and
/// directly unit-testable. Each *Json returns exactly one line (no
/// trailing newline); promText/topText return multi-line blocks without
/// the `# EOF` terminator (the server appends it).
namespace monitor {
std::string listJson(const TelemetrySnapshot &S,
                     const std::vector<Violation> &V);
std::string statsJson(const TelemetrySnapshot &S,
                      const std::vector<Violation> &V,
                      const std::vector<std::string> &Forensics);
std::string violationsJson(const std::vector<Violation> &V);
std::string healthJson(const TelemetrySnapshot &S,
                       const std::vector<Violation> &V);
/// Verdict only: "ok", "degraded" (records shed), "stalled" (watchdog),
/// or "violating" — worst wins.
const char *healthVerdict(const TelemetrySnapshot &S, size_t Violations);
std::string promText(const TelemetrySnapshot &S, size_t Violations);
std::string topText(const TelemetrySnapshot &S,
                    const std::vector<Violation> &V);
} // namespace monitor

/// Named monitor sources for multi-session services (vyrd-checkd): each
/// shipping session registers its source under its stream name, and a
/// registry-mode MonitorServer lets one control socket introspect any of
/// them (`list` names the sessions, `mon <name>` binds the connection to
/// one, then the regular protocol applies). Sources are held by
/// shared_ptr so a bound client keeps "its" session queryable even after
/// the session ends and is removed from the registry.
class MonitorRegistry {
public:
  /// Registers (or replaces) \p Src under \p Name.
  void add(const std::string &Name, std::shared_ptr<MonitorSource> Src);
  void remove(const std::string &Name);
  /// Registered session names, registration order.
  std::vector<std::string> names() const;
  /// The source registered under \p Name, or null.
  std::shared_ptr<MonitorSource> resolve(const std::string &Name) const;

private:
  mutable std::mutex M;
  std::vector<std::pair<std::string, std::shared_ptr<MonitorSource>>>
      Sources;
};

/// The endpoint: binds the socket and serves requests from its own
/// thread until destroyed (or stop()). Construction never throws; when
/// the socket cannot be bound the server is inert (valid() false) and
/// the error is available via error() — a broken monitor must not take
/// down the verifier it observes.
///
/// Two modes: bound to one MonitorSource (a Verifier's private adapter —
/// the historical shape), or to a MonitorRegistry (vyrd-checkd), where a
/// client must first `mon <name>` one of the `list`ed sessions before
/// the data commands answer.
class MonitorServer {
public:
  MonitorServer(const MonitorOptions &O, MonitorSource &Src);
  /// Registry mode: serves every session in \p Reg.
  MonitorServer(const MonitorOptions &O, MonitorRegistry &Reg);
  ~MonitorServer();

  MonitorServer(const MonitorServer &) = delete;
  MonitorServer &operator=(const MonitorServer &) = delete;

  /// Whether the socket was bound and the server thread is running.
  bool valid() const { return Valid; }
  /// Bind/listen failure description when !valid(); empty otherwise.
  const std::string &error() const { return Error; }
  const std::string &socketPath() const { return Opts.SocketPath; }

  /// Requests answered so far (any command, across all clients).
  uint64_t requestsServed() const {
    return Requests.load(std::memory_order_relaxed);
  }

  /// Stops the server thread, closes every client, unlinks the socket.
  /// Idempotent; also run by the destructor.
  void stop();

private:
  struct Client;

  void serverMain();
  void wake();
  bool handleRequest(Client &C, const std::string &Line);
  /// The source a client's data commands read from: the fixed source in
  /// single-source mode, the client's bound session in registry mode
  /// (null until `mon <name>`).
  MonitorSource *sourceFor(Client &C);
  void bindSocket();

  MonitorOptions Opts;
  MonitorSource *Src = nullptr;       ///< single-source mode
  MonitorRegistry *Registry = nullptr; ///< registry mode
  std::string Error;
  bool Valid = false;

  int ListenFd = -1;
  int WakeFds[2] = {-1, -1}; ///< self-pipe: [0] polled, [1] written
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Requests{0};
  std::vector<std::unique_ptr<Client>> Clients;
  std::thread Server;
};

} // namespace vyrd

#endif // VYRD_MONITOR_H
