//===- BufferedLog.h - Sharded, batched execution log -----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A log backend that takes the global mutex off the instrumentation hot
/// path (the dominant runtime cost the paper measures in Table 2). Each
/// producer thread appends into its own bounded single-producer /
/// single-consumer ring (ThreadLogShard); a flusher thread drains the
/// shards in epochs and merges the records into the global append order,
/// from which readers consume in batches.
///
/// Ordering contract
/// -----------------
/// The refinement checker needs the log to be a linearization of the
/// instrumented events: if action X became visible before action Y (in
/// particular, if X's commit happened before Y's commit under the data
/// structure's locks), X must precede Y in the log. Epoch flushing alone
/// cannot provide this — two shards flushed in either order would reorder
/// causally related commits — so the global order is fixed at append time
/// by a single atomic ticket counter:
///
///  * append claims `Ticket.fetch_add(1, relaxed)` and stamps it into
///    Action::Seq. Per-object coherence guarantees that if append X
///    happens-before append Y (same thread, or across threads via the
///    lock the paper's atomicity rule already requires the hook to hold),
///    X's increment precedes Y's in the counter's modification order, so
///    ticket(X) < ticket(Y). No stronger ordering is needed from the RMW
///    itself; `relaxed` suffices.
///  * the record is published to the shard with a release store of the
///    ring head; the flusher reads the head with acquire, so the record
///    contents are visible when it drains.
///  * tickets are dense, so the flusher can (and must) emit records in
///    exactly ticket order: it holds records back until the contiguous
///    prefix is complete, then stamps them into the global order as the
///    final, dense sequence numbers. A record's sequence number therefore
///    *is* its ticket; it becomes observable to readers only at flush.
///    Density also makes reordering O(1) per record: the flusher parks
///    each drained record in a ring indexed by `Seq & Mask` (growing the
///    ring if a stalled producer ever leaves a wider gap) and emits the
///    contiguous run starting at the next expected ticket — no
///    comparisons, no heap.
///
/// Backpressure: shards are bounded. A producer whose ring is full waits
/// (spin, then yield, then short sleeps) until the flusher makes room, so
/// memory for unflushed records is capped at ShardCapacity per thread.
///
/// Thread registration: a shard is created for a thread the first time it
/// calls writer() (or append). Shards are owned by the log and outlive
/// their threads; thread ids are never reused, so a shard has exactly one
/// producer for its whole life. close() must only be called after all
/// producer threads are done appending (same contract as the other
/// backends, where it is enforced by an assert).
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_BUFFEREDLOG_H
#define VYRD_BUFFEREDLOG_H

#include "vyrd/Log.h"

#include <atomic>
#include <memory>
#include <thread>

namespace vyrd {

class BufferedLog;
class TelemetryCell;

/// One thread's bounded SPSC ring. Producer: the owning thread, through
/// LogWriter::append. Consumer: the parent log's flusher thread.
class ThreadLogShard final : public LogWriter {
public:
  ThreadLogShard(BufferedLog &Parent, size_t Capacity);

  /// Producer side: claims a ticket, stamps it as the sequence number and
  /// publishes the record to the ring, waiting for space if the ring is
  /// full. Must only be called by the owning thread.
  uint64_t append(Action A) override;

private:
  friend class BufferedLog;

  /// Consumer side (flusher only): moves all published records out into
  /// the parent's reorder ring. \returns how many were moved.
  size_t drain();

  BufferedLog &Parent;
  std::vector<Action> Slots;
  const uint64_t Mask;
  /// Monotonic positions; slot = position & Mask. Head is written by the
  /// producer (release) and read by the flusher (acquire); Tail is the
  /// reverse. CachedTail lets the producer check for space without
  /// touching the shared Tail in the common case.
  alignas(64) std::atomic<uint64_t> Head{0};
  alignas(64) std::atomic<uint64_t> Tail{0};
  uint64_t CachedTail = 0;
  /// The owning thread's telemetry cell, resolved lazily on first append
  /// after a hub is attached (Log::setTelemetry). Producer-side only.
  TelemetryCell *TC = nullptr;
};

/// The sharded, batched log backend. See the file comment for the
/// ordering and registration contract.
class BufferedLog final : public Log {
public:
  struct Options {
    /// Ring capacity per producer thread, in records; rounded up to a
    /// power of two. Bounds the memory held in unflushed shards and the
    /// distance a producer can run ahead of the flusher.
    size_t ShardCapacity = 1024;
    /// When non-empty, the flusher serializes every flushed batch to this
    /// file (same format as FileLog; readable with loadLogFile). With
    /// Backpressure.SegmentBytes > 0 the output rotates into a segment
    /// chain instead of one file.
    std::string FilePath;
    /// Keep flushed records in memory for next()/tryNext()/nextBatch().
    /// Disable for logging-only measurement runs where nothing consumes
    /// the log (the FileLog RetainTail=false analogue).
    bool RetainRecords = true;
    /// Bound + policy for the merged reader queue. The shard rings are
    /// already bounded (ShardCapacity per thread); this bounds the
    /// downstream stage the flusher feeds. BP_Block parks the *flusher*
    /// (shards then fill and producers hit the ring-full backoff, so the
    /// pressure propagates); BP_SpillToDisk needs FilePath and lets the
    /// reader re-read over-limit records from disk; BP_Shed drops
    /// observer executions from the queue only (the file, when present,
    /// stays complete).
    BackpressureConfig Backpressure;
  };

  BufferedLog();
  explicit BufferedLog(Options O);
  ~BufferedLog() override;

  /// False iff Options::FilePath was set and the file could not be opened.
  bool valid() const { return Valid; }

  /// Thread-safe append from any thread: resolves the caller's shard and
  /// appends through it. Hot paths should cache writer() instead.
  uint64_t append(Action A) override;

  /// The calling thread's shard, registered on first use.
  LogWriter &writer() override;

  void close() override;
  bool next(Action &Out) override;
  bool tryNext(Action &Out, bool &End) override;
  bool nextBatch(std::vector<Action> &Out, size_t Max) override;
  uint64_t appendCount() const override;
  uint64_t byteCount() const override;
  BackpressureStats backpressureStats() const override;
  void setShedClassifier(std::function<bool(const Action &)> Fn) override;
  void reclaimCheckedPrefix(uint64_t Watermark) override;
  void takeSegmentCuts(std::vector<SegmentCut> &Out) override;
  void onPolicyChange() override;

  /// Number of producer threads that have registered a shard.
  size_t shardCount() const;

private:
  friend class ThreadLogShard;

  ThreadLogShard &shardForCurrentThread();
  void flusherMain();
  /// True when the reader must track the delivery frontier and be able to
  /// re-read over-limit records from the file: the static policy is
  /// BP_SpillToDisk, or a dynamic-policy cell is installed and could
  /// escalate into it mid-run (frontier bookkeeping must be on from the
  /// first record, or an escalation would re-deliver the whole file).
  bool spillCapable() const;
  /// Pushes one emit round's records [\p First, \p S) into the reader
  /// queue under the configured admission policy.
  void enqueueEmitted(uint64_t First, uint64_t S);
  bool readyLocked() const;
  bool tryNextLocked(Action &Out, bool &End);
  bool spillNextLocked(Action &Out);
  void popFrontLocked(Action &Out);
  /// Drains every shard into the reorder ring. \returns records drained.
  size_t drainShards();
  /// Parks one drained record in the reorder ring at `Seq & Mask`,
  /// growing the ring when a stalled producer has left a gap wider than
  /// its current capacity. Flusher thread only.
  void park(Action &&A);
  /// Emits the contiguous ticket run starting at the next expected
  /// sequence number into the global order (file and/or reader queue).
  /// \returns records emitted.
  size_t emitReady();

  struct Impl;
  std::unique_ptr<Impl> I;
  bool Valid = true;
};

} // namespace vyrd

#endif // VYRD_BUFFEREDLOG_H
