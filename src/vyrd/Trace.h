//===- Trace.h - Chrome/Perfetto trace_event recorder -----------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts the logged witness interleaving into Chrome trace_event JSON
/// (the format Perfetto and chrome://tracing load natively), so the
/// execution the checker reasons about becomes visually inspectable: one
/// track per implementation thread showing method spans with commit/write
/// instants inside them, plus one track for the verification thread
/// showing check-batch spans (online) or witness-order commit processing
/// (offline, via tools/vyrd-trace).
///
/// Actions carry no wall-clock time — only their log sequence number,
/// which IS the witness order the paper's refinement argument is built on.
/// The recorder therefore uses virtual time: one log record = one
/// microsecond of trace time. Spans show relative order and log distance,
/// not wall duration (docs/OBSERVABILITY.md, "Trace mapping").
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_TRACE_H
#define VYRD_TRACE_H

#include "vyrd/Action.h"

#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace vyrd {

/// One trace_event record (subset of the Chrome trace format we emit).
struct TraceEvent {
  char Ph = 'i';     ///< 'B' begin, 'E' end, 'i' instant, 'M' metadata
  uint32_t Pid = 1;  ///< trace process (= track group): ObjectId + 1
  uint32_t Tid = 0;  ///< trace track (ThreadId, or VerifierTrackTid)
  uint64_t Ts = 0;   ///< virtual microseconds (= log sequence number)
  std::string Name;
  std::string Args;  ///< pre-rendered JSON for "args" (may be empty)
};

/// Accumulates trace events and renders the complete JSON document.
/// Thread-safe (the online verifier records check spans from the
/// verification thread while str()/writeFile() may run at shutdown); the
/// common uses — pump loop online, vyrd-trace offline — are effectively
/// single-threaded.
class TraceRecorder {
public:
  /// Track id of the verification thread. Implementation ThreadIds are
  /// dense and small, so this cannot collide.
  static constexpr uint32_t VerifierTrackTid = 1000000;

  /// Names a verified object: its track group ("process" pid ObjectId+1)
  /// is labeled with the name in the rendered document. Object 0 without a
  /// name keeps the legacy single-object label ("vyrd pipeline").
  void setObjectName(ObjectId Obj, std::string ObjName);

  /// Records one logged action on the track of its thread *within its
  /// object's track group* (one Chrome "process" per verified object, so
  /// multi-object traces group per object):
  ///  call/return  -> span begin/end named after the method
  ///  commit       -> instant "commit <method>" inside the open span
  ///  write        -> instant "<var> := <value>"
  ///  block begin/end -> "commit-block" span
  ///  replay op    -> instant "replay <op>"
  void noteAction(const Action &A);

  /// Records a verifier check span covering log records
  /// [\p FirstSeq, \p LastSeq] (\p NumActions of them).
  void noteCheckSpan(uint64_t FirstSeq, uint64_t LastSeq,
                     uint64_t NumActions);

  /// Records an instant on the verifier track at \p Seq (e.g. a commit
  /// being processed in witness order, or a detected violation).
  void noteVerifierInstant(uint64_t Seq, std::string Name);

  /// Records a Chrome counter-track sample at \p Seq: viewers render the
  /// series as a filled area chart. Used for the backpressure gauges
  /// (pending records, tail bytes, live segments) so a trace shows the
  /// pipeline level next to the spans that moved it.
  void noteGauge(uint64_t Seq, std::string Name, uint64_t Value);

  /// Number of events recorded so far (excludes the metadata events that
  /// json() synthesizes).
  size_t eventCount() const;

  /// Renders the complete JSON document: metadata (process/thread names),
  /// every recorded event, and synthesized end events for any call spans
  /// still open (so truncated logs still load cleanly).
  std::string json() const;

  /// Writes json() to \p Path. \returns false on I/O error.
  bool writeFile(const std::string &Path) const;

private:
  mutable std::mutex M;
  std::vector<TraceEvent> Events;
  /// Open call spans per (object, thread) — a thread may interleave calls
  /// on different objects, and each object's track group nests its own
  /// spans — so commits can be named after the enclosing method and
  /// unbalanced spans closed at render time. Key: ObjectId << 32 | Tid.
  std::unordered_map<uint64_t, std::vector<Name>> OpenCalls;
  /// Track-group labels (setObjectName).
  std::unordered_map<uint32_t, std::string> ObjectNames;
  uint64_t MaxTs = 0;
  bool SawVerifierEvent = false;
};

} // namespace vyrd

#endif // VYRD_TRACE_H
