//===- ShipServer.h - The checker fleet's segment receiver ------*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The receiving half of segment shipping (docs/SHIPPING.md): a
/// ShipServer listens on a unix or TCP socket for SocketTransport
/// producers, runs one session thread per connection, and drives one
/// CheckerService per session. Per session it:
///
///  * resolves the Hello's program name into checker pipelines through a
///    ProgramPipelineResolver (the harness programs live above vyrd_core,
///    so the embedder — vyrd-checkd — injects the mapping),
///  * reassembles framed segment images (FrameParser resync keeps one
///    corrupted transfer from desynchronizing the stream), decodes them
///    through the ordinary LOGFORMAT v4 path and feeds the service,
///  * seeds the checkers from a v5 sidecar when the chain starts
///    mid-stream (the producer reclaimed an acked prefix),
///  * acks its fed watermark after every segment — the producer reclaims
///    its checked prefix on those acks, closing the bounded-memory loop —
///  * and on Close (or a producer crash: EOF mid-stream) finishes the
///    checkers and writes `<session>.report.json` with the same
///    VerifierReport JSON a local run would print.
///
/// Sessions register their telemetry + live violations in a
/// MonitorRegistry, so one `vyrd-mon` control socket can `list` the
/// fleet's sessions and `mon <name>` into any of them.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SHIPSERVER_H
#define VYRD_SHIPSERVER_H

#include "vyrd/Checker.h"
#include "vyrd/Epoch.h"
#include "vyrd/Monitor.h"
#include "vyrd/Transport.h"

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace vyrd {

/// Maps a Hello's program name to the pipelines of the recording run:
/// fills \p NumObjects and a thread-safe \p Factory (see Epoch.h) and
/// returns true, or returns false for an unknown name (the session is
/// refused). \p ViewLevel selects view- vs I/O-refinement pipelines.
using ProgramPipelineResolver = std::function<bool(
    const std::string &Program, bool ViewLevel, size_t &NumObjects,
    PipelineFactory &Factory)>;

/// Configuration for a ShipServer (vyrd-checkd's command line).
struct ShipServerOptions {
  /// Listen endpoint: "unix:<path>" or "tcp:<host>:<port>".
  std::string Listen;
  /// Later connects beyond this many live sessions are refused (closed
  /// immediately; the producer's retry/degrade path takes over).
  unsigned MaxSessions = 16;
  /// Checker pool size per session (1 = feed inline on the session
  /// thread).
  unsigned CheckerThreads = 1;
  /// Directory session reports are written into as
  /// `<dir>/<session>.report.json`; empty writes no report files (the
  /// report stays retrievable via sessionReportJson).
  std::string ReportDir;
  /// Checker tunables for every session pipeline.
  CheckerConfig Checker;
  /// Pool admission config for sessions with CheckerThreads > 1.
  BackpressureConfig Backpressure;
};

/// The segment receiver service.
class ShipServer {
public:
  /// Binds and starts the accept thread. \p Registry may be null (no
  /// monitor integration). Construction never throws; on bind failure
  /// the server is inert (valid() false, error() says why).
  ShipServer(const ShipServerOptions &O, ProgramPipelineResolver Resolver,
             MonitorRegistry *Registry);
  ~ShipServer();

  ShipServer(const ShipServer &) = delete;
  ShipServer &operator=(const ShipServer &) = delete;

  bool valid() const { return Valid; }
  const std::string &error() const { return Error; }

  /// Stops accepting, closes every session connection and joins all
  /// threads. Sessions cut off mid-stream finish over what they fed (the
  /// producer's degrade path owns the rest). Idempotent.
  void stop();

  /// Sessions that reached end-of-stream (Close or EOF) so far.
  uint64_t sessionsCompleted() const {
    return Completed.load(std::memory_order_acquire);
  }
  /// Names of every session seen (accept order, completed included).
  std::vector<std::string> sessionNames() const;
  /// Blocks until the named session completes (or \p TimeoutMs passes).
  bool waitForSessionEnd(const std::string &Name, unsigned TimeoutMs);
  /// The completed session's report JSON ("" while running or unknown).
  std::string sessionReportJson(const std::string &Name) const;

  /// Test hook: while set, segment acks are withheld (the final Close
  /// ack still flows) — lets tests assert that producer-side reclamation
  /// is gated on acks, not on local consumption.
  void setHoldAcks(bool Hold) {
    HoldAcks.store(Hold, std::memory_order_release);
  }

private:
  struct Session;

  void acceptMain();
  /// One thread per accepted connection: parses frames, binds to a
  /// session at Hello (creating it, or adopting an idle one on a
  /// producer reconnect), feeds it until EOF.
  void connMain(int Fd);
  std::shared_ptr<Session> bindSession(const std::string &Name,
                                       const std::string &Program,
                                       bool ViewLevel, int Fd);
  void handleFrame(Session &S, const wire::Frame &F);
  void completeSession(Session &S, uint64_t FinalSeqExclusive,
                       bool Truncated);

  ShipServerOptions Opts;
  ProgramPipelineResolver Resolver;
  MonitorRegistry *Registry;
  std::string Error;
  bool Valid = false;

  int ListenFd = -1;
  std::atomic<bool> StopFlag{false};
  std::atomic<bool> HoldAcks{false};
  std::atomic<uint64_t> Completed{0};
  std::thread Acceptor;

  mutable std::mutex M; ///< guards Sessions + connection threads
  std::condition_variable CompletedCv;
  std::vector<std::shared_ptr<Session>> Sessions;
  std::vector<std::thread> ConnThreads;
};

} // namespace vyrd

#endif // VYRD_SHIPSERVER_H
