//===- Snapshot.h - Checker-state sidecars for segment chains ---*- C++ -*-===//
//
// Part of the VYRD reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LOGFORMAT v5: snapshot sidecar files. A sidecar `base.NNNNNN.snap` sits
/// next to segment `base.NNNNNN` and holds the serialized checker state
/// (spec state, replayer shadow state, open-exec set — see
/// RefinementChecker::saveState) for every object, captured at the instant
/// the chain rotated into that segment. Loading the sidecar and feeding
/// records from segment NNNNNN onward is equivalent to checking the whole
/// chain from record 0 — refinement composes across sequential splits of
/// the trace, so sidecars make a reclaimed chain cold-restartable
/// (`vyrd-check --resume`) and cut one object's stream into independently
/// checkable epochs (Verifier epochCheck). Format details and the
/// soundness argument live in docs/SNAPSHOTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef VYRD_SNAPSHOT_H
#define VYRD_SNAPSHOT_H

#include "vyrd/Action.h"

#include <cstdint>
#include <string>
#include <vector>

namespace vyrd {

class ByteWriter;

/// Magic bytes opening every snapshot sidecar ("VYRD snapshot").
constexpr uint8_t SnapshotMagic[4] = {'V', 'Y', 'R', 'S'};

/// Version of the sidecar container format. The per-object checker blob
/// carries its own version (see RefinementChecker::saveState).
constexpr uint32_t SnapshotFormatVersion = 1;

/// One object's serialized checker state inside a sidecar.
struct SnapshotObject {
  ObjectId Id = 0;
  std::string Name;           ///< report name, not an interned id
  std::vector<uint8_t> Blob;  ///< RefinementChecker::saveState output
};

/// In-memory form of one sidecar file.
struct SnapshotFile {
  uint64_t SegmentIndex = 0; ///< 1-based chain index the sidecar pairs with
  uint64_t Watermark = 0;    ///< seq of the segment's first (unchecked) record
  std::vector<SnapshotObject> Objects;

  const SnapshotObject *find(ObjectId Id) const {
    for (const SnapshotObject &O : Objects)
      if (O.Id == Id)
        return &O;
    return nullptr;
  }
};

/// Path of the sidecar paired with segment \p Index of chain \p Base:
/// `logSegmentPath(Base, Index) + ".snap"`.
std::string snapshotSidecarPath(const std::string &Base, uint64_t Index);

/// Appends the sidecar encoding of \p S to \p W.
void encodeSnapshot(const SnapshotFile &S, ByteWriter &W);

/// Decodes a sidecar image. \returns false on bad magic, malformed input,
/// or a container version newer than this build understands.
bool decodeSnapshot(const uint8_t *Data, size_t Size, SnapshotFile &Out);

/// Writes \p S to \p Path via a temp file + rename so a crash mid-write
/// never leaves a torn sidecar (readers see the old file or the new one,
/// never a prefix). \returns false on I/O failure.
bool writeSnapshotFile(const std::string &Path, const SnapshotFile &S);

/// Reads and decodes the sidecar at \p Path.
bool readSnapshotFile(const std::string &Path, SnapshotFile &Out);

/// One segment of a chain as seen on disk, with its sidecar if readable.
struct ChainSegment {
  std::string Path;
  uint64_t Index = 0;    ///< 1-based chain index (0: plain single-file log)
  uint64_t FirstSeq = 0; ///< from the segment header (0 for plain logs)
  bool HasSnapshot = false;
  SnapshotFile Snap;
};

/// Enumerates the live segments of the chain rooted at \p Base, oldest
/// first. When \p Base itself exists it is a plain (unsegmented) log and
/// the result is that single entry; otherwise probes `base.000001`... for
/// the oldest live segment (reclamation deletes a prefix, so indices need
/// not start at 1) and walks consecutive successors. Sidecars are loaded
/// where present and well-formed; a corrupt or missing sidecar simply
/// leaves HasSnapshot false (the segment then extends the previous
/// epoch). \returns false when no file of the chain exists at all.
bool enumerateChain(const std::string &Base, std::vector<ChainSegment> &Out);

/// Resume point for a cold restart: the oldest live segment plus its
/// sidecar. When the chain starts at segment 1 (nothing reclaimed) a
/// missing sidecar is fine — resume from zero; when records before the
/// oldest live segment were reclaimed, a sidecar is required.
struct ResumePoint {
  std::string SegmentPath;
  uint64_t SegmentIndex = 0;
  uint64_t FirstSeq = 0;
  bool HasSnapshot = false;
  SnapshotFile Snap;
};

/// Finds the resume point of the chain rooted at \p Base. \returns false
/// when no chain file exists.
bool findResumePoint(const std::string &Base, ResumePoint &Out);

} // namespace vyrd

#endif // VYRD_SNAPSHOT_H
